#!/usr/bin/env bash
# Record simulator-speed benchmarks into BENCH_4.json, BENCH_5.json and
# BENCH_6.json.
#
# BENCH_4: runs bench_speed (every workload under both serial kernels,
# verifying the simulated cycle counts match) and times a serial
# bench_fig12_speedup sweep under the polling and event kernels.
#
# BENCH_5: sweeps the threaded kernel across thread counts
# (BENCH5_SIM_THREADS, default 1,2,4,8) on the four largest bench_speed
# configs plus one deliberately small config (where the barrier overhead
# is at its worst relative to the work), recording threaded-vs-event
# wall-clock ratios per thread count. The recording host's core count is
# stored alongside the numbers: ratios measured with fewer host cores
# than simulation threads measure scheduling overhead, not speedup, and
# the report says so.
#
# BENCH_6: sweeps the threaded kernel across thread counts x epoch sizes
# (BENCH6_SIM_EPOCHS, default 1,20,64; 1 = the BENCH_5-era per-cycle
# barrier) on the two largest configs, recording threaded-vs-event
# wall-clock ratios per (threads, epoch) pair. On a single-core host the
# speedup section is REFUSED: only raw wall times are recorded, because
# "threaded vs event" on one core measures barrier overhead under
# time-sharing, not parallel speedup — exactly the misreading the
# original BENCH_5 numbers invited.
#
# BENCH_7: the wide-SoA functional section of bench_speed (scalar binary
# trees vs the 4/8-wide SoA layouts on the batched SIMD kernels, with
# result-identity checks). The header records the host's SIMD capability
# — the CPU flags from /proc/cpuinfo and the backend geom/simd.hh
# compiled in — because the numbers are meaningless without it; the
# wide-speedup gate is enforced only when the backend is a real vector
# ISA (the scalar fallback has nothing to gate).
#
# BENCH_8: the traversal-as-a-service layer (bench_service): five
# traffic scenarios (Poisson/bursty/closed-loop, mixed tenants,
# cancels) at a million arrivals each, recording sustained throughput
# and p50/p99/p999 latency in simulated cycles and microseconds. The
# run includes bench_service's own determinism cross-check: every
# scenario is replayed under the threaded kernel and the batch log +
# latency histograms must be bit-identical (the bench exits 2
# otherwise, failing the recording).
#
# BENCH_9: the multi-device open-loop overload study (bench_service
# --bench=overload): per device count {1, 2, 4}, a closed-loop probe
# measures the group's saturated capacity, then an open-loop Poisson
# sweep offers 0.2x-2x that capacity and records throughput plus
# p50/p99/p999 per SLO class per cell. The run gates aggregate
# saturated throughput at 4 devices >= 1.8x one device; throughput is
# in simulated cycles, so host core count does not matter. (Kernel /
# staging / device-count bit-identity is covered by bench_service
# --check-determinism on the d1/d2/d4 scenarios and by
# tests/test_service_multidev.cc, not re-proven here.)
#
# BENCH_10: the locality-aware scheduling-policy study (bench_service
# --bench=sched): per device count {1, 2, 4}, a closed-loop lld probe
# measures saturated capacity, then each policy (lld / size / affinity
# / steal / full) faces the identical 1.5x-capacity Poisson trace over
# a six-tenant B-Tree fleet sized so one device's L2 holds one or two
# tenants' hot paths but never the whole fleet. The run gates full >=
# 1.15x lld saturated throughput at 4 devices with p99 not regressed
# (exit 7); throughput is simulated cycles, host-independent.
#
# Usage: scripts/record_bench.sh [build-dir] [bench4-out] [bench5-out] \
#            [bench6-out] [bench7-out] [bench8-out] [bench9-out] \
#            [bench10-out]
#
# RECORD_SECTIONS=4,5,6,7,8,9,10 (default: all) picks which BENCH_N
# sections run — e.g. RECORD_SECTIONS=9 records only the overload
# study.
#
# The pre-refactor fig12 baseline (the polling kernel before the
# event-driven scheduler and its profiling-driven fixes landed, commit
# ff093bb) is recorded as a constant: it cannot be re-measured from this
# tree. Override with PRE_REFACTOR_POLLING_WALL_S if you re-measure it.

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD=${1:-build}
OUT=${2:-BENCH_4.json}
OUT5=${3:-BENCH_5.json}
OUT6=${4:-BENCH_6.json}
OUT7=${5:-BENCH_7.json}
OUT8=${6:-BENCH_8.json}
OUT9=${7:-BENCH_9.json}
OUT10=${8:-BENCH_10.json}
PRE=${PRE_REFACTOR_POLLING_WALL_S:-110.9}
THREADS=${BENCH5_SIM_THREADS:-1,2,4,8}
EPOCHS=${BENCH6_SIM_EPOCHS:-1,20,64}
SECTIONS=${RECORD_SECTIONS:-4,5,6,7,8,9,10}
HOST_CORES=$(nproc)

# want N: is section BENCH_N selected?
want() {
    case ",$SECTIONS," in
      *",$1,"*) return 0 ;;
      *) return 1 ;;
    esac
}

SPEED_JSON=$(mktemp)
BENCH5_DIR=$(mktemp -d)
BENCH6_DIR= BENCH7_DIR= BENCH8_DIR= BENCH9_DIR= BENCH10_DIR=
trap 'rm -rf "$SPEED_JSON" "$BENCH5_DIR" \
    ${BENCH6_DIR:+"$BENCH6_DIR"} ${BENCH7_DIR:+"$BENCH7_DIR"} \
    ${BENCH8_DIR:+"$BENCH8_DIR"} ${BENCH9_DIR:+"$BENCH9_DIR"} \
    ${BENCH10_DIR:+"$BENCH10_DIR"}' EXIT

if want 4; then

echo "== bench_speed (polling vs event per workload) =="
"$BUILD"/bench/bench_speed --json="$SPEED_JSON"

time_fig12() {
    local kernel=$1
    local start end
    start=$(date +%s.%N)
    TTA_SIM_KERNEL="$kernel" "$BUILD"/bench/bench_fig12_speedup \
        --jobs=1 >/dev/null
    end=$(date +%s.%N)
    echo "$start $end" | awk '{printf "%.2f", $2 - $1}'
}

echo "== fig12 sweep, polling kernel =="
FIG12_POLLING=$(time_fig12 polling)
echo "wall_s: $FIG12_POLLING"
echo "== fig12 sweep, event kernel =="
FIG12_EVENT=$(time_fig12 event)
echo "wall_s: $FIG12_EVENT"

python3 - "$SPEED_JSON" "$OUT" "$PRE" "$FIG12_POLLING" "$FIG12_EVENT" <<'EOF'
import json
import sys

speed_json, out, pre, polling, event = sys.argv[1:6]
pre, polling, event = float(pre), float(polling), float(event)
speed = json.load(open(speed_json))
report = {
    "bench": "BENCH_4",
    "description": "simulator wall-clock: event-driven kernel vs "
                   "polling reference (identical simulated cycles)",
    "bench_speed": speed,
    "fig12": {
        "command": "bench_fig12_speedup --jobs=1",
        "pre_refactor_polling_wall_s": pre,
        "pre_refactor_note": "polling kernel before the event-driven "
                             "scheduler PR (commit ff093bb)",
        "wall_s_polling": polling,
        "wall_s_event": event,
        "speedup_vs_pre_refactor": round(pre / event, 2),
        "speedup_vs_current_polling": round(polling / event, 2),
    },
}
json.dump(report, open(out, "w"), indent=2)
print(f"wrote {out}: fig12 {pre:.1f}s -> {event:.1f}s "
      f"({pre / event:.2f}x vs pre-refactor baseline)")
EOF

fi # want 4

# ---------------------------------------------------------------------
# BENCH_5: threaded kernel vs event kernel across thread counts.
# ---------------------------------------------------------------------

if want 5; then

# The four largest bench_speed configs at their default sizes; every run
# re-verifies cycle equality across kernels and thread counts.
LARGE_CONFIGS="btree/base btree/tta nbody3d/fused rtnn/tta"
i=0
for cfg in $LARGE_CONFIGS; do
    echo "== bench_speed, $cfg, threaded sweep (sim-threads=$THREADS) =="
    "$BUILD"/bench/bench_speed --bench="$cfg" --sim-threads="$THREADS" \
        --json="$BENCH5_DIR/large_$i.json"
    i=$((i + 1))
done

# The smallest config: few queries, short run — the cycle barrier has the
# least work to amortize against, so this is where a regression vs the
# event kernel would show first.
echo "== bench_speed, smallest config, threaded sweep =="
"$BUILD"/bench/bench_speed --bench=btree/tta --keys=2000 --queries=256 \
    --sim-threads="$THREADS" --json="$BENCH5_DIR/small.json"

python3 - "$BENCH5_DIR" "$OUT5" "$HOST_CORES" "$THREADS" <<'EOF'
import glob
import json
import os
import sys

bench_dir, out, host_cores, threads = sys.argv[1:5]
host_cores = int(host_cores)
thread_list = [int(t) for t in threads.split(",")]

def ratios(path):
    """Per-config event wall and threaded wall per thread count."""
    doc = json.load(open(path))
    runs = doc["runs"]
    by_bench = {}
    for r in runs:
        entry = by_bench.setdefault(r["bench"], {"threaded": {}})
        if r["kernel"] == "event":
            entry["event_wall_s"] = r["wall_s"]
        elif r["kernel"] == "threaded":
            entry["threaded"][r["sim_threads"]] = r["wall_s"]
    for entry in by_bench.values():
        ev = entry["event_wall_s"]
        entry["threaded_vs_event_speedup"] = {
            str(t): round(ev / w, 3) if w > 0 else 0.0
            for t, w in sorted(entry["threaded"].items())
        }
        entry["threaded_wall_s"] = {
            str(t): w for t, w in sorted(entry["threaded"].items())
        }
        del entry["threaded"]
    return by_bench

large = {}
for path in sorted(glob.glob(os.path.join(bench_dir, "large_*.json"))):
    large.update(ratios(path))
small = ratios(os.path.join(bench_dir, "small.json"))

best = max(
    s
    for entry in large.values()
    for s in entry["threaded_vs_event_speedup"].values()
)
worst_small = min(
    s
    for entry in small.values()
    for s in entry["threaded_vs_event_speedup"].values()
)

notes = [
    "threaded_vs_event_speedup > 1 means the threaded kernel finished "
    "faster than the event kernel at that thread count; every run "
    "cross-checks simulated cycles against the serial kernels "
    "(bench_speed aborts on divergence)."
]
if host_cores < max(thread_list):
    notes.append(
        f"recorded on a {host_cores}-core host: thread counts above "
        f"{host_cores} time-share cores, so these ratios measure "
        "barrier/scheduling overhead, not parallel speedup; re-run "
        "this script on a multi-core host for the real numbers (the CI "
        "perf-smoke job gates threaded >= event on 4-vCPU runners)."
    )

report = {
    "bench": "BENCH_5",
    "description": "simulator wall-clock: threaded kernel vs "
                   "event-driven kernel per thread count (identical "
                   "simulated cycles)",
    "host_cores": host_cores,
    "sim_threads": thread_list,
    "largest_configs": large,
    "smallest_config": small,
    "summary": {
        "best_threaded_vs_event_speedup": round(best, 3),
        "smallest_config_worst_ratio": round(worst_small, 3),
    },
    "notes": notes,
}
json.dump(report, open(out, "w"), indent=2)
print(f"wrote {out}: best threaded-vs-event {best:.2f}x on "
      f"{host_cores} host cores; smallest-config worst ratio "
      f"{worst_small:.2f}x")
EOF

fi # want 5

# ---------------------------------------------------------------------
# BENCH_6: threaded kernel, thread-count x epoch-size sweep.
# ---------------------------------------------------------------------

if want 6; then

BENCH6_DIR=$(mktemp -d)

BENCH6_CONFIGS="btree/tta rtnn/tta"
i=0
for cfg in $BENCH6_CONFIGS; do
    echo "== bench_speed, $cfg, threaded sweep" \
         "(sim-threads=$THREADS, sim-epoch=$EPOCHS) =="
    "$BUILD"/bench/bench_speed --bench="$cfg" --sim-threads="$THREADS" \
        --sim-epoch="$EPOCHS" --json="$BENCH6_DIR/cfg_$i.json"
    i=$((i + 1))
done

python3 - "$BENCH6_DIR" "$OUT6" "$HOST_CORES" "$THREADS" "$EPOCHS" <<'EOF'
import glob
import json
import os
import sys

bench_dir, out, host_cores, threads, epochs = sys.argv[1:6]
host_cores = int(host_cores)
thread_list = [int(t) for t in threads.split(",")]
epoch_list = [int(e) for e in epochs.split(",")]

configs = {}
for path in sorted(glob.glob(os.path.join(bench_dir, "cfg_*.json"))):
    doc = json.load(open(path))
    for r in doc["runs"]:
        entry = configs.setdefault(r["bench"], {"threaded_wall_s": {}})
        if r["kernel"] == "event":
            entry["event_wall_s"] = r["wall_s"]
        elif r["kernel"] == "threaded":
            key = f"threads={r['sim_threads']},epoch={r['sim_epoch']}"
            entry["threaded_wall_s"][key] = r["wall_s"]

report = {
    "bench": "BENCH_6",
    "description": "simulator wall-clock: threaded kernel with "
                   "epoch-batched barriers vs event-driven kernel, per "
                   "(sim-threads, sim-epoch) pair (identical simulated "
                   "cycles, cross-checked by bench_speed)",
    "host_cores": host_cores,
    "sim_threads": thread_list,
    "sim_epochs": epoch_list,
    "configs": configs,
}

if host_cores < 2:
    # A single-core host time-shares every simulation thread: a
    # threaded/event wall-clock ratio measured here is scheduling
    # overhead, not speedup, and publishing it as "speedup" is exactly
    # the misreading BENCH_5's first recording invited. Record the raw
    # walls only.
    report["speedup"] = None
    report["notes"] = [
        f"recorded on a {host_cores}-core host: the speedup section is "
        "refused (threaded vs event on one core measures time-sharing "
        "overhead, not parallel speedup). Re-run on a multi-core host "
        "to populate it; the CI perf-smoke job gates threaded >= event "
        "at 4 threads on 4-vCPU runners."
    ]
    json.dump(report, open(out, "w"), indent=2)
    print(f"wrote {out}: raw walls only (speedup section refused on a "
          f"{host_cores}-core host)")
    sys.exit(0)

speedup = {}
worst = None
best_at_4 = {}
for bench, entry in configs.items():
    ev = entry["event_wall_s"]
    per_pair = {}
    for key, w in sorted(entry["threaded_wall_s"].items()):
        s = round(ev / w, 3) if w > 0 else 0.0
        per_pair[key] = s
        worst = s if worst is None else min(worst, s)
        if "threads=4," in key and key.split("epoch=")[1] != "1":
            cur = best_at_4.get(bench)
            best_at_4[bench] = s if cur is None else max(cur, s)
    speedup[bench] = per_pair

report["speedup"] = speedup
report["summary"] = {
    "worst_pair_ratio": worst,
    "speedup_at_4_threads_epoch_batched": best_at_4,
    "gates": "target: >= 2x at 4 threads on both configs with epoch "
             "batching on; >= 0.95x at every swept pair",
}
report["notes"] = [
    "sim-epoch=1 is the pre-epoch per-cycle barrier (the BENCH_5 "
    "configuration); larger epochs amortize the two L2 barriers over K "
    "cycles of per-shard work."
]
json.dump(report, open(out, "w"), indent=2)
print(f"wrote {out}: worst pair {worst}x; 4-thread epoch-batched "
      f"speedups {best_at_4}")
EOF

fi # want 6

# ---------------------------------------------------------------------
# BENCH_7: wide SoA node layouts vs scalar trees (SIMD functional path).
# ---------------------------------------------------------------------

if want 7; then

BENCH7_DIR=$(mktemp -d)

# Host SIMD capability: the vector flags the CPU advertises. Empty on
# non-x86 hosts without /proc/cpuinfo flags (e.g. some ARM kernels).
SIMD_FLAGS=$(grep -m1 -E '^(flags|Features)' /proc/cpuinfo 2>/dev/null \
    | tr ' ' '\n' \
    | grep -E '^(sse|sse2|sse3|ssse3|sse4_1|sse4_2|avx|avx2|avx512f|fma|neon|asimd)$' \
    | paste -sd, - || true)

echo "== bench_speed, wide SoA functional section =="
"$BUILD"/bench/bench_speed --bench=wide --json="$BENCH7_DIR/wide.json"

python3 - "$BENCH7_DIR/wide.json" "$OUT7" "$SIMD_FLAGS" "$HOST_CORES" <<'EOF'
import json
import sys

wide_json, out, simd_flags, host_cores = sys.argv[1:5]
doc = json.load(open(wide_json))
backend = doc.get("simd_backend", "unknown")
wide = doc.get("wide", [])

gated = [w for w in wide if w["gated"]]
worst_gated = min((w["speedup"] for w in gated), default=0.0)
all_identical = all(w["identical_results"] for w in wide)

notes = [
    "speedup = scalar binary-tree wall clock / best wide-SoA wall "
    "clock on the same queries; identical_results means the wide "
    "layouts returned bit-identical answers (checked per run, "
    "bench_speed exits 2 otherwise).",
]
if backend == "scalar":
    notes.append(
        "compiled with the scalar SIMD fallback: the wide-vs-scalar "
        "gate is skipped (there are no vector units to measure); "
        "rebuild without -DTTA_SIMD=OFF on a vector-capable host to "
        "populate meaningful ratios."
    )

report = {
    "bench": "BENCH_7",
    "description": "functional wall-clock: wide SoA node layouts on "
                   "the batched SIMD kernels vs the scalar binary "
                   "trees (identical query results)",
    "host_cores": int(host_cores),
    "simd_backend": backend,
    "cpu_simd_flags": simd_flags.split(",") if simd_flags else [],
    "wide": wide,
    "summary": {
        "worst_gated_speedup": round(worst_gated, 3),
        "all_results_identical": all_identical,
        "gate": "worst gated config (wide/raytrace, wide/rtnn) >= "
                "1.05x when simd_backend != scalar",
    },
    "notes": notes,
}
json.dump(report, open(out, "w"), indent=2)
print(f"wrote {out}: backend {backend}, worst gated speedup "
      f"{worst_gated:.2f}x, identical={all_identical}")
EOF

# Enforce the gate in a second, cheap pass (prints and exits nonzero on
# regression; auto-skips itself on the scalar backend).
"$BUILD"/bench/bench_speed --bench=wide --check-wide-speedup=1.05 \
    >/dev/null

fi # want 7

# ---------------------------------------------------------------------
# BENCH_8: traversal-as-a-service throughput and latency SLOs.
# ---------------------------------------------------------------------

if want 8; then

BENCH8_DIR=$(mktemp -d)

BENCH8_QUERIES=${BENCH8_QUERIES:-1000000}

echo "== bench_service, 5 scenarios x $BENCH8_QUERIES arrivals" \
     "(+ threaded determinism cross-check) =="
"$BUILD"/bench/bench_service --queries="$BENCH8_QUERIES" \
    --check-determinism --json="$BENCH8_DIR/service.jsonl"

python3 - "$BENCH8_DIR/service.jsonl" "$OUT8" "$HOST_CORES" \
    "$BENCH8_QUERIES" <<'EOF'
import json
import sys

jsonl, out, host_cores, queries = sys.argv[1:5]
scenarios = {}
for line in open(jsonl):
    line = line.strip()
    if not line:
        continue
    rec = json.loads(line)
    v = rec["values"]
    scenarios[rec["name"]] = {
        "completed": int(v["completed"]),
        "canceled": int(v["canceled"]),
        "batches": int(v["batches"]),
        "expired_dispatches": int(v["expired_dispatches"]),
        "makespan_cycles": rec["cycles"],
        "throughput_qpmc": round(v["throughput_qpmc"], 2),
        "lat_p50_us": round(v["lat_p50_us"], 2),
        "lat_p99_us": round(v["lat_p99_us"], 2),
        "lat_p999_us": round(v["lat_p999_us"], 2),
        "wall_ms": rec.get("wall_ms"),
    }

total = sum(s["completed"] for s in scenarios.values())
report = {
    "bench": "BENCH_8",
    "description": "traversal-as-a-service: sustained throughput and "
                   "tail latency per traffic scenario (three tenants "
                   "on one persistent device; qpmc = completed queries "
                   "per million simulated cycles, us at the configured "
                   "core clock)",
    "host_cores": int(host_cores),
    "arrivals_per_scenario": int(queries),
    "determinism_cross_check": "passed: every scenario bit-identical "
                               "under the threaded kernel (2 sim "
                               "threads); bench_service exits 2 on "
                               "divergence",
    "scenarios": scenarios,
    "summary": {
        "total_completed_queries": total,
        "min_throughput_qpmc": round(
            min(s["throughput_qpmc"] for s in scenarios.values()), 2),
        "worst_p999_us": round(
            max(s["lat_p999_us"] for s in scenarios.values()), 2),
    },
}
json.dump(report, open(out, "w"), indent=2)
print(f"wrote {out}: {total} completed queries across "
      f"{len(scenarios)} scenarios")
EOF

fi # want 8

# ---------------------------------------------------------------------
# BENCH_9: multi-device open-loop overload study.
# ---------------------------------------------------------------------

if want 9; then

BENCH9_DIR=$(mktemp -d)
BENCH9_QUERIES=${BENCH9_QUERIES:-120000}

echo "== bench_service --bench=overload ($BENCH9_QUERIES arrivals" \
     "per cell, devices 1/2/4, 1.8x scaling gate) =="
"$BUILD"/bench/bench_service --bench=overload \
    --queries="$BENCH9_QUERIES" --check-overload-scaling=1.8 \
    --json="$BENCH9_DIR/overload.jsonl"

python3 - "$BENCH9_DIR/overload.jsonl" "$OUT9" "$HOST_CORES" \
    "$BENCH9_QUERIES" <<'EOF'
import json
import sys

jsonl, out, host_cores, queries = sys.argv[1:5]
probes = {}
cells = {}
for line in open(jsonl):
    line = line.strip()
    if not line:
        continue
    rec = json.loads(line)
    name = rec["name"]
    if not name.startswith("overload/"):
        continue
    v = rec["values"]
    d = str(int(v["devices"]))
    if name.startswith("overload/probe/"):
        probes[d] = {
            "closed_loop_capacity_qpmc": round(v["throughput_qpmc"], 2),
            "completed": int(v["completed"]),
            "batches": int(v["batches"]),
        }
        continue
    cell = {
        "offered_factor": v["offered_factor"],
        "offered_qpmc": round(v["offered_qpmc"], 2),
        "throughput_qpmc": round(v["throughput_qpmc"], 2),
        "lat_p50_us": round(v["lat_p50_us"], 2),
        "lat_p99_us": round(v["lat_p99_us"], 2),
        "lat_p999_us": round(v["lat_p999_us"], 2),
        "expired_dispatches": int(v["expired_dispatches"]),
    }
    for cls in ("latency", "throughput"):
        for pct in ("p50", "p99", "p999"):
            key = f"class_{cls}_{pct}_cycles"
            if key in v:
                cell[key] = int(v[key])
    cells.setdefault(d, []).append(cell)

for lst in cells.values():
    lst.sort(key=lambda c: c["offered_factor"])

sat = {
    d: next((c["throughput_qpmc"] for c in lst
             if c["offered_factor"] == 2.0), None)
    for d, lst in cells.items()
}
scaling = (round(sat["4"] / sat["1"], 2)
           if sat.get("4") and sat.get("1") else None)

report = {
    "bench": "BENCH_9",
    "description": "multi-device open-loop overload study: per device "
                   "count, a closed-loop probe measures the group's "
                   "saturated capacity, then Poisson arrivals offer "
                   "0.2x-2x of it (three tenants, btree lane in the "
                   "latency-sensitive SLO class; qpmc = completed "
                   "queries per million simulated cycles)",
    "host_cores": int(host_cores),
    "arrivals_per_cell": int(queries),
    "scaling_gate": "passed: saturated (2.0x offered) aggregate "
                    "throughput at 4 devices >= 1.8x one device "
                    "(bench_service exits 6 otherwise; simulated "
                    "cycles, host-independent)",
    "closed_loop_capacity": probes,
    "offered_load_sweep": cells,
    "summary": {
        "saturated_qpmc_by_devices": sat,
        "d4_vs_d1_saturated_scaling": scaling,
    },
}
json.dump(report, open(out, "w"), indent=2)
print(f"wrote {out}: d4/d1 saturated scaling {scaling}x "
      f"({len(cells)} device counts x "
      f"{max((len(l) for l in cells.values()), default=0)} "
      f"load factors)")
EOF

fi # want 9

# ---------------------------------------------------------------------
# BENCH_10: locality-aware scheduling-policy study.
# ---------------------------------------------------------------------

if want 10; then

BENCH10_DIR=$(mktemp -d)
BENCH10_QUERIES=${BENCH10_QUERIES:-120000}

echo "== bench_service --bench=sched ($BENCH10_QUERIES arrivals per" \
     "cell, policies lld/size/affinity/steal/full x devices 1/2/4," \
     "1.15x gain gate at d4) =="
"$BUILD"/bench/bench_service --bench=sched \
    --queries="$BENCH10_QUERIES" --check-sched-gain=1.15 \
    --json="$BENCH10_DIR/sched.jsonl"

python3 - "$BENCH10_DIR/sched.jsonl" "$OUT10" "$HOST_CORES" \
    "$BENCH10_QUERIES" <<'EOF'
import json
import sys

jsonl, out, host_cores, queries = sys.argv[1:5]
probes = {}
cells = {}
for line in open(jsonl):
    line = line.strip()
    if not line:
        continue
    rec = json.loads(line)
    name = rec["name"]
    if not name.startswith("sched/"):
        continue
    v = rec["values"]
    d = str(int(v["devices"]))
    if name.startswith("sched/probe/"):
        probes[d] = {
            "closed_loop_capacity_qpmc": round(v["throughput_qpmc"], 2),
            "completed": int(v["completed"]),
            "batches": int(v["batches"]),
        }
        continue
    policy = name.rsplit("/", 1)[1]
    cells.setdefault(d, {})[policy] = {
        "throughput_qpmc": round(v["throughput_qpmc"], 2),
        "lat_p50_us": round(v["lat_p50_us"], 2),
        "lat_p99_us": round(v["lat_p99_us"], 2),
        "lat_p999_us": round(v["lat_p999_us"], 2),
        "steals": int(v["steals"]),
        "expired_dispatches": int(v["expired_dispatches"]),
        "batches": int(v["batches"]),
        "l2_misses": int(v["l2_misses"]),
        "dram_reads": int(v["dram_reads"]),
    }

gains = {
    d: {
        pol: round(by_pol[pol]["throughput_qpmc"] /
                   by_pol["lld"]["throughput_qpmc"], 3)
        for pol in by_pol
    }
    for d, by_pol in cells.items()
    if "lld" in by_pol
}
d4 = cells.get("4", {})
gate_gain = gains.get("4", {}).get("full")
locality = None
if "lld" in d4 and "affinity" in d4 and d4["lld"]["l2_misses"]:
    locality = round(
        1.0 - d4["affinity"]["l2_misses"] / d4["lld"]["l2_misses"], 3)

report = {
    "bench": "BENCH_10",
    "description": "locality-aware multi-device scheduling: per device "
                   "count, a closed-loop lld probe measures saturated "
                   "capacity, then every policy faces identical "
                   "1.5x-capacity Poisson arrivals over a six-tenant "
                   "B-Tree fleet whose per-tenant hot sets overflow one "
                   "device L2 (qpmc = completed queries per million "
                   "simulated cycles)",
    "host_cores": int(host_cores),
    "arrivals_per_cell": int(queries),
    "gain_gate": "passed: full >= 1.15x lld saturated throughput at 4 "
                 "devices with p99 not regressed (bench_service exits "
                 "7 otherwise; simulated cycles, host-independent)",
    "closed_loop_capacity": probes,
    "policies": cells,
    "throughput_vs_lld": gains,
    "summary": {
        "d4_full_vs_lld": gate_gain,
        "d4_affinity_l2_miss_reduction": locality,
        "d4_p99_us": {pol: c["lat_p99_us"] for pol, c in d4.items()},
    },
}
json.dump(report, open(out, "w"), indent=2)
print(f"wrote {out}: d4 full/lld {gate_gain}x, affinity L2-miss "
      f"reduction {locality}")
EOF

fi # want 10
