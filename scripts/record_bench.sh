#!/usr/bin/env bash
# Record simulator-speed benchmarks into BENCH_4.json.
#
# Runs bench_speed (every workload under both kernels, verifying the
# simulated cycle counts match) and times a serial bench_fig12_speedup
# sweep under the polling and event kernels, then merges everything into
# one JSON report next to the repo root.
#
# Usage: scripts/record_bench.sh [build-dir] [out-file]
#
# The pre-refactor fig12 baseline (the polling kernel before the
# event-driven scheduler and its profiling-driven fixes landed, commit
# ff093bb) is recorded as a constant: it cannot be re-measured from this
# tree. Override with PRE_REFACTOR_POLLING_WALL_S if you re-measure it.

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD=${1:-build}
OUT=${2:-BENCH_4.json}
PRE=${PRE_REFACTOR_POLLING_WALL_S:-110.9}

SPEED_JSON=$(mktemp)
trap 'rm -f "$SPEED_JSON"' EXIT

echo "== bench_speed (polling vs event per workload) =="
"$BUILD"/bench/bench_speed --json="$SPEED_JSON"

time_fig12() {
    local kernel=$1
    local start end
    start=$(date +%s.%N)
    TTA_SIM_KERNEL="$kernel" "$BUILD"/bench/bench_fig12_speedup \
        --jobs=1 >/dev/null
    end=$(date +%s.%N)
    echo "$start $end" | awk '{printf "%.2f", $2 - $1}'
}

echo "== fig12 sweep, polling kernel =="
FIG12_POLLING=$(time_fig12 polling)
echo "wall_s: $FIG12_POLLING"
echo "== fig12 sweep, event kernel =="
FIG12_EVENT=$(time_fig12 event)
echo "wall_s: $FIG12_EVENT"

python3 - "$SPEED_JSON" "$OUT" "$PRE" "$FIG12_POLLING" "$FIG12_EVENT" <<'EOF'
import json
import sys

speed_json, out, pre, polling, event = sys.argv[1:6]
pre, polling, event = float(pre), float(polling), float(event)
speed = json.load(open(speed_json))
report = {
    "bench": "BENCH_4",
    "description": "simulator wall-clock: event-driven kernel vs "
                   "polling reference (identical simulated cycles)",
    "bench_speed": speed,
    "fig12": {
        "command": "bench_fig12_speedup --jobs=1",
        "pre_refactor_polling_wall_s": pre,
        "pre_refactor_note": "polling kernel before the event-driven "
                             "scheduler PR (commit ff093bb)",
        "wall_s_polling": polling,
        "wall_s_event": event,
        "speedup_vs_pre_refactor": round(pre / event, 2),
        "speedup_vs_current_polling": round(polling / event, 2),
    },
}
json.dump(report, open(out, "w"), indent=2)
print(f"wrote {out}: fig12 {pre:.1f}s -> {event:.1f}s "
      f"({pre / event:.2f}x vs pre-refactor baseline)")
EOF
