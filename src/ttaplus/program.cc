#include "ttaplus/program.hh"

#include "sim/logging.hh"

namespace tta::ttaplus {

uint32_t
opUnitLatency(OpUnit unit)
{
    switch (unit) {
      case OpUnit::Vec3AddSub: return 4;
      case OpUnit::Multiplier: return 4;
      case OpUnit::Rcp: return 4;
      case OpUnit::Cross: return 5;
      case OpUnit::Dot: return 5;
      case OpUnit::Vec3Cmp: return 1;
      case OpUnit::MinMax: return 1;
      case OpUnit::MaxMin: return 1;
      case OpUnit::Logical: return 1;
      case OpUnit::Sqrt: return 11;
      case OpUnit::RXform: return 4;
      case OpUnit::Push: return 1;
      case OpUnit::kCount: break;
    }
    panic("bad OpUnit");
}

const char *
opUnitName(OpUnit unit)
{
    switch (unit) {
      case OpUnit::Vec3AddSub: return "Vec3AddSub";
      case OpUnit::Multiplier: return "Multiplier";
      case OpUnit::Rcp: return "RCP";
      case OpUnit::Cross: return "Cross";
      case OpUnit::Dot: return "Dot";
      case OpUnit::Vec3Cmp: return "Vec3CMP";
      case OpUnit::MinMax: return "MINMAX";
      case OpUnit::MaxMin: return "MAXMIN";
      case OpUnit::Logical: return "Logical";
      case OpUnit::Sqrt: return "SQRT";
      case OpUnit::RXform: return "R-XFORM";
      case OpUnit::Push: return "PUSH";
      case OpUnit::kCount: break;
    }
    return "?";
}

Program::Program(std::string name, std::vector<Uop> uops)
    : name_(std::move(name)), uops_(std::move(uops))
{
    fatal_if(uops_.empty(), "TTA+ program '%s' has no uops", name_.c_str());
}

std::array<uint32_t, kNumOpUnits>
Program::unitCounts() const
{
    std::array<uint32_t, kNumOpUnits> counts{};
    for (const Uop &uop : uops_)
        ++counts[static_cast<uint32_t>(uop.unit)];
    return counts;
}

uint32_t
Program::serialLatency() const
{
    uint32_t total = 0;
    for (const Uop &uop : uops_)
        total += opUnitLatency(uop.unit);
    return total;
}

namespace programs {

namespace {

std::vector<Uop>
seq(std::initializer_list<OpUnit> units)
{
    std::vector<Uop> uops;
    for (OpUnit u : units)
        uops.push_back({u});
    return uops;
}

} // namespace

Program
queryKeyInner()
{
    // 12 uops: three min/max + max/min pairs walk the 9 keys, three
    // Vec3 CMPs produce per-triple relations, three ORs reduce them into
    // the found flag and the one-hot child selector (Fig 9).
    return Program("querykey.inner",
                   seq({OpUnit::MinMax, OpUnit::MaxMin, OpUnit::MinMax,
                        OpUnit::MaxMin, OpUnit::MinMax, OpUnit::MaxMin,
                        OpUnit::Vec3Cmp, OpUnit::Vec3Cmp, OpUnit::Vec3Cmp,
                        OpUnit::Logical, OpUnit::Logical,
                        OpUnit::Logical}));
}

Program
queryKeyLeaf()
{
    // 3 uops: equality over three key triples.
    return Program("querykey.leaf", seq({OpUnit::Vec3Cmp, OpUnit::Vec3Cmp,
                                         OpUnit::Vec3Cmp}));
}

Program
pointDistInner()
{
    // dis = b - a; dis2 = dot(dis, dis); dis2 < threshold2 (Algorithm 2;
    // threshold is stored pre-squared in the node).
    return Program("pointdist.inner",
                   seq({OpUnit::Vec3AddSub, OpUnit::Dot, OpUnit::Vec3Cmp}));
}

Program
nbodyForceLeaf()
{
    // inv = 1/sqrt(d2 + eps2) via SQRT + scalar multiplies; the final
    // three-component scale folds into one R-XFORM invocation (the
    // "combining three multiplications into a single R-XFORM operation"
    // optimization of Section IV-A).
    return Program("nbody.force.leaf",
                   seq({OpUnit::Multiplier, OpUnit::Sqrt,
                        OpUnit::Multiplier, OpUnit::Multiplier,
                        OpUnit::RXform}));
}

Program
rayBoxInner()
{
    // Slab test: per-axis (lo - o) * (1/d) for both planes, then the
    // min/max reduction and the final comparison (Fig 5 left).
    return Program(
        "raybox.inner",
        seq({OpUnit::Vec3AddSub, OpUnit::Vec3AddSub,          // lo-o, hi-o
             OpUnit::Rcp, OpUnit::Rcp, OpUnit::Rcp,           // 1/d xyz
             OpUnit::Multiplier, OpUnit::Multiplier,
             OpUnit::Multiplier, OpUnit::Multiplier,
             OpUnit::Multiplier, OpUnit::Multiplier,          // 6 plane t's
             OpUnit::MinMax, OpUnit::MaxMin, OpUnit::MinMax,
             OpUnit::MaxMin, OpUnit::MinMax, OpUnit::MaxMin,  // reduce
             OpUnit::Vec3Cmp, OpUnit::Logical}));             // hit?
}

Program
rtnnPointDistLeaf()
{
    return Program("rtnn.pointdist.leaf",
                   seq({OpUnit::Vec3AddSub, OpUnit::Multiplier, OpUnit::Dot,
                        OpUnit::Vec3Cmp, OpUnit::Logical}));
}

Program
raySphereLeaf()
{
    // oc = o - c; a = dot(d,d); b = dot(oc,d); c = dot(oc,oc) - r^2;
    // disc = b^2 - a*c; sqrt(disc); t = (-b - sqrt)/a; range checks.
    return Program(
        "raysphere.leaf",
        seq({OpUnit::Vec3AddSub, OpUnit::Vec3AddSub, OpUnit::Vec3AddSub,
             OpUnit::Vec3AddSub, OpUnit::Vec3AddSub,
             OpUnit::Dot, OpUnit::Dot, OpUnit::Dot,
             OpUnit::Multiplier, OpUnit::Multiplier, OpUnit::Multiplier,
             OpUnit::Multiplier, OpUnit::Multiplier,
             OpUnit::Sqrt, OpUnit::Rcp,
             OpUnit::Vec3Cmp, OpUnit::Vec3Cmp, OpUnit::Logical}));
}

Program
rayTriangleLeaf()
{
    // Moller-Trumbore (Fig 5 right).
    return Program(
        "raytri.leaf",
        seq({OpUnit::Vec3AddSub, OpUnit::Vec3AddSub, OpUnit::Vec3AddSub,
             OpUnit::Cross, OpUnit::Cross,
             OpUnit::Dot, OpUnit::Dot, OpUnit::Dot, OpUnit::Dot,
             OpUnit::Rcp,
             OpUnit::Multiplier, OpUnit::Multiplier, OpUnit::Multiplier,
             OpUnit::Vec3Cmp, OpUnit::Vec3Cmp,
             OpUnit::Logical, OpUnit::Logical}));
}

Program
rayTransform()
{
    return Program("ray.xform", seq({OpUnit::RXform}));
}

Program
rectOverlap()
{
    // Seven children x four interval comparisons = 28 compares packed
    // three-wide into the Vec3 CMP units, then per-child AND reduction
    // packed through the logical units.
    return Program(
        "rtree.overlap",
        seq({OpUnit::Vec3Cmp, OpUnit::Vec3Cmp, OpUnit::Vec3Cmp,
             OpUnit::Vec3Cmp, OpUnit::Vec3Cmp, OpUnit::Vec3Cmp,
             OpUnit::Vec3Cmp, OpUnit::Vec3Cmp, OpUnit::Vec3Cmp,
             OpUnit::Vec3Cmp, OpUnit::Logical, OpUnit::Logical,
             OpUnit::Logical, OpUnit::Logical}));
}

} // namespace programs

} // namespace tta::ttaplus
