/**
 * @file
 * TTA+ timing engine.
 *
 * Computes the completion time of an intersection-test program executed on
 * the modular OP units (Fig 10): uops execute serially, each paying an
 * interconnect hop (one transfer per destination port per cycle) plus the
 * unit latency (Table I), with structural queuing when concurrent tests
 * contend for the same single-instance unit. This produces the ~10x
 * Ray-Box latency growth of Fig 18 while throughput stays reasonable
 * because the units are pipelined (initiation interval 1).
 *
 * Contention is modelled with work-conserving slot calendars: a uop takes
 * the first free issue slot at (or after) its arrival, so a test delayed
 * upstream does not block idle capacity for others (no convoy effect).
 */

#ifndef TTA_TTAPLUS_ENGINE_HH
#define TTA_TTAPLUS_ENGINE_HH

#include <array>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"
#include "sim/trace.hh"
#include "ttaplus/program.hh"

namespace tta::ttaplus {

/**
 * Per-resource issue-slot calendar: at most `capacity` issues per cycle.
 * Reservations may backfill idle slots before later reservations.
 *
 * Implemented as a cycle-indexed window (counts_[i] = reservations at
 * cycle base_ + i) with path-compressed skip links over fully-booked
 * runs: skip_[i], when set, points past a run of slots known to be at
 * capacity. Counts never decrease, so a link stays valid forever, and
 * each reserve() is amortized near-O(1) even when thousands of
 * contending tests have booked the calendar solid — the previous
 * ordered-map implementation walked the whole booked run on every
 * reservation, which was quadratic under congestion and dominated the
 * simulator's wall-clock on TTA+ workloads.
 */
class SlotCalendar
{
  public:
    explicit SlotCalendar(uint32_t capacity = 1)
        : capacity_(capacity == 0 ? 1 : capacity)
    {}

    /** Reserve the first slot at or after `earliest`; returns the slot. */
    sim::Cycle
    reserve(sim::Cycle earliest)
    {
        size_t start = earliest > base_
                           ? static_cast<size_t>(earliest - base_)
                           : 0;
        ensure(start);
        size_t j = start;
        while (counts_[j] >= capacity_) {
            size_t next = skip_[j] ? skip_[j] : j + 1;
            ensure(next);
            j = next;
        }
        // Every index on the walk was at capacity: point the whole run
        // at j so the next contender jumps over it in one hop.
        for (size_t i = start; i < j;) {
            size_t next = skip_[i] ? skip_[i] : i + 1;
            skip_[i] = j;
            i = next;
        }
        if (counts_[j]++ == 0)
            ++occupied_;
        return base_ + static_cast<sim::Cycle>(j);
    }

    /** Drop bookkeeping for slots before `now`. */
    void
    prune(sim::Cycle now)
    {
        if (now <= base_)
            return;
        size_t drop = static_cast<size_t>(now - base_);
        if (drop >= counts_.size()) {
            counts_.clear();
            skip_.clear();
            occupied_ = 0;
            base_ = now;
            return;
        }
        for (size_t i = 0; i < drop; ++i)
            occupied_ -= counts_[i] != 0;
        counts_.erase(counts_.begin(),
                      counts_.begin() + static_cast<ptrdiff_t>(drop));
        skip_.erase(skip_.begin(),
                    skip_.begin() + static_cast<ptrdiff_t>(drop));
        // Links always point forward (target > index), so surviving
        // targets stay positive after rebasing; 0 remains "unset".
        for (size_t &s : skip_)
            s = s ? s - drop : 0;
        base_ = now;
    }

    /** Distinct cycles holding at least one reservation. */
    size_t pendingSlots() const { return occupied_; }

  private:
    void
    ensure(size_t index)
    {
        if (index >= counts_.size()) {
            counts_.resize(index + 1, 0);
            skip_.resize(index + 1, 0);
        }
    }

    uint32_t capacity_;
    sim::Cycle base_ = 0;
    size_t occupied_ = 0;
    std::vector<uint32_t> counts_;
    std::vector<size_t> skip_; //!< 0 = unset (next candidate is i + 1)
};

class TtaPlusEngine
{
  public:
    /**
     * @param trace_prefix per-instance name prefix for OP-unit trace
     *        streams ("<prefix>.op.<unit>"); stats share one namespace
     *        across SMs but trace streams must not, so the owning
     *        RtaUnit passes its own name. Empty = "ttaplus".
     */
    TtaPlusEngine(const sim::Config &cfg, sim::StatRegistry &stats,
                  const std::string &trace_prefix = "");

    /**
     * Execute one intersection test.
     * @param now     dispatch cycle.
     * @param prog    the uop program (ConfigI / ConfigL result).
     * @param is_leaf classifies the latency statistic (Fig 18 bottom).
     * @return completion cycle.
     */
    sim::Cycle execute(sim::Cycle now, const Program &prog, bool is_leaf);

    /**
     * Execute `count` independent tests dispatched on the same cycle
     * (e.g. the W/2 two-box slices of a wide SoA node). Timing-identical
     * to `count` execute() calls: each test books its own uop slots, so
     * contention between the slices is modelled, and the return value is
     * the completion cycle of the last-dispatched test.
     */
    sim::Cycle executeMany(sim::Cycle now, const Program &prog,
                           bool is_leaf, uint32_t count);

    /** Cycles unit was computing (for Fig 18 utilization). */
    uint64_t busyCycles(OpUnit unit) const
    {
        return busy_[static_cast<uint32_t>(unit)]->value();
    }

  private:
    const sim::Config cfg_;

    std::array<SlotCalendar, kNumOpUnits> copySlots_;
    std::array<SlotCalendar, kNumOpUnits> portSlots_;
    sim::Cycle lastPrune_ = 0;

    /** Per-unit reservation-span trace streams (nullptr when off). */
    std::array<sim::TraceStream *, kNumOpUnits> trace_{};

    std::array<sim::Counter *, kNumOpUnits> busy_{};
    sim::Counter *tests_;
    sim::Counter *uops_;
    sim::Histogram *innerLatency_;
    sim::Histogram *leafLatency_;
};

} // namespace tta::ttaplus

#endif // TTA_TTAPLUS_ENGINE_HH
