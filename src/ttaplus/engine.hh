/**
 * @file
 * TTA+ timing engine.
 *
 * Computes the completion time of an intersection-test program executed on
 * the modular OP units (Fig 10): uops execute serially, each paying an
 * interconnect hop (one transfer per destination port per cycle) plus the
 * unit latency (Table I), with structural queuing when concurrent tests
 * contend for the same single-instance unit. This produces the ~10x
 * Ray-Box latency growth of Fig 18 while throughput stays reasonable
 * because the units are pipelined (initiation interval 1).
 *
 * Contention is modelled with work-conserving slot calendars: a uop takes
 * the first free issue slot at (or after) its arrival, so a test delayed
 * upstream does not block idle capacity for others (no convoy effect).
 */

#ifndef TTA_TTAPLUS_ENGINE_HH
#define TTA_TTAPLUS_ENGINE_HH

#include <array>
#include <map>
#include <string>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"
#include "sim/trace.hh"
#include "ttaplus/program.hh"

namespace tta::ttaplus {

/**
 * Per-resource issue-slot calendar: at most `capacity` issues per cycle.
 * Reservations may backfill idle slots before later reservations.
 */
class SlotCalendar
{
  public:
    explicit SlotCalendar(uint32_t capacity = 1)
        : capacity_(capacity == 0 ? 1 : capacity)
    {}

    /** Reserve the first slot at or after `earliest`; returns the slot. */
    sim::Cycle
    reserve(sim::Cycle earliest)
    {
        sim::Cycle t = earliest;
        auto it = used_.lower_bound(t);
        while (it != used_.end() && it->first == t &&
               it->second >= capacity_) {
            ++t;
            ++it;
        }
        ++used_[t];
        return t;
    }

    /** Drop bookkeeping for slots before `now`. */
    void
    prune(sim::Cycle now)
    {
        used_.erase(used_.begin(), used_.lower_bound(now));
    }

    size_t pendingSlots() const { return used_.size(); }

  private:
    uint32_t capacity_;
    std::map<sim::Cycle, uint32_t> used_;
};

class TtaPlusEngine
{
  public:
    /**
     * @param trace_prefix per-instance name prefix for OP-unit trace
     *        streams ("<prefix>.op.<unit>"); stats share one namespace
     *        across SMs but trace streams must not, so the owning
     *        RtaUnit passes its own name. Empty = "ttaplus".
     */
    TtaPlusEngine(const sim::Config &cfg, sim::StatRegistry &stats,
                  const std::string &trace_prefix = "");

    /**
     * Execute one intersection test.
     * @param now     dispatch cycle.
     * @param prog    the uop program (ConfigI / ConfigL result).
     * @param is_leaf classifies the latency statistic (Fig 18 bottom).
     * @return completion cycle.
     */
    sim::Cycle execute(sim::Cycle now, const Program &prog, bool is_leaf);

    /** Cycles unit was computing (for Fig 18 utilization). */
    uint64_t busyCycles(OpUnit unit) const
    {
        return busy_[static_cast<uint32_t>(unit)]->value();
    }

  private:
    const sim::Config cfg_;

    std::array<SlotCalendar, kNumOpUnits> copySlots_;
    std::array<SlotCalendar, kNumOpUnits> portSlots_;
    sim::Cycle lastPrune_ = 0;

    /** Per-unit reservation-span trace streams (nullptr when off). */
    std::array<sim::TraceStream *, kNumOpUnits> trace_{};

    std::array<sim::Counter *, kNumOpUnits> busy_{};
    sim::Counter *tests_;
    sim::Counter *uops_;
    sim::Histogram *innerLatency_;
    sim::Histogram *leafLatency_;
};

} // namespace tta::ttaplus

#endif // TTA_TTAPLUS_ENGINE_HH
