/**
 * @file
 * TTA+ intersection-test programs.
 *
 * A Program is the uop sequence configured into the OP Dest Tables by
 * ConfigI / ConfigL before a kernel launch. This file provides the
 * canonical programs for every Table III row, constructed so that the uop
 * counts per unit type match the paper's breakdown exactly; the
 * bench_tab01_03_04_hw bench derives Table III from these programs.
 */

#ifndef TTA_TTAPLUS_PROGRAM_HH
#define TTA_TTAPLUS_PROGRAM_HH

#include <array>
#include <string>
#include <vector>

#include "ttaplus/uop.hh"

namespace tta::ttaplus {

class Program
{
  public:
    Program() = default;
    Program(std::string name, std::vector<Uop> uops);

    const std::string &name() const { return name_; }
    const std::vector<Uop> &uops() const { return uops_; }
    size_t size() const { return uops_.size(); }
    bool empty() const { return uops_.empty(); }

    /** uop count per unit type (a Table III row). */
    std::array<uint32_t, kNumOpUnits> unitCounts() const;

    /** Sum of unit latencies: the no-contention lower bound, excluding
     *  interconnect hops. */
    uint32_t serialLatency() const;

  private:
    std::string name_;
    std::vector<Uop> uops_;
};

/** Canonical programs (Table III rows). */
namespace programs {

/** B-Tree inner: Query-Key over 9 keys.
 *  12 uops: 6 MIN/MAX, 3 Vec3 CMP, 3 Vec3 OR(Logical). */
Program queryKeyInner();
/** B-Tree leaf: Query-Key equality. 3 uops: 3 Vec3 CMP. */
Program queryKeyLeaf();

/** N-Body inner: Point-to-Point distance.
 *  3 uops: Vec3 SUB, DOT, Vec3 CMP. */
Program pointDistInner();
/** N-Body leaf: force computation. 5 uops: 3 MUL, SQRT, R-XFORM. */
Program nbodyForceLeaf();

/** Ray-Box (RTNN / WKND_PT / LumiBench inner).
 *  19 uops: 2 Vec3 SUB, 6 MUL, 3 RCP, 6 MIN/MAX, 1 Vec3 CMP, 1 OR. */
Program rayBoxInner();
/** RTNN leaf: Point-to-Point distance.
 *  5 uops: Vec3 SUB, MUL, DOT, Vec3 CMP, OR. */
Program rtnnPointDistLeaf();
/** WKND_PT leaf: Ray-Sphere.
 *  18 uops: 5 Vec3 SUB, 5 MUL, 1 SQRT, 1 RCP, 3 DOT, 2 CMP, 1 OR. */
Program raySphereLeaf();
/** LumiBench leaf: Ray-Triangle (Moller-Trumbore).
 *  17 uops: 3 Vec3 SUB, 3 MUL, 1 RCP, 2 CROSS, 4 DOT, 2 CMP, 2 OR. */
Program rayTriangleLeaf();

/** Two-level BVH transition: single R-XFORM uop. */
Program rayTransform();

/** Extension (not in Table III): 7-wide R-Tree rectangle-overlap test —
 *  28 interval comparisons through the Vec3 CMP units plus the AND
 *  reduction. 14 uops. */
Program rectOverlap();

} // namespace programs

} // namespace tta::ttaplus

#endif // TTA_TTAPLUS_PROGRAM_HH
