/**
 * @file
 * TTA+ operation units and micro-ops (Table I).
 *
 * TTA+ decomposes the fixed-function intersection pipelines into
 * individual OP units joined by a 16x16 crosspoint interconnect. An
 * intersection test is a *program*: a sequence of uops, each executed by
 * one OP unit, with operands and intermediate values carried over the
 * interconnect (120B wide: 64B node + 32B ray + 24B intermediates).
 */

#ifndef TTA_TTAPLUS_UOP_HH
#define TTA_TTAPLUS_UOP_HH

#include <cstdint>

namespace tta::ttaplus {

/** OP unit types (Table I). */
enum class OpUnit : uint8_t
{
    Vec3AddSub, //!< pipelined FP32 Vec3 +/- Vec3, 4 cycles
    Multiplier, //!< pipelined FP32 scalar multiply, 4 cycles
    Rcp,        //!< FP32 1/x, 4 cycles
    Cross,      //!< Vec3 cross product, 5 cycles
    Dot,        //!< Vec3 dot product, 5 cycles
    Vec3Cmp,    //!< (a <= b) per component, 1 cycle
    MinMax,     //!< MIN(a, MAX(b, c)), 1 cycle
    MaxMin,     //!< MAX(a, MIN(b, c)), 1 cycle
    Logical,    //!< AND/OR/XOR/NOT, 1 cycle
    Sqrt,       //!< square root, 11 cycles
    RXform,     //!< ray transform matrix multiply, 4 cycles
    Push,       //!< push child addresses to the traversal stack
    kCount,
};

inline constexpr uint32_t kNumOpUnits =
    static_cast<uint32_t>(OpUnit::kCount);

/** Execution latency in cycles (Table I). */
uint32_t opUnitLatency(OpUnit unit);

const char *opUnitName(OpUnit unit);

/** One micro-op: the unit it visits. Operand routing is captured by the
 *  layouts (Fig 11) and resolved functionally by the traversal spec; the
 *  timing model needs only the unit sequence. */
struct Uop
{
    OpUnit unit;
};

} // namespace tta::ttaplus

#endif // TTA_TTAPLUS_UOP_HH
