#include "ttaplus/engine.hh"

#include "sim/logging.hh"

namespace tta::ttaplus {

TtaPlusEngine::TtaPlusEngine(const sim::Config &cfg,
                             sim::StatRegistry &stats,
                             const std::string &trace_prefix)
    : cfg_(cfg)
{
    sim::Tracer *tracer = stats.tracer();
    const std::string prefix =
        trace_prefix.empty() ? "ttaplus" : trace_prefix;
    for (uint32_t u = 0; u < kNumOpUnits; ++u) {
        OpUnit unit = static_cast<OpUnit>(u);
        uint32_t copies = unit == OpUnit::Rcp ? cfg_.rcpUnitCopies
                                              : cfg_.opUnitCopies;
        copySlots_[u] = SlotCalendar(copies);
        // Each unit instance owns a crosspoint input port (the 16x16
        // switch serves one transfer per port per cycle).
        portSlots_[u] = SlotCalendar(copies);
        busy_[u] = &stats.counter(std::string("ttaplus.busy.") +
                                  opUnitName(unit));
        if (tracer) {
            trace_[u] = tracer->stream(prefix + ".op." + opUnitName(unit),
                                       sim::TraceOp);
        }
    }
    tests_ = &stats.counter("ttaplus.tests");
    uops_ = &stats.counter("ttaplus.uops");
    innerLatency_ = &stats.histogram("ttaplus.inner_latency", 16.0, 64);
    leafLatency_ = &stats.histogram("ttaplus.leaf_latency", 16.0, 64);
}

sim::Cycle
TtaPlusEngine::execute(sim::Cycle now, const Program &prog, bool is_leaf)
{
    // Amortized cleanup of stale calendar entries.
    if (now > lastPrune_ + 4096) {
        for (uint32_t u = 0; u < kNumOpUnits; ++u) {
            copySlots_[u].prune(now);
            portSlots_[u].prune(now);
        }
        lastPrune_ = now;
    }

    sim::Cycle t = now;
    for (const Uop &uop : prog.uops()) {
        uint32_t u = static_cast<uint32_t>(uop.unit);

        // Interconnect transfer to the unit's input port (one transfer
        // per destination port per cycle), then the hop latency.
        sim::Cycle xfer = portSlots_[u].reserve(t);
        t = xfer + cfg_.icntHopLatency;

        // Issue slot at the (pipelined, II=1) unit.
        sim::Cycle issue = copySlots_[u].reserve(t);
        uint32_t lat = opUnitLatency(uop.unit);
        t = issue + lat;
        *busy_[u] += lat;
        ++*uops_;
        // Issue slot and latency are both known here: a reservation
        // span per uop.
        if (trace_[u])
            trace_[u]->complete(issue, lat, opUnitName(uop.unit));
    }
    ++*tests_;
    sim::Cycle latency = t - now;
    if (is_leaf)
        leafLatency_->sample(static_cast<double>(latency));
    else
        innerLatency_->sample(static_cast<double>(latency));
    return t;
}

sim::Cycle
TtaPlusEngine::executeMany(sim::Cycle now, const Program &prog,
                           bool is_leaf, uint32_t count)
{
    sim::Cycle done = now;
    for (uint32_t i = 0; i < count; ++i)
        done = execute(now, prog, is_leaf);
    return done;
}

} // namespace tta::ttaplus
