/**
 * @file
 * TraversalService: a persistent query-serving layer on a DeviceGroup.
 *
 * One admission queue (queue.hh) feeds N long-lived simulated devices
 * (device_group.hh). Tenants (B-Tree lookups, radius searches, rays —
 * see tenants.hh) serialize their trees into every device and bind
 * dual-parity pipeline slots; a stream of client arrivals is admitted
 * into per-tenant FIFO lanes and dispatched as coalesced batches:
 *
 *   - a lane launches when it holds a full batch (policy.maxBatch),
 *   - or when its oldest query hits its SLO class's max-wait deadline
 *     (policy.maxWaitCycles / policy.lsMaxWaitCycles) — earliest
 *     deadline preempts the round-robin so no tenant starves behind
 *     another's full lanes in its class,
 *   - latency-sensitive lanes take strict priority over throughput
 *     lanes (queue.hh documents the full policy),
 *   - partial lanes flush once the traffic source is exhausted.
 *
 * Dispatcher: batch placement is delegated to a pluggable policy layer
 * (scheduler.hh). The default ("lld", policy.sched) reproduces the
 * original least-loaded-first dispatcher decision-for-decision: a
 * ready batch goes to the free device that has been idle longest
 * (smallest last-completion cycle, ties to the lowest device index).
 * The size/affinity/steal/full policies add an EWMA service-time
 * estimator (seeded by a calibration probe run before traffic),
 * tenant-to-device cache-warmth affinity, and deterministic tail-batch
 * work stealing — all pure functions of the virtual clock.
 *
 * Time model: the service keeps a virtual clock `now` in simulated
 * device cycles. Each device serves one batch at a time; a launch
 * issued at `now` on device d completes at `now + elapsed`, where
 * elapsed is the simulated cycle count returned by cmdTraverseTree
 * (each device's own clock is continuous across launches, so cache
 * warmth carries over exactly as it would on persistent hardware).
 * While devices are busy, later arrivals keep coalescing into lanes;
 * completed batches retire in (completion cycle, device index) order,
 * which fixes the order of latency recording, batch logging and
 * closed-loop feedback regardless of host timing.
 *
 * Host execution: with policy.pipelinedStaging, each device gets a
 * worker thread (DeviceGroup) so devices simulate concurrently and
 * batch verification never blocks the next launch; the scheduler
 * stages batch k+1 into the opposite staging parity while batch k is
 * in flight. With pipelinedStaging off, the identical protocol runs
 * inline on one thread.
 *
 * Determinism: every dispatch decision is a pure function of the
 * arrival trace and per-launch elapsed cycles. Arrival traces come
 * from seeded sim::Rng generators, and elapsed cycles are
 * bit-identical across simulation kernels and thread counts, so batch
 * composition, completion order, per-device logs and the latency
 * histograms are too — for any device count, staging mode and host
 * interleaving (tests/test_service.cc, tests/test_service_multidev.cc
 * hold the service to that).
 */

#ifndef TTA_SERVICE_SERVICE_HH
#define TTA_SERVICE_SERVICE_HH

#include <array>
#include <atomic>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "service/device_group.hh"
#include "service/latency.hh"
#include "service/queue.hh"
#include "service/scheduler.hh"
#include "service/tenants.hh"
#include "service/traffic.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace tta::service {

struct ServicePolicy
{
    /** Dispatch a lane once it holds this many queries. */
    uint32_t maxBatch = 256;
    /** ... or once its oldest query has waited this long
     *  (throughput-class lanes). */
    sim::Cycle maxWaitCycles = 50000;
    /** Max wait for latency-sensitive lanes; 0 = same as
     *  maxWaitCycles. */
    sim::Cycle lsMaxWaitCycles = 0;
    /** Devices in the group, one admission queue across all. */
    uint32_t numDevices = 1;
    /** Per-device worker threads with double-buffered staging/verify
     *  (bit-identical to the serial path, just faster wall-clock). */
    bool pipelinedStaging = true;
    /** Dispatch policy; LeastLoaded reproduces the pre-scheduler
     *  dispatcher bit-exactly (scheduler.hh). */
    SchedPolicy sched = SchedPolicy::LeastLoaded;
    /** Scheduler tuning knobs (ignored under LeastLoaded). */
    SchedParams schedParams;
};

struct TenantReport
{
    std::string name;
    SloClass slo = SloClass::Throughput;
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t canceled = 0;
    uint64_t batches = 0;
    uint64_t verifySoftMismatches = 0;
    LatencyHistogram latency;   //!< completion - arrival, cycles
    LatencyHistogram queueWait; //!< dispatch - arrival, cycles
};

struct DeviceReport
{
    uint64_t batches = 0;
    uint64_t completed = 0;
    sim::Cycle busy = 0;     //!< sum of launch elapsed cycles
    sim::Cycle lastDone = 0; //!< last completion cycle
    uint64_t steals = 0;     //!< batches this device stole (as thief)
    LatencyHistogram latency;
    /** Per-device batch log, numbered per device: the per-device
     *  determinism oracle. */
    std::string batchLog;
};

struct ClassReport
{
    uint64_t completed = 0;
    LatencyHistogram latency;
    LatencyHistogram queueWait;
};

struct ServiceReport
{
    std::vector<TenantReport> tenants;
    std::vector<DeviceReport> devices;
    std::array<ClassReport, kNumSloClasses> classes;
    LatencyHistogram latency; //!< all tenants/devices merged
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t canceled = 0;
    uint64_t batches = 0;
    uint64_t expiredDispatches = 0; //!< launched by the deadline rule
    uint64_t steals = 0;            //!< total scheduler steal events
    sim::Cycle makespan = 0;        //!< last completion cycle
    sim::Cycle deviceBusy = 0;      //!< sum over devices of busy
    /** Compact per-batch log (tenant, start, size, seq range, device)
     *  in retirement order for the first kMaxLoggedBatches batches:
     *  the determinism oracle. */
    std::string batchLog;
    /** Scheduler steal log (scheduler.hh): part of the determinism
     *  oracle under stealing policies; empty otherwise. */
    std::string stealLog;

    /** Completed queries per million simulated cycles (aggregate
     *  across devices; the makespan is the shared virtual clock). */
    double throughputQpmc() const
    {
        return makespan
                   ? 1e6 * static_cast<double>(completed) / makespan
                   : 0.0;
    }
};

class TraversalService
{
  public:
    static constexpr uint64_t kMaxLoggedBatches = 8192;

    TraversalService(const sim::Config &cfg, sim::StatRegistry &stats,
                     const ServicePolicy &policy);

    /** Install a tenant on every device (serialize + bind dual-parity
     *  slots) in SLO class @p slo.
     *  @return tenant id (index into the queue lanes). */
    uint32_t addTenant(std::unique_ptr<Tenant> tenant,
                       SloClass slo = SloClass::Throughput);

    uint32_t numTenants() const
    {
        return static_cast<uint32_t>(tenants_.size());
    }
    Tenant &tenant(uint32_t id) { return *tenants_[id]; }
    uint32_t numDevices() const { return group_->size(); }
    ServiceDevice &device(uint32_t d = 0) { return group_->device(d); }
    const ServicePolicy &policy() const { return policy_; }

    /**
     * Serve one arrival trace to completion (admit, batch, launch,
     * verify, drain) and publish summary stats — including each
     * device's absorbed registry — into the service registry.
     * Call once per service instance.
     */
    ServiceReport run(TrafficSource &src);

  private:
    struct CancelEvent
    {
        sim::Cycle cycle;
        uint64_t seq;
        uint32_t tenant;
        bool operator>(const CancelEvent &o) const
        {
            return cycle != o.cycle ? cycle > o.cycle : seq > o.seq;
        }
    };

    /** One launched-but-not-retired batch on a device. */
    struct Inflight
    {
        bool active = false;
        uint32_t tenant = 0;
        uint32_t parity = 0;
        bool expired = false;         //!< deadline rule triggered it
        sim::Cycle start = 0;         //!< dispatch cycle
        sim::Cycle complete = kNoCycle; //!< kNoCycle until collected
        std::shared_ptr<std::vector<QueryTicket>> batch;
    };

    void admitUpTo(TrafficSource &src, sim::Cycle now,
                   ServiceReport &report);
    /** Stage + submit device @p d's next planned batch at now_. */
    void launchReady(uint32_t d, ServiceReport &report);
    /** Seed the scheduler's cost model: one unverified probe batch per
     *  (tenant, device) before traffic, so every device is uniformly
     *  warmed and tenant estimates start from a measurement instead of
     *  the static seed. No-op under lld or probeQueries == 0. */
    void runCalibrationProbe();
    /** Block until device @p d's in-flight launch has a completion
     *  cycle (no-op when already known). */
    void ensureElapsed(uint32_t d, ServiceReport &report);
    /** Retire every in-flight batch with complete <= @p now in
     *  (completion, device) order. */
    void retireDue(sim::Cycle now, TrafficSource &src,
                   ServiceReport &report);
    void publishStats(const ServiceReport &report);
    sim::Cycle classMaxWait(SloClass cls) const;

    const sim::Config cfg_;
    sim::StatRegistry &stats_;
    ServicePolicy policy_;
    std::unique_ptr<DeviceGroup> group_;
    std::vector<std::unique_ptr<Tenant>> tenants_;
    std::vector<uint64_t> tenantSubmitted_; //!< payload round-robin
    AdmissionQueue queue_;
    std::priority_queue<CancelEvent, std::vector<CancelEvent>,
                        std::greater<CancelEvent>>
        cancels_;
    std::unique_ptr<Scheduler> scheduler_; //!< created in run()
    std::vector<Inflight> inflight_;      //!< per device
    std::vector<uint64_t> deviceLaunches_; //!< parity alternation
    //! worker-side verify mismatch tallies, summed after drain
    std::unique_ptr<std::atomic<uint64_t>[]> verifyMismatches_;
    uint64_t nextSeq_ = 0;
    sim::Cycle now_ = 0;
    bool ran_ = false;
};

} // namespace tta::service

#endif // TTA_SERVICE_SERVICE_HH
