/**
 * @file
 * TraversalService: a persistent query-serving layer on one device.
 *
 * One long-lived TtaDevice per service instance. Tenants (B-Tree
 * lookups, radius searches, rays — see tenants.hh) serialize their
 * trees into the device once and bind per-tenant pipeline slots; a
 * stream of client arrivals is admitted into per-tenant FIFO lanes
 * (queue.hh) and dispatched as coalesced batches:
 *
 *   - a lane launches when it holds a full batch (policy.maxBatch),
 *   - or when its oldest query hits the max-wait deadline
 *     (policy.maxWaitCycles) — earliest deadline preempts the
 *     round-robin so no tenant starves behind another's full lanes,
 *   - partial lanes flush once the traffic source is exhausted.
 *
 * Time model: the service keeps a virtual clock `now` in simulated
 * device cycles. The device serves one batch at a time; a launch
 * issued at `now` completes at `now + elapsed` where elapsed is the
 * simulated cycle count returned by cmdTraverseTree (the device's own
 * clock is continuous across launches, so cache warmth carries over
 * exactly as it would on persistent hardware). While the device is
 * busy, later arrivals keep coalescing into lanes — the next dispatch
 * decision happens at the completion cycle.
 *
 * Determinism: every dispatch decision is a pure function of the
 * arrival trace and per-launch elapsed cycles. Arrival traces come
 * from seeded sim::Rng generators, and elapsed cycles are
 * bit-identical across simulation kernels and thread counts, so batch
 * composition, completion order and the latency histograms are too —
 * tests/test_service.cc holds the service to that.
 */

#ifndef TTA_SERVICE_SERVICE_HH
#define TTA_SERVICE_SERVICE_HH

#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "api/tta_api.hh"
#include "service/latency.hh"
#include "service/queue.hh"
#include "service/tenants.hh"
#include "service/traffic.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace tta::service {

struct ServicePolicy
{
    /** Dispatch a lane once it holds this many queries. */
    uint32_t maxBatch = 256;
    /** ... or once its oldest query has waited this long. */
    sim::Cycle maxWaitCycles = 50000;
};

struct TenantReport
{
    std::string name;
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t canceled = 0;
    uint64_t batches = 0;
    uint64_t verifySoftMismatches = 0;
    LatencyHistogram latency;   //!< completion - arrival, cycles
    LatencyHistogram queueWait; //!< dispatch - arrival, cycles
};

struct ServiceReport
{
    std::vector<TenantReport> tenants;
    LatencyHistogram latency; //!< all tenants merged
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t canceled = 0;
    uint64_t batches = 0;
    uint64_t expiredDispatches = 0; //!< launched by the deadline rule
    sim::Cycle makespan = 0;        //!< last completion cycle
    sim::Cycle deviceBusy = 0;      //!< sum of launch elapsed cycles
    /** Compact per-batch log (tenant, start, size, seq range) for the
     *  first kMaxLoggedBatches batches: the determinism oracle. */
    std::string batchLog;

    /** Completed queries per million simulated cycles. */
    double throughputQpmc() const
    {
        return makespan
                   ? 1e6 * static_cast<double>(completed) / makespan
                   : 0.0;
    }
};

class TraversalService
{
  public:
    static constexpr uint64_t kMaxLoggedBatches = 8192;

    TraversalService(const sim::Config &cfg, sim::StatRegistry &stats,
                     const ServicePolicy &policy);

    /** Install a tenant into the device (serialize + bind slot).
     *  @return tenant id (index into the queue lanes). */
    uint32_t addTenant(std::unique_ptr<Tenant> tenant);

    uint32_t numTenants() const
    {
        return static_cast<uint32_t>(tenants_.size());
    }
    Tenant &tenant(uint32_t id) { return *tenants_[id]; }
    api::TtaDevice &device() { return *device_; }
    const ServicePolicy &policy() const { return policy_; }

    /**
     * Serve one arrival trace to completion (admit, batch, launch,
     * verify, drain) and publish summary stats into the registry.
     */
    ServiceReport run(TrafficSource &src);

  private:
    struct CancelEvent
    {
        sim::Cycle cycle;
        uint64_t seq;
        uint32_t tenant;
        bool operator>(const CancelEvent &o) const
        {
            return cycle != o.cycle ? cycle > o.cycle : seq > o.seq;
        }
    };

    void admitUpTo(TrafficSource &src, sim::Cycle now,
                   ServiceReport &report);
    void dispatch(TrafficSource &src, uint32_t t, ServiceReport &report);
    void publishStats(const ServiceReport &report);

    const sim::Config cfg_;
    sim::StatRegistry &stats_;
    ServicePolicy policy_;
    std::unique_ptr<api::TtaDevice> device_;
    std::vector<std::unique_ptr<Tenant>> tenants_;
    std::vector<uint64_t> tenantSubmitted_; //!< payload round-robin
    AdmissionQueue queue_;
    std::priority_queue<CancelEvent, std::vector<CancelEvent>,
                        std::greater<CancelEvent>>
        cancels_;
    uint64_t nextSeq_ = 0;
    sim::Cycle now_ = 0;
    sim::Cycle freeAt_ = 0;
};

} // namespace tta::service

#endif // TTA_SERVICE_SERVICE_HH
