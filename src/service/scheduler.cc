#include "service/scheduler.hh"

#include <cstdlib>
#include <sstream>

#include "sim/logging.hh"

namespace tta::service {

const char *
schedPolicyName(SchedPolicy p)
{
    switch (p) {
      case SchedPolicy::LeastLoaded:
        return "lld";
      case SchedPolicy::SizeAware:
        return "size";
      case SchedPolicy::Affinity:
        return "affinity";
      case SchedPolicy::Steal:
        return "steal";
      case SchedPolicy::Full:
        return "full";
    }
    return "?";
}

bool
parseSchedPolicy(const std::string &name, SchedPolicy &out)
{
    for (SchedPolicy p :
         {SchedPolicy::LeastLoaded, SchedPolicy::SizeAware,
          SchedPolicy::Affinity, SchedPolicy::Steal, SchedPolicy::Full}) {
        if (name == schedPolicyName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

SchedPolicy
schedPolicyFromEnv(SchedPolicy fallback)
{
    const char *env = std::getenv("TTA_SCHED");
    if (!env || !*env)
        return fallback;
    SchedPolicy p;
    fatal_if(!parseSchedPolicy(env, p),
             "TTA_SCHED=%s: expected lld|size|affinity|steal|full", env);
    return p;
}

Scheduler::Scheduler(SchedPolicy policy, const SchedParams &params,
                     uint32_t num_devices, uint32_t num_tenants,
                     uint32_t max_batch)
    : policy_(policy), params_(params), maxBatch_(max_batch),
      backlog_(num_devices), backlogCost_(num_devices, 0),
      busy_(num_devices, false), freeAt_(num_devices, 0),
      busyUntilEst_(num_devices, 0),
      costQ8_(num_tenants, params.seedCostCyclesPerQuery << 8),
      calibrated_(num_tenants, false),
      quota_(num_tenants, max_batch),
      lastUse_(static_cast<size_t>(num_tenants) * num_devices,
               kNoCycle),
      servedSeq_(num_devices, 0),
      lastServedSeq_(static_cast<size_t>(num_tenants) * num_devices,
                     0),
      dispatches_(num_devices, 0), steals_(num_devices, 0)
{
    fatal_if(num_devices == 0, "Scheduler with zero devices");
    fatal_if(num_tenants == 0, "Scheduler with zero tenants");
    fatal_if(max_batch == 0, "Scheduler with maxBatch == 0");
    fatal_if(params_.ewmaShift >= 32, "SchedParams.ewmaShift too large");
    fatal_if(params_.seedCostCyclesPerQuery == 0,
             "SchedParams.seedCostCyclesPerQuery == 0");
}

void
Scheduler::calibrate(uint32_t t, uint64_t queries, sim::Cycle elapsed)
{
    fatal_if(queries == 0, "calibrate with zero queries");
    uint64_t q8 = (static_cast<uint64_t>(elapsed) << 8) / queries;
    costQ8_[t] = q8 ? q8 : 1;
    calibrated_[t] = true;
}

uint64_t
Scheduler::estBatchCost(uint32_t t, uint64_t n) const
{
    uint64_t est = (costQ8_[t] * n) >> 8;
    return est ? est : 1;
}

void
Scheduler::refreshQuotas()
{
    if (!sizeAware())
        return; // lld: quotas stay pinned at maxBatch
    uint64_t minQ8 = costQ8_[0];
    for (uint64_t c : costQ8_)
        minQ8 = c < minQ8 ? c : minQ8;
    // Target dispatch threshold: a lane becomes dispatchable once its
    // queued queries cost about what a full (maxBatch) batch of the
    // cheapest tenant costs, so a pricey tenant launches sooner
    // instead of waiting to amass maxBatch queries. (The service pops
    // up to maxBatch regardless — see batchQuota's doc.)
    for (size_t t = 0; t < quota_.size(); ++t) {
        uint64_t q = (static_cast<uint64_t>(maxBatch_) * minQ8) /
                     costQ8_[t];
        uint32_t lo = params_.minQuota ? params_.minQuota : 1;
        if (q < lo)
            q = lo;
        if (q > maxBatch_)
            q = maxBatch_;
        quota_[t] = static_cast<uint32_t>(q);
    }
}

bool
Scheduler::hasRoom() const
{
    if (leastLoaded()) {
        for (uint32_t d = 0; d < backlog_.size(); ++d)
            if (!busy_[d] && backlog_[d].empty())
                return true;
        return false;
    }
    for (uint32_t d = 0; d < backlog_.size(); ++d)
        if (backlog_[d].size() < params_.maxBacklog)
            return true;
    return false;
}

bool
Scheduler::hasIdleDevice() const
{
    for (uint32_t d = 0; d < backlog_.size(); ++d)
        if (!busy_[d] && backlog_[d].empty())
            return true;
    return false;
}

uint32_t
Scheduler::nextPlacementDevice(sim::Cycle now) const
{
    int best = -1;
    sim::Cycle bestLoad = 0;
    for (uint32_t d = 0; d < backlog_.size(); ++d) {
        if (backlog_[d].size() >= params_.maxBacklog)
            continue;
        sim::Cycle load = estLoad(d, now);
        if (best < 0 || load < bestLoad) {
            best = static_cast<int>(d);
            bestLoad = load;
        }
    }
    fatal_if(best < 0, "nextPlacementDevice called without room");
    return static_cast<uint32_t>(best);
}

std::vector<uint64_t>
Scheduler::warmthKeys(uint32_t d, sim::Cycle now) const
{
    std::vector<uint64_t> keys(costQ8_.size(), 0);
    for (uint32_t t = 0; t < keys.size(); ++t)
        keys[t] = warmthBonus(t, d, estBatchCost(t, quota_[t]), now);
    return keys;
}

sim::Cycle
Scheduler::estLoad(uint32_t d, sim::Cycle now) const
{
    sim::Cycle load = backlogCost_[d];
    if (busy_[d] && busyUntilEst_[d] > now)
        load += busyUntilEst_[d] - now;
    return load;
}

sim::Cycle
Scheduler::warmthBonus(uint32_t t, uint32_t d, uint64_t est_cost,
                       sim::Cycle now) const
{
    return warmthAt(t, d, est_cost, now, backlog_[d].size());
}

sim::Cycle
Scheduler::warmthAt(uint32_t t, uint32_t d, uint64_t est_cost,
                    sim::Cycle now, size_t upto) const
{
    // Predict the cache state the batch will meet, not the state now:
    // number the device's service sequence (launches so far, then the
    // planned backlog), find the most recent slot tenant t occupies
    // before the candidate's, and score by the batch distance. A
    // device's L2 keeps a tenant's tree hot across a few intervening
    // batches of its other resident tenants, so warmth reaches
    // warmthResidencyBatches back, decaying linearly with distance.
    uint32_t window = params_.warmthResidencyBatches;
    if (window == 0)
        return 0;
    uint64_t cand = servedSeq_[d] + upto + 1;
    uint64_t last =
        lastServedSeq_[static_cast<size_t>(t) * backlog_.size() + d];
    bool planned = false;
    for (size_t i = 0; i < upto; ++i) {
        if (backlog_[d][i].tenant == t) {
            last = servedSeq_[d] + i + 1;
            planned = true;
        }
    }
    if (last == 0 || cand - last > window)
        return 0;
    if (!planned) {
        // Historical warmth additionally honors the staleness bound:
        // a long-idle device is cold no matter the batch distance. A
        // launch still in flight (no retire yet) is fresh by
        // construction.
        sim::Cycle used = lastUse_[static_cast<size_t>(t) *
                                       backlog_.size() + d];
        if (used != kNoCycle && params_.warmthStalenessCycles &&
            now - used >= params_.warmthStalenessCycles)
            return 0;
    }
    uint64_t base = (est_cost * params_.warmthBonusFrac256) >> 8;
    uint64_t age = cand - last; // in [1, window]
    return static_cast<sim::Cycle>(base - (age - 1) * (base / window));
}

uint32_t
Scheduler::place(uint32_t tenant,
                 std::shared_ptr<std::vector<QueryTicket>> queries,
                 bool expired, bool priority, sim::Cycle now)
{
    fatal_if(!queries || queries->empty(), "place of an empty batch");
    Batch b;
    b.id = nextBatchId_++;
    b.tenant = tenant;
    b.estCost = estBatchCost(tenant, queries->size());
    b.expired = expired;
    b.priority = priority;
    b.queries = std::move(queries);

    int best = -1;
    if (leastLoaded()) {
        // PR 9's dispatcher: the idle unplanned device that has been
        // idle longest (smallest last-completion cycle, ties to the
        // lowest index).
        for (uint32_t d = 0; d < backlog_.size(); ++d) {
            if (busy_[d] || !backlog_[d].empty())
                continue;
            if (best < 0 ||
                freeAt_[d] < freeAt_[static_cast<uint32_t>(best)])
                best = static_cast<int>(d);
        }
    } else {
        // Estimated-ready score, minus the (bounded, decayed) warmth
        // bonus under affinity policies. Ties to the lowest index.
        uint64_t bestScore = 0;
        for (uint32_t d = 0; d < backlog_.size(); ++d) {
            if (backlog_[d].size() >= params_.maxBacklog)
                continue;
            uint64_t ready = now + estLoad(d, now);
            if (affinity()) {
                sim::Cycle bonus =
                    warmthBonus(tenant, d, b.estCost, now);
                ready = ready > bonus ? ready - bonus : 0;
            }
            if (best < 0 || ready < bestScore) {
                best = static_cast<int>(d);
                bestScore = ready;
            }
        }
    }
    fatal_if(best < 0, "place called without room");
    uint32_t d = static_cast<uint32_t>(best);
    enqueuePlanned(d, std::move(b));
    ++planned_;
    return d;
}

void
Scheduler::enqueuePlanned(uint32_t d, Batch &&b)
{
    backlogCost_[d] += b.estCost;
    if (b.priority) {
        // Keep the queue's strict SLO-class order through planning: a
        // latency-sensitive batch runs before the device's queued
        // throughput batches (but after earlier priority plans).
        auto it = backlog_[d].begin();
        while (it != backlog_[d].end() && it->priority)
            ++it;
        backlog_[d].insert(it, std::move(b));
    } else {
        backlog_[d].push_back(std::move(b));
    }
}

sim::Cycle
Scheduler::stealThreshold() const
{
    if (params_.stealThresholdCycles)
        return params_.stealThresholdCycles;
    uint64_t minQ8 = costQ8_[0];
    for (uint64_t c : costQ8_)
        minQ8 = c < minQ8 ? c : minQ8;
    sim::Cycle t = (static_cast<uint64_t>(maxBatch_) * minQ8) >> 8;
    return t ? t : 1;
}

void
Scheduler::rebalance(sim::Cycle now)
{
    if (!stealing())
        return;
    // Bounded pass: each iteration moves one tail batch from the
    // most-loaded device to the least-loaded one, and only while the
    // move strictly reduces that batch's estimated start cycle — so a
    // batch never gets *later* through stealing (the no-inversion
    // argument), and the loop terminates.
    sim::Cycle threshold = stealThreshold();
    for (uint32_t guard = 0;
         guard < backlog_.size() * params_.maxBacklog + 1; ++guard) {
        int thief = -1;
        sim::Cycle thiefLoad = 0;
        for (uint32_t d = 0; d < backlog_.size(); ++d) {
            sim::Cycle load = estLoad(d, now);
            if (backlog_[d].size() < params_.maxBacklog &&
                load < threshold &&
                (thief < 0 || load < thiefLoad)) {
                thief = static_cast<int>(d);
                thiefLoad = load;
            }
        }
        if (thief < 0)
            return;
        int victim = -1;
        sim::Cycle victimLoad = 0;
        for (uint32_t d = 0; d < backlog_.size(); ++d) {
            if (d == static_cast<uint32_t>(thief) ||
                backlog_[d].empty())
                continue;
            // A priority tail would be spliced *ahead* of the thief's
            // queued throughput plans (enqueuePlanned keeps SLO
            // order), delaying their estimated starts — which the
            // no-inversion argument forbids. It may only move onto an
            // empty backlog, where the priority insert degenerates to
            // an append and the benefit test below is exact.
            if (backlog_[d].back().priority &&
                !backlog_[static_cast<uint32_t>(thief)].empty())
                continue;
            sim::Cycle load = estLoad(d, now);
            if (victim < 0 || load > victimLoad) {
                victim = static_cast<int>(d);
                victimLoad = load;
            }
        }
        if (victim < 0)
            return;
        Batch &tail = backlog_[victim].back();
        // New estimated start on the thief vs. current estimated start
        // on the victim (it is the tail, so it starts after everything
        // else there).
        uint64_t moveCost = tail.estCost;
        if (affinity()) {
            // A steal that breaks a warm chain runs the batch cold on
            // the thief: charge the move the warmth the batch would
            // have enjoyed in place and credit any warmth waiting on
            // the thief, so only steals that beat the locality loss
            // happen.
            sim::Cycle victimWarm = warmthAt(
                tail.tenant, static_cast<uint32_t>(victim),
                tail.estCost, now, backlog_[victim].size() - 1);
            sim::Cycle thiefWarm =
                warmthBonus(tail.tenant, static_cast<uint32_t>(thief),
                            tail.estCost, now);
            moveCost += victimWarm;
            moveCost = moveCost > thiefWarm ? moveCost - thiefWarm : 0;
        }
        if (thiefLoad + moveCost >= victimLoad)
            return; // no strictly earlier start: stop stealing
        Batch moved = std::move(backlog_[victim].back());
        backlog_[victim].pop_back();
        backlogCost_[victim] -= moved.estCost;
        ++steals_[thief];
        ++stealsTotal_;
        if (stealsTotal_ <= kMaxLoggedSteals) {
            std::ostringstream os;
            os << "s" << stealsTotal_ << " c=" << now
               << " b=" << moved.id << " d" << victim << "->" << thief
               << "\n";
            stealLog_ += os.str();
        }
        enqueuePlanned(static_cast<uint32_t>(thief), std::move(moved));
    }
}

Scheduler::Batch
Scheduler::takeReady(uint32_t d)
{
    fatal_if(backlog_[d].empty(), "takeReady on an empty backlog");
    Batch b = std::move(backlog_[d].front());
    backlog_[d].pop_front();
    backlogCost_[d] -= b.estCost;
    --planned_;
    return b;
}

void
Scheduler::onLaunch(uint32_t d, const Batch &b, sim::Cycle now)
{
    fatal_if(busy_[d], "launch on a busy device");
    busy_[d] = true;
    busyUntilEst_[d] = now + b.estCost;
    ++servedSeq_[d];
    lastServedSeq_[static_cast<size_t>(b.tenant) * backlog_.size() +
                   d] = servedSeq_[d];
    ++dispatches_[d];
}

void
Scheduler::onRetire(uint32_t d, uint32_t tenant, uint64_t queries,
                    sim::Cycle complete, sim::Cycle elapsed)
{
    fatal_if(!busy_[d], "retire on an idle device");
    busy_[d] = false;
    freeAt_[d] = complete;
    busyUntilEst_[d] = complete;
    lastUse_[static_cast<size_t>(tenant) * backlog_.size() + d] =
        complete;
    if (!sizeAware() || queries == 0)
        return;
    // Integer EWMA on the Q8 cycles/query estimate: signed step toward
    // the sample, alpha = 1 / 2^ewmaShift.
    int64_t sample =
        static_cast<int64_t>((static_cast<uint64_t>(elapsed) << 8) /
                             queries);
    int64_t cur = static_cast<int64_t>(costQ8_[tenant]);
    int64_t next = cur + ((sample - cur) >> params_.ewmaShift);
    costQ8_[tenant] = next > 0 ? static_cast<uint64_t>(next) : 1;
}

} // namespace tta::service
