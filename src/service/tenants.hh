/**
 * @file
 * Service tenants: one long-lived tree, installed on every device.
 *
 * A tenant owns (or shares) a host-side index — B-Tree, radius-search
 * BVH, or a ray-tracing scene — and installs it on each device of a
 * DeviceGroup: serialize the tree into that device's memory, allocate
 * query/result staging buffers, and bind pipeline slots. Per batch,
 * the service asks the tenant to stage payloads into one device's
 * staging area and, after the launch, to verify the device results
 * against the host reference — so the serving loop is continuously
 * self-checking on every device.
 *
 * Staging is double-buffered: install() binds kStagingParities (two)
 * independent slot/buffer sets per device, and each writeBatch /
 * launch / verifyBatch round names the parity it uses. Launch k+1 can
 * therefore stage and run while launch k (the other parity) is still
 * being verified. Each (device, parity) pair has its own pipeline
 * slot, spec, and buffers; the tenant touches nothing else per batch,
 * which is what makes concurrent per-device workers race-free.
 *
 * The expensive host state — tree build, payload pool, reference
 * results — lives in immutable *TenantData structs shared by any
 * number of tenant instances (and, via bench::WorkloadCache, across
 * repeated service runs). Payloads come from that pre-generated
 * verified pool: arrival k of a tenant carries pool index
 * k % poolSize(). This keeps the query mix deterministic and lets
 * millions of arrivals reuse host references computed once.
 */

#ifndef TTA_SERVICE_TENANTS_HH
#define TTA_SERVICE_TENANTS_HH

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "service/device_group.hh"
#include "service/queue.hh"
#include "trees/btree.hh"
#include "trees/pointcloud.hh"
#include "workloads/btree_workload.hh"
#include "workloads/raytracing_workload.hh"
#include "workloads/rtnn_workload.hh"

namespace tta::service {

class Tenant
{
  public:
    explicit Tenant(std::string name) : name_(std::move(name)) {}
    virtual ~Tenant() = default;

    const std::string &name() const { return name_; }
    uint32_t poolSize() const
    {
        return static_cast<uint32_t>(poolSize_);
    }

    /** Pipeline slot bound for (device, parity). */
    uint32_t slot(uint32_t device, uint32_t parity) const
    {
        return bindings_[device].slot[parity];
    }

    /**
     * Serialize the tree into @p dev, allocate dual-parity staging
     * buffers for up to @p max_batch queries each, and bind one
     * pipeline slot per parity. Call once per device, in device-index
     * order, with the same order of tenants on every device (so the
     * per-device allocation sequences — and thus addresses — match).
     */
    virtual void install(ServiceDevice &dev, uint32_t max_batch) = 0;

    /** Stage the batch's payloads into @p dev's parity-@p parity
     *  buffers (lane i of the launch reads staging slot i). */
    virtual void writeBatch(ServiceDevice &dev, uint32_t parity,
                            const std::vector<QueryTicket> &batch) = 0;

    /** Check device results in @p dev's parity-@p parity buffers
     *  against the host reference. @return mismatch count (0 = pass).
     *  Runs on the device's worker thread; touches only that
     *  (device, parity)'s buffers. */
    virtual size_t
    verifyBatch(const ServiceDevice &dev, uint32_t parity,
                const std::vector<QueryTicket> &batch) const = 0;

    /** Mismatches tolerated per batch (ray traversal order can tie on
     *  equal-t hits; exact-result tenants keep 0). */
    virtual size_t verifyTolerance(size_t) const { return 0; }

  protected:
    struct Binding
    {
        uint32_t slot[kStagingParities] = {0, 0};
        uint64_t queryBase[kStagingParities] = {0, 0};
        uint64_t resultBase[kStagingParities] = {0, 0};
    };

    /** Append the binding record for @p dev (enforces index order). */
    Binding &newBinding(const ServiceDevice &dev);

    std::string name_;
    size_t poolSize_ = 0;
    std::vector<Binding> bindings_; //!< indexed by device
};

/** Shared immutable state of a B-Tree tenant: tree + verified pool. */
struct BTreeTenantData
{
    BTreeTenantData(size_t n_keys, size_t pool_size, uint64_t seed,
                    double hit_rate);

    static std::shared_ptr<const BTreeTenantData>
    build(size_t n_keys, size_t pool_size, uint64_t seed,
          double hit_rate = 0.5);

    trees::BTree tree;
    std::vector<float> pool;
    std::vector<uint8_t> expected;
};

/** B-Tree point lookups: float key -> found bit. */
class BTreeTenant : public Tenant
{
  public:
    BTreeTenant(std::string name,
                std::shared_ptr<const BTreeTenantData> data);
    BTreeTenant(std::string name, size_t n_keys, size_t pool_size,
                uint64_t seed, double hit_rate = 0.5);

    void install(ServiceDevice &dev, uint32_t max_batch) override;
    void writeBatch(ServiceDevice &dev, uint32_t parity,
                    const std::vector<QueryTicket> &batch) override;
    size_t verifyBatch(const ServiceDevice &dev, uint32_t parity,
                       const std::vector<QueryTicket> &batch)
        const override;

  private:
    std::shared_ptr<const BTreeTenantData> data_;
    //! one spec per (device, parity): index device * kStagingParities
    //! + parity
    std::vector<std::unique_ptr<workloads::BTreeSpec>> specs_;
};

/** Shared immutable state of a radius tenant: cloud, BVH, pool. */
struct RadiusTenantData
{
    RadiusTenantData(size_t n_points, size_t pool_size, float radius,
                     uint64_t seed);

    static std::shared_ptr<const RadiusTenantData>
    build(size_t n_points, size_t pool_size, float radius,
          uint64_t seed);

    trees::PointCloud cloud;
    //! built in the ctor body, after `cloud` has its final address
    //! (the index keeps a pointer to its cloud)
    std::unique_ptr<trees::RadiusSearchIndex> index;
    std::vector<geom::Vec3> pool;
    std::vector<uint32_t> expected;
};

/** RTNN-style fixed-radius neighbor counting over a point cloud. */
class RadiusTenant : public Tenant
{
  public:
    RadiusTenant(std::string name,
                 std::shared_ptr<const RadiusTenantData> data);
    RadiusTenant(std::string name, size_t n_points, size_t pool_size,
                 float radius, uint64_t seed);

    void install(ServiceDevice &dev, uint32_t max_batch) override;
    void writeBatch(ServiceDevice &dev, uint32_t parity,
                    const std::vector<QueryTicket> &batch) override;
    size_t verifyBatch(const ServiceDevice &dev, uint32_t parity,
                       const std::vector<QueryTicket> &batch)
        const override;

  private:
    std::shared_ptr<const RadiusTenantData> data_;
    std::vector<std::unique_ptr<workloads::RtnnSpec>> specs_;
};

/** Shared immutable state of a ray tenant: scene recipe + verified
 *  pool. The RtScene itself is NOT shared — serialize() stores the
 *  device layout in the scene object, so each tenant instance rebuilds
 *  its own scene from (kind, seed); only the expensive reference hits
 *  are computed once. */
struct RayTenantData
{
    RayTenantData(workloads::SceneKind kind, size_t pool_size,
                  uint64_t seed);

    static std::shared_ptr<const RayTenantData>
    build(workloads::SceneKind kind, size_t pool_size, uint64_t seed);

    workloads::SceneKind kind;
    uint64_t seed;
    std::vector<workloads::RtRay> pool;
    std::vector<workloads::RtHit> expected;
};

/** Closest-hit rays into a procedural scene. */
class RayTenant : public Tenant
{
  public:
    RayTenant(std::string name,
              std::shared_ptr<const RayTenantData> data);
    RayTenant(std::string name, size_t pool_size, uint64_t seed,
              workloads::SceneKind kind = workloads::SceneKind::CornellPt);

    void install(ServiceDevice &dev, uint32_t max_batch) override;
    void writeBatch(ServiceDevice &dev, uint32_t parity,
                    const std::vector<QueryTicket> &batch) override;
    size_t verifyBatch(const ServiceDevice &dev, uint32_t parity,
                       const std::vector<QueryTicket> &batch)
        const override;
    size_t verifyTolerance(size_t batch_size) const override
    {
        return batch_size / 256 + 2;
    }

  private:
    std::shared_ptr<const RayTenantData> data_;
    std::unique_ptr<workloads::RtScene> scene_;
    //! spec reads lanes from here; one buffer per (device, parity).
    //! deque: specs keep pointers, so elements must never move.
    std::deque<std::vector<workloads::RtRay>> staged_;
    std::vector<std::unique_ptr<workloads::RtSpec>> specs_;
    //! device-0 layout fingerprint; later devices must reproduce it
    //! (serialize() overwrites the scene's stored layout each time)
    uint64_t sphereBase0_ = 0;
    uint64_t instanceBase0_ = 0;
};

} // namespace tta::service

#endif // TTA_SERVICE_TENANTS_HH
