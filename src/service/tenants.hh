/**
 * @file
 * Service tenants: one long-lived tree + pipeline slot per tenant.
 *
 * A tenant owns a host-side index (B-Tree, radius-search BVH, or a
 * ray-tracing scene), serializes it once into the shared device at
 * install time, and binds its pipeline + spec to a device slot. Per
 * batch, the service asks the tenant to stage payloads into its
 * pre-allocated query/result staging area and, after the launch, to
 * verify the device results against the host reference — so the
 * serving loop is continuously self-checking.
 *
 * Payloads come from a pre-generated verified pool: arrival k of a
 * tenant carries pool index k % poolSize(). This keeps the query mix
 * deterministic and lets millions of arrivals reuse host references
 * computed once at startup.
 */

#ifndef TTA_SERVICE_TENANTS_HH
#define TTA_SERVICE_TENANTS_HH

#include <memory>
#include <string>
#include <vector>

#include "api/tta_api.hh"
#include "service/queue.hh"
#include "trees/btree.hh"
#include "trees/pointcloud.hh"
#include "workloads/btree_workload.hh"
#include "workloads/raytracing_workload.hh"
#include "workloads/rtnn_workload.hh"

namespace tta::service {

class Tenant
{
  public:
    explicit Tenant(std::string name) : name_(std::move(name)) {}
    virtual ~Tenant() = default;

    const std::string &name() const { return name_; }
    uint32_t slot() const { return slot_; }
    uint32_t poolSize() const
    {
        return static_cast<uint32_t>(poolSize_);
    }

    /** Serialize the tree, allocate staging buffers for up to
     *  @p max_batch queries, and bind the pipeline slot. Once. */
    virtual void install(api::TtaDevice &device, uint32_t max_batch) = 0;

    /** Stage the batch's payloads into device memory (lane i of the
     *  launch reads staging slot i). */
    virtual void writeBatch(mem::GlobalMemory &gmem,
                            const std::vector<QueryTicket> &batch) = 0;

    /** Check device results against the host reference.
     *  @return mismatch count (0 = pass). */
    virtual size_t
    verifyBatch(const mem::GlobalMemory &gmem,
                const std::vector<QueryTicket> &batch) const = 0;

    /** Mismatches tolerated per batch (ray traversal order can tie on
     *  equal-t hits; exact-result tenants keep 0). */
    virtual size_t verifyTolerance(size_t) const { return 0; }

  protected:
    std::string name_;
    uint32_t slot_ = 0;
    size_t poolSize_ = 0;
};

/** B-Tree point lookups: float key -> found bit. */
class BTreeTenant : public Tenant
{
  public:
    BTreeTenant(std::string name, size_t n_keys, size_t pool_size,
                uint64_t seed, double hit_rate = 0.5);

    void install(api::TtaDevice &device, uint32_t max_batch) override;
    void writeBatch(mem::GlobalMemory &gmem,
                    const std::vector<QueryTicket> &batch) override;
    size_t verifyBatch(const mem::GlobalMemory &gmem,
                       const std::vector<QueryTicket> &batch)
        const override;

  private:
    std::unique_ptr<trees::BTree> tree_;
    std::vector<float> pool_;
    std::vector<uint8_t> expected_;
    uint64_t queryBase_ = 0;
    uint64_t resultBase_ = 0;
    std::unique_ptr<workloads::BTreeSpec> spec_;
};

/** RTNN-style fixed-radius neighbor counting over a point cloud. */
class RadiusTenant : public Tenant
{
  public:
    RadiusTenant(std::string name, size_t n_points, size_t pool_size,
                 float radius, uint64_t seed);

    void install(api::TtaDevice &device, uint32_t max_batch) override;
    void writeBatch(mem::GlobalMemory &gmem,
                    const std::vector<QueryTicket> &batch) override;
    size_t verifyBatch(const mem::GlobalMemory &gmem,
                       const std::vector<QueryTicket> &batch)
        const override;

  private:
    trees::PointCloud cloud_;
    std::unique_ptr<trees::RadiusSearchIndex> index_;
    std::vector<geom::Vec3> pool_;
    std::vector<uint32_t> expected_;
    trees::SerializedBvh sbvh_;
    uint64_t pointBase_ = 0;
    uint64_t queryBase_ = 0;
    uint64_t resultBase_ = 0;
    std::unique_ptr<workloads::RtnnSpec> spec_;
};

/** Closest-hit rays into a procedural scene. */
class RayTenant : public Tenant
{
  public:
    RayTenant(std::string name, size_t pool_size, uint64_t seed,
              workloads::SceneKind kind = workloads::SceneKind::CornellPt);

    void install(api::TtaDevice &device, uint32_t max_batch) override;
    void writeBatch(mem::GlobalMemory &gmem,
                    const std::vector<QueryTicket> &batch) override;
    size_t verifyBatch(const mem::GlobalMemory &gmem,
                       const std::vector<QueryTicket> &batch)
        const override;
    size_t verifyTolerance(size_t batch_size) const override
    {
        return batch_size / 256 + 2;
    }

  private:
    workloads::SceneKind kind_;
    std::unique_ptr<workloads::RtScene> scene_;
    std::vector<workloads::RtRay> pool_;
    std::vector<workloads::RtHit> expected_;
    std::vector<workloads::RtRay> staged_; //!< spec reads lanes from here
    uint64_t resultBase_ = 0;
    std::unique_ptr<workloads::RtSpec> spec_;
};

} // namespace tta::service

#endif // TTA_SERVICE_TENANTS_HH
