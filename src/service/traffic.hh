/**
 * @file
 * Deterministic traffic sources for the traversal service.
 *
 * A TrafficSource hands the service a stream of arrivals (cycle,
 * tenant, client, optional future cancel) and receives completion
 * feedback. Three generators:
 *
 *  - Poisson: open-loop, exponential inter-arrival gaps at a fixed
 *    aggregate rate.
 *  - Bursty: open-loop two-state Markov-modulated Poisson process —
 *    gaps alternate between a fast (burst) and a slow (calm) scale,
 *    with geometrically distributed dwell times in each state.
 *  - ClosedLoop: a fixed population of clients, each keeping at most
 *    one query in flight; a client re-issues an exponential think time
 *    after its previous query completes.
 *
 * All randomness comes from sim::Rng (Xoshiro256**), drawn in a fixed
 * order per arrival, so the same (config, seed) replays the same
 * trace bit-for-bit regardless of simulation kernel or thread count.
 * TraceSource replays a hand-written arrival list for tests.
 */

#ifndef TTA_SERVICE_TRAFFIC_HH
#define TTA_SERVICE_TRAFFIC_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "service/queue.hh"
#include "sim/rng.hh"

namespace tta::service {

/** One client submission, before admission stamps a ticket. */
struct Arrival
{
    sim::Cycle cycle = 0;
    uint32_t tenant = 0;
    uint32_t client = 0;
    /** Cancel this query cancelAfter cycles after arrival (0 = never,
     *  i.e. the client never gives up on a queued query). */
    sim::Cycle cancelAfter = 0;
};

class TrafficSource
{
  public:
    virtual ~TrafficSource() = default;

    /** Cycle of the next arrival, or kNoCycle when none is currently
     *  scheduled (closed loops idle until a completion). */
    virtual sim::Cycle peek() const = 0;

    /** Consume the next arrival; only valid when peek() != kNoCycle. */
    virtual Arrival pop() = 0;

    /** True once no arrival will ever be produced again. */
    virtual bool exhausted() const = 0;

    /** Completion feedback (closed loops schedule the client's next
     *  think from here). */
    virtual void onCompletion(const QueryTicket &, sim::Cycle) {}
};

/** Replays a fixed arrival list (must be sorted by cycle). */
class TraceSource : public TrafficSource
{
  public:
    explicit TraceSource(std::vector<Arrival> trace);

    sim::Cycle peek() const override
    {
        return pos_ < trace_.size() ? trace_[pos_].cycle : kNoCycle;
    }
    Arrival pop() override { return trace_[pos_++]; }
    bool exhausted() const override { return pos_ >= trace_.size(); }

  private:
    std::vector<Arrival> trace_;
    size_t pos_ = 0;
};

enum class ArrivalProcess
{
    Poisson,
    Bursty,
    ClosedLoop,
};

const char *arrivalProcessName(ArrivalProcess p);

struct TrafficConfig
{
    ArrivalProcess process = ArrivalProcess::Poisson;
    uint64_t totalQueries = 1000000;

    /** Open-loop aggregate mean inter-arrival gap (cycles). */
    double meanGapCycles = 50.0;

    /** Bursty (MMPP-2): gap scale per state + mean dwell (arrivals). */
    double burstGapScale = 0.2;
    double calmGapScale = 3.0;
    double meanDwellArrivals = 256.0;

    /** Closed loop: population and mean think time (cycles). */
    uint32_t clients = 256;
    double thinkCycles = 20000.0;

    /** Fraction of arrivals that later cancel, and the mean delay
     *  from arrival to the cancel request (exponential). */
    double cancelFraction = 0.0;
    double cancelAfterMean = 1000.0;

    /** Per-tenant traffic share; empty = uniform. */
    std::vector<double> tenantWeights;
};

class TrafficGen : public TrafficSource
{
  public:
    TrafficGen(const TrafficConfig &cfg, uint32_t num_tenants,
               uint64_t seed);

    sim::Cycle peek() const override;
    Arrival pop() override;
    bool exhausted() const override;
    void onCompletion(const QueryTicket &t, sim::Cycle when) override;

    uint64_t issued() const { return issued_; }

  private:
    uint32_t pickTenant();
    double currentGapMean() const;
    sim::Cycle expGap(double mean);
    Arrival stamp(sim::Cycle cycle, uint32_t client);

    TrafficConfig cfg_;
    sim::Rng rng_;
    std::vector<double> cumWeights_;
    uint64_t issued_ = 0;

    // Open-loop state.
    sim::Cycle nextCycle_ = 0;
    bool burstState_ = false; //!< MMPP: currently in the fast state

    // Closed-loop state: (ready cycle, client) min-heap.
    using ClientEvent = std::pair<sim::Cycle, uint32_t>;
    std::priority_queue<ClientEvent, std::vector<ClientEvent>,
                        std::greater<ClientEvent>>
        ready_;
};

} // namespace tta::service

#endif // TTA_SERVICE_TRAFFIC_HH
