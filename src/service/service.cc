#include "service/service.hh"

#include <sstream>

#include "sim/logging.hh"

namespace tta::service {

TraversalService::TraversalService(const sim::Config &cfg,
                                   sim::StatRegistry &stats,
                                   const ServicePolicy &policy)
    : cfg_(cfg), stats_(stats), policy_(policy)
{
    fatal_if(policy_.maxBatch == 0, "ServicePolicy.maxBatch == 0");
    fatal_if(policy_.maxWaitCycles == 0,
             "ServicePolicy.maxWaitCycles == 0");
    fatal_if(policy_.numDevices == 0, "ServicePolicy.numDevices == 0");
    group_ = std::make_unique<DeviceGroup>(cfg_, policy_.numDevices,
                                           policy_.pipelinedStaging);
    inflight_.resize(policy_.numDevices);
    deviceLaunches_.resize(policy_.numDevices, 0);
}

sim::Cycle
TraversalService::classMaxWait(SloClass cls) const
{
    if (cls == SloClass::LatencySensitive && policy_.lsMaxWaitCycles)
        return policy_.lsMaxWaitCycles;
    return policy_.maxWaitCycles;
}

uint32_t
TraversalService::addTenant(std::unique_ptr<Tenant> tenant,
                            SloClass slo)
{
    fatal_if(ran_ || nextSeq_ != 0, "addTenant after traffic was served");
    // Same tenant order on every device, so the per-device allocation
    // sequences (and thus every serialized address) match exactly.
    for (uint32_t d = 0; d < group_->size(); ++d)
        tenant->install(group_->device(d), policy_.maxBatch);
    uint32_t id = queue_.addLane(slo);
    fatal_if(id != tenants_.size(), "tenant/lane id skew");
    tenants_.push_back(std::move(tenant));
    tenantSubmitted_.push_back(0);
    return id;
}

void
TraversalService::admitUpTo(TrafficSource &src, sim::Cycle now,
                            ServiceReport &report)
{
    while (src.peek() != kNoCycle && src.peek() <= now) {
        Arrival a = src.pop();
        fatal_if(a.tenant >= tenants_.size(),
                 "arrival for unknown tenant %u", a.tenant);
        QueryTicket t;
        t.seq = nextSeq_++;
        t.tenant = a.tenant;
        t.client = a.client;
        t.payload = static_cast<uint32_t>(
            tenantSubmitted_[a.tenant]++ %
            tenants_[a.tenant]->poolSize());
        t.arrival = a.cycle;
        t.deadline = a.cycle + classMaxWait(queue_.laneClass(a.tenant));
        queue_.enqueue(t);
        ++report.submitted;
        ++report.tenants[a.tenant].submitted;
        if (a.cancelAfter)
            cancels_.push({a.cycle + a.cancelAfter, t.seq, t.tenant});
    }
    while (!cancels_.empty() && cancels_.top().cycle <= now) {
        CancelEvent e = cancels_.top();
        cancels_.pop();
        if (queue_.cancel(e.tenant, e.seq)) {
            ++report.canceled;
            ++report.tenants[e.tenant].canceled;
        }
    }
}

void
TraversalService::launchReady(uint32_t d, ServiceReport &report)
{
    Scheduler::Batch b = scheduler_->takeReady(d);
    uint32_t t = b.tenant;
    Tenant &tenant = *tenants_[t];
    std::shared_ptr<std::vector<QueryTicket>> batch = b.queries;

    // Staging parity alternates per device launch, so batch k+1 stages
    // into the buffers batch k-1 vacated while batch k is in flight.
    // The alternation runs in serial mode too: identical buffer use,
    // identical outputs.
    uint32_t parity =
        static_cast<uint32_t>(deviceLaunches_[d] % kStagingParities);
    ++deviceLaunches_[d];
    group_->reserveParity(d, parity);

    ServiceDevice &dev = group_->device(d);
    tenant.writeBatch(dev, parity, *batch);

    DeviceGroup::Launch launch;
    launch.slot = tenant.slot(d, parity);
    launch.queries = batch->size();
    launch.parity = parity;
    Tenant *tp = &tenant;
    ServiceDevice *dp = &dev;
    launch.verify = [tp, dp, parity, batch] {
        size_t bad = tp->verifyBatch(*dp, parity, *batch);
        fatal_if(bad > tp->verifyTolerance(batch->size()),
                 "tenant '%s' device %u: %zu result mismatches in a "
                 "%zu-query batch",
                 tp->name().c_str(), dp->index(), bad, batch->size());
        return bad;
    };
    std::atomic<uint64_t> *tally = &verifyMismatches_[t];
    launch.onVerified = [tally](size_t bad) {
        tally->fetch_add(bad, std::memory_order_relaxed);
    };
    group_->submit(d, std::move(launch));
    scheduler_->onLaunch(d, b, now_);

    Inflight &f = inflight_[d];
    f.active = true;
    f.tenant = t;
    f.parity = parity;
    // Expiry is judged at launch, not placement: under non-lld
    // policies a planned batch can sit in a device backlog and cross
    // its front deadline before launching, and expiredDispatches must
    // count it (under lld placement and launch share one now_, so
    // this is the pre-scheduler semantics exactly).
    f.expired = b.expired || b.queries->front().deadline <= now_;
    f.start = now_;
    f.complete = kNoCycle;
    f.batch = std::move(batch);
    if (f.expired)
        ++report.expiredDispatches;
}

void
TraversalService::runCalibrationProbe()
{
    uint32_t n = policy_.schedParams.probeQueries;
    if (n > policy_.maxBatch)
        n = policy_.maxBatch;
    if (!scheduler_->sizeAware() || n == 0)
        return;
    // One probe batch per (tenant, device), synthetic payloads cycling
    // the tenant's pool. Launched outside the traffic loop: no queue,
    // report or sequence-number interaction — only the device clocks
    // (and caches) advance, uniformly across the group, and the cost
    // model is seeded from device 0's measurement.
    for (uint32_t t = 0; t < tenants_.size(); ++t) {
        Tenant &tenant = *tenants_[t];
        std::vector<QueryTicket> batch(n);
        for (uint32_t i = 0; i < n; ++i) {
            batch[i].seq = i;
            batch[i].tenant = t;
            batch[i].payload = static_cast<uint32_t>(
                i % tenant.poolSize());
        }
        sim::Cycle seed_elapsed = 0;
        for (uint32_t d = 0; d < group_->size(); ++d) {
            uint32_t parity = static_cast<uint32_t>(
                deviceLaunches_[d] % kStagingParities);
            ++deviceLaunches_[d];
            group_->reserveParity(d, parity);
            tenant.writeBatch(group_->device(d), parity, batch);
            DeviceGroup::Launch launch;
            launch.slot = tenant.slot(d, parity);
            launch.queries = n;
            launch.parity = parity;
            group_->submit(d, std::move(launch));
            sim::Cycle elapsed = group_->collectElapsed(d);
            if (d == 0)
                seed_elapsed = elapsed;
        }
        scheduler_->calibrate(t, n, seed_elapsed);
    }
}

void
TraversalService::ensureElapsed(uint32_t d, ServiceReport &report)
{
    Inflight &f = inflight_[d];
    if (!f.active || f.complete != kNoCycle)
        return;
    sim::Cycle elapsed = group_->collectElapsed(d);
    f.complete = f.start + elapsed;
    report.deviceBusy += elapsed;
    report.devices[d].busy += elapsed;
}

void
TraversalService::retireDue(sim::Cycle now, TrafficSource &src,
                            ServiceReport &report)
{
    for (uint32_t d = 0; d < inflight_.size(); ++d)
        if (inflight_[d].active && inflight_[d].start < now)
            ensureElapsed(d, report);

    // Retire in (completion cycle, device index) order: the recording
    // order of latencies, logs and closed-loop feedback is then a pure
    // function of the virtual clock.
    for (;;) {
        int best = -1;
        for (uint32_t d = 0; d < inflight_.size(); ++d) {
            const Inflight &f = inflight_[d];
            if (!f.active || f.complete == kNoCycle ||
                f.complete > now)
                continue;
            if (best < 0 ||
                f.complete < inflight_[best].complete)
                best = static_cast<int>(d);
        }
        if (best < 0)
            return;
        uint32_t d = static_cast<uint32_t>(best);
        Inflight &f = inflight_[d];
        const std::vector<QueryTicket> &batch = *f.batch;

        TenantReport &tr = report.tenants[f.tenant];
        DeviceReport &dr = report.devices[d];
        ClassReport &cr = report.classes[static_cast<uint32_t>(
            queue_.laneClass(f.tenant))];
        for (const QueryTicket &q : batch) {
            sim::Cycle lat = f.complete - q.arrival;
            sim::Cycle wait = f.start - q.arrival;
            tr.latency.record(lat);
            tr.queueWait.record(wait);
            report.latency.record(lat);
            dr.latency.record(lat);
            cr.latency.record(lat);
            cr.queueWait.record(wait);
            src.onCompletion(q, f.complete);
        }
        tr.completed += batch.size();
        report.completed += batch.size();
        dr.completed += batch.size();
        cr.completed += batch.size();
        ++tr.batches;
        ++report.batches;
        ++dr.batches;
        if (f.complete > dr.lastDone)
            dr.lastDone = f.complete;
        if (f.complete > report.makespan)
            report.makespan = f.complete;

        if (report.batches <= kMaxLoggedBatches) {
            std::ostringstream os;
            os << "b" << report.batches << " t=" << f.tenant
               << " start=" << f.start << " done=" << f.complete
               << " n=" << batch.size() << " seq=" << batch.front().seq
               << ".." << batch.back().seq << " dev=" << d << "\n";
            report.batchLog += os.str();
        }
        if (dr.batches <= kMaxLoggedBatches) {
            std::ostringstream os;
            os << "b" << dr.batches << " t=" << f.tenant
               << " start=" << f.start << " done=" << f.complete
               << " n=" << batch.size() << " seq=" << batch.front().seq
               << ".." << batch.back().seq << "\n";
            dr.batchLog += os.str();
        }

        scheduler_->onRetire(d, f.tenant, batch.size(), f.complete,
                             f.complete - f.start);
        f.active = false;
        f.batch.reset();
    }
}

ServiceReport
TraversalService::run(TrafficSource &src)
{
    fatal_if(ran_, "TraversalService::run called twice");
    ran_ = true;
    fatal_if(tenants_.empty(), "TraversalService::run with no tenants");
    ServiceReport report;
    report.tenants.resize(tenants_.size());
    report.devices.resize(group_->size());
    for (uint32_t t = 0; t < tenants_.size(); ++t) {
        report.tenants[t].name = tenants_[t]->name();
        report.tenants[t].slo = queue_.laneClass(t);
    }
    verifyMismatches_ = std::make_unique<std::atomic<uint64_t>[]>(
        tenants_.size());
    for (uint32_t t = 0; t < tenants_.size(); ++t)
        verifyMismatches_[t].store(0, std::memory_order_relaxed);

    scheduler_ = std::make_unique<Scheduler>(
        policy_.sched, policy_.schedParams, group_->size(),
        static_cast<uint32_t>(tenants_.size()), policy_.maxBatch);
    runCalibrationProbe();

    while (true) {
        retireDue(now_, src, report);
        admitUpTo(src, now_, report);

        // Plan: pull dispatchable batches from the admission queue and
        // place them onto devices per the scheduling policy, while the
        // scheduler has room. Under lld, "room" means an idle device
        // with no plan and placement is longest-idle-first, so the
        // pairing (and the launches below, all at the same now_) match
        // the pre-scheduler dispatcher exactly.
        scheduler_->refreshQuotas();
        while (scheduler_->hasRoom()) {
            int t;
            if (scheduler_->affinity()) {
                // Orient tenant selection around the device the batch
                // will land on: among dispatchable full lanes, the one
                // whose tree is warmest there wins (queue.hh documents
                // why this keeps the SLO rules intact).
                uint32_t d = scheduler_->nextPlacementDevice(now_);
                t = queue_.selectTenant(now_, scheduler_->quotas(),
                                        src.exhausted(),
                                        scheduler_->warmthKeys(d, now_),
                                        scheduler_->deadlineSlack());
            } else if (scheduler_->sizeAware()) {
                t = queue_.selectTenant(now_, scheduler_->quotas(),
                                        src.exhausted());
            } else {
                t = queue_.selectTenant(now_, policy_.maxBatch,
                                        src.exhausted());
            }
            if (t < 0)
                break;
            bool priority = queue_.laneClass(static_cast<uint32_t>(t)) ==
                            SloClass::LatencySensitive;
            // A partial throughput lane coalesces better the longer
            // it waits, so while every device is busy it keeps
            // accumulating: the quota makes a sub-maxBatch lane
            // *eligible* (selectable), but planning it into a busy
            // device's backlog trades a full batch's amortization for
            // a partial's with nothing gained. The moment a device
            // would otherwise sit idle (hasIdleDevice), the partial
            // pops — that is the quota's early dispatch, and it is
            // also lld's timing for expired/drain pops. Deferring
            // never idles capacity: the defer only fires with no idle
            // device, and the pass re-runs before the next launch.
            // Priority batches are exempt: they jump the backlog at
            // placement anyway.
            if (!scheduler_->leastLoaded() && !priority &&
                queue_.pending(static_cast<uint32_t>(t)) <
                    policy_.maxBatch &&
                queue_.frontDeadline(static_cast<uint32_t>(t)) > now_ &&
                !src.exhausted() && !scheduler_->hasIdleDevice())
                break;
            // Quotas gate *when* a lane dispatches (rule 2 threshold);
            // the pop itself always takes up to maxBatch, so a backed-
            // up lane still launches full-size batches.
            auto batch = std::make_shared<std::vector<QueryTicket>>(
                queue_.popBatch(static_cast<uint32_t>(t),
                                policy_.maxBatch));
            fatal_if(batch->empty(), "dispatch of an empty batch");
            bool expired = batch->front().deadline <= now_;
            scheduler_->place(static_cast<uint32_t>(t),
                              std::move(batch), expired, priority, now_);
        }
        scheduler_->rebalance(now_);

        // Launch the front of every idle device's plan. After this,
        // every device with planned work is busy, so the loop can
        // never wedge with planned batches outstanding.
        for (uint32_t d = 0; d < inflight_.size(); ++d)
            if (!inflight_[d].active && scheduler_->hasReady(d))
                launchReady(d, report);

        // Next event: arrival, cancel, deadline (only useful when the
        // scheduler could act on it), or the earliest in-flight
        // completion (collected lazily here — this is where the
        // service blocks on device workers, one at a time, while the
        // others keep simulating).
        sim::Cycle next = src.peek();
        bool anyInflight = false;
        for (const Inflight &f : inflight_)
            if (f.active)
                anyInflight = true;
        if (scheduler_->hasRoom() && queue_.pendingTotal() > 0) {
            sim::Cycle dl = queue_.earliestDeadline();
            if (dl < next)
                next = dl;
        }
        if (!cancels_.empty() && cancels_.top().cycle < next)
            next = cancels_.top().cycle;
        if (anyInflight) {
            for (uint32_t d = 0; d < inflight_.size(); ++d) {
                if (!inflight_[d].active)
                    continue;
                ensureElapsed(d, report);
                if (inflight_[d].complete < next)
                    next = inflight_[d].complete;
            }
        }
        if (next == kNoCycle) {
            fatal_if(queue_.pendingTotal() > 0,
                     "service wedged with %llu queued queries",
                     (unsigned long long)queue_.pendingTotal());
            fatal_if(scheduler_->plannedBatches() > 0,
                     "service wedged with %llu planned batches",
                     (unsigned long long)scheduler_->plannedBatches());
            fatal_if(!src.exhausted(),
                     "traffic source idle but not exhausted with an "
                     "empty queue");
            break;
        }
        now_ = next > now_ ? next : now_ + 1;
    }

    for (uint32_t d = 0; d < report.devices.size(); ++d)
        report.devices[d].steals = scheduler_->steals(d);
    report.steals = scheduler_->stealsTotal();
    report.stealLog = scheduler_->stealLog();

    // Finish outstanding verifies (and surface any worker error).
    group_->drain();
    for (uint32_t t = 0; t < tenants_.size(); ++t)
        report.tenants[t].verifySoftMismatches =
            verifyMismatches_[t].load(std::memory_order_relaxed);

    publishStats(report);
    group_->absorbStats(stats_);
    return report;
}

void
TraversalService::publishStats(const ServiceReport &report)
{
    auto publishLat = [&](const std::string &prefix,
                          const LatencyHistogram &h) {
        stats_.scalar(prefix + ".lat_p50_cycles")
            .set(static_cast<double>(h.percentile(50)));
        stats_.scalar(prefix + ".lat_p99_cycles")
            .set(static_cast<double>(h.percentile(99)));
        stats_.scalar(prefix + ".lat_p999_cycles")
            .set(static_cast<double>(h.percentile(99.9)));
        stats_.scalar(prefix + ".lat_max_cycles")
            .set(static_cast<double>(h.max()));
    };
    auto publish = [&](const std::string &prefix, const TenantReport &tr) {
        stats_.counter(prefix + ".submitted") += tr.submitted;
        stats_.counter(prefix + ".completed") += tr.completed;
        stats_.counter(prefix + ".canceled") += tr.canceled;
        stats_.counter(prefix + ".batches") += tr.batches;
        publishLat(prefix, tr.latency);
        stats_.scalar(prefix + ".wait_p99_cycles")
            .set(static_cast<double>(tr.queueWait.percentile(99)));
    };
    TenantReport total;
    total.latency = report.latency;
    for (uint32_t t = 0; t < report.tenants.size(); ++t) {
        const TenantReport &tr = report.tenants[t];
        publish("service." + tr.name, tr);
        total.submitted += tr.submitted;
        total.completed += tr.completed;
        total.canceled += tr.canceled;
        total.batches += tr.batches;
        total.queueWait.merge(tr.queueWait);
    }
    publish("service.total", total);
    for (uint32_t c = 0; c < kNumSloClasses; ++c) {
        const ClassReport &cr = report.classes[c];
        if (!cr.completed)
            continue;
        std::string prefix = std::string("service.class.") +
                             sloClassName(static_cast<SloClass>(c));
        stats_.counter(prefix + ".completed") += cr.completed;
        publishLat(prefix, cr.latency);
        stats_.scalar(prefix + ".wait_p99_cycles")
            .set(static_cast<double>(cr.queueWait.percentile(99)));
    }
    for (uint32_t d = 0; d < report.devices.size(); ++d) {
        const DeviceReport &dr = report.devices[d];
        std::string prefix = "service.dev" + std::to_string(d);
        stats_.counter(prefix + ".batches") += dr.batches;
        stats_.counter(prefix + ".completed") += dr.completed;
        stats_.scalar(prefix + ".busy_cycles")
            .set(static_cast<double>(dr.busy));
        stats_.scalar(prefix + ".lat_p99_cycles")
            .set(static_cast<double>(dr.latency.percentile(99)));
        // New-policy stats only: the lld stat surface must stay
        // byte-identical to the pre-scheduler service (the golden
        // snapshot diff rejects new keys).
        if (policy_.sched != SchedPolicy::LeastLoaded)
            stats_.counter(prefix + ".steals") += dr.steals;
    }
    if (policy_.sched != SchedPolicy::LeastLoaded)
        stats_.counter("service.sched.steals") += report.steals;
    stats_.counter("service.expired_dispatches") +=
        report.expiredDispatches;
    stats_.scalar("service.makespan_cycles")
        .set(static_cast<double>(report.makespan));
    stats_.scalar("service.device_busy_cycles")
        .set(static_cast<double>(report.deviceBusy));
    stats_.scalar("service.throughput_qpmc")
        .set(report.throughputQpmc());
}

} // namespace tta::service
