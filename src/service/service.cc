#include "service/service.hh"

#include <sstream>

#include "sim/logging.hh"

namespace tta::service {

TraversalService::TraversalService(const sim::Config &cfg,
                                   sim::StatRegistry &stats,
                                   const ServicePolicy &policy)
    : cfg_(cfg), stats_(stats), policy_(policy)
{
    fatal_if(policy_.maxBatch == 0, "ServicePolicy.maxBatch == 0");
    fatal_if(policy_.maxWaitCycles == 0,
             "ServicePolicy.maxWaitCycles == 0");
    device_ = std::make_unique<api::TtaDevice>(cfg_, stats_);
}

uint32_t
TraversalService::addTenant(std::unique_ptr<Tenant> tenant)
{
    fatal_if(nextSeq_ != 0, "addTenant after traffic was served");
    tenant->install(*device_, policy_.maxBatch);
    uint32_t id = queue_.addLane();
    fatal_if(id != tenants_.size(), "tenant/lane id skew");
    tenants_.push_back(std::move(tenant));
    tenantSubmitted_.push_back(0);
    return id;
}

void
TraversalService::admitUpTo(TrafficSource &src, sim::Cycle now,
                            ServiceReport &report)
{
    while (src.peek() != kNoCycle && src.peek() <= now) {
        Arrival a = src.pop();
        fatal_if(a.tenant >= tenants_.size(),
                 "arrival for unknown tenant %u", a.tenant);
        QueryTicket t;
        t.seq = nextSeq_++;
        t.tenant = a.tenant;
        t.client = a.client;
        t.payload = static_cast<uint32_t>(
            tenantSubmitted_[a.tenant]++ %
            tenants_[a.tenant]->poolSize());
        t.arrival = a.cycle;
        t.deadline = a.cycle + policy_.maxWaitCycles;
        queue_.enqueue(t);
        ++report.submitted;
        ++report.tenants[a.tenant].submitted;
        if (a.cancelAfter)
            cancels_.push({a.cycle + a.cancelAfter, t.seq, t.tenant});
    }
    while (!cancels_.empty() && cancels_.top().cycle <= now) {
        CancelEvent e = cancels_.top();
        cancels_.pop();
        if (queue_.cancel(e.tenant, e.seq)) {
            ++report.canceled;
            ++report.tenants[e.tenant].canceled;
        }
    }
}

void
TraversalService::dispatch(TrafficSource &src, uint32_t t,
                           ServiceReport &report)
{
    Tenant &tenant = *tenants_[t];
    std::vector<QueryTicket> batch =
        queue_.popBatch(t, policy_.maxBatch);
    fatal_if(batch.empty(), "dispatch of an empty batch");

    tenant.writeBatch(device_->memory(), batch);
    sim::Cycle elapsed =
        device_->cmdTraverseTree(tenant.slot(), batch.size());
    sim::Cycle complete = now_ + elapsed;
    freeAt_ = complete;
    report.deviceBusy += elapsed;

    size_t bad = tenant.verifyBatch(device_->memory(), batch);
    fatal_if(bad > tenant.verifyTolerance(batch.size()),
             "tenant '%s': %zu result mismatches in a %zu-query batch",
             tenant.name().c_str(), bad, batch.size());
    report.tenants[t].verifySoftMismatches += bad;

    TenantReport &tr = report.tenants[t];
    for (const QueryTicket &q : batch) {
        tr.latency.record(complete - q.arrival);
        tr.queueWait.record(now_ - q.arrival);
        report.latency.record(complete - q.arrival);
        src.onCompletion(q, complete);
    }
    tr.completed += batch.size();
    report.completed += batch.size();
    ++tr.batches;
    ++report.batches;
    if (batch.front().deadline <= now_)
        ++report.expiredDispatches;
    if (complete > report.makespan)
        report.makespan = complete;

    if (report.batches <= kMaxLoggedBatches) {
        std::ostringstream os;
        os << "b" << report.batches << " t=" << t << " start=" << now_
           << " done=" << complete << " n=" << batch.size() << " seq="
           << batch.front().seq << ".." << batch.back().seq << "\n";
        report.batchLog += os.str();
    }
}

ServiceReport
TraversalService::run(TrafficSource &src)
{
    fatal_if(tenants_.empty(), "TraversalService::run with no tenants");
    ServiceReport report;
    report.tenants.resize(tenants_.size());
    for (uint32_t t = 0; t < tenants_.size(); ++t)
        report.tenants[t].name = tenants_[t]->name();

    while (true) {
        admitUpTo(src, now_, report);
        bool drain = src.exhausted();
        int t = queue_.selectTenant(now_, policy_.maxBatch, drain);
        if (t >= 0) {
            if (freeAt_ > now_) {
                // Device busy: later arrivals keep coalescing; the
                // dispatch decision replays at the completion cycle.
                now_ = freeAt_;
                continue;
            }
            dispatch(src, static_cast<uint32_t>(t), report);
            continue;
        }
        sim::Cycle next = src.peek();
        if (queue_.pendingTotal() > 0) {
            sim::Cycle d = queue_.earliestDeadline();
            if (d < next)
                next = d;
        }
        if (!cancels_.empty() && cancels_.top().cycle < next)
            next = cancels_.top().cycle;
        if (next == kNoCycle) {
            fatal_if(queue_.pendingTotal() > 0,
                     "service wedged with %llu queued queries",
                     (unsigned long long)queue_.pendingTotal());
            fatal_if(!src.exhausted(),
                     "traffic source idle but not exhausted with an "
                     "empty queue");
            break;
        }
        now_ = next > now_ ? next : now_ + 1;
    }

    publishStats(report);
    return report;
}

void
TraversalService::publishStats(const ServiceReport &report)
{
    auto publish = [&](const std::string &prefix, const TenantReport &tr) {
        stats_.counter(prefix + ".submitted") += tr.submitted;
        stats_.counter(prefix + ".completed") += tr.completed;
        stats_.counter(prefix + ".canceled") += tr.canceled;
        stats_.counter(prefix + ".batches") += tr.batches;
        const LatencyHistogram &h = tr.latency;
        stats_.scalar(prefix + ".lat_p50_cycles")
            .set(static_cast<double>(h.percentile(50)));
        stats_.scalar(prefix + ".lat_p99_cycles")
            .set(static_cast<double>(h.percentile(99)));
        stats_.scalar(prefix + ".lat_p999_cycles")
            .set(static_cast<double>(h.percentile(99.9)));
        stats_.scalar(prefix + ".lat_max_cycles")
            .set(static_cast<double>(h.max()));
        stats_.scalar(prefix + ".wait_p99_cycles")
            .set(static_cast<double>(tr.queueWait.percentile(99)));
    };
    TenantReport total;
    total.latency = report.latency;
    for (uint32_t t = 0; t < report.tenants.size(); ++t) {
        const TenantReport &tr = report.tenants[t];
        publish("service." + tr.name, tr);
        total.submitted += tr.submitted;
        total.completed += tr.completed;
        total.canceled += tr.canceled;
        total.batches += tr.batches;
        total.queueWait.merge(tr.queueWait);
    }
    publish("service.total", total);
    stats_.counter("service.expired_dispatches") +=
        report.expiredDispatches;
    stats_.scalar("service.makespan_cycles")
        .set(static_cast<double>(report.makespan));
    stats_.scalar("service.device_busy_cycles")
        .set(static_cast<double>(report.deviceBusy));
    stats_.scalar("service.throughput_qpmc")
        .set(report.throughputQpmc());
}

} // namespace tta::service
