/**
 * @file
 * Log-bucketed latency histogram for the serving layer.
 *
 * HdrHistogram-style layout: values below 2^kSubBits land in exact
 * unit-width buckets; above that, every power-of-two range [2^m,
 * 2^(m+1)) is split into 2^kSubBits equal sub-buckets, so the bucket
 * width is always <= value / 2^kSubBits and any recorded value is
 * reproduced by percentile() with a relative error < 1/2^kSubBits
 * (3.2% at kSubBits = 5). Values at or above 2^kMaxBits overflow into
 * a dedicated tail bucket that percentile() reports as the tracked
 * maximum.
 *
 * Percentile semantics are nearest-rank on the bucket lower edge:
 * percentile(p) returns the lower edge of the bucket holding the
 * ceil(p/100 * count)-th smallest sample. Integer-only state, so two
 * histograms fed the same samples in any order dump bit-identically —
 * this is the oracle the service determinism tests compare.
 */

#ifndef TTA_SERVICE_LATENCY_HH
#define TTA_SERVICE_LATENCY_HH

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace tta::service {

class LatencyHistogram
{
  public:
    static constexpr uint32_t kSubBits = 5;
    static constexpr uint32_t kSubBuckets = 1u << kSubBits; // 32
    /** Values >= 2^kMaxBits cycles (~13 simulated minutes) overflow. */
    static constexpr uint32_t kMaxBits = 40;
    static constexpr uint32_t kNumBuckets =
        kSubBuckets + (kMaxBits - kSubBits) * kSubBuckets;

    LatencyHistogram() : buckets_(kNumBuckets, 0) {}

    void record(uint64_t value)
    {
        ++count_;
        sum_ += value;
        if (value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
        if (value >= (1ull << kMaxBits)) {
            ++overflow_;
            return;
        }
        ++buckets_[bucketIndex(value)];
    }

    uint64_t count() const { return count_; }
    uint64_t overflow() const { return overflow_; }
    uint64_t min() const { return count_ ? min_ : 0; }
    uint64_t max() const { return max_; }
    uint64_t sum() const { return sum_; }
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) / count_ : 0.0;
    }

    /**
     * Nearest-rank percentile, @p p in (0, 100]. Returns the lower
     * edge of the bucket holding the ceil(p/100 * count)-th smallest
     * sample (so it never exceeds that sample and is within 1/32
     * relative error below it); returns max() when the rank falls in
     * the overflow tail, 0 on an empty histogram.
     */
    uint64_t percentile(double p) const
    {
        if (count_ == 0)
            return 0;
        fatal_if(p <= 0.0 || p > 100.0, "percentile(%f) out of (0,100]",
                 p);
        // ceil(p/100 * count) without FP rank drift: use integer ceil
        // on p expressed in thousandths (covers p50/p99/p999 exactly).
        uint64_t milli = static_cast<uint64_t>(p * 1000.0 + 0.5);
        uint64_t rank = (milli * count_ + 99999) / 100000;
        if (rank < 1)
            rank = 1;
        if (rank > count_)
            rank = count_;
        uint64_t seen = 0;
        for (uint32_t b = 0; b < kNumBuckets; ++b) {
            seen += buckets_[b];
            if (seen >= rank)
                return bucketLowerEdge(b);
        }
        return max_; // rank landed in the overflow tail
    }

    void merge(const LatencyHistogram &o)
    {
        for (uint32_t b = 0; b < kNumBuckets; ++b)
            buckets_[b] += o.buckets_[b];
        count_ += o.count_;
        sum_ += o.sum_;
        overflow_ += o.overflow_;
        if (o.count_ && o.min_ < min_)
            min_ = o.min_;
        if (o.max_ > max_)
            max_ = o.max_;
    }

    /** Canonical text form: the bit-identity oracle for tests. */
    std::string dumpString() const
    {
        std::ostringstream os;
        os << "count=" << count_ << " sum=" << sum_ << " min=" << min()
           << " max=" << max_ << " overflow=" << overflow_ << "\n";
        for (uint32_t b = 0; b < kNumBuckets; ++b)
            if (buckets_[b])
                os << bucketLowerEdge(b) << ":" << buckets_[b] << "\n";
        return os.str();
    }

    static uint32_t bucketIndex(uint64_t v)
    {
        if (v < kSubBuckets)
            return static_cast<uint32_t>(v);
        uint32_t msb = 63 - static_cast<uint32_t>(__builtin_clzll(v));
        uint32_t sub = static_cast<uint32_t>(
            (v >> (msb - kSubBits)) - kSubBuckets);
        return kSubBuckets + (msb - kSubBits) * kSubBuckets + sub;
    }

    static uint64_t bucketLowerEdge(uint32_t b)
    {
        if (b < kSubBuckets)
            return b;
        uint32_t m = kSubBits + (b - kSubBuckets) / kSubBuckets;
        uint32_t sub = (b - kSubBuckets) % kSubBuckets;
        return static_cast<uint64_t>(kSubBuckets + sub)
               << (m - kSubBits);
    }

  private:
    std::vector<uint64_t> buckets_;
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t overflow_ = 0;
    uint64_t min_ = std::numeric_limits<uint64_t>::max();
    uint64_t max_ = 0;
};

/**
 * Simulated cycles -> microseconds at the configured core clock.
 * MHz is cycles per microsecond, so this is a single division.
 */
inline double
cyclesToUs(uint64_t cycles, double core_clock_mhz)
{
    fatal_if(core_clock_mhz <= 0.0, "cyclesToUs: bad clock %f MHz",
             core_clock_mhz);
    return static_cast<double>(cycles) / core_clock_mhz;
}

} // namespace tta::service

#endif // TTA_SERVICE_LATENCY_HH
