#include "service/queue.hh"

#include "sim/logging.hh"

namespace tta::service {

const char *
sloClassName(SloClass c)
{
    switch (c) {
      case SloClass::LatencySensitive:
        return "latency";
      case SloClass::Throughput:
        return "throughput";
    }
    return "?";
}

AdmissionQueue::AdmissionQueue(uint32_t num_tenants)
    : lanes_(num_tenants), live_(num_tenants, 0),
      laneClass_(num_tenants, SloClass::Throughput)
{
    fatal_if(num_tenants == 0, "AdmissionQueue with zero tenants");
}

uint32_t
AdmissionQueue::addLane(SloClass cls)
{
    lanes_.emplace_back();
    live_.push_back(0);
    laneClass_.push_back(cls);
    return static_cast<uint32_t>(lanes_.size() - 1);
}

void
AdmissionQueue::enqueue(const QueryTicket &t)
{
    fatal_if(t.tenant >= lanes_.size(), "enqueue to unknown tenant %u",
             t.tenant);
    auto &lane = lanes_[t.tenant];
    fatal_if(!lane.empty() && lane.back().ticket.arrival > t.arrival,
             "tenant %u: arrivals out of order (%llu after %llu)",
             t.tenant, (unsigned long long)t.arrival,
             (unsigned long long)lane.back().ticket.arrival);
    lane.push_back({t, false});
    ++live_[t.tenant];
}

bool
AdmissionQueue::cancel(uint32_t tenant, uint64_t seq)
{
    fatal_if(tenant >= lanes_.size(), "cancel on unknown tenant %u",
             tenant);
    for (auto &e : lanes_[tenant]) {
        if (e.ticket.seq != seq)
            continue;
        if (e.canceled)
            return false;
        e.canceled = true;
        --live_[tenant];
        dropDeadFront(tenant);
        return true;
    }
    return false; // already dispatched
}

uint64_t
AdmissionQueue::pendingTotal() const
{
    uint64_t total = 0;
    for (uint64_t n : live_)
        total += n;
    return total;
}

size_t
AdmissionQueue::frontLive(uint32_t tenant) const
{
    const auto &lane = lanes_[tenant];
    for (size_t i = 0; i < lane.size(); ++i)
        if (!lane[i].canceled)
            return i;
    return SIZE_MAX;
}

void
AdmissionQueue::dropDeadFront(uint32_t tenant)
{
    auto &lane = lanes_[tenant];
    while (!lane.empty() && lane.front().canceled)
        lane.pop_front();
}

sim::Cycle
AdmissionQueue::frontDeadline(uint32_t tenant) const
{
    size_t i = frontLive(tenant);
    return i == SIZE_MAX ? kNoCycle : lanes_[tenant][i].ticket.deadline;
}

sim::Cycle
AdmissionQueue::earliestDeadline() const
{
    sim::Cycle best = kNoCycle;
    for (uint32_t t = 0; t < lanes_.size(); ++t) {
        size_t i = frontLive(t);
        if (i != SIZE_MAX && lanes_[t][i].ticket.deadline < best)
            best = lanes_[t][i].ticket.deadline;
    }
    return best;
}

template <typename QuotaFn, typename PreferFn>
int
AdmissionQueue::selectTenantWith(sim::Cycle now, QuotaFn quota,
                                 PreferFn prefer, bool drain,
                                 sim::Cycle slack)
{
    // Classes in strict priority order; the first class with any
    // dispatchable work (expired deadline, full lane, or drain flush)
    // wins outright.
    for (uint32_t c = 0; c < kNumSloClasses; ++c) {
        SloClass cls = static_cast<SloClass>(c);

        // Rule 1: earliest expired deadline in the class wins (ties ->
        // lowest tenant id). With a nonzero slack this is
        // bounded-lateness EDF: among the expired lanes whose front
        // deadline is within @p slack of the earliest, the highest
        // preference score wins (equal scores fall back to earliest
        // deadline, then lowest id — so slack == 0 or an all-zero
        // preference is exact EDF). Lateness stays bounded: every
        // pass-over pops some lane whose deadline is inside the
        // window, and arrivals only ever append later deadlines, so
        // after at most one pop per other lane in the class the
        // earliest lane is the only candidate left.
        sim::Cycle earliest = kNoCycle;
        for (uint32_t t = 0; t < lanes_.size(); ++t) {
            if (laneClass_[t] != cls)
                continue;
            size_t i = frontLive(t);
            if (i == SIZE_MAX)
                continue;
            sim::Cycle d = lanes_[t][i].ticket.deadline;
            if (d <= now && d < earliest)
                earliest = d;
        }
        if (earliest != kNoCycle) {
            int edf = -1;
            sim::Cycle edf_deadline = kNoCycle;
            uint64_t edf_pref = 0;
            for (uint32_t t = 0; t < lanes_.size(); ++t) {
                if (laneClass_[t] != cls)
                    continue;
                size_t i = frontLive(t);
                if (i == SIZE_MAX)
                    continue;
                sim::Cycle d = lanes_[t][i].ticket.deadline;
                if (d > now || d - earliest > slack)
                    continue;
                uint64_t p = prefer(t);
                if (edf < 0 || p > edf_pref ||
                    (p == edf_pref && d < edf_deadline)) {
                    edf = static_cast<int>(t);
                    edf_deadline = d;
                    edf_pref = p;
                }
            }
            return edf;
        }

        // Rule 2 (full batches) / rule 3 (drain): round-robin scan on
        // the class's own cursor; the highest preference score among
        // the candidates wins (only a strictly greater score displaces
        // an earlier candidate, so a constant preference reduces to
        // plain round-robin).
        int best = -1;
        uint64_t best_pref = 0;
        for (uint32_t k = 0; k < lanes_.size(); ++k) {
            uint32_t t = (rrCursor_[c] + k) %
                         static_cast<uint32_t>(lanes_.size());
            if (laneClass_[t] != cls)
                continue;
            if (live_[t] < quota(t) && !(drain && live_[t] > 0))
                continue;
            uint64_t p = prefer(t);
            if (best < 0 || p > best_pref) {
                best = static_cast<int>(t);
                best_pref = p;
            }
        }
        if (best >= 0)
            return best;
    }
    return -1;
}

int
AdmissionQueue::selectTenant(sim::Cycle now, uint32_t max_batch,
                             bool drain)
{
    fatal_if(max_batch == 0, "selectTenant with max_batch == 0");
    return selectTenantWith(
        now, [max_batch](uint32_t) { return max_batch; },
        [](uint32_t) { return uint64_t{0}; }, drain, 0);
}

int
AdmissionQueue::selectTenant(sim::Cycle now,
                             const std::vector<uint32_t> &quota,
                             bool drain)
{
    fatal_if(quota.size() != lanes_.size(),
             "selectTenant quota vector has %zu entries for %zu lanes",
             quota.size(), lanes_.size());
    for (uint32_t q : quota)
        fatal_if(q == 0, "selectTenant with a zero quota");
    return selectTenantWith(
        now, [&quota](uint32_t t) { return quota[t]; },
        [](uint32_t) { return uint64_t{0}; }, drain, 0);
}

int
AdmissionQueue::selectTenant(sim::Cycle now,
                             const std::vector<uint32_t> &quota,
                             bool drain,
                             const std::vector<uint64_t> &prefer,
                             sim::Cycle slack)
{
    fatal_if(quota.size() != lanes_.size(),
             "selectTenant quota vector has %zu entries for %zu lanes",
             quota.size(), lanes_.size());
    fatal_if(prefer.size() != lanes_.size(),
             "selectTenant prefer vector has %zu entries for %zu lanes",
             prefer.size(), lanes_.size());
    for (uint32_t q : quota)
        fatal_if(q == 0, "selectTenant with a zero quota");
    return selectTenantWith(
        now, [&quota](uint32_t t) { return quota[t]; },
        [&prefer](uint32_t t) { return prefer[t]; }, drain, slack);
}

std::vector<QueryTicket>
AdmissionQueue::popBatch(uint32_t tenant, uint32_t max_batch)
{
    fatal_if(tenant >= lanes_.size(), "popBatch on unknown tenant %u",
             tenant);
    std::vector<QueryTicket> batch;
    auto &lane = lanes_[tenant];
    while (!lane.empty() && batch.size() < max_batch) {
        Entry e = lane.front();
        lane.pop_front();
        if (e.canceled)
            continue;
        batch.push_back(e.ticket);
        --live_[tenant];
    }
    rrCursor_[static_cast<uint32_t>(laneClass_[tenant])] =
        (tenant + 1) % static_cast<uint32_t>(lanes_.size());
    return batch;
}

} // namespace tta::service
