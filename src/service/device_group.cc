#include "service/device_group.hh"

#include "sim/logging.hh"

namespace tta::service {

DeviceGroup::DeviceGroup(const sim::Config &cfg, uint32_t num_devices,
                         bool pipelined)
    : pipelined_(pipelined)
{
    fatal_if(num_devices == 0, "DeviceGroup with zero devices");
    for (uint32_t d = 0; d < num_devices; ++d)
        devices_.push_back(std::make_unique<ServiceDevice>(cfg, d));
    for (uint32_t d = 0; d < num_devices; ++d) {
        workers_.push_back(std::make_unique<Worker>());
        if (pipelined_)
            workers_[d]->thread =
                std::thread([this, d] { workerLoop(d); });
    }
}

DeviceGroup::~DeviceGroup()
{
    for (auto &w : workers_) {
        if (!w->thread.joinable())
            continue;
        {
            std::lock_guard<std::mutex> lk(w->mu);
            w->stop = true;
        }
        w->cv.notify_all();
        w->thread.join();
    }
}

void
DeviceGroup::rethrowLocked(Worker &w)
{
    if (w.error)
        std::rethrow_exception(w.error);
}

void
DeviceGroup::reserveParity(uint32_t d, uint32_t parity)
{
    fatal_if(parity >= kStagingParities, "parity %u out of range",
             parity);
    Worker &w = *workers_[d];
    std::unique_lock<std::mutex> lk(w.mu);
    w.cv.wait(lk, [&] {
        return w.parityBusy[parity] == 0 || w.error;
    });
    rethrowLocked(w);
}

void
DeviceGroup::submit(uint32_t d, Launch launch)
{
    Worker &w = *workers_[d];
    if (!pipelined_) {
        runInline(d, launch);
        return;
    }
    {
        std::lock_guard<std::mutex> lk(w.mu);
        rethrowLocked(w);
        ++w.parityBusy[launch.parity];
        w.launches.push_back(std::move(launch));
    }
    w.cv.notify_all();
}

sim::Cycle
DeviceGroup::collectElapsed(uint32_t d)
{
    Worker &w = *workers_[d];
    std::unique_lock<std::mutex> lk(w.mu);
    w.cv.wait(lk, [&] { return !w.elapsed.empty() || w.error; });
    if (w.elapsed.empty())
        rethrowLocked(w);
    sim::Cycle e = w.elapsed.front();
    w.elapsed.pop_front();
    return e;
}

void
DeviceGroup::drain()
{
    for (auto &wp : workers_) {
        Worker &w = *wp;
        std::unique_lock<std::mutex> lk(w.mu);
        w.cv.wait(lk, [&] {
            return (w.launches.empty() && w.verifies.empty() &&
                    !w.working) ||
                   w.error;
        });
        rethrowLocked(w);
    }
}

void
DeviceGroup::absorbStats(sim::StatRegistry &into) const
{
    for (const auto &dev : devices_)
        into.absorb(dev->stats());
}

void
DeviceGroup::runInline(uint32_t d, Launch &launch)
{
    // The serial twin of the worker protocol: launch, publish elapsed,
    // verify, release — all before submit() returns. Same observable
    // outputs as the pipelined path, by construction.
    Worker &w = *workers_[d];
    sim::Cycle e =
        devices_[d]->api().cmdTraverseTree(launch.slot, launch.queries);
    w.elapsed.push_back(e);
    size_t mismatches = launch.verify ? launch.verify() : 0;
    if (launch.onVerified)
        launch.onVerified(mismatches);
}

void
DeviceGroup::workerLoop(uint32_t d)
{
    Worker &w = *workers_[d];
    for (;;) {
        Launch task;
        bool isLaunch = false;
        {
            std::unique_lock<std::mutex> lk(w.mu);
            w.working = false;
            w.cv.notify_all();
            w.cv.wait(lk, [&] {
                return w.stop || !w.launches.empty() ||
                       !w.verifies.empty();
            });
            if (w.error)
                return;
            if (w.stop && w.launches.empty() && w.verifies.empty())
                return;
            // Launches first: the next batch's simulation overlaps the
            // previous batch's host-side verify.
            if (!w.launches.empty()) {
                task = std::move(w.launches.front());
                w.launches.pop_front();
                isLaunch = true;
            } else {
                task = std::move(w.verifies.front());
                w.verifies.pop_front();
            }
            w.working = true;
        }

        try {
            if (isLaunch) {
                sim::Cycle e = devices_[d]->api().cmdTraverseTree(
                    task.slot, task.queries);
                std::lock_guard<std::mutex> lk(w.mu);
                w.elapsed.push_back(e);
                w.verifies.push_back(std::move(task));
            } else {
                size_t mismatches = task.verify ? task.verify() : 0;
                if (task.onVerified)
                    task.onVerified(mismatches);
                std::lock_guard<std::mutex> lk(w.mu);
                --w.parityBusy[task.parity];
            }
        } catch (...) {
            std::lock_guard<std::mutex> lk(w.mu);
            w.error = std::current_exception();
            w.working = false;
            w.cv.notify_all();
            return;
        }
        w.cv.notify_all();
    }
}

} // namespace tta::service
