/**
 * @file
 * Admission queue for the traversal service (src/service/service.hh).
 *
 * One FIFO lane per tenant; every lane belongs to an SLO class
 * (latency-sensitive or throughput). The dispatch policy walks the
 * classes in strict priority order (latency-sensitive first) and,
 * within the first class that has dispatchable work, selects a tenant
 * when
 *
 *  1. any tenant's oldest live query has an expired max-wait deadline —
 *     earliest deadline first (ties to the lowest tenant id), or
 *  2. any tenant has a full batch pending — round-robin among them, or
 *  3. the traffic source is drained — round-robin among the non-empty
 *     lanes, flushing partial batches.
 *
 * Each class keeps its own round-robin cursor, so a burst on one class
 * never perturbs the other class's fairness rotation. With every lane
 * in a single class the policy reduces exactly to the original
 * classless queue (one EDF scan, one cursor).
 *
 * Rule 1 bounds starvation within a class: a query's wait is never
 * extended past its deadline by another tenant's full batches in the
 * same class (the fuzz suite in tests/test_service_queue.cc asserts
 * this under randomized enqueue/cancel interleavings, including mixed
 * classes). Across classes the priority is strict: throughput lanes
 * only launch while no latency-sensitive lane has dispatchable work,
 * so their bound additionally depends on the latency-sensitive load
 * leaving device capacity. Cancels are lazy — entries stay in place
 * flagged canceled and are skipped by dispatch — so live order within
 * a tenant is submission order, always.
 *
 * Everything here is plain integer state driven by explicit cycle
 * timestamps: identical call sequences produce identical batches on
 * any host, thread count or simulation kernel.
 */

#ifndef TTA_SERVICE_QUEUE_HH
#define TTA_SERVICE_QUEUE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/ticked.hh"

namespace tta::service {

/** "No cycle": sorts after every real cycle. */
inline constexpr sim::Cycle kNoCycle = ~sim::Cycle{0};

/** Per-tenant SLO class. Order is dispatch priority (lower = first). */
enum class SloClass : uint8_t
{
    LatencySensitive = 0,
    Throughput = 1,
};

inline constexpr uint32_t kNumSloClasses = 2;

const char *sloClassName(SloClass c);

/** One admitted query, queued until it joins a batch. */
struct QueryTicket
{
    uint64_t seq = 0;     //!< global submission sequence, unique
    uint32_t tenant = 0;  //!< tenant lane
    uint32_t client = 0;  //!< issuing simulated client
    uint32_t payload = 0; //!< index into the tenant's payload pool
    sim::Cycle arrival = 0;
    sim::Cycle deadline = 0; //!< arrival + the class's max-wait
};

class AdmissionQueue
{
  public:
    AdmissionQueue() = default;
    /** All lanes in the throughput class (the classless legacy shape). */
    explicit AdmissionQueue(uint32_t num_tenants);

    /** Append an empty lane in @p cls; @return its tenant id. */
    uint32_t addLane(SloClass cls = SloClass::Throughput);

    SloClass laneClass(uint32_t tenant) const
    {
        return laneClass_[tenant];
    }

    /** Append to the tenant's lane. Arrival times must be
     *  nondecreasing per tenant (FIFO == arrival order). */
    void enqueue(const QueryTicket &t);

    /**
     * Cancel a still-queued query by (tenant, seq).
     * @return true if it was live (now dropped from dispatch), false
     *         if it already left in a batch or was already canceled.
     */
    bool cancel(uint32_t tenant, uint64_t seq);

    /** Live (non-canceled) queued entries for one tenant / overall. */
    uint64_t pending(uint32_t tenant) const { return live_[tenant]; }
    uint64_t pendingTotal() const;

    /** Earliest deadline among the live front entries, or kNoCycle. */
    sim::Cycle earliestDeadline() const;

    /** Deadline of the tenant's oldest live entry, or kNoCycle when
     *  the lane is empty. */
    sim::Cycle frontDeadline(uint32_t tenant) const;

    /**
     * Dispatch decision at time @p now (see file header for the
     * policy). @return tenant id, or -1 when nothing should launch.
     */
    int selectTenant(sim::Cycle now, uint32_t max_batch, bool drain);

    /**
     * Size-aware variant: rule 2's "full batch" test uses a per-tenant
     * quota (service::Scheduler derives quotas from estimated service
     * cost) instead of one shared max_batch. With every quota equal to
     * max_batch this is byte-identical to the scalar overload.
     */
    int selectTenant(sim::Cycle now, const std::vector<uint32_t> &quota,
                     bool drain);

    /**
     * Affinity variant: the class priority walk is unchanged, but the
     * highest @p prefer score wins among the candidates of the rule
     * that fires — rule 1 becomes bounded-lateness EDF (candidates are
     * the expired lanes whose front deadline is within @p slack of the
     * earliest; equal scores fall back to earliest-deadline, lowest
     * id), rules 2/3 replace plain round-robin (ties resolve in
     * round-robin scan order). An all-zero @p prefer with @p slack == 0
     * is byte-identical to the quota overload. The service passes
     * per-(tenant, device) cache-warmth scores so a device re-pulls
     * the tenant whose tree it has hot. Starvation stays bounded: a
     * lane can only be passed over for other lanes inside the slack
     * window, each pass-over pops one of them past it, and new
     * arrivals only append later deadlines.
     */
    int selectTenant(sim::Cycle now, const std::vector<uint32_t> &quota,
                     bool drain, const std::vector<uint64_t> &prefer,
                     sim::Cycle slack);

    /**
     * Pop up to @p max_batch live tickets from the tenant's lane in
     * submission order, discarding canceled entries as they surface.
     * Advances the tenant's class round-robin cursor past @p tenant.
     */
    std::vector<QueryTicket> popBatch(uint32_t tenant,
                                      uint32_t max_batch);

    uint32_t numTenants() const
    {
        return static_cast<uint32_t>(lanes_.size());
    }

  private:
    struct Entry
    {
        QueryTicket ticket;
        bool canceled = false;
    };

    /** Shared policy walk; @p quota maps tenant -> rule-2 threshold,
     *  @p prefer maps tenant -> selection score (higher wins), and
     *  @p slack widens rule 1's candidate window (bounded-lateness
     *  EDF). */
    template <typename QuotaFn, typename PreferFn>
    int selectTenantWith(sim::Cycle now, QuotaFn quota, PreferFn prefer,
                         bool drain, sim::Cycle slack);

    /** Index of the first live entry in a lane, or SIZE_MAX. */
    size_t frontLive(uint32_t tenant) const;
    void dropDeadFront(uint32_t tenant);

    std::vector<std::deque<Entry>> lanes_;
    std::vector<uint64_t> live_;
    std::vector<SloClass> laneClass_;
    uint32_t rrCursor_[kNumSloClasses] = {0, 0};
};

} // namespace tta::service

#endif // TTA_SERVICE_QUEUE_HH
