#include "service/tenants.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace tta::service {

Tenant::Binding &
Tenant::newBinding(const ServiceDevice &dev)
{
    fatal_if(dev.index() != bindings_.size(),
             "tenant '%s': install on device %u out of order (have %zu)",
             name_.c_str(), dev.index(), bindings_.size());
    bindings_.emplace_back();
    return bindings_.back();
}

// --- BTreeTenant --------------------------------------------------------

namespace {

std::vector<float>
makeBTreeKeys(size_t n_keys)
{
    // Even-integer keys (exact as floats), odd integers guaranteed
    // absent — the same scheme BTreeWorkload uses.
    std::vector<float> keys(n_keys);
    for (size_t i = 0; i < n_keys; ++i)
        keys[i] = 2.0f * static_cast<float>(i + 1);
    return keys;
}

} // namespace

BTreeTenantData::BTreeTenantData(size_t n_keys, size_t pool_size,
                                 uint64_t seed, double hit_rate)
    : tree(trees::BTreeKind::BPlusTree, makeBTreeKeys(n_keys))
{
    fatal_if(pool_size == 0, "BTreeTenantData: empty payload pool");
    sim::Rng rng(seed);
    pool.resize(pool_size);
    expected.resize(pool_size);
    for (size_t q = 0; q < pool_size; ++q) {
        if (rng.nextDouble() < hit_rate)
            pool[q] = 2.0f * static_cast<float>(rng.nextBounded(n_keys) + 1);
        else
            pool[q] =
                2.0f * static_cast<float>(rng.nextBounded(n_keys)) + 1.0f;
        expected[q] = tree.search(pool[q]).found ? 1 : 0;
    }
}

std::shared_ptr<const BTreeTenantData>
BTreeTenantData::build(size_t n_keys, size_t pool_size, uint64_t seed,
                       double hit_rate)
{
    return std::make_shared<const BTreeTenantData>(n_keys, pool_size,
                                                   seed, hit_rate);
}

BTreeTenant::BTreeTenant(std::string name,
                         std::shared_ptr<const BTreeTenantData> data)
    : Tenant(std::move(name)), data_(std::move(data))
{
    fatal_if(!data_, "BTreeTenant '%s': null data", name_.c_str());
    poolSize_ = data_->pool.size();
}

BTreeTenant::BTreeTenant(std::string name, size_t n_keys,
                         size_t pool_size, uint64_t seed, double hit_rate)
    : BTreeTenant(std::move(name),
                  BTreeTenantData::build(n_keys, pool_size, seed,
                                         hit_rate))
{}

void
BTreeTenant::install(ServiceDevice &dev, uint32_t max_batch)
{
    Binding &b = newBinding(dev);
    mem::GlobalMemory &gmem = dev.memory();
    uint64_t root = data_->tree.serialize(gmem);
    for (uint32_t p = 0; p < kStagingParities; ++p) {
        b.queryBase[p] = gmem.alloc(4ull * max_batch, 128);
        b.resultBase[p] = gmem.alloc(4ull * max_batch, 128);
        specs_.push_back(std::make_unique<workloads::BTreeSpec>(
            gmem, root, b.queryBase[p], b.resultBase[p]));
        b.slot[p] = dev.bindPipelineSlot(
            workloads::BTreeWorkload::makePipeline(), specs_.back().get());
    }
}

void
BTreeTenant::writeBatch(ServiceDevice &dev, uint32_t parity,
                        const std::vector<QueryTicket> &batch)
{
    mem::GlobalMemory &gmem = dev.memory();
    const Binding &b = bindings_[dev.index()];
    for (size_t i = 0; i < batch.size(); ++i) {
        gmem.write<float>(b.queryBase[parity] + 4 * i,
                          data_->pool[batch[i].payload]);
        gmem.write<uint32_t>(b.resultBase[parity] + 4 * i, 0xdeadbeefu);
    }
}

size_t
BTreeTenant::verifyBatch(const ServiceDevice &dev, uint32_t parity,
                         const std::vector<QueryTicket> &batch) const
{
    const mem::GlobalMemory &gmem = dev.memory();
    const Binding &b = bindings_[dev.index()];
    size_t bad = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
        uint32_t got =
            gmem.read<uint32_t>(b.resultBase[parity] + 4 * i);
        if (got != data_->expected[batch[i].payload])
            ++bad;
    }
    return bad;
}

// --- RadiusTenant -------------------------------------------------------

RadiusTenantData::RadiusTenantData(size_t n_points, size_t pool_size,
                                   float radius, uint64_t seed)
    : cloud(trees::PointCloud::generateLidarLike(n_points, seed))
{
    fatal_if(pool_size == 0, "RadiusTenantData: empty payload pool");
    // Built here, not in the init list: the index keeps a pointer to
    // `cloud`, which must already sit at its final address.
    index = std::make_unique<trees::RadiusSearchIndex>(cloud, radius);

    // Same query mix as RtnnWorkload: mostly jittered cloud points,
    // the rest uniform over the scene volume.
    sim::Rng rng(seed ^ 0x9e3779b9ull);
    pool.reserve(pool_size);
    for (size_t q = 0; q < pool_size; ++q) {
        if (rng.nextFloat() < 0.7f) {
            const geom::Vec3 &p =
                cloud.points[rng.nextBounded(cloud.points.size())];
            pool.push_back({p.x + 0.3f * rng.gaussian(),
                            p.y + 0.3f * rng.gaussian(),
                            p.z + 0.1f * rng.gaussian()});
        } else {
            pool.push_back({rng.uniform(-80.0f, 80.0f),
                            rng.uniform(-80.0f, 80.0f),
                            rng.uniform(0.0f, 6.0f)});
        }
    }
    expected.reserve(pool_size);
    for (const auto &q : pool)
        expected.push_back(
            static_cast<uint32_t>(index->query(q).size()));
}

std::shared_ptr<const RadiusTenantData>
RadiusTenantData::build(size_t n_points, size_t pool_size, float radius,
                        uint64_t seed)
{
    return std::make_shared<const RadiusTenantData>(n_points, pool_size,
                                                    radius, seed);
}

RadiusTenant::RadiusTenant(std::string name,
                           std::shared_ptr<const RadiusTenantData> data)
    : Tenant(std::move(name)), data_(std::move(data))
{
    fatal_if(!data_, "RadiusTenant '%s': null data", name_.c_str());
    poolSize_ = data_->pool.size();
}

RadiusTenant::RadiusTenant(std::string name, size_t n_points,
                           size_t pool_size, float radius, uint64_t seed)
    : RadiusTenant(std::move(name),
                   RadiusTenantData::build(n_points, pool_size, radius,
                                           seed))
{}

void
RadiusTenant::install(ServiceDevice &dev, uint32_t max_batch)
{
    Binding &b = newBinding(dev);
    mem::GlobalMemory &gmem = dev.memory();
    trees::SerializedBvh sbvh = data_->index->bvh().serialize(gmem);
    uint64_t pointBase = data_->cloud.serialize(gmem);
    for (uint32_t p = 0; p < kStagingParities; ++p) {
        b.queryBase[p] = gmem.alloc(
            static_cast<uint64_t>(max_batch) *
                trees::PointLayout::kPointBytes,
            128);
        b.resultBase[p] = gmem.alloc(4ull * max_batch, 128);
        specs_.push_back(std::make_unique<workloads::RtnnSpec>(
            gmem, sbvh, pointBase, b.queryBase[p], b.resultBase[p],
            data_->index->radius(), /*offload_leaf=*/true));
        b.slot[p] = dev.bindPipelineSlot(
            workloads::RtnnWorkload::makePipeline(/*offload_leaf=*/true),
            specs_.back().get());
    }
}

void
RadiusTenant::writeBatch(ServiceDevice &dev, uint32_t parity,
                         const std::vector<QueryTicket> &batch)
{
    mem::GlobalMemory &gmem = dev.memory();
    const Binding &b = bindings_[dev.index()];
    for (size_t i = 0; i < batch.size(); ++i) {
        const geom::Vec3 &q = data_->pool[batch[i].payload];
        uint64_t addr =
            b.queryBase[parity] + i * trees::PointLayout::kPointBytes;
        gmem.write<float>(addr + 0, q.x);
        gmem.write<float>(addr + 4, q.y);
        gmem.write<float>(addr + 8, q.z);
        gmem.write<uint32_t>(b.resultBase[parity] + 4 * i, 0xdeadbeefu);
    }
}

size_t
RadiusTenant::verifyBatch(const ServiceDevice &dev, uint32_t parity,
                          const std::vector<QueryTicket> &batch) const
{
    const mem::GlobalMemory &gmem = dev.memory();
    const Binding &b = bindings_[dev.index()];
    size_t bad = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
        uint32_t got =
            gmem.read<uint32_t>(b.resultBase[parity] + 4 * i);
        if (got != data_->expected[batch[i].payload])
            ++bad;
    }
    return bad;
}

// --- RayTenant ----------------------------------------------------------

RayTenantData::RayTenantData(workloads::SceneKind scene_kind,
                             size_t pool_size, uint64_t rng_seed)
    : kind(scene_kind), seed(rng_seed)
{
    fatal_if(pool_size == 0, "RayTenantData: empty payload pool");
    // A throwaway scene computes the reference hits; tenant instances
    // rebuild their own scenes from (kind, seed) because serialize()
    // stores device layout inside the scene object.
    workloads::RtScene scene(kind, seed);

    // Random pinhole-camera rays: jittered image-plane samples, the
    // same camera model the figure workload rasterizes.
    const auto &g = scene.geometry();
    geom::Vec3 forward = geom::normalize(g.cameraTarget - g.cameraPos);
    geom::Vec3 right = geom::normalize(geom::cross(forward, {0, 1, 0}));
    geom::Vec3 up = geom::cross(right, forward);
    float half = std::tan(g.fovDegrees * 3.14159265f / 360.0f);

    sim::Rng rng(seed ^ 0x5bd1e995ull);
    pool.reserve(pool_size);
    expected.reserve(pool_size);
    for (size_t q = 0; q < pool_size; ++q) {
        float sx = rng.uniform(-half, half);
        float sy = rng.uniform(-half, half);
        workloads::RtRay r;
        r.ray.origin = g.cameraPos;
        r.ray.dir = geom::normalize(forward + right * sx + up * sy);
        r.ray.tmin = 0.0f;
        r.ray.tmax = 1e30f;
        pool.push_back(r);
        expected.push_back(scene.closestHit(r.ray));
    }
}

std::shared_ptr<const RayTenantData>
RayTenantData::build(workloads::SceneKind kind, size_t pool_size,
                     uint64_t seed)
{
    return std::make_shared<const RayTenantData>(kind, pool_size, seed);
}

RayTenant::RayTenant(std::string name,
                     std::shared_ptr<const RayTenantData> data)
    : Tenant(std::move(name)), data_(std::move(data))
{
    fatal_if(!data_, "RayTenant '%s': null data", name_.c_str());
    poolSize_ = data_->pool.size();
    scene_ = std::make_unique<workloads::RtScene>(data_->kind,
                                                  data_->seed);
}

RayTenant::RayTenant(std::string name, size_t pool_size, uint64_t seed,
                     workloads::SceneKind kind)
    : RayTenant(std::move(name),
                RayTenantData::build(kind, pool_size, seed))
{}

void
RayTenant::install(ServiceDevice &dev, uint32_t max_batch)
{
    Binding &b = newBinding(dev);
    mem::GlobalMemory &gmem = dev.memory();
    scene_->serialize(gmem);
    // serialize() overwrote the scene's stored layout with this
    // device's addresses. Earlier devices' specs still read the scene
    // lazily at sim time, so every device MUST land the scene at the
    // same addresses — guaranteed when install order matches across
    // devices, checked here.
    if (dev.index() == 0) {
        sphereBase0_ = scene_->sphereBase();
        instanceBase0_ = scene_->instanceBase();
    } else {
        fatal_if(scene_->sphereBase() != sphereBase0_ ||
                     scene_->instanceBase() != instanceBase0_,
                 "tenant '%s': scene layout diverges on device %u "
                 "(install order must match device 0)",
                 name_.c_str(), dev.index());
    }
    for (uint32_t p = 0; p < kStagingParities; ++p) {
        b.resultBase[p] = gmem.alloc(8ull * max_batch, 128);
        staged_.emplace_back(max_batch);
        specs_.push_back(std::make_unique<workloads::RtSpec>(
            gmem, *scene_, staged_.back(), b.resultBase[p],
            workloads::RtOptions{}));
        b.slot[p] = dev.bindPipelineSlot(
            workloads::RayTracingWorkload::makePipeline(
                data_->kind, workloads::RtOptions{}),
            specs_.back().get());
    }
}

void
RayTenant::writeBatch(ServiceDevice &dev, uint32_t parity,
                      const std::vector<QueryTicket> &batch)
{
    mem::GlobalMemory &gmem = dev.memory();
    const Binding &b = bindings_[dev.index()];
    auto &staged = staged_[dev.index() * kStagingParities + parity];
    for (size_t i = 0; i < batch.size(); ++i) {
        staged[i] = data_->pool[batch[i].payload];
        gmem.write<float>(b.resultBase[parity] + 8 * i, -1.0f);
        gmem.write<uint32_t>(b.resultBase[parity] + 8 * i + 4,
                             UINT32_MAX);
    }
}

size_t
RayTenant::verifyBatch(const ServiceDevice &dev, uint32_t parity,
                       const std::vector<QueryTicket> &batch) const
{
    // Same tolerance scheme as RayTracingWorkload: traversal order may
    // tie on equal-t hits, so compare t within a relative epsilon.
    const mem::GlobalMemory &gmem = dev.memory();
    const Binding &b = bindings_[dev.index()];
    size_t bad = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
        float t = gmem.read<float>(b.resultBase[parity] + 8 * i);
        bool hit = t >= 0.0f;
        const workloads::RtHit &ref = data_->expected[batch[i].payload];
        if (hit != ref.hit)
            ++bad;
        else if (hit &&
                 std::fabs(t - ref.t) > 1e-3f * std::max(1.0f, ref.t))
            ++bad;
    }
    return bad;
}

} // namespace tta::service
