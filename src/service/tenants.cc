#include "service/tenants.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace tta::service {

// --- BTreeTenant --------------------------------------------------------

BTreeTenant::BTreeTenant(std::string name, size_t n_keys,
                         size_t pool_size, uint64_t seed, double hit_rate)
    : Tenant(std::move(name))
{
    fatal_if(pool_size == 0, "BTreeTenant '%s': empty payload pool",
             name_.c_str());
    poolSize_ = pool_size;
    // Even-integer keys (exact as floats), odd integers guaranteed
    // absent — the same scheme BTreeWorkload uses.
    sim::Rng rng(seed);
    std::vector<float> keys(n_keys);
    for (size_t i = 0; i < n_keys; ++i)
        keys[i] = 2.0f * static_cast<float>(i + 1);
    tree_ = std::make_unique<trees::BTree>(trees::BTreeKind::BPlusTree,
                                           std::move(keys));

    pool_.resize(pool_size);
    expected_.resize(pool_size);
    for (size_t q = 0; q < pool_size; ++q) {
        if (rng.nextDouble() < hit_rate)
            pool_[q] = 2.0f * static_cast<float>(rng.nextBounded(n_keys) + 1);
        else
            pool_[q] =
                2.0f * static_cast<float>(rng.nextBounded(n_keys)) + 1.0f;
        expected_[q] = tree_->search(pool_[q]).found ? 1 : 0;
    }
}

void
BTreeTenant::install(api::TtaDevice &device, uint32_t max_batch)
{
    mem::GlobalMemory &gmem = device.memory();
    uint64_t root = tree_->serialize(gmem);
    queryBase_ = gmem.alloc(4ull * max_batch, 128);
    resultBase_ = gmem.alloc(4ull * max_batch, 128);
    spec_ = std::make_unique<workloads::BTreeSpec>(gmem, root, queryBase_,
                                                   resultBase_);
    slot_ = device.bindPipelineSlot(workloads::BTreeWorkload::makePipeline(),
                                    spec_.get());
}

void
BTreeTenant::writeBatch(mem::GlobalMemory &gmem,
                        const std::vector<QueryTicket> &batch)
{
    for (size_t i = 0; i < batch.size(); ++i) {
        gmem.write<float>(queryBase_ + 4 * i, pool_[batch[i].payload]);
        gmem.write<uint32_t>(resultBase_ + 4 * i, 0xdeadbeefu);
    }
}

size_t
BTreeTenant::verifyBatch(const mem::GlobalMemory &gmem,
                         const std::vector<QueryTicket> &batch) const
{
    size_t bad = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
        uint32_t got = gmem.read<uint32_t>(resultBase_ + 4 * i);
        if (got != expected_[batch[i].payload])
            ++bad;
    }
    return bad;
}

// --- RadiusTenant -------------------------------------------------------

RadiusTenant::RadiusTenant(std::string name, size_t n_points,
                           size_t pool_size, float radius, uint64_t seed)
    : Tenant(std::move(name))
{
    fatal_if(pool_size == 0, "RadiusTenant '%s': empty payload pool",
             name_.c_str());
    poolSize_ = pool_size;
    cloud_ = trees::PointCloud::generateLidarLike(n_points, seed);
    index_ = std::make_unique<trees::RadiusSearchIndex>(cloud_, radius);

    // Same query mix as RtnnWorkload: mostly jittered cloud points,
    // the rest uniform over the scene volume.
    sim::Rng rng(seed ^ 0x9e3779b9ull);
    pool_.reserve(pool_size);
    for (size_t q = 0; q < pool_size; ++q) {
        if (rng.nextFloat() < 0.7f) {
            const geom::Vec3 &p =
                cloud_.points[rng.nextBounded(cloud_.points.size())];
            pool_.push_back({p.x + 0.3f * rng.gaussian(),
                             p.y + 0.3f * rng.gaussian(),
                             p.z + 0.1f * rng.gaussian()});
        } else {
            pool_.push_back({rng.uniform(-80.0f, 80.0f),
                             rng.uniform(-80.0f, 80.0f),
                             rng.uniform(0.0f, 6.0f)});
        }
    }
    expected_.reserve(pool_size);
    for (const auto &q : pool_)
        expected_.push_back(
            static_cast<uint32_t>(index_->query(q).size()));
}

void
RadiusTenant::install(api::TtaDevice &device, uint32_t max_batch)
{
    mem::GlobalMemory &gmem = device.memory();
    sbvh_ = index_->bvh().serialize(gmem);
    pointBase_ = cloud_.serialize(gmem);
    queryBase_ = gmem.alloc(
        static_cast<uint64_t>(max_batch) * trees::PointLayout::kPointBytes,
        128);
    resultBase_ = gmem.alloc(4ull * max_batch, 128);
    spec_ = std::make_unique<workloads::RtnnSpec>(
        gmem, sbvh_, pointBase_, queryBase_, resultBase_,
        index_->radius(), /*offload_leaf=*/true);
    slot_ = device.bindPipelineSlot(
        workloads::RtnnWorkload::makePipeline(/*offload_leaf=*/true),
        spec_.get());
}

void
RadiusTenant::writeBatch(mem::GlobalMemory &gmem,
                         const std::vector<QueryTicket> &batch)
{
    for (size_t i = 0; i < batch.size(); ++i) {
        const geom::Vec3 &q = pool_[batch[i].payload];
        uint64_t addr =
            queryBase_ + i * trees::PointLayout::kPointBytes;
        gmem.write<float>(addr + 0, q.x);
        gmem.write<float>(addr + 4, q.y);
        gmem.write<float>(addr + 8, q.z);
        gmem.write<uint32_t>(resultBase_ + 4 * i, 0xdeadbeefu);
    }
}

size_t
RadiusTenant::verifyBatch(const mem::GlobalMemory &gmem,
                          const std::vector<QueryTicket> &batch) const
{
    size_t bad = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
        uint32_t got = gmem.read<uint32_t>(resultBase_ + 4 * i);
        if (got != expected_[batch[i].payload])
            ++bad;
    }
    return bad;
}

// --- RayTenant ----------------------------------------------------------

RayTenant::RayTenant(std::string name, size_t pool_size, uint64_t seed,
                     workloads::SceneKind kind)
    : Tenant(std::move(name)), kind_(kind)
{
    fatal_if(pool_size == 0, "RayTenant '%s': empty payload pool",
             name_.c_str());
    poolSize_ = pool_size;
    scene_ = std::make_unique<workloads::RtScene>(kind_, seed);

    // Random pinhole-camera rays: jittered image-plane samples, the
    // same camera model the figure workload rasterizes.
    const auto &g = scene_->geometry();
    geom::Vec3 forward = geom::normalize(g.cameraTarget - g.cameraPos);
    geom::Vec3 right = geom::normalize(geom::cross(forward, {0, 1, 0}));
    geom::Vec3 up = geom::cross(right, forward);
    float half = std::tan(g.fovDegrees * 3.14159265f / 360.0f);

    sim::Rng rng(seed ^ 0x5bd1e995ull);
    pool_.reserve(pool_size);
    expected_.reserve(pool_size);
    for (size_t q = 0; q < pool_size; ++q) {
        float sx = rng.uniform(-half, half);
        float sy = rng.uniform(-half, half);
        workloads::RtRay r;
        r.ray.origin = g.cameraPos;
        r.ray.dir = geom::normalize(forward + right * sx + up * sy);
        r.ray.tmin = 0.0f;
        r.ray.tmax = 1e30f;
        pool_.push_back(r);
        expected_.push_back(scene_->closestHit(r.ray));
    }
}

void
RayTenant::install(api::TtaDevice &device, uint32_t max_batch)
{
    mem::GlobalMemory &gmem = device.memory();
    scene_->serialize(gmem);
    resultBase_ = gmem.alloc(8ull * max_batch, 128);
    staged_.resize(max_batch);
    spec_ = std::make_unique<workloads::RtSpec>(
        gmem, *scene_, staged_, resultBase_, workloads::RtOptions{});
    slot_ = device.bindPipelineSlot(
        workloads::RayTracingWorkload::makePipeline(kind_,
                                                    workloads::RtOptions{}),
        spec_.get());
}

void
RayTenant::writeBatch(mem::GlobalMemory &gmem,
                      const std::vector<QueryTicket> &batch)
{
    for (size_t i = 0; i < batch.size(); ++i) {
        staged_[i] = pool_[batch[i].payload];
        gmem.write<float>(resultBase_ + 8 * i, -1.0f);
        gmem.write<uint32_t>(resultBase_ + 8 * i + 4, UINT32_MAX);
    }
}

size_t
RayTenant::verifyBatch(const mem::GlobalMemory &gmem,
                       const std::vector<QueryTicket> &batch) const
{
    // Same tolerance scheme as RayTracingWorkload: traversal order may
    // tie on equal-t hits, so compare t within a relative epsilon.
    size_t bad = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
        float t = gmem.read<float>(resultBase_ + 8 * i);
        bool hit = t >= 0.0f;
        const workloads::RtHit &ref = expected_[batch[i].payload];
        if (hit != ref.hit)
            ++bad;
        else if (hit &&
                 std::fabs(t - ref.t) > 1e-3f * std::max(1.0f, ref.t))
            ++bad;
    }
    return bad;
}

} // namespace tta::service
