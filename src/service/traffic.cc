#include "service/traffic.hh"

#include <cmath>

#include "sim/logging.hh"

namespace tta::service {

const char *
arrivalProcessName(ArrivalProcess p)
{
    switch (p) {
      case ArrivalProcess::Poisson:
        return "poisson";
      case ArrivalProcess::Bursty:
        return "bursty";
      case ArrivalProcess::ClosedLoop:
        return "closed";
    }
    return "?";
}

TraceSource::TraceSource(std::vector<Arrival> trace)
    : trace_(std::move(trace))
{
    for (size_t i = 1; i < trace_.size(); ++i)
        fatal_if(trace_[i].cycle < trace_[i - 1].cycle,
                 "TraceSource: arrivals not sorted at index %zu", i);
}

TrafficGen::TrafficGen(const TrafficConfig &cfg, uint32_t num_tenants,
                       uint64_t seed)
    : cfg_(cfg), rng_(seed)
{
    fatal_if(num_tenants == 0, "TrafficGen with zero tenants");
    fatal_if(cfg_.meanGapCycles <= 0.0, "meanGapCycles must be > 0");
    std::vector<double> w = cfg_.tenantWeights;
    if (w.empty())
        w.assign(num_tenants, 1.0);
    fatal_if(w.size() != num_tenants,
             "tenantWeights has %zu entries for %u tenants", w.size(),
             num_tenants);
    double acc = 0.0;
    for (double x : w) {
        fatal_if(x < 0.0, "negative tenant weight");
        acc += x;
        cumWeights_.push_back(acc);
    }
    fatal_if(acc <= 0.0, "tenant weights sum to zero");

    if (cfg_.process == ArrivalProcess::ClosedLoop) {
        fatal_if(cfg_.clients == 0, "closed loop with zero clients");
        // Stagger the initial think times so the population does not
        // arrive as one synchronized burst at cycle 0.
        for (uint32_t c = 0; c < cfg_.clients; ++c)
            ready_.push({expGap(cfg_.thinkCycles), c});
    } else {
        nextCycle_ = expGap(currentGapMean());
    }
}

double
TrafficGen::currentGapMean() const
{
    if (cfg_.process == ArrivalProcess::Bursty)
        return cfg_.meanGapCycles *
               (burstState_ ? cfg_.burstGapScale : cfg_.calmGapScale);
    return cfg_.meanGapCycles;
}

sim::Cycle
TrafficGen::expGap(double mean)
{
    // Inverse-transform exponential; 1 - U keeps the argument in
    // (0, 1], and gaps are clamped to >= 1 cycle so time advances.
    double u = rng_.nextDouble();
    double g = -std::log(1.0 - u) * mean;
    if (g < 1.0)
        return 1;
    return static_cast<sim::Cycle>(g);
}

uint32_t
TrafficGen::pickTenant()
{
    double x = rng_.nextDouble() * cumWeights_.back();
    for (uint32_t t = 0; t < cumWeights_.size(); ++t)
        if (x < cumWeights_[t])
            return t;
    return static_cast<uint32_t>(cumWeights_.size() - 1);
}

Arrival
TrafficGen::stamp(sim::Cycle cycle, uint32_t client)
{
    Arrival a;
    a.cycle = cycle;
    a.tenant = pickTenant();
    a.client = client;
    if (cfg_.cancelFraction > 0.0 &&
        rng_.nextDouble() < cfg_.cancelFraction)
        a.cancelAfter = expGap(cfg_.cancelAfterMean);
    return a;
}

sim::Cycle
TrafficGen::peek() const
{
    if (issued_ >= cfg_.totalQueries)
        return kNoCycle;
    if (cfg_.process == ArrivalProcess::ClosedLoop)
        return ready_.empty() ? kNoCycle : ready_.top().first;
    return nextCycle_;
}

bool
TrafficGen::exhausted() const
{
    return issued_ >= cfg_.totalQueries;
}

Arrival
TrafficGen::pop()
{
    fatal_if(peek() == kNoCycle, "TrafficGen::pop with nothing ready");
    ++issued_;
    if (cfg_.process == ArrivalProcess::ClosedLoop) {
        auto [cycle, client] = ready_.top();
        ready_.pop();
        return stamp(cycle, client);
    }
    sim::Cycle cycle = nextCycle_;
    Arrival a = stamp(cycle, /*client=*/static_cast<uint32_t>(
                                 issued_ % 1024));
    // MMPP state transition: geometric dwell in arrivals.
    if (cfg_.process == ArrivalProcess::Bursty &&
        rng_.nextDouble() < 1.0 / cfg_.meanDwellArrivals)
        burstState_ = !burstState_;
    nextCycle_ = cycle + expGap(currentGapMean());
    return a;
}

void
TrafficGen::onCompletion(const QueryTicket &t, sim::Cycle when)
{
    if (cfg_.process != ArrivalProcess::ClosedLoop)
        return;
    if (issued_ >= cfg_.totalQueries)
        return; // budget spent: the client population retires
    ready_.push({when + expGap(cfg_.thinkCycles), t.client});
}

} // namespace tta::service
