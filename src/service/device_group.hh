/**
 * @file
 * DeviceGroup: N long-lived simulated TtaDevices behind one service.
 *
 * Each ServiceDevice owns a full TtaDevice (its own Gpu, global
 * memory, accelerators) plus a private StatRegistry, so N devices can
 * simulate concurrently on host threads without sharing any mutable
 * state; the registries are absorbed into the caller's registry in
 * device-index order after the run (exact integer merge, so the final
 * dump is independent of host scheduling).
 *
 * The group also runs the host-side launch/verify pipeline. In
 * pipelined mode every device gets a worker thread with two queues:
 *
 *   scheduler --submit--> [launch queue] -> worker: cmdTraverseTree
 *                                            \-> publish elapsed
 *                          [verify queue] -> worker: verifyBatch
 *                                            \-> release parity
 *
 * The worker prefers launches over pending verifies, so the simulation
 * of batch k+1 overlaps the host-side verify of batch k on the same
 * device (and everything overlaps across devices). Staging and verify
 * are double-buffered: every launch names a parity (0/1) selecting one
 * of two staging buffer sets, and reserveParity() blocks until the
 * previous launch that used that parity has finished verifying — so
 * the scheduler can stage batch k+1 into one parity while batch k's
 * launch/verify still reads the other.
 *
 * Serial mode (pipelinedStaging = false) runs the identical protocol
 * inline on the caller's thread: launch, then verify, then release, at
 * submit time. Because every observable output (elapsed cycles, verify
 * mismatch counts, stat registries) is a pure function of the
 * submitted work and not of host interleaving, pipelined and serial
 * mode are bit-identical — which is the determinism argument for the
 * whole serving layer: if an adversarially serialized schedule matches
 * the pipelined one, no host thread interleaving can matter.
 *
 * Worker exceptions (verify tolerance violations, simulator fatals)
 * are captured and rethrown on the scheduler thread at the next
 * synchronization point, never std::terminate.
 */

#ifndef TTA_SERVICE_DEVICE_GROUP_HH
#define TTA_SERVICE_DEVICE_GROUP_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "api/tta_api.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace tta::service {

/** Number of staging-buffer parities per (device, tenant). */
inline constexpr uint32_t kStagingParities = 2;

/**
 * One simulated device plus its private stat registry: the per-device
 * handle tenants install into (slot binding is per device, never
 * global).
 */
class ServiceDevice
{
  public:
    ServiceDevice(const sim::Config &cfg, uint32_t index)
        : index_(index),
          stats_(std::make_unique<sim::StatRegistry>()),
          device_(std::make_unique<api::TtaDevice>(cfg, *stats_, index))
    {}

    uint32_t index() const { return index_; }
    api::TtaDevice &api() { return *device_; }
    mem::GlobalMemory &memory() const { return device_->memory(); }
    sim::StatRegistry &stats() { return *stats_; }
    const sim::StatRegistry &stats() const { return *stats_; }

    /** Bind one tenant pipeline into this device; @return slot id. */
    uint32_t
    bindPipelineSlot(const api::TtaPipeline &pipeline,
                     rta::TraversalSpec *spec)
    {
        return device_->bindPipelineSlot(pipeline, spec);
    }

  private:
    uint32_t index_;
    std::unique_ptr<sim::StatRegistry> stats_;
    std::unique_ptr<api::TtaDevice> device_;
};

class DeviceGroup
{
  public:
    /** One launch handed to a device worker. */
    struct Launch
    {
        uint32_t slot = 0;       //!< pipeline slot to activate
        uint64_t queries = 0;    //!< lanes to launch
        uint32_t parity = 0;     //!< staging buffers this launch reads
        /** Host-side verify; returns soft mismatches, throws on a
         *  tolerance violation. Runs on the worker thread. */
        std::function<size_t()> verify;
        /** Thread-safe mismatch sink (e.g. bump an atomic). */
        std::function<void(size_t)> onVerified;
    };

    DeviceGroup(const sim::Config &cfg, uint32_t num_devices,
                bool pipelined);
    ~DeviceGroup();

    uint32_t size() const
    {
        return static_cast<uint32_t>(devices_.size());
    }
    ServiceDevice &device(uint32_t d) { return *devices_[d]; }
    bool pipelined() const { return pipelined_; }

    /**
     * Block until parity @p parity of device @p d is no longer read by
     * an earlier launch's verify pass. Call before staging new queries
     * into that parity's buffers.
     */
    void reserveParity(uint32_t d, uint32_t parity);

    /** Hand a staged launch to device @p d (FIFO per device). */
    void submit(uint32_t d, Launch launch);

    /**
     * Elapsed simulated cycles of the oldest submitted-but-uncollected
     * launch on device @p d; blocks until the simulation finishes.
     */
    sim::Cycle collectElapsed(uint32_t d);

    /** Wait until every worker finished all submitted work (launches
     *  and verifies); rethrows any captured worker exception. */
    void drain();

    /** Merge all per-device registries into @p into, index order. */
    void absorbStats(sim::StatRegistry &into) const;

  private:
    struct Worker
    {
        std::mutex mu;
        std::condition_variable cv;
        std::deque<Launch> launches;
        std::deque<Launch> verifies; //!< launched, verify pending
        std::deque<sim::Cycle> elapsed;
        uint32_t parityBusy[kStagingParities] = {0, 0};
        bool working = false; //!< worker is mid-task
        bool stop = false;
        std::exception_ptr error;
        std::thread thread;
    };

    void workerLoop(uint32_t d);
    void runInline(uint32_t d, Launch &launch);
    static void rethrowLocked(Worker &w);

    const bool pipelined_;
    std::vector<std::unique_ptr<ServiceDevice>> devices_;
    std::vector<std::unique_ptr<Worker>> workers_;
};

} // namespace tta::service

#endif // TTA_SERVICE_DEVICE_GROUP_HH
