/**
 * @file
 * Pluggable deterministic scheduling policies for the traversal
 * service's DeviceGroup dispatcher (service/service.hh).
 *
 * PR 9's dispatcher was pure least-loaded-first over batch counts: a
 * ready batch goes to the free device that has been idle longest. That
 * ignores three things this layer models explicitly:
 *
 *   1. **Size-aware batching** — batches have wildly different service
 *      times (a full lane of B-Tree lookups vs. a lane of BVH rays).
 *      The scheduler keeps a per-tenant online EWMA of cycles per
 *      query — integer fixed-point (Q8), seeded by a calibration probe
 *      launched before traffic starts and updated from every retired
 *      batch — and derives per-tenant dispatch thresholds so a lane
 *      becomes dispatchable by estimated service *time* instead of
 *      query count, and placement balances estimated load, not batch
 *      tallies.
 *
 *   2. **Tenant-to-device affinity** — after a device serves a
 *      tenant's batch, that tenant's tree is hot in the device's L2
 *      (device clocks are continuous across launches, so simulated
 *      cache warmth persists exactly as on real hardware). The warmth
 *      score predicts the cache state the batch will actually meet: a
 *      device with planned work is warm for the tenant of its *last
 *      queued* batch, a busy device for the tenant in flight, and an
 *      idle device for recently retired tenants with the bonus — a
 *      fraction of the batch's estimated cost — decayed linearly on
 *      the virtual clock and zero past a staleness bound. Placement
 *      subtracts the bonus from a device's estimated-ready score, and
 *      tenant selection for the next device to free uses the same
 *      score (queue.hh's bounded-lateness EDF), so batches chase their
 *      warm device but never starve waiting for it: the bonus is
 *      bounded, and the EDF slack window is too.
 *
 *   3. **Deterministic work stealing** — non-lld policies may plan a
 *      batch onto a busy device (bounded per-device backlog), which is
 *      what affinity wants — but imbalance can then idle a neighbor.
 *      At every dispatch tick the steal pass repeatedly moves the
 *      *tail* batch of the most-loaded device to the least-loaded one,
 *      but only while the move strictly reduces that batch's estimated
 *      start cycle. Thief and victim selection tie-break on the lowest
 *      device index and every event is logged as (cycle, batch id,
 *      victim -> thief), so the steal schedule is a pure function of
 *      the virtual clock — bit-identical across simulation kernels,
 *      staging modes and `--sim-threads`. Tail-only steals that must
 *      strictly help are also what rules out SLO-priority inversion:
 *      no batch's estimated start ever increases because of a steal.
 *      A priority (latency-sensitive) tail is the one case where the
 *      thief-side insert is not an append — it would jump ahead of
 *      the thief's queued throughput plans and delay them — so it is
 *      only stolen onto an *empty* backlog, where insert and append
 *      coincide (tests/test_service_queue.cc fuzzes the invariant
 *      against a shadow model).
 *
 * Policy selection: SchedPolicy::LeastLoaded ("lld") reproduces PR 9
 * decision-for-decision; "size", "affinity" and "steal" enable one
 * mechanism each (affinity and steal imply the size-aware estimator
 * they score with); "full" enables all three. Benches select via
 * `--sched=` or the TTA_SCHED environment variable.
 *
 * Everything here is integer state driven by explicit cycle
 * timestamps; the scheduler never reads a host clock, so identical
 * call sequences produce identical placements on any host.
 */

#ifndef TTA_SERVICE_SCHEDULER_HH
#define TTA_SERVICE_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "service/queue.hh"
#include "sim/ticked.hh"

namespace tta::service {

/** Dispatcher policy. LeastLoaded is PR 9's dispatcher, bit-exact. */
enum class SchedPolicy : uint8_t
{
    LeastLoaded, //!< "lld": idle device, longest idle first
    SizeAware,   //!< "size": + EWMA cost model, quotas, est-load placement
    Affinity,    //!< "affinity": + (tenant, device) warmth bonus
    Steal,       //!< "steal": + deterministic tail-batch stealing
    Full,        //!< "full": size + affinity + steal
};

const char *schedPolicyName(SchedPolicy p);

/** Parse "lld|size|affinity|steal|full". @return false on unknown. */
bool parseSchedPolicy(const std::string &name, SchedPolicy &out);

/** TTA_SCHED environment override; fatals on an unparseable value. */
SchedPolicy schedPolicyFromEnv(SchedPolicy fallback);

/** Tuning knobs; defaults hold for every test and bench scenario. */
struct SchedParams
{
    /** EWMA step for the cost model: alpha = 1 / 2^ewmaShift. */
    uint32_t ewmaShift = 2;
    /** Cycles/query assumed before any observation (quota math needs a
     *  nonzero estimate even with calibration disabled). */
    uint64_t seedCostCyclesPerQuery = 64;
    /** Calibration probe batch size per tenant (clamped to maxBatch);
     *  0 disables the probe. Probes run on every device before traffic
     *  so the group stays symmetric. */
    uint32_t probeQueries = 64;
    /** Smallest size-aware dispatch threshold (a floor keeps a very
     *  pricey tenant from dispatching near-singleton batches under
     *  light load). */
    uint32_t minQuota = 64;
    /** Planned-but-unlaunched batches a device may hold. */
    uint32_t maxBacklog = 2;
    /** Warmth bonus at batch-age 1, in 1/256ths of the placed batch's
     *  estimated cost (256 = one batch). The default exceeds one
     *  batch on purpose: in steady state the device that just freed a
     *  backlog slot is exactly one batch lighter than its peers, and
     *  the bonus must bridge that gap for a batch to wait for its
     *  warm device instead of landing on whichever freed first. */
    uint32_t warmthBonusFrac256 = 384;
    /** Residency window, in batches: a tenant counts as warm on a
     *  device while at most this many batches will have run there
     *  since its last one (age 1 = back-to-back). A device's L2 keeps
     *  a tenant's tree hot across a few intervening batches of its
     *  other resident tenants, so warmth must look further back than
     *  the immediately preceding batch or device "homes" drift; the
     *  bonus decays linearly to zero past the window. */
    uint32_t warmthResidencyBatches = 3;
    /** Staleness bound on the virtual clock: a tenant inside the
     *  residency window still counts as cold once this many cycles
     *  pass without it retiring on the device, so affinity never
     *  starves a long-idle (but batch-age-warm) device of fresh
     *  placements. */
    sim::Cycle warmthStalenessCycles = 1u << 20;
    /** Bounded-lateness EDF window for affinity tenant selection:
     *  among expired lanes, warmth may prefer a lane whose front
     *  deadline is at most this far behind the earliest (0 = exact
     *  EDF). Under sustained overload every front deadline is expired,
     *  so without slack EDF order alone dictates dispatch and warmth
     *  never gets a say. */
    sim::Cycle deadlineSlackCycles = 50000;
    /** A device qualifies as a thief while its estimated load is below
     *  this; 0 = auto (one full batch of the cheapest tenant). */
    sim::Cycle stealThresholdCycles = 0;
};

class Scheduler
{
  public:
    /** One planned (popped-from-queue, not yet launched) batch. */
    struct Batch
    {
        uint64_t id = 0;       //!< placement order, globally unique
        uint32_t tenant = 0;
        uint64_t estCost = 0;  //!< estimated service cycles
        bool expired = false;  //!< deadline rule pulled it
        bool priority = false; //!< latency-sensitive SLO class
        std::shared_ptr<std::vector<QueryTicket>> queries;
    };

    Scheduler(SchedPolicy policy, const SchedParams &params,
              uint32_t num_devices, uint32_t num_tenants,
              uint32_t max_batch);

    SchedPolicy policy() const { return policy_; }
    bool leastLoaded() const
    {
        return policy_ == SchedPolicy::LeastLoaded;
    }
    bool sizeAware() const
    {
        return policy_ != SchedPolicy::LeastLoaded;
    }
    bool affinity() const
    {
        return policy_ == SchedPolicy::Affinity ||
               policy_ == SchedPolicy::Full;
    }
    bool stealing() const
    {
        return policy_ == SchedPolicy::Steal ||
               policy_ == SchedPolicy::Full;
    }

    // --- cost model ------------------------------------------------------

    /** Seed tenant @p t's estimate from a calibration probe. */
    void calibrate(uint32_t t, uint64_t queries, sim::Cycle elapsed);

    /** Current cycles/query estimate, Q8 fixed point. */
    uint64_t costPerQueryQ8(uint32_t t) const { return costQ8_[t]; }

    /** Estimated service cycles of @p n queries of tenant @p t. */
    uint64_t estBatchCost(uint32_t t, uint64_t n) const;

    /** Per-tenant dispatch threshold: maxBatch under lld; otherwise
     *  sized so a lane becomes dispatchable once its queued queries
     *  cost about what a maxBatch batch of the cheapest tenant costs.
     *  A pricier tenant therefore launches *sooner*, not smaller: the
     *  pop itself always takes up to maxBatch, so under backlog every
     *  batch is still full-size and throughput is unaffected. */
    uint32_t batchQuota(uint32_t t) const { return quota_[t]; }
    const std::vector<uint32_t> &quotas() const { return quota_; }

    /** Recompute quotas from the current estimates (call once per
     *  dispatch tick; estimates only move at retire). */
    void refreshQuotas();

    // --- placement -------------------------------------------------------

    /** Can some device accept another planned batch right now? Under
     *  lld: an idle device with no plan (PR 9's dispatch condition). */
    bool hasRoom() const;

    /** Is some device idle with an empty backlog — i.e. a popped
     *  batch would launch immediately? The service defers partial
     *  (sub-quota) throughput pops until this holds, so a partial
     *  lane keeps coalescing toward a full batch while the devices
     *  have work, and is popped exactly when capacity would otherwise
     *  sit idle — lld's timing. (Priority batches are never deferred:
     *  they jump the backlog at placement.) */
    bool hasIdleDevice() const;

    /** The device the next placed batch lands on absent any warmth
     *  bonus: lowest estimated load, ties to the lowest index, among
     *  devices with backlog room. The service orients affinity tenant
     *  selection around this device. Requires hasRoom(). */
    uint32_t nextPlacementDevice(sim::Cycle now) const;

    /** Per-tenant warmth scores for device @p d (quota-sized batch
     *  cost basis) — the preference vector for
     *  AdmissionQueue::selectTenant's affinity overload. */
    std::vector<uint64_t> warmthKeys(uint32_t d, sim::Cycle now) const;

    /** Rule-1 slack for the affinity selectTenant overload. */
    sim::Cycle deadlineSlack() const
    {
        return affinity() ? params_.deadlineSlackCycles : 0;
    }

    /** Plan a popped batch onto a device (see file header for the
     *  per-policy scoring). A @p priority (latency-sensitive) batch is
     *  planned ahead of the device's queued throughput batches —
     *  behind its in-flight launch and earlier priority plans — so
     *  backlog planning never inverts the queue's strict SLO-class
     *  order. @return the chosen device. */
    uint32_t place(uint32_t tenant,
                   std::shared_ptr<std::vector<QueryTicket>> queries,
                   bool expired, bool priority, sim::Cycle now);

    /** The deterministic steal pass; no-op unless stealing(). */
    void rebalance(sim::Cycle now);

    bool hasReady(uint32_t d) const { return !backlog_[d].empty(); }
    /** Pop device @p d's next planned batch for launching. */
    Batch takeReady(uint32_t d);

    /** Planned-but-unlaunched batches across all devices. */
    uint64_t plannedBatches() const { return planned_; }

    // --- device lifecycle hooks -----------------------------------------

    void onLaunch(uint32_t d, const Batch &b, sim::Cycle now);
    void onRetire(uint32_t d, uint32_t tenant, uint64_t queries,
                  sim::Cycle complete, sim::Cycle elapsed);

    // --- telemetry -------------------------------------------------------

    uint64_t dispatches(uint32_t d) const { return dispatches_[d]; }
    uint64_t steals(uint32_t d) const { return steals_[d]; }
    uint64_t stealsTotal() const { return stealsTotal_; }
    /** "s<k> c=<cycle> b=<id> d<victim>-><thief>\n" per steal, capped
     *  at kMaxLoggedSteals lines: part of the determinism oracle. */
    const std::string &stealLog() const { return stealLog_; }

    static constexpr uint64_t kMaxLoggedSteals = 8192;

    /** Estimated load of device @p d at @p now: remaining estimated
     *  cycles of the in-flight batch plus every planned batch. */
    sim::Cycle estLoad(uint32_t d, sim::Cycle now) const;

  private:
    sim::Cycle warmthBonus(uint32_t t, uint32_t d, uint64_t est_cost,
                           sim::Cycle now) const;
    /** Warmth a batch of tenant @p t would have on device @p d if it
     *  ran right after the first @p upto planned backlog entries (so
     *  upto == backlog size scores an appended batch; upto == pos
     *  scores the batch at backlog position pos). */
    sim::Cycle warmthAt(uint32_t t, uint32_t d, uint64_t est_cost,
                        sim::Cycle now, size_t upto) const;
    sim::Cycle stealThreshold() const;
    /** Backlog insert keeping priority batches ahead of throughput
     *  ones (used by place and the steal pass). */
    void enqueuePlanned(uint32_t d, Batch &&b);

    const SchedPolicy policy_;
    const SchedParams params_;
    const uint32_t maxBatch_;

    std::vector<std::deque<Batch>> backlog_;   //!< per device, FIFO
    std::vector<uint64_t> backlogCost_;        //!< sum of estCost
    std::vector<bool> busy_;                   //!< launch in flight
    std::vector<sim::Cycle> freeAt_;           //!< last completion
    std::vector<sim::Cycle> busyUntilEst_;     //!< est completion
    std::vector<uint64_t> costQ8_;             //!< per tenant
    std::vector<bool> calibrated_;             //!< per tenant
    std::vector<uint32_t> quota_;              //!< per tenant
    std::vector<sim::Cycle> lastUse_;          //!< [t * D + d], kNoCycle
    std::vector<uint64_t> servedSeq_;          //!< launches so far, per dev
    std::vector<uint64_t> lastServedSeq_;      //!< [t * D + d], 0 = never
    std::vector<uint64_t> dispatches_;         //!< per device
    std::vector<uint64_t> steals_;             //!< per (thief) device
    uint64_t stealsTotal_ = 0;
    uint64_t planned_ = 0;
    uint64_t nextBatchId_ = 0;
    std::string stealLog_;
};

} // namespace tta::service

#endif // TTA_SERVICE_SCHEDULER_HH
