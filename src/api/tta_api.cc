#include "api/tta_api.hh"

#include "sim/logging.hh"

namespace tta::api {

TtaPipelineDesc &
TtaPipelineDesc::decodeR(std::vector<uint32_t> field_sizes)
{
    ray_ = tta::DataLayout(name_ + ".ray", std::move(field_sizes));
    return *this;
}

TtaPipelineDesc &
TtaPipelineDesc::decodeI(std::vector<uint32_t> field_sizes)
{
    inner_ = tta::DataLayout(name_ + ".inner", std::move(field_sizes));
    return *this;
}

TtaPipelineDesc &
TtaPipelineDesc::decodeL(std::vector<uint32_t> field_sizes)
{
    leaf_ = tta::DataLayout(name_ + ".leaf", std::move(field_sizes));
    return *this;
}

TtaPipelineDesc &
TtaPipelineDesc::configI(const ttaplus::Program *prog)
{
    innerProg_ = prog;
    return *this;
}

TtaPipelineDesc &
TtaPipelineDesc::configL(const ttaplus::Program *prog)
{
    leafProg_ = prog;
    return *this;
}

TtaPipelineDesc &
TtaPipelineDesc::configTerminate(const tta::TerminationConfig &term)
{
    term_ = term;
    return *this;
}

TtaPipeline
TtaPipeline::create(const TtaPipelineDesc &desc)
{
    fatal_if(desc.rayLayout().numFields() == 0,
             "pipeline '%s': DecodeR was not called", desc.name().c_str());
    fatal_if(desc.innerLayout().numFields() == 0,
             "pipeline '%s': DecodeI was not called", desc.name().c_str());
    fatal_if(desc.leafLayout().numFields() == 0,
             "pipeline '%s': DecodeL was not called", desc.name().c_str());
    return TtaPipeline(desc);
}

gpu::KernelProgram
makeTraversalLauncher()
{
    // The entire traversal is the single traverseTreeTTA instruction:
    // this is the 91% dynamic-instruction reduction of Fig 20.
    gpu::KernelBuilder b("traversal_launcher");
    b.tid(0);
    b.accelTraverse(0);
    b.exit();
    return b.build();
}

TtaDevice::TtaDevice(const sim::Config &cfg, sim::StatRegistry &stats,
                     uint32_t device_index)
    : cfg_(cfg), stats_(stats), deviceIndex_(device_index),
      launcher_(makeTraversalLauncher())
{
    gpu_ = std::make_unique<gpu::Gpu>(cfg_, stats);
    if (cfg_.accelMode != sim::AccelMode::BaselineGpu) {
        // Each accelerator joins its SM's shard (stats registry and
        // threaded-kernel island both): the unit only talks to its own
        // core and to the memory system, which stages cross-shard
        // requests itself.
        for (uint32_t sm = 0; sm < cfg_.numSms; ++sm) {
            rtas_.push_back(std::make_unique<rta::RtaUnit>(
                cfg_, sm, gpu_->memsys(), gpu_->shardStats(sm)));
            gpu_->attachAccel(sm, rtas_.back().get());
            gpu_->addComponent(rtas_.back().get(),
                               static_cast<int>(sm));
        }
    }
}

TtaDevice::~TtaDevice() = default;

void
TtaDevice::validate(const TtaPipeline &pipeline,
                    rta::TraversalSpec *spec) const
{
    fatal_if(!spec, "bindPipeline with null spec");
    fatal_if(rtas_.empty(),
             "bindPipeline on a BaselineGpu device (no accelerators)");
    if (cfg_.accelMode == sim::AccelMode::TtaPlus) {
        fatal_if(!pipeline.desc().innerProgram(),
                 "pipeline '%s': TTA+ requires ConfigI",
                 pipeline.desc().name().c_str());
        fatal_if(!pipeline.desc().leafProgram(),
                 "pipeline '%s': TTA+ requires ConfigL",
                 pipeline.desc().name().c_str());
    }
}

void
TtaDevice::activateSlot(uint32_t slot)
{
    fatal_if(slot >= slots_.size(),
             "cmdTraverseTree on unbound slot %u (have %zu)", slot,
             slots_.size());
    for (auto &rta : rtas_)
        rta->setSpec(slots_[slot].spec);
    activeSlot_ = slot;
}

void
TtaDevice::bindPipeline(const TtaPipeline &pipeline,
                        rta::TraversalSpec *spec)
{
    validate(pipeline, spec);
    slots_.clear();
    slots_.push_back({pipeline.desc().name(), spec});
    activateSlot(0);
}

uint32_t
TtaDevice::bindPipelineSlot(const TtaPipeline &pipeline,
                            rta::TraversalSpec *spec)
{
    validate(pipeline, spec);
    slots_.push_back({pipeline.desc().name(), spec});
    uint32_t slot = static_cast<uint32_t>(slots_.size() - 1);
    activateSlot(slot);
    return slot;
}

sim::Cycle
TtaDevice::cmdTraverseTree(uint64_t n_queries)
{
    return cmdTraverseTree(0u, n_queries);
}

sim::Cycle
TtaDevice::cmdTraverseTree(uint32_t slot, uint64_t n_queries)
{
    fatal_if(slots_.empty(), "cmdTraverseTree before bindPipeline");
    if (slot != activeSlot_) {
        activateSlot(slot);
        // Registered lazily so single-slot devices (every figure
        // workload) keep their stat registries byte-identical.
        ++stats_.counter("api.slot_switches");
    }
    return gpu_->runKernel(launcher_, n_queries);
}

} // namespace tta::api
