/**
 * @file
 * The TTA programming interface (Section III-A, Listing 1).
 *
 * Mirrors the Vulkan-style flow the paper proposes:
 *
 *   TtaPipelineDesc desc;
 *   desc.decodeR({12, 12, 4, 4, ...});        // DecodeR: ray layout
 *   desc.decodeI({12, 12, 4, 4});             // DecodeI: inner node
 *   desc.decodeL({12, 12, 12});               // DecodeL: leaf node
 *   desc.configI(&rayBoxProgram);             // ConfigI("RayBoxProg.asm")
 *   desc.configL(&rayTriProgram);             // ConfigL("RayTriProg.asm")
 *   desc.configTerminate(...);                // ConfigTerminate
 *   TtaPipeline pipe = TtaPipeline::create(desc);   // vkCreateTTAPipeline
 *
 *   TtaDevice device(config, stats);
 *   device.bindPipeline(pipe, &spec);
 *   device.cmdTraverseTree(n_queries);        // vkCmdTraverseTree
 *
 * The TraversalSpec supplies the functional node processing that the
 * configured programs/layouts describe (see rta/traversal_spec.hh); the
 * pipeline carries the architectural configuration and validates it
 * against the selected hardware level.
 */

#ifndef TTA_API_TTA_API_HH
#define TTA_API_TTA_API_HH

#include <memory>
#include <string>
#include <vector>

#include "gpu/gpu.hh"
#include "rta/rta_unit.hh"
#include "rta/traversal_spec.hh"
#include "sim/config.hh"
#include "tta/layout.hh"
#include "ttaplus/program.hh"

namespace tta::api {

/** Pipeline description accumulated by the Listing 1 API calls. */
class TtaPipelineDesc
{
  public:
    explicit TtaPipelineDesc(std::string name) : name_(std::move(name)) {}

    /** DecodeR: ray data layout (byte sizes per field). */
    TtaPipelineDesc &decodeR(std::vector<uint32_t> field_sizes);
    /** DecodeI: internal node layout. */
    TtaPipelineDesc &decodeI(std::vector<uint32_t> field_sizes);
    /** DecodeL: leaf node layout. */
    TtaPipelineDesc &decodeL(std::vector<uint32_t> field_sizes);
    /** ConfigI: intersection test for internal nodes (TTA+ uops). */
    TtaPipelineDesc &configI(const ttaplus::Program *prog);
    /** ConfigL: intersection test for leaf nodes (TTA+ uops). */
    TtaPipelineDesc &configL(const ttaplus::Program *prog);
    /** ConfigTerminate: traversal termination criteria. */
    TtaPipelineDesc &configTerminate(const tta::TerminationConfig &term);

    const std::string &name() const { return name_; }
    const tta::DataLayout &rayLayout() const { return ray_; }
    const tta::DataLayout &innerLayout() const { return inner_; }
    const tta::DataLayout &leafLayout() const { return leaf_; }
    const ttaplus::Program *innerProgram() const { return innerProg_; }
    const ttaplus::Program *leafProgram() const { return leafProg_; }
    const tta::TerminationConfig &termination() const { return term_; }

  private:
    std::string name_;
    tta::DataLayout ray_;
    tta::DataLayout inner_;
    tta::DataLayout leaf_;
    const ttaplus::Program *innerProg_ = nullptr;
    const ttaplus::Program *leafProg_ = nullptr;
    tta::TerminationConfig term_;
};

/** A validated, immutable pipeline (vkCreateTTAPipeline result). */
class TtaPipeline
{
  public:
    /**
     * Validate and freeze a pipeline description.
     * @throws sim::FatalError when the description is inconsistent
     *         (missing layouts, oversized entries).
     */
    static TtaPipeline create(const TtaPipelineDesc &desc);

    const TtaPipelineDesc &desc() const { return desc_; }

  private:
    explicit TtaPipeline(TtaPipelineDesc desc) : desc_(std::move(desc)) {}
    TtaPipelineDesc desc_;
};

/**
 * A GPU plus one traversal accelerator per SM, at the hardware level
 * selected by Config::accelMode.
 */
class TtaDevice
{
  public:
    /**
     * @param device_index identity of this device within a multi-device
     *        group (service::DeviceGroup); 0 for the classic
     *        single-device flow. Purely a label — devices are fully
     *        isolated (own Gpu, own memory, own accelerators) and any
     *        number can coexist in one process, each publishing into
     *        its own registry.
     */
    TtaDevice(const sim::Config &cfg, sim::StatRegistry &stats,
              uint32_t device_index = 0);
    ~TtaDevice();

    gpu::Gpu &gpu() { return *gpu_; }
    mem::GlobalMemory &memory() { return gpu_->memory(); }
    const sim::Config &config() const { return cfg_; }
    uint32_t deviceIndex() const { return deviceIndex_; }

    /**
     * Bind a pipeline + its functional spec to every accelerator.
     * Validates the pipeline against the hardware level (e.g. TTA+
     * requires ConfigI/ConfigL programs).
     *
     * Resets the slot table to a single pipeline in slot 0 — the
     * original Listing-1 single-tenant flow.
     */
    void bindPipeline(const TtaPipeline &pipeline,
                      rta::TraversalSpec *spec);

    /**
     * Bind an additional pipeline without disturbing the ones already
     * bound and return its slot id. Slots let a long-lived device serve
     * several tenants: each launch names the slot whose spec should be
     * active while it runs. Validation matches bindPipeline.
     */
    uint32_t bindPipelineSlot(const TtaPipeline &pipeline,
                              rta::TraversalSpec *spec);

    /** Number of bound pipeline slots. */
    uint32_t numSlots() const
    {
        return static_cast<uint32_t>(slots_.size());
    }

    /**
     * vkCmdTraverseTree: launch one traversal per query id [0, n) using
     * the standard launcher kernel (tid -> traverseTreeTTA(tid)).
     * Uses slot 0 (the bindPipeline pipeline).
     * @return elapsed cycles.
     */
    sim::Cycle cmdTraverseTree(uint64_t n_queries);

    /**
     * Launch against the pipeline bound at @p slot. The device clock is
     * continuous across launches, so a stream of slot launches models a
     * persistent service sharing one GPU.
     * @return elapsed cycles for this launch.
     */
    sim::Cycle cmdTraverseTree(uint32_t slot, uint64_t n_queries);

    /** The launcher kernel, for co-scheduling via Gpu::runKernels. */
    const gpu::KernelProgram &launcherKernel() const { return launcher_; }

    bool hasAccelerators() const { return !rtas_.empty(); }

  private:
    struct Slot {
        std::string pipelineName;
        rta::TraversalSpec *spec;
    };

    void validate(const TtaPipeline &pipeline,
                  rta::TraversalSpec *spec) const;
    void activateSlot(uint32_t slot);

    const sim::Config cfg_;
    sim::StatRegistry &stats_;
    uint32_t deviceIndex_;
    std::unique_ptr<gpu::Gpu> gpu_;
    std::vector<std::unique_ptr<rta::RtaUnit>> rtas_;
    gpu::KernelProgram launcher_;
    std::vector<Slot> slots_;
    uint32_t activeSlot_ = 0;
};

/** Build the standard traversal launcher kernel. */
gpu::KernelProgram makeTraversalLauncher();

} // namespace tta::api

#endif // TTA_API_TTA_API_HH
