/**
 * @file
 * B-Tree / B*Tree / B+Tree query workload (Section IV-A).
 *
 * The paper queries 1M random keys against trees of 10k-4M keys, one
 * query per thread, while-loop traversal. This workload provides:
 *
 *  - the serialized tree + query/result buffers in simulated memory,
 *  - the baseline "CUDA" kernel (Algorithm 1 as a divergent SIMT loop),
 *  - the TraversalSpec + Listing-1 pipeline for RTA-class hardware,
 *  - result verification against the host reference search.
 */

#ifndef TTA_WORKLOADS_BTREE_WORKLOAD_HH
#define TTA_WORKLOADS_BTREE_WORKLOAD_HH

#include <memory>
#include <vector>

#include "api/tta_api.hh"
#include "gpu/kernel.hh"
#include "rta/traversal_spec.hh"
#include "trees/btree.hh"
#include "workloads/metrics.hh"

namespace tta::workloads {

/** Accelerator-side functional spec for B-Tree search. */
class BTreeSpec : public rta::TraversalSpec
{
  public:
    BTreeSpec(mem::GlobalMemory &gmem, uint64_t root, uint64_t query_base,
              uint64_t result_base);

    void initRay(rta::RayState &ray, uint32_t lane_operand) override;
    void fetchLines(const rta::RayState &ray, rta::NodeRef ref,
                    std::vector<uint64_t> &lines) const override;
    rta::NodeOutcome processNode(rta::RayState &ray,
                                 rta::NodeRef ref) override;
    void finishRay(rta::RayState &ray) override;

    const ttaplus::Program &innerProgram() const override
    {
        return innerProg_;
    }
    const ttaplus::Program &leafProgram() const override
    {
        return leafProg_;
    }

  private:
    mem::GlobalMemory *gmem_;
    uint64_t root_;
    uint64_t queryBase_;
    uint64_t resultBase_;
    ttaplus::Program innerProg_;
    ttaplus::Program leafProg_;
};

class BTreeWorkload
{
  public:
    /**
     * @param kind      tree variant.
     * @param n_keys    keys in the tree.
     * @param n_queries query count (threads).
     * @param seed      workload RNG seed.
     * @param hit_rate  fraction of queries that exist in the tree.
     */
    BTreeWorkload(trees::BTreeKind kind, size_t n_keys, size_t n_queries,
                  uint64_t seed = 1, double hit_rate = 0.5);

    /**
     * Deep copy: clones the built tree and query/reference vectors so
     * the copy can setup()/run against its own device while the source
     * (e.g. a bench::WorkloadCache prototype) stays untouched — a run
     * on a copy is bit-identical to a run on a freshly built workload.
     */
    BTreeWorkload(const BTreeWorkload &other);
    BTreeWorkload &operator=(const BTreeWorkload &) = delete;

    /** Serialize tree + buffers into a device's memory. */
    void setup(mem::GlobalMemory &gmem);

    /** Baseline: run the CUDA-style kernel on the SIMT cores. */
    RunMetrics runBaseline(const sim::Config &cfg,
                           sim::StatRegistry &stats);

    /** Accelerated: run through the TTA API at cfg.accelMode. */
    RunMetrics runAccelerated(const sim::Config &cfg,
                              sim::StatRegistry &stats);

    /** Check device results against the host reference.
     *  @return number of mismatches (0 = pass). */
    size_t verify(const mem::GlobalMemory &gmem) const;

    const trees::BTree &tree() const { return *tree_; }
    size_t numQueries() const { return queries_.size(); }
    const std::vector<float> &queries() const { return queries_; }

    /**
     * Device-computed results (1 = key found) captured from simulated
     * memory by the most recent runBaseline / runAccelerated call, in
     * query order. Lets tests diff the cycle-level machine against an
     * *independent* oracle rather than the workload's own reference.
     */
    const std::vector<uint32_t> &deviceResults() const
    {
        return deviceResults_;
    }

    /** The Listing-1 pipeline for this workload. */
    static api::TtaPipeline makePipeline();
    /** Assemble the baseline traversal kernel. */
    static gpu::KernelProgram buildBaselineKernel();

  private:
    void captureResults(const mem::GlobalMemory &gmem);

    std::unique_ptr<trees::BTree> tree_;
    std::vector<float> queries_;
    std::vector<uint8_t> expected_;
    std::vector<uint32_t> deviceResults_;
    uint64_t rootAddr_ = 0;
    uint64_t queryBase_ = 0;
    uint64_t resultBase_ = 0;
};

} // namespace tta::workloads

#endif // TTA_WORKLOADS_BTREE_WORKLOAD_HH
