#include "workloads/rtree_workload.hh"

#include <bit>
#include <cstring>

#include "geom/intersect.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace tta::workloads {

using trees::Rect2D;
using trees::RTreeNodeLayout;
using trees::RTreeNodeLayoutSoa;

namespace {
constexpr uint32_t kStackBytesPerWarp = 8192; //!< 64 levels x 128B
} // namespace

RTreeSpec::RTreeSpec(mem::GlobalMemory &gmem, uint64_t root,
                     uint64_t query_base, uint64_t result_base, bool soa)
    : gmem_(&gmem), root_(root), queryBase_(query_base),
      resultBase_(result_base), soa_(soa),
      prog_(ttaplus::programs::rectOverlap())
{
}

void
RTreeSpec::initRay(rta::RayState &ray, uint32_t lane_operand)
{
    ray.queryId = lane_operand;
    uint64_t addr = queryBase_ + 16ull * lane_operand;
    // Query window: (point.x, point.y) .. (accum.x, accum.y).
    ray.point = {gmem_->read<float>(addr + 0), gmem_->read<float>(addr + 4),
                 0.0f};
    ray.accum = {gmem_->read<float>(addr + 8),
                 gmem_->read<float>(addr + 12), 0.0f};
    ray.hitCount = 0;
    ray.stack.push_back(root_);
}

void
RTreeSpec::fetchLines(const rta::RayState & /*ray*/, rta::NodeRef ref,
                      std::vector<uint64_t> &lines) const
{
    if (soa_) {
        // 160-byte SoA nodes straddle cache lines; cover the footprint.
        uint64_t first = ref & ~127ull;
        uint64_t last = (ref + RTreeNodeLayoutSoa::kNodeBytes - 1) &
            ~127ull;
        for (uint64_t line = first; line <= last; line += 128)
            lines.push_back(line);
        return;
    }
    lines.push_back(ref & ~127ull);
}

/** SoA node: one rectOverlapBatch call over all entries. */
rta::NodeOutcome
RTreeSpec::processNodeSoa(rta::RayState &ray, rta::NodeRef ref)
{
    using S = RTreeNodeLayoutSoa;
    alignas(32) unsigned char buf[S::kNodeBytes];
    gmem_->readBytes(ref, buf, S::kNodeBytes);

    uint32_t flags;
    uint32_t child_base;
    std::memcpy(&flags, buf + S::kOffFlags, 4);
    std::memcpy(&child_base, buf + S::kOffChildBase, 4);
    bool leaf = flags & S::kLeafFlag;
    uint32_t count = (flags >> 8) & 0xff;

    geom::WideRects rects;
    std::memcpy(rects.x0, buf + S::kOffX0, 32);
    std::memcpy(rects.y0, buf + S::kOffY0, 32);
    std::memcpy(rects.x1, buf + S::kOffX1, 32);
    std::memcpy(rects.y1, buf + S::kOffY1, 32);

    uint32_t mask =
        geom::rectOverlapBatch(ray.point.x, ray.point.y, ray.accum.x,
                               ray.accum.y, rects,
                               static_cast<int>(count));
    if (leaf) {
        ray.hitCount += static_cast<uint32_t>(std::popcount(mask));
    } else {
        for (uint32_t i = 0; i < count; ++i) {
            if (mask & (1u << i))
                ray.stack.push_back(child_base +
                                    static_cast<uint64_t>(i) *
                                        S::kNodeBytes);
        }
    }

    rta::NodeOutcome out;
    out.op = rta::OpKind::RayBox;
    out.isLeaf = leaf;
    return out;
}

rta::NodeOutcome
RTreeSpec::processNode(rta::RayState &ray, rta::NodeRef ref)
{
    using L = RTreeNodeLayout;
    if (soa_)
        return processNodeSoa(ray, ref);
    uint32_t flags = gmem_->read<uint32_t>(ref + L::kOffFlags);
    bool leaf = flags & L::kLeafFlag;
    uint32_t count = (flags >> 8) & 0xff;
    uint32_t child_base = gmem_->read<uint32_t>(ref + L::kOffChildBase);

    Rect2D query{ray.point.x, ray.point.y, ray.accum.x, ray.accum.y};
    for (uint32_t i = 0; i < count; ++i) {
        uint64_t entry = ref + L::kOffEntries + 16ull * i;
        Rect2D rect{gmem_->read<float>(entry + 0),
                    gmem_->read<float>(entry + 4),
                    gmem_->read<float>(entry + 8),
                    gmem_->read<float>(entry + 12)};
        if (!query.overlaps(rect))
            continue;
        if (leaf)
            ++ray.hitCount;
        else
            ray.stack.push_back(child_base +
                                static_cast<uint64_t>(i) * L::kNodeBytes);
    }

    // One 7-wide overlap test per node, on the min/max comparator
    // datapath (TTA) or the rectOverlap program (TTA+).
    rta::NodeOutcome out;
    out.op = rta::OpKind::RayBox;
    out.isLeaf = leaf;
    return out;
}

void
RTreeSpec::finishRay(rta::RayState &ray)
{
    gmem_->write<uint32_t>(resultBase_ + 4ull * ray.queryId,
                           ray.hitCount);
}

RTreeWorkload::RTreeWorkload(size_t n_objects, size_t n_queries,
                             float query_extent, uint64_t seed)
{
    sim::Rng rng(seed);
    // Map-like object layout: dense city blocks plus scattered parcels,
    // all within [0, 200]^2 (positive coordinates keep the serializer's
    // empty-entry sentinel inert).
    std::vector<Rect2D> objects;
    objects.reserve(n_objects);
    size_t n_clusters = std::max<size_t>(6, n_objects / 2048);
    std::vector<std::pair<float, float>> centers;
    for (size_t c = 0; c < n_clusters; ++c)
        centers.emplace_back(rng.uniform(20.0f, 180.0f),
                             rng.uniform(20.0f, 180.0f));
    for (size_t i = 0; i < n_objects; ++i) {
        float cx, cy;
        if (rng.nextFloat() < 0.75f) {
            auto [ccx, ccy] = centers[rng.nextBounded(n_clusters)];
            cx = ccx + 6.0f * rng.gaussian();
            cy = ccy + 6.0f * rng.gaussian();
        } else {
            cx = rng.uniform(2.0f, 198.0f);
            cy = rng.uniform(2.0f, 198.0f);
        }
        cx = std::min(std::max(cx, 1.0f), 199.0f);
        cy = std::min(std::max(cy, 1.0f), 199.0f);
        float w = rng.uniform(0.1f, 1.2f);
        float h = rng.uniform(0.1f, 1.2f);
        objects.push_back({cx - w, cy - h, cx + w, cy + h});
    }
    inputObjects_ = objects; // kept for the SoA fanout-8 rebuild
    tree_ = std::make_unique<trees::RTree>(std::move(objects));

    queries_.reserve(n_queries);
    expected_.reserve(n_queries);
    for (size_t q = 0; q < n_queries; ++q) {
        float cx = rng.uniform(5.0f, 195.0f);
        float cy = rng.uniform(5.0f, 195.0f);
        Rect2D query{cx - query_extent, cy - query_extent,
                     cx + query_extent, cy + query_extent};
        queries_.push_back(query);
        expected_.push_back(tree_->countOverlaps(query));
    }
}

void
RTreeWorkload::setup(mem::GlobalMemory &gmem, const sim::Config &cfg)
{
    if (cfg.rtreeSoa) {
        if (!soaTree_) {
            soaTree_ = std::make_unique<trees::RTree>(
                inputObjects_, RTreeNodeLayoutSoa::kFanout);
        }
        rootAddr_ = soaTree_->serializeSoa(gmem);
    } else {
        rootAddr_ = tree_->serialize(gmem);
    }
    queryBase_ = gmem.alloc(queries_.size() * 16, 128);
    resultBase_ = gmem.alloc(queries_.size() * 4, 128);
    size_t warps = (queries_.size() + 31) / 32;
    stackBase_ = gmem.alloc(warps * kStackBytesPerWarp, 128);
    for (size_t q = 0; q < queries_.size(); ++q) {
        uint64_t addr = queryBase_ + 16 * q;
        gmem.write<float>(addr + 0, queries_[q].x0);
        gmem.write<float>(addr + 4, queries_[q].y0);
        gmem.write<float>(addr + 8, queries_[q].x1);
        gmem.write<float>(addr + 12, queries_[q].y1);
        gmem.write<uint32_t>(resultBase_ + 4 * q, 0xdeadbeef);
    }
}

gpu::KernelProgram
RTreeWorkload::buildBaselineKernel()
{
    using namespace ::tta::gpu;
    using L = RTreeNodeLayout;
    KernelBuilder b("rtree_range_query_baseline");
    // Params: 0 queryBase, 1 root, 2 resultBase, 3 stackBase.
    b.tid(1);
    b.param(20, 0);
    b.ishli(21, 1, 4);
    b.iadd(20, 20, 21);
    b.loadVec3(4, 20, 0); // qx0, qy0, qx1
    b.load(7, 20, 12);    // qy1
    b.movi(8, 0);         // overlap count
    // Interleaved per-thread stack (64 levels x 128B per warp).
    b.param(2, 3);
    b.ishri(21, 1, 5);
    b.ishli(21, 21, 13);
    b.iadd(2, 2, 21);
    b.movi(22, 31);
    b.iand(23, 1, 22);
    b.ishli(23, 23, 2);
    b.iadd(2, 2, 23);
    b.param(24, 1);
    b.store(2, 24, 0); // push root
    b.movi(3, 1);

    b.doWhile([&]() -> Reg {
        b.iaddi(3, 3, -1);
        b.ishli(24, 3, 7);
        b.iadd(24, 2, 24);
        b.load(10, 24, 0); // node
        b.load(11, 10, L::kOffFlags);
        b.movi(22, 1);
        b.iand(12, 11, 22); // leaf?
        b.ishri(13, 11, 8);
        b.movi(22, 255);
        b.iand(13, 13, 22); // entry count
        b.load(14, 10, L::kOffChildBase);
        b.movi(15, 0);      // entry index

        b.doWhile([&]() -> Reg {
            b.ishli(24, 15, 4);
            b.iadd(24, 10, 24);
            b.load(16, 24, L::kOffEntries + 0);  // x0
            b.load(17, 24, L::kOffEntries + 4);  // y0
            b.load(18, 24, L::kOffEntries + 8);  // x1
            b.load(19, 24, L::kOffEntries + 12); // y1
            // overlap = x0<=qx1 && qx0<=x1 && y0<=qy1 && qy0<=y1
            b.setlef(20, 16, 6);
            b.setlef(21, 4, 18);
            b.iand(20, 20, 21);
            b.setlef(21, 17, 7);
            b.iand(20, 20, 21);
            b.setlef(21, 5, 19);
            b.iand(20, 20, 21);
            b.ifThenElse(
                12, [&]() { b.iadd(8, 8, 20); }, // leaf: count
                [&]() {                          // inner: descend
                    b.ifThen(20, [&]() {
                        b.imuli(21, 15, L::kNodeBytes);
                        b.iadd(21, 14, 21);
                        b.ishli(24, 3, 7);
                        b.iadd(24, 2, 24);
                        b.store(24, 21, 0);
                        b.iaddi(3, 3, 1);
                    });
                });
            b.iaddi(15, 15, 1);
            b.setlti(31, 15, 13);
            return 31;
        });
        b.movi(22, 0);
        b.setlti(31, 22, 3);
        return 31;
    });

    b.param(20, 2);
    b.ishli(21, 1, 2);
    b.iadd(20, 20, 21);
    b.store(20, 8);
    b.exit();
    return b.build();
}

api::TtaPipeline
RTreeWorkload::makePipeline()
{
    static const ttaplus::Program prog = ttaplus::programs::rectOverlap();
    api::TtaPipelineDesc desc("rtree");
    desc.decodeR({16, 4})          // query rect, overlap count
        .decodeI({4, 4, 8, 48})    // flags, childBase, pad, entries
        .decodeL({4, 4, 8, 48})
        .configI(&prog)
        .configL(&prog);
    desc.configTerminate(tta::TerminationConfig{});
    return api::TtaPipeline::create(desc);
}

RunMetrics
RTreeWorkload::runBaseline(const sim::Config &cfg, sim::StatRegistry &stats)
{
    panic_if(cfg.rtreeSoa,
             "the baseline SIMT kernel traverses the AoS node layout");
    gpu::Gpu device(cfg, stats);
    setup(device.memory(), cfg);
    gpu::KernelProgram kernel = buildBaselineKernel();
    std::vector<uint32_t> params = {static_cast<uint32_t>(queryBase_),
                                    static_cast<uint32_t>(rootAddr_),
                                    static_cast<uint32_t>(resultBase_),
                                    static_cast<uint32_t>(stackBase_)};
    sim::Cycle cycles =
        device.runKernel(kernel, queries_.size(), params);
    captureResults(device.memory());
    size_t bad = verify(device.memory());
    panic_if(bad != 0, "baseline R-Tree kernel produced %zu mismatches",
             bad);
    return collectMetrics(stats, cycles, device.memsys().dramUtilization());
}

RunMetrics
RTreeWorkload::runAccelerated(const sim::Config &cfg,
                              sim::StatRegistry &stats)
{
    api::TtaDevice device(cfg, stats);
    setup(device.memory(), cfg);
    RTreeSpec spec(device.memory(), rootAddr_, queryBase_, resultBase_,
                   cfg.rtreeSoa);
    api::TtaPipeline pipeline = makePipeline();
    device.bindPipeline(pipeline, &spec);
    sim::Cycle cycles = device.cmdTraverseTree(queries_.size());
    captureResults(device.memory());
    size_t bad = verify(device.memory());
    panic_if(bad != 0, "accelerated R-Tree run produced %zu mismatches",
             bad);
    return collectMetrics(stats, cycles,
                          device.gpu().memsys().dramUtilization());
}

void
RTreeWorkload::captureResults(const mem::GlobalMemory &gmem)
{
    deviceResults_.resize(queries_.size());
    for (size_t q = 0; q < queries_.size(); ++q)
        deviceResults_[q] = gmem.read<uint32_t>(resultBase_ + 4 * q);
}

size_t
RTreeWorkload::verify(const mem::GlobalMemory &gmem) const
{
    size_t mismatches = 0;
    for (size_t q = 0; q < queries_.size(); ++q) {
        if (gmem.read<uint32_t>(resultBase_ + 4 * q) != expected_[q])
            ++mismatches;
    }
    return mismatches;
}

} // namespace tta::workloads
