#include "workloads/raytracing_workload.hh"

#include <cmath>

#include "geom/intersect.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace tta::workloads {

using geom::Ray;
using geom::Vec3;
using trees::BvhLeafLayout;
using trees::BvhNodeLayout;
using trees::BvhRef;

namespace {

constexpr uint32_t kTriStride = 48;    //!< 9 floats + padding
constexpr uint32_t kSphereStride = 16; //!< center + radius
constexpr uint32_t kInstanceStride = 64;
constexpr uint32_t kRayStride = 32;    //!< origin, dir, tmin, tmax
constexpr float kRayEpsilon = 1e-3f;

void
coverLines(uint64_t base, uint64_t bytes, std::vector<uint64_t> &lines)
{
    uint64_t first = base & ~127ull;
    uint64_t last = (base + bytes - 1) & ~127ull;
    for (uint64_t line = first; line <= last; line += 128)
        lines.push_back(line);
}

/** Deterministic per-ray hash for bounce/AO directions. */
uint32_t
hash32(uint32_t x)
{
    x ^= x >> 16;
    x *= 0x7feb352du;
    x ^= x >> 15;
    x *= 0x846ca68bu;
    x ^= x >> 16;
    return x;
}

Vec3
hashDirection(uint32_t seed)
{
    uint32_t a = hash32(seed);
    uint32_t b = hash32(seed ^ 0xdeadbeefu);
    float u = (a & 0xffff) / 65535.0f;
    float v = (b & 0xffff) / 65535.0f;
    float z = 2.0f * u - 1.0f;
    float r = std::sqrt(std::max(0.0f, 1.0f - z * z));
    float phi = 6.2831853f * v;
    return {r * std::cos(phi), r * std::sin(phi), z};
}

Vec3
reflect(const Vec3 &d, const Vec3 &n)
{
    return d - n * (2.0f * geom::dot(d, n));
}

} // namespace

// ---------------------------------------------------------------------------
// RtScene
// ---------------------------------------------------------------------------

RtScene::RtScene(SceneKind kind, uint64_t seed)
    : kind_(kind), geometry_(makeScene(kind, seed))
{
    if (geometry_.isSphereScene()) {
        std::vector<geom::Aabb> boxes;
        for (const auto &[c, r] : geometry_.spheres)
            boxes.emplace_back(c - Vec3(r, r, r), c + Vec3(r, r, r));
        meshBvhs_.emplace_back();
        meshBvhs_.back().build(boxes, 2);
        return;
    }
    for (const auto &mesh : geometry_.meshes) {
        std::vector<geom::Aabb> boxes;
        boxes.reserve(mesh.triangles.size());
        for (const auto &tri : mesh.triangles) {
            geom::Aabb box;
            box.extend(tri.v0);
            box.extend(tri.v1);
            box.extend(tri.v2);
            boxes.push_back(box);
        }
        meshBvhs_.emplace_back();
        meshBvhs_.back().build(boxes, 2);
    }
    if (geometry_.twoLevel()) {
        std::vector<geom::Aabb> inst_boxes;
        for (const auto &inst : geometry_.instances) {
            const geom::Aabb &obj =
                meshBvhs_[inst.mesh].worldBox();
            geom::Aabb world;
            for (int corner = 0; corner < 8; ++corner) {
                Vec3 p = {corner & 1 ? obj.hi.x : obj.lo.x,
                          corner & 2 ? obj.hi.y : obj.lo.y,
                          corner & 4 ? obj.hi.z : obj.lo.z};
                world.extend(
                    trees::transformPoint(inst.objectToWorld, p));
            }
            inst_boxes.push_back(world);
        }
        tlas_ = std::make_unique<trees::Bvh>();
        tlas_->build(inst_boxes, 1);
    }
}

void
RtScene::serialize(mem::GlobalMemory &gmem)
{
    meshes_.clear();
    if (geometry_.isSphereScene()) {
        sphereBase_ =
            gmem.alloc(geometry_.spheres.size() * kSphereStride, 128);
        for (size_t i = 0; i < geometry_.spheres.size(); ++i) {
            uint64_t addr = sphereBase_ + i * kSphereStride;
            gmem.write<float>(addr + 0, geometry_.spheres[i].first.x);
            gmem.write<float>(addr + 4, geometry_.spheres[i].first.y);
            gmem.write<float>(addr + 8, geometry_.spheres[i].first.z);
            gmem.write<float>(addr + 12, geometry_.spheres[i].second);
        }
        sphereBvh_ = meshBvhs_[0].serialize(gmem);
        return;
    }

    for (size_t m = 0; m < geometry_.meshes.size(); ++m) {
        MeshImage img;
        img.bvh = meshBvhs_[m].serialize(gmem);
        const auto &tris = geometry_.meshes[m].triangles;
        img.triBase = gmem.alloc(tris.size() * kTriStride, 128);
        for (size_t t = 0; t < tris.size(); ++t) {
            uint64_t addr = img.triBase + t * kTriStride;
            const Vec3 *verts[3] = {&tris[t].v0, &tris[t].v1, &tris[t].v2};
            for (int v = 0; v < 3; ++v) {
                gmem.write<float>(addr + 12 * v + 0, verts[v]->x);
                gmem.write<float>(addr + 12 * v + 4, verts[v]->y);
                gmem.write<float>(addr + 12 * v + 8, verts[v]->z);
            }
        }
        meshes_.push_back(img);
    }

    if (geometry_.twoLevel()) {
        instanceBase_ = gmem.alloc(
            geometry_.instances.size() * kInstanceStride, 128);
        for (size_t i = 0; i < geometry_.instances.size(); ++i) {
            const auto &inst = geometry_.instances[i];
            uint64_t addr = instanceBase_ + i * kInstanceStride;
            for (int k = 0; k < 12; ++k)
                gmem.write<float>(addr + 4 * k, inst.worldToObject[k]);
            gmem.write<uint32_t>(addr + 48,
                                 meshes_[inst.mesh].bvh.root.raw);
            gmem.write<uint32_t>(addr + 52, inst.mesh);
        }
        tlasImage_ = tlas_->serialize(gmem);
    }
}

rta::NodeRef
RtScene::rootRef() const
{
    if (geometry_.isSphereScene())
        return sphereBvh_.root.raw;
    if (geometry_.twoLevel())
        return tlasImage_.root.raw;
    return meshes_[0].bvh.root.raw;
}

bool
RtScene::alphaPass(uint32_t mesh, uint32_t prim)
{
    return ((prim ^ (mesh * 7919u)) * 0x9E3779B1u >> 8) & 1;
}

RtHit
RtScene::closestHit(const Ray &ray) const
{
    RtHit best;
    if (geometry_.isSphereScene()) {
        Ray r = ray;
        meshBvhs_[0].traverse(r, [&](uint32_t id) {
            auto t = geom::raySphere(r, geometry_.spheres[id].first,
                                     geometry_.spheres[id].second);
            if (t && *t < r.tmax) {
                best = {true, *t, id, 0};
                r.tmax = *t;
            }
        });
        return best;
    }
    auto trace_mesh = [&](uint32_t mesh_id, Ray &r, uint32_t inst_id) {
        const auto &tris = geometry_.meshes[mesh_id].triangles;
        const auto &alpha = geometry_.meshes[mesh_id].alpha;
        meshBvhs_[mesh_id].traverse(r, [&](uint32_t id) {
            auto hit = geom::rayTriangle(r, tris[id].v0, tris[id].v1,
                                         tris[id].v2);
            if (!hit)
                return;
            if (alpha[id] && !alphaPass(mesh_id, id))
                return;
            best = {true, hit->t, id, inst_id};
            r.tmax = hit->t;
        });
    };
    if (!geometry_.twoLevel()) {
        Ray r = ray;
        trace_mesh(0, r, 0);
        return best;
    }
    Ray world = ray;
    for (size_t i = 0; i < geometry_.instances.size(); ++i) {
        const auto &inst = geometry_.instances[i];
        Ray obj;
        obj.origin = trees::transformPoint(inst.worldToObject,
                                           world.origin);
        obj.dir = trees::transformDir(inst.worldToObject, world.dir);
        obj.tmin = world.tmin;
        obj.tmax = world.tmax;
        trace_mesh(inst.mesh, obj, static_cast<uint32_t>(i));
        world.tmax = obj.tmax; // t is affine-consistent
    }
    return best;
}

bool
RtScene::anyHit(const Ray &ray) const
{
    return closestHit(ray).hit;
}

// ---------------------------------------------------------------------------
// RtSpec
// ---------------------------------------------------------------------------

RtSpec::RtSpec(mem::GlobalMemory &gmem, const RtScene &scene,
               const std::vector<RtRay> &rays, uint64_t result_base,
               RtOptions options)
    : gmem_(&gmem), scene_(&scene), rays_(&rays),
      resultBase_(result_base), options_(options),
      innerProg_(ttaplus::programs::rayBoxInner()),
      leafProg_(scene.geometry().isSphereScene()
                    ? ttaplus::programs::raySphereLeaf()
                    : ttaplus::programs::rayTriangleLeaf())
{
}

void
RtSpec::initRay(rta::RayState &ray, uint32_t lane_operand)
{
    ray.queryId = lane_operand;
    const RtRay &input = (*rays_)[lane_operand];
    ray.ray = input.ray;
    ray.anyHitMode = input.anyHit;
    ray.closestT = input.ray.tmax;
    ray.hitPrim = UINT32_MAX;
    ray.hitCount = 0;
    ray.inBlas = !scene_->geometry().twoLevel();
    ray.meshId = 0;
    ray.stack.push_back(scene_->rootRef());
}

void
RtSpec::fetchLines(const rta::RayState &ray, rta::NodeRef ref,
                   std::vector<uint64_t> &lines) const
{
    if (ref & RtScene::kRestoreBit)
        return;
    if (ref & RtScene::kEnterInstanceBit) {
        uint32_t inst = static_cast<uint32_t>(ref);
        coverLines(scene_->instanceBase() +
                       static_cast<uint64_t>(inst) * kInstanceStride,
                   kInstanceStride, lines);
        return;
    }
    BvhRef bref{static_cast<uint32_t>(ref)};
    if (!bref.isLeaf()) {
        lines.push_back(bref.addr() & ~127ull);
        return;
    }
    uint64_t leaf = bref.addr();
    uint32_t count = gmem_->read<uint32_t>(leaf + BvhLeafLayout::kOffCount);
    coverLines(leaf, 4 + 4ull * count, lines);
    if (!ray.inBlas)
        return; // TLAS leaf: instance records are fetched on entry
    const bool spheres = scene_->geometry().isSphereScene();
    for (uint32_t i = 0; i < count; ++i) {
        uint32_t id = gmem_->read<uint32_t>(
            leaf + BvhLeafLayout::kOffPrims + 4 * i);
        if (spheres) {
            coverLines(scene_->sphereBase() +
                           static_cast<uint64_t>(id) * kSphereStride,
                       kSphereStride, lines);
        } else {
            coverLines(scene_->meshImages()[ray.meshId].triBase +
                           static_cast<uint64_t>(id) * kTriStride,
                       kTriStride, lines);
        }
    }
}

void
RtSpec::processTriangleLeaf(rta::RayState &ray, uint64_t leaf,
                            rta::NodeOutcome &out)
{
    uint32_t count = gmem_->read<uint32_t>(leaf + BvhLeafLayout::kOffCount);
    uint64_t tri_base = scene_->meshImages()[ray.meshId].triBase;
    const auto &alpha = scene_->geometry().meshes[ray.meshId].alpha;
    bool needs_shader = false;
    for (uint32_t i = 0; i < count; ++i) {
        uint32_t id = gmem_->read<uint32_t>(
            leaf + BvhLeafLayout::kOffPrims + 4 * i);
        uint64_t addr = tri_base + static_cast<uint64_t>(id) * kTriStride;
        Vec3 v[3];
        for (int k = 0; k < 3; ++k) {
            v[k] = {gmem_->read<float>(addr + 12 * k + 0),
                    gmem_->read<float>(addr + 12 * k + 4),
                    gmem_->read<float>(addr + 12 * k + 8)};
        }
        auto hit = geom::rayTriangle(ray.ray, v[0], v[1], v[2]);
        if (!hit)
            continue;
        if (alpha[id]) {
            // Alpha-masked primitive: the hit must be confirmed by an
            // any-hit shader on the SM.
            needs_shader = true;
            if (!RtScene::alphaPass(ray.meshId, id))
                continue;
        }
        ray.closestT = hit->t;
        ray.hitPrim = id;
        ray.hitU = hit->u;
        ray.hitV = hit->v;
        ray.ray.tmax = hit->t;
        ray.hitCount = 1;
        if (ray.anyHitMode) {
            ray.stack.clear();
            break;
        }
    }
    out.op = rta::OpKind::RayTriangle;
    out.isLeaf = true;
    out.opCount = std::max(1u, count);
    out.useShader = needs_shader;
}

void
RtSpec::processSphereLeaf(rta::RayState &ray, uint64_t leaf,
                          rta::NodeOutcome &out)
{
    uint32_t count = gmem_->read<uint32_t>(leaf + BvhLeafLayout::kOffCount);
    for (uint32_t i = 0; i < count; ++i) {
        uint32_t id = gmem_->read<uint32_t>(
            leaf + BvhLeafLayout::kOffPrims + 4 * i);
        uint64_t addr = scene_->sphereBase() +
            static_cast<uint64_t>(id) * kSphereStride;
        Vec3 center = {gmem_->read<float>(addr + 0),
                       gmem_->read<float>(addr + 4),
                       gmem_->read<float>(addr + 8)};
        float radius = gmem_->read<float>(addr + 12);
        auto t = geom::raySphere(ray.ray, center, radius);
        if (!t)
            continue;
        ray.closestT = *t;
        ray.hitPrim = id;
        ray.ray.tmax = *t;
        ray.hitCount = 1;
        if (ray.anyHitMode) {
            ray.stack.clear();
            break;
        }
    }
    out.op = rta::OpKind::RaySphere;
    out.isLeaf = true;
    out.opCount = std::max(1u, count);
    // Without the TTA+ SQRT path, ray-sphere tests live in an
    // intersection shader (the unstarred WKND_PT configuration).
    out.useShader = !options_.offloadSpheres;
}

rta::NodeOutcome
RtSpec::processNode(rta::RayState &ray, rta::NodeRef ref)
{
    rta::NodeOutcome out;

    if (ref & RtScene::kRestoreBit) {
        // Leave the BLAS: restore the world-space ray, keep the pruned
        // tmax (t is affine-consistent across the transform).
        float tmax = ray.ray.tmax;
        ray.ray = ray.worldRay;
        ray.ray.tmax = tmax;
        ray.inBlas = false;
        out.op = rta::OpKind::None;
        return out;
    }
    if (ref & RtScene::kEnterInstanceBit) {
        uint32_t inst = static_cast<uint32_t>(ref);
        uint64_t addr = scene_->instanceBase() +
            static_cast<uint64_t>(inst) * kInstanceStride;
        float w2o[12];
        for (int k = 0; k < 12; ++k)
            w2o[k] = gmem_->read<float>(addr + 4 * k);
        uint32_t blas_root = gmem_->read<uint32_t>(addr + 48);
        uint32_t mesh = gmem_->read<uint32_t>(addr + 52);

        ray.worldRay = ray.ray;
        ray.ray.origin = trees::transformPoint(w2o, ray.ray.origin);
        ray.ray.dir = trees::transformDir(w2o, ray.ray.dir);
        ray.inBlas = true;
        ray.meshId = mesh;
        ray.stack.push_back(RtScene::kRestoreBit);
        ray.stack.push_back(blas_root);
        out.op = rta::OpKind::Transform;
        return out;
    }

    BvhRef bref{static_cast<uint32_t>(ref)};
    if (bref.isLeaf()) {
        uint64_t leaf = bref.addr();
        if (!ray.inBlas) {
            // TLAS leaf: schedule instance entries.
            uint32_t count =
                gmem_->read<uint32_t>(leaf + BvhLeafLayout::kOffCount);
            for (uint32_t i = 0; i < count; ++i) {
                uint32_t inst = gmem_->read<uint32_t>(
                    leaf + BvhLeafLayout::kOffPrims + 4 * i);
                ray.stack.push_back(RtScene::kEnterInstanceBit | inst);
            }
            out.op = rta::OpKind::None;
            return out;
        }
        if (scene_->geometry().isSphereScene())
            processSphereLeaf(ray, leaf, out);
        else
            processTriangleLeaf(ray, leaf, out);
        return out;
    }

    // Inner node: test both children's boxes, push hits.
    using L = BvhNodeLayout;
    uint64_t node = bref.addr();
    auto read_box = [&](uint32_t lo_off, uint32_t hi_off) {
        geom::Aabb box;
        box.lo = {gmem_->read<float>(node + lo_off + 0),
                  gmem_->read<float>(node + lo_off + 4),
                  gmem_->read<float>(node + lo_off + 8)};
        box.hi = {gmem_->read<float>(node + hi_off + 0),
                  gmem_->read<float>(node + hi_off + 4),
                  gmem_->read<float>(node + hi_off + 8)};
        return box;
    };
    geom::Aabb boxes[2] = {read_box(L::kOffLoL, L::kOffHiL),
                           read_box(L::kOffLoR, L::kOffHiR)};
    BvhRef children[2] = {BvhRef{gmem_->read<uint32_t>(node + L::kOffLeft)},
                          BvhRef{gmem_->read<uint32_t>(node + L::kOffRight)}};
    float key[2];
    bool hit[2];
    for (int c = 0; c < 2; ++c) {
        auto box_hit = geom::rayBox(ray.ray, boxes[c]);
        hit[c] = children[c].valid() && box_hit.has_value();
        if (!hit[c]) {
            key[c] = 0.0f;
            continue;
        }
        if (ray.anyHitMode && options_.sato) {
            // SATO: visit the larger-surface-area child first — for an
            // occlusion ray the big occluders (sails, hull) terminate
            // the traversal, while the near-first order wades through
            // sliver rigging boxes (Nah & Manocha [65]).
            key[c] = -boxes[c].surfaceArea();
        } else {
            key[c] = box_hit->tenter; // near child first
        }
    }
    // Push far-first so the preferred child pops first.
    int first = key[0] <= key[1] ? 0 : 1;
    int second = 1 - first;
    if (hit[second])
        ray.stack.push_back(children[second].raw);
    if (hit[first])
        ray.stack.push_back(children[first].raw);
    out.op = rta::OpKind::RayBox;
    out.isLeaf = false;
    return out;
}

void
RtSpec::finishRay(rta::RayState &ray)
{
    uint64_t addr = resultBase_ + 8ull * ray.queryId;
    gmem_->write<float>(addr + 0,
                        ray.hitCount ? ray.closestT : -1.0f);
    gmem_->write<uint32_t>(addr + 4, ray.hitPrim);
}

// ---------------------------------------------------------------------------
// RayTracingWorkload
// ---------------------------------------------------------------------------

RayTracingWorkload::RayTracingWorkload(SceneKind kind, uint32_t width,
                                       uint32_t height, uint64_t seed)
    : kind_(kind), width_(width), height_(height), seed_(seed)
{
    scene_ = std::make_unique<RtScene>(kind, seed);

    std::vector<RtRay> wave = primaryRays();
    int wave_idx = 0;
    while (!wave.empty()) {
        std::vector<RtHit> hits;
        hits.reserve(wave.size());
        for (const auto &r : wave) {
            if (r.anyHit) {
                RtHit h;
                h.hit = scene_->anyHit(r.ray);
                hits.push_back(h);
            } else {
                hits.push_back(scene_->closestHit(r.ray));
            }
        }
        waves_.push_back(wave);
        waveHits_.push_back(hits);
        wave = nextWave(wave_idx, wave, hits);
        ++wave_idx;
    }
}

void
RayTracingWorkload::renderDepth(uint8_t *pixels, float *tmin_out,
                                float *tmax_out) const
{
    const auto &hits = waveHits_[0];
    float tmin = 1e30f, tmax = 0.0f;
    for (const RtHit &h : hits) {
        if (h.hit) {
            tmin = std::min(tmin, h.t);
            tmax = std::max(tmax, h.t);
        }
    }
    if (tmax <= tmin)
        tmax = tmin + 1.0f;
    for (size_t i = 0; i < hits.size(); ++i) {
        if (!hits[i].hit) {
            pixels[i] = 0;
            continue;
        }
        float norm = (hits[i].t - tmin) / (tmax - tmin);
        pixels[i] = static_cast<uint8_t>(40.0f + 215.0f * (1.0f - norm));
    }
    if (tmin_out)
        *tmin_out = tmin;
    if (tmax_out)
        *tmax_out = tmax;
}

size_t
RayTracingWorkload::totalRays() const
{
    size_t n = 0;
    for (const auto &wave : waves_)
        n += wave.size();
    return n;
}

std::vector<RtRay>
RayTracingWorkload::primaryRays() const
{
    const auto &g = scene_->geometry();
    Vec3 forward = geom::normalize(g.cameraTarget - g.cameraPos);
    Vec3 right = geom::normalize(geom::cross(forward, {0, 1, 0}));
    Vec3 up = geom::cross(right, forward);
    float half_h = std::tan(g.fovDegrees * 3.14159265f / 360.0f);
    float half_w = half_h * width_ / height_;

    std::vector<RtRay> rays;
    rays.reserve(static_cast<size_t>(width_) * height_);
    for (uint32_t y = 0; y < height_; ++y) {
        for (uint32_t x = 0; x < width_; ++x) {
            float sx = (2.0f * (x + 0.5f) / width_ - 1.0f) * half_w;
            float sy = (1.0f - 2.0f * (y + 0.5f) / height_) * half_h;
            RtRay r;
            r.ray.origin = g.cameraPos;
            r.ray.dir =
                geom::normalize(forward + right * sx + up * sy);
            r.ray.tmin = 0.0f;
            r.ray.tmax = 1e30f;
            rays.push_back(r);
        }
    }
    return rays;
}

std::vector<RtRay>
RayTracingWorkload::nextWave(int wave, const std::vector<RtRay> &prev,
                             const std::vector<RtHit> &hits) const
{
    RayWorkload wl = sceneWorkload(kind_);
    std::vector<RtRay> next;
    const int max_bounces = 2;

    auto hit_normal = [&](const RtRay &in, const RtHit &h) {
        if (scene_->geometry().isSphereScene()) {
            const auto &s = scene_->geometry().spheres[h.prim];
            return geom::normalize(in.ray.at(h.t) - s.first);
        }
        uint32_t mesh = scene_->geometry().twoLevel()
            ? scene_->geometry().instances[h.instance].mesh : 0;
        const auto &tri = scene_->geometry().meshes[mesh].triangles[h.prim];
        Vec3 n = geom::normalize(
            geom::cross(tri.v1 - tri.v0, tri.v2 - tri.v0));
        // Orient against the incoming ray.
        if (geom::dot(n, in.ray.dir) > 0.0f)
            n = -n;
        return n;
    };

    for (size_t i = 0; i < prev.size(); ++i) {
        if (!hits[i].hit || prev[i].anyHit)
            continue;
        Vec3 p = prev[i].ray.at(hits[i].t);
        Vec3 n = hit_normal(prev[i], hits[i]);
        uint32_t hseed = static_cast<uint32_t>(i * 2654435761u + wave);

        switch (wl) {
          case RayWorkload::PathTrace: {
            if (wave + 1 >= max_bounces + 1)
                break;
            RtRay r;
            r.ray.origin = p + n * kRayEpsilon;
            Vec3 jitter = hashDirection(hseed);
            r.ray.dir = geom::normalize(
                reflect(prev[i].ray.dir, n) * 0.6f + jitter * 0.4f);
            if (geom::dot(r.ray.dir, n) < 0.0f)
                r.ray.dir = reflect(r.ray.dir, n);
            r.ray.tmax = 1e30f;
            next.push_back(r);
            break;
          }
          case RayWorkload::AmbientOcclusion: {
            if (wave >= 1)
                break;
            for (int k = 0; k < 2; ++k) {
                RtRay r;
                r.ray.origin = p + n * kRayEpsilon;
                Vec3 d = geom::normalize(n + hashDirection(hseed + k));
                if (geom::dot(d, n) < 0.05f)
                    d = n;
                r.ray.dir = d;
                r.ray.tmax = 2.0f; // occlusion radius
                r.anyHit = true;
                next.push_back(r);
            }
            break;
          }
          case RayWorkload::Shadow:
          case RayWorkload::AlphaMask: {
            if (wave >= 1)
                break;
            // Area-light sampling for the shadow workload: several
            // jittered shadow rays per hit (this is the wave SATO
            // accelerates); alpha masking keeps a single hard shadow.
            int n_shadow = wl == RayWorkload::Shadow ? 4 : 1;
            for (int k = 0; k < n_shadow; ++k) {
                RtRay r;
                r.ray.origin = p + n * kRayEpsilon;
                geom::Vec3 jitter =
                    n_shadow > 1 ? hashDirection(hseed + 31 * k) * 2.0f
                                 : geom::Vec3(0.0f);
                r.ray.dir =
                    scene_->geometry().lightPos + jitter - r.ray.origin;
                r.ray.tmax = 1.0f; // light at t == 1
                r.anyHit = true;
                next.push_back(r);
            }
            break;
          }
          case RayWorkload::Reflection: {
            if (wave >= 1)
                break;
            RtRay r;
            r.ray.origin = p + n * kRayEpsilon;
            r.ray.dir = geom::normalize(reflect(prev[i].ray.dir, n));
            r.ray.tmax = 1e30f;
            next.push_back(r);
            break;
          }
        }
    }
    return next;
}

api::TtaPipeline
RayTracingWorkload::makePipeline(SceneKind kind, const RtOptions &options)
{
    static const ttaplus::Program inner = ttaplus::programs::rayBoxInner();
    static const ttaplus::Program tri_leaf =
        ttaplus::programs::rayTriangleLeaf();
    static const ttaplus::Program sphere_leaf =
        ttaplus::programs::raySphereLeaf();
    bool spheres = kind == SceneKind::WkndPt;
    std::string name = std::string(sceneName(kind)) +
        (options.sato ? ".sato" : "") +
        (options.offloadSpheres ? ".offload" : "");
    api::TtaPipelineDesc desc(name);
    desc.decodeR({12, 12, 4, 4})  // Listing 1: origin, dir, tmin, tmax
        .decodeI({12, 12, 12, 12, 4, 4})
        .decodeL(spheres ? std::vector<uint32_t>{12, 4}
                         : std::vector<uint32_t>{12, 12, 12})
        .configI(&inner)
        .configL(spheres ? &sphere_leaf : &tri_leaf);
    // Ray tracing checks ray.tmax for termination inside the leaf test
    // (Listing 1's ConfigTerminate("ray", 24, float, "Leaf", 20)).
    tta::TerminationConfig term;
    term.watch = tta::TerminationConfig::Watch::RayField;
    term.byteOffset = 24;
    term.programPc = 20;
    desc.configTerminate(term);
    return api::TtaPipeline::create(desc);
}

RunMetrics
RayTracingWorkload::runAccelerated(const sim::Config &cfg,
                                   sim::StatRegistry &stats,
                                   RtOptions options)
{
    api::TtaDevice device(cfg, stats);
    scene_->serialize(device.memory());
    api::TtaPipeline pipeline = makePipeline(kind_, options);

    sim::Cycle cycles = 0;
    for (size_t w = 0; w < waves_.size(); ++w) {
        const auto &wave = waves_[w];
        uint64_t result_base = device.memory().alloc(wave.size() * 8, 128);
        RtSpec spec(device.memory(), *scene_, wave, result_base, options);
        device.bindPipeline(pipeline, &spec);
        cycles += device.cmdTraverseTree(wave.size());

        // Verify against the host reference (tolerating traversal-order
        // ties on equal-t hits).
        size_t bad = 0;
        for (size_t i = 0; i < wave.size(); ++i) {
            float t = device.memory().read<float>(result_base + 8 * i);
            bool hit = t >= 0.0f;
            const RtHit &ref = waveHits_[w][i];
            if (hit != ref.hit) {
                ++bad;
            } else if (hit && !wave[i].anyHit &&
                       std::fabs(t - ref.t) >
                           1e-3f * std::max(1.0f, ref.t)) {
                ++bad;
            }
        }
        panic_if(bad > wave.size() / 256 + 2,
                 "%s wave %zu: %zu mismatches out of %zu rays",
                 sceneName(kind_), w, bad, wave.size());
    }
    return collectMetrics(stats, cycles,
                          device.gpu().memsys().dramUtilization());
}

RunMetrics
RayTracingWorkload::runBaselineCores(const sim::Config &cfg,
                                     sim::StatRegistry &stats)
{
    fatal_if(scene_->geometry().isSphereScene() ||
             scene_->geometry().twoLevel(),
             "the SIMT-core path requires a single-level triangle scene");
    gpu::Gpu device(cfg, stats);
    scene_->serialize(device.memory());

    const auto &wave = waves_[0];
    uint64_t ray_base = device.memory().alloc(wave.size() * kRayStride, 128);
    for (size_t i = 0; i < wave.size(); ++i) {
        uint64_t addr = ray_base + i * kRayStride;
        device.memory().write<float>(addr + 0, wave[i].ray.origin.x);
        device.memory().write<float>(addr + 4, wave[i].ray.origin.y);
        device.memory().write<float>(addr + 8, wave[i].ray.origin.z);
        device.memory().write<float>(addr + 12, wave[i].ray.dir.x);
        device.memory().write<float>(addr + 16, wave[i].ray.dir.y);
        device.memory().write<float>(addr + 20, wave[i].ray.dir.z);
        device.memory().write<float>(addr + 24, wave[i].ray.tmin);
        device.memory().write<float>(addr + 28, wave[i].ray.tmax);
    }
    uint64_t result_base = device.memory().alloc(wave.size() * 4, 128);
    size_t warps = (wave.size() + 31) / 32;
    uint64_t stack_base = device.memory().alloc(warps * 16384, 128);

    gpu::KernelProgram kernel = buildBaselineKernel();
    std::vector<uint32_t> params = {
        static_cast<uint32_t>(ray_base),
        static_cast<uint32_t>(scene_->rootRef()),
        static_cast<uint32_t>(scene_->meshImages()[0].triBase),
        static_cast<uint32_t>(stack_base),
        static_cast<uint32_t>(result_base)};
    sim::Cycle cycles = device.runKernel(kernel, wave.size(), params);

    size_t bad = 0;
    for (size_t i = 0; i < wave.size(); ++i) {
        float t = device.memory().read<float>(result_base + 4 * i);
        const RtHit &ref = waveHits_[0][i];
        bool hit = t < 1e29f;
        if (hit != ref.hit)
            ++bad;
        else if (hit && std::fabs(t - ref.t) > 1e-3f * std::max(1.0f, ref.t))
            ++bad;
    }
    panic_if(bad > wave.size() / 128 + 2,
             "%s SIMT-core tracer: %zu mismatches out of %zu",
             sceneName(kind_), bad, wave.size());
    return collectMetrics(stats, cycles, device.memsys().dramUtilization());
}

gpu::KernelProgram
RayTracingWorkload::buildBaselineKernel()
{
    using namespace ::tta::gpu;
    using L = BvhNodeLayout;
    KernelBuilder b("rt_closest_hit_baseline");
    // Params: 0 rayBase, 1 rootRef, 2 triBase, 3 stackBase, 4 resultBase.
    b.tid(1);
    b.param(20, 0);
    b.ishli(21, 1, 5);
    b.iadd(20, 20, 21);
    b.loadVec3(4, 20, 0);  // origin
    b.loadVec3(7, 20, 12); // direction
    b.load(26, 20, 28);    // t_best = ray.tmax
    b.frcp(28, 7);
    b.frcp(29, 8);
    b.frcp(30, 9);         // 1/d
    // Interleaved per-thread stack (128 levels x 128B per warp).
    b.param(2, 3);
    b.ishri(21, 1, 5);
    b.ishli(21, 21, 14);
    b.iadd(2, 2, 21);
    b.movi(22, 31);
    b.iand(22, 1, 22);
    b.ishli(22, 22, 2);
    b.iadd(2, 2, 22);
    b.param(23, 1);
    b.store(2, 23, 0); // push root
    b.movi(3, 1);

    b.doWhile([&]() -> Reg {
        b.iaddi(3, 3, -1);
        b.ishli(11, 3, 7);
        b.iadd(11, 2, 11);
        b.load(10, 11, 0); // ref
        b.movi(22, 1);
        b.iand(12, 10, 22); // leaf?
        b.movi(22, ~3);
        b.iand(13, 10, 22); // address

        b.ifThenElse(
            12,
            [&]() { // leaf: Moller-Trumbore per primitive
                b.load(10, 13, 0); // count (ref no longer needed)
                b.movi(12, 0);     // i
                b.doWhile([&]() -> Reg {
                    b.ishli(0, 12, 2);
                    b.iadd(0, 13, 0);
                    b.load(0, 0, 4); // prim id
                    b.imuli(0, 0, kTriStride);
                    b.param(11, 2);
                    b.iadd(0, 11, 0);
                    b.loadVec3(14, 0, 0);  // v0
                    b.loadVec3(17, 0, 12); // v1
                    b.loadVec3(20, 0, 24); // v2
                    b.vsub(17, 17, 14);    // e1
                    b.vsub(20, 20, 14);    // e2
                    b.vcross(23, 7, 20, 0); // pvec (temps r0, r1)
                    b.vdot(11, 17, 23, 0);  // det
                    b.frcp(11, 11);         // inv_det (inf when det==0)
                    b.vsub(14, 4, 14);      // tvec = o - v0
                    b.vdot(0, 14, 23, 1);   // u_raw
                    b.fmul(0, 0, 11);       // u
                    // qvec = cross(tvec, e1), hand-expanded: the only
                    // free scratch registers are r1 and r27 (vcross's
                    // consecutive-temp pair would clobber the stack
                    // base in r2).
                    b.fmul(1, 15, 19);
                    b.fmul(27, 16, 18);
                    b.fsub(23, 1, 27);
                    b.fmul(1, 16, 17);
                    b.fmul(27, 14, 19);
                    b.fsub(24, 1, 27);
                    b.fmul(1, 14, 18);
                    b.fmul(27, 15, 17);
                    b.fsub(25, 1, 27);
                    b.vdot(1, 7, 23, 27);   // v_raw
                    b.fmul(1, 1, 11);       // v
                    b.vdot(27, 20, 23, 20); // t_raw (tmp aliases e2.x)
                    b.fmul(27, 27, 11);     // t
                    // accept = 0<=u && 0<=v && u+v<=1 && eps<t<t_best
                    b.fadd(14, 0, 1);       // u+v
                    b.movif(15, 0.0f);
                    b.setlef(16, 15, 0);
                    b.setlef(17, 15, 1);
                    b.iand(16, 16, 17);
                    b.movif(15, 1.0f);
                    b.setlef(17, 14, 15);
                    b.iand(16, 16, 17);
                    b.movif(15, 1e-4f);
                    b.setltf(17, 15, 27);
                    b.iand(16, 16, 17);
                    b.setltf(17, 27, 26);
                    b.iand(16, 16, 17);
                    b.ifThen(16, [&]() { b.mov(26, 27); });
                    b.iaddi(12, 12, 1);
                    b.setlti(31, 12, 10);
                    return 31;
                });
                // restore tid (r1 was used as a temp)
                b.tid(1);
            },
            [&]() { // inner: slab tests on both children
                auto test_child = [&](uint32_t lo_off, uint32_t hi_off,
                                      uint32_t ref_off) {
                    b.loadVec3(14, 13, static_cast<int32_t>(lo_off));
                    b.loadVec3(17, 13, static_cast<int32_t>(hi_off));
                    // x
                    b.fsub(20, 14, 4);
                    b.fmul(20, 20, 28);
                    b.fsub(21, 17, 4);
                    b.fmul(21, 21, 28);
                    b.fmin(22, 20, 21); // tenter
                    b.fmax(23, 20, 21); // texit
                    // y
                    b.fsub(20, 15, 5);
                    b.fmul(20, 20, 29);
                    b.fsub(21, 18, 5);
                    b.fmul(21, 21, 29);
                    b.fmin(24, 20, 21);
                    b.fmax(25, 20, 21);
                    b.fmax(22, 22, 24);
                    b.fmin(23, 23, 25);
                    // z
                    b.fsub(20, 16, 6);
                    b.fmul(20, 20, 30);
                    b.fsub(21, 19, 6);
                    b.fmul(21, 21, 30);
                    b.fmin(24, 20, 21);
                    b.fmax(25, 20, 21);
                    b.fmax(22, 22, 24);
                    b.fmin(23, 23, 25);
                    // hit = tenter<=texit && texit>=0 && tenter<t_best
                    b.setlef(24, 22, 23);
                    b.movif(25, 0.0f);
                    b.setlef(27, 25, 23);
                    b.iand(24, 24, 27);
                    b.setltf(27, 22, 26);
                    b.iand(24, 24, 27);
                    b.load(20, 13, static_cast<int32_t>(ref_off));
                    b.movi(25, 0);
                    b.setnei(21, 20, 25);
                    b.iand(24, 24, 21);
                    b.ifThen(24, [&]() {
                        b.ishli(11, 3, 7);
                        b.iadd(11, 2, 11);
                        b.store(11, 20, 0);
                        b.iaddi(3, 3, 1);
                    });
                };
                test_child(L::kOffLoL, L::kOffHiL, L::kOffLeft);
                test_child(L::kOffLoR, L::kOffHiR, L::kOffRight);
            });
        b.movi(22, 0);
        b.setlti(31, 22, 3);
        return 31;
    });

    b.param(20, 4);
    b.ishli(21, 1, 2);
    b.iadd(20, 20, 21);
    b.store(20, 26, 0); // result: closest t (tmax when missed)
    b.exit();
    return b.build();
}

} // namespace tta::workloads
