#include "workloads/rtnn_workload.hh"

#include <cstring>

#include "geom/intersect.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace tta::workloads {

using trees::BvhLeafLayout;
using trees::BvhNodeLayout;
using trees::BvhRef;
using trees::PointLayout;

namespace {

constexpr uint32_t kStackBytesPerWarp = 8192; //!< 64 levels x 128B

/** Cover [base, base+bytes) with 128B line addresses. */
void
coverLines(uint64_t base, uint64_t bytes, std::vector<uint64_t> &lines)
{
    uint64_t first = base & ~127ull;
    uint64_t last = (base + bytes - 1) & ~127ull;
    for (uint64_t line = first; line <= last; line += 128)
        lines.push_back(line);
}

} // namespace

RtnnSpec::RtnnSpec(mem::GlobalMemory &gmem,
                   const trees::SerializedBvh &sbvh, uint64_t point_base,
                   uint64_t query_base, uint64_t result_base, float radius,
                   bool offload_leaf)
    : gmem_(&gmem), root_(sbvh.root), nodeWidth_(sbvh.nodeWidth),
      nodeStride_(sbvh.nodeStride), quantized_(sbvh.quantized),
      pointBase_(point_base), queryBase_(query_base),
      resultBase_(result_base), radius_(radius),
      offloadLeaf_(offload_leaf),
      innerProg_(ttaplus::programs::rayBoxInner()),
      leafProg_(ttaplus::programs::rtnnPointDistLeaf())
{
}

void
RtnnSpec::initRay(rta::RayState &ray, uint32_t lane_operand)
{
    ray.queryId = lane_operand;
    uint64_t addr = queryBase_ +
        static_cast<uint64_t>(lane_operand) * PointLayout::kPointBytes;
    ray.point = {gmem_->read<float>(addr + 0), gmem_->read<float>(addr + 4),
                 gmem_->read<float>(addr + 8)};
    ray.hitCount = 0;
    ray.stack.push_back(root_.raw);
}

void
RtnnSpec::fetchLines(const rta::RayState & /*ray*/, rta::NodeRef ref,
                     std::vector<uint64_t> &lines) const
{
    BvhRef bref{static_cast<uint32_t>(ref)};
    if (!bref.isLeaf()) {
        if (nodeWidth_ > 2) {
            // Wide nodes span nodeStride_ bytes: the cache hierarchy
            // must see the full footprint of the fetch.
            coverLines(bref.addr(), nodeStride_, lines);
        } else {
            lines.push_back(bref.addr() & ~127ull);
        }
        return;
    }
    uint64_t leaf = bref.addr();
    uint32_t count = gmem_->read<uint32_t>(leaf + BvhLeafLayout::kOffCount);
    coverLines(leaf, 4 + 4ull * count, lines);
    for (uint32_t i = 0; i < count; ++i) {
        uint32_t id = gmem_->read<uint32_t>(
            leaf + BvhLeafLayout::kOffPrims + 4 * i);
        lines.push_back((pointBase_ +
                         static_cast<uint64_t>(id) *
                             PointLayout::kPointBytes) & ~127ull);
    }
}

rta::NodeOutcome
RtnnSpec::processNode(rta::RayState &ray, rta::NodeRef ref)
{
    using L = BvhNodeLayout;
    BvhRef bref{static_cast<uint32_t>(ref)};
    rta::NodeOutcome out;

    if (bref.isLeaf()) {
        uint64_t leaf = bref.addr();
        uint32_t count =
            gmem_->read<uint32_t>(leaf + BvhLeafLayout::kOffCount);
        for (uint32_t i = 0; i < count; ++i) {
            uint32_t id = gmem_->read<uint32_t>(
                leaf + BvhLeafLayout::kOffPrims + 4 * i);
            uint64_t paddr = pointBase_ +
                static_cast<uint64_t>(id) * PointLayout::kPointBytes;
            geom::Vec3 p = {gmem_->read<float>(paddr + 0),
                            gmem_->read<float>(paddr + 4),
                            gmem_->read<float>(paddr + 8)};
            if (geom::pointWithinRadius(ray.point, p, radius_))
                ++ray.hitCount;
        }
        out.isLeaf = true;
        out.opCount = std::max(1u, count);
        if (offloadLeaf_) {
            // *RTNN: Point-to-Point distance on the accelerator.
            out.op = rta::OpKind::PointDist;
        } else {
            // Baseline RTNN: ray-sphere intersection shader on the SM.
            out.op = rta::OpKind::RaySphere;
            out.useShader = true;
        }
        return out;
    }

    uint64_t node = bref.addr();
    if (nodeWidth_ > 2)
        return processWideInner(ray, node);
    auto read_box = [&](uint32_t lo_off, uint32_t hi_off) {
        geom::Aabb box;
        box.lo = {gmem_->read<float>(node + lo_off + 0),
                  gmem_->read<float>(node + lo_off + 4),
                  gmem_->read<float>(node + lo_off + 8)};
        box.hi = {gmem_->read<float>(node + hi_off + 0),
                  gmem_->read<float>(node + hi_off + 4),
                  gmem_->read<float>(node + hi_off + 8)};
        return box;
    };
    geom::Aabb left_box = read_box(L::kOffLoL, L::kOffHiL);
    geom::Aabb right_box = read_box(L::kOffLoR, L::kOffHiR);
    BvhRef left{gmem_->read<uint32_t>(node + L::kOffLeft)};
    BvhRef right{gmem_->read<uint32_t>(node + L::kOffRight)};

    // The RTNN "ray" is a point: the Ray-Box test degenerates to
    // point-in-box against the radius-inflated child boxes.
    if (left.valid() && left_box.contains(ray.point))
        ray.stack.push_back(left.raw);
    if (right.valid() && right_box.contains(ray.point))
        ray.stack.push_back(right.raw);
    out.op = rta::OpKind::RayBox;
    out.isLeaf = false;
    return out;
}

/**
 * Wide SoA inner node: one batched point-in-box test over all children.
 * Children pack from lane 0; the first zero ref terminates the list.
 * The node costs width/2 invocations of the two-box intersection unit.
 */
rta::NodeOutcome
RtnnSpec::processWideInner(rta::RayState &ray, uint64_t node)
{
    using W = trees::WideBvhNodeLayout;
    alignas(32) unsigned char buf[256];
    gmem_->readBytes(node, buf, nodeStride_);

    uint32_t refs_off = W::refsOffset(nodeWidth_, quantized_);
    uint32_t refs[8] = {};
    uint32_t count = 0;
    for (uint32_t i = 0; i < nodeWidth_; ++i) {
        std::memcpy(&refs[i], buf + refs_off + 4 * i, 4);
        if (refs[i] == 0)
            break;
        ++count;
    }

    geom::WideBoxes boxes;
    if (!quantized_) {
        float *planes[6] = {boxes.lox, boxes.loy, boxes.loz,
                            boxes.hix, boxes.hiy, boxes.hiz};
        for (uint32_t a = 0; a < 6; ++a) {
            std::memcpy(planes[a], buf + W::kOffLoX + a * nodeWidth_ * 4,
                        nodeWidth_ * 4);
        }
    } else {
        float plo[3];
        float phi[3];
        std::memcpy(plo, buf + W::kOffParentLo, 12);
        std::memcpy(phi, buf + W::kOffParentHi, 12);
        float *lo_planes[3] = {boxes.lox, boxes.loy, boxes.loz};
        float *hi_planes[3] = {boxes.hix, boxes.hiy, boxes.hiz};
        for (int a = 0; a < 3; ++a) {
            float scale = trees::wideQuantScale(plo[a], phi[a]);
            const unsigned char *qlo =
                buf + W::kOffQuant + a * nodeWidth_;
            const unsigned char *qhi =
                buf + W::kOffQuant + (3 + a) * nodeWidth_;
            for (uint32_t i = 0; i < count; ++i) {
                lo_planes[a][i] =
                    trees::wideQuantDecodeLo(plo[a], scale, qlo[i]);
                hi_planes[a][i] =
                    trees::wideQuantDecodeHi(phi[a], scale, qhi[i]);
            }
        }
    }

    uint32_t mask = geom::pointInBoxBatch(ray.point, boxes,
                                          static_cast<int>(count));
    for (uint32_t i = 0; i < count; ++i) {
        if (mask & (1u << i))
            ray.stack.push_back(refs[i]);
    }

    rta::NodeOutcome out;
    out.op = rta::OpKind::RayBox;
    out.isLeaf = false;
    out.opCount = nodeWidth_ / 2;
    return out;
}

void
RtnnSpec::finishRay(rta::RayState &ray)
{
    gmem_->write<uint32_t>(resultBase_ + 4ull * ray.queryId, ray.hitCount);
}

RtnnWorkload::RtnnWorkload(size_t n_points, size_t n_queries, float radius,
                           uint64_t seed)
    : radius_(radius)
{
    cloud_ = trees::PointCloud::generateLidarLike(n_points, seed);
    index_ = std::make_unique<trees::RadiusSearchIndex>(cloud_, radius);

    sim::Rng rng(seed ^ 0x9e3779b9ull);
    queries_.reserve(n_queries);
    for (size_t q = 0; q < n_queries; ++q) {
        if (rng.nextFloat() < 0.7f) {
            // Jittered cloud point: dense-region queries.
            const geom::Vec3 &p =
                cloud_.points[rng.nextBounded(cloud_.points.size())];
            queries_.push_back({p.x + 0.3f * rng.gaussian(),
                                p.y + 0.3f * rng.gaussian(),
                                p.z + 0.1f * rng.gaussian()});
        } else {
            queries_.push_back({rng.uniform(-80.0f, 80.0f),
                                rng.uniform(-80.0f, 80.0f),
                                rng.uniform(0.0f, 6.0f)});
        }
    }
    expected_.reserve(n_queries);
    for (const auto &q : queries_)
        expected_.push_back(
            static_cast<uint32_t>(index_->query(q).size()));
}

RtnnWorkload::RtnnWorkload(const RtnnWorkload &other)
    : cloud_(other.cloud_),
      index_(std::make_unique<trees::RadiusSearchIndex>(*other.index_,
                                                        cloud_)),
      radius_(other.radius_), queries_(other.queries_),
      expected_(other.expected_), sbvh_(other.sbvh_),
      pointBase_(other.pointBase_), queryBase_(other.queryBase_),
      resultBase_(other.resultBase_), stackBase_(other.stackBase_)
{}

void
RtnnWorkload::setup(mem::GlobalMemory &gmem, const sim::Config &cfg)
{
    if (cfg.bvhNodeWidth > 2) {
        trees::WideBvh wide;
        wide.build(index_->bvh(), cfg.bvhNodeWidth, cfg.bvhQuantized);
        sbvh_ = wide.serialize(gmem);
    } else {
        sbvh_ = index_->bvh().serialize(gmem);
    }
    pointBase_ = cloud_.serialize(gmem);
    queryBase_ =
        gmem.alloc(queries_.size() * PointLayout::kPointBytes, 128);
    resultBase_ = gmem.alloc(queries_.size() * 4, 128);
    size_t warps = (queries_.size() + 31) / 32;
    stackBase_ = gmem.alloc(warps * kStackBytesPerWarp, 128);
    for (size_t q = 0; q < queries_.size(); ++q) {
        uint64_t addr = queryBase_ + q * PointLayout::kPointBytes;
        gmem.write<float>(addr + 0, queries_[q].x);
        gmem.write<float>(addr + 4, queries_[q].y);
        gmem.write<float>(addr + 8, queries_[q].z);
        gmem.write<uint32_t>(resultBase_ + 4 * q, 0xdeadbeef);
    }
}

gpu::KernelProgram
RtnnWorkload::buildBaselineKernel()
{
    using namespace ::tta::gpu;
    using L = BvhNodeLayout;
    KernelBuilder b("rtnn_radius_search_baseline");
    // Params: 0 queryBase, 1 rootRef, 2 radius^2, 3 stackBase,
    //         4 pointBase, 5 resultBase.
    b.tid(1);
    b.param(22, 0);
    b.ishli(23, 1, 4);
    b.iadd(22, 22, 23);
    b.loadVec3(4, 22, 0); // q
    b.movi(7, 0);         // neighbor count
    b.param(8, 2);        // radius^2
    // CUDA-local-memory-style interleaved per-thread stack:
    // addr = stackBase + warpId*8K + sp*128 + lane*4 (lane-adjacent
    // entries share a line, so uniform-depth pushes coalesce).
    b.param(2, 3);
    b.ishri(23, 1, 5);
    b.ishli(23, 23, 13);
    b.iadd(2, 2, 23);
    b.movi(24, 31);
    b.iand(25, 1, 24);
    b.ishli(25, 25, 2);
    b.iadd(2, 2, 25);
    b.param(26, 1);
    b.store(2, 26, 0); // push root
    b.movi(3, 1);      // sp = 1

    b.doWhile([&]() -> Reg {
        b.iaddi(3, 3, -1);
        b.ishli(11, 3, 7);
        b.iadd(11, 2, 11);
        b.load(10, 11, 0); // ref
        b.movi(24, 1);
        b.iand(12, 10, 24); // leaf?
        b.movi(24, ~3);
        b.iand(13, 10, 24); // address

        b.ifThenElse(
            12,
            [&]() { // leaf: exact distance tests (Algorithm 2)
                b.load(20, 13, 0); // prim count
                b.movi(21, 0);
                b.doWhile([&]() -> Reg {
                    b.ishli(22, 21, 2);
                    b.iadd(22, 13, 22);
                    b.load(23, 22, 4); // point id
                    b.param(24, 4);
                    b.ishli(23, 23, 4);
                    b.iadd(23, 24, 23);
                    b.loadVec3(14, 23, 0);
                    b.vsub(14, 14, 4);
                    b.vdot(18, 14, 14, 17); // d2
                    b.setltf(19, 18, 8);
                    b.iadd(7, 7, 19); // predicated count
                    b.iaddi(21, 21, 1);
                    b.setlti(31, 21, 20);
                    return 31;
                });
            },
            [&]() { // inner: point-in-box on both (inflated) child boxes
                auto test_child = [&](uint32_t lo_off, uint32_t hi_off,
                                      uint32_t ref_off) {
                    b.loadVec3(14, 13, static_cast<int32_t>(lo_off));
                    b.setlef(22, 14, 4);
                    b.setlef(23, 15, 5);
                    b.iand(22, 22, 23);
                    b.setlef(23, 16, 6);
                    b.iand(22, 22, 23);
                    b.loadVec3(14, 13, static_cast<int32_t>(hi_off));
                    b.setlef(23, 4, 14);
                    b.iand(22, 22, 23);
                    b.setlef(23, 5, 15);
                    b.iand(22, 22, 23);
                    b.setlef(23, 6, 16);
                    b.iand(22, 22, 23);
                    b.load(24, 13, static_cast<int32_t>(ref_off));
                    b.movi(25, 0);
                    b.setnei(25, 24, 25); // valid child
                    b.iand(22, 22, 25);
                    b.ifThen(22, [&]() {
                        b.ishli(11, 3, 7);
                        b.iadd(11, 2, 11);
                        b.store(11, 24, 0);
                        b.iaddi(3, 3, 1);
                    });
                };
                test_child(L::kOffLoL, L::kOffHiL, L::kOffLeft);
                test_child(L::kOffLoR, L::kOffHiR, L::kOffRight);
            });
        b.movi(24, 0);
        b.setlti(31, 24, 3); // while sp > 0
        return 31;
    });

    b.param(26, 5);
    b.ishli(23, 1, 2);
    b.iadd(26, 26, 23);
    b.store(26, 7, 0);
    b.exit();
    return b.build();
}

api::TtaPipeline
RtnnWorkload::makePipeline(bool offload_leaf)
{
    static const ttaplus::Program inner = ttaplus::programs::rayBoxInner();
    static const ttaplus::Program leaf =
        ttaplus::programs::rtnnPointDistLeaf();
    api::TtaPipelineDesc desc(offload_leaf ? "rtnn.offloaded" : "rtnn");
    desc.decodeR({12, 4})          // query point, neighbor count
        .decodeI({12, 12, 12, 12, 4, 4}) // two child boxes + refs
        .decodeL({4, 12, 12, 12})  // count + up to 3 inline points
        .configI(&inner)
        .configL(&leaf);
    desc.configTerminate(tta::TerminationConfig{});
    return api::TtaPipeline::create(desc);
}

RunMetrics
RtnnWorkload::runBaseline(const sim::Config &cfg, sim::StatRegistry &stats)
{
    panic_if(cfg.bvhNodeWidth > 2,
             "the baseline SIMT kernel traverses the binary node layout "
             "(bvhNodeWidth = %u)",
             cfg.bvhNodeWidth);
    gpu::Gpu device(cfg, stats);
    setup(device.memory(), cfg);
    gpu::KernelProgram kernel = buildBaselineKernel();
    float r2 = radius_ * radius_;
    uint32_t r2_bits;
    std::memcpy(&r2_bits, &r2, sizeof(r2_bits));
    std::vector<uint32_t> params = {static_cast<uint32_t>(queryBase_),
                                    sbvh_.root.raw,
                                    r2_bits,
                                    static_cast<uint32_t>(stackBase_),
                                    static_cast<uint32_t>(pointBase_),
                                    static_cast<uint32_t>(resultBase_)};
    sim::Cycle cycles =
        device.runKernel(kernel, queries_.size(), params);
    size_t bad = verify(device.memory());
    panic_if(bad != 0, "baseline RTNN kernel produced %zu mismatches",
             bad);
    return collectMetrics(stats, cycles, device.memsys().dramUtilization());
}

RunMetrics
RtnnWorkload::runAccelerated(const sim::Config &cfg,
                             sim::StatRegistry &stats, bool offload_leaf)
{
    api::TtaDevice device(cfg, stats);
    setup(device.memory(), cfg);
    RtnnSpec spec(device.memory(), sbvh_, pointBase_, queryBase_,
                  resultBase_, radius_, offload_leaf);
    api::TtaPipeline pipeline = makePipeline(offload_leaf);
    device.bindPipeline(pipeline, &spec);
    sim::Cycle cycles = device.cmdTraverseTree(queries_.size());
    size_t bad = verify(device.memory());
    panic_if(bad != 0, "accelerated RTNN run produced %zu mismatches",
             bad);
    return collectMetrics(stats, cycles,
                          device.gpu().memsys().dramUtilization());
}

size_t
RtnnWorkload::verify(const mem::GlobalMemory &gmem) const
{
    size_t mismatches = 0;
    for (size_t q = 0; q < queries_.size(); ++q) {
        if (gmem.read<uint32_t>(resultBase_ + 4 * q) != expected_[q])
            ++mismatches;
    }
    return mismatches;
}

} // namespace tta::workloads
