#include "workloads/scenes.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace tta::workloads {

using geom::Vec3;

const char *
sceneName(SceneKind kind)
{
    switch (kind) {
      case SceneKind::CornellPt: return "CORNELL_PT";
      case SceneKind::SponzaAo: return "SPONZA_AO";
      case SceneKind::ShipSh: return "SHIP_SH";
      case SceneKind::TeapotRf: return "TEAPOT_RF";
      case SceneKind::WkndPt: return "WKND_PT";
      case SceneKind::MaskAm: return "MASK_AM";
    }
    return "?";
}

RayWorkload
sceneWorkload(SceneKind kind)
{
    switch (kind) {
      case SceneKind::CornellPt: return RayWorkload::PathTrace;
      case SceneKind::SponzaAo: return RayWorkload::AmbientOcclusion;
      case SceneKind::ShipSh: return RayWorkload::Shadow;
      case SceneKind::TeapotRf: return RayWorkload::Reflection;
      case SceneKind::WkndPt: return RayWorkload::PathTrace;
      case SceneKind::MaskAm: return RayWorkload::AlphaMask;
    }
    return RayWorkload::PathTrace;
}

size_t
SceneGeometry::primitiveCount() const
{
    if (isSphereScene())
        return spheres.size();
    size_t n = 0;
    if (twoLevel()) {
        for (const auto &inst : instances)
            n += meshes[inst.mesh].triangles.size();
    } else {
        for (const auto &mesh : meshes)
            n += mesh.triangles.size();
    }
    return n;
}

namespace {

/** Append an axis-aligned box as 12 triangles. */
void
appendBox(SceneMesh &mesh, const Vec3 &lo, const Vec3 &hi,
          bool alpha = false)
{
    Vec3 c[8] = {{lo.x, lo.y, lo.z}, {hi.x, lo.y, lo.z},
                 {hi.x, hi.y, lo.z}, {lo.x, hi.y, lo.z},
                 {lo.x, lo.y, hi.z}, {hi.x, lo.y, hi.z},
                 {hi.x, hi.y, hi.z}, {lo.x, hi.y, hi.z}};
    static const int faces[6][4] = {{0, 1, 2, 3}, {4, 5, 6, 7},
                                    {0, 1, 5, 4}, {2, 3, 7, 6},
                                    {0, 3, 7, 4}, {1, 2, 6, 5}};
    for (const auto &f : faces) {
        mesh.triangles.push_back({c[f[0]], c[f[1]], c[f[2]]});
        mesh.triangles.push_back({c[f[0]], c[f[2]], c[f[3]]});
        mesh.alpha.push_back(alpha);
        mesh.alpha.push_back(alpha);
    }
}

/** Append a vertical quad (two triangles). */
void
appendQuad(SceneMesh &mesh, const Vec3 &origin, const Vec3 &edge_u,
           const Vec3 &edge_v, bool alpha)
{
    Vec3 a = origin;
    Vec3 b = origin + edge_u;
    Vec3 c = origin + edge_u + edge_v;
    Vec3 d = origin + edge_v;
    mesh.triangles.push_back({a, b, c});
    mesh.triangles.push_back({a, c, d});
    mesh.alpha.push_back(alpha);
    mesh.alpha.push_back(alpha);
}

/** Tessellated UV sphere. */
void
appendSphereMesh(SceneMesh &mesh, const Vec3 &center, float radius,
                 int stacks, int slices)
{
    auto point = [&](int st, int sl) {
        float phi = 3.14159265f * st / stacks;
        float theta = 6.2831853f * sl / slices;
        return center + Vec3(radius * std::sin(phi) * std::cos(theta),
                             radius * std::cos(phi),
                             radius * std::sin(phi) * std::sin(theta));
    };
    for (int st = 0; st < stacks; ++st) {
        for (int sl = 0; sl < slices; ++sl) {
            Vec3 a = point(st, sl), b = point(st + 1, sl);
            Vec3 c = point(st + 1, sl + 1), d = point(st, sl + 1);
            mesh.triangles.push_back({a, b, c});
            mesh.triangles.push_back({a, c, d});
            mesh.alpha.push_back(false);
            mesh.alpha.push_back(false);
        }
    }
}

SceneGeometry
cornellPt(uint64_t seed)
{
    sim::Rng rng(seed);
    SceneGeometry scene;
    // Mesh 0: the room shell (floor/ceiling/walls as thin boxes).
    SceneMesh room;
    appendBox(room, {-5, -0.1f, -5}, {5, 0, 5});    // floor
    appendBox(room, {-5, 10, -5}, {5, 10.1f, 5});   // ceiling
    appendBox(room, {-5.1f, 0, -5}, {-5, 10, 5});   // left
    appendBox(room, {5, 0, -5}, {5.1f, 10, 5});     // right
    appendBox(room, {-5, 0, -5.1f}, {5, 10, -5});   // back
    scene.meshes.push_back(std::move(room));
    // Mesh 1: a unit box, instanced many times.
    SceneMesh unit;
    appendBox(unit, {-0.5f, 0, -0.5f}, {0.5f, 1, 0.5f});
    scene.meshes.push_back(std::move(unit));

    scene.instances.push_back(makeInstance(0, {0, 0, 0}, 0.0f, 1.0f));
    for (int i = 0; i < 320; ++i) {
        scene.instances.push_back(
            makeInstance(1,
                         {rng.uniform(-4.2f, 4.2f), 0.0f,
                          rng.uniform(-4.2f, 4.2f)},
                         rng.uniform(0.0f, 3.14f),
                         rng.uniform(0.4f, 2.2f)));
    }
    scene.cameraPos = {0, 5, 14};
    scene.cameraTarget = {0, 3, 0};
    scene.lightPos = {0, 9.5f, 0};
    return scene;
}

SceneGeometry
sponzaAo(uint64_t seed)
{
    sim::Rng rng(seed);
    SceneGeometry scene;
    SceneMesh mesh;
    appendBox(mesh, {-42, -0.2f, -8}, {42, 0, 8}); // floor
    // Two colonnades of fluted columns (clusters of thin boxes).
    for (int col = -10; col <= 10; ++col) {
        for (int side = -1; side <= 1; side += 2) {
            float cx = col * 4.0f;  // colonnade span
            float cz = side * 5.0f;
            for (int f = 0; f < 6; ++f) {
                float a = 6.2831853f * f / 6.0f;
                float ox = 0.45f * std::cos(a);
                float oz = 0.45f * std::sin(a);
                appendBox(mesh, {cx + ox - 0.18f, 0, cz + oz - 0.18f},
                          {cx + ox + 0.18f, 6, cz + oz + 0.18f});
            }
            // capital + base
            appendBox(mesh, {cx - 0.9f, 5.8f, cz - 0.9f},
                      {cx + 0.9f, 6.2f, cz + 0.9f});
            appendBox(mesh, {cx - 0.9f, 0, cz - 0.9f},
                      {cx + 0.9f, 0.4f, cz + 0.9f});
        }
    }
    // Clutter: random crates.
    for (int i = 0; i < 1400; ++i) {
        Vec3 p = {rng.uniform(-38.0f, 38.0f), 0.0f,
                  rng.uniform(-4.0f, 4.0f)};
        float s = rng.uniform(0.2f, 1.0f);
        appendBox(mesh, p, p + Vec3(s, rng.uniform(0.2f, 1.4f), s));
    }
    scene.meshes.push_back(std::move(mesh));
    scene.cameraPos = {-16, 3.0f, 0};
    scene.cameraTarget = {16, 2.0f, 0};
    scene.lightPos = {0, 14, 0};
    return scene;
}

SceneGeometry
shipSh(uint64_t seed)
{
    sim::Rng rng(seed);
    SceneGeometry scene;
    SceneMesh mesh;
    // Hull: an elongated box stack.
    appendBox(mesh, {-10, 0, -2}, {10, 2, 2});
    appendBox(mesh, {-7, 2, -1.4f}, {7, 3, 1.4f});
    // Masts.
    for (float mx : {-5.0f, 0.0f, 5.0f})
        appendBox(mesh, {mx - 0.15f, 2, -0.15f}, {mx + 0.15f, 14, 0.15f});
    // Sails: large occluding quads between the masts. For shadow rays
    // these are the high-surface-area subtrees SATO visits first.
    for (float mx : {-5.0f, 0.0f, 5.0f}) {
        appendQuad(mesh, {mx - 2.2f, 4.0f, 0.35f}, {4.4f, 0, 0},
                   {0, 7.5f, 0.4f}, false);
        appendQuad(mesh, {mx - 1.6f, 3.2f, -0.75f}, {3.2f, 0, 0},
                   {0, 5.0f, -0.3f}, false);
    }
    // Rigging: thousands of long, extremely thin triangles — the
    // degenerate-primitive pattern that makes SHIP hostile to BVHs
    // (huge boxes around skinny diagonal primitives).
    for (int i = 0; i < 4000; ++i) {
        float mx = (i % 3 - 1) * 5.0f;
        Vec3 top = {mx + rng.uniform(-0.2f, 0.2f),
                    rng.uniform(8.0f, 14.0f), 0.0f};
        Vec3 deck = {rng.uniform(-9.5f, 9.5f), rng.uniform(2.0f, 3.0f),
                     rng.uniform(-1.8f, 1.8f)};
        Vec3 width = {0.012f, 0.0f, 0.012f};
        mesh.triangles.push_back({top, deck, deck + width});
        mesh.alpha.push_back(false);
    }
    scene.meshes.push_back(std::move(mesh));
    // Camera frames the hull (primary rays resolve quickly); the light
    // sits high behind the masts, so shadow rays from the deck thread
    // the whole rigging cloud — the wave SATO reorders.
    scene.cameraPos = {0, 3.5f, 26};
    scene.cameraTarget = {0, 2.5f, 0};
    scene.lightPos = {0, 34, -26};
    return scene;
}

SceneGeometry
teapotRf(uint64_t seed)
{
    sim::Rng rng(seed);
    SceneGeometry scene;
    SceneMesh mesh;
    appendBox(mesh, {-12, -0.2f, -12}, {12, 0, 12});
    appendSphereMesh(mesh, {0, 2.5f, 0}, 2.5f, 48, 96); // the "teapot"
    appendSphereMesh(mesh, {-5, 1.2f, 3}, 1.2f, 12, 24);
    appendSphereMesh(mesh, {4.5f, 0.9f, -3.5f}, 0.9f, 12, 24);
    for (int i = 0; i < 400; ++i) {
        Vec3 p = {rng.uniform(-10.0f, 10.0f), 0.0f,
                  rng.uniform(-10.0f, 10.0f)};
        float s = rng.uniform(0.2f, 0.7f);
        appendBox(mesh, p, p + Vec3(s, s, s));
    }
    scene.meshes.push_back(std::move(mesh));
    scene.cameraPos = {0, 4, 12};
    scene.cameraTarget = {0, 2, 0};
    scene.lightPos = {8, 14, 8};
    return scene;
}

SceneGeometry
wkndPt(uint64_t seed)
{
    sim::Rng rng(seed);
    SceneGeometry scene;
    // Procedural spheres, "Ray Tracing in One Weekend" cover style.
    scene.spheres.emplace_back(Vec3(0, -1000, 0), 1000.0f); // ground
    scene.spheres.emplace_back(Vec3(0, 1, 0), 1.0f);
    scene.spheres.emplace_back(Vec3(-4, 1, 0), 1.0f);
    scene.spheres.emplace_back(Vec3(4, 1, 0), 1.0f);
    for (int a = -24; a < 24; ++a) {
        for (int b = -24; b < 24; ++b) {
            Vec3 center(a + 0.9f * rng.nextFloat(), 0.2f,
                        b + 0.9f * rng.nextFloat());
            if (geom::length(center - Vec3(4, 0.2f, 0)) > 0.9f)
                scene.spheres.emplace_back(center,
                                           rng.uniform(0.15f, 0.25f));
        }
    }
    scene.cameraPos = {13, 2, 3};
    scene.cameraTarget = {0, 0.5f, 0};
    scene.fovDegrees = 30.0f;
    scene.lightPos = {20, 30, 10};
    return scene;
}

SceneGeometry
maskAm(uint64_t seed)
{
    sim::Rng rng(seed);
    SceneGeometry scene;
    SceneMesh mesh;
    appendBox(mesh, {-15, -0.2f, -15}, {15, 0, 15});
    // Foliage: thousands of small alpha-tested quads around "trunks".
    for (int tree = 0; tree < 72; ++tree) {
        Vec3 base = {rng.uniform(-12.0f, 12.0f), 0.0f,
                     rng.uniform(-12.0f, 12.0f)};
        appendBox(mesh, base - Vec3(0.2f, 0, 0.2f),
                  base + Vec3(0.2f, 4.0f, 0.2f));
        for (int leaf = 0; leaf < 180; ++leaf) {
            Vec3 p = base + Vec3(rng.uniform(-2.0f, 2.0f),
                                 rng.uniform(2.5f, 6.0f),
                                 rng.uniform(-2.0f, 2.0f));
            Vec3 u = {rng.uniform(-0.5f, 0.5f), rng.uniform(-0.2f, 0.2f),
                      rng.uniform(-0.5f, 0.5f)};
            Vec3 v = {rng.uniform(-0.3f, 0.3f), rng.uniform(0.2f, 0.6f),
                      rng.uniform(-0.3f, 0.3f)};
            appendQuad(mesh, p, u, v, true); // alpha-masked leaf card
        }
    }
    scene.meshes.push_back(std::move(mesh));
    scene.cameraPos = {0, 4, 18};
    scene.cameraTarget = {0, 3, 0};
    scene.lightPos = {10, 20, 10};
    return scene;
}

} // namespace

SceneInstance
makeInstance(uint32_t mesh, const Vec3 &t, float rot_z, float scale)
{
    SceneInstance inst;
    inst.mesh = mesh;
    float c = std::cos(rot_z), s = std::sin(rot_z);
    // objectToWorld = T * Rz * S (row-major 3x4)
    float m[12] = {scale * c, -scale * s, 0, t.x,
                   scale * s, scale * c,  0, t.y,
                   0,         0,          scale, t.z};
    std::copy(m, m + 12, inst.objectToWorld);
    // inverse: S^-1 * Rz^-1 * T^-1
    float is = 1.0f / scale;
    float inv[12] = {
        is * c,  is * s, 0, -is * (c * t.x + s * t.y),
        -is * s, is * c, 0, -is * (-s * t.x + c * t.y),
        0,       0,      is, -is * t.z};
    std::copy(inv, inv + 12, inst.worldToObject);
    return inst;
}

SceneGeometry
makeScene(SceneKind kind, uint64_t seed)
{
    switch (kind) {
      case SceneKind::CornellPt: return cornellPt(seed);
      case SceneKind::SponzaAo: return sponzaAo(seed);
      case SceneKind::ShipSh: return shipSh(seed);
      case SceneKind::TeapotRf: return teapotRf(seed);
      case SceneKind::WkndPt: return wkndPt(seed);
      case SceneKind::MaskAm: return maskAm(seed);
    }
    panic("unknown scene");
}

} // namespace tta::workloads
