/**
 * @file
 * RTNN radius-search workload (Section IV-A, [105]).
 *
 * RTNN maps fixed-radius neighbor search onto the ray-tracing pipeline:
 * data points become spheres of the search radius (their BVH boxes are
 * pre-inflated), a query is a degenerate ray at the query point, inner
 * nodes run Ray-Box tests, and the exact distance check at the leaves
 * runs in a programmable *intersection shader* on the SIMT cores — the
 * expensive part this paper offloads.
 *
 * Four configurations:
 *  - CUDA baseline: divergent per-thread BVH walk on the SIMT cores.
 *  - RTNN on the (baseline) RTA / TTA / TTA+: traversal in hardware,
 *    leaf distance checks in intersection shaders.
 *  - *RTNN (offloaded): the leaf check executes natively — the repurposed
 *    Ray-Triangle unit's Point-to-Point path on TTA, the Table III
 *    5-uop program on TTA+.
 */

#ifndef TTA_WORKLOADS_RTNN_WORKLOAD_HH
#define TTA_WORKLOADS_RTNN_WORKLOAD_HH

#include <memory>
#include <vector>

#include "api/tta_api.hh"
#include "gpu/kernel.hh"
#include "rta/traversal_spec.hh"
#include "trees/pointcloud.hh"
#include "workloads/metrics.hh"

namespace tta::workloads {

/** Accelerator-side spec for RTNN radius search. */
class RtnnSpec : public rta::TraversalSpec
{
  public:
    /**
     * @param sbvh serialized tree; carries the node layout (width,
     *        stride, quantization) the spec must decode.
     * @param offload_leaf true for the starred configurations: distance
     *        checks run natively instead of in an intersection shader.
     */
    RtnnSpec(mem::GlobalMemory &gmem, const trees::SerializedBvh &sbvh,
             uint64_t point_base, uint64_t query_base, uint64_t result_base,
             float radius, bool offload_leaf);

    void initRay(rta::RayState &ray, uint32_t lane_operand) override;
    void fetchLines(const rta::RayState &ray, rta::NodeRef ref,
                    std::vector<uint64_t> &lines) const override;
    rta::NodeOutcome processNode(rta::RayState &ray,
                                 rta::NodeRef ref) override;
    void finishRay(rta::RayState &ray) override;

    const ttaplus::Program &innerProgram() const override
    {
        return innerProg_;
    }
    const ttaplus::Program &leafProgram() const override
    {
        return leafProg_;
    }

  private:
    rta::NodeOutcome processWideInner(rta::RayState &ray, uint64_t node);

    mem::GlobalMemory *gmem_;
    trees::BvhRef root_;
    uint32_t nodeWidth_;
    uint32_t nodeStride_;
    bool quantized_;
    uint64_t pointBase_;
    uint64_t queryBase_;
    uint64_t resultBase_;
    float radius_;
    bool offloadLeaf_;
    ttaplus::Program innerProg_;
    ttaplus::Program leafProg_;
};

class RtnnWorkload
{
  public:
    /**
     * @param n_points  cloud size (the paper sweeps 32k-128k).
     * @param n_queries query count.
     * @param radius    search radius.
     */
    RtnnWorkload(size_t n_points, size_t n_queries, float radius = 1.0f,
                 uint64_t seed = 1);

    /**
     * Deep copy: clones the cloud and rebinds the copied index's cloud
     * pointer to this object's own cloud (the index would otherwise
     * dangle into the source). Runs on a copy are bit-identical to
     * runs on a freshly built workload.
     */
    RtnnWorkload(const RtnnWorkload &other);
    RtnnWorkload &operator=(const RtnnWorkload &) = delete;

    /** Serialize with the node layout selected by `cfg` (binary 64B
     *  nodes by default; wide SoA when cfg.bvhNodeWidth > 2). */
    void setup(mem::GlobalMemory &gmem, const sim::Config &cfg);
    void setup(mem::GlobalMemory &gmem) { setup(gmem, sim::Config{}); }

    /** Divergent per-thread CUDA kernel on the SIMT cores. */
    RunMetrics runBaseline(const sim::Config &cfg,
                           sim::StatRegistry &stats);

    /**
     * Hardware traversal at cfg.accelMode.
     * @param offload_leaf the starred configurations (*RTNN).
     */
    RunMetrics runAccelerated(const sim::Config &cfg,
                              sim::StatRegistry &stats, bool offload_leaf);

    size_t numQueries() const { return queries_.size(); }
    const trees::RadiusSearchIndex &index() const { return *index_; }

    static api::TtaPipeline makePipeline(bool offload_leaf);
    static gpu::KernelProgram buildBaselineKernel();

  private:
    size_t verify(const mem::GlobalMemory &gmem) const;

    trees::PointCloud cloud_;
    std::unique_ptr<trees::RadiusSearchIndex> index_;
    float radius_;
    std::vector<geom::Vec3> queries_;
    std::vector<uint32_t> expected_;

    trees::SerializedBvh sbvh_;
    uint64_t pointBase_ = 0;
    uint64_t queryBase_ = 0;
    uint64_t resultBase_ = 0;
    uint64_t stackBase_ = 0;
};

} // namespace tta::workloads

#endif // TTA_WORKLOADS_RTNN_WORKLOAD_HH
