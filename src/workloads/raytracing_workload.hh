/**
 * @file
 * LumiBench-like ray-tracing workload (Sections IV-A / V-B).
 *
 * Renders procedural scenes through the accelerator in *waves*: primary
 * rays, then workload-specific secondary rays (bounces, AO, shadow,
 * reflection) derived host-side from reference results so every hardware
 * level traces identical ray sets and results stay comparable.
 *
 * Evaluated configurations:
 *  - BaselineRta: fixed-function Ray-Box/Ray-Triangle + Transform;
 *    ray-sphere (WKND_PT) and alpha-masked leaves bounce to intersection
 *    shaders. The Fig 16 "1.0" reference.
 *  - TtaPlus: every node test as a uop program (the Fig 16 ~8% average
 *    slowdown from serialized OP units + interconnect).
 *  - *WKND_PT: TtaPlus with RtOptions::offloadSpheres — ray-sphere tests
 *    execute natively in the OP units (SQRT unit), eliminating the
 *    intersection shader.
 *  - *SHIP_SH: TtaPlus with RtOptions::sato — Surface Area Traversal
 *    Order for any-hit rays, a software traversal-order optimization the
 *    programmable OP Dest Tables enable.
 *
 * A divergent SIMT-core path tracer kernel provides the "GPU without
 * RTA" datapoint for Fig 1 / Fig 6 (single-level triangle scenes).
 */

#ifndef TTA_WORKLOADS_RAYTRACING_WORKLOAD_HH
#define TTA_WORKLOADS_RAYTRACING_WORKLOAD_HH

#include <memory>
#include <vector>

#include "api/tta_api.hh"
#include "geom/ray.hh"
#include "rta/traversal_spec.hh"
#include "trees/bvh.hh"
#include "workloads/metrics.hh"
#include "workloads/scenes.hh"

namespace tta::workloads {

struct RtOptions
{
    bool sato = false;           //!< *SHIP_SH
    bool offloadSpheres = false; //!< *WKND_PT
};

/** One traced ray plus its traversal mode. */
struct RtRay
{
    geom::Ray ray;
    bool anyHit = false;
};

/** Host-side reference result for one ray. */
struct RtHit
{
    bool hit = false;
    float t = 0.0f;
    uint32_t prim = UINT32_MAX;
    uint32_t instance = UINT32_MAX;
};

/** Serialized scene image + host reference intersector. */
class RtScene
{
  public:
    RtScene(SceneKind kind, uint64_t seed);

    /** Serialize all BLASes, primitives, TLAS and instance records. */
    void serialize(mem::GlobalMemory &gmem);

    const SceneGeometry &geometry() const { return geometry_; }
    SceneKind kind() const { return kind_; }

    /** Root reference a traversal starts from (TLAS or sole BLAS). */
    rta::NodeRef rootRef() const;

    RtHit closestHit(const geom::Ray &ray) const;
    bool anyHit(const geom::Ray &ray) const;

    /** Deterministic alpha test shared by reference and spec. */
    static bool alphaPass(uint32_t mesh, uint32_t prim);

    // --- Serialized layout (valid after serialize()) ---------------------
    struct MeshImage
    {
        trees::SerializedBvh bvh;
        uint64_t triBase = 0;
    };
    const std::vector<MeshImage> &meshImages() const { return meshes_; }
    uint64_t sphereBase() const { return sphereBase_; }
    uint64_t instanceBase() const { return instanceBase_; }
    const trees::Bvh *tlas() const { return tlas_.get(); }

    /** Node-reference encoding helpers (see RtSpec). */
    static constexpr uint64_t kEnterInstanceBit = 1ull << 33;
    static constexpr uint64_t kRestoreBit = 1ull << 34;

    const trees::Bvh &meshBvh(uint32_t m) const { return meshBvhs_[m]; }

  private:
    SceneKind kind_;
    SceneGeometry geometry_;
    std::vector<trees::Bvh> meshBvhs_;
    std::unique_ptr<trees::Bvh> tlas_;
    std::vector<MeshImage> meshes_;
    trees::SerializedBvh tlasImage_;
    uint64_t sphereBase_ = 0;
    uint64_t instanceBase_ = 0;
    trees::SerializedBvh sphereBvh_;
};

/** Accelerator-side spec: full RT traversal with two-level support. */
class RtSpec : public rta::TraversalSpec
{
  public:
    RtSpec(mem::GlobalMemory &gmem, const RtScene &scene,
           const std::vector<RtRay> &rays, uint64_t result_base,
           RtOptions options);

    void initRay(rta::RayState &ray, uint32_t lane_operand) override;
    void fetchLines(const rta::RayState &ray, rta::NodeRef ref,
                    std::vector<uint64_t> &lines) const override;
    rta::NodeOutcome processNode(rta::RayState &ray,
                                 rta::NodeRef ref) override;
    void finishRay(rta::RayState &ray) override;

    const ttaplus::Program &innerProgram() const override
    {
        return innerProg_;
    }
    const ttaplus::Program &leafProgram() const override
    {
        return leafProg_;
    }

  private:
    void processTriangleLeaf(rta::RayState &ray, uint64_t leaf,
                             rta::NodeOutcome &out);
    void processSphereLeaf(rta::RayState &ray, uint64_t leaf,
                           rta::NodeOutcome &out);

    mem::GlobalMemory *gmem_;
    const RtScene *scene_;
    const std::vector<RtRay> *rays_;
    uint64_t resultBase_;
    RtOptions options_;
    ttaplus::Program innerProg_;
    ttaplus::Program leafProg_;
};

class RayTracingWorkload
{
  public:
    RayTracingWorkload(SceneKind kind, uint32_t width = 64,
                       uint32_t height = 64, uint64_t seed = 1);

    /** Run all ray waves through the accelerator at cfg.accelMode. */
    RunMetrics runAccelerated(const sim::Config &cfg,
                              sim::StatRegistry &stats,
                              RtOptions options = {});

    /** Divergent path on the SIMT cores (primary wave only); only valid
     *  for single-level triangle scenes. */
    RunMetrics runBaselineCores(const sim::Config &cfg,
                                sim::StatRegistry &stats);

    SceneKind kind() const { return kind_; }
    size_t totalRays() const;
    const RtScene &scene() const { return *scene_; }

    /**
     * Grayscale depth image from the primary-wave reference hits
     * (the same values every verified device run reproduced).
     * @param pixels width*height bytes, row-major.
     */
    void renderDepth(uint8_t *pixels, float *tmin_out = nullptr,
                     float *tmax_out = nullptr) const;

    static api::TtaPipeline makePipeline(SceneKind kind,
                                         const RtOptions &options);
    static gpu::KernelProgram buildBaselineKernel();

  private:
    std::vector<RtRay> primaryRays() const;
    /** Derive the next wave from reference results; empty when done. */
    std::vector<RtRay> nextWave(int wave, const std::vector<RtRay> &prev,
                                const std::vector<RtHit> &hits) const;

    SceneKind kind_;
    uint32_t width_;
    uint32_t height_;
    uint64_t seed_;
    std::unique_ptr<RtScene> scene_;
    std::vector<std::vector<RtRay>> waves_;
    std::vector<std::vector<RtHit>> waveHits_; //!< reference per wave
};

} // namespace tta::workloads

#endif // TTA_WORKLOADS_RAYTRACING_WORKLOAD_HH
