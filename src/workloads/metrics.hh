/**
 * @file
 * Per-run measurement snapshot shared by all benches: the quantities the
 * paper's figures plot (cycles, SIMT efficiency, DRAM utilization,
 * dynamic instruction breakdown, energy).
 */

#ifndef TTA_WORKLOADS_METRICS_HH
#define TTA_WORKLOADS_METRICS_HH

#include <cstdint>
#include <ostream>

#include "power/energy.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"

namespace tta::workloads {

struct RunMetrics
{
    sim::Cycle cycles = 0;

    /** Active lanes / (issued insts x warp size) on the SIMT cores. */
    double simtEfficiency = 0.0;
    double dramUtilization = 0.0;

    // Dynamic warp-level instruction counts (Fig 20 categories).
    uint64_t instsAlu = 0;
    uint64_t instsSfu = 0;
    uint64_t instsMem = 0;
    uint64_t instsCtrl = 0;
    uint64_t instsAccel = 0;
    uint64_t totalInsts() const
    {
        return instsAlu + instsSfu + instsMem + instsCtrl + instsAccel;
    }

    uint64_t flops = 0;
    uint64_t dramBytes = 0;
    uint64_t nodesVisited = 0;
    /** Demand node-fetch traffic issued by the RTA memory scheduler
     *  (excludes child prefetches); scales with the node stride, so the
     *  node-width sweep reads it directly. */
    uint64_t nodeBytesFetched = 0;

    power::EnergyBreakdown energy;

    /** Arithmetic intensity for the Fig 6 roofline (FLOP / DRAM byte). */
    double
    arithmeticIntensity() const
    {
        return dramBytes ? static_cast<double>(flops) / dramBytes : 0.0;
    }
};

/** Snapshot metrics from a finished run's statistics registry. */
inline RunMetrics
collectMetrics(const sim::StatRegistry &stats, sim::Cycle cycles,
               double dram_utilization)
{
    RunMetrics m;
    m.cycles = cycles;
    uint64_t issued = stats.counterValue("core.issued");
    uint64_t active = stats.counterValue("core.active_lane_sum");
    m.simtEfficiency =
        issued ? static_cast<double>(active) / (issued * 32.0) : 0.0;
    m.dramUtilization = dram_utilization;
    m.instsAlu = stats.counterValue("core.insts_alu");
    m.instsSfu = stats.counterValue("core.insts_sfu");
    m.instsMem = stats.counterValue("core.insts_mem");
    m.instsCtrl = stats.counterValue("core.insts_ctrl");
    m.instsAccel = stats.counterValue("core.insts_accel");
    m.flops = stats.counterValue("core.flops");
    m.dramBytes = stats.counterValue("dram.bytes_read") +
                  stats.counterValue("dram.bytes_written");
    m.nodesVisited = stats.counterValue("rta.nodes_visited");
    m.nodeBytesFetched = stats.counterValue("rta.node_bytes_fetched");
    m.energy = power::EnergyModel::compute(stats);
    return m;
}

} // namespace tta::workloads

#endif // TTA_WORKLOADS_METRICS_HH
