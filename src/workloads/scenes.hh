/**
 * @file
 * Procedural scene generators for the LumiBench-like ray-tracing suite
 * (substitution for the LumiBench assets; see DESIGN.md).
 *
 * Six scenes mirror the paper's representative subset:
 *  - CORNELL_PT: instanced boxes in a Cornell-style room, path tracing.
 *  - SPONZA_AO: colonnade of prisms + floor, ambient-occlusion rays.
 *  - SHIP_SH:   long thin "rigging" triangles (the BVH-pathological
 *               geometry SATO targets), shadow rays.
 *  - TEAPOT_RF: tessellated sphere on a floor, mirror reflections.
 *  - WKND_PT:   procedurally generated spheres ("Ray Tracing in One
 *               Weekend" style) needing ray-sphere intersection shaders.
 *  - MASK_AM:   foliage quads with alpha masking (any-hit shaders).
 */

#ifndef TTA_WORKLOADS_SCENES_HH
#define TTA_WORKLOADS_SCENES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "geom/vec.hh"

namespace tta::workloads {

enum class SceneKind
{
    CornellPt,
    SponzaAo,
    ShipSh,
    TeapotRf,
    WkndPt,
    MaskAm,
};

const char *sceneName(SceneKind kind);
/** Ray workload type the scene is evaluated with. */
enum class RayWorkload
{
    PathTrace,   //!< primary + bounce waves
    AmbientOcclusion,
    Shadow,
    Reflection,
    AlphaMask,   //!< primary + shadow with alpha-tested geometry
};
RayWorkload sceneWorkload(SceneKind kind);

struct Triangle
{
    geom::Vec3 v0, v1, v2;
};

struct SceneMesh
{
    std::vector<Triangle> triangles;
    /** Per-triangle alpha-mask flag (any-hit shader required). */
    std::vector<uint8_t> alpha;
};

struct SceneInstance
{
    uint32_t mesh = 0;
    float objectToWorld[12]; //!< row-major 3x4
    float worldToObject[12];
};

struct SceneGeometry
{
    std::vector<SceneMesh> meshes;
    /** Empty => single-level: meshes[0] in world space. */
    std::vector<SceneInstance> instances;
    /** Sphere scene (WKND): centers + radii; meshes empty. */
    std::vector<std::pair<geom::Vec3, float>> spheres;

    geom::Vec3 cameraPos;
    geom::Vec3 cameraTarget;
    float fovDegrees = 55.0f;
    geom::Vec3 lightPos;

    bool twoLevel() const { return !instances.empty(); }
    bool isSphereScene() const { return !spheres.empty(); }
    size_t primitiveCount() const;
};

/** Build a scene deterministically. */
SceneGeometry makeScene(SceneKind kind, uint64_t seed = 1);

/** Compose an instance transform (translate * rotZ * scale) + inverse. */
SceneInstance makeInstance(uint32_t mesh, const geom::Vec3 &translate,
                           float rot_z, float scale);

} // namespace tta::workloads

#endif // TTA_WORKLOADS_SCENES_HH
