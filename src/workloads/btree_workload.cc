#include "workloads/btree_workload.hh"

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "tta/query_key_unit.hh"

namespace tta::workloads {

using trees::BTreeNodeLayout;

namespace {
constexpr uint64_t kLineMask = ~63ull; //!< nodes are 64B aligned
} // namespace

BTreeSpec::BTreeSpec(mem::GlobalMemory &gmem, uint64_t root,
                     uint64_t query_base, uint64_t result_base)
    : gmem_(&gmem), root_(root), queryBase_(query_base),
      resultBase_(result_base),
      innerProg_(ttaplus::programs::queryKeyInner()),
      leafProg_(ttaplus::programs::queryKeyLeaf())
{
}

void
BTreeSpec::initRay(rta::RayState &ray, uint32_t lane_operand)
{
    ray.queryId = lane_operand;
    ray.query = gmem_->read<float>(queryBase_ + 4ull * lane_operand);
    ray.found = false;
    ray.stack.push_back(root_);
}

void
BTreeSpec::fetchLines(const rta::RayState & /*ray*/, rta::NodeRef ref,
                      std::vector<uint64_t> &lines) const
{
    lines.push_back(ref & kLineMask);
}

rta::NodeOutcome
BTreeSpec::processNode(rta::RayState &ray, rta::NodeRef ref)
{
    using L = BTreeNodeLayout;
    uint32_t flags = gmem_->read<uint32_t>(ref + L::kOffFlags);
    bool leaf = flags & L::kLeafFlag;
    bool router = flags & 2u;
    uint32_t child_base = gmem_->read<uint32_t>(ref + L::kOffChildBase);
    float keys[L::kWidth];
    for (uint32_t i = 0; i < L::kWidth; ++i)
        keys[i] = gmem_->read<float>(ref + L::kOffKeys + 4 * i);

    rta::NodeOutcome out;
    out.op = rta::OpKind::QueryKey;
    out.isLeaf = leaf;

    tta::QueryKeyOutput qk = tta::queryKeyUnit(ray.query, keys);
    if (qk.found) {
        if (leaf || !router) {
            ray.found = true;
            return out; // traversal terminates (nothing pushed)
        }
        // B+Tree router equality: the key lives in the right subtree.
        uint64_t next = child_base +
            static_cast<uint64_t>(qk.matchIndex + 1) * L::kNodeBytes;
        ray.stack.push_back(next);
        return out;
    }
    if (!leaf) {
        uint64_t next = child_base +
            static_cast<uint64_t>(qk.childIndex) * L::kNodeBytes;
        ray.stack.push_back(next);
    }
    return out;
}

void
BTreeSpec::finishRay(rta::RayState &ray)
{
    gmem_->write<uint32_t>(resultBase_ + 4ull * ray.queryId,
                           ray.found ? 1u : 0u);
}

BTreeWorkload::BTreeWorkload(trees::BTreeKind kind, size_t n_keys,
                             size_t n_queries, uint64_t seed,
                             double hit_rate)
{
    sim::Rng rng(seed);
    // Keys are even integers as floats (exactly representable up to 2^24),
    // so "miss" queries can be odd integers that are guaranteed absent.
    std::vector<float> keys(n_keys);
    for (size_t i = 0; i < n_keys; ++i)
        keys[i] = 2.0f * static_cast<float>(i + 1);
    tree_ = std::make_unique<trees::BTree>(kind, keys);

    queries_.resize(n_queries);
    expected_.resize(n_queries);
    for (size_t q = 0; q < n_queries; ++q) {
        bool hit = rng.nextDouble() < hit_rate;
        if (hit) {
            queries_[q] = keys[rng.nextBounded(n_keys)];
        } else {
            queries_[q] =
                2.0f * static_cast<float>(rng.nextBounded(n_keys)) + 1.0f;
        }
        expected_[q] = tree_->search(queries_[q]).found ? 1 : 0;
    }
}

BTreeWorkload::BTreeWorkload(const BTreeWorkload &other)
    : tree_(std::make_unique<trees::BTree>(*other.tree_)),
      queries_(other.queries_), expected_(other.expected_),
      deviceResults_(other.deviceResults_), rootAddr_(other.rootAddr_),
      queryBase_(other.queryBase_), resultBase_(other.resultBase_)
{}

void
BTreeWorkload::setup(mem::GlobalMemory &gmem)
{
    rootAddr_ = tree_->serialize(gmem);
    queryBase_ = gmem.alloc(queries_.size() * 4, 128);
    resultBase_ = gmem.alloc(queries_.size() * 4, 128);
    for (size_t q = 0; q < queries_.size(); ++q) {
        gmem.write<float>(queryBase_ + 4 * q, queries_[q]);
        gmem.write<uint32_t>(resultBase_ + 4 * q, 0xdeadbeef);
    }
}

gpu::KernelProgram
BTreeWorkload::buildBaselineKernel()
{
    using namespace ::tta::gpu;
    KernelBuilder b("btree_search_baseline");
    // Params: 0 = queryBase, 1 = resultBase, 2 = rootAddr.
    // r1 tid, r2 query, r3 node, r4 found, r12 leaf, r13 child,
    // r14 matchable, r15 resolved.
    b.tid(1);
    b.param(20, 0);
    b.ishli(21, 1, 2);
    b.iadd(21, 20, 21);
    b.load(2, 21); // query value
    b.param(3, 2); // node = root
    b.movi(4, 0);  // found = 0

    b.doWhile([&]() -> Reg {
        b.load(8, 3, 0); // flags
        b.load(9, 3, 4); // childBase
        b.movi(22, 1);
        b.iand(12, 8, 22); // leaf
        b.ishri(23, 8, 1);
        b.iand(23, 23, 22); // router
        b.isub(24, 22, 23);
        b.ior(14, 12, 24); // matchable = leaf || !router
        b.movi(10, 0);     // i = 0
        b.movi(13, 0);     // child = 0
        b.movi(15, 0);     // resolved = 0

        // Inner loop over the (up to) nine keys: Algorithm 1.
        b.doWhile([&]() -> Reg {
            b.ishli(11, 10, 2);
            b.iadd(11, 11, 3);
            b.load(6, 11, BTreeNodeLayout::kOffKeys); // key[i]
            b.seteqf(7, 6, 2);
            b.iand(7, 7, 14); // equality counts only when matchable
            b.ifThen(7, [&]() {
                b.movi(4, 1);  // found
                b.movi(15, 1); // resolved
            });
            b.setltf(16, 2, 6); // query < key
            b.movi(17, 1);
            b.isub(18, 17, 15); // !resolved
            b.iand(16, 16, 18);
            b.ifThen(16, [&]() {
                b.mov(13, 10); // child = i
                b.movi(15, 1);
            });
            b.iaddi(10, 10, 1);
            // continue while !resolved && i < 9
            b.movi(19, 9);
            b.setlti(25, 10, 19);
            b.isub(26, 17, 15);
            b.iand(25, 25, 26);
            return 25;
        });

        // done when found or at a leaf; else descend.
        b.ior(27, 4, 12);
        b.movi(22, 1);
        b.isub(28, 22, 27); // continue flag
        b.ifThen(28, [&]() {
            b.imuli(29, 13, BTreeNodeLayout::kNodeBytes);
            b.iadd(3, 9, 29);
        });
        return 28;
    });

    // result[tid] = found
    b.param(30, 1);
    b.ishli(31, 1, 2);
    b.iadd(30, 30, 31);
    b.store(30, 4);
    b.exit();
    return b.build();
}

api::TtaPipeline
BTreeWorkload::makePipeline()
{
    static const ttaplus::Program inner = ttaplus::programs::queryKeyInner();
    static const ttaplus::Program leaf = ttaplus::programs::queryKeyLeaf();
    api::TtaPipelineDesc desc("btree");
    desc.decodeR({4, 4})          // query key, found flag
        .decodeI({4, 4, 36})      // flags, childBase, keys[9]
        .decodeL({4, 4, 36})
        .configI(&inner)
        .configL(&leaf);
    tta::TerminationConfig term;
    term.watch = tta::TerminationConfig::Watch::StackEmptyOnly;
    desc.configTerminate(term);
    return api::TtaPipeline::create(desc);
}

RunMetrics
BTreeWorkload::runBaseline(const sim::Config &cfg, sim::StatRegistry &stats)
{
    gpu::Gpu device(cfg, stats);
    setup(device.memory());
    gpu::KernelProgram kernel = buildBaselineKernel();
    std::vector<uint32_t> params = {static_cast<uint32_t>(queryBase_),
                                    static_cast<uint32_t>(resultBase_),
                                    static_cast<uint32_t>(rootAddr_)};
    sim::Cycle cycles =
        device.runKernel(kernel, queries_.size(), params);
    captureResults(device.memory());
    size_t bad = verify(device.memory());
    panic_if(bad != 0, "baseline B-Tree kernel produced %zu mismatches",
             bad);
    return collectMetrics(stats, cycles, device.memsys().dramUtilization());
}

RunMetrics
BTreeWorkload::runAccelerated(const sim::Config &cfg,
                              sim::StatRegistry &stats)
{
    api::TtaDevice device(cfg, stats);
    setup(device.memory());
    BTreeSpec spec(device.memory(), rootAddr_, queryBase_, resultBase_);
    api::TtaPipeline pipeline = makePipeline();
    device.bindPipeline(pipeline, &spec);
    sim::Cycle cycles = device.cmdTraverseTree(queries_.size());
    captureResults(device.memory());
    size_t bad = verify(device.memory());
    panic_if(bad != 0, "accelerated B-Tree run produced %zu mismatches",
             bad);
    return collectMetrics(stats, cycles,
                          device.gpu().memsys().dramUtilization());
}

void
BTreeWorkload::captureResults(const mem::GlobalMemory &gmem)
{
    deviceResults_.resize(queries_.size());
    for (size_t q = 0; q < queries_.size(); ++q)
        deviceResults_[q] = gmem.read<uint32_t>(resultBase_ + 4 * q);
}

size_t
BTreeWorkload::verify(const mem::GlobalMemory &gmem) const
{
    size_t mismatches = 0;
    for (size_t q = 0; q < queries_.size(); ++q) {
        uint32_t got = gmem.read<uint32_t>(resultBase_ + 4 * q);
        if (got != expected_[q])
            ++mismatches;
    }
    return mismatches;
}

} // namespace tta::workloads
