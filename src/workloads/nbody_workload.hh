/**
 * @file
 * Barnes-Hut N-Body workload, 2D and 3D (Section IV-A).
 *
 * The force-computation kernel traverses the quad/octree per body: inner
 * nodes run the Point-to-Point distance test (Algorithm 2) against the
 * node's opening radius; approximated nodes and leaf bodies contribute
 * softened gravitational force terms that need SQRT (TTA bounces them to
 * the SM as shader-style work; TTA+ executes them as the Table III force
 * leaf program).
 *
 * The kernel-fusion experiment (Section V-A) co-schedules the traversal
 * launcher with the integration kernel so the general-purpose cores work
 * while the accelerator traverses — the paper's additional 1.2x.
 */

#ifndef TTA_WORKLOADS_NBODY_WORKLOAD_HH
#define TTA_WORKLOADS_NBODY_WORKLOAD_HH

#include <memory>
#include <vector>

#include "api/tta_api.hh"
#include "gpu/kernel.hh"
#include "rta/traversal_spec.hh"
#include "trees/octree.hh"
#include "workloads/metrics.hh"

namespace tta::workloads {

/** Accelerator-side functional spec for the Barnes-Hut force pass. */
class NBodySpec : public rta::TraversalSpec
{
  public:
    static constexpr float kSoftening = 0.05f;

    NBodySpec(mem::GlobalMemory &gmem, uint64_t root, uint64_t body_base,
              uint64_t result_base);

    void initRay(rta::RayState &ray, uint32_t lane_operand) override;
    void fetchLines(const rta::RayState &ray, rta::NodeRef ref,
                    std::vector<uint64_t> &lines) const override;
    rta::NodeOutcome processNode(rta::RayState &ray,
                                 rta::NodeRef ref) override;
    void finishRay(rta::RayState &ray) override;

    const ttaplus::Program &innerProgram() const override
    {
        return innerProg_;
    }
    const ttaplus::Program &leafProgram() const override
    {
        return leafProg_;
    }

  private:
    mem::GlobalMemory *gmem_;
    uint64_t root_;
    uint64_t bodyBase_;
    uint64_t resultBase_;
    ttaplus::Program innerProg_;
    ttaplus::Program leafProg_;
};

class NBodyWorkload
{
  public:
    /**
     * @param dims    2 or 3.
     * @param n_bodies particle count.
     * @param seed    RNG seed.
     * @param theta   Barnes-Hut opening parameter.
     */
    NBodyWorkload(int dims, size_t n_bodies, uint64_t seed = 1,
                  float theta = 0.75f);

    void setup(mem::GlobalMemory &gmem);

    /** Baseline: traversal + force on the SIMT cores, then integration. */
    RunMetrics runBaseline(const sim::Config &cfg,
                           sim::StatRegistry &stats);

    /**
     * Accelerated force pass through the TTA API, then the integration
     * kernel on the cores.
     * @param fused co-schedule integration with the traversal
     *              (Section V-A kernel merge experiment).
     */
    RunMetrics runAccelerated(const sim::Config &cfg,
                              sim::StatRegistry &stats, bool fused = false);

    /** Mismatched acceleration results in the last run. */
    size_t lastMismatches() const { return lastMismatches_; }

    const trees::BarnesHutTree &tree() const { return *tree_; }
    size_t numBodies() const { return tree_->numBodies(); }

    static api::TtaPipeline makePipeline(int dims);
    static gpu::KernelProgram buildBaselineKernel();
    static gpu::KernelProgram buildIntegrationKernel();

  private:
    size_t verify(const mem::GlobalMemory &gmem,
                  const std::vector<geom::Vec3> &expected) const;
    void computeWarpUnionReference();

    int dims_;
    std::unique_ptr<trees::BarnesHutTree> tree_;
    std::vector<geom::Vec3> expected_;      //!< per-query reference
    std::vector<geom::Vec3> expectedWarp_;  //!< warp-union reference
    uint64_t rootAddr_ = 0;
    uint64_t resultBase_ = 0;
    uint64_t stackBase_ = 0;
    uint64_t velBase_ = 0;
    uint64_t posOutBase_ = 0;
    size_t lastMismatches_ = 0;
};

} // namespace tta::workloads

#endif // TTA_WORKLOADS_NBODY_WORKLOAD_HH
