/**
 * @file
 * R-Tree spatial range-query workload (extension beyond the paper's
 * evaluation; the paper's introduction motivates R-Trees explicitly).
 *
 * Queries count the indexed rectangles overlapping a query window. The
 * inner/leaf test — per-axis interval overlap — runs on the TTA's
 * min/max comparator datapath (the same hardware the Query-Key unit
 * repurposes; a 2D rectangle overlap is a degenerate Ray-Box test) and
 * as a 14-uop Vec3CMP/Logical program on TTA+.
 */

#ifndef TTA_WORKLOADS_RTREE_WORKLOAD_HH
#define TTA_WORKLOADS_RTREE_WORKLOAD_HH

#include <memory>
#include <vector>

#include "api/tta_api.hh"
#include "gpu/kernel.hh"
#include "rta/traversal_spec.hh"
#include "trees/rtree.hh"
#include "workloads/metrics.hh"

namespace tta::workloads {

/** Accelerator-side spec for R-Tree range queries. */
class RTreeSpec : public rta::TraversalSpec
{
  public:
    /** @param soa nodes use the SoA fanout-8 layout (RTreeNodeLayoutSoa)
     *        and one rectOverlapBatch call per node. */
    RTreeSpec(mem::GlobalMemory &gmem, uint64_t root, uint64_t query_base,
              uint64_t result_base, bool soa = false);

    void initRay(rta::RayState &ray, uint32_t lane_operand) override;
    void fetchLines(const rta::RayState &ray, rta::NodeRef ref,
                    std::vector<uint64_t> &lines) const override;
    rta::NodeOutcome processNode(rta::RayState &ray,
                                 rta::NodeRef ref) override;
    void finishRay(rta::RayState &ray) override;

    const ttaplus::Program &innerProgram() const override
    {
        return prog_;
    }
    const ttaplus::Program &leafProgram() const override { return prog_; }

  private:
    rta::NodeOutcome processNodeSoa(rta::RayState &ray, rta::NodeRef ref);

    mem::GlobalMemory *gmem_;
    uint64_t root_;
    uint64_t queryBase_;
    uint64_t resultBase_;
    bool soa_;
    ttaplus::Program prog_;
};

class RTreeWorkload
{
  public:
    /**
     * @param n_objects indexed rectangles (clustered map-like layout).
     * @param n_queries range queries.
     * @param query_extent half-size of the query windows.
     */
    RTreeWorkload(size_t n_objects, size_t n_queries,
                  float query_extent = 2.0f, uint64_t seed = 1);

    /** Serialize with the layout selected by `cfg` (AoS fanout-7 by
     *  default; SoA fanout-8 when cfg.rtreeSoa — the index is rebuilt
     *  at fanout 8 from the same input objects). */
    void setup(mem::GlobalMemory &gmem, const sim::Config &cfg);
    void setup(mem::GlobalMemory &gmem) { setup(gmem, sim::Config{}); }

    RunMetrics runBaseline(const sim::Config &cfg,
                           sim::StatRegistry &stats);
    RunMetrics runAccelerated(const sim::Config &cfg,
                              sim::StatRegistry &stats);

    const trees::RTree &tree() const { return *tree_; }
    size_t numQueries() const { return queries_.size(); }
    const std::vector<trees::Rect2D> &queries() const { return queries_; }

    /** Device-computed overlap counts captured from simulated memory by
     *  the most recent run, in query order (for differential-oracle
     *  tests against an independent reference). */
    const std::vector<uint32_t> &deviceResults() const
    {
        return deviceResults_;
    }

    static api::TtaPipeline makePipeline();
    static gpu::KernelProgram buildBaselineKernel();

  private:
    size_t verify(const mem::GlobalMemory &gmem) const;
    void captureResults(const mem::GlobalMemory &gmem);

    std::unique_ptr<trees::RTree> tree_;
    std::unique_ptr<trees::RTree> soaTree_; //!< fanout-8 rebuild (lazy)
    std::vector<trees::Rect2D> inputObjects_; //!< pre-STR object order
    std::vector<trees::Rect2D> queries_;
    std::vector<uint32_t> expected_;
    std::vector<uint32_t> deviceResults_;
    uint64_t rootAddr_ = 0;
    uint64_t queryBase_ = 0;
    uint64_t resultBase_ = 0;
    uint64_t stackBase_ = 0;
};

} // namespace tta::workloads

#endif // TTA_WORKLOADS_RTREE_WORKLOAD_HH
