#include "workloads/nbody_workload.hh"

#include <cmath>

#include "geom/intersect.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace tta::workloads {

using trees::BhBodyLayout;
using trees::BhNodeLayout;

namespace {

constexpr uint32_t kStackBytesPerThread = 1024; //!< 256 entries
constexpr float kDt = 0.01f;

uint32_t
floatBits(float f)
{
    uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    return bits;
}

/** Cover [base, base+bytes) with line addresses. */
void
coverLines(uint64_t base, uint64_t bytes, std::vector<uint64_t> &lines)
{
    constexpr uint64_t kLine = 128;
    uint64_t first = base & ~(kLine - 1);
    uint64_t last = (base + bytes - 1) & ~(kLine - 1);
    for (uint64_t line = first; line <= last; line += kLine)
        lines.push_back(line);
}

} // namespace

NBodySpec::NBodySpec(mem::GlobalMemory &gmem, uint64_t root,
                     uint64_t body_base, uint64_t result_base)
    : gmem_(&gmem), root_(root), bodyBase_(body_base),
      resultBase_(result_base),
      innerProg_(ttaplus::programs::pointDistInner()),
      leafProg_(ttaplus::programs::nbodyForceLeaf())
{
}

void
NBodySpec::initRay(rta::RayState &ray, uint32_t lane_operand)
{
    ray.queryId = lane_operand;
    uint64_t addr = bodyBase_ +
        static_cast<uint64_t>(lane_operand) * BhBodyLayout::kBodyBytes;
    ray.point = {gmem_->read<float>(addr + 0), gmem_->read<float>(addr + 4),
                 gmem_->read<float>(addr + 8)};
    ray.accum = geom::Vec3(0.0f);
    ray.stack.push_back(root_);
}

void
NBodySpec::fetchLines(const rta::RayState & /*ray*/, rta::NodeRef ref,
                      std::vector<uint64_t> &lines) const
{
    lines.push_back(ref & ~127ull);
    uint32_t flags = gmem_->read<uint32_t>(ref + BhNodeLayout::kOffFlags);
    if (flags & BhNodeLayout::kLeafFlag) {
        uint32_t count = (flags >> 16) & 0xff;
        uint32_t body_base =
            gmem_->read<uint32_t>(ref + BhNodeLayout::kOffBodyBase);
        if (count > 0)
            coverLines(body_base,
                       static_cast<uint64_t>(count) *
                           BhBodyLayout::kBodyBytes,
                       lines);
    }
}

rta::NodeOutcome
NBodySpec::processNode(rta::RayState &ray, rta::NodeRef ref)
{
    using L = BhNodeLayout;
    uint32_t flags = gmem_->read<uint32_t>(ref + L::kOffFlags);
    bool leaf = flags & L::kLeafFlag;
    float eps2 = kSoftening * kSoftening;

    rta::NodeOutcome out;
    auto accumulate = [&](const geom::Vec3 &target, float mass) {
        geom::Vec3 dr = target - ray.point;
        float d2 = geom::dot(dr, dr);
        if (d2 == 0.0f)
            return false; // self-interaction
        float inv = 1.0f / std::sqrt(d2 + eps2);
        float inv3 = inv * inv * inv;
        ray.accum += dr * (mass * inv3);
        return true;
    };

    if (leaf) {
        uint32_t count = (flags >> 16) & 0xff;
        uint32_t body_base = gmem_->read<uint32_t>(ref + L::kOffBodyBase);
        for (uint32_t i = 0; i < count; ++i) {
            uint64_t addr = body_base +
                static_cast<uint64_t>(i) * BhBodyLayout::kBodyBytes;
            geom::Vec3 pos = {gmem_->read<float>(addr + 0),
                              gmem_->read<float>(addr + 4),
                              gmem_->read<float>(addr + 8)};
            accumulate(pos, gmem_->read<float>(addr + 12));
        }
        out.op = rta::OpKind::ForceLeaf;
        out.isLeaf = true;
        out.opCount = std::max(1u, count);
        return out;
    }

    geom::Vec3 com = {gmem_->read<float>(ref + L::kOffCom + 0),
                      gmem_->read<float>(ref + L::kOffCom + 4),
                      gmem_->read<float>(ref + L::kOffCom + 8)};
    float mass = gmem_->read<float>(ref + L::kOffMass);
    float open_r = gmem_->read<float>(ref + L::kOffOpenRadius);
    uint32_t child_base = gmem_->read<uint32_t>(ref + L::kOffChildBase);
    uint32_t child_count = (flags >> 8) & 0xff;

    out.op = rta::OpKind::PointDist;
    out.isLeaf = false;
    if (geom::pointWithinRadius(ray.point, com, open_r)) {
        for (uint32_t c = 0; c < child_count; ++c) {
            ray.stack.push_back(child_base +
                                static_cast<uint64_t>(c) * L::kNodeBytes);
        }
    } else {
        accumulate(com, mass);
        out.auxForceOps = 1; // the approximation's force term needs SQRT
    }
    return out;
}

void
NBodySpec::finishRay(rta::RayState &ray)
{
    uint64_t addr = resultBase_ + 12ull * ray.queryId;
    gmem_->write<float>(addr + 0, ray.accum.x);
    gmem_->write<float>(addr + 4, ray.accum.y);
    gmem_->write<float>(addr + 8, ray.accum.z);
}

NBodyWorkload::NBodyWorkload(int dims, size_t n_bodies, uint64_t seed,
                             float theta)
    : dims_(dims)
{
    sim::Rng rng(seed);
    std::vector<trees::BhBody> bodies;
    bodies.reserve(n_bodies);
    // Two dense clusters plus a diffuse halo: a galaxy-merger-like
    // distribution that exercises both deep and shallow traversals.
    for (size_t i = 0; i < n_bodies; ++i) {
        trees::BhBody b;
        float pick = rng.nextFloat();
        geom::Vec3 center = pick < 0.4f ? geom::Vec3(-4.0f, 0.0f, 0.0f)
                            : pick < 0.8f ? geom::Vec3(4.0f, 2.0f, 1.0f)
                                          : geom::Vec3(0.0f);
        float spread = pick < 0.8f ? 1.2f : 8.0f;
        b.pos = {center.x + spread * rng.gaussian(),
                 center.y + spread * rng.gaussian(),
                 dims_ == 3 ? center.z + spread * rng.gaussian() : 0.0f};
        b.mass = rng.uniform(0.5f, 2.0f);
        bodies.push_back(b);
    }
    // Classic Barnes-Hut: one body per leaf, so the TTA+ leaf program
    // (Table III) executes exactly once per leaf visit.
    tree_ = std::make_unique<trees::BarnesHutTree>(dims_, std::move(bodies),
                                                   theta, 1);
    expected_.resize(tree_->numBodies());
    for (size_t i = 0; i < tree_->numBodies(); ++i) {
        expected_[i] = tree_
                           ->referenceForce(tree_->orderedBodies()[i].pos,
                                            NBodySpec::kSoftening)
                           .accel;
    }
    computeWarpUnionReference();
}

void
NBodyWorkload::computeWarpUnionReference()
{
    // Host model of the warp-synchronous union traversal the baseline
    // kernel executes: a cell is opened when *any* lane of the warp lies
    // within its opening radius; otherwise every lane approximates it.
    // Accumulation order matches the kernel exactly (LIFO stack, children
    // pushed in serialization order) so results are bit-comparable.
    const auto &bodies = tree_->orderedBodies();
    size_t n = bodies.size();
    expectedWarp_.assign(n, geom::Vec3(0.0f));
    float eps2 = NBodySpec::kSoftening * NBodySpec::kSoftening;
    for (size_t w0 = 0; w0 < n; w0 += 32) {
        size_t w1 = std::min(n, w0 + 32);
        std::vector<uint32_t> stack;
        stack.push_back(tree_->rootIndex());
        while (!stack.empty()) {
            panic_if(stack.size() > 255,
                     "traversal stack exceeds the per-thread device stack");
            uint32_t idx = stack.back();
            stack.pop_back();
            const auto node = tree_->nodeView(idx);
            if (node.leaf) {
                for (size_t q = w0; q < w1; ++q) {
                    for (uint32_t i = 0; i < node.bodyCount; ++i) {
                        const trees::BhBody &b =
                            bodies[node.bodyOffset + i];
                        geom::Vec3 dr = b.pos - bodies[q].pos;
                        float d2 = geom::dot(dr, dr);
                        if (d2 == 0.0f)
                            continue;
                        float inv = 1.0f / std::sqrt(d2 + eps2);
                        float inv3 = inv * inv * inv;
                        expectedWarp_[q] += dr * (b.mass * inv3);
                    }
                }
                continue;
            }
            bool open = false;
            for (size_t q = w0; q < w1 && !open; ++q) {
                open = geom::pointWithinRadius(bodies[q].pos, node.com,
                                               node.openRadius);
            }
            if (open) {
                for (uint32_t c : node.children)
                    stack.push_back(c);
            } else {
                for (size_t q = w0; q < w1; ++q) {
                    geom::Vec3 dr = node.com - bodies[q].pos;
                    float d2 = geom::dot(dr, dr);
                    float inv = 1.0f / std::sqrt(d2 + eps2);
                    float inv3 = inv * inv * inv;
                    expectedWarp_[q] += dr * (node.mass * inv3);
                }
            }
        }
    }
}

void
NBodyWorkload::setup(mem::GlobalMemory &gmem)
{
    rootAddr_ = tree_->serialize(gmem);
    size_t n = tree_->numBodies();
    resultBase_ = gmem.alloc(n * 12, 128);
    // One stack per warp: the baseline kernel traverses warp-
    // synchronously, so all lanes share identical stack contents.
    stackBase_ = gmem.alloc(((n + 31) / 32) * kStackBytesPerThread, 128);
    velBase_ = gmem.alloc(n * 12, 128);
    posOutBase_ = gmem.alloc(n * 16, 128);
    for (size_t i = 0; i < n; ++i) {
        for (int c = 0; c < 3; ++c) {
            gmem.write<float>(resultBase_ + 12 * i + 4 * c, 0.0f);
            gmem.write<float>(velBase_ + 12 * i + 4 * c, 0.0f);
        }
    }
}

gpu::KernelProgram
NBodyWorkload::buildBaselineKernel()
{
    using namespace ::tta::gpu;
    KernelBuilder b("nbody_force_baseline");
    // Params: 0 root, 1 bodyBase, 2 resultBase, 3 stackBase, 4 eps2 bits.
    b.tid(1);
    b.param(23, 1);
    b.ishli(22, 1, 4);
    b.iadd(23, 23, 22);
    b.loadVec3(4, 23, 0); // p = body[tid].pos
    b.movif(7, 0.0f);
    b.movif(8, 0.0f);
    b.movif(9, 0.0f);     // acc = 0
    b.param(2, 3);
    b.ishri(24, 1, 5);
    b.ishli(24, 24, 10);
    b.iadd(2, 2, 24);     // per-warp stack base (warp-synchronous stack)
    b.param(25, 0);
    b.store(2, 25, 0);    // push root
    b.movi(3, 1);         // sp = 1

    b.doWhile([&]() -> Reg {
        b.iaddi(3, 3, -1);
        b.ishli(26, 3, 2);
        b.iadd(26, 2, 26);
        b.load(10, 26, 0); // node = stack[--sp]
        b.load(11, 10, BhNodeLayout::kOffFlags);
        b.movi(27, 1);
        b.iand(12, 11, 27); // leaf?

        auto accumulate = [&]() {
            // dr in r28-30, d2 in r17; acc += dr * (mass * inv3).
            b.param(22, 4);
            b.fadd(18, 17, 22); // d2 + eps2
            b.fsqrt(18, 18);
            b.frcp(25, 18);     // inv
            b.fmul(23, 25, 25);
            b.fmul(25, 23, 25); // inv3
            b.fmul(25, 24, 25); // mass * inv3
            b.vscale(28, 28, 25);
            b.vadd(7, 7, 28);
        };

        b.ifThenElse(
            12,
            [&]() { // leaf: direct interactions
                b.load(13, 10, BhNodeLayout::kOffBodyBase);
                b.ishri(20, 11, 16);
                b.movi(22, 255);
                b.iand(20, 20, 22); // body count (>= 1)
                b.movi(21, 0);
                b.doWhile([&]() -> Reg {
                    b.ishli(26, 21, 4);
                    b.iadd(26, 13, 26);
                    b.loadVec3(14, 26, 0);
                    b.load(24, 26, 12); // mass
                    b.vsub(28, 14, 4);
                    b.vdot(17, 28, 28, 18);
                    b.movif(22, 0.0f);
                    b.setltf(19, 22, 17); // d2 > 0 (skip self)
                    b.ifThen(19, accumulate);
                    b.iaddi(21, 21, 1);
                    b.setlti(31, 21, 20);
                    return 31;
                });
            },
            [&]() { // inner: Algorithm 2 against the opening radius
                b.loadVec3(14, 10, BhNodeLayout::kOffCom);
                b.load(24, 10, BhNodeLayout::kOffMass);
                b.load(25, 10, BhNodeLayout::kOffOpenRadius);
                b.load(13, 10, BhNodeLayout::kOffChildBase);
                b.vsub(28, 14, 4);
                b.vdot(17, 28, 28, 18);
                b.fmul(18, 25, 25);
                b.setltf(19, 17, 18); // within opening radius -> open
                // Warp-synchronous union traversal (Burtscher-Pingali):
                // if any lane must open the cell, the whole warp opens
                // it. This is what gives the CUDA baseline its high SIMT
                // efficiency (Fig 1).
                b.voteany(19, 19);
                b.ifThenElse(
                    19,
                    [&]() { // open: push children
                        b.ishri(20, 11, 8);
                        b.movi(22, 255);
                        b.iand(20, 20, 22);
                        b.movi(21, 0);
                        b.doWhile([&]() -> Reg {
                            b.imuli(22, 21, BhNodeLayout::kNodeBytes);
                            b.iadd(22, 13, 22);
                            b.ishli(26, 3, 2);
                            b.iadd(26, 2, 26);
                            b.store(26, 22, 0);
                            b.iaddi(3, 3, 1);
                            b.iaddi(21, 21, 1);
                            b.setlti(31, 21, 20);
                            return 31;
                        });
                    },
                    accumulate);
            });
        // while (sp > 0)
        b.movi(22, 0);
        b.setlti(31, 22, 3);
        return 31;
    });

    // result[tid] = acc
    b.param(26, 2);
    b.imuli(22, 1, 12);
    b.iadd(26, 26, 22);
    b.store(26, 7, 0);
    b.store(26, 8, 4);
    b.store(26, 9, 8);
    b.exit();
    return b.build();
}

gpu::KernelProgram
NBodyWorkload::buildIntegrationKernel()
{
    using namespace ::tta::gpu;
    KernelBuilder b("nbody_integration");
    // Params: 1 bodyBase, 2 accBase, 5 velBase, 6 dt bits, 7 posOutBase.
    // Positions are double-buffered (read bodyBase, write posOutBase) so
    // the fused configuration never mutates what in-flight traversals
    // read.
    b.tid(1);
    b.param(20, 2);
    b.imuli(21, 1, 12);
    b.iadd(20, 20, 21);
    b.loadVec3(4, 20, 0); // acc
    b.param(22, 5);
    b.iadd(22, 22, 21);
    b.loadVec3(7, 22, 0); // vel
    b.param(10, 6);       // dt
    b.vscale(13, 4, 10);
    b.vadd(7, 7, 13);     // v += a*dt
    // Post-processing beyond the update (the "heavy computations after
    // the tree traversal" of Section V-A): a near-field direct
    // correction over a window of spatially neighboring bodies (bodies
    // are leaf-major, i.e. spatially sorted) plus the velocity update.
    // This is the classical tree-code near/far split: the tree handles
    // the far field, a direct pass refines the near field.
    b.param(30, 1);       // bodyBase
    b.ishli(29, 1, 4);
    b.iadd(29, 30, 29);   // own body record
    b.loadVec3(16, 29, 0); // own position
    b.movi(30, 0);        // neighbor index j
    b.doWhile([&]() -> Reg {
        // neighbor record: bodyBase + ((tid & ~63) + j) * 16
        b.param(25, 1);
        b.movi(26, ~63);
        b.iand(26, 1, 26);
        b.iadd(26, 26, 30);
        b.ishli(26, 26, 4);
        b.iadd(26, 25, 26);
        b.loadVec3(11, 26, 0); // neighbor position
        b.load(15, 26, 12);    // neighbor mass
        b.vsub(11, 11, 16);    // dr
        b.vdot(14, 11, 11, 19); // d2
        b.faddi(14, 14, 0.0025f);
        b.fsqrt(19, 14);
        b.frcp(19, 19);        // inv
        b.fmul(20, 19, 19);
        b.fmul(19, 20, 19);    // inv3
        b.fmul(19, 15, 19);    // m * inv3
        b.fmuli(19, 19, 0.01f); // correction weight
        b.vscale(11, 11, 19);
        b.vadd(7, 7, 11);      // fold into velocity estimate
        b.iaddi(30, 30, 1);
        b.movi(31, 64);
        b.setlti(31, 30, 31);
        return 31;
    });
    // posOut = pos + v*dt
    b.param(23, 1);
    b.ishli(24, 1, 4);
    b.iadd(23, 23, 24);
    b.loadVec3(26, 23, 0);
    b.vscale(13, 7, 10);
    b.vadd(26, 26, 13);
    b.param(25, 7);
    b.iadd(25, 25, 24);
    b.store(25, 26, 0);
    b.store(25, 27, 4);
    b.store(25, 28, 8);
    b.store(22, 7, 0);
    b.store(22, 8, 4);
    b.store(22, 9, 8);
    b.exit();
    return b.build();
}

api::TtaPipeline
NBodyWorkload::makePipeline(int dims)
{
    static const ttaplus::Program inner =
        ttaplus::programs::pointDistInner();
    static const ttaplus::Program leaf =
        ttaplus::programs::nbodyForceLeaf();
    api::TtaPipelineDesc desc(dims == 2 ? "nbody2d" : "nbody3d");
    desc.decodeR({12, 12})        // query point, accumulated force
        .decodeI({12, 4, 4, 4, 4, 4}) // com, mass, openR, flags, bases
        .decodeL({12, 4, 4, 4, 4, 4})
        .configI(&inner)
        .configL(&leaf);
    desc.configTerminate(tta::TerminationConfig{});
    return api::TtaPipeline::create(desc);
}

RunMetrics
NBodyWorkload::runBaseline(const sim::Config &cfg, sim::StatRegistry &stats)
{
    gpu::Gpu device(cfg, stats);
    setup(device.memory());
    gpu::KernelProgram force = buildBaselineKernel();
    gpu::KernelProgram integ = buildIntegrationKernel();
    std::vector<uint32_t> params = {
        static_cast<uint32_t>(rootAddr_),
        static_cast<uint32_t>(tree_->bodyBase()),
        static_cast<uint32_t>(resultBase_),
        static_cast<uint32_t>(stackBase_),
        floatBits(NBodySpec::kSoftening * NBodySpec::kSoftening),
        static_cast<uint32_t>(velBase_),
        floatBits(kDt),
        static_cast<uint32_t>(posOutBase_)};
    sim::Cycle cycles =
        device.runKernel(force, tree_->numBodies(), params);
    lastMismatches_ = verify(device.memory(), expectedWarp_);
    panic_if(lastMismatches_ != 0,
             "baseline N-Body kernel produced %zu mismatches",
             lastMismatches_);
    cycles += device.runKernel(integ, tree_->numBodies(), params);
    return collectMetrics(stats, cycles, device.memsys().dramUtilization());
}

RunMetrics
NBodyWorkload::runAccelerated(const sim::Config &cfg,
                              sim::StatRegistry &stats, bool fused)
{
    api::TtaDevice device(cfg, stats);
    setup(device.memory());
    NBodySpec spec(device.memory(), rootAddr_, tree_->bodyBase(),
                   resultBase_);
    api::TtaPipeline pipeline = makePipeline(dims_);
    device.bindPipeline(pipeline, &spec);

    gpu::KernelProgram integ = buildIntegrationKernel();
    std::vector<uint32_t> params = {
        static_cast<uint32_t>(rootAddr_),
        static_cast<uint32_t>(tree_->bodyBase()),
        static_cast<uint32_t>(resultBase_),
        static_cast<uint32_t>(stackBase_),
        floatBits(NBodySpec::kSoftening * NBodySpec::kSoftening),
        static_cast<uint32_t>(velBase_),
        floatBits(kDt),
        static_cast<uint32_t>(posOutBase_)};

    sim::Cycle cycles;
    if (fused) {
        // Kernel merge: the accelerator traverses while the cores run the
        // integration (Section V-A). The integration reads accelerations
        // as they become available; correctness of the traversal results
        // themselves is still verified below.
        cycles = device.gpu().runKernels(
            {gpu::Launch{&device.launcherKernel(), tree_->numBodies(), {}},
             gpu::Launch{&integ, tree_->numBodies(), params}});
    } else {
        cycles = device.cmdTraverseTree(tree_->numBodies());
        lastMismatches_ = verify(device.memory(), expected_);
        panic_if(lastMismatches_ != 0,
                 "accelerated N-Body run produced %zu mismatches",
                 lastMismatches_);
        cycles += device.gpu().runKernel(integ, tree_->numBodies(),
                                         params);
    }
    return collectMetrics(stats, cycles,
                          device.gpu().memsys().dramUtilization());
}

size_t
NBodyWorkload::verify(const mem::GlobalMemory &gmem,
                      const std::vector<geom::Vec3> &expected) const
{
    size_t mismatches = 0;
    for (size_t i = 0; i < expected.size(); ++i) {
        geom::Vec3 got = {gmem.read<float>(resultBase_ + 12 * i + 0),
                          gmem.read<float>(resultBase_ + 12 * i + 4),
                          gmem.read<float>(resultBase_ + 12 * i + 8)};
        geom::Vec3 diff = got - expected[i];
        float mag = geom::length(expected[i]) + 1e-3f;
        if (geom::length(diff) > 1e-3f * mag)
            ++mismatches;
    }
    return mismatches;
}

} // namespace tta::workloads
