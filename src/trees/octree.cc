#include "trees/octree.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "geom/intersect.hh"
#include "sim/logging.hh"

namespace tta::trees {

BarnesHutTree::BarnesHutTree(int dims, std::vector<BhBody> bodies,
                             float theta, uint32_t max_leaf)
    : dims_(dims), theta_(theta), bodies_(std::move(bodies))
{
    panic_if(dims_ != 2 && dims_ != 3, "BarnesHutTree dims must be 2 or 3");
    panic_if(bodies_.empty(), "BarnesHutTree with no bodies");
    panic_if(theta_ <= 0.0f, "theta must be positive");

    // Root cell: cube/square covering all bodies.
    geom::Vec3 lo = bodies_[0].pos;
    geom::Vec3 hi = bodies_[0].pos;
    for (const auto &b : bodies_) {
        lo = geom::vmin(lo, b.pos);
        hi = geom::vmax(hi, b.pos);
    }
    geom::Vec3 center = (lo + hi) * 0.5f;
    geom::Vec3 ext = hi - lo;
    float half = std::max({ext.x, ext.y, dims_ == 3 ? ext.z : 0.0f}) * 0.5f;
    half = std::max(half, 1e-3f) * 1.0001f; // avoid zero-size cells
    if (dims_ == 2)
        center.z = 0.0f;

    std::vector<uint32_t> ids(bodies_.size());
    std::iota(ids.begin(), ids.end(), 0u);
    root_ = buildRange(ids, 0, static_cast<uint32_t>(ids.size()), center,
                       half, max_leaf, 0);

    // Reorder bodies leaf-major so each leaf's run is contiguous.
    std::vector<BhBody> ordered(bodies_.size());
    uint32_t cursor = 0;
    // buildRange already assigned bodyOffset in traversal order over ids;
    // rebuild the ordering by walking leaves in node order.
    for (auto &node : nodes_) {
        if (!node.leaf)
            continue;
        uint32_t new_off = cursor;
        for (uint32_t i = 0; i < node.bodyCount; ++i)
            ordered[cursor++] = bodies_[node.children[i]];
        node.children.clear();
        node.bodyOffset = new_off;
    }
    panic_if(cursor != bodies_.size(), "leaf body accounting error");
    bodies_ = std::move(ordered);
}

uint32_t
BarnesHutTree::buildRange(std::vector<uint32_t> &ids, uint32_t lo,
                          uint32_t hi, const geom::Vec3 &center,
                          float half_extent, uint32_t max_leaf, int depth)
{
    uint32_t count = hi - lo;
    // Aggregate mass / center of mass.
    geom::Vec3 com(0.0f);
    float mass = 0.0f;
    for (uint32_t i = lo; i < hi; ++i) {
        com += bodies_[ids[i]].pos * bodies_[ids[i]].mass;
        mass += bodies_[ids[i]].mass;
    }
    if (mass > 0.0f)
        com = com / mass;

    Node node;
    node.com = com;
    node.mass = mass;
    node.openRadius = 2.0f * half_extent / theta_;

    constexpr int kMaxDepth = 48;
    if (count <= max_leaf || depth >= kMaxDepth) {
        node.leaf = true;
        node.bodyCount = count;
        // Temporarily stash the body ids in 'children'; the constructor
        // converts them to a contiguous run after the build.
        node.children.assign(ids.begin() + lo, ids.begin() + hi);
        nodes_.push_back(std::move(node));
        return static_cast<uint32_t>(nodes_.size() - 1);
    }

    uint32_t node_idx;
    {
        nodes_.push_back(std::move(node));
        node_idx = static_cast<uint32_t>(nodes_.size() - 1);
    }

    // Partition into quadrants/octants around the cell center.
    int n_quadrants = dims_ == 2 ? 4 : 8;
    auto quadrant_of = [&](uint32_t id) {
        const geom::Vec3 &p = bodies_[id].pos;
        int q = (p.x >= center.x ? 1 : 0) | (p.y >= center.y ? 2 : 0);
        if (dims_ == 3)
            q |= p.z >= center.z ? 4 : 0;
        return q;
    };
    // Stable bucket the range by quadrant.
    std::vector<uint32_t> scratch(ids.begin() + lo, ids.begin() + hi);
    std::stable_sort(scratch.begin(), scratch.end(),
                     [&](uint32_t a, uint32_t b) {
                         return quadrant_of(a) < quadrant_of(b);
                     });
    std::copy(scratch.begin(), scratch.end(), ids.begin() + lo);

    std::vector<uint32_t> children;
    float child_half = half_extent * 0.5f;
    uint32_t pos = lo;
    for (int q = 0; q < n_quadrants; ++q) {
        uint32_t qhi = pos;
        while (qhi < hi && quadrant_of(ids[qhi]) == q)
            ++qhi;
        if (qhi == pos)
            continue;
        geom::Vec3 ccenter = center;
        ccenter.x += (q & 1) ? child_half : -child_half;
        ccenter.y += (q & 2) ? child_half : -child_half;
        if (dims_ == 3)
            ccenter.z += (q & 4) ? child_half : -child_half;
        children.push_back(buildRange(ids, pos, qhi, ccenter, child_half,
                                      max_leaf, depth + 1));
        pos = qhi;
    }
    panic_if(pos != hi, "quadrant partition accounting error");
    nodes_[node_idx].children = std::move(children);
    return node_idx;
}

BhForceResult
BarnesHutTree::referenceForce(const geom::Vec3 &pos, float softening) const
{
    BhForceResult result;
    result.accel = geom::Vec3(0.0f);
    std::vector<uint32_t> stack;
    stack.push_back(root_);
    float eps2 = softening * softening;
    while (!stack.empty()) {
        const Node &node = nodes_[stack.back()];
        stack.pop_back();
        ++result.nodesVisited;
        if (node.leaf) {
            for (uint32_t i = 0; i < node.bodyCount; ++i) {
                const BhBody &b = bodies_[node.bodyOffset + i];
                geom::Vec3 dr = b.pos - pos;
                float d2 = geom::dot(dr, dr);
                if (d2 == 0.0f)
                    continue; // self-interaction
                float inv = 1.0f / std::sqrt(d2 + eps2);
                float inv3 = inv * inv * inv;
                result.accel += dr * (b.mass * inv3);
                ++result.directInteractions;
            }
            continue;
        }
        // Point-to-Point distance test (Algorithm 2): open the node when
        // the query lies within its opening radius.
        bool open = geom::pointWithinRadius(pos, node.com, node.openRadius);
        if (!open) {
            geom::Vec3 dr = node.com - pos;
            float d2 = geom::dot(dr, dr);
            float inv = 1.0f / std::sqrt(d2 + eps2);
            float inv3 = inv * inv * inv;
            result.accel += dr * (node.mass * inv3);
            ++result.approximations;
            continue;
        }
        for (uint32_t c : node.children)
            stack.push_back(c);
    }
    return result;
}

uint64_t
BarnesHutTree::serialize(mem::GlobalMemory &gmem)
{
    using L = BhNodeLayout;
    // Bodies (already leaf-major).
    bodyBase_ = gmem.alloc(bodies_.size() * BhBodyLayout::kBodyBytes, 64);
    for (size_t i = 0; i < bodies_.size(); ++i) {
        uint64_t addr = bodyBase_ + i * BhBodyLayout::kBodyBytes;
        gmem.write<float>(addr + 0, bodies_[i].pos.x);
        gmem.write<float>(addr + 4, bodies_[i].pos.y);
        gmem.write<float>(addr + 8, bodies_[i].pos.z);
        gmem.write<float>(addr + 12, bodies_[i].mass);
    }

    // Nodes: BFS order so siblings are contiguous.
    std::vector<uint32_t> order;
    std::vector<uint32_t> slot(nodes_.size(), 0);
    order.push_back(root_);
    for (size_t head = 0; head < order.size(); ++head) {
        for (uint32_t c : nodes_[order[head]].children) {
            slot[c] = static_cast<uint32_t>(order.size());
            order.push_back(c);
        }
    }
    uint64_t base = gmem.alloc(order.size() * L::kNodeBytes, 64);
    for (size_t s = 0; s < order.size(); ++s) {
        const Node &node = nodes_[order[s]];
        uint64_t addr = base + s * L::kNodeBytes;
        gmem.write<float>(addr + L::kOffCom + 0, node.com.x);
        gmem.write<float>(addr + L::kOffCom + 4, node.com.y);
        gmem.write<float>(addr + L::kOffCom + 8, node.com.z);
        gmem.write<float>(addr + L::kOffMass, node.mass);
        gmem.write<float>(addr + L::kOffOpenRadius, node.openRadius);
        uint32_t flags = (node.leaf ? L::kLeafFlag : 0) |
            (static_cast<uint32_t>(node.children.size()) << 8) |
            (node.bodyCount << 16);
        gmem.write<uint32_t>(addr + L::kOffFlags, flags);
        uint32_t child_base = 0;
        if (!node.children.empty()) {
            child_base = static_cast<uint32_t>(
                base + static_cast<uint64_t>(slot[node.children[0]]) *
                           L::kNodeBytes);
        }
        gmem.write<uint32_t>(addr + L::kOffChildBase, child_base);
        uint32_t body_base = 0;
        if (node.leaf) {
            body_base = static_cast<uint32_t>(
                bodyBase_ + static_cast<uint64_t>(node.bodyOffset) *
                                BhBodyLayout::kBodyBytes);
        }
        gmem.write<uint32_t>(addr + L::kOffBodyBase, body_base);
    }
    return base;
}

} // namespace tta::trees
