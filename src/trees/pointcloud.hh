/**
 * @file
 * Synthetic LiDAR-like point clouds for the RTNN radius-search workload.
 *
 * Substitution for the KITTI frames used by the paper (see DESIGN.md):
 * the generator reproduces the density structure that matters for tree
 * pruning — a dominant ground plane, dense object clusters (cars,
 * pedestrians), sparse range rings, and background noise.
 *
 * Points are serialized as 16-byte records (xyz + pad); the RTNN mapping
 * builds a BVH over per-point boxes inflated by the search radius, so a
 * query point "hits" a leaf exactly when it may contain neighbors.
 */

#ifndef TTA_TREES_POINTCLOUD_HH
#define TTA_TREES_POINTCLOUD_HH

#include <cstdint>
#include <vector>

#include "geom/vec.hh"
#include "mem/global_memory.hh"
#include "sim/rng.hh"
#include "trees/bvh.hh"

namespace tta::trees {

/** Serialized point record (16 bytes): xyz + padding. */
struct PointLayout
{
    static constexpr uint32_t kPointBytes = 16;
};

struct PointCloud
{
    std::vector<geom::Vec3> points;

    /**
     * Generate a LiDAR-like cloud.
     * @param n     total points.
     * @param seed  RNG seed (deterministic).
     */
    static PointCloud generateLidarLike(size_t n, uint64_t seed);

    /** Serialize points; returns the base address of the record array. */
    uint64_t serialize(mem::GlobalMemory &gmem) const;
};

/** RTNN-style index: BVH over radius-inflated per-point boxes. */
class RadiusSearchIndex
{
  public:
    RadiusSearchIndex(const PointCloud &cloud, float radius);

    /**
     * Rebinding copy: reuse another index's built BVH but reference
     * @p cloud instead of the original's cloud pointer. For cloning a
     * workload whose index points at its own cloud member — the copy
     * must not dangle into (or alias) the source object.
     */
    RadiusSearchIndex(const RadiusSearchIndex &other,
                      const PointCloud &cloud)
        : cloud_(&cloud), radius_(other.radius_), bvh_(other.bvh_)
    {}

    const Bvh &bvh() const { return bvh_; }
    float radius() const { return radius_; }

    /** Reference query: ids of points within radius of q (unordered). */
    std::vector<uint32_t> query(const geom::Vec3 &q) const;

    /** Number of leaf point tests the reference query performed. */
    uint32_t lastCandidates() const { return lastCandidates_; }

  private:
    const PointCloud *cloud_;
    float radius_;
    Bvh bvh_;
    mutable uint32_t lastCandidates_ = 0;
};

} // namespace tta::trees

#endif // TTA_TREES_POINTCLOUD_HH
