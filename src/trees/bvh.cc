#include "trees/bvh.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "geom/intersect.hh"
#include "sim/logging.hh"

namespace tta::trees {

void
Bvh::build(const std::vector<geom::Aabb> &prim_boxes, uint32_t max_leaf)
{
    nodes_.clear();
    primOrder_.resize(prim_boxes.size());
    std::iota(primOrder_.begin(), primOrder_.end(), 0u);
    panic_if(prim_boxes.empty(), "BVH build with no primitives");
    root_ = buildRange(primOrder_, 0,
                       static_cast<uint32_t>(primOrder_.size()), prim_boxes,
                       std::max(1u, max_leaf));
}

int32_t
Bvh::buildRange(std::vector<uint32_t> &ids, uint32_t lo, uint32_t hi,
                const std::vector<geom::Aabb> &boxes, uint32_t max_leaf)
{
    geom::Aabb bounds;
    geom::Aabb centroid_bounds;
    for (uint32_t i = lo; i < hi; ++i) {
        bounds.extend(boxes[ids[i]]);
        centroid_bounds.extend(boxes[ids[i]].center());
    }

    uint32_t count = hi - lo;
    auto make_leaf = [&]() {
        BvhNode node;
        node.box = bounds;
        node.primOffset = lo;
        node.primCount = count;
        nodes_.push_back(node);
        return static_cast<int32_t>(nodes_.size() - 1);
    };
    if (count <= max_leaf)
        return make_leaf();

    // Binned SAH over the widest centroid axis.
    constexpr int kBins = 16;
    int axis = centroid_bounds.widestAxis();
    float cmin = centroid_bounds.lo[axis];
    float cext = centroid_bounds.extent()[axis];
    uint32_t mid;
    if (cext <= 0.0f) {
        // Degenerate centroids: median split by index.
        mid = lo + count / 2;
    } else {
        struct Bin
        {
            geom::Aabb box;
            uint32_t count = 0;
        };
        Bin bins[kBins];
        auto bin_of = [&](uint32_t id) {
            float c = boxes[id].center()[axis];
            int b = static_cast<int>((c - cmin) / cext * kBins);
            return std::clamp(b, 0, kBins - 1);
        };
        for (uint32_t i = lo; i < hi; ++i) {
            Bin &bin = bins[bin_of(ids[i])];
            bin.box.extend(boxes[ids[i]]);
            ++bin.count;
        }
        // Sweep to find the minimum-cost split plane.
        float right_area[kBins];
        geom::Aabb acc;
        uint32_t right_count[kBins];
        uint32_t rc = 0;
        for (int b = kBins - 1; b > 0; --b) {
            acc.extend(bins[b].box);
            rc += bins[b].count;
            right_area[b] = acc.surfaceArea();
            right_count[b] = rc;
        }
        acc = geom::Aabb();
        uint32_t lc = 0;
        float best_cost = std::numeric_limits<float>::max();
        int best_split = -1;
        for (int b = 0; b < kBins - 1; ++b) {
            acc.extend(bins[b].box);
            lc += bins[b].count;
            if (lc == 0 || right_count[b + 1] == 0)
                continue;
            float cost = acc.surfaceArea() * lc +
                         right_area[b + 1] * right_count[b + 1];
            if (cost < best_cost) {
                best_cost = cost;
                best_split = b;
            }
        }
        if (best_split < 0) {
            mid = lo + count / 2;
        } else {
            auto it = std::partition(
                ids.begin() + lo, ids.begin() + hi,
                [&](uint32_t id) { return bin_of(id) <= best_split; });
            mid = static_cast<uint32_t>(it - ids.begin());
            if (mid == lo || mid == hi)
                mid = lo + count / 2; // pathological: fall back to median
        }
    }

    int32_t node_idx;
    {
        BvhNode node;
        node.box = bounds;
        nodes_.push_back(node);
        node_idx = static_cast<int32_t>(nodes_.size() - 1);
    }
    int32_t left = buildRange(ids, lo, mid, boxes, max_leaf);
    int32_t right = buildRange(ids, mid, hi, boxes, max_leaf);
    nodes_[node_idx].left = left;
    nodes_[node_idx].right = right;
    return node_idx;
}

void
Bvh::traverse(geom::Ray &ray,
              const std::function<void(uint32_t)> &leaf_fn) const
{
    std::vector<int32_t> stack;
    stack.push_back(root_);
    while (!stack.empty()) {
        int32_t idx = stack.back();
        stack.pop_back();
        const BvhNode &node = nodes_[idx];
        auto hit = geom::rayBox(ray, node.box);
        if (!hit)
            continue;
        if (node.isLeaf()) {
            for (uint32_t p = 0; p < node.primCount; ++p)
                leaf_fn(primOrder_[node.primOffset + p]);
            continue;
        }
        // Near child last (popped first).
        auto hl = geom::rayBox(ray, nodes_[node.left].box);
        auto hr = geom::rayBox(ray, nodes_[node.right].box);
        float tl = hl ? hl->tenter : std::numeric_limits<float>::max();
        float tr = hr ? hr->tenter : std::numeric_limits<float>::max();
        if (tl < tr) {
            stack.push_back(node.right);
            stack.push_back(node.left);
        } else {
            stack.push_back(node.left);
            stack.push_back(node.right);
        }
    }
}

void
Bvh::pointQuery(const geom::Vec3 &point, float radius,
                const std::function<void(uint32_t)> &leaf_fn) const
{
    std::vector<int32_t> stack;
    stack.push_back(root_);
    geom::Vec3 r(radius, radius, radius);
    while (!stack.empty()) {
        int32_t idx = stack.back();
        stack.pop_back();
        const BvhNode &node = nodes_[idx];
        geom::Aabb inflated(node.box.lo - r, node.box.hi + r);
        if (!inflated.contains(point))
            continue;
        if (node.isLeaf()) {
            for (uint32_t p = 0; p < node.primCount; ++p)
                leaf_fn(primOrder_[node.primOffset + p]);
            continue;
        }
        stack.push_back(node.left);
        stack.push_back(node.right);
    }
}

SerializedBvh
Bvh::serialize(mem::GlobalMemory &gmem) const
{
    using L = BvhNodeLayout;
    SerializedBvh out;

    // Leaf records first (variable size, 16B aligned).
    std::vector<uint64_t> leaf_addr(nodes_.size(), 0);
    uint64_t leaf_bytes = 0;
    for (size_t i = 0; i < nodes_.size(); ++i) {
        if (!nodes_[i].isLeaf())
            continue;
        uint64_t bytes = 4 + 4ull * nodes_[i].primCount;
        leaf_bytes += (bytes + 15) & ~15ull;
    }
    out.leafBase = gmem.alloc(std::max<uint64_t>(leaf_bytes, 16), 64);
    out.leafBytes = leaf_bytes;
    uint64_t cursor = out.leafBase;
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const BvhNode &node = nodes_[i];
        if (!node.isLeaf())
            continue;
        leaf_addr[i] = cursor;
        gmem.write<uint32_t>(cursor + BvhLeafLayout::kOffCount,
                             node.primCount);
        for (uint32_t p = 0; p < node.primCount; ++p) {
            gmem.write<uint32_t>(cursor + BvhLeafLayout::kOffPrims + 4 * p,
                                 primOrder_[node.primOffset + p]);
        }
        cursor += (4 + 4ull * node.primCount + 15) & ~15ull;
    }

    // Inner nodes, BFS order.
    std::vector<int32_t> inner;
    std::vector<uint32_t> slot(nodes_.size(), 0);
    if (!nodes_[root_].isLeaf()) {
        inner.push_back(root_);
        slot[root_] = 0;
        for (size_t head = 0; head < inner.size(); ++head) {
            const BvhNode &node = nodes_[inner[head]];
            for (int32_t c : {node.left, node.right}) {
                if (!nodes_[c].isLeaf()) {
                    slot[c] = static_cast<uint32_t>(inner.size());
                    inner.push_back(c);
                }
            }
        }
    }
    out.nodeBase = gmem.alloc(
        std::max<uint64_t>(inner.size() * L::kNodeBytes, 64), 64);
    out.nodeBytes = inner.size() * L::kNodeBytes;

    auto ref_of = [&](int32_t idx) {
        if (nodes_[idx].isLeaf())
            return BvhRef::leaf(leaf_addr[idx]);
        return BvhRef::inner(out.nodeBase +
                             static_cast<uint64_t>(slot[idx]) *
                                 L::kNodeBytes);
    };

    for (size_t s = 0; s < inner.size(); ++s) {
        const BvhNode &node = nodes_[inner[s]];
        uint64_t addr = out.nodeBase + s * L::kNodeBytes;
        const geom::Aabb &bl = nodes_[node.left].box;
        const geom::Aabb &br = nodes_[node.right].box;
        for (int a = 0; a < 3; ++a) {
            gmem.write<float>(addr + L::kOffLoL + 4 * a, bl.lo[a]);
            gmem.write<float>(addr + L::kOffHiL + 4 * a, bl.hi[a]);
            gmem.write<float>(addr + L::kOffLoR + 4 * a, br.lo[a]);
            gmem.write<float>(addr + L::kOffHiR + 4 * a, br.hi[a]);
        }
        gmem.write<uint32_t>(addr + L::kOffLeft, ref_of(node.left).raw);
        gmem.write<uint32_t>(addr + L::kOffRight, ref_of(node.right).raw);
        gmem.write<uint32_t>(addr + L::kOffMeta, 0);
    }

    out.root = ref_of(root_);
    return out;
}

// ---------------------------------------------------------------------
// WideBvh: binary-tree collapse, batched traversals, SoA serialization.
// ---------------------------------------------------------------------

namespace {

/** Lane filler that can never be entered (mirrors the Aabb sentinel). */
constexpr float kEmptyLo = std::numeric_limits<float>::max();
constexpr float kEmptyHi = std::numeric_limits<float>::lowest();

void
setLaneBox(geom::WideBoxes &boxes, uint32_t lane, const geom::Vec3 &lo,
           const geom::Vec3 &hi)
{
    boxes.lox[lane] = lo.x;
    boxes.loy[lane] = lo.y;
    boxes.loz[lane] = lo.z;
    boxes.hix[lane] = hi.x;
    boxes.hiy[lane] = hi.y;
    boxes.hiz[lane] = hi.z;
}

} // namespace

void
WideBvh::build(const Bvh &bvh, uint32_t width, bool quantized)
{
    panic_if(width < 2 || width > 8, "wide BVH width %u not in [2, 8]",
             width);
    panic_if(bvh.rootIndex() < 0, "collapsing an unbuilt BVH");
    nodes_.clear();
    leaves_.clear();
    primOrder_ = bvh.primOrder();
    width_ = width;
    quantized_ = quantized;
    root_ = -1;
    rootLeaf_ = -1;

    const BvhNode &root = bvh.nodes()[bvh.rootIndex()];
    if (root.isLeaf()) {
        rootLeaf_ = 0;
        leaves_.push_back({root.primOffset, root.primCount});
        return;
    }
    root_ = collapse(bvh, bvh.rootIndex());
}

int32_t
WideBvh::collapse(const Bvh &bvh, int32_t binary_idx)
{
    const std::vector<BvhNode> &bn = bvh.nodes();

    // Gather up to width_ entries: keep expanding the largest-area inner
    // entry into its two children while room remains.
    std::vector<int32_t> entries = {bn[binary_idx].left,
                                    bn[binary_idx].right};
    while (entries.size() < width_) {
        int pick = -1;
        float best = -1.0f;
        for (size_t i = 0; i < entries.size(); ++i) {
            if (bn[entries[i]].isLeaf())
                continue;
            float area = bn[entries[i]].box.surfaceArea();
            if (area > best) {
                best = area;
                pick = static_cast<int>(i);
            }
        }
        if (pick < 0)
            break; // all entries are leaves
        int32_t expanded = entries[pick];
        entries[pick] = bn[expanded].left;
        entries.push_back(bn[expanded].right);
    }

    // Reserve the node slot before recursing (children allocate after
    // their parent), then fill a local copy to survive vector growth.
    int32_t node_idx = static_cast<int32_t>(nodes_.size());
    nodes_.emplace_back();

    WideBvhNode node;
    node.count = static_cast<uint32_t>(entries.size());
    node.selfBox = bn[binary_idx].box;
    geom::Aabb child_boxes[8];
    for (uint32_t i = 0; i < 8; ++i) {
        if (i < node.count) {
            child_boxes[i] = bn[entries[i]].box;
        } else {
            setLaneBox(node.boxes, i, geom::Vec3(kEmptyLo),
                       geom::Vec3(kEmptyHi));
        }
    }
    encodeNode(node, child_boxes);

    for (uint32_t i = 0; i < node.count; ++i) {
        const BvhNode &entry = bn[entries[i]];
        if (entry.isLeaf()) {
            node.child[i] = ~static_cast<int32_t>(leaves_.size());
            leaves_.push_back({entry.primOffset, entry.primCount});
        } else {
            node.child[i] = collapse(bvh, entries[i]);
        }
    }
    nodes_[node_idx] = node;
    return node_idx;
}

/**
 * Store the child boxes into the node's SoA lanes — verbatim when
 * uncompressed, else through the quantizer with the decoded
 * (conservative) values kept for the host-side batched tests, so host
 * and serialized device traversals see bit-identical planes.
 */
void
WideBvh::encodeNode(WideBvhNode &node, const geom::Aabb *child_boxes)
{
    if (!quantized_) {
        for (uint32_t i = 0; i < node.count; ++i)
            setLaneBox(node.boxes, i, child_boxes[i].lo, child_boxes[i].hi);
        return;
    }
    for (int axis = 0; axis < 3; ++axis) {
        float plo = node.selfBox.lo[axis];
        float phi = node.selfBox.hi[axis];
        float scale = wideQuantScale(plo, phi);
        for (uint32_t i = 0; i < node.count; ++i) {
            float lo = child_boxes[i].lo[axis];
            float hi = child_boxes[i].hi[axis];
            uint8_t qlo = 0;
            uint8_t qhi = 0;
            if (scale > 0.0f) {
                float flo = std::floor((lo - plo) / scale);
                float fhi = std::floor((phi - hi) / scale);
                qlo = static_cast<uint8_t>(
                    std::clamp(flo, 0.0f, 255.0f));
                qhi = static_cast<uint8_t>(
                    std::clamp(fhi, 0.0f, 255.0f));
                // Fix up against the actual decode arithmetic: q = 0
                // decodes to the parent plane, which bounds every child,
                // so both loops terminate with a conservative plane.
                while (qlo > 0 && wideQuantDecodeLo(plo, scale, qlo) > lo)
                    --qlo;
                while (qhi > 0 && wideQuantDecodeHi(phi, scale, qhi) < hi)
                    --qhi;
            }
            node.quant[axis][i] = qlo;
            node.quant[3 + axis][i] = qhi;
            float dlo = wideQuantDecodeLo(plo, scale, qlo);
            float dhi = wideQuantDecodeHi(phi, scale, qhi);
            float *lo_lane[3] = {node.boxes.lox, node.boxes.loy,
                                 node.boxes.loz};
            float *hi_lane[3] = {node.boxes.hix, node.boxes.hiy,
                                 node.boxes.hiz};
            lo_lane[axis][i] = dlo;
            hi_lane[axis][i] = dhi;
        }
    }
}

void
WideBvh::traverse(geom::Ray &ray,
                  const std::function<void(uint32_t)> &leaf_fn) const
{
    if (root_ < 0) {
        if (rootLeaf_ >= 0) {
            const WideBvhLeaf &leaf = leaves_[rootLeaf_];
            for (uint32_t p = 0; p < leaf.primCount; ++p)
                leaf_fn(primOrder_[leaf.primOffset + p]);
        }
        return;
    }
    std::vector<int32_t> stack;
    stack.push_back(root_);
    while (!stack.empty()) {
        const WideBvhNode &node = nodes_[stack.back()];
        stack.pop_back();
        float tenter[8];
        uint32_t mask = geom::rayBoxBatch(
            ray, node.boxes, static_cast<int>(node.count), tenter);
        // Leaves first — they may shrink ray.tmax before children pop.
        struct Entry
        {
            float t;
            int32_t child;
        };
        Entry order[8];
        int n = 0;
        for (uint32_t i = 0; i < node.count; ++i) {
            if (!(mask & (1u << i)))
                continue;
            if (node.child[i] < 0) {
                const WideBvhLeaf &leaf = leaves_[~node.child[i]];
                for (uint32_t p = 0; p < leaf.primCount; ++p)
                    leaf_fn(primOrder_[leaf.primOffset + p]);
            } else {
                order[n++] = {tenter[i], node.child[i]};
            }
        }
        // Far child pushed first (near popped first); ties broken by
        // child index for a fully specified order.
        std::sort(order, order + n, [](const Entry &a, const Entry &b) {
            if (a.t != b.t)
                return a.t > b.t;
            return a.child > b.child;
        });
        for (int i = 0; i < n; ++i)
            stack.push_back(order[i].child);
    }
}

void
WideBvh::pointQuery(const geom::Vec3 &point, float radius,
                    const std::function<void(uint32_t)> &leaf_fn) const
{
    if (root_ < 0) {
        if (rootLeaf_ >= 0) {
            const WideBvhLeaf &leaf = leaves_[rootLeaf_];
            for (uint32_t p = 0; p < leaf.primCount; ++p)
                leaf_fn(primOrder_[leaf.primOffset + p]);
        }
        return;
    }
    std::vector<int32_t> stack;
    stack.push_back(root_);
    while (!stack.empty()) {
        const WideBvhNode &node = nodes_[stack.back()];
        stack.pop_back();
        // Inflate per lane with the same per-float ops as the scalar
        // pointQuery (lo - r, hi + r) before the batched contains test.
        geom::WideBoxes inflated;
        for (uint32_t i = 0; i < node.count; ++i) {
            inflated.lox[i] = node.boxes.lox[i] - radius;
            inflated.loy[i] = node.boxes.loy[i] - radius;
            inflated.loz[i] = node.boxes.loz[i] - radius;
            inflated.hix[i] = node.boxes.hix[i] + radius;
            inflated.hiy[i] = node.boxes.hiy[i] + radius;
            inflated.hiz[i] = node.boxes.hiz[i] + radius;
        }
        uint32_t mask = geom::pointInBoxBatch(
            point, inflated, static_cast<int>(node.count));
        for (uint32_t i = 0; i < node.count; ++i) {
            if (!(mask & (1u << i)))
                continue;
            if (node.child[i] < 0) {
                const WideBvhLeaf &leaf = leaves_[~node.child[i]];
                for (uint32_t p = 0; p < leaf.primCount; ++p)
                    leaf_fn(primOrder_[leaf.primOffset + p]);
            } else {
                stack.push_back(node.child[i]);
            }
        }
    }
}

SerializedBvh
WideBvh::serialize(mem::GlobalMemory &gmem) const
{
    using L = WideBvhNodeLayout;
    SerializedBvh out;
    out.nodeWidth = width_;
    out.quantized = quantized_;
    uint32_t stride = L::nodeBytes(width_, quantized_);
    out.nodeStride = stride;

    // Leaf records, same format as the binary serializer.
    std::vector<uint64_t> leaf_addr(leaves_.size(), 0);
    uint64_t leaf_bytes = 0;
    for (const WideBvhLeaf &leaf : leaves_)
        leaf_bytes += (4 + 4ull * leaf.primCount + 15) & ~15ull;
    out.leafBase = gmem.alloc(std::max<uint64_t>(leaf_bytes, 16), 64);
    out.leafBytes = leaf_bytes;
    uint64_t cursor = out.leafBase;
    for (size_t i = 0; i < leaves_.size(); ++i) {
        const WideBvhLeaf &leaf = leaves_[i];
        leaf_addr[i] = cursor;
        gmem.write<uint32_t>(cursor + BvhLeafLayout::kOffCount,
                             leaf.primCount);
        for (uint32_t p = 0; p < leaf.primCount; ++p) {
            gmem.write<uint32_t>(cursor + BvhLeafLayout::kOffPrims + 4 * p,
                                 primOrder_[leaf.primOffset + p]);
        }
        cursor += (4 + 4ull * leaf.primCount + 15) & ~15ull;
    }

    // Inner nodes, BFS order.
    std::vector<int32_t> order;
    std::vector<uint32_t> slot(nodes_.size(), 0);
    if (root_ >= 0) {
        order.push_back(root_);
        slot[root_] = 0;
        for (size_t head = 0; head < order.size(); ++head) {
            const WideBvhNode &node = nodes_[order[head]];
            for (uint32_t i = 0; i < node.count; ++i) {
                if (node.child[i] >= 0) {
                    slot[node.child[i]] =
                        static_cast<uint32_t>(order.size());
                    order.push_back(node.child[i]);
                }
            }
        }
    }
    out.nodeBase =
        gmem.alloc(std::max<uint64_t>(order.size() * stride, 64), 64);
    out.nodeBytes = order.size() * stride;

    auto ref_of = [&](int32_t child) {
        if (child < 0)
            return BvhRef::leaf(leaf_addr[~child]);
        return BvhRef::inner(out.nodeBase +
                             static_cast<uint64_t>(slot[child]) * stride);
    };

    uint32_t refs_off = L::refsOffset(width_, quantized_);
    for (size_t s = 0; s < order.size(); ++s) {
        const WideBvhNode &node = nodes_[order[s]];
        uint64_t addr = out.nodeBase + s * stride;
        if (!quantized_) {
            const float *planes[6] = {node.boxes.lox, node.boxes.loy,
                                      node.boxes.loz, node.boxes.hix,
                                      node.boxes.hiy, node.boxes.hiz};
            for (uint32_t a = 0; a < 6; ++a) {
                for (uint32_t i = 0; i < width_; ++i) {
                    gmem.write<float>(addr + L::kOffLoX +
                                          (a * width_ + i) * 4,
                                      planes[a][i]);
                }
            }
        } else {
            for (int a = 0; a < 3; ++a) {
                gmem.write<float>(addr + L::kOffParentLo + 4 * a,
                                  node.selfBox.lo[a]);
                gmem.write<float>(addr + L::kOffParentHi + 4 * a,
                                  node.selfBox.hi[a]);
            }
            for (uint32_t a = 0; a < 6; ++a) {
                for (uint32_t i = 0; i < width_; ++i) {
                    gmem.write<uint8_t>(addr + L::kOffQuant + a * width_ +
                                            i,
                                        node.quant[a][i]);
                }
            }
        }
        for (uint32_t i = 0; i < width_; ++i) {
            uint32_t raw =
                i < node.count ? ref_of(node.child[i]).raw : 0u;
            gmem.write<uint32_t>(addr + refs_off + 4 * i, raw);
        }
    }

    out.root = root_ >= 0 ? BvhRef::inner(out.nodeBase)
                          : BvhRef::leaf(leaf_addr[rootLeaf_]);
    return out;
}

geom::Vec3
transformPoint(const float m[12], const geom::Vec3 &p)
{
    return {m[0] * p.x + m[1] * p.y + m[2] * p.z + m[3],
            m[4] * p.x + m[5] * p.y + m[6] * p.z + m[7],
            m[8] * p.x + m[9] * p.y + m[10] * p.z + m[11]};
}

geom::Vec3
transformDir(const float m[12], const geom::Vec3 &d)
{
    return {m[0] * d.x + m[1] * d.y + m[2] * d.z,
            m[4] * d.x + m[5] * d.y + m[6] * d.z,
            m[8] * d.x + m[9] * d.y + m[10] * d.z};
}

} // namespace tta::trees
