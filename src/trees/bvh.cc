#include "trees/bvh.hh"

#include <algorithm>
#include <numeric>

#include "geom/intersect.hh"
#include "sim/logging.hh"

namespace tta::trees {

void
Bvh::build(const std::vector<geom::Aabb> &prim_boxes, uint32_t max_leaf)
{
    nodes_.clear();
    primOrder_.resize(prim_boxes.size());
    std::iota(primOrder_.begin(), primOrder_.end(), 0u);
    panic_if(prim_boxes.empty(), "BVH build with no primitives");
    root_ = buildRange(primOrder_, 0,
                       static_cast<uint32_t>(primOrder_.size()), prim_boxes,
                       std::max(1u, max_leaf));
}

int32_t
Bvh::buildRange(std::vector<uint32_t> &ids, uint32_t lo, uint32_t hi,
                const std::vector<geom::Aabb> &boxes, uint32_t max_leaf)
{
    geom::Aabb bounds;
    geom::Aabb centroid_bounds;
    for (uint32_t i = lo; i < hi; ++i) {
        bounds.extend(boxes[ids[i]]);
        centroid_bounds.extend(boxes[ids[i]].center());
    }

    uint32_t count = hi - lo;
    auto make_leaf = [&]() {
        BvhNode node;
        node.box = bounds;
        node.primOffset = lo;
        node.primCount = count;
        nodes_.push_back(node);
        return static_cast<int32_t>(nodes_.size() - 1);
    };
    if (count <= max_leaf)
        return make_leaf();

    // Binned SAH over the widest centroid axis.
    constexpr int kBins = 16;
    int axis = centroid_bounds.widestAxis();
    float cmin = centroid_bounds.lo[axis];
    float cext = centroid_bounds.extent()[axis];
    uint32_t mid;
    if (cext <= 0.0f) {
        // Degenerate centroids: median split by index.
        mid = lo + count / 2;
    } else {
        struct Bin
        {
            geom::Aabb box;
            uint32_t count = 0;
        };
        Bin bins[kBins];
        auto bin_of = [&](uint32_t id) {
            float c = boxes[id].center()[axis];
            int b = static_cast<int>((c - cmin) / cext * kBins);
            return std::clamp(b, 0, kBins - 1);
        };
        for (uint32_t i = lo; i < hi; ++i) {
            Bin &bin = bins[bin_of(ids[i])];
            bin.box.extend(boxes[ids[i]]);
            ++bin.count;
        }
        // Sweep to find the minimum-cost split plane.
        float right_area[kBins];
        geom::Aabb acc;
        uint32_t right_count[kBins];
        uint32_t rc = 0;
        for (int b = kBins - 1; b > 0; --b) {
            acc.extend(bins[b].box);
            rc += bins[b].count;
            right_area[b] = acc.surfaceArea();
            right_count[b] = rc;
        }
        acc = geom::Aabb();
        uint32_t lc = 0;
        float best_cost = std::numeric_limits<float>::max();
        int best_split = -1;
        for (int b = 0; b < kBins - 1; ++b) {
            acc.extend(bins[b].box);
            lc += bins[b].count;
            if (lc == 0 || right_count[b + 1] == 0)
                continue;
            float cost = acc.surfaceArea() * lc +
                         right_area[b + 1] * right_count[b + 1];
            if (cost < best_cost) {
                best_cost = cost;
                best_split = b;
            }
        }
        if (best_split < 0) {
            mid = lo + count / 2;
        } else {
            auto it = std::partition(
                ids.begin() + lo, ids.begin() + hi,
                [&](uint32_t id) { return bin_of(id) <= best_split; });
            mid = static_cast<uint32_t>(it - ids.begin());
            if (mid == lo || mid == hi)
                mid = lo + count / 2; // pathological: fall back to median
        }
    }

    int32_t node_idx;
    {
        BvhNode node;
        node.box = bounds;
        nodes_.push_back(node);
        node_idx = static_cast<int32_t>(nodes_.size() - 1);
    }
    int32_t left = buildRange(ids, lo, mid, boxes, max_leaf);
    int32_t right = buildRange(ids, mid, hi, boxes, max_leaf);
    nodes_[node_idx].left = left;
    nodes_[node_idx].right = right;
    return node_idx;
}

void
Bvh::traverse(geom::Ray &ray,
              const std::function<void(uint32_t)> &leaf_fn) const
{
    std::vector<int32_t> stack;
    stack.push_back(root_);
    while (!stack.empty()) {
        int32_t idx = stack.back();
        stack.pop_back();
        const BvhNode &node = nodes_[idx];
        auto hit = geom::rayBox(ray, node.box);
        if (!hit)
            continue;
        if (node.isLeaf()) {
            for (uint32_t p = 0; p < node.primCount; ++p)
                leaf_fn(primOrder_[node.primOffset + p]);
            continue;
        }
        // Near child last (popped first).
        auto hl = geom::rayBox(ray, nodes_[node.left].box);
        auto hr = geom::rayBox(ray, nodes_[node.right].box);
        float tl = hl ? hl->tenter : std::numeric_limits<float>::max();
        float tr = hr ? hr->tenter : std::numeric_limits<float>::max();
        if (tl < tr) {
            stack.push_back(node.right);
            stack.push_back(node.left);
        } else {
            stack.push_back(node.left);
            stack.push_back(node.right);
        }
    }
}

void
Bvh::pointQuery(const geom::Vec3 &point, float radius,
                const std::function<void(uint32_t)> &leaf_fn) const
{
    std::vector<int32_t> stack;
    stack.push_back(root_);
    geom::Vec3 r(radius, radius, radius);
    while (!stack.empty()) {
        int32_t idx = stack.back();
        stack.pop_back();
        const BvhNode &node = nodes_[idx];
        geom::Aabb inflated(node.box.lo - r, node.box.hi + r);
        if (!inflated.contains(point))
            continue;
        if (node.isLeaf()) {
            for (uint32_t p = 0; p < node.primCount; ++p)
                leaf_fn(primOrder_[node.primOffset + p]);
            continue;
        }
        stack.push_back(node.left);
        stack.push_back(node.right);
    }
}

SerializedBvh
Bvh::serialize(mem::GlobalMemory &gmem) const
{
    using L = BvhNodeLayout;
    SerializedBvh out;

    // Leaf records first (variable size, 16B aligned).
    std::vector<uint64_t> leaf_addr(nodes_.size(), 0);
    uint64_t leaf_bytes = 0;
    for (size_t i = 0; i < nodes_.size(); ++i) {
        if (!nodes_[i].isLeaf())
            continue;
        uint64_t bytes = 4 + 4ull * nodes_[i].primCount;
        leaf_bytes += (bytes + 15) & ~15ull;
    }
    out.leafBase = gmem.alloc(std::max<uint64_t>(leaf_bytes, 16), 64);
    out.leafBytes = leaf_bytes;
    uint64_t cursor = out.leafBase;
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const BvhNode &node = nodes_[i];
        if (!node.isLeaf())
            continue;
        leaf_addr[i] = cursor;
        gmem.write<uint32_t>(cursor + BvhLeafLayout::kOffCount,
                             node.primCount);
        for (uint32_t p = 0; p < node.primCount; ++p) {
            gmem.write<uint32_t>(cursor + BvhLeafLayout::kOffPrims + 4 * p,
                                 primOrder_[node.primOffset + p]);
        }
        cursor += (4 + 4ull * node.primCount + 15) & ~15ull;
    }

    // Inner nodes, BFS order.
    std::vector<int32_t> inner;
    std::vector<uint32_t> slot(nodes_.size(), 0);
    if (!nodes_[root_].isLeaf()) {
        inner.push_back(root_);
        slot[root_] = 0;
        for (size_t head = 0; head < inner.size(); ++head) {
            const BvhNode &node = nodes_[inner[head]];
            for (int32_t c : {node.left, node.right}) {
                if (!nodes_[c].isLeaf()) {
                    slot[c] = static_cast<uint32_t>(inner.size());
                    inner.push_back(c);
                }
            }
        }
    }
    out.nodeBase = gmem.alloc(
        std::max<uint64_t>(inner.size() * L::kNodeBytes, 64), 64);
    out.nodeBytes = inner.size() * L::kNodeBytes;

    auto ref_of = [&](int32_t idx) {
        if (nodes_[idx].isLeaf())
            return BvhRef::leaf(leaf_addr[idx]);
        return BvhRef::inner(out.nodeBase +
                             static_cast<uint64_t>(slot[idx]) *
                                 L::kNodeBytes);
    };

    for (size_t s = 0; s < inner.size(); ++s) {
        const BvhNode &node = nodes_[inner[s]];
        uint64_t addr = out.nodeBase + s * L::kNodeBytes;
        const geom::Aabb &bl = nodes_[node.left].box;
        const geom::Aabb &br = nodes_[node.right].box;
        for (int a = 0; a < 3; ++a) {
            gmem.write<float>(addr + L::kOffLoL + 4 * a, bl.lo[a]);
            gmem.write<float>(addr + L::kOffHiL + 4 * a, bl.hi[a]);
            gmem.write<float>(addr + L::kOffLoR + 4 * a, br.lo[a]);
            gmem.write<float>(addr + L::kOffHiR + 4 * a, br.hi[a]);
        }
        gmem.write<uint32_t>(addr + L::kOffLeft, ref_of(node.left).raw);
        gmem.write<uint32_t>(addr + L::kOffRight, ref_of(node.right).raw);
        gmem.write<uint32_t>(addr + L::kOffMeta, 0);
    }

    out.root = ref_of(root_);
    return out;
}

geom::Vec3
transformPoint(const float m[12], const geom::Vec3 &p)
{
    return {m[0] * p.x + m[1] * p.y + m[2] * p.z + m[3],
            m[4] * p.x + m[5] * p.y + m[6] * p.z + m[7],
            m[8] * p.x + m[9] * p.y + m[10] * p.z + m[11]};
}

geom::Vec3
transformDir(const float m[12], const geom::Vec3 &d)
{
    return {m[0] * d.x + m[1] * d.y + m[2] * d.z,
            m[4] * d.x + m[5] * d.y + m[6] * d.z,
            m[8] * d.x + m[9] * d.y + m[10] * d.z};
}

} // namespace tta::trees
