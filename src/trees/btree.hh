/**
 * @file
 * 9-wide B-Tree, B*Tree and B+Tree index structures.
 *
 * The node layout matches the paper's TTA configuration: the modified
 * Ray-Box unit compares a query against nine keys at once (three per
 * min/max pair), so a node holds nine key slots and nine children, with
 * unused key slots padded by +infinity sentinels. The rightmost child
 * covers queries greater than every real key (sentinel +inf makes
 * "query < keys[8]" always true, so Algorithm 1 always resolves).
 *
 * Children of a node are serialized contiguously, so the hardware can
 * express the next child as an offset from the first child's address —
 * the one-hot + offset output of the modified min/max datapath (Fig 9).
 *
 * Variants:
 *  - B-Tree:  keys (and associated entries) at every level; a query can
 *             terminate early at an inner node. Moderate fill.
 *  - B*Tree:  same semantics, but nodes are kept ~7/8 full (the B*
 *             high-occupancy invariant), yielding shallower, denser trees.
 *  - B+Tree:  inner keys are routers only; every query descends to a
 *             leaf. Uniform depth => lower control-flow divergence,
 *             which is why the paper sees smaller speedups for B+Tree.
 */

#ifndef TTA_TREES_BTREE_HH
#define TTA_TREES_BTREE_HH

#include <cstdint>
#include <vector>

#include "mem/global_memory.hh"

namespace tta::trees {

enum class BTreeKind
{
    BTree,
    BStarTree,
    BPlusTree,
};

const char *bTreeKindName(BTreeKind kind);

/** Serialized node layout (64 bytes, one cache-line aligned). */
struct BTreeNodeLayout
{
    static constexpr uint32_t kWidth = 9;     //!< children per node
    static constexpr uint32_t kMaxKeys = 8;   //!< real keys per node
    static constexpr uint32_t kNodeBytes = 64;

    static constexpr uint32_t kOffFlags = 0;     //!< u32: bit0 leaf, 8..15 nkeys
    static constexpr uint32_t kOffChildBase = 4; //!< u32 byte addr of child 0
    static constexpr uint32_t kOffKeys = 8;      //!< f32 keys[9]
    // bytes 44..63 reserved

    static constexpr uint32_t kLeafFlag = 1u;
};

/** Result of one reference query. */
struct BTreeQueryResult
{
    bool found = false;
    uint32_t nodesVisited = 0;
    uint32_t depth = 0;
    uint64_t terminalNode = 0; //!< serialized address of the last node
};

/**
 * Host-side tree with a serializer into simulated memory.
 *
 * Built by bulk-loading a sorted key set; the fill factor (keys per node)
 * depends on the variant. Keys are exact-representable floats so equality
 * tests are meaningful.
 */
class BTree
{
  public:
    /**
     * Bulk-load a tree.
     * @param kind  variant (fill factor + key placement).
     * @param keys  key set; will be sorted and deduplicated.
     */
    BTree(BTreeKind kind, std::vector<float> keys);

    BTreeKind kind() const { return kind_; }
    size_t numKeys() const { return keys_.size(); }
    size_t numNodes() const { return nodes_.size(); }
    uint32_t height() const { return height_; }

    /** Reference search on the host structure. */
    BTreeQueryResult search(float query) const;

    /**
     * Serialize into simulated memory; children of each node contiguous.
     * @return byte address of the root node.
     */
    uint64_t serialize(mem::GlobalMemory &gmem) const;

    /** Reference search against the *serialized* image (for tests). */
    static BTreeQueryResult searchSerialized(const mem::GlobalMemory &gmem,
                                             uint64_t root_addr,
                                             float query);

  private:
    struct Node
    {
        bool leaf = false;
        std::vector<float> keys;       //!< real keys (<= kMaxKeys)
        std::vector<uint32_t> children; //!< node indices; keys.size()+1
    };

    /** Recursively bulk-load [lo, hi) of keys_; returns node index. */
    uint32_t buildRange(size_t lo, size_t hi, uint32_t fill_keys);
    uint32_t computeHeight(uint32_t node) const;

    BTreeKind kind_;
    std::vector<float> keys_;
    std::vector<Node> nodes_;
    uint32_t root_ = 0;
    uint32_t height_ = 0;
};

} // namespace tta::trees

#endif // TTA_TREES_BTREE_HH
