#include "trees/pointcloud.hh"

#include <cmath>

#include "geom/intersect.hh"

namespace tta::trees {

PointCloud
PointCloud::generateLidarLike(size_t n, uint64_t seed)
{
    sim::Rng rng(seed);
    PointCloud cloud;
    cloud.points.reserve(n);

    // 55% ground plane with mild undulation, scanned in range rings.
    size_t n_ground = n * 55 / 100;
    for (size_t i = 0; i < n_ground; ++i) {
        float r = 2.0f + 78.0f * std::sqrt(rng.nextFloat());
        float phi = rng.uniform(0.0f, 6.2831853f);
        float x = r * std::cos(phi);
        float y = r * std::sin(phi);
        float z = 0.05f * std::sin(0.2f * x) + 0.02f * rng.gaussian();
        cloud.points.push_back({x, y, z});
    }

    // 35% object clusters (cars / pedestrians): dense gaussian blobs.
    size_t n_objects = n * 35 / 100;
    size_t n_clusters = std::max<size_t>(8, n / 4096);
    std::vector<geom::Vec3> centers;
    std::vector<geom::Vec3> sizes;
    for (size_t c = 0; c < n_clusters; ++c) {
        float r = rng.uniform(5.0f, 60.0f);
        float phi = rng.uniform(0.0f, 6.2831853f);
        centers.push_back({r * std::cos(phi), r * std::sin(phi),
                           rng.uniform(0.4f, 1.2f)});
        sizes.push_back({rng.uniform(0.5f, 2.5f), rng.uniform(0.5f, 2.5f),
                         rng.uniform(0.3f, 1.0f)});
    }
    for (size_t i = 0; i < n_objects; ++i) {
        size_t c = rng.nextBounded(n_clusters);
        cloud.points.push_back(
            {centers[c].x + sizes[c].x * 0.5f * rng.gaussian(),
             centers[c].y + sizes[c].y * 0.5f * rng.gaussian(),
             centers[c].z + sizes[c].z * 0.5f * rng.gaussian()});
    }

    // Remainder: sparse background / vegetation noise.
    while (cloud.points.size() < n) {
        cloud.points.push_back({rng.uniform(-80.0f, 80.0f),
                                rng.uniform(-80.0f, 80.0f),
                                rng.uniform(0.0f, 6.0f)});
    }
    return cloud;
}

uint64_t
PointCloud::serialize(mem::GlobalMemory &gmem) const
{
    uint64_t base =
        gmem.alloc(points.size() * PointLayout::kPointBytes, 64);
    for (size_t i = 0; i < points.size(); ++i) {
        uint64_t addr = base + i * PointLayout::kPointBytes;
        gmem.write<float>(addr + 0, points[i].x);
        gmem.write<float>(addr + 4, points[i].y);
        gmem.write<float>(addr + 8, points[i].z);
        gmem.write<float>(addr + 12, 0.0f);
    }
    return base;
}

RadiusSearchIndex::RadiusSearchIndex(const PointCloud &cloud, float radius)
    : cloud_(&cloud), radius_(radius)
{
    std::vector<geom::Aabb> boxes;
    boxes.reserve(cloud.points.size());
    geom::Vec3 r(radius, radius, radius);
    for (const auto &p : cloud.points)
        boxes.emplace_back(p - r, p + r);
    bvh_.build(boxes, 4);
}

std::vector<uint32_t>
RadiusSearchIndex::query(const geom::Vec3 &q) const
{
    std::vector<uint32_t> hits;
    lastCandidates_ = 0;
    bvh_.pointQuery(q, 0.0f, [&](uint32_t id) {
        ++lastCandidates_;
        if (geom::pointWithinRadius(q, cloud_->points[id], radius_))
            hits.push_back(id);
    });
    return hits;
}

} // namespace tta::trees
