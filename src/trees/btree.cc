#include "trees/btree.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"

namespace tta::trees {

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr uint32_t kRouterFlag = 2u; //!< inner keys are routers (B+Tree)

/** Keys per node for each variant's bulk load. */
uint32_t
fillKeys(BTreeKind kind)
{
    switch (kind) {
      case BTreeKind::BTree: return 5;     // moderate occupancy
      case BTreeKind::BStarTree: return 7; // B*: ~7/8 full nodes
      case BTreeKind::BPlusTree: return 6;
    }
    return 5;
}

} // namespace

const char *
bTreeKindName(BTreeKind kind)
{
    switch (kind) {
      case BTreeKind::BTree: return "B-Tree";
      case BTreeKind::BStarTree: return "B*Tree";
      case BTreeKind::BPlusTree: return "B+Tree";
    }
    return "?";
}

BTree::BTree(BTreeKind kind, std::vector<float> keys)
    : kind_(kind), keys_(std::move(keys))
{
    std::sort(keys_.begin(), keys_.end());
    keys_.erase(std::unique(keys_.begin(), keys_.end()), keys_.end());

    if (kind_ == BTreeKind::BPlusTree) {
        // Leaves hold every key; router levels above.
        uint32_t fill = fillKeys(kind_);
        std::vector<uint32_t> level;  // node indices of the current level
        std::vector<float> firsts;    // first key of each node's subtree
        if (keys_.empty()) {
            nodes_.push_back({true, {}, {}});
            level.push_back(0);
            firsts.push_back(0.0f);
        }
        for (size_t lo = 0; lo < keys_.size(); lo += fill) {
            size_t hi = std::min(keys_.size(), lo + fill);
            Node leaf;
            leaf.leaf = true;
            leaf.keys.assign(keys_.begin() + lo, keys_.begin() + hi);
            nodes_.push_back(std::move(leaf));
            level.push_back(static_cast<uint32_t>(nodes_.size() - 1));
            firsts.push_back(keys_[lo]);
        }
        // Build router levels until a single root remains.
        const uint32_t group = fill + 1; // children per inner node
        while (level.size() > 1) {
            std::vector<uint32_t> next_level;
            std::vector<float> next_firsts;
            for (size_t lo = 0; lo < level.size(); lo += group) {
                size_t hi = std::min(level.size(), lo + group);
                Node inner;
                inner.leaf = false;
                for (size_t c = lo; c < hi; ++c) {
                    inner.children.push_back(level[c]);
                    if (c > lo)
                        inner.keys.push_back(firsts[c]); // router keys
                }
                nodes_.push_back(std::move(inner));
                next_level.push_back(
                    static_cast<uint32_t>(nodes_.size() - 1));
                next_firsts.push_back(firsts[lo]);
            }
            level = std::move(next_level);
            firsts = std::move(next_firsts);
        }
        root_ = level.front();
    } else {
        root_ = buildRange(0, keys_.size(), fillKeys(kind_));
    }
    height_ = computeHeight(root_);
}

uint32_t
BTree::buildRange(size_t lo, size_t hi, uint32_t fill_keys)
{
    size_t n = hi - lo;
    if (n <= BTreeNodeLayout::kMaxKeys) {
        Node leaf;
        leaf.leaf = true;
        leaf.keys.assign(keys_.begin() + lo, keys_.begin() + hi);
        nodes_.push_back(std::move(leaf));
        return static_cast<uint32_t>(nodes_.size() - 1);
    }
    // nk separator keys at this node, nk+1 child subranges.
    uint32_t nk = std::min<uint32_t>(fill_keys,
                                     BTreeNodeLayout::kMaxKeys);
    uint32_t n_children = nk + 1;
    size_t remaining = n - nk;
    // Distribute the remaining keys over the children as evenly as
    // possible, then pick the separators between consecutive chunks.
    std::vector<float> seps;
    std::vector<std::pair<size_t, size_t>> ranges;
    size_t pos = lo;
    for (uint32_t c = 0; c < n_children; ++c) {
        size_t chunk = remaining / n_children +
                       (c < remaining % n_children ? 1 : 0);
        ranges.emplace_back(pos, pos + chunk);
        pos += chunk;
        if (c + 1 < n_children) {
            seps.push_back(keys_[pos]);
            ++pos; // the separator key lives in this node
        }
    }
    panic_if(pos != hi, "bulk load accounting error");

    uint32_t node_idx;
    {
        Node inner;
        inner.leaf = false;
        inner.keys = seps;
        nodes_.push_back(std::move(inner));
        node_idx = static_cast<uint32_t>(nodes_.size() - 1);
    }
    std::vector<uint32_t> children;
    for (auto [clo, chi] : ranges)
        children.push_back(buildRange(clo, chi, fill_keys));
    nodes_[node_idx].children = std::move(children);
    return node_idx;
}

uint32_t
BTree::computeHeight(uint32_t node) const
{
    const Node &n = nodes_[node];
    if (n.leaf)
        return 1;
    uint32_t h = 0;
    for (uint32_t c : n.children)
        h = std::max(h, computeHeight(c));
    return h + 1;
}

BTreeQueryResult
BTree::search(float query) const
{
    BTreeQueryResult result;
    const bool router_inner = kind_ == BTreeKind::BPlusTree;
    uint32_t cur = root_;
    while (true) {
        const Node &node = nodes_[cur];
        ++result.nodesVisited;
        ++result.depth;
        if (node.leaf) {
            for (float k : node.keys) {
                if (k == query) {
                    result.found = true;
                    break;
                }
            }
            return result;
        }
        // Inner node: Algorithm 1.
        uint32_t child = static_cast<uint32_t>(node.keys.size());
        bool descended = false;
        for (size_t i = 0; i < node.keys.size(); ++i) {
            if (!router_inner && node.keys[i] == query) {
                result.found = true;
                return result;
            }
            if (query < node.keys[i]) {
                child = static_cast<uint32_t>(i);
                descended = true;
                break;
            }
        }
        (void)descended;
        cur = node.children[child];
    }
}

uint64_t
BTree::serialize(mem::GlobalMemory &gmem) const
{
    using L = BTreeNodeLayout;
    // BFS ordering guarantees each node's children occupy consecutive
    // slots (the hardware addresses child i as childBase + i*64).
    std::vector<uint32_t> order;
    std::vector<uint32_t> slot_of(nodes_.size(), 0);
    order.push_back(root_);
    slot_of[root_] = 0;
    for (size_t head = 0; head < order.size(); ++head) {
        const Node &node = nodes_[order[head]];
        for (uint32_t c : node.children) {
            slot_of[c] = static_cast<uint32_t>(order.size());
            order.push_back(c);
        }
    }

    uint64_t base = gmem.alloc(order.size() * L::kNodeBytes, 64);
    for (size_t s = 0; s < order.size(); ++s) {
        const Node &node = nodes_[order[s]];
        uint64_t addr = base + s * L::kNodeBytes;
        uint32_t flags = (node.leaf ? L::kLeafFlag : 0) |
            (kind_ == BTreeKind::BPlusTree ? kRouterFlag : 0) |
            (static_cast<uint32_t>(node.keys.size()) << 8);
        gmem.write<uint32_t>(addr + L::kOffFlags, flags);
        uint32_t child_base = 0;
        if (!node.children.empty()) {
            child_base = static_cast<uint32_t>(
                base + static_cast<uint64_t>(slot_of[node.children[0]]) *
                           L::kNodeBytes);
        }
        gmem.write<uint32_t>(addr + L::kOffChildBase, child_base);
        for (uint32_t i = 0; i < L::kWidth; ++i) {
            float k = i < node.keys.size() ? node.keys[i] : kInf;
            gmem.write<float>(addr + L::kOffKeys + i * 4, k);
        }
    }
    return base;
}

BTreeQueryResult
BTree::searchSerialized(const mem::GlobalMemory &gmem, uint64_t root_addr,
                        float query)
{
    using L = BTreeNodeLayout;
    BTreeQueryResult result;
    uint64_t cur = root_addr;
    while (true) {
        ++result.nodesVisited;
        ++result.depth;
        result.terminalNode = cur;
        uint32_t flags = gmem.read<uint32_t>(cur + L::kOffFlags);
        bool leaf = flags & L::kLeafFlag;
        bool router = flags & kRouterFlag;
        uint32_t n_keys = (flags >> 8) & 0xff;
        uint32_t child_base = gmem.read<uint32_t>(cur + L::kOffChildBase);

        uint32_t child = n_keys;
        bool resolved = false;
        for (uint32_t i = 0; i < L::kWidth && !resolved; ++i) {
            float k = gmem.read<float>(cur + L::kOffKeys + i * 4);
            if (k == query && i < n_keys && (leaf || !router)) {
                result.found = true;
                return result;
            }
            if (query < k) {
                child = i;
                resolved = true;
            }
        }
        if (leaf)
            return result; // no key matched
        cur = child_base + static_cast<uint64_t>(child) * L::kNodeBytes;
    }
}

} // namespace tta::trees
