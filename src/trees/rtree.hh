/**
 * @file
 * R-Tree spatial index (extension workload).
 *
 * The paper's introduction motivates R-Trees alongside B-Trees as the
 * index structures GPUs should accelerate; its evaluation stops at the
 * B-Tree variants. This module demonstrates TTA generality on the
 * R-Tree: rectangle range queries whose inner-node test — interval
 * overlap per axis — maps onto the same min/max comparator datapath the
 * Query-Key unit repurposes (a 2D slab test is a degenerate Ray-Box).
 *
 * Nodes are 128 bytes (one cache line): a header plus up to seven
 * 16-byte child entries (x0, y0, x1, y1). The tree is bulk-loaded with
 * Sort-Tile-Recursive packing; children are serialized contiguously so
 * the hardware addresses child i as childBase + i * 128.
 */

#ifndef TTA_TREES_RTREE_HH
#define TTA_TREES_RTREE_HH

#include <cstdint>
#include <vector>

#include "geom/simd.hh"
#include "mem/global_memory.hh"

namespace tta::trees {

/** A 2D axis-aligned rectangle. */
struct Rect2D
{
    float x0 = 0.0f;
    float y0 = 0.0f;
    float x1 = 0.0f;
    float y1 = 0.0f;

    bool
    overlaps(const Rect2D &o) const
    {
        return x0 <= o.x1 && o.x0 <= x1 && y0 <= o.y1 && o.y0 <= y1;
    }

    void
    extend(const Rect2D &o)
    {
        x0 = std::min(x0, o.x0);
        y0 = std::min(y0, o.y0);
        x1 = std::max(x1, o.x1);
        y1 = std::max(y1, o.y1);
    }
};

/** Serialized node layout (128 bytes). */
struct RTreeNodeLayout
{
    static constexpr uint32_t kFanout = 7;
    static constexpr uint32_t kNodeBytes = 128;
    static constexpr uint32_t kOffFlags = 0;     //!< bit0 leaf, 8..15 count
    static constexpr uint32_t kOffChildBase = 4; //!< u32 byte addr
    static constexpr uint32_t kOffEntries = 16;  //!< kFanout x 4 floats
    static constexpr uint32_t kLeafFlag = 1u;
};

/**
 * Struct-of-arrays serialized node layout (fanout up to 8, 160 bytes):
 * the same header as the AoS layout, then the child rectangles stored as
 * four f32[8] plane arrays so one node read feeds a rectOverlapBatch
 * call. Unused lanes hold the empty sentinel (x0 > x1); the traversal
 * masks them by count anyway.
 */
struct RTreeNodeLayoutSoa
{
    static constexpr uint32_t kFanout = 8;
    static constexpr uint32_t kNodeBytes = 160;
    static constexpr uint32_t kOffFlags = 0;     //!< bit0 leaf, 8..15 count
    static constexpr uint32_t kOffChildBase = 4; //!< u32 byte addr
    static constexpr uint32_t kOffX0 = 16;       //!< f32[8]
    static constexpr uint32_t kOffY0 = 48;
    static constexpr uint32_t kOffX1 = 80;
    static constexpr uint32_t kOffY1 = 112;
    static constexpr uint32_t kLeafFlag = 1u;
};

class RTree
{
  public:
    /**
     * STR bulk load over object rectangles.
     * @param fanout children per node, in [2, 8]. The default (7) fills
     *        one 128-byte AoS node; SoA serialization wants 8.
     */
    explicit RTree(std::vector<Rect2D> objects,
                   uint32_t fanout = RTreeNodeLayout::kFanout);

    size_t numObjects() const { return objects_.size(); }
    size_t numNodes() const { return nodes_.size(); }
    uint32_t height() const { return height_; }
    uint32_t fanout() const { return fanout_; }

    /** Reference range query: number of objects overlapping `query`. */
    uint32_t countOverlaps(const Rect2D &query) const;

    /**
     * Batched range query over the precomputed SoA node mirror
     * (rectOverlapBatch per node). Identical count and node-visit
     * sequence to countOverlaps — the per-lane test is bit-equal.
     */
    uint32_t countOverlapsSoa(const Rect2D &query) const;

    /** Nodes visited by the reference query (divergence indicator). */
    uint32_t lastVisits() const { return lastVisits_; }

    /** Serialize; returns the root node's byte address. */
    uint64_t serialize(mem::GlobalMemory &gmem) const;

    /**
     * Serialize with the SoA node layout (RTreeNodeLayoutSoa); requires
     * fanout() <= 8. Returns the root node's byte address.
     */
    uint64_t serializeSoa(mem::GlobalMemory &gmem) const;

    /** Objects in serialized (leaf-major) order. */
    const std::vector<Rect2D> &orderedObjects() const { return objects_; }

  private:
    struct Node
    {
        bool leaf = false;
        Rect2D box;
        std::vector<uint32_t> children; //!< node indices (inner)
        uint32_t objOffset = 0;         //!< into objects_ (leaf)
        uint32_t objCount = 0;
    };

    uint32_t packLevel(std::vector<uint32_t> level);
    void buildSoaMirror();

    std::vector<Rect2D> objects_; //!< leaf-major after construction
    std::vector<Node> nodes_;
    /** Per-node SoA copy of the child (or leaf object) rectangles. */
    std::vector<geom::WideRects> nodeRects_;
    uint32_t fanout_ = RTreeNodeLayout::kFanout;
    uint32_t root_ = 0;
    uint32_t height_ = 0;
    mutable uint32_t lastVisits_ = 0;
};

} // namespace tta::trees

#endif // TTA_TREES_RTREE_HH
