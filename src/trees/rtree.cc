#include "trees/rtree.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>

#include "geom/intersect.hh"
#include "sim/logging.hh"

namespace tta::trees {

using L = RTreeNodeLayout;

RTree::RTree(std::vector<Rect2D> objects, uint32_t fanout)
    : objects_(std::move(objects)), fanout_(fanout)
{
    panic_if(objects_.empty(), "RTree with no objects");
    panic_if(fanout_ < 2 || fanout_ > RTreeNodeLayoutSoa::kFanout,
             "RTree fanout %u not in [2, 8]", fanout_);

    // Sort-Tile-Recursive: sort by x-center, slice into vertical strips
    // of ~sqrt(n/fanout) runs, sort each strip by y-center, chop into
    // leaf runs of `kFanout` objects.
    std::vector<uint32_t> ids(objects_.size());
    std::iota(ids.begin(), ids.end(), 0u);
    auto cx = [&](uint32_t id) {
        return objects_[id].x0 + objects_[id].x1;
    };
    auto cy = [&](uint32_t id) {
        return objects_[id].y0 + objects_[id].y1;
    };
    std::sort(ids.begin(), ids.end(),
              [&](uint32_t a, uint32_t b) { return cx(a) < cx(b); });

    size_t n_leaves = (objects_.size() + fanout_ - 1) / fanout_;
    size_t strips = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(n_leaves))));
    size_t per_strip =
        (objects_.size() + strips - 1) / strips;

    std::vector<Rect2D> ordered;
    ordered.reserve(objects_.size());
    std::vector<uint32_t> leaves;
    for (size_t s = 0; s < strips; ++s) {
        size_t lo = s * per_strip;
        if (lo >= ids.size())
            break;
        size_t hi = std::min(ids.size(), lo + per_strip);
        std::sort(ids.begin() + lo, ids.begin() + hi,
                  [&](uint32_t a, uint32_t b) { return cy(a) < cy(b); });
        for (size_t run = lo; run < hi; run += fanout_) {
            size_t run_hi = std::min(hi, run + fanout_);
            Node leaf;
            leaf.leaf = true;
            leaf.objOffset = static_cast<uint32_t>(ordered.size());
            leaf.objCount = static_cast<uint32_t>(run_hi - run);
            leaf.box = objects_[ids[run]];
            for (size_t i = run; i < run_hi; ++i) {
                leaf.box.extend(objects_[ids[i]]);
                ordered.push_back(objects_[ids[i]]);
            }
            nodes_.push_back(std::move(leaf));
            leaves.push_back(static_cast<uint32_t>(nodes_.size() - 1));
        }
    }
    objects_ = std::move(ordered);
    root_ = packLevel(std::move(leaves));

    height_ = 1;
    for (uint32_t cur = root_; !nodes_[cur].leaf;
         cur = nodes_[cur].children[0])
        ++height_;

    buildSoaMirror();
}

uint32_t
RTree::packLevel(std::vector<uint32_t> level)
{
    while (level.size() > 1) {
        std::vector<uint32_t> next;
        for (size_t lo = 0; lo < level.size(); lo += fanout_) {
            size_t hi = std::min(level.size(), lo + fanout_);
            Node inner;
            inner.leaf = false;
            inner.box = nodes_[level[lo]].box;
            for (size_t c = lo; c < hi; ++c) {
                inner.children.push_back(level[c]);
                inner.box.extend(nodes_[level[c]].box);
            }
            nodes_.push_back(std::move(inner));
            next.push_back(static_cast<uint32_t>(nodes_.size() - 1));
        }
        level = std::move(next);
    }
    return level.front();
}

/**
 * Populate nodeRects_: per node, the child boxes (inner) or leaf object
 * rectangles in SoA lanes, unused lanes holding the empty sentinel.
 */
void
RTree::buildSoaMirror()
{
    nodeRects_.assign(nodes_.size(), geom::WideRects{});
    for (size_t n = 0; n < nodes_.size(); ++n) {
        const Node &node = nodes_[n];
        geom::WideRects &wide = nodeRects_[n];
        for (uint32_t i = 0; i < RTreeNodeLayoutSoa::kFanout; ++i) {
            Rect2D rect{1.0f, 1.0f, -1.0f, -1.0f}; // empty sentinel
            if (node.leaf) {
                if (i < node.objCount)
                    rect = objects_[node.objOffset + i];
            } else if (i < node.children.size()) {
                rect = nodes_[node.children[i]].box;
            }
            wide.x0[i] = rect.x0;
            wide.y0[i] = rect.y0;
            wide.x1[i] = rect.x1;
            wide.y1[i] = rect.y1;
        }
    }
}

uint32_t
RTree::countOverlapsSoa(const Rect2D &query) const
{
    uint32_t count = 0;
    lastVisits_ = 0;
    std::vector<uint32_t> stack{root_};
    while (!stack.empty()) {
        uint32_t idx = stack.back();
        const Node &node = nodes_[idx];
        stack.pop_back();
        ++lastVisits_;
        int lanes = node.leaf ? static_cast<int>(node.objCount)
                              : static_cast<int>(node.children.size());
        uint32_t mask =
            geom::rectOverlapBatch(query.x0, query.y0, query.x1, query.y1,
                                   nodeRects_[idx], lanes);
        if (node.leaf) {
            count += static_cast<uint32_t>(std::popcount(mask));
            continue;
        }
        for (int i = 0; i < lanes; ++i) {
            if (mask & (1u << i))
                stack.push_back(node.children[i]);
        }
    }
    return count;
}

uint32_t
RTree::countOverlaps(const Rect2D &query) const
{
    uint32_t count = 0;
    lastVisits_ = 0;
    std::vector<uint32_t> stack{root_};
    while (!stack.empty()) {
        const Node &node = nodes_[stack.back()];
        stack.pop_back();
        ++lastVisits_;
        if (node.leaf) {
            for (uint32_t i = 0; i < node.objCount; ++i) {
                if (objects_[node.objOffset + i].overlaps(query))
                    ++count;
            }
            continue;
        }
        for (uint32_t c : node.children) {
            if (nodes_[c].box.overlaps(query))
                stack.push_back(c);
        }
    }
    return count;
}

uint64_t
RTree::serialize(mem::GlobalMemory &gmem) const
{
    panic_if(fanout_ > L::kFanout,
             "AoS R-Tree layout holds %u entries, tree has fanout %u "
             "(use serializeSoa)",
             L::kFanout, fanout_);
    // BFS so each node's children are contiguous.
    std::vector<uint32_t> order{root_};
    std::vector<uint32_t> slot(nodes_.size(), 0);
    slot[root_] = 0;
    for (size_t head = 0; head < order.size(); ++head) {
        for (uint32_t c : nodes_[order[head]].children) {
            slot[c] = static_cast<uint32_t>(order.size());
            order.push_back(c);
        }
    }

    // Leaf object rectangles live in a contiguous array; leaves store
    // their run's base address in the childBase field.
    uint64_t obj_base = gmem.alloc(objects_.size() * 16, 128);
    for (size_t i = 0; i < objects_.size(); ++i) {
        gmem.write<float>(obj_base + 16 * i + 0, objects_[i].x0);
        gmem.write<float>(obj_base + 16 * i + 4, objects_[i].y0);
        gmem.write<float>(obj_base + 16 * i + 8, objects_[i].x1);
        gmem.write<float>(obj_base + 16 * i + 12, objects_[i].y1);
    }

    uint64_t base = gmem.alloc(order.size() * L::kNodeBytes, 128);
    for (size_t s = 0; s < order.size(); ++s) {
        const Node &node = nodes_[order[s]];
        uint64_t addr = base + s * L::kNodeBytes;
        uint32_t count = node.leaf
            ? node.objCount
            : static_cast<uint32_t>(node.children.size());
        gmem.write<uint32_t>(addr + L::kOffFlags,
                             (node.leaf ? L::kLeafFlag : 0) |
                                 (count << 8));
        uint64_t child_base = node.leaf
            ? obj_base + static_cast<uint64_t>(node.objOffset) * 16
            : base + static_cast<uint64_t>(slot[node.children[0]]) *
                  L::kNodeBytes;
        gmem.write<uint32_t>(addr + L::kOffChildBase,
                             static_cast<uint32_t>(child_base));
        for (uint32_t i = 0; i < L::kFanout; ++i) {
            Rect2D rect{1.0f, 1.0f, -1.0f, -1.0f}; // empty sentinel
            if (node.leaf) {
                if (i < node.objCount)
                    rect = objects_[node.objOffset + i];
            } else if (i < node.children.size()) {
                rect = nodes_[node.children[i]].box;
            }
            uint64_t entry = addr + L::kOffEntries + 16 * i;
            gmem.write<float>(entry + 0, rect.x0);
            gmem.write<float>(entry + 4, rect.y0);
            gmem.write<float>(entry + 8, rect.x1);
            gmem.write<float>(entry + 12, rect.y1);
        }
    }
    return base;
}

uint64_t
RTree::serializeSoa(mem::GlobalMemory &gmem) const
{
    using S = RTreeNodeLayoutSoa;
    // BFS so each node's children are contiguous (childBase + i * 160).
    std::vector<uint32_t> order{root_};
    std::vector<uint32_t> slot(nodes_.size(), 0);
    slot[root_] = 0;
    for (size_t head = 0; head < order.size(); ++head) {
        for (uint32_t c : nodes_[order[head]].children) {
            slot[c] = static_cast<uint32_t>(order.size());
            order.push_back(c);
        }
    }

    uint64_t obj_base = gmem.alloc(objects_.size() * 16, 128);
    for (size_t i = 0; i < objects_.size(); ++i) {
        gmem.write<float>(obj_base + 16 * i + 0, objects_[i].x0);
        gmem.write<float>(obj_base + 16 * i + 4, objects_[i].y0);
        gmem.write<float>(obj_base + 16 * i + 8, objects_[i].x1);
        gmem.write<float>(obj_base + 16 * i + 12, objects_[i].y1);
    }

    uint64_t base = gmem.alloc(order.size() * S::kNodeBytes, 128);
    for (size_t s = 0; s < order.size(); ++s) {
        const Node &node = nodes_[order[s]];
        uint64_t addr = base + s * S::kNodeBytes;
        uint32_t count = node.leaf
            ? node.objCount
            : static_cast<uint32_t>(node.children.size());
        gmem.write<uint32_t>(addr + S::kOffFlags,
                             (node.leaf ? S::kLeafFlag : 0) |
                                 (count << 8));
        uint64_t child_base = node.leaf
            ? obj_base + static_cast<uint64_t>(node.objOffset) * 16
            : base + static_cast<uint64_t>(slot[node.children[0]]) *
                  S::kNodeBytes;
        gmem.write<uint32_t>(addr + S::kOffChildBase,
                             static_cast<uint32_t>(child_base));
        // The SoA mirror already holds exactly these planes (sentinel
        // lanes included), so serialize straight from it.
        const geom::WideRects &wide = nodeRects_[order[s]];
        for (uint32_t i = 0; i < S::kFanout; ++i) {
            gmem.write<float>(addr + S::kOffX0 + 4 * i, wide.x0[i]);
            gmem.write<float>(addr + S::kOffY0 + 4 * i, wide.y0[i]);
            gmem.write<float>(addr + S::kOffX1 + 4 * i, wide.x1[i]);
            gmem.write<float>(addr + S::kOffY1 + 4 * i, wide.y1[i]);
        }
    }
    return base;
}

} // namespace tta::trees
