/**
 * @file
 * Bounding Volume Hierarchy: host-side binned-SAH builder plus the 64-byte
 * serialized node format the RTA/TTA/TTA+ traverse.
 *
 * Serialized inner nodes store *both children's* bounding boxes (the way
 * hardware RTAs lay out BVH2 nodes so one node fetch feeds two Ray-Box
 * tests). Child references pack a byte address with leaf/instance flags in
 * the low bits (nodes are 64B aligned, so the bits are free).
 *
 * Leaf records list primitive ids; primitives themselves (triangles,
 * spheres, points) live in separate arrays serialized by the workloads.
 * Two-level scenes put instance records at TLAS leaves; the instance
 * record carries the world-to-object transform consumed by the R-XFORM
 * unit.
 */

#ifndef TTA_TREES_BVH_HH
#define TTA_TREES_BVH_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "geom/aabb.hh"
#include "geom/ray.hh"
#include "geom/simd.hh"
#include "mem/global_memory.hh"

namespace tta::trees {

/** Host-side BVH node (binary). */
struct BvhNode
{
    geom::Aabb box;
    int32_t left = -1;   //!< node index, -1 for leaf
    int32_t right = -1;
    uint32_t primOffset = 0; //!< into primOrder() for leaves
    uint32_t primCount = 0;  //!< > 0 => leaf

    bool isLeaf() const { return primCount > 0; }
};

/** Serialized child reference: byte address | flags. */
struct BvhRef
{
    static constexpr uint32_t kLeafBit = 1u;
    static constexpr uint32_t kInstanceBit = 2u;
    static constexpr uint32_t kFlagMask = 3u;

    uint32_t raw = 0;

    static BvhRef none() { return {0}; }
    static BvhRef inner(uint64_t addr)
    {
        return {static_cast<uint32_t>(addr)};
    }
    static BvhRef leaf(uint64_t addr)
    {
        return {static_cast<uint32_t>(addr) | kLeafBit};
    }
    static BvhRef instanceLeaf(uint64_t addr)
    {
        return {static_cast<uint32_t>(addr) | kLeafBit | kInstanceBit};
    }

    bool valid() const { return raw != 0; }
    bool isLeaf() const { return raw & kLeafBit; }
    bool isInstance() const { return raw & kInstanceBit; }
    uint64_t addr() const { return raw & ~kFlagMask; }
};

/** Serialized node layout (64 bytes). */
struct BvhNodeLayout
{
    static constexpr uint32_t kNodeBytes = 64;
    static constexpr uint32_t kOffLoL = 0;   //!< f32[3]
    static constexpr uint32_t kOffHiL = 12;  //!< f32[3]
    static constexpr uint32_t kOffLoR = 24;  //!< f32[3]
    static constexpr uint32_t kOffHiR = 36;  //!< f32[3]
    static constexpr uint32_t kOffLeft = 48; //!< BvhRef
    static constexpr uint32_t kOffRight = 52;
    static constexpr uint32_t kOffMeta = 56;
};

/** Serialized leaf record: u32 count, then count u32 primitive ids. */
struct BvhLeafLayout
{
    static constexpr uint32_t kOffCount = 0;
    static constexpr uint32_t kOffPrims = 4;
};

/** Result of serializing a BVH into simulated memory. */
struct SerializedBvh
{
    BvhRef root;          //!< reference pushed to start a traversal
    uint64_t nodeBase = 0;
    uint64_t nodeBytes = 0;
    uint64_t leafBase = 0;
    uint64_t leafBytes = 0;
    /**
     * True byte footprint of one inner node, so traversal specs cover
     * the right cache lines per fetch: 64 for the binary layout, the
     * WideBvhNodeLayout stride for wide trees.
     */
    uint32_t nodeStride = BvhNodeLayout::kNodeBytes;
    uint32_t nodeWidth = 2; //!< children per inner node (2 = binary)
    bool quantized = false; //!< wide nodes use the compressed encoding
};

class Bvh
{
  public:
    /**
     * Build over primitive bounding boxes with a binned-SAH splitter.
     * @param prim_boxes one AABB per primitive.
     * @param max_leaf   target primitives per leaf.
     */
    void build(const std::vector<geom::Aabb> &prim_boxes,
               uint32_t max_leaf = 2);

    const std::vector<BvhNode> &nodes() const { return nodes_; }
    /** Primitive ids in leaf order; leaves reference ranges of this. */
    const std::vector<uint32_t> &primOrder() const { return primOrder_; }
    int32_t rootIndex() const { return root_; }
    const geom::Aabb &worldBox() const { return nodes_[root_].box; }

    /**
     * Reference traversal: depth-first, near-child-first, invoking
     * leaf_fn(primId) for every primitive whose leaf box the ray enters.
     * leaf_fn may shrink ray.tmax to prune (closest-hit search).
     */
    void traverse(geom::Ray &ray,
                  const std::function<void(uint32_t)> &leaf_fn) const;

    /** Reference point query: leaf_fn for leaves containing the point. */
    void pointQuery(const geom::Vec3 &point, float radius,
                    const std::function<void(uint32_t)> &leaf_fn) const;

    /** Serialize nodes + leaf records into simulated memory. */
    SerializedBvh serialize(mem::GlobalMemory &gmem) const;

  private:
    int32_t buildRange(std::vector<uint32_t> &ids, uint32_t lo, uint32_t hi,
                       const std::vector<geom::Aabb> &boxes,
                       uint32_t max_leaf);

    std::vector<BvhNode> nodes_;
    std::vector<uint32_t> primOrder_;
    int32_t root_ = -1;
};

/**
 * Serialized wide-node layout: the child boxes of one inner node stored
 * struct-of-arrays (all W lox floats, then all loy, ...) so a node fetch
 * feeds one rayBoxBatch / pointInBoxBatch call directly, followed by W
 * packed BvhRef words. Children pack from lane 0; the first zero ref
 * terminates the child list (BvhRef 0 is never a valid reference), so no
 * separate count word is needed.
 *
 * The quantized variant instead anchors every child plane to the node's
 * own (parent) box: f32[3] parent lo, f32[3] parent hi, then six u8[W]
 * arrays (qlox..qhiz). A child plane decodes as
 *   lo = parent_lo + scale * q        (scale = (hi-lo) / 255 per axis)
 *   hi = parent_hi - scale * q
 * with q chosen at encode time (same decode arithmetic, fixed up
 * downward) so the decoded box always CONTAINS the true child box:
 * conservative boxes visit a superset of nodes, and exact leaf tests
 * make query results identical to the uncompressed tree.
 */
struct WideBvhNodeLayout
{
    /** Node stride in bytes (rounded so BvhRef addresses stay aligned). */
    static constexpr uint32_t
    nodeBytes(uint32_t width, bool quantized)
    {
        if (quantized)
            return width == 8 ? 112 : 64;
        return width == 8 ? 256 : 128;
    }

    /** Byte offset of the packed BvhRef[W] array. */
    static constexpr uint32_t
    refsOffset(uint32_t width, bool quantized)
    {
        return quantized ? 24 + 6 * width : 24 * width;
    }

    // Uncompressed: f32[W] arrays at 4*W intervals.
    static constexpr uint32_t kOffLoX = 0;
    // Quantized: parent anchor box then the u8[W] plane arrays.
    static constexpr uint32_t kOffParentLo = 0;  //!< f32[3]
    static constexpr uint32_t kOffParentHi = 12; //!< f32[3]
    static constexpr uint32_t kOffQuant = 24;    //!< u8[W] x 6
};

/** Per-axis quantization step shared by the encoder and every decoder. */
inline float
wideQuantScale(float parent_lo, float parent_hi)
{
    return (parent_hi - parent_lo) * (1.0f / 255.0f);
}

inline float
wideQuantDecodeLo(float parent_lo, float scale, uint8_t q)
{
    return parent_lo + scale * static_cast<float>(q);
}

inline float
wideQuantDecodeHi(float parent_hi, float scale, uint8_t q)
{
    return parent_hi - scale * static_cast<float>(q);
}

/** Host-side wide node: SoA child boxes plus child links. */
struct WideBvhNode
{
    geom::WideBoxes boxes{}; //!< child boxes (decoded when quantized)
    int32_t child[8] = {};   //!< >= 0: wide node index; < 0: ~leaf index
    uint32_t count = 0;      //!< valid children (lanes pack from 0)
    geom::Aabb selfBox;      //!< union of children; quantization anchor
    uint8_t quant[6][8] = {}; //!< encoded planes qlox..qhiz (quantized)
};

/** Wide leaf: a primitive-id range of primOrder(). */
struct WideBvhLeaf
{
    uint32_t primOffset = 0;
    uint32_t primCount = 0;
};

/**
 * Wide (multi-way) BVH built by collapsing a binary Bvh: starting from a
 * node's two children, the largest-surface-area inner entry is repeatedly
 * replaced by its own children until the node holds `width` entries (the
 * standard collapse heuristic of production wide BVHs). Host traversals
 * use the batched SoA tests from geom/intersect.hh and return results
 * identical to the binary tree's (conservative quantized boxes only ever
 * widen the visited set; leaf tests are exact).
 */
class WideBvh
{
  public:
    /** Collapse `bvh` into width-way nodes (width in [2, 8]). */
    void build(const Bvh &bvh, uint32_t width, bool quantized = false);

    uint32_t width() const { return width_; }
    bool quantized() const { return quantized_; }
    const std::vector<WideBvhNode> &nodes() const { return nodes_; }
    const std::vector<WideBvhLeaf> &leaves() const { return leaves_; }
    const std::vector<uint32_t> &primOrder() const { return primOrder_; }

    /** Batched mirror of Bvh::traverse (near-child-first ordering). */
    void traverse(geom::Ray &ray,
                  const std::function<void(uint32_t)> &leaf_fn) const;

    /** Batched mirror of Bvh::pointQuery. */
    void pointQuery(const geom::Vec3 &point, float radius,
                    const std::function<void(uint32_t)> &leaf_fn) const;

    /** Serialize into simulated memory with the WideBvhNodeLayout. */
    SerializedBvh serialize(mem::GlobalMemory &gmem) const;

  private:
    int32_t collapse(const Bvh &bvh, int32_t binary_idx);
    void encodeNode(WideBvhNode &node, const geom::Aabb *child_boxes);

    std::vector<WideBvhNode> nodes_;
    std::vector<WideBvhLeaf> leaves_;
    std::vector<uint32_t> primOrder_;
    uint32_t width_ = 4;
    bool quantized_ = false;
    int32_t root_ = -1;     //!< wide node index; -1 when the root is a leaf
    int32_t rootLeaf_ = -1; //!< leaf index when the whole tree is one leaf
};

/** Instance record for two-level scenes (64 bytes). */
struct InstanceRecord
{
    static constexpr uint32_t kBytes = 64;
    static constexpr uint32_t kOffTransform = 0; //!< f32[12] world->object
    static constexpr uint32_t kOffBlasRoot = 48; //!< BvhRef of the BLAS

    /** Row-major 3x4 affine transform. */
    float worldToObject[12];
    BvhRef blasRoot;
};

/** Apply a 3x4 row-major affine transform to a point / direction. */
geom::Vec3 transformPoint(const float m[12], const geom::Vec3 &p);
geom::Vec3 transformDir(const float m[12], const geom::Vec3 &d);

} // namespace tta::trees

#endif // TTA_TREES_BVH_HH
