/**
 * @file
 * Bounding Volume Hierarchy: host-side binned-SAH builder plus the 64-byte
 * serialized node format the RTA/TTA/TTA+ traverse.
 *
 * Serialized inner nodes store *both children's* bounding boxes (the way
 * hardware RTAs lay out BVH2 nodes so one node fetch feeds two Ray-Box
 * tests). Child references pack a byte address with leaf/instance flags in
 * the low bits (nodes are 64B aligned, so the bits are free).
 *
 * Leaf records list primitive ids; primitives themselves (triangles,
 * spheres, points) live in separate arrays serialized by the workloads.
 * Two-level scenes put instance records at TLAS leaves; the instance
 * record carries the world-to-object transform consumed by the R-XFORM
 * unit.
 */

#ifndef TTA_TREES_BVH_HH
#define TTA_TREES_BVH_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "geom/aabb.hh"
#include "geom/ray.hh"
#include "mem/global_memory.hh"

namespace tta::trees {

/** Host-side BVH node (binary). */
struct BvhNode
{
    geom::Aabb box;
    int32_t left = -1;   //!< node index, -1 for leaf
    int32_t right = -1;
    uint32_t primOffset = 0; //!< into primOrder() for leaves
    uint32_t primCount = 0;  //!< > 0 => leaf

    bool isLeaf() const { return primCount > 0; }
};

/** Serialized child reference: byte address | flags. */
struct BvhRef
{
    static constexpr uint32_t kLeafBit = 1u;
    static constexpr uint32_t kInstanceBit = 2u;
    static constexpr uint32_t kFlagMask = 3u;

    uint32_t raw = 0;

    static BvhRef none() { return {0}; }
    static BvhRef inner(uint64_t addr)
    {
        return {static_cast<uint32_t>(addr)};
    }
    static BvhRef leaf(uint64_t addr)
    {
        return {static_cast<uint32_t>(addr) | kLeafBit};
    }
    static BvhRef instanceLeaf(uint64_t addr)
    {
        return {static_cast<uint32_t>(addr) | kLeafBit | kInstanceBit};
    }

    bool valid() const { return raw != 0; }
    bool isLeaf() const { return raw & kLeafBit; }
    bool isInstance() const { return raw & kInstanceBit; }
    uint64_t addr() const { return raw & ~kFlagMask; }
};

/** Serialized node layout (64 bytes). */
struct BvhNodeLayout
{
    static constexpr uint32_t kNodeBytes = 64;
    static constexpr uint32_t kOffLoL = 0;   //!< f32[3]
    static constexpr uint32_t kOffHiL = 12;  //!< f32[3]
    static constexpr uint32_t kOffLoR = 24;  //!< f32[3]
    static constexpr uint32_t kOffHiR = 36;  //!< f32[3]
    static constexpr uint32_t kOffLeft = 48; //!< BvhRef
    static constexpr uint32_t kOffRight = 52;
    static constexpr uint32_t kOffMeta = 56;
};

/** Serialized leaf record: u32 count, then count u32 primitive ids. */
struct BvhLeafLayout
{
    static constexpr uint32_t kOffCount = 0;
    static constexpr uint32_t kOffPrims = 4;
};

/** Result of serializing a BVH into simulated memory. */
struct SerializedBvh
{
    BvhRef root;          //!< reference pushed to start a traversal
    uint64_t nodeBase = 0;
    uint64_t nodeBytes = 0;
    uint64_t leafBase = 0;
    uint64_t leafBytes = 0;
};

class Bvh
{
  public:
    /**
     * Build over primitive bounding boxes with a binned-SAH splitter.
     * @param prim_boxes one AABB per primitive.
     * @param max_leaf   target primitives per leaf.
     */
    void build(const std::vector<geom::Aabb> &prim_boxes,
               uint32_t max_leaf = 2);

    const std::vector<BvhNode> &nodes() const { return nodes_; }
    /** Primitive ids in leaf order; leaves reference ranges of this. */
    const std::vector<uint32_t> &primOrder() const { return primOrder_; }
    int32_t rootIndex() const { return root_; }
    const geom::Aabb &worldBox() const { return nodes_[root_].box; }

    /**
     * Reference traversal: depth-first, near-child-first, invoking
     * leaf_fn(primId) for every primitive whose leaf box the ray enters.
     * leaf_fn may shrink ray.tmax to prune (closest-hit search).
     */
    void traverse(geom::Ray &ray,
                  const std::function<void(uint32_t)> &leaf_fn) const;

    /** Reference point query: leaf_fn for leaves containing the point. */
    void pointQuery(const geom::Vec3 &point, float radius,
                    const std::function<void(uint32_t)> &leaf_fn) const;

    /** Serialize nodes + leaf records into simulated memory. */
    SerializedBvh serialize(mem::GlobalMemory &gmem) const;

  private:
    int32_t buildRange(std::vector<uint32_t> &ids, uint32_t lo, uint32_t hi,
                       const std::vector<geom::Aabb> &boxes,
                       uint32_t max_leaf);

    std::vector<BvhNode> nodes_;
    std::vector<uint32_t> primOrder_;
    int32_t root_ = -1;
};

/** Instance record for two-level scenes (64 bytes). */
struct InstanceRecord
{
    static constexpr uint32_t kBytes = 64;
    static constexpr uint32_t kOffTransform = 0; //!< f32[12] world->object
    static constexpr uint32_t kOffBlasRoot = 48; //!< BvhRef of the BLAS

    /** Row-major 3x4 affine transform. */
    float worldToObject[12];
    BvhRef blasRoot;
};

/** Apply a 3x4 row-major affine transform to a point / direction. */
geom::Vec3 transformPoint(const float m[12], const geom::Vec3 &p);
geom::Vec3 transformDir(const float m[12], const geom::Vec3 &d);

} // namespace tta::trees

#endif // TTA_TREES_BVH_HH
