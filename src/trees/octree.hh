/**
 * @file
 * Barnes-Hut quadtree (2D) / octree (3D) for N-Body simulation.
 *
 * Inner nodes carry their center of mass, total mass and a precomputed
 * *opening radius* (cell size / theta). The Barnes-Hut criterion
 * "s/d < theta" is evaluated as the paper's Point-to-Point distance test
 * (Algorithm 2): a node must be *opened* (descended) when the query lies
 * within its opening radius, and may be approximated by its center of
 * mass otherwise. Storing the radius per node makes the inner-node test
 * exactly the TTA Point-to-Point operation.
 *
 * Children are compacted (only occupied quadrants/octants exist) and
 * serialized contiguously, BFS order. Leaf nodes reference a contiguous
 * run of body records.
 */

#ifndef TTA_TREES_OCTREE_HH
#define TTA_TREES_OCTREE_HH

#include <cstdint>
#include <vector>

#include "geom/vec.hh"
#include "mem/global_memory.hh"

namespace tta::trees {

/** Serialized tree-node layout (64 bytes). */
struct BhNodeLayout
{
    static constexpr uint32_t kNodeBytes = 64;
    static constexpr uint32_t kOffCom = 0;        //!< f32[3]
    static constexpr uint32_t kOffMass = 12;      //!< f32
    static constexpr uint32_t kOffOpenRadius = 16;//!< f32 (= s / theta)
    static constexpr uint32_t kOffFlags = 20;     //!< u32
    static constexpr uint32_t kOffChildBase = 24; //!< u32 byte addr
    static constexpr uint32_t kOffBodyBase = 28;  //!< u32 byte addr (leaf)
    static constexpr uint32_t kLeafFlag = 1u;
    // flags bits 8..15: child count, bits 16..23: body count
};

/** Serialized body record (16 bytes): pos.xyz, mass. */
struct BhBodyLayout
{
    static constexpr uint32_t kBodyBytes = 16;
};

struct BhBody
{
    geom::Vec3 pos;
    float mass = 1.0f;
};

/** Result of a reference force traversal. */
struct BhForceResult
{
    geom::Vec3 accel;
    uint32_t nodesVisited = 0;
    uint32_t approximations = 0; //!< inner nodes folded into one term
    uint32_t directInteractions = 0;
};

class BarnesHutTree
{
  public:
    /**
     * @param dims    2 (quadtree, z ignored) or 3 (octree).
     * @param bodies  the particle set.
     * @param theta   Barnes-Hut opening parameter.
     * @param max_leaf bodies per leaf.
     */
    BarnesHutTree(int dims, std::vector<BhBody> bodies, float theta,
                  uint32_t max_leaf = 4);

    size_t numBodies() const { return bodies_.size(); }
    size_t numNodes() const { return nodes_.size(); }
    int dims() const { return dims_; }
    float theta() const { return theta_; }

    /** Bodies in serialized (leaf-major) order. */
    const std::vector<BhBody> &orderedBodies() const { return bodies_; }

    /**
     * Reference Barnes-Hut traversal computing the acceleration on a
     * query position. Self-interaction is suppressed by a zero-distance
     * check, matching the device kernels.
     */
    BhForceResult referenceForce(const geom::Vec3 &pos,
                                 float softening = 0.05f) const;

    /** Serialize nodes + bodies; returns the root node address. */
    uint64_t serialize(mem::GlobalMemory &gmem);

    /** Byte address of the serialized body array (after serialize()). */
    uint64_t bodyBase() const { return bodyBase_; }

    /** Read-only view of a node (for host-side traversal models). */
    struct NodeView
    {
        geom::Vec3 com;
        float mass;
        float openRadius;
        bool leaf;
        const std::vector<uint32_t> &children;
        uint32_t bodyOffset;
        uint32_t bodyCount;
    };

    uint32_t rootIndex() const { return root_; }

    NodeView
    nodeView(uint32_t idx) const
    {
        const Node &n = nodes_[idx];
        return {n.com, n.mass, n.openRadius, n.leaf,
                n.children, n.bodyOffset, n.bodyCount};
    }

  private:
    struct Node
    {
        geom::Vec3 com;
        float mass = 0.0f;
        float openRadius = 0.0f;
        bool leaf = false;
        std::vector<uint32_t> children; //!< node indices (compacted)
        uint32_t bodyOffset = 0;        //!< into bodies_ for leaves
        uint32_t bodyCount = 0;
    };

    uint32_t buildRange(std::vector<uint32_t> &ids, uint32_t lo,
                        uint32_t hi, const geom::Vec3 &center,
                        float half_extent, uint32_t max_leaf, int depth);

    int dims_;
    float theta_;
    std::vector<BhBody> bodies_; //!< reordered leaf-major during build
    std::vector<Node> nodes_;
    uint32_t root_ = 0;
    uint64_t bodyBase_ = 0;
};

} // namespace tta::trees

#endif // TTA_TREES_OCTREE_HH
