#include "geom/intersect.hh"

#include <cmath>

namespace tta::geom {

std::optional<BoxHit>
rayBox(const Ray &ray, const Aabb &box)
{
    // Slab test with the min/max reduction structure of the hardware
    // pipeline: per-axis plane distances, then a minmax / maxmin tree.
    // Division by a zero direction component yields +-inf, which the
    // fmin/fmax reduction handles correctly (IEEE semantics, matching the
    // hardware MIN/MAX units that flush NaN operands to the other input).
    float tenter = ray.tmin;
    float texit = ray.tmax;
    for (int axis = 0; axis < 3; ++axis) {
        float inv = 1.0f / ray.dir[axis];
        float t0 = (box.lo[axis] - ray.origin[axis]) * inv;
        float t1 = (box.hi[axis] - ray.origin[axis]) * inv;
        if (inv < 0.0f)
            std::swap(t0, t1);
        tenter = std::fmax(tenter, t0);
        texit = std::fmin(texit, t1);
    }
    if (tenter > texit)
        return std::nullopt;
    return BoxHit{tenter, texit};
}

std::optional<TriangleHit>
rayTriangle(const Ray &ray, const Vec3 &v0, const Vec3 &v1, const Vec3 &v2)
{
    constexpr float epsilon = 1e-7f;
    Vec3 e1 = v1 - v0;
    Vec3 e2 = v2 - v0;
    Vec3 pvec = cross(ray.dir, e2);
    float det = dot(e1, pvec);
    if (std::fabs(det) < epsilon)
        return std::nullopt; // ray parallel to triangle plane
    float inv_det = 1.0f / det;
    Vec3 tvec = ray.origin - v0;
    float u = dot(tvec, pvec) * inv_det;
    if (u < 0.0f || u > 1.0f)
        return std::nullopt;
    Vec3 qvec = cross(tvec, e1);
    float v = dot(ray.dir, qvec) * inv_det;
    if (v < 0.0f || u + v > 1.0f)
        return std::nullopt;
    float t = dot(e2, qvec) * inv_det;
    if (t < ray.tmin || t > ray.tmax)
        return std::nullopt;
    return TriangleHit{t, u, v};
}

std::optional<float>
raySphere(const Ray &ray, const Vec3 &center, float radius)
{
    Vec3 oc = ray.origin - center;
    float a = dot(ray.dir, ray.dir);
    float half_b = dot(oc, ray.dir);
    float c = dot(oc, oc) - radius * radius;
    float disc = half_b * half_b - a * c;
    if (disc < 0.0f)
        return std::nullopt;
    float sqrt_disc = std::sqrt(disc);
    float t = (-half_b - sqrt_disc) / a;
    if (t < ray.tmin || t > ray.tmax) {
        t = (-half_b + sqrt_disc) / a;
        if (t < ray.tmin || t > ray.tmax)
            return std::nullopt;
    }
    return t;
}

float
distanceSquared(const Vec3 &a, const Vec3 &b)
{
    Vec3 dis = b - a;
    return dot(dis, dis);
}

bool
pointWithinRadius(const Vec3 &a, const Vec3 &b, float threshold)
{
    return distanceSquared(a, b) < threshold * threshold;
}

QueryKeyResult
queryKeyCompare(float query, const float *keys, int n_keys)
{
    for (int i = 0; i < n_keys; ++i) {
        if (keys[i] == query)
            return {true, -1, i};
        if (query < keys[i])
            return {false, i, -1};
    }
    // Greater than every key: descend the rightmost child.
    return {false, n_keys, -1};
}

} // namespace tta::geom
