#include "geom/intersect.hh"

#include <cmath>

namespace tta::geom {

std::optional<BoxHit>
rayBox(const Ray &ray, const Aabb &box)
{
    // Slab test with the min/max reduction structure of the hardware
    // pipeline: per-axis plane distances, then a minmax / maxmin tree.
    // Division by a zero direction component yields +-inf, which the
    // fmin/fmax reduction handles correctly (IEEE semantics, matching the
    // hardware MIN/MAX units that flush NaN operands to the other input).
    float tenter = ray.tmin;
    float texit = ray.tmax;
    for (int axis = 0; axis < 3; ++axis) {
        float inv = 1.0f / ray.dir[axis];
        float t0 = (box.lo[axis] - ray.origin[axis]) * inv;
        float t1 = (box.hi[axis] - ray.origin[axis]) * inv;
        if (inv < 0.0f)
            std::swap(t0, t1);
        tenter = std::fmax(tenter, t0);
        texit = std::fmin(texit, t1);
    }
    if (tenter > texit)
        return std::nullopt;
    return BoxHit{tenter, texit};
}

std::optional<TriangleHit>
rayTriangle(const Ray &ray, const Vec3 &v0, const Vec3 &v1, const Vec3 &v2)
{
    constexpr float epsilon = 1e-7f;
    Vec3 e1 = v1 - v0;
    Vec3 e2 = v2 - v0;
    Vec3 pvec = cross(ray.dir, e2);
    float det = dot(e1, pvec);
    if (std::fabs(det) < epsilon)
        return std::nullopt; // ray parallel to triangle plane
    float inv_det = 1.0f / det;
    Vec3 tvec = ray.origin - v0;
    float u = dot(tvec, pvec) * inv_det;
    if (u < 0.0f || u > 1.0f)
        return std::nullopt;
    Vec3 qvec = cross(tvec, e1);
    float v = dot(ray.dir, qvec) * inv_det;
    if (v < 0.0f || u + v > 1.0f)
        return std::nullopt;
    float t = dot(e2, qvec) * inv_det;
    if (t < ray.tmin || t > ray.tmax)
        return std::nullopt;
    return TriangleHit{t, u, v};
}

std::optional<float>
raySphere(const Ray &ray, const Vec3 &center, float radius)
{
    Vec3 oc = ray.origin - center;
    float a = dot(ray.dir, ray.dir);
    float half_b = dot(oc, ray.dir);
    float c = dot(oc, oc) - radius * radius;
    float disc = half_b * half_b - a * c;
    if (disc < 0.0f)
        return std::nullopt;
    float sqrt_disc = std::sqrt(disc);
    float t = (-half_b - sqrt_disc) / a;
    if (t < ray.tmin || t > ray.tmax) {
        t = (-half_b + sqrt_disc) / a;
        if (t < ray.tmin || t > ray.tmax)
            return std::nullopt;
    }
    return t;
}

float
distanceSquared(const Vec3 &a, const Vec3 &b)
{
    Vec3 dis = b - a;
    return dot(dis, dis);
}

bool
pointWithinRadius(const Vec3 &a, const Vec3 &b, float threshold)
{
    return distanceSquared(a, b) < threshold * threshold;
}

QueryKeyResult
queryKeyCompare(float query, const float *keys, int n_keys)
{
    for (int i = 0; i < n_keys; ++i) {
        if (keys[i] == query)
            return {true, -1, i};
        if (query < keys[i])
            return {false, i, -1};
    }
    // Greater than every key: descend the rightmost child.
    return {false, n_keys, -1};
}

// ---------------------------------------------------------------------
// Batched SoA tests (backend from geom/simd.hh). Kept out of line like
// the scalar tests so wall-clock comparisons measure the vectorization,
// not inlining differences.
// ---------------------------------------------------------------------

namespace {

constexpr uint32_t
laneMask(int count)
{
    if (count <= 0)
        return 0u;
    return count >= 8 ? 0xffu : ((1u << count) - 1u);
}

#if defined(TTA_SIMD_BACKEND_NEON)

/** Lane bitmask from an all-ones/all-zeros compare result. */
inline uint32_t
neonMask4(uint32x4_t m)
{
    const uint32_t bit_values[4] = {1u, 2u, 4u, 8u};
    uint32x4_t bits = vandq_u32(m, vld1q_u32(bit_values));
    uint32x2_t sum = vadd_u32(vget_low_u32(bits), vget_high_u32(bits));
    sum = vpadd_u32(sum, sum);
    return vget_lane_u32(sum, 0);
}

#endif

} // namespace

uint32_t
rayBoxBatch(const Ray &ray, const WideBoxes &boxes, int count,
            float tenter_out[8])
{
    const float *lo[3] = {boxes.lox, boxes.loy, boxes.loz};
    const float *hi[3] = {boxes.hix, boxes.hiy, boxes.hiz};
#if defined(TTA_SIMD_BACKEND_AVX2)
    __m256 tenter = _mm256_set1_ps(ray.tmin);
    __m256 texit = _mm256_set1_ps(ray.tmax);
    for (int axis = 0; axis < 3; ++axis) {
        float inv = 1.0f / ray.dir[axis];
        // `inv` is uniform across lanes, so the scalar test's swap
        // becomes a branchless near/far plane-array pick.
        const float *near_p = inv < 0.0f ? hi[axis] : lo[axis];
        const float *far_p = inv < 0.0f ? lo[axis] : hi[axis];
        __m256 o = _mm256_set1_ps(ray.origin[axis]);
        __m256 vi = _mm256_set1_ps(inv);
        __m256 t0 =
            _mm256_mul_ps(_mm256_sub_ps(_mm256_load_ps(near_p), o), vi);
        __m256 t1 =
            _mm256_mul_ps(_mm256_sub_ps(_mm256_load_ps(far_p), o), vi);
        // MAXPS(t0, acc) = t0 > acc ? t0 : acc — a NaN plane distance
        // keeps the accumulator, matching std::fmax(acc, t0) because
        // the accumulator is never NaN.
        tenter = _mm256_max_ps(t0, tenter);
        texit = _mm256_min_ps(t1, texit);
    }
    _mm256_store_ps(tenter_out, tenter);
    uint32_t hits = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_cmp_ps(tenter, texit, _CMP_LE_OQ)));
#elif defined(TTA_SIMD_BACKEND_SSE2)
    uint32_t hits = 0;
    for (int base = 0; base < 8; base += 4) {
        __m128 tenter = _mm_set1_ps(ray.tmin);
        __m128 texit = _mm_set1_ps(ray.tmax);
        for (int axis = 0; axis < 3; ++axis) {
            float inv = 1.0f / ray.dir[axis];
            const float *near_p = inv < 0.0f ? hi[axis] : lo[axis];
            const float *far_p = inv < 0.0f ? lo[axis] : hi[axis];
            __m128 o = _mm_set1_ps(ray.origin[axis]);
            __m128 vi = _mm_set1_ps(inv);
            __m128 t0 =
                _mm_mul_ps(_mm_sub_ps(_mm_load_ps(near_p + base), o), vi);
            __m128 t1 =
                _mm_mul_ps(_mm_sub_ps(_mm_load_ps(far_p + base), o), vi);
            tenter = _mm_max_ps(t0, tenter);
            texit = _mm_min_ps(t1, texit);
        }
        _mm_store_ps(tenter_out + base, tenter);
        hits |= static_cast<uint32_t>(
                    _mm_movemask_ps(_mm_cmple_ps(tenter, texit)))
                << base;
    }
#elif defined(TTA_SIMD_BACKEND_NEON)
    uint32_t hits = 0;
    for (int base = 0; base < 8; base += 4) {
        float32x4_t tenter = vdupq_n_f32(ray.tmin);
        float32x4_t texit = vdupq_n_f32(ray.tmax);
        for (int axis = 0; axis < 3; ++axis) {
            float inv = 1.0f / ray.dir[axis];
            const float *near_p = inv < 0.0f ? hi[axis] : lo[axis];
            const float *far_p = inv < 0.0f ? lo[axis] : hi[axis];
            float32x4_t o = vdupq_n_f32(ray.origin[axis]);
            float32x4_t vi = vdupq_n_f32(inv);
            float32x4_t t0 =
                vmulq_f32(vsubq_f32(vld1q_f32(near_p + base), o), vi);
            float32x4_t t1 =
                vmulq_f32(vsubq_f32(vld1q_f32(far_p + base), o), vi);
            // vbsl select, not vmaxq: NEON max propagates NaN, but the
            // required semantics are t0 > acc ? t0 : acc (NaN keeps acc).
            tenter = vbslq_f32(vcgtq_f32(t0, tenter), t0, tenter);
            texit = vbslq_f32(vcltq_f32(t1, texit), t1, texit);
        }
        vst1q_f32(tenter_out + base, tenter);
        hits |= neonMask4(vcleq_f32(tenter, texit)) << base;
    }
#else
    uint32_t hits = 0;
    for (int i = 0; i < 8; ++i) {
        float tenter = ray.tmin;
        float texit = ray.tmax;
        for (int axis = 0; axis < 3; ++axis) {
            float inv = 1.0f / ray.dir[axis];
            const float *near_p = inv < 0.0f ? hi[axis] : lo[axis];
            const float *far_p = inv < 0.0f ? lo[axis] : hi[axis];
            float t0 = (near_p[i] - ray.origin[axis]) * inv;
            float t1 = (far_p[i] - ray.origin[axis]) * inv;
            // Select on compare, not std::fmax: a NaN plane distance
            // must keep the accumulator with the vector backends' exact
            // tie behavior.
            tenter = t0 > tenter ? t0 : tenter;
            texit = t1 < texit ? t1 : texit;
        }
        tenter_out[i] = tenter;
        if (tenter <= texit)
            hits |= 1u << i;
    }
#endif
    return hits & laneMask(count);
}

uint32_t
pointInBoxBatch(const Vec3 &p, const WideBoxes &boxes, int count)
{
#if defined(TTA_SIMD_BACKEND_AVX2)
    __m256 px = _mm256_set1_ps(p.x);
    __m256 py = _mm256_set1_ps(p.y);
    __m256 pz = _mm256_set1_ps(p.z);
    __m256 m = _mm256_and_ps(
        _mm256_cmp_ps(px, _mm256_load_ps(boxes.lox), _CMP_GE_OQ),
        _mm256_cmp_ps(px, _mm256_load_ps(boxes.hix), _CMP_LE_OQ));
    m = _mm256_and_ps(
        m, _mm256_cmp_ps(py, _mm256_load_ps(boxes.loy), _CMP_GE_OQ));
    m = _mm256_and_ps(
        m, _mm256_cmp_ps(py, _mm256_load_ps(boxes.hiy), _CMP_LE_OQ));
    m = _mm256_and_ps(
        m, _mm256_cmp_ps(pz, _mm256_load_ps(boxes.loz), _CMP_GE_OQ));
    m = _mm256_and_ps(
        m, _mm256_cmp_ps(pz, _mm256_load_ps(boxes.hiz), _CMP_LE_OQ));
    uint32_t hits = static_cast<uint32_t>(_mm256_movemask_ps(m));
#elif defined(TTA_SIMD_BACKEND_SSE2)
    uint32_t hits = 0;
    __m128 px = _mm_set1_ps(p.x);
    __m128 py = _mm_set1_ps(p.y);
    __m128 pz = _mm_set1_ps(p.z);
    for (int base = 0; base < 8; base += 4) {
        __m128 m =
            _mm_and_ps(_mm_cmpge_ps(px, _mm_load_ps(boxes.lox + base)),
                       _mm_cmple_ps(px, _mm_load_ps(boxes.hix + base)));
        m = _mm_and_ps(m, _mm_cmpge_ps(py, _mm_load_ps(boxes.loy + base)));
        m = _mm_and_ps(m, _mm_cmple_ps(py, _mm_load_ps(boxes.hiy + base)));
        m = _mm_and_ps(m, _mm_cmpge_ps(pz, _mm_load_ps(boxes.loz + base)));
        m = _mm_and_ps(m, _mm_cmple_ps(pz, _mm_load_ps(boxes.hiz + base)));
        hits |= static_cast<uint32_t>(_mm_movemask_ps(m)) << base;
    }
#elif defined(TTA_SIMD_BACKEND_NEON)
    uint32_t hits = 0;
    float32x4_t px = vdupq_n_f32(p.x);
    float32x4_t py = vdupq_n_f32(p.y);
    float32x4_t pz = vdupq_n_f32(p.z);
    for (int base = 0; base < 8; base += 4) {
        uint32x4_t m =
            vandq_u32(vcgeq_f32(px, vld1q_f32(boxes.lox + base)),
                      vcleq_f32(px, vld1q_f32(boxes.hix + base)));
        m = vandq_u32(m, vcgeq_f32(py, vld1q_f32(boxes.loy + base)));
        m = vandq_u32(m, vcleq_f32(py, vld1q_f32(boxes.hiy + base)));
        m = vandq_u32(m, vcgeq_f32(pz, vld1q_f32(boxes.loz + base)));
        m = vandq_u32(m, vcleq_f32(pz, vld1q_f32(boxes.hiz + base)));
        hits |= neonMask4(m) << base;
    }
#else
    uint32_t hits = 0;
    for (int i = 0; i < 8; ++i) {
        bool in = p.x >= boxes.lox[i] && p.x <= boxes.hix[i] &&
                  p.y >= boxes.loy[i] && p.y <= boxes.hiy[i] &&
                  p.z >= boxes.loz[i] && p.z <= boxes.hiz[i];
        if (in)
            hits |= 1u << i;
    }
#endif
    return hits & laneMask(count);
}

uint32_t
rectOverlapBatch(float qx0, float qy0, float qx1, float qy1,
                 const WideRects &rects, int count)
{
#if defined(TTA_SIMD_BACKEND_AVX2)
    __m256 vqx0 = _mm256_set1_ps(qx0);
    __m256 vqy0 = _mm256_set1_ps(qy0);
    __m256 vqx1 = _mm256_set1_ps(qx1);
    __m256 vqy1 = _mm256_set1_ps(qy1);
    __m256 m = _mm256_and_ps(
        _mm256_cmp_ps(_mm256_load_ps(rects.x0), vqx1, _CMP_LE_OQ),
        _mm256_cmp_ps(vqx0, _mm256_load_ps(rects.x1), _CMP_LE_OQ));
    m = _mm256_and_ps(
        m, _mm256_cmp_ps(_mm256_load_ps(rects.y0), vqy1, _CMP_LE_OQ));
    m = _mm256_and_ps(
        m, _mm256_cmp_ps(vqy0, _mm256_load_ps(rects.y1), _CMP_LE_OQ));
    uint32_t hits = static_cast<uint32_t>(_mm256_movemask_ps(m));
#elif defined(TTA_SIMD_BACKEND_SSE2)
    uint32_t hits = 0;
    __m128 vqx0 = _mm_set1_ps(qx0);
    __m128 vqy0 = _mm_set1_ps(qy0);
    __m128 vqx1 = _mm_set1_ps(qx1);
    __m128 vqy1 = _mm_set1_ps(qy1);
    for (int base = 0; base < 8; base += 4) {
        __m128 m =
            _mm_and_ps(_mm_cmple_ps(_mm_load_ps(rects.x0 + base), vqx1),
                       _mm_cmple_ps(vqx0, _mm_load_ps(rects.x1 + base)));
        m = _mm_and_ps(m, _mm_cmple_ps(_mm_load_ps(rects.y0 + base), vqy1));
        m = _mm_and_ps(m, _mm_cmple_ps(vqy0, _mm_load_ps(rects.y1 + base)));
        hits |= static_cast<uint32_t>(_mm_movemask_ps(m)) << base;
    }
#elif defined(TTA_SIMD_BACKEND_NEON)
    uint32_t hits = 0;
    float32x4_t vqx0 = vdupq_n_f32(qx0);
    float32x4_t vqy0 = vdupq_n_f32(qy0);
    float32x4_t vqx1 = vdupq_n_f32(qx1);
    float32x4_t vqy1 = vdupq_n_f32(qy1);
    for (int base = 0; base < 8; base += 4) {
        uint32x4_t m =
            vandq_u32(vcleq_f32(vld1q_f32(rects.x0 + base), vqx1),
                      vcleq_f32(vqx0, vld1q_f32(rects.x1 + base)));
        m = vandq_u32(m, vcleq_f32(vld1q_f32(rects.y0 + base), vqy1));
        m = vandq_u32(m, vcleq_f32(vqy0, vld1q_f32(rects.y1 + base)));
        hits |= neonMask4(m) << base;
    }
#else
    uint32_t hits = 0;
    for (int i = 0; i < 8; ++i) {
        bool overlap = rects.x0[i] <= qx1 && qx0 <= rects.x1[i] &&
                       rects.y0[i] <= qy1 && qy0 <= rects.y1[i];
        if (overlap)
            hits |= 1u << i;
    }
#endif
    return hits & laneMask(count);
}

uint32_t
pointRadiusBatch(const Vec3 &q, const float px[8], const float py[8],
                 const float pz[8], int count, float threshold,
                 float d2_out[8])
{
    float r2 = threshold * threshold;
#if defined(TTA_SIMD_BACKEND_AVX2)
    __m256 dx = _mm256_sub_ps(_mm256_load_ps(px), _mm256_set1_ps(q.x));
    __m256 dy = _mm256_sub_ps(_mm256_load_ps(py), _mm256_set1_ps(q.y));
    __m256 dz = _mm256_sub_ps(_mm256_load_ps(pz), _mm256_set1_ps(q.z));
    // Same reduction order as dot(dis, dis): (x^2 + y^2) + z^2, and
    // -ffp-contract=off keeps the mul/add split un-fused.
    __m256 d2 = _mm256_mul_ps(dx, dx);
    d2 = _mm256_add_ps(d2, _mm256_mul_ps(dy, dy));
    d2 = _mm256_add_ps(d2, _mm256_mul_ps(dz, dz));
    _mm256_store_ps(d2_out, d2);
    uint32_t hits = static_cast<uint32_t>(_mm256_movemask_ps(
        _mm256_cmp_ps(d2, _mm256_set1_ps(r2), _CMP_LT_OQ)));
#elif defined(TTA_SIMD_BACKEND_SSE2)
    uint32_t hits = 0;
    __m128 vr2 = _mm_set1_ps(r2);
    for (int base = 0; base < 8; base += 4) {
        __m128 dx =
            _mm_sub_ps(_mm_load_ps(px + base), _mm_set1_ps(q.x));
        __m128 dy =
            _mm_sub_ps(_mm_load_ps(py + base), _mm_set1_ps(q.y));
        __m128 dz =
            _mm_sub_ps(_mm_load_ps(pz + base), _mm_set1_ps(q.z));
        __m128 d2 = _mm_mul_ps(dx, dx);
        d2 = _mm_add_ps(d2, _mm_mul_ps(dy, dy));
        d2 = _mm_add_ps(d2, _mm_mul_ps(dz, dz));
        _mm_store_ps(d2_out + base, d2);
        hits |= static_cast<uint32_t>(_mm_movemask_ps(_mm_cmplt_ps(d2, vr2)))
                << base;
    }
#elif defined(TTA_SIMD_BACKEND_NEON)
    uint32_t hits = 0;
    float32x4_t vr2 = vdupq_n_f32(r2);
    for (int base = 0; base < 8; base += 4) {
        float32x4_t dx =
            vsubq_f32(vld1q_f32(px + base), vdupq_n_f32(q.x));
        float32x4_t dy =
            vsubq_f32(vld1q_f32(py + base), vdupq_n_f32(q.y));
        float32x4_t dz =
            vsubq_f32(vld1q_f32(pz + base), vdupq_n_f32(q.z));
        float32x4_t d2 = vmulq_f32(dx, dx);
        d2 = vaddq_f32(d2, vmulq_f32(dy, dy));
        d2 = vaddq_f32(d2, vmulq_f32(dz, dz));
        vst1q_f32(d2_out + base, d2);
        hits |= neonMask4(vcltq_f32(d2, vr2)) << base;
    }
#else
    uint32_t hits = 0;
    for (int i = 0; i < 8; ++i) {
        float dx = px[i] - q.x;
        float dy = py[i] - q.y;
        float dz = pz[i] - q.z;
        float d2 = dx * dx + dy * dy + dz * dz;
        d2_out[i] = d2;
        if (d2 < r2)
            hits |= 1u << i;
    }
#endif
    return hits & laneMask(count);
}

} // namespace tta::geom
