/**
 * @file
 * Functional intersection tests.
 *
 * These are the ground-truth computations that the fixed-function RTA
 * units, the TTA modifications, and the TTA+ uop programs all model in
 * hardware (Fig 5, Algorithm 1, Algorithm 2). The accelerator timing
 * models call into these for their functional results; the test suite
 * cross-checks the accelerators against them.
 */

#ifndef TTA_GEOM_INTERSECT_HH
#define TTA_GEOM_INTERSECT_HH

#include <optional>

#include "geom/aabb.hh"
#include "geom/ray.hh"

namespace tta::geom {

/** Result of a Ray-Triangle (Möller-Trumbore) intersection. */
struct TriangleHit
{
    float t;  //!< ray hit distance
    float u;  //!< barycentric coordinate
    float v;  //!< barycentric coordinate
};

/** Result of a Ray-Box slab test. */
struct BoxHit
{
    float tenter; //!< entry distance (clamped to ray.tmin)
    float texit;  //!< exit distance (clamped to ray.tmax)
};

/**
 * Ray-Box slab test (Fig 5 left).
 *
 * Computes the hit distance at each AABB plane and min/max-reduces them
 * exactly like the 4-stage fixed-function pipeline does.
 *
 * @return entry/exit distances, or nullopt when the ray misses the box.
 */
std::optional<BoxHit> rayBox(const Ray &ray, const Aabb &box);

/**
 * Ray-Triangle intersection using the Möller-Trumbore algorithm
 * (Fig 5 right). Returns hit distance and barycentric (u, v).
 */
std::optional<TriangleHit> rayTriangle(const Ray &ray, const Vec3 &v0,
                                       const Vec3 &v1, const Vec3 &v2);

/**
 * Ray-Sphere intersection. On the baseline RTA this must run in a
 * programmable intersection shader on the SIMT cores; TTA+ executes it as
 * a uop program (it needs the SQRT unit).
 */
std::optional<float> raySphere(const Ray &ray, const Vec3 &center,
                               float radius);

/**
 * Point-to-Point distance test (Algorithm 2): true when
 * |b - a|^2 < threshold^2. The square root is avoided exactly as the
 * paper's datapath does (squared-distance vs squared-threshold compare).
 */
bool pointWithinRadius(const Vec3 &a, const Vec3 &b, float threshold);

/** Squared distance between two points (the dot(dis, dis) of Alg. 2). */
float distanceSquared(const Vec3 &a, const Vec3 &b);

/**
 * Query-Key value comparison (Algorithm 1) against up to nine keys.
 *
 * @param query      the search key.
 * @param keys       node key values, ascending.
 * @param n_keys     number of valid keys (<= 9).
 * @retval found     true when query matches a key exactly.
 * @retval child     index of the child to descend into when not found
 *                   (first i with query < keys[i]; n_keys if query is
 *                   greater than all keys).
 */
struct QueryKeyResult
{
    bool found;
    int child;
    int matchIndex; //!< index of the equal key when found, else -1
};

QueryKeyResult queryKeyCompare(float query, const float *keys, int n_keys);

} // namespace tta::geom

#endif // TTA_GEOM_INTERSECT_HH
