/**
 * @file
 * Functional intersection tests.
 *
 * These are the ground-truth computations that the fixed-function RTA
 * units, the TTA modifications, and the TTA+ uop programs all model in
 * hardware (Fig 5, Algorithm 1, Algorithm 2). The accelerator timing
 * models call into these for their functional results; the test suite
 * cross-checks the accelerators against them.
 */

#ifndef TTA_GEOM_INTERSECT_HH
#define TTA_GEOM_INTERSECT_HH

#include <cstdint>
#include <optional>

#include "geom/aabb.hh"
#include "geom/ray.hh"
#include "geom/simd.hh"

namespace tta::geom {

/** Result of a Ray-Triangle (Möller-Trumbore) intersection. */
struct TriangleHit
{
    float t;  //!< ray hit distance
    float u;  //!< barycentric coordinate
    float v;  //!< barycentric coordinate
};

/** Result of a Ray-Box slab test. */
struct BoxHit
{
    float tenter; //!< entry distance (clamped to ray.tmin)
    float texit;  //!< exit distance (clamped to ray.tmax)
};

/**
 * Ray-Box slab test (Fig 5 left).
 *
 * Computes the hit distance at each AABB plane and min/max-reduces them
 * exactly like the 4-stage fixed-function pipeline does.
 *
 * @return entry/exit distances, or nullopt when the ray misses the box.
 */
std::optional<BoxHit> rayBox(const Ray &ray, const Aabb &box);

/**
 * Ray-Triangle intersection using the Möller-Trumbore algorithm
 * (Fig 5 right). Returns hit distance and barycentric (u, v).
 */
std::optional<TriangleHit> rayTriangle(const Ray &ray, const Vec3 &v0,
                                       const Vec3 &v1, const Vec3 &v2);

/**
 * Ray-Sphere intersection. On the baseline RTA this must run in a
 * programmable intersection shader on the SIMT cores; TTA+ executes it as
 * a uop program (it needs the SQRT unit).
 */
std::optional<float> raySphere(const Ray &ray, const Vec3 &center,
                               float radius);

/**
 * Point-to-Point distance test (Algorithm 2): true when
 * |b - a|^2 < threshold^2. The square root is avoided exactly as the
 * paper's datapath does (squared-distance vs squared-threshold compare).
 */
bool pointWithinRadius(const Vec3 &a, const Vec3 &b, float threshold);

/** Squared distance between two points (the dot(dis, dis) of Alg. 2). */
float distanceSquared(const Vec3 &a, const Vec3 &b);

/**
 * Query-Key value comparison (Algorithm 1) against up to nine keys.
 *
 * @param query      the search key.
 * @param keys       node key values, ascending.
 * @param n_keys     number of valid keys (<= 9).
 * @retval found     true when query matches a key exactly.
 * @retval child     index of the child to descend into when not found
 *                   (first i with query < keys[i]; n_keys if query is
 *                   greater than all keys).
 */
struct QueryKeyResult
{
    bool found;
    int child;
    int matchIndex; //!< index of the equal key when found, else -1
};

QueryKeyResult queryKeyCompare(float query, const float *keys, int n_keys);

/**
 * Batched SoA intersection tests.
 *
 * These consume the wide node layouts (WideBoxes / WideRects, up to 8
 * lanes per call) with the vector backend selected in geom/simd.hh. Every
 * backend evaluates each lane with exactly the scalar tests' operation
 * order and select-on-compare min/max semantics, so per-lane results are
 * identical to the scalar functions above (only the sign of a zero may
 * differ, which all comparisons treat as equal); the property tests in
 * tests/test_geom.cc enforce this lane-for-lane.
 *
 * `count` lanes (<= 8) participate; higher lanes are masked out of the
 * returned bitmask but their output slots may still be written with
 * whatever the lane's (undefined) inputs produce.
 */

/**
 * Ray vs up to 8 AABBs. Returns a bitmask of hit lanes (bit i set when
 * lane i's slab test passes, i.e. tenter <= texit) and writes each lane's
 * entry distance to `tenter_out` for near-to-far traversal ordering.
 */
uint32_t rayBoxBatch(const Ray &ray, const WideBoxes &boxes, int count,
                     float tenter_out[8]);

/** Point-in-AABB (Aabb::contains) against up to 8 boxes; hit bitmask. */
uint32_t pointInBoxBatch(const Vec3 &p, const WideBoxes &boxes, int count);

/**
 * Query rectangle [qx0,qx1]x[qy0,qy1] vs up to 8 SoA rectangles
 * (Rect2D::overlaps, closed-interval compares); returns the hit bitmask.
 */
uint32_t rectOverlapBatch(float qx0, float qy0, float qx1, float qy1,
                          const WideRects &rects, int count);

/**
 * Point-to-point distance test (pointWithinRadius) for up to 8 SoA
 * candidate points. Writes each lane's squared distance to `d2_out` and
 * returns the bitmask of lanes with d2 < threshold^2 (strict, like the
 * scalar test).
 */
uint32_t pointRadiusBatch(const Vec3 &q, const float px[8],
                          const float py[8], const float pz[8], int count,
                          float threshold, float d2_out[8]);

} // namespace tta::geom

#endif // TTA_GEOM_INTERSECT_HH
