/**
 * @file
 * Portable SIMD backend selection for the batched functional intersection
 * tests (geom/intersect.hh) that consume the wide SoA node layouts.
 *
 * The backend is chosen at build time from the compiler's target feature
 * macros: AVX2 (8 lanes) > SSE2 (two 4-lane halves) > NEON (two 4-lane
 * halves) > scalar. Defining TTA_SIMD_DISABLE (the -DTTA_SIMD=OFF CMake
 * option) forces the scalar fallback regardless of target features; the
 * CI scalar-fallback job builds that way so the portable path cannot rot.
 *
 * Every backend reproduces the scalar reference tests exactly: the same
 * per-lane operation order, no FMA contraction (the repo compiles with
 * -ffp-contract=off), and select-on-compare min/max semantics
 * (a > b ? a : b) so a NaN plane distance keeps the accumulated value,
 * exactly like MAXPS/MINPS and std::fmax with a non-NaN accumulator.
 * Only the sign of a zero may differ between backends, which every
 * downstream comparison treats as equal.
 */

#ifndef TTA_GEOM_SIMD_HH
#define TTA_GEOM_SIMD_HH

#if defined(TTA_SIMD_DISABLE)
#define TTA_SIMD_BACKEND_SCALAR 1
#elif defined(__AVX2__)
#define TTA_SIMD_BACKEND_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define TTA_SIMD_BACKEND_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#define TTA_SIMD_BACKEND_NEON 1
#include <arm_neon.h>
#else
#define TTA_SIMD_BACKEND_SCALAR 1
#endif

namespace tta::geom {

/** Compiled-in vector backend name, recorded in bench/CI JSON headers. */
inline const char *
simdBackendName()
{
#if defined(TTA_SIMD_BACKEND_AVX2)
    return "avx2";
#elif defined(TTA_SIMD_BACKEND_SSE2)
    return "sse2";
#elif defined(TTA_SIMD_BACKEND_NEON)
    return "neon";
#else
    return "scalar";
#endif
}

/** Number of float lanes the backend processes per vector op. */
inline constexpr int
simdLaneWidth()
{
#if defined(TTA_SIMD_BACKEND_AVX2)
    return 8;
#elif defined(TTA_SIMD_BACKEND_SSE2) || defined(TTA_SIMD_BACKEND_NEON)
    return 4;
#else
    return 1;
#endif
}

/**
 * Up to eight AABBs in struct-of-arrays form — the in-register mirror of
 * the wide BVH node layout (trees/bvh.hh). Lanes >= the batch count may
 * hold anything; the batch tests mask them out of the result.
 */
struct alignas(32) WideBoxes
{
    float lox[8];
    float loy[8];
    float loz[8];
    float hix[8];
    float hiy[8];
    float hiz[8];
};

/** Up to eight 2D rectangles in SoA form (the SoA R-Tree node mirror). */
struct alignas(32) WideRects
{
    float x0[8];
    float y0[8];
    float x1[8];
    float y1[8];
};

} // namespace tta::geom

#endif // TTA_GEOM_SIMD_HH
