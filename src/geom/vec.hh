/**
 * @file
 * Minimal 3-component float vector used throughout the geometry, tree and
 * accelerator models. Deliberately FP32 everywhere: the RTA/TTA/TTA+
 * operation units are FP32 datapaths (Table I), and the software baselines
 * must compute bit-identical results for the correctness cross-checks in
 * the test suite.
 */

#ifndef TTA_GEOM_VEC_HH
#define TTA_GEOM_VEC_HH

#include <cmath>
#include <ostream>

namespace tta::geom {

struct Vec3
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    constexpr Vec3() = default;
    constexpr Vec3(float xx, float yy, float zz) : x(xx), y(yy), z(zz) {}
    constexpr explicit Vec3(float s) : x(s), y(s), z(s) {}

    constexpr Vec3 operator+(const Vec3 &o) const
    {
        return {x + o.x, y + o.y, z + o.z};
    }
    constexpr Vec3 operator-(const Vec3 &o) const
    {
        return {x - o.x, y - o.y, z - o.z};
    }
    constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }
    constexpr Vec3 operator-() const { return {-x, -y, -z}; }

    Vec3 &operator+=(const Vec3 &o)
    {
        x += o.x; y += o.y; z += o.z;
        return *this;
    }
    Vec3 &operator-=(const Vec3 &o)
    {
        x -= o.x; y -= o.y; z -= o.z;
        return *this;
    }
    Vec3 &operator*=(float s)
    {
        x *= s; y *= s; z *= s;
        return *this;
    }

    constexpr bool operator==(const Vec3 &o) const
    {
        return x == o.x && y == o.y && z == o.z;
    }

    float operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }

    /** Component-wise multiply. */
    constexpr Vec3 cwiseMul(const Vec3 &o) const
    {
        return {x * o.x, y * o.y, z * o.z};
    }
};

inline constexpr Vec3 operator*(float s, const Vec3 &v) { return v * s; }

inline constexpr float
dot(const Vec3 &a, const Vec3 &b)
{
    return a.x * b.x + a.y * b.y + a.z * b.z;
}

inline constexpr Vec3
cross(const Vec3 &a, const Vec3 &b)
{
    return {a.y * b.z - a.z * b.y,
            a.z * b.x - a.x * b.z,
            a.x * b.y - a.y * b.x};
}

inline float length(const Vec3 &v) { return std::sqrt(dot(v, v)); }

inline float lengthSquared(const Vec3 &v) { return dot(v, v); }

inline Vec3
normalize(const Vec3 &v)
{
    float len = length(v);
    return len > 0.0f ? v / len : Vec3(0.0f);
}

inline Vec3
vmin(const Vec3 &a, const Vec3 &b)
{
    return {std::fmin(a.x, b.x), std::fmin(a.y, b.y), std::fmin(a.z, b.z)};
}

inline Vec3
vmax(const Vec3 &a, const Vec3 &b)
{
    return {std::fmax(a.x, b.x), std::fmax(a.y, b.y), std::fmax(a.z, b.z)};
}

inline std::ostream &
operator<<(std::ostream &os, const Vec3 &v)
{
    return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

} // namespace tta::geom

#endif // TTA_GEOM_VEC_HH
