/**
 * @file
 * Ray representation shared by the software reference tracer, the RTA
 * timing model and the workloads. Matches the 32B ray payload the paper's
 * TTA+ interconnect carries (origin, direction, tmin, tmax).
 */

#ifndef TTA_GEOM_RAY_HH
#define TTA_GEOM_RAY_HH

#include <limits>

#include "geom/vec.hh"

namespace tta::geom {

struct Ray
{
    Vec3 origin;
    Vec3 dir;
    float tmin = 0.0f;
    float tmax = std::numeric_limits<float>::max();

    Vec3 at(float t) const { return origin + dir * t; }
};

} // namespace tta::geom

#endif // TTA_GEOM_RAY_HH
