/**
 * @file
 * Axis-aligned bounding box, the inner-node volume of every BVH in the
 * repository (ray tracing scenes, RTNN point clouds, N-Body cells).
 */

#ifndef TTA_GEOM_AABB_HH
#define TTA_GEOM_AABB_HH

#include <limits>

#include "geom/vec.hh"

namespace tta::geom {

struct Aabb
{
    Vec3 lo{std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max()};
    Vec3 hi{std::numeric_limits<float>::lowest(),
            std::numeric_limits<float>::lowest(),
            std::numeric_limits<float>::lowest()};

    constexpr Aabb() = default;
    constexpr Aabb(const Vec3 &l, const Vec3 &h) : lo(l), hi(h) {}

    /** True once at least one point/box has been folded in. */
    bool valid() const { return lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z; }

    void
    extend(const Vec3 &p)
    {
        lo = vmin(lo, p);
        hi = vmax(hi, p);
    }

    void
    extend(const Aabb &b)
    {
        lo = vmin(lo, b.lo);
        hi = vmax(hi, b.hi);
    }

    Vec3 center() const { return (lo + hi) * 0.5f; }
    Vec3 extent() const { return hi - lo; }

    /** Surface area (for SAH builds and the SATO traversal order). */
    float
    surfaceArea() const
    {
        if (!valid())
            return 0.0f;
        Vec3 e = extent();
        return 2.0f * (e.x * e.y + e.y * e.z + e.z * e.x);
    }

    bool
    contains(const Vec3 &p) const
    {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
               p.z >= lo.z && p.z <= hi.z;
    }

    /** Index (0/1/2) of the widest axis. */
    int
    widestAxis() const
    {
        Vec3 e = extent();
        if (e.x >= e.y && e.x >= e.z)
            return 0;
        return e.y >= e.z ? 1 : 2;
    }
};

} // namespace tta::geom

#endif // TTA_GEOM_AABB_HH
