/**
 * @file
 * Event-based energy model (Fig 19's breakdown).
 *
 * Substitutes the paper's AccelWattch (general-purpose core power) and
 * CACTI7 (warp buffer access energy) with per-event constants of the same
 * magnitude class, and derives intersection-unit energy from the Table IV
 * synthesis areas at a 45nm power density. Fig 19 compares *relative*
 * end-to-end energy; the event counts driving the comparison come from
 * the cycle-level simulation (dynamic instructions, DRAM bytes, warp
 * buffer accesses, per-unit busy cycles).
 */

#ifndef TTA_POWER_ENERGY_HH
#define TTA_POWER_ENERGY_HH

#include <ostream>

#include "sim/stats.hh"

namespace tta::power {

/** End-to-end energy split, in joules. */
struct EnergyBreakdown
{
    double computeCore = 0.0;   //!< SM pipelines + memory system
    double warpBuffer = 0.0;    //!< repurposed RF accesses
    double intersection = 0.0;  //!< fixed-function or OP units

    double total() const { return computeCore + warpBuffer + intersection; }
    void print(std::ostream &os, const char *label) const;
};

class EnergyModel
{
  public:
    // --- Per-event constants ------------------------------------------------
    /** Energy per per-lane dynamic instruction on the SM (fetch, decode,
     *  RF, execute amortized) — AccelWattch-class value. */
    static constexpr double kCorePerLaneInstJ = 12e-12;
    /** Per-byte DRAM + on-chip transfer energy. */
    static constexpr double kDramPerByteJ = 14e-12;
    /** Per-access L2 energy (tag + data, 128B line). */
    static constexpr double kL2PerAccessJ = 60e-12;
    /** Warp buffer entry access (CACTI-class for an 8KB+2KB SRAM). */
    static constexpr double kWarpBufferAccessJ = 18e-12;
    /** 45nm power density applied to Table IV areas (W per um^2). */
    static constexpr double kPowerDensityWPerUm2 = 0.96e-6;
    /** Core clock for converting busy cycles to time. */
    static constexpr double kClockHz = 1365e6;

    /** Derive the breakdown from a finished run's statistics. */
    static EnergyBreakdown compute(const sim::StatRegistry &stats);
};

} // namespace tta::power

#endif // TTA_POWER_ENERGY_HH
