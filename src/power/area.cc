#include "power/area.hh"

#include <iomanip>

namespace tta::power {

double
AreaModel::opUnitArea(ttaplus::OpUnit unit)
{
    using ttaplus::OpUnit;
    switch (unit) {
      case OpUnit::Vec3AddSub: return kVec3AddSub;
      case OpUnit::Multiplier: return kMultiplier;
      case OpUnit::Rcp: return kRcpX3 / 3.0;
      case OpUnit::Cross: return kCross;
      case OpUnit::Dot: return kDot;
      case OpUnit::Vec3Cmp: return 1200.0;  //!< comparator-class cell
      case OpUnit::MinMax: return kMinMax;
      case OpUnit::MaxMin: return kMaxMin;
      case OpUnit::Logical: return 900.0;   //!< gate-class cell
      case OpUnit::Sqrt: return kSqrt;
      case OpUnit::RXform: return 38000.0;  //!< 3x4 MAC array
      case OpUnit::Push: return 800.0;
      case OpUnit::kCount: break;
    }
    return 0.0;
}

double
AreaModel::ttaPlusWithoutSqrt()
{
    // Table IV sums the interconnect plus one set of OP units (3 RCPs).
    return kInterconnect16x16 + kVec3AddSub + kMultiplier + kMinMax +
           kMaxMin + kCross + kDot + kRcpX3;
}

void
AreaModel::printTable(std::ostream &os)
{
    auto row = [&](const char *name, double area, double pct) {
        os << "  " << std::left << std::setw(32) << name << std::right
           << std::setw(12) << std::fixed << std::setprecision(1) << area
           << std::setw(9) << std::setprecision(1) << pct << "%\n";
    };
    os << "Table IV: Baseline RTA area vs TTA+ area (um^2, 45nm)\n";
    os << " Baseline components:\n";
    row("Ray-Box unit", kBaselineRayBox,
        100.0 * kBaselineRayBox / baselineTotal());
    row("Ray-Triangle unit", kBaselineRayTri,
        100.0 * kBaselineRayTri / baselineTotal());
    row("Baseline total", baselineTotal(), 100.0);
    os << " TTA+ components:\n";
    row("Interconnect 16x16 (120B)", kInterconnect16x16,
        100.0 * kInterconnect16x16 / ttaPlusTotal());
    row("Vec3 Add/Sub", kVec3AddSub, 100.0 * kVec3AddSub / ttaPlusTotal());
    row("Multiplier", kMultiplier, 100.0 * kMultiplier / ttaPlusTotal());
    row("MINMAX", kMinMax, 100.0 * kMinMax / ttaPlusTotal());
    row("MAXMIN", kMaxMin, 100.0 * kMaxMin / ttaPlusTotal());
    row("Cross product", kCross, 100.0 * kCross / ttaPlusTotal());
    row("Dot product", kDot, 100.0 * kDot / ttaPlusTotal());
    row("RCP x3", kRcpX3, 100.0 * kRcpX3 / ttaPlusTotal());
    row("TTA+ without SQRT", ttaPlusWithoutSqrt(),
        ttaPlusNoSqrtDeltaPercent());
    row("SQRT", kSqrt, 100.0 * kSqrt / ttaPlusTotal());
    row("TTA+ total (vs baseline %)", ttaPlusTotal(),
        ttaPlusDeltaPercent());
    os << " TTA Ray-Box modification: " << std::setprecision(1)
       << kBaselineRayBox << " -> " << kTtaRayBox << " um^2 (+"
       << ttaRayBoxDeltaPercent() << "%)\n";
}

} // namespace tta::power
