/**
 * @file
 * Area model (Table IV).
 *
 * The paper synthesized the operation units with FreePDK45 and the Intel
 * 16x16 crosspoint switch sample; synthesis is not reproducible offline,
 * so the per-component areas are recorded constants from Table IV and the
 * derived quantities (TTA+ with/without SQRT, percentage vs the baseline
 * Ray-Box + Ray-Triangle units, the TTA Ray-Box delta) are computed from
 * them — see DESIGN.md's substitution table.
 */

#ifndef TTA_POWER_AREA_HH
#define TTA_POWER_AREA_HH

#include <cstdint>
#include <ostream>

#include "ttaplus/uop.hh"

namespace tta::power {

/** All areas in um^2 at 45nm. */
struct AreaModel
{
    // Baseline fixed-function units (Table IV, left).
    static constexpr double kBaselineRayBox = 270779.1;
    static constexpr double kBaselineRayTri = 331299.0;

    // TTA modification (Section V-C1): comparators + bypassing in the
    // Ray-Box unit: 0.2708 -> 0.2756 mm^2.
    static constexpr double kTtaRayBox = 275600.0;

    // TTA+ components (Table IV, right).
    static constexpr double kInterconnect16x16 = 177902.2; //!< 120B wide
    static constexpr double kVec3AddSub = 17424.2;
    static constexpr double kMultiplier = 9551.7;
    static constexpr double kMinMax = 2176.6;
    static constexpr double kMaxMin = 1895.0;
    static constexpr double kCross = 74734.1;
    static constexpr double kDot = 40271.1;
    static constexpr double kRcpX3 = 212991.3; //!< three RCP units
    static constexpr double kSqrt = 284367.2;

    /** Area of one TTA+ OP unit instance. */
    static double opUnitArea(ttaplus::OpUnit unit);

    static double baselineTotal()
    {
        return kBaselineRayBox + kBaselineRayTri;
    }
    static double ttaPlusWithoutSqrt();
    static double ttaPlusTotal() { return ttaPlusWithoutSqrt() + kSqrt; }

    /** TTA Ray-Box area increase over the baseline Ray-Box unit (%). */
    static double ttaRayBoxDeltaPercent()
    {
        return 100.0 * (kTtaRayBox - kBaselineRayBox) / kBaselineRayBox;
    }
    /** TTA+ total vs baseline (%; negative = smaller). */
    static double ttaPlusDeltaPercent()
    {
        return 100.0 * (ttaPlusTotal() - baselineTotal()) / baselineTotal();
    }
    static double ttaPlusNoSqrtDeltaPercent()
    {
        return 100.0 * (ttaPlusWithoutSqrt() - baselineTotal()) /
               baselineTotal();
    }

    /** Print the Table IV comparison. */
    static void printTable(std::ostream &os);
};

} // namespace tta::power

#endif // TTA_POWER_AREA_HH
