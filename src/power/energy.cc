#include "power/energy.hh"

#include <string>

#include "power/area.hh"
#include "ttaplus/uop.hh"

namespace tta::power {

void
EnergyBreakdown::print(std::ostream &os, const char *label) const
{
    os << label << ": total " << total() * 1e3 << " mJ"
       << " (core " << computeCore * 1e3 << ", warp-buffer "
       << warpBuffer * 1e3 << ", intersection " << intersection * 1e3
       << ")\n";
}

EnergyBreakdown
EnergyModel::compute(const sim::StatRegistry &stats)
{
    EnergyBreakdown e;

    // Compute core: per-lane dynamic instructions plus the memory system
    // (DRAM pins + L2 accesses), matching the paper's definition of the
    // "Compute Core" category (Section V-C3).
    double lane_insts =
        static_cast<double>(stats.counterValue("core.lane_insts"));
    double dram_bytes =
        static_cast<double>(stats.counterValue("dram.bytes_read") +
                            stats.counterValue("dram.bytes_written"));
    double l2_accesses =
        static_cast<double>(stats.counterValue("l2.hits") +
                            stats.counterValue("l2.misses"));
    e.computeCore = lane_insts * kCorePerLaneInstJ +
                    dram_bytes * kDramPerByteJ +
                    l2_accesses * kL2PerAccessJ;

    // Warp buffer accesses (ray/node reads and writes in the RTA).
    double wb_accesses =
        static_cast<double>(stats.counterValue("rta.warp_buffer_reads") +
                            stats.counterValue("rta.warp_buffer_writes"));
    e.warpBuffer = wb_accesses * kWarpBufferAccessJ;

    // Intersection units: one issue slot's worth of the unit's power per
    // operation — pipelining (II=1) amortizes the pipeline depth, so
    // E_op = P_unit / f, with P_unit = synthesized area x power density.
    auto unit_energy = [&](double ops, double area_um2) {
        return ops * area_um2 * kPowerDensityWPerUm2 / kClockHz;
    };
    e.intersection += unit_energy(
        static_cast<double>(stats.counterValue("rta.box.ops")),
        AreaModel::kBaselineRayBox);
    e.intersection += unit_energy(
        static_cast<double>(stats.counterValue("rta.tri.ops")),
        AreaModel::kBaselineRayTri);
    e.intersection += unit_energy(
        static_cast<double>(stats.counterValue("rta.xform.ops")),
        38000.0);
    for (uint32_t u = 0; u < ttaplus::kNumOpUnits; ++u) {
        auto unit = static_cast<ttaplus::OpUnit>(u);
        // Per-unit uop count = busy cycles / unit latency.
        double busy = static_cast<double>(stats.counterValue(
            std::string("ttaplus.busy.") + ttaplus::opUnitName(unit)));
        double uops = busy / ttaplus::opUnitLatency(unit);
        e.intersection += unit_energy(uops, AreaModel::opUnitArea(unit));
    }
    return e;
}

} // namespace tta::power
