#include "gpu/isa.hh"

#include <cstring>

namespace tta::gpu {

InstClass
instClass(Opcode op)
{
    switch (op) {
      case Opcode::Load:
      case Opcode::Store:
        return InstClass::Memory;
      case Opcode::BranchZ:
      case Opcode::BranchNZ:
      case Opcode::Jump:
      case Opcode::Exit:
        return InstClass::Control;
      case Opcode::FSqrt:
      case Opcode::FRcp:
      case Opcode::FDiv:
        return InstClass::Sfu;
      case Opcode::AccelTraverse:
        return InstClass::Accel;
      default:
        return InstClass::Alu;
    }
}

uint32_t
instLatency(Opcode op)
{
    switch (instClass(op)) {
      case InstClass::Sfu:
        return 16; // SFU ops: sqrt / rcp / div
      case InstClass::Alu:
        return 4;  // full-throughput FP32/INT pipe
      default:
        return 1;  // control & issue latency; memory handled separately
    }
}

float
Instruction::immF() const
{
    float f;
    std::memcpy(&f, &imm, sizeof(f));
    return f;
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::IAdd: return "iadd";
      case Opcode::ISub: return "isub";
      case Opcode::IMul: return "imul";
      case Opcode::IAddI: return "iaddi";
      case Opcode::IMulI: return "imuli";
      case Opcode::IAnd: return "iand";
      case Opcode::IOr: return "ior";
      case Opcode::IXor: return "ixor";
      case Opcode::INot: return "inot";
      case Opcode::IShlI: return "ishli";
      case Opcode::IShrI: return "ishri";
      case Opcode::SetEqI: return "seteqi";
      case Opcode::SetNeI: return "setnei";
      case Opcode::SetLtI: return "setlti";
      case Opcode::SetLeI: return "setlei";
      case Opcode::SetEqF: return "seteqf";
      case Opcode::SetLtF: return "setltf";
      case Opcode::SetLeF: return "setlef";
      case Opcode::IMin: return "imin";
      case Opcode::IMax: return "imax";
      case Opcode::FAdd: return "fadd";
      case Opcode::FSub: return "fsub";
      case Opcode::FMul: return "fmul";
      case Opcode::FDiv: return "fdiv";
      case Opcode::FAddI: return "faddi";
      case Opcode::FMulI: return "fmuli";
      case Opcode::FMin: return "fmin";
      case Opcode::FMax: return "fmax";
      case Opcode::FNeg: return "fneg";
      case Opcode::FAbs: return "fabs";
      case Opcode::CvtIF: return "cvt.i.f";
      case Opcode::CvtFI: return "cvt.f.i";
      case Opcode::FSqrt: return "fsqrt";
      case Opcode::FRcp: return "frcp";
      case Opcode::MovI: return "movi";
      case Opcode::Mov: return "mov";
      case Opcode::Tid: return "tid";
      case Opcode::Param: return "param";
      case Opcode::VoteAny: return "vote.any";
      case Opcode::Load: return "ld";
      case Opcode::Store: return "st";
      case Opcode::BranchZ: return "brz";
      case Opcode::BranchNZ: return "brnz";
      case Opcode::Jump: return "jmp";
      case Opcode::Exit: return "exit";
      case Opcode::AccelTraverse: return "traverse";
    }
    return "???";
}

std::string
Instruction::toString() const
{
    std::string s = opcodeName(op);
    s += " rd=r" + std::to_string(rd);
    s += " rs1=r" + std::to_string(rs1);
    s += " rs2=r" + std::to_string(rs2);
    s += " imm=" + std::to_string(imm);
    if (op == Opcode::BranchZ || op == Opcode::BranchNZ ||
        op == Opcode::Jump) {
        s += " target=" + std::to_string(target) +
             " reconv=" + std::to_string(reconv);
    }
    return s;
}

} // namespace tta::gpu
