/**
 * @file
 * The SIMT core's instruction set.
 *
 * A compact RISC-style ISA sufficient to express the paper's baseline
 * "CUDA" kernels (Algorithm 1/2/3 traversal loops) one-to-one. Each thread
 * owns 32 x 32-bit registers viewed as int or float. Control flow is
 * structured: every conditional branch carries its immediate-post-dominator
 * reconvergence PC, which the KernelBuilder computes by construction.
 *
 * The single AccelTraverse instruction offloads an entire tree traversal to
 * the attached RTA/TTA/TTA+ device — the paper's `traceRay` /
 * `traverseTreeTTA` (Section II-C advantage 2: one dynamic instruction
 * replaces the whole traversal loop).
 */

#ifndef TTA_GPU_ISA_HH
#define TTA_GPU_ISA_HH

#include <cstdint>
#include <string>

namespace tta::gpu {

enum class Opcode : uint8_t
{
    // Integer ALU
    IAdd, ISub, IMul, IAddI, IMulI,
    IAnd, IOr, IXor, INot, IShlI, IShrI,
    SetEqI, SetNeI, SetLtI, SetLeI,
    SetEqF, SetLtF, SetLeF,
    IMin, IMax,

    // Float ALU
    FAdd, FSub, FMul, FDiv, FAddI, FMulI,
    FMin, FMax, FNeg, FAbs,
    CvtIF, CvtFI,

    // Special function unit (longer latency)
    FSqrt, FRcp,

    // Moves / constants
    MovI,   //!< rd = 32-bit immediate (int or float bit pattern)
    Mov,    //!< rd = rs1

    // Special registers / launch parameters
    Tid,    //!< rd = global thread id
    Param,  //!< rd = launch parameter [imm]

    // Warp vote: rd = 1 in every active lane iff rs1 != 0 in any active
    // lane (CUDA __any_sync; the warp-synchronous traversal primitive).
    VoteAny,

    // Memory (32-bit word per lane)
    Load,   //!< rd = mem[rs1 + imm]
    Store,  //!< mem[rs1 + imm] = rs2

    // Control flow
    BranchZ,  //!< if (rs1 == 0) goto target; reconverge at reconv
    BranchNZ, //!< if (rs1 != 0) goto target; reconverge at reconv
    Jump,     //!< unconditional goto target
    Exit,     //!< thread terminates

    // Accelerator offload: per-lane operand rs1 names the query
    AccelTraverse,
};

/** Broad instruction class, the Fig 20 breakdown categories. */
enum class InstClass : uint8_t
{
    Alu,
    Sfu,
    Memory,
    Control,
    Accel,
};

InstClass instClass(Opcode op);

/** Issue-to-writeback latency in core cycles for each class. */
uint32_t instLatency(Opcode op);

const char *opcodeName(Opcode op);

/** One decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::Exit;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int32_t imm = 0;      //!< immediate (or float bit pattern)
    uint32_t target = 0;  //!< branch/jump target PC
    uint32_t reconv = 0;  //!< reconvergence PC for conditional branches

    float immF() const;
    std::string toString() const;
};

/** Number of general-purpose registers per thread. */
inline constexpr uint32_t kNumRegs = 32;

} // namespace tta::gpu

#endif // TTA_GPU_ISA_HH
