/**
 * @file
 * GPU top-level: wires the SIMT cores, the memory system and (optionally)
 * one traversal accelerator per SM, and runs kernels to completion.
 *
 * Supports co-scheduling several kernels in one run (used by the N-Body
 * kernel-fusion experiment, Section V-A: traversal on the TTA while the
 * general-purpose cores execute the force post-processing).
 */

#ifndef TTA_GPU_GPU_HH
#define TTA_GPU_GPU_HH

#include <memory>
#include <vector>

#include "gpu/core.hh"
#include "gpu/kernel.hh"
#include "mem/global_memory.hh"
#include "mem/memsys.hh"
#include "sim/config.hh"
#include "sim/ticked.hh"

namespace tta::gpu {

/** One kernel launch request. */
struct Launch
{
    const KernelProgram *prog;
    uint64_t numThreads;
    std::vector<uint32_t> params;
};

class Gpu
{
  public:
    Gpu(const sim::Config &cfg, sim::StatRegistry &stats);
    ~Gpu();

    mem::GlobalMemory &memory() { return *gmem_; }
    mem::MemSystem &memsys() { return *memsys_; }
    SimtCore &core(uint32_t sm) { return *cores_[sm]; }
    sim::Simulator &simulator() { return sim_; }
    const sim::Config &config() const { return cfg_; }
    sim::StatRegistry &stats() { return *stats_; }

    /**
     * Registry that SM `sm`'s components (core + accelerator) should
     * register their stats with. Under the threaded kernel this is a
     * per-shard shadow registry — workers never contend on stat objects
     * — absorbed into stats() in SM-id order at the end of each run;
     * under the serial kernels it is stats() itself.
     */
    sim::StatRegistry &
    shardStats(uint32_t sm)
    {
        return shardStats_.empty() ? *stats_ : *shardStats_[sm];
    }

    /**
     * Attach per-SM accelerator devices. The devices must also be
     * TickedComponents (or be driven by one) registered via addComponent().
     */
    void attachAccel(uint32_t sm, AccelDevice *dev)
    {
        cores_[sm]->setAccel(dev);
    }

    /**
     * Register an extra ticked component (e.g. an RTA) into the run
     * loop. `shard` gives the component's per-SM island for the
     * threaded kernel (accelerators pass their SM id); components that
     * must run serially pass sim::kSharedShard.
     */
    void
    addComponent(sim::TickedComponent *comp, int shard = sim::kSharedShard)
    {
        sim_.add(comp, shard);
    }

    /** Run a single kernel to completion; returns elapsed cycles. */
    sim::Cycle runKernel(const KernelProgram &prog, uint64_t num_threads,
                         std::vector<uint32_t> params = {});

    /** Co-schedule several kernels; returns elapsed cycles until all
     *  finish. Warps are dispatched round-robin across launches. */
    sim::Cycle runKernels(std::vector<Launch> launches);

  private:
    struct DispatchState
    {
        Launch launch;
        uint64_t nextThread = 0;
        bool done() const { return nextThread >= launch.numThreads; }
    };

    /** Fill free warp slots from pending launches; true if any remain. */
    bool dispatch(std::vector<DispatchState> &states);

    /** Fold the per-shard shadow registries into stats() (SM-id order)
     *  and clear them; no-op under the serial kernels. */
    void absorbShardStats();

    const sim::Config cfg_;
    sim::StatRegistry *stats_;
    /** Per-SM shadow registries (threaded kernel only; else empty). */
    std::vector<std::unique_ptr<sim::StatRegistry>> shardStats_;
    std::unique_ptr<mem::GlobalMemory> gmem_;
    std::unique_ptr<mem::MemSystem> memsys_;
    std::vector<std::unique_ptr<SimtCore>> cores_;
    sim::Simulator sim_;
    std::vector<size_t> dispatchCursor_;
};

} // namespace tta::gpu

#endif // TTA_GPU_GPU_HH
