/**
 * @file
 * Kernel programs and the KernelBuilder assembler.
 *
 * Baseline "CUDA" kernels are assembled with this builder. Structured
 * control-flow helpers (ifThen / ifThenElse / doWhile) emit branches whose
 * reconvergence PC is the immediate post-dominator by construction, so the
 * SIMT stack reconverges exactly as NVIDIA-style hardware would.
 */

#ifndef TTA_GPU_KERNEL_HH
#define TTA_GPU_KERNEL_HH

#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "gpu/isa.hh"

namespace tta::gpu {

/** A register index (0..31). */
using Reg = uint8_t;

/** An immutable, validated instruction sequence. */
struct KernelProgram
{
    std::string name;
    std::vector<Instruction> insts;

    size_t size() const { return insts.size(); }
    std::string disassemble() const;
};

/** Forward-reference label for branch targets. */
struct Label
{
    uint32_t id;
};

class KernelBuilder
{
  public:
    explicit KernelBuilder(std::string name) : name_(std::move(name)) {}

    // --- Raw emitters -----------------------------------------------------
    void emit(Opcode op, Reg rd = 0, Reg rs1 = 0, Reg rs2 = 0,
              int32_t imm = 0);

    void iadd(Reg rd, Reg a, Reg b) { emit(Opcode::IAdd, rd, a, b); }
    void isub(Reg rd, Reg a, Reg b) { emit(Opcode::ISub, rd, a, b); }
    void imul(Reg rd, Reg a, Reg b) { emit(Opcode::IMul, rd, a, b); }
    void iaddi(Reg rd, Reg a, int32_t i) { emit(Opcode::IAddI, rd, a, 0, i); }
    void imuli(Reg rd, Reg a, int32_t i) { emit(Opcode::IMulI, rd, a, 0, i); }
    void iand(Reg rd, Reg a, Reg b) { emit(Opcode::IAnd, rd, a, b); }
    void ior(Reg rd, Reg a, Reg b) { emit(Opcode::IOr, rd, a, b); }
    void ixor(Reg rd, Reg a, Reg b) { emit(Opcode::IXor, rd, a, b); }
    void inot(Reg rd, Reg a) { emit(Opcode::INot, rd, a); }
    void ishli(Reg rd, Reg a, int32_t i) { emit(Opcode::IShlI, rd, a, 0, i); }
    void ishri(Reg rd, Reg a, int32_t i) { emit(Opcode::IShrI, rd, a, 0, i); }
    void seteqi(Reg rd, Reg a, Reg b) { emit(Opcode::SetEqI, rd, a, b); }
    void setnei(Reg rd, Reg a, Reg b) { emit(Opcode::SetNeI, rd, a, b); }
    void setlti(Reg rd, Reg a, Reg b) { emit(Opcode::SetLtI, rd, a, b); }
    void setlei(Reg rd, Reg a, Reg b) { emit(Opcode::SetLeI, rd, a, b); }
    void seteqf(Reg rd, Reg a, Reg b) { emit(Opcode::SetEqF, rd, a, b); }
    void setltf(Reg rd, Reg a, Reg b) { emit(Opcode::SetLtF, rd, a, b); }
    void setlef(Reg rd, Reg a, Reg b) { emit(Opcode::SetLeF, rd, a, b); }
    void imin(Reg rd, Reg a, Reg b) { emit(Opcode::IMin, rd, a, b); }
    void imax(Reg rd, Reg a, Reg b) { emit(Opcode::IMax, rd, a, b); }

    void fadd(Reg rd, Reg a, Reg b) { emit(Opcode::FAdd, rd, a, b); }
    void fsub(Reg rd, Reg a, Reg b) { emit(Opcode::FSub, rd, a, b); }
    void fmul(Reg rd, Reg a, Reg b) { emit(Opcode::FMul, rd, a, b); }
    void fdiv(Reg rd, Reg a, Reg b) { emit(Opcode::FDiv, rd, a, b); }
    void
    faddi(Reg rd, Reg a, float i)
    {
        int32_t bits;
        std::memcpy(&bits, &i, sizeof(bits));
        emit(Opcode::FAddI, rd, a, 0, bits);
    }
    void
    fmuli(Reg rd, Reg a, float i)
    {
        int32_t bits;
        std::memcpy(&bits, &i, sizeof(bits));
        emit(Opcode::FMulI, rd, a, 0, bits);
    }
    void fmin(Reg rd, Reg a, Reg b) { emit(Opcode::FMin, rd, a, b); }
    void fmax(Reg rd, Reg a, Reg b) { emit(Opcode::FMax, rd, a, b); }
    void fneg(Reg rd, Reg a) { emit(Opcode::FNeg, rd, a); }
    void fabs_(Reg rd, Reg a) { emit(Opcode::FAbs, rd, a); }
    void fsqrt(Reg rd, Reg a) { emit(Opcode::FSqrt, rd, a); }
    void frcp(Reg rd, Reg a) { emit(Opcode::FRcp, rd, a); }
    void cvtif(Reg rd, Reg a) { emit(Opcode::CvtIF, rd, a); }
    void cvtfi(Reg rd, Reg a) { emit(Opcode::CvtFI, rd, a); }

    void movi(Reg rd, int32_t value) { emit(Opcode::MovI, rd, 0, 0, value); }
    void
    movif(Reg rd, float value)
    {
        int32_t bits;
        std::memcpy(&bits, &value, sizeof(bits));
        emit(Opcode::MovI, rd, 0, 0, bits);
    }
    void mov(Reg rd, Reg a) { emit(Opcode::Mov, rd, a); }

    void tid(Reg rd) { emit(Opcode::Tid, rd); }
    void voteany(Reg rd, Reg a) { emit(Opcode::VoteAny, rd, a); }
    void param(Reg rd, int32_t idx) { emit(Opcode::Param, rd, 0, 0, idx); }

    void load(Reg rd, Reg addr, int32_t off = 0)
    {
        emit(Opcode::Load, rd, addr, 0, off);
    }
    void store(Reg addr, Reg value, int32_t off = 0)
    {
        emit(Opcode::Store, 0, addr, value, off);
    }

    void exit() { emit(Opcode::Exit); }
    void accelTraverse(Reg operand)
    {
        emit(Opcode::AccelTraverse, 0, operand);
    }

    // --- Labels and branches -----------------------------------------------
    Label newLabel();
    void bind(Label l);
    /** brz/brnz to a label; reconvergence defaults to the fall-through PC
     *  (correct for loop back-edges). */
    void branchZ(Reg cond, Label target);
    void branchNZ(Reg cond, Label target);
    void jump(Label target);

    // --- Structured control flow -------------------------------------------
    /** if (cond != 0) { then_body(); } — reconverges after the block. */
    void ifThen(Reg cond, const std::function<void()> &then_body);
    /** if (cond != 0) { then } else { otherwise } */
    void ifThenElse(Reg cond, const std::function<void()> &then_body,
                    const std::function<void()> &else_body);
    /** do { body(); } while (cond-reg produced by body != 0); */
    void doWhile(const std::function<Reg()> &body);

    // --- Vec3 composite helpers (expand to scalar ops) ----------------------
    /** Load three consecutive floats into base, base+1, base+2. */
    void loadVec3(Reg base, Reg addr, int32_t off = 0);
    /** (d,d+1,d+2) = (a..) - (b..) */
    void vsub(Reg d, Reg a, Reg b);
    void vadd(Reg d, Reg a, Reg b);
    /** d = dot((a..), (b..)); clobbers tmp. */
    void vdot(Reg d, Reg a, Reg b, Reg tmp);
    /** (d..) = cross((a..), (b..)); clobbers tmp, tmp+1. */
    void vcross(Reg d, Reg a, Reg b, Reg tmp);
    /** (d..) = (a..) * scalar reg s */
    void vscale(Reg d, Reg a, Reg s);

    /** Validate, patch labels, ensure a trailing Exit, and produce the
     *  program. The builder must not be reused afterwards. */
    KernelProgram build();

    uint32_t currentPc() const
    {
        return static_cast<uint32_t>(insts_.size());
    }

  private:
    enum class FixField { Target, Reconv };
    struct Fixup
    {
        uint32_t inst;
        FixField field;
        uint32_t label;
    };

    void branchTo(Opcode op, Reg cond, Label target);

    std::string name_;
    std::vector<Instruction> insts_;
    std::vector<int64_t> labelPcs_; //!< -1 while unbound
    std::vector<Fixup> fixups_;
    bool built_ = false;
};

} // namespace tta::gpu

#endif // TTA_GPU_KERNEL_HH
