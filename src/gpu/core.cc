#include "gpu/core.hh"

#include <bit>
#include <cmath>
#include <cstring>

#include "mem/coalescer.hh"
#include "sim/logging.hh"

namespace tta::gpu {

namespace {

float
asFloat(uint32_t bits)
{
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
}

uint32_t
asBits(float f)
{
    uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    return bits;
}

/** Does this opcode read rs1 / rs2? Write rd? */
struct RegUse
{
    bool readsRs1;
    bool readsRs2;
    bool writesRd;
};

RegUse
regUse(Opcode op)
{
    switch (op) {
      case Opcode::MovI:
      case Opcode::Tid:
      case Opcode::Param:
        return {false, false, true};
      case Opcode::Mov:
      case Opcode::VoteAny:
      case Opcode::INot:
      case Opcode::IShlI:
      case Opcode::IShrI:
      case Opcode::IAddI:
      case Opcode::IMulI:
      case Opcode::FAddI:
      case Opcode::FMulI:
      case Opcode::FNeg:
      case Opcode::FAbs:
      case Opcode::FSqrt:
      case Opcode::FRcp:
      case Opcode::CvtIF:
      case Opcode::CvtFI:
        return {true, false, true};
      case Opcode::Load:
        return {true, false, true};
      case Opcode::Store:
        return {true, true, false};
      case Opcode::BranchZ:
      case Opcode::BranchNZ:
      case Opcode::AccelTraverse:
        return {true, false, false};
      case Opcode::Jump:
      case Opcode::Exit:
        return {false, false, false};
      default:
        return {true, true, true}; // three-operand ALU
    }
}

bool
isFloatOp(Opcode op)
{
    switch (op) {
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:
      case Opcode::FAddI:
      case Opcode::FMulI:
      case Opcode::FMin:
      case Opcode::FMax:
      case Opcode::FNeg:
      case Opcode::FAbs:
      case Opcode::FSqrt:
      case Opcode::FRcp:
      case Opcode::SetEqF:
      case Opcode::SetLtF:
      case Opcode::SetLeF:
        return true;
      default:
        return false;
    }
}

} // namespace

SimtCore::SimtCore(const sim::Config &cfg, uint32_t sm_id,
                   mem::MemSystem &memsys, mem::GlobalMemory &gmem,
                   sim::StatRegistry &stats)
    : sim::TickedComponent("sm" + std::to_string(sm_id)),
      cfg_(cfg), smId_(sm_id), memsys_(&memsys), gmem_(&gmem)
{
    warps_.resize(cfg_.maxWarpsPerSm);
    for (auto &warp : warps_)
        warp.regs.resize(cfg_.warpSize * kNumRegs, 0);

    instsAlu_ = &stats.counter("core.insts_alu");
    instsSfu_ = &stats.counter("core.insts_sfu");
    instsMem_ = &stats.counter("core.insts_mem");
    instsCtrl_ = &stats.counter("core.insts_ctrl");
    instsAccel_ = &stats.counter("core.insts_accel");
    activeLaneSum_ = &stats.counter("core.active_lane_sum");
    issued_ = &stats.counter("core.issued");
    laneInsts_ = &stats.counter("core.lane_insts");
    flopCount_ = &stats.counter("core.flops");
    stallCycles_ = &stats.counter("core.stall_cycles");
    memTransactions_ = &stats.counter("core.mem_transactions");
    stallIssue_ = &stats.counter("core.stall_issue");
    stallMem_ = &stats.counter("core.stall_mem");
    stallAccel_ = &stats.counter("core.stall_accel");
    stallExec_ = &stats.counter("core.stall_exec");

    tracer_ = stats.tracer();
    if (tracer_ && !tracer_->wants(sim::TraceWarp))
        tracer_ = nullptr;
    warpStreams_.resize(cfg_.maxWarpsPerSm, nullptr);
}

sim::TraceStream *
SimtCore::warpStream(uint32_t slot)
{
    if (!warpStreams_[slot]) {
        warpStreams_[slot] = tracer_->stream(
            name() + ".w" + std::to_string(slot), sim::TraceWarp);
    }
    return warpStreams_[slot];
}

uint32_t
SimtCore::freeSlots() const
{
    return static_cast<uint32_t>(warps_.size()) - residentWarps_;
}

void
SimtCore::launchWarp(const KernelProgram *prog, uint64_t base,
                     uint32_t n_threads, const std::vector<uint32_t> *params)
{
    panic_if(n_threads == 0 || n_threads > cfg_.warpSize,
             "bad warp thread count %u", n_threads);
    // Wake before mutating: settles skipped-cycle stall accounting
    // against the still-empty core, then schedules the issue tick.
    wakeNow();
    for (uint32_t slot = 0; slot < warps_.size(); ++slot) {
        WarpContext &warp = warps_[slot];
        if (warp.state != WarpContext::State::Invalid)
            continue;
        warp.state = WarpContext::State::Active;
        warp.prog = prog;
        warp.params = params;
        warp.baseThread = base;
        warp.launchMask = n_threads == 32
            ? 0xffffffffu : ((1u << n_threads) - 1);
        warp.age = nextAge_++;
        warp.stack.start(0, warp.launchMask);
        warp.pendingRegs = 0;
        warp.pendingLoads.clear();
        std::fill(warp.regs.begin(), warp.regs.end(), 0);
        ++residentWarps_;
        return;
    }
    panic("launchWarp with no free slot on SM %u", smId_);
}

void
SimtCore::accelDone(uint32_t warp_slot, sim::Cycle cycle)
{
    WarpContext &warp = warps_[warp_slot];
    panic_if(warp.state != WarpContext::State::WaitAccel,
             "accelDone for a warp not waiting on the accelerator");
    // Wake before mutating: the accelerator ticks after this core, so
    // the wake resolves to cycle + 1 (polling visibility) and catch-up
    // accounting still sees the warp as WaitAccel for this cycle.
    wake(cycle);
    warp.state = WarpContext::State::Active;
    if (tracer_)
        warpStream(warp_slot)->end(cycle); // closes "accel_wait"
}

void
SimtCore::drainResponses()
{
    // The queue is core-only (CoreLoad): accelerator responses are
    // delivered on the memory system's rtaResponses() queue instead.
    auto &queue = memsys_->responses(smId_);
    for (auto it = queue.begin(); it != queue.end();) {
        uint32_t slot = static_cast<uint32_t>(it->tag >> 32);
        uint32_t token = static_cast<uint32_t>(it->tag);
        WarpContext &warp = warps_[slot];
        for (auto load = warp.pendingLoads.begin();
             load != warp.pendingLoads.end(); ++load) {
            if (static_cast<uint32_t>(load->token) != token)
                continue;
            if (--load->transactionsLeft == 0) {
                uint8_t rd = load->rd;
                warp.pendingLoads.erase(load);
                // Clear the scoreboard bit only if no other outstanding
                // load targets the same register.
                bool still_pending = false;
                for (const auto &other : warp.pendingLoads)
                    still_pending |= other.rd == rd;
                if (!still_pending)
                    warp.pendingRegs &= ~(1u << rd);
            }
            break;
        }
        it = queue.erase(it);
    }
}

void
SimtCore::drainWriteback(sim::Cycle cycle)
{
    while (!writebacks_.empty() && writebacks_.top().ready <= cycle) {
        const Writeback &wb = writebacks_.top();
        WarpContext &warp = warps_[wb.slot];
        uint32_t mask = wb.regMask;
        // Keep bits that a still-outstanding load also owns.
        for (const auto &load : warp.pendingLoads)
            mask &= ~(1u << load.rd);
        warp.pendingRegs &= ~mask;
        writebacks_.pop();
    }
}

bool
SimtCore::canIssue(const WarpContext &warp) const
{
    if (warp.state != WarpContext::State::Active || warp.stack.empty())
        return false;
    const Instruction &inst = warp.prog->insts[warp.stack.pc()];
    // Exit drains all in-flight loads/writebacks first so a reused warp
    // slot never receives a stale writeback.
    if (inst.op == Opcode::Exit)
        return warp.pendingRegs == 0 && warp.pendingLoads.empty();
    RegUse use = regUse(inst.op);
    uint32_t hazard = 0;
    if (use.readsRs1)
        hazard |= 1u << inst.rs1;
    if (use.readsRs2)
        hazard |= 1u << inst.rs2;
    if (use.writesRd)
        hazard |= 1u << inst.rd;
    return (warp.pendingRegs & hazard) == 0;
}

void
SimtCore::countIssue(const Instruction &inst, uint32_t mask)
{
    uint32_t lanes = std::popcount(mask);
    switch (instClass(inst.op)) {
      case InstClass::Alu: ++*instsAlu_; break;
      case InstClass::Sfu: ++*instsSfu_; break;
      case InstClass::Memory: ++*instsMem_; break;
      case InstClass::Control: ++*instsCtrl_; break;
      case InstClass::Accel: ++*instsAccel_; break;
    }
    ++*issued_;
    *activeLaneSum_ += lanes;
    *laneInsts_ += lanes;
    if (isFloatOp(inst.op))
        *flopCount_ += lanes;
}

void
SimtCore::execAlu(WarpContext &warp, const Instruction &inst, uint32_t mask)
{
    if (inst.op == Opcode::VoteAny) {
        // Cross-lane: any active lane with a non-zero predicate.
        uint32_t any = 0;
        for (uint32_t lane = 0; lane < cfg_.warpSize; ++lane) {
            if ((mask & (1u << lane)) &&
                warp.regValue(lane, inst.rs1) != 0)
                any = 1;
        }
        for (uint32_t lane = 0; lane < cfg_.warpSize; ++lane) {
            if (mask & (1u << lane))
                warp.reg(lane, inst.rd) = any;
        }
        return;
    }
    for (uint32_t lane = 0; lane < cfg_.warpSize; ++lane) {
        if (!(mask & (1u << lane)))
            continue;
        uint32_t a = warp.regValue(lane, inst.rs1);
        uint32_t b = warp.regValue(lane, inst.rs2);
        float fa = asFloat(a);
        float fb = asFloat(b);
        int32_t ia = static_cast<int32_t>(a);
        int32_t ib = static_cast<int32_t>(b);
        uint32_t result = 0;
        switch (inst.op) {
          case Opcode::IAdd: result = a + b; break;
          case Opcode::ISub: result = a - b; break;
          case Opcode::IMul: result = a * b; break;
          case Opcode::IAddI:
            result = a + static_cast<uint32_t>(inst.imm);
            break;
          case Opcode::IMulI:
            result = a * static_cast<uint32_t>(inst.imm);
            break;
          case Opcode::IAnd: result = a & b; break;
          case Opcode::IOr: result = a | b; break;
          case Opcode::IXor: result = a ^ b; break;
          case Opcode::INot: result = ~a; break;
          case Opcode::IShlI: result = a << (inst.imm & 31); break;
          case Opcode::IShrI: result = a >> (inst.imm & 31); break;
          case Opcode::SetEqI: result = a == b; break;
          case Opcode::SetNeI: result = a != b; break;
          case Opcode::SetLtI: result = ia < ib; break;
          case Opcode::SetLeI: result = ia <= ib; break;
          case Opcode::SetEqF: result = fa == fb; break;
          case Opcode::SetLtF: result = fa < fb; break;
          case Opcode::SetLeF: result = fa <= fb; break;
          case Opcode::IMin: result = static_cast<uint32_t>(
                                 std::min(ia, ib));
            break;
          case Opcode::IMax: result = static_cast<uint32_t>(
                                 std::max(ia, ib));
            break;
          case Opcode::FAdd: result = asBits(fa + fb); break;
          case Opcode::FSub: result = asBits(fa - fb); break;
          case Opcode::FMul: result = asBits(fa * fb); break;
          case Opcode::FDiv: result = asBits(fa / fb); break;
          case Opcode::FAddI: result = asBits(fa + inst.immF()); break;
          case Opcode::FMulI: result = asBits(fa * inst.immF()); break;
          case Opcode::FMin: result = asBits(std::fmin(fa, fb)); break;
          case Opcode::FMax: result = asBits(std::fmax(fa, fb)); break;
          case Opcode::FNeg: result = asBits(-fa); break;
          case Opcode::FAbs: result = asBits(std::fabs(fa)); break;
          case Opcode::FSqrt: result = asBits(std::sqrt(fa)); break;
          case Opcode::FRcp: result = asBits(1.0f / fa); break;
          case Opcode::CvtIF:
            result = asBits(static_cast<float>(ia));
            break;
          case Opcode::CvtFI:
            result = static_cast<uint32_t>(static_cast<int32_t>(fa));
            break;
          case Opcode::MovI: result = static_cast<uint32_t>(inst.imm); break;
          case Opcode::Mov: result = a; break;
          case Opcode::Tid:
            result = static_cast<uint32_t>(warp.baseThread + lane);
            break;
          case Opcode::Param:
            panic_if(!warp.params ||
                     static_cast<size_t>(inst.imm) >= warp.params->size(),
                     "Param index %d out of range", inst.imm);
            result = (*warp.params)[inst.imm];
            break;
          default:
            panic("execAlu on non-ALU opcode %s", opcodeName(inst.op));
        }
        warp.reg(lane, inst.rd) = result;
    }
}

bool
SimtCore::execMemory(sim::Cycle cycle, uint32_t slot, WarpContext &warp,
                     const Instruction &inst, uint32_t mask)
{
    const bool is_store = inst.op == Opcode::Store;
    if (!is_store && warp.pendingLoads.size() >= kMaxPendingLoads)
        return false;
    if (!memsys_->canAccept(smId_)) {
        // Inside an epoch window the memory system's back-pressure wake
        // only replays at the barrier, where it may resolve to a cycle
        // the parallel phase already ran. Self-schedule the retry at the
        // projected acceptance cycle instead: this core then owns a tick
        // there (a stall-accounting no-op — the scan re-fails or issues
        // exactly when the serial kernels would), and the replayed wake
        // merges into it.
        if (sim::Simulator::currentEpochEnd() != 0)
            wake(memsys_->nextAcceptCycle(smId_));
        return false;
    }

    std::vector<mem::Addr> &addrs = addrBuf_;
    addrs.assign(cfg_.warpSize, 0);
    for (uint32_t lane = 0; lane < cfg_.warpSize; ++lane) {
        if (!(mask & (1u << lane)))
            continue;
        uint64_t base = warp.regValue(lane, inst.rs1);
        addrs[lane] = base + static_cast<int64_t>(inst.imm);
    }
    std::vector<mem::CoalescedAccess> &transactions = coalesceBuf_;
    mem::coalesce(addrs, mask, 4, cfg_.lineSizeBytes, transactions);
    *memTransactions_ += transactions.size();

    if (is_store) {
        for (uint32_t lane = 0; lane < cfg_.warpSize; ++lane) {
            if (mask & (1u << lane))
                gmem_->write<uint32_t>(addrs[lane],
                                       warp.regValue(lane, inst.rs2));
        }
        for (const auto &txn : transactions) {
            mem::MemRequest req;
            req.addr = txn.lineAddr;
            req.size = std::popcount(txn.laneMask) * 4;
            req.isWrite = true;
            req.source = mem::RequestSource::CoreStore;
            req.smId = smId_;
            memsys_->sendRequest(req);
        }
        return true;
    }

    // Load: functional read now, timing via the scoreboard.
    for (uint32_t lane = 0; lane < cfg_.warpSize; ++lane) {
        if (mask & (1u << lane))
            warp.reg(lane, inst.rd) = gmem_->read<uint32_t>(addrs[lane]);
    }
    uint32_t token = static_cast<uint32_t>(nextToken_++);
    for (const auto &txn : transactions) {
        mem::MemRequest req;
        req.addr = txn.lineAddr;
        req.size = cfg_.lineSizeBytes;
        req.isWrite = false;
        req.source = mem::RequestSource::CoreLoad;
        req.smId = smId_;
        req.tag = (static_cast<uint64_t>(slot) << 32) | token;
        memsys_->sendRequest(req);
    }
    warp.pendingLoads.push_back(
        {token, inst.rd, static_cast<uint32_t>(transactions.size())});
    warp.pendingRegs |= 1u << inst.rd;
    (void)cycle;
    return true;
}

bool
SimtCore::execAccel(sim::Cycle cycle, uint32_t slot, WarpContext &warp,
                    const Instruction &inst, uint32_t mask)
{
    panic_if(!accel_, "AccelTraverse with no accelerator attached");
    std::vector<uint32_t> operands(cfg_.warpSize, 0);
    for (uint32_t lane = 0; lane < cfg_.warpSize; ++lane)
        operands[lane] = warp.regValue(lane, inst.rs1);
    if (!accel_->launchWarp(cycle, this, slot, mask, operands))
        return false;
    warp.state = WarpContext::State::WaitAccel;
    if (tracer_)
        warpStream(slot)->begin(cycle, "accel_wait");
    return true;
}

bool
SimtCore::issue(sim::Cycle cycle, uint32_t slot)
{
    WarpContext &warp = warps_[slot];
    const Instruction &inst = warp.prog->insts[warp.stack.pc()];
    uint32_t mask = warp.stack.activeMask();

    if (tracer_ && !warp.traceLive) {
        warp.traceLive = true;
        warpStream(slot)->begin(cycle, "warp");
    }

    switch (instClass(inst.op)) {
      case InstClass::Memory:
        if (!execMemory(cycle, slot, warp, inst, mask))
            return false;
        warp.stack.advance();
        break;

      case InstClass::Accel:
        if (!execAccel(cycle, slot, warp, inst, mask))
            return false;
        warp.stack.advance();
        break;

      case InstClass::Control:
        if (inst.op == Opcode::Exit) {
            warp.stack.exitLanes();
            if (warp.stack.empty()) {
                warp.state = WarpContext::State::Invalid;
                warp.prog = nullptr;
                --residentWarps_;
                if (tracer_ && warp.traceLive) {
                    warp.traceLive = false;
                    warpStream(slot)->end(cycle); // closes "warp"
                }
            }
        } else if (inst.op == Opcode::Jump) {
            warp.stack.jump(inst.target);
        } else {
            uint32_t taken = 0;
            for (uint32_t lane = 0; lane < cfg_.warpSize; ++lane) {
                if (!(mask & (1u << lane)))
                    continue;
                uint32_t v = warp.regValue(lane, inst.rs1);
                bool t = inst.op == Opcode::BranchZ ? v == 0 : v != 0;
                if (t)
                    taken |= 1u << lane;
            }
            warp.stack.branch(taken, inst.target, inst.reconv);
        }
        break;

      case InstClass::Alu:
      case InstClass::Sfu:
        execAlu(warp, inst, mask);
        // Result available after the pipe latency.
        warp.pendingRegs |= 1u << inst.rd;
        writebacks_.push(
            {cycle + instLatency(inst.op), slot, 1u << inst.rd});
        warp.stack.advance();
        break;
    }

    countIssue(inst, mask);
    return true;
}

void
SimtCore::tick(sim::Cycle cycle)
{
    catchUp(cycle);
    lastAccounted_ = cycle + 1;
    if (residentWarps_ == 0) {
        nextEvent_ = sim::kAsleep; // a launchWarp wake re-arms us
        return;
    }
    drainWriteback(cycle);
    drainResponses();

    // Greedy-then-oldest: stay on the last warp while it can issue, else
    // pick the oldest ready warp.
    int pick = -1;
    if (lastIssued_ >= 0 && canIssue(warps_[lastIssued_]))
        pick = lastIssued_;
    if (pick < 0) {
        uint64_t best_age = UINT64_MAX;
        for (uint32_t slot = 0; slot < warps_.size(); ++slot) {
            if (canIssue(warps_[slot]) && warps_[slot].age < best_age) {
                best_age = warps_[slot].age;
                pick = static_cast<int>(slot);
            }
        }
    }

    if (pick >= 0 && issue(cycle, static_cast<uint32_t>(pick))) {
        lastIssued_ = pick;
        nextEvent_ = cycle + 1;
        return;
    }
    // Structural stall on the greedy warp: try the others once.
    if (pick >= 0) {
        for (uint32_t slot = 0; slot < warps_.size(); ++slot) {
            if (static_cast<int>(slot) == pick || !canIssue(warps_[slot]))
                continue;
            if (issue(cycle, slot)) {
                lastIssued_ = static_cast<int>(slot);
                nextEvent_ = cycle + 1;
                return;
            }
        }
    }
    if (busy()) {
        ++*stallCycles_;
        classifyStall(pick >= 0);
    }
    // The core's state is frozen until a writeback matures or an
    // external event arrives: data/accel stalls clear via load responses
    // and accelDone, and each structural blocker delivers a wake when it
    // frees (accelDone fires as the accel warp slot frees; the memory
    // system wakes us when its input-queue back-pressure clears). Failed
    // issue attempts have no side effects, so the skipped retries a
    // polling kernel would have made are pure no-ops; catchUp() replays
    // their per-cycle stall attribution.
    frozenStructural_ = pick >= 0;
    nextEvent_ =
        writebacks_.empty() ? sim::kAsleep : writebacks_.top().ready;
}

void
SimtCore::catchUp(sim::Cycle now)
{
    if (now <= lastAccounted_)
        return;
    uint64_t n = now - lastAccounted_;
    lastAccounted_ = now;
    if (residentWarps_ == 0)
        return;
    // Each cycle the event-driven kernel skipped, a polling tick would
    // have re-run the same failing issue scan (the core's state is
    // frozen while it sleeps; wakes settle this accounting before
    // producers mutate it) and recorded one stall of the same class as
    // the tick that put the core to sleep.
    *stallCycles_ += n;
    classifyStall(frozenStructural_, n);
}

/**
 * Attribute one stall cycle to its dominant cause. Priority order:
 *
 *  - structural: a warp *could* issue but the downstream resource
 *    refused (memory-system back-pressure, pending-load table full,
 *    accelerator warp buffer full) -> stall_issue;
 *  - data: some Active warp is scoreboard-blocked on an outstanding
 *    load -> stall_mem, else on an ALU/SFU writeback -> stall_exec;
 *  - otherwise every resident warp is parked in WaitAccel ->
 *    stall_accel (the paper's "intersection busy": the SM idles while
 *    traversal runs on the accelerator).
 *
 * Reconvergence is not a stall source in this model: divergence
 * serializes paths inside issued instructions and therefore shows up in
 * SIMT efficiency (active_lane_sum / lane capacity), not here. The four
 * counters always sum to core.stall_cycles.
 */
void
SimtCore::classifyStall(bool structural, uint64_t n)
{
    if (structural) {
        *stallIssue_ += n;
        return;
    }
    bool any_load = false;
    bool any_exec = false;
    bool any_active = false;
    for (const auto &warp : warps_) {
        if (warp.state != WarpContext::State::Active)
            continue;
        any_active = true;
        if (!warp.pendingLoads.empty())
            any_load = true;
        else if (warp.pendingRegs != 0)
            any_exec = true;
    }
    if (any_load)
        *stallMem_ += n;
    else if (any_exec)
        *stallExec_ += n;
    else if (!any_active)
        *stallAccel_ += n;
    else
        *stallIssue_ += n;
}

bool
SimtCore::busy() const
{
    return residentWarps_ != 0;
}

} // namespace tta::gpu
