#include "gpu/kernel.hh"

#include "sim/logging.hh"

namespace tta::gpu {

std::string
KernelProgram::disassemble() const
{
    std::string out = name + ":\n";
    for (size_t pc = 0; pc < insts.size(); ++pc) {
        out += "  " + std::to_string(pc) + ": " + insts[pc].toString() +
               "\n";
    }
    return out;
}

void
KernelBuilder::emit(Opcode op, Reg rd, Reg rs1, Reg rs2, int32_t imm)
{
    panic_if(built_, "KernelBuilder reused after build()");
    panic_if(rd >= kNumRegs || rs1 >= kNumRegs || rs2 >= kNumRegs,
             "register index out of range in %s", name_.c_str());
    Instruction inst;
    inst.op = op;
    inst.rd = rd;
    inst.rs1 = rs1;
    inst.rs2 = rs2;
    inst.imm = imm;
    insts_.push_back(inst);
}

Label
KernelBuilder::newLabel()
{
    labelPcs_.push_back(-1);
    return Label{static_cast<uint32_t>(labelPcs_.size() - 1)};
}

void
KernelBuilder::bind(Label l)
{
    panic_if(labelPcs_[l.id] != -1, "label bound twice in %s",
             name_.c_str());
    labelPcs_[l.id] = static_cast<int64_t>(insts_.size());
}

void
KernelBuilder::branchTo(Opcode op, Reg cond, Label target)
{
    emit(op, 0, cond);
    uint32_t pc = static_cast<uint32_t>(insts_.size() - 1);
    fixups_.push_back({pc, FixField::Target, target.id});
    // Default reconvergence point: the fall-through instruction. This is
    // the IPDOM for a loop back-edge; structured if/else overrides it.
    insts_[pc].reconv = pc + 1;
}

void
KernelBuilder::branchZ(Reg cond, Label target)
{
    branchTo(Opcode::BranchZ, cond, target);
}

void
KernelBuilder::branchNZ(Reg cond, Label target)
{
    branchTo(Opcode::BranchNZ, cond, target);
}

void
KernelBuilder::jump(Label target)
{
    emit(Opcode::Jump);
    uint32_t pc = static_cast<uint32_t>(insts_.size() - 1);
    fixups_.push_back({pc, FixField::Target, target.id});
    insts_[pc].reconv = pc + 1;
}

void
KernelBuilder::ifThen(Reg cond, const std::function<void()> &then_body)
{
    Label end = newLabel();
    // Lanes failing the condition skip to end; both paths reconverge there.
    emit(Opcode::BranchZ, 0, cond);
    uint32_t pc = static_cast<uint32_t>(insts_.size() - 1);
    fixups_.push_back({pc, FixField::Target, end.id});
    fixups_.push_back({pc, FixField::Reconv, end.id});
    then_body();
    bind(end);
}

void
KernelBuilder::ifThenElse(Reg cond, const std::function<void()> &then_body,
                          const std::function<void()> &else_body)
{
    Label else_l = newLabel();
    Label end = newLabel();
    emit(Opcode::BranchZ, 0, cond);
    uint32_t pc = static_cast<uint32_t>(insts_.size() - 1);
    fixups_.push_back({pc, FixField::Target, else_l.id});
    fixups_.push_back({pc, FixField::Reconv, end.id});
    then_body();
    jump(end);
    bind(else_l);
    else_body();
    bind(end);
}

void
KernelBuilder::doWhile(const std::function<Reg()> &body)
{
    Label top = newLabel();
    bind(top);
    Reg cond = body();
    branchNZ(cond, top);
}

void
KernelBuilder::loadVec3(Reg base, Reg addr, int32_t off)
{
    load(base, addr, off);
    load(static_cast<Reg>(base + 1), addr, off + 4);
    load(static_cast<Reg>(base + 2), addr, off + 8);
}

void
KernelBuilder::vsub(Reg d, Reg a, Reg b)
{
    for (int i = 0; i < 3; ++i) {
        fsub(static_cast<Reg>(d + i), static_cast<Reg>(a + i),
             static_cast<Reg>(b + i));
    }
}

void
KernelBuilder::vadd(Reg d, Reg a, Reg b)
{
    for (int i = 0; i < 3; ++i) {
        fadd(static_cast<Reg>(d + i), static_cast<Reg>(a + i),
             static_cast<Reg>(b + i));
    }
}

void
KernelBuilder::vdot(Reg d, Reg a, Reg b, Reg tmp)
{
    fmul(d, a, b);
    fmul(tmp, static_cast<Reg>(a + 1), static_cast<Reg>(b + 1));
    fadd(d, d, tmp);
    fmul(tmp, static_cast<Reg>(a + 2), static_cast<Reg>(b + 2));
    fadd(d, d, tmp);
}

void
KernelBuilder::vcross(Reg d, Reg a, Reg b, Reg tmp)
{
    Reg a0 = a, a1 = static_cast<Reg>(a + 1), a2 = static_cast<Reg>(a + 2);
    Reg b0 = b, b1 = static_cast<Reg>(b + 1), b2 = static_cast<Reg>(b + 2);
    Reg t0 = tmp, t1 = static_cast<Reg>(tmp + 1);
    // d.x = a1*b2 - a2*b1
    fmul(t0, a1, b2);
    fmul(t1, a2, b1);
    fsub(d, t0, t1);
    // d.y = a2*b0 - a0*b2
    fmul(t0, a2, b0);
    fmul(t1, a0, b2);
    fsub(static_cast<Reg>(d + 1), t0, t1);
    // d.z = a0*b1 - a1*b0
    fmul(t0, a0, b1);
    fmul(t1, a1, b0);
    fsub(static_cast<Reg>(d + 2), t0, t1);
}

void
KernelBuilder::vscale(Reg d, Reg a, Reg s)
{
    for (int i = 0; i < 3; ++i)
        fmul(static_cast<Reg>(d + i), static_cast<Reg>(a + i), s);
}

KernelProgram
KernelBuilder::build()
{
    panic_if(built_, "KernelBuilder::build() called twice");
    built_ = true;

    if (insts_.empty() || insts_.back().op != Opcode::Exit)
        insts_.push_back(Instruction{}); // default-constructed == Exit

    for (const Fixup &fix : fixups_) {
        int64_t pc = labelPcs_[fix.label];
        panic_if(pc < 0, "unbound label %u in kernel %s", fix.label,
                 name_.c_str());
        panic_if(pc > static_cast<int64_t>(insts_.size()),
                 "label PC out of range in %s", name_.c_str());
        if (fix.field == FixField::Target)
            insts_[fix.inst].target = static_cast<uint32_t>(pc);
        else
            insts_[fix.inst].reconv = static_cast<uint32_t>(pc);
    }

    KernelProgram prog;
    prog.name = name_;
    prog.insts = std::move(insts_);
    return prog;
}

} // namespace tta::gpu
