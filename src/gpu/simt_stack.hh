/**
 * @file
 * Per-warp SIMT reconvergence stack.
 *
 * Implements immediate-post-dominator stack-based reconvergence: on a
 * divergent branch the current top entry is converted into a reconvergence
 * entry at the branch's reconv PC and one entry per outcome is pushed.
 * Entries pop when their PC reaches their reconvergence PC. Lanes that
 * execute Exit are scrubbed from every remaining entry so early-exiting
 * threads never resume.
 */

#ifndef TTA_GPU_SIMT_STACK_HH
#define TTA_GPU_SIMT_STACK_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"

namespace tta::gpu {

class SimtStack
{
  public:
    static constexpr uint32_t kNoReconv = UINT32_MAX;

    /** Reset for a fresh warp starting at pc with the given lanes. */
    void
    start(uint32_t pc, uint32_t mask)
    {
        entries_.clear();
        entries_.push_back({pc, kNoReconv, mask});
    }

    bool empty() const { return entries_.empty(); }
    uint32_t pc() const { return top().pc; }
    uint32_t activeMask() const { return top().mask; }

    /** Fall through to the next instruction. */
    void
    advance()
    {
        top().pc += 1;
        popReconverged();
    }

    /** Uniform jump of all active lanes. */
    void
    jump(uint32_t target)
    {
        top().pc = target;
        popReconverged();
    }

    /**
     * Resolve a (possibly divergent) conditional branch.
     *
     * @param taken_mask lanes (subset of activeMask) that take the branch.
     * @param target     branch target PC.
     * @param reconv     immediate post-dominator PC.
     */
    void
    branch(uint32_t taken_mask, uint32_t target, uint32_t reconv)
    {
        uint32_t mask = top().mask;
        uint32_t not_taken = mask & ~taken_mask;
        if (taken_mask == mask) {
            jump(target);
            return;
        }
        if (taken_mask == 0) {
            advance();
            return;
        }
        // Divergence: the current entry waits at the reconvergence point;
        // execute the taken side first, then the fall-through side.
        uint32_t fallthrough = top().pc + 1;
        top().pc = reconv;
        entries_.push_back({fallthrough, reconv, not_taken});
        entries_.push_back({target, reconv, taken_mask});
        // A side that branches directly to the reconvergence point (an
        // if-then skip) has nothing to execute: pop it immediately so its
        // lanes wait at the reconvergence entry instead of running the
        // tail with a partial mask.
        popReconverged();
    }

    /**
     * Retire the currently active lanes (Exit instruction). Scrubs them
     * from every remaining entry.
     * @return lanes that exited.
     */
    uint32_t
    exitLanes()
    {
        uint32_t exited = top().mask;
        entries_.pop_back();
        for (auto &e : entries_)
            e.mask &= ~exited;
        while (!entries_.empty() && entries_.back().mask == 0)
            entries_.pop_back();
        popReconverged();
        return exited;
    }

    size_t depth() const { return entries_.size(); }

  private:
    struct Entry
    {
        uint32_t pc;
        uint32_t reconvPc;
        uint32_t mask;
    };

    Entry &top()
    {
        panic_if(entries_.empty(), "SIMT stack underflow");
        return entries_.back();
    }
    const Entry &top() const
    {
        panic_if(entries_.empty(), "SIMT stack underflow");
        return entries_.back();
    }

    void
    popReconverged()
    {
        while (!entries_.empty() &&
               entries_.back().reconvPc != kNoReconv &&
               entries_.back().pc == entries_.back().reconvPc) {
            entries_.pop_back();
        }
        // Skip entries whose lanes all exited inside the region.
        while (!entries_.empty() && entries_.back().mask == 0)
            entries_.pop_back();
    }

    std::vector<Entry> entries_;
};

} // namespace tta::gpu

#endif // TTA_GPU_SIMT_STACK_HH
