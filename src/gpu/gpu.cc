#include "gpu/gpu.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"

namespace tta::gpu {

Gpu::Gpu(const sim::Config &cfg, sim::StatRegistry &stats)
    : cfg_(cfg), stats_(&stats), sim_(stats)
{
    gmem_ = std::make_unique<mem::GlobalMemory>();
    memsys_ = std::make_unique<mem::MemSystem>(cfg_, stats);
    // Threaded kernel: per-SM components get shadow stat registries so
    // concurrent shards never touch the same stat objects; shardStats()
    // hands the shadows to the cores here and to the accelerators via
    // TtaDevice. The memory system (shared shard) keeps the main
    // registry.
    if (sim_.kernel() == sim::Simulator::Kernel::Threaded) {
        for (uint32_t sm = 0; sm < cfg_.numSms; ++sm) {
            shardStats_.push_back(std::make_unique<sim::StatRegistry>());
            shardStats_.back()->setTracer(stats.tracer());
        }
    }
    for (uint32_t sm = 0; sm < cfg_.numSms; ++sm) {
        cores_.push_back(std::make_unique<SimtCore>(
            cfg_, sm, *memsys_, *gmem_, shardStats(sm)));
    }
    // Tick order: cores issue, then extra components (accelerators are
    // appended by the caller), then the memory system retires. Each
    // core is its SM's shard; the memory system runs serially between
    // the core and accelerator segments under the threaded kernel.
    for (uint32_t sm = 0; sm < cfg_.numSms; ++sm)
        sim_.add(cores_[sm].get(), static_cast<int>(sm));
    sim_.add(memsys_.get());
    // Producer→consumer wake edges for the event-driven kernel: memory
    // responses wake the requesting core (accelerators register their
    // own waker when they attach).
    for (uint32_t sm = 0; sm < cfg_.numSms; ++sm)
        memsys_->setCoreWaker(sm, cores_[sm].get());
    sim_.setWatchdog(cfg_.watchdogCycles);
    // Epoch-batched barriers (threaded kernel): the GPU model is safe
    // for windows up to the shorter cache latency — any request issued
    // inside a window matures (responses, downstream forwards) at least
    // one full L1 latency later, i.e. after the window closed, so the
    // memory system's per-SM acceptance projections stay exact for the
    // whole window (DESIGN.md "Epoch-batched barriers").
    sim_.setEpochLimit(
        std::min<sim::Cycle>(cfg_.l1LatencyCycles, cfg_.l2LatencyCycles));
}

Gpu::~Gpu() = default;

bool
Gpu::dispatch(std::vector<DispatchState> &states)
{
    bool remaining = false;
    for (const auto &st : states)
        remaining |= !st.done();
    if (!remaining)
        return false; // everything dispatched: skip the core scan
    // Breadth-first across cores: one warp per SM per pass, so work
    // spreads over all SMs instead of filling the first one. Each core
    // keeps its own launch cursor so co-scheduled kernels interleave on
    // every SM (a single global cursor would align with the SM count and
    // segregate kernels onto disjoint SMs).
    if (dispatchCursor_.size() != cores_.size())
        dispatchCursor_.assign(cores_.size(), 0);
    bool progress = true;
    while (progress) {
        progress = false;
        for (size_t ci = 0; ci < cores_.size(); ++ci) {
            auto &core = cores_[ci];
            if (core->freeSlots() == 0)
                continue;
            // Round-robin across launches that still have threads.
            size_t tried = 0;
            DispatchState *pick = nullptr;
            while (tried < states.size()) {
                DispatchState &cand =
                    states[dispatchCursor_[ci] % states.size()];
                ++dispatchCursor_[ci];
                ++tried;
                if (!cand.done()) {
                    pick = &cand;
                    break;
                }
            }
            if (!pick)
                break;
            uint64_t base = pick->nextThread;
            uint32_t n = static_cast<uint32_t>(
                std::min<uint64_t>(cfg_.warpSize,
                                   pick->launch.numThreads - base));
            pick->nextThread += n;
            core->launchWarp(pick->launch.prog, base, n,
                             &pick->launch.params);
            progress = true;
        }
    }
    for (const auto &st : states)
        remaining |= !st.done();
    return remaining;
}

sim::Cycle
Gpu::runKernel(const KernelProgram &prog, uint64_t num_threads,
               std::vector<uint32_t> params)
{
    return runKernels({Launch{&prog, num_threads, std::move(params)}});
}

sim::Cycle
Gpu::runKernels(std::vector<Launch> launches)
{
    panic_if(launches.empty(), "runKernels with no launches");
    std::vector<DispatchState> states;
    states.reserve(launches.size());
    for (auto &launch : launches) {
        panic_if(!launch.prog, "null kernel program");
        states.push_back({std::move(launch), 0});
    }

    sim::Cycle start = sim_.cycle();
    bool remaining = true;
    const sim::Cycle max_cycles = cfg_.watchdogCycles;
    const bool debug_timeline = std::getenv("TTA_DEBUG_TIMELINE");
    sim::Cycle next_report = 100000;
    // Quiescence is re-checked after every *processed* cycle, matching
    // the polling loop's per-cycle check boundary, so both kernels
    // finish with the identical cycle count (any ticks still scheduled
    // past quiescence would be no-ops by the sleep/wake contract and
    // are abandoned).
    while (remaining || sim_.anyBusy()) {
        if (remaining)
            remaining = dispatch(states);
        // Dispatch scans free warp slots between advances (dynamic load
        // balancing), so while launches remain the clock must move one
        // processed cycle at a time — epoch windows would overrun the
        // next dispatch opportunity.
        sim_.setDispatchPending(remaining);
        if (!sim_.advance(start + max_cycles)) {
            // Event-driven kernel with nothing scheduled: a busy
            // component missed a wake edge (a model bug, not a user
            // error).
            panic("simulation stalled: component(s) busy with no "
                  "scheduled wakeup; still-busy components: [%s]",
                  sim_.busyComponentNames().c_str());
        }
        if (debug_timeline && sim_.cycle() - start >= next_report) {
            uint32_t active_warps = 0;
            for (auto &c : cores_)
                active_warps += cfg_.maxWarpsPerSm - c->freeSlots();
            std::fprintf(stderr,
                         "[timeline] cycle=%llu warps=%u issued=%llu\n",
                         static_cast<unsigned long long>(sim_.cycle() -
                                                         start),
                         active_warps,
                         static_cast<unsigned long long>(
                             stats_->counterValue("core.issued")));
            next_report += 100000;
        }
        panic_if(sim_.cycle() - start > max_cycles,
                 "kernel did not finish within %llu cycles; "
                 "still-busy components: [%s]",
                 static_cast<unsigned long long>(max_cycles),
                 sim_.busyComponentNames().c_str());
    }
    sim_.finishAccounting();
    absorbShardStats();
    return sim_.cycle() - start;
}

void
Gpu::absorbShardStats()
{
    // SM-id order matches both the shards' caller registration order
    // and what a serial kernel would have accumulated into the single
    // registry; all absorbed stats are counters and integer-valued
    // histograms, so the fold is exact. Shadows reset after absorbing:
    // a later run (kernel fusion launches several) absorbs only its own
    // deltas.
    for (auto &reg : shardStats_) {
        stats_->absorb(*reg);
        reg->reset();
    }
}

} // namespace tta::gpu
