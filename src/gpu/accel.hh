/**
 * @file
 * Interface between the SIMT core and a traversal accelerator
 * (baseline RTA, TTA, or TTA+).
 *
 * The AccelTraverse instruction hands a warp's active lanes to the
 * attached device; the warp blocks (the paper's `traceRay` semantics:
 * "warps only need to synchronize the rays at the end of the traversal")
 * while other warps keep the SM busy. The device calls back into the core
 * when every lane's traversal completed.
 */

#ifndef TTA_GPU_ACCEL_HH
#define TTA_GPU_ACCEL_HH

#include <cstdint>
#include <vector>

#include "sim/ticked.hh"

namespace tta::gpu {

class SimtCore;

class AccelDevice
{
  public:
    virtual ~AccelDevice() = default;

    /**
     * Offer a warp's traversal to the accelerator.
     *
     * @param cycle        issue cycle (for event tracing / bookkeeping).
     * @param core         the issuing core (for the completion callback).
     * @param warp_slot    warp identifier within the core.
     * @param active_mask  lanes participating in the traversal.
     * @param lane_operands per-lane 32-bit operand (typically the query
     *                     index or a pointer to the per-thread ray record).
     * @retval false if the accelerator has no free warp-buffer slot; the
     *         instruction retries next cycle (back-pressure).
     */
    virtual bool launchWarp(sim::Cycle cycle, SimtCore *core,
                            uint32_t warp_slot, uint32_t active_mask,
                            const std::vector<uint32_t> &lane_operands) = 0;
};

} // namespace tta::gpu

#endif // TTA_GPU_ACCEL_HH
