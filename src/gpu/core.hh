/**
 * @file
 * SIMT core (Streaming Multiprocessor) timing + functional model.
 *
 * In-order, single-issue per cycle, greedy-then-oldest warp scheduling
 * (Table II), scoreboarded register hazards, non-blocking loads through
 * the coalescer into the memory system, and SIMT-stack divergence. The
 * model executes instructions functionally at issue and enforces timing
 * with the scoreboard, which is sufficient for the relative performance,
 * SIMT-efficiency and instruction-mix measurements the paper reports.
 */

#ifndef TTA_GPU_CORE_HH
#define TTA_GPU_CORE_HH

#include <deque>
#include <queue>
#include <vector>

#include "gpu/accel.hh"
#include "gpu/isa.hh"
#include "gpu/kernel.hh"
#include "gpu/simt_stack.hh"
#include "mem/coalescer.hh"
#include "mem/global_memory.hh"
#include "mem/memsys.hh"
#include "sim/config.hh"
#include "sim/ticked.hh"
#include "sim/trace.hh"

namespace tta::gpu {

/** One resident warp context. */
struct WarpContext
{
    enum class State
    {
        Invalid,   //!< slot free
        Active,    //!< eligible for issue
        WaitAccel, //!< blocked on the traversal accelerator
        Finished,  //!< all lanes exited; slot reclaimable
    };

    State state = State::Invalid;
    const KernelProgram *prog = nullptr;
    const std::vector<uint32_t> *params = nullptr;
    uint64_t baseThread = 0;
    uint32_t launchMask = 0;
    uint64_t age = 0; //!< global launch sequence number (GTO "oldest")

    SimtStack stack;
    std::vector<uint32_t> regs; //!< warpSize x kNumRegs, lane-major

    uint32_t pendingRegs = 0;   //!< scoreboard: registers awaiting a write

    bool traceLive = false;     //!< a "warp" trace span is open

    /** Outstanding load: token -> (dest reg, transactions left). */
    struct PendingLoad
    {
        uint64_t token;
        uint8_t rd;
        uint32_t transactionsLeft;
    };
    std::vector<PendingLoad> pendingLoads;

    uint32_t &
    reg(uint32_t lane, uint32_t r)
    {
        return regs[lane * kNumRegs + r];
    }
    uint32_t
    regValue(uint32_t lane, uint32_t r) const
    {
        return regs[lane * kNumRegs + r];
    }
};

class SimtCore : public sim::TickedComponent
{
  public:
    SimtCore(const sim::Config &cfg, uint32_t sm_id, mem::MemSystem &memsys,
             mem::GlobalMemory &gmem, sim::StatRegistry &stats);

    /** Attach (or detach with nullptr) the traversal accelerator. */
    void setAccel(AccelDevice *accel) { accel_ = accel; }

    /** Number of free warp slots. */
    uint32_t freeSlots() const;

    /**
     * Install a warp.
     * @param prog     program to run.
     * @param base     global thread id of lane 0.
     * @param n_threads active thread count (1..warpSize).
     * @param params   launch parameters (must outlive the kernel).
     */
    void launchWarp(const KernelProgram *prog, uint64_t base,
                    uint32_t n_threads, const std::vector<uint32_t> *params);

    /** Completion callback from the accelerator. */
    void accelDone(uint32_t warp_slot, sim::Cycle cycle);

    void tick(sim::Cycle cycle) override;
    bool busy() const override;
    /** Computed by tick(): next issue attempt, next ALU writeback, or
     *  kAsleep (empty core / everything blocked on external events). */
    sim::Cycle nextEventCycle(sim::Cycle) const override
    {
        return nextEvent_;
    }
    void catchUp(sim::Cycle now) override;

    uint32_t smId() const { return smId_; }
    mem::GlobalMemory &globalMemory() { return *gmem_; }

  private:
    bool canIssue(const WarpContext &warp) const;
    /** Execute one instruction for a warp; returns false if it could not
     *  issue this cycle after all (structural stall). */
    bool issue(sim::Cycle cycle, uint32_t slot);
    void execAlu(WarpContext &warp, const Instruction &inst, uint32_t mask);
    bool execMemory(sim::Cycle cycle, uint32_t slot, WarpContext &warp,
                    const Instruction &inst, uint32_t mask);
    bool execAccel(sim::Cycle cycle, uint32_t slot, WarpContext &warp,
                   const Instruction &inst, uint32_t mask);
    void drainResponses();
    void drainWriteback(sim::Cycle cycle);
    void countIssue(const Instruction &inst, uint32_t mask);
    void classifyStall(bool structural, uint64_t n = 1);
    /** Lazily created per-warp-slot trace stream (one open span per slot
     *  at a time, so B/E spans nest correctly). */
    sim::TraceStream *warpStream(uint32_t slot);

    const sim::Config cfg_;
    uint32_t smId_;
    mem::MemSystem *memsys_;
    mem::GlobalMemory *gmem_;
    AccelDevice *accel_ = nullptr;

    std::vector<WarpContext> warps_;
    uint32_t residentWarps_ = 0;
    uint64_t nextAge_ = 0;
    uint64_t nextToken_ = 1;
    int lastIssued_ = -1; //!< GTO: greedy warp

    sim::Cycle nextEvent_ = 0;     //!< nextEventCycle() result
    sim::Cycle lastAccounted_ = 0; //!< stall cycles settled up to here
    /** Stall class of the tick that put the core to sleep, replayed by
     *  catchUp() for every skipped cycle (true = structural). */
    bool frozenStructural_ = false;

    // execMemory() scratch, reused across issues to avoid re-allocating
    // per warp memory instruction.
    std::vector<mem::Addr> addrBuf_;
    std::vector<mem::CoalescedAccess> coalesceBuf_;

    /** ALU writeback events: (ready cycle, slot, reg bit). */
    struct Writeback
    {
        sim::Cycle ready;
        uint32_t slot;
        uint32_t regMask;
        bool operator>(const Writeback &o) const { return ready > o.ready; }
    };
    std::priority_queue<Writeback, std::vector<Writeback>,
                        std::greater<Writeback>>
        writebacks_;

    static constexpr size_t kMaxPendingLoads = 16;

    // Aggregate (all-SM) statistics.
    sim::Counter *instsAlu_;
    sim::Counter *instsSfu_;
    sim::Counter *instsMem_;
    sim::Counter *instsCtrl_;
    sim::Counter *instsAccel_;
    sim::Counter *activeLaneSum_;
    sim::Counter *issued_;
    sim::Counter *laneInsts_;
    sim::Counter *flopCount_;
    sim::Counter *stallCycles_;
    sim::Counter *memTransactions_;

    // Stall-cause attribution (sums to stall_cycles; see classifyStall).
    sim::Counter *stallIssue_;
    sim::Counter *stallMem_;
    sim::Counter *stallAccel_;
    sim::Counter *stallExec_;

    // Event tracing (nullptr when the warp category is off: zero cost).
    sim::Tracer *tracer_ = nullptr;
    std::vector<sim::TraceStream *> warpStreams_;
};

} // namespace tta::gpu

#endif // TTA_GPU_CORE_HH
