/**
 * @file
 * The GPU memory system: per-SM L1 caches, an interconnect delay, a shared
 * banked L2, and a bandwidth-modelled DRAM, wired per Table II.
 *
 * Requests are line-granularity MemRequests; reads produce MemResponses
 * back to the issuing SM's response queue, writes are write-through and
 * fire-and-forget (they still consume DRAM bandwidth). All latencies are
 * in core-clock cycles; DRAM transfer time accounts for the 3500:1365
 * memory:core clock ratio.
 *
 * Limit-study knobs (Fig 17): Config::perfectMemory short-circuits every
 * request to a next-cycle response; Config::perfectNodeFetch does the same
 * only for RTA node fetches ("Perf. RT").
 */

#ifndef TTA_MEM_MEMSYS_HH
#define TTA_MEM_MEMSYS_HH

#include <deque>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "mem/cache.hh"
#include "mem/global_memory.hh"
#include "mem/request.hh"
#include "sim/config.hh"
#include "sim/ticked.hh"
#include "sim/trace.hh"

namespace tta::mem {

class MemSystem : public sim::TickedComponent
{
  public:
    MemSystem(const sim::Config &cfg, sim::StatRegistry &stats);

    /** True when SM sm_id may sendRequest() this cycle. Inside an epoch
     *  window this is an exact per-SM projection of the input queue the
     *  replay will reconstruct: appends are the entries the SM's own
     *  shard staged so far, pops follow the L1 front end's two-per-cycle
     *  ready-gated drain. The projection is exact because only the SM's
     *  own shard feeds its queue and in-window accesses can never hit an
     *  MSHR structural stall (the window is bounded by free MSHR
     *  headroom; see epochCycleBound). */
    bool canAccept(uint32_t sm_id) const;

    /** Epoch windows only: first cycle >= the caller's current tick
     *  cycle + 1 at which canAccept(sm_id) can turn true, projected from
     *  the entries staged so far. A refused core self-schedules its
     *  retry here; entries staged later can only delay acceptance, and
     *  the retry tick re-projects, so the retry converges on exactly the
     *  cycle the memory system's own back-pressure wake would have
     *  delivered (that wake, replayed later, dedups against the retry
     *  tick). */
    sim::Cycle nextAcceptCycle(uint32_t sm_id) const;

    /**
     * Issue a line transaction from an SM (core or RTA). Under the
     * threaded kernel, calls made from a per-SM shard are staged and
     * replayed at the segment barrier in SM-id order (the shards'
     * caller registration order); canAccept() already counts staged
     * entries, so admission control is unchanged.
     */
    void sendRequest(const MemRequest &req);

    /**
     * Core read-completion queue for an SM (CoreLoad responses); the
     * consumer pops from the front. Accelerator node-fetch responses
     * land in rtaResponses() instead, so neither consumer scans past
     * the other's entries.
     */
    std::deque<MemResponse> &responses(uint32_t sm_id)
    {
        return responses_[sm_id];
    }

    /** RTA/TTA node-fetch completion queue for an SM. */
    std::deque<MemResponse> &rtaResponses(uint32_t sm_id)
    {
        return rtaResponses_[sm_id];
    }

    void tick(sim::Cycle cycle) override;
    bool busy() const override;
    sim::Cycle nextEventCycle(sim::Cycle cycle) const override;
    void catchUp(sim::Cycle now) override;
    void drainStaged(sim::Cycle now) override;
    sim::Cycle epochCycleBound(sim::Cycle cycle) const override;
    void beginEpochWindow(sim::Cycle begin, sim::Cycle end) override;
    void endEpochWindow() override;
    void replayStagedFrom(sim::Cycle cycle, uint32_t caller_index) override;

    /**
     * Register the component to wake when a response is pushed for
     * SM sm_id (cores for CoreLoad responses, accelerators for RtaNode).
     * Unset consumers simply never sleep on this memory system.
     */
    void setCoreWaker(uint32_t sm_id, sim::TickedComponent *comp)
    {
        coreWaker_[sm_id] = comp;
    }
    void setRtaWaker(uint32_t sm_id, sim::TickedComponent *comp)
    {
        rtaWaker_[sm_id] = comp;
    }

    /** Fraction of DRAM data-bus cycles busy since construction. */
    double dramUtilization() const;
    /** Total bytes moved across the DRAM pins. */
    uint64_t dramBytes() const
    {
        return dramBytesRead_->value() + dramBytesWritten_->value();
    }

    /** Drop all cached lines (used between benchmark phases). */
    void flushCaches();

    uint32_t lineSize() const { return cfg_.lineSizeBytes; }

  private:
    struct Timed
    {
        sim::Cycle ready;
        MemRequest req;
        bool operator>(const Timed &o) const { return ready > o.ready; }
    };
    using TimedQueue =
        std::priority_queue<Timed, std::vector<Timed>, std::greater<Timed>>;

    struct TimedFill
    {
        sim::Cycle ready;
        Addr lineAddr;
        uint32_t smId;
        bool operator>(const TimedFill &o) const { return ready > o.ready; }
    };
    using FillQueue = std::priority_queue<TimedFill, std::vector<TimedFill>,
                                          std::greater<TimedFill>>;

    /** sendRequest()'s body: all side effects of accepting a request.
     *  Runs directly under the serial kernels, at the barrier replay
     *  under the threaded kernel. */
    void sendRequestNow(const MemRequest &req);
    /** Settle the epoch-window pop projection for SM sm through every
     *  cycle < bound (kL1AccessesPerCycle ready entries per cycle,
     *  FIFO head-gated, exactly mirroring tickL1's drain). */
    void advancePops(uint32_t sm, sim::Cycle bound) const;
    void tickL1(sim::Cycle cycle, uint32_t sm);
    void tickL2(sim::Cycle cycle);
    void tickDram(sim::Cycle cycle);
    void tickFills(sim::Cycle cycle);
    void completeAtL1(sim::Cycle cycle, uint32_t sm, Addr line_addr);
    /** Deliver a read completion: wakes the consumer (before the push,
     *  per the wake-before-mutate rule), then enqueues the response. */
    void pushResponse(const MemResponse &resp);

    const sim::Config cfg_;

    // Per-SM front end.
    std::vector<std::unique_ptr<Cache>> l1_;
    std::vector<std::deque<Timed>> l1In_;
    /** Threaded kernel: requests staged by per-SM shards during a
     *  parallel segment, FIFO per shard (== per caller, since each SM
     *  has at most one producer per segment). Replayed by
     *  drainStaged() in SM-id order. */
    struct StagedRequest
    {
        uint32_t callerIdx; //!< caller's scheduler registration index
        MemRequest req;
        sim::Cycle issueCycle; //!< caller's tick cycle at staging time
    };
    std::vector<std::vector<StagedRequest>> staged_;
    /** Staged entries bound for l1In_[sm] (non-perfect requests), so
     *  canAccept() sees the queue depth the replay will produce. */
    std::vector<uint32_t> stagedCount_;

    // Epoch-window projection (valid between beginEpochWindow and
    // endEpochWindow). Per SM: the ready cycles the staged entries will
    // carry once replayed into l1In_ (monotone — cores stage ready = c,
    // accelerators ready = c + 1), a pop cursor simulating the L1 front
    // end's two-ready-entries-per-cycle drain, and a replay cursor into
    // staged_. Mutable: canAccept() is const but advances the shared pop
    // cursor (queries arrive in non-decreasing cycle order per SM).
    bool windowActive_ = false;
    sim::Cycle windowBegin_ = 0;
    mutable std::vector<std::vector<sim::Cycle>> projReady_;
    mutable std::vector<size_t> projHead_;
    mutable std::vector<sim::Cycle> projPopT_;
    std::vector<size_t> stagedCursor_;
    std::vector<std::deque<MemResponse>> responses_;
    std::vector<std::deque<MemResponse>> rtaResponses_;
    /** L1 MSHR payload: line -> requests waiting on the fill. */
    std::vector<std::unordered_map<Addr, std::vector<MemRequest>>>
        l1Pending_;

    // Shared levels.
    std::unique_ptr<Cache> l2_;
    TimedQueue toL2_;
    /** L2 MSHR payload: line -> SMs waiting on the fill. */
    std::unordered_map<Addr, std::vector<uint32_t>> l2Pending_;
    TimedQueue toDram_;
    /** fills travelling DRAM->L2 (smIds resolved at completion). */
    FillQueue dramDone_;
    /** fills travelling L2->L1 for a given SM. */
    FillQueue l1Fills_;

    /** L1-hit responses in flight (delayed by the L1 latency). */
    struct TimedResp
    {
        sim::Cycle ready;
        MemResponse resp;
        bool operator>(const TimedResp &o) const { return ready > o.ready; }
    };
    std::priority_queue<TimedResp, std::vector<TimedResp>,
                        std::greater<TimedResp>>
        delayedResponses_;

    // DRAM channel state.
    std::vector<sim::Cycle> channelFree_;
    double transferCyclesPerLine_;

    // Bookkeeping.
    uint64_t inflight_ = 0;
    sim::Cycle ticks_ = 0;
    sim::Cycle lastAccounted_ = 0; //!< queue-depth sampling settled here
    std::vector<sim::TickedComponent *> coreWaker_;
    std::vector<sim::TickedComponent *> rtaWaker_;
    static constexpr uint32_t kL1QueueDepth = 64;
    static constexpr uint32_t kL1AccessesPerCycle = 2;
    static constexpr uint32_t kL2AccessesPerCycle = 4;
    static constexpr uint32_t kIcntLatency = 8;

    // Event tracing (all nullptr when the mem category is off).
    std::vector<sim::TraceStream *> l1Trace_; //!< per-SM access/fill
    sim::TraceStream *l2Trace_ = nullptr;
    std::vector<sim::TraceStream *> dramTrace_; //!< per-channel bus spans

    sim::Counter *reads_;
    sim::Counter *writes_;
    sim::Counter *dramReads_;
    sim::Counter *dramWrites_;
    sim::Counter *dramBytesRead_;
    sim::Counter *dramBytesWritten_;
    sim::Scalar *dramBusyCycles_;
    sim::Histogram *l1QueueDepth_;
};

} // namespace tta::mem

#endif // TTA_MEM_MEMSYS_HH
