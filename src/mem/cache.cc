#include "mem/cache.hh"

#include "sim/logging.hh"

namespace tta::mem {

Cache::Cache(const std::string &name, uint32_t size_bytes, uint32_t assoc,
             uint32_t line_size, uint32_t mshrs, sim::StatRegistry &stats)
    : assoc_(assoc), lineSize_(line_size), mshrCapacity_(mshrs)
{
    uint32_t num_lines = size_bytes / line_size;
    panic_if(num_lines == 0, "cache smaller than one line");
    panic_if(assoc_ == 0 || num_lines % assoc_ != 0,
             "cache lines (%u) not divisible by associativity (%u)",
             num_lines, assoc_);
    numSets_ = num_lines / assoc_;
    lines_.resize(num_lines);
    hits_ = &stats.counter(name + ".hits");
    misses_ = &stats.counter(name + ".misses");
    readMisses_ = &stats.counter(name + ".read_misses");
    writeMisses_ = &stats.counter(name + ".write_misses");
    mshrMerges_ = &stats.counter(name + ".mshr_merges");
    mshrStalls_ = &stats.counter(name + ".mshr_stalls");
}

uint32_t
Cache::setIndex(Addr line_addr) const
{
    return static_cast<uint32_t>((line_addr / lineSize_) % numSets_);
}

Cache::Result
Cache::access(Addr line_addr, bool is_write)
{
    ++useClock_;
    uint32_t set = setIndex(line_addr);
    Line *ways = &lines_[static_cast<size_t>(set) * assoc_];
    for (uint32_t w = 0; w < assoc_; ++w) {
        if (ways[w].valid && ways[w].tag == line_addr) {
            ways[w].lastUse = useClock_;
            ++*hits_;
            return Result::Hit;
        }
    }

    // Writes are write-through / no-allocate: a write miss does not fetch
    // the line, it just flows downstream. Report it as a (new) miss so the
    // caller forwards it, but do not hold an MSHR. Counted separately from
    // read misses: lumping them together makes miss rates unreadable for
    // workloads with a write-out phase (writes can never hit-after-fill).
    if (is_write) {
        ++*misses_;
        ++*writeMisses_;
        return Result::MissNew;
    }

    auto it = mshrs_.find(line_addr);
    if (it != mshrs_.end()) {
        ++it->second;
        ++*mshrMerges_;
        return Result::MissMerged;
    }
    if (mshrs_.size() >= mshrCapacity_) {
        ++*mshrStalls_;
        return Result::NoMshr;
    }
    mshrs_.emplace(line_addr, 1);
    ++*misses_;
    ++*readMisses_;
    return Result::MissNew;
}

void
Cache::fill(Addr line_addr)
{
    mshrs_.erase(line_addr);

    uint32_t set = setIndex(line_addr);
    Line *ways = &lines_[static_cast<size_t>(set) * assoc_];
    // Already resident (e.g. refilled by a racing writeback path)?
    for (uint32_t w = 0; w < assoc_; ++w) {
        if (ways[w].valid && ways[w].tag == line_addr) {
            ways[w].lastUse = ++useClock_;
            return;
        }
    }
    // Choose a victim: first invalid way, else LRU.
    uint32_t victim = 0;
    uint64_t oldest = UINT64_MAX;
    for (uint32_t w = 0; w < assoc_; ++w) {
        if (!ways[w].valid) {
            victim = w;
            oldest = 0;
            break;
        }
        if (ways[w].lastUse < oldest) {
            oldest = ways[w].lastUse;
            victim = w;
        }
    }
    ways[victim] = {line_addr, true, ++useClock_};
}

bool
Cache::missPending(Addr line_addr) const
{
    return mshrs_.find(line_addr) != mshrs_.end();
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line.valid = false;
    mshrs_.clear();
}

} // namespace tta::mem
