#include "mem/cache.hh"

#include "sim/logging.hh"

namespace tta::mem {

Cache::Cache(const std::string &name, uint32_t size_bytes, uint32_t assoc,
             uint32_t line_size, uint32_t mshrs, sim::StatRegistry &stats)
    : assoc_(assoc), lineSize_(line_size), mshrCapacity_(mshrs),
      where_(size_bytes / line_size), mshrs_(mshrs)
{
    uint32_t num_lines = size_bytes / line_size;
    panic_if(num_lines == 0, "cache smaller than one line");
    panic_if(assoc_ == 0 || num_lines % assoc_ != 0,
             "cache lines (%u) not divisible by associativity (%u)",
             num_lines, assoc_);
    numSets_ = num_lines / assoc_;
    lines_.resize(num_lines);
    mru_.assign(numSets_, kNil);
    lru_.assign(numSets_, kNil);
    freeHead_.assign(numSets_, kNil);
    // Chain each set's ways onto its free stack in ascending order, so
    // allocation fills way 0 first (as the old first-invalid scan did).
    for (uint32_t set = 0; set < numSets_; ++set) {
        uint32_t base = set * assoc_;
        freeHead_[set] = base;
        for (uint32_t w = 0; w + 1 < assoc_; ++w)
            lines_[base + w].next = base + w + 1;
        lines_[base + assoc_ - 1].next = kNil;
    }
    hits_ = &stats.counter(name + ".hits");
    misses_ = &stats.counter(name + ".misses");
    readMisses_ = &stats.counter(name + ".read_misses");
    writeMisses_ = &stats.counter(name + ".write_misses");
    mshrMerges_ = &stats.counter(name + ".mshr_merges");
    mshrStalls_ = &stats.counter(name + ".mshr_stalls");
}

uint32_t
Cache::setIndex(Addr line_addr) const
{
    return static_cast<uint32_t>((line_addr / lineSize_) % numSets_);
}

void
Cache::unlink(uint32_t set, uint32_t idx)
{
    Line &line = lines_[idx];
    if (line.prev != kNil)
        lines_[line.prev].next = line.next;
    else
        mru_[set] = line.next;
    if (line.next != kNil)
        lines_[line.next].prev = line.prev;
    else
        lru_[set] = line.prev;
}

void
Cache::pushMru(uint32_t set, uint32_t idx)
{
    Line &line = lines_[idx];
    line.prev = kNil;
    line.next = mru_[set];
    if (mru_[set] != kNil)
        lines_[mru_[set]].prev = idx;
    mru_[set] = idx;
    if (lru_[set] == kNil)
        lru_[set] = idx;
}

void
Cache::touch(uint32_t set, uint32_t idx)
{
    if (mru_[set] == idx)
        return;
    unlink(set, idx);
    pushMru(set, idx);
}

Cache::Result
Cache::access(Addr line_addr, bool is_write)
{
    uint32_t resident = where_.lookup(line_addr);
    if (resident != AddrMap::kNone) {
        touch(setIndex(line_addr), resident);
        ++*hits_;
        return Result::Hit;
    }

    // Writes are write-through / no-allocate: a write miss does not fetch
    // the line, it just flows downstream. Report it as a (new) miss so the
    // caller forwards it, but do not hold an MSHR. Counted separately from
    // read misses: lumping them together makes miss rates unreadable for
    // workloads with a write-out phase (writes can never hit-after-fill).
    if (is_write) {
        ++*misses_;
        ++*writeMisses_;
        return Result::MissNew;
    }

    if (uint32_t *merged = mshrs_.find(line_addr)) {
        ++*merged;
        ++*mshrMerges_;
        return Result::MissMerged;
    }
    if (mshrs_.size() >= mshrCapacity_) {
        ++*mshrStalls_;
        return Result::NoMshr;
    }
    mshrs_.insert(line_addr, 1);
    ++*misses_;
    ++*readMisses_;
    return Result::MissNew;
}

void
Cache::fill(Addr line_addr)
{
    mshrs_.erase(line_addr);

    uint32_t set = setIndex(line_addr);
    // Already resident (e.g. refilled by a racing writeback path)?
    uint32_t resident = where_.lookup(line_addr);
    if (resident != AddrMap::kNone) {
        touch(set, resident);
        return;
    }
    // Choose a victim: a free way if any, else the LRU line.
    uint32_t idx;
    if (freeHead_[set] != kNil) {
        idx = freeHead_[set];
        freeHead_[set] = lines_[idx].next;
    } else {
        idx = lru_[set];
        unlink(set, idx);
        where_.erase(lines_[idx].tag);
    }
    lines_[idx].tag = line_addr;
    lines_[idx].valid = true;
    pushMru(set, idx);
    where_.insert(line_addr, idx);
}

bool
Cache::missPending(Addr line_addr) const
{
    return mshrs_.lookup(line_addr) != AddrMap::kNone;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line.valid = false;
    where_.clear();
    mshrs_.clear();
    mru_.assign(numSets_, kNil);
    lru_.assign(numSets_, kNil);
    // Rebuild the free stacks in ascending way order.
    for (uint32_t set = 0; set < numSets_; ++set) {
        uint32_t base = set * assoc_;
        freeHead_[set] = base;
        for (uint32_t w = 0; w + 1 < assoc_; ++w)
            lines_[base + w].next = base + w + 1;
        lines_[base + assoc_ - 1].next = kNil;
    }
}

} // namespace tta::mem
