/**
 * @file
 * Memory request/response types exchanged between the SIMT cores / RTAs
 * and the memory hierarchy.
 */

#ifndef TTA_MEM_REQUEST_HH
#define TTA_MEM_REQUEST_HH

#include <cstdint>

namespace tta::mem {

using Addr = uint64_t;

/** Who issued a request (routing key for the response). */
enum class RequestSource : uint8_t
{
    CoreLoad,   //!< SIMT core load instruction
    CoreStore,  //!< SIMT core store instruction
    RtaNode,    //!< RTA/TTA node fetch
    RtaWriteback, //!< RTA/TTA result writeback
};

/** One line-granularity memory transaction. */
struct MemRequest
{
    Addr addr = 0;          //!< line-aligned address
    uint32_t size = 0;      //!< bytes (<= line size)
    bool isWrite = false;
    RequestSource source = RequestSource::CoreLoad;
    uint32_t smId = 0;      //!< issuing SM
    uint64_t tag = 0;       //!< opaque requester cookie, echoed back
};

/** Completion notification for a read (writes are fire-and-forget). */
struct MemResponse
{
    Addr addr = 0;
    RequestSource source = RequestSource::CoreLoad;
    uint32_t smId = 0;
    uint64_t tag = 0;
};

} // namespace tta::mem

#endif // TTA_MEM_REQUEST_HH
