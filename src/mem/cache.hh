/**
 * @file
 * Tag-array cache model with MSHRs.
 *
 * Timing-only: data always lives in GlobalMemory; the cache tracks which
 * lines are resident to decide hit/miss and merges outstanding misses to
 * the same line in Miss Status Holding Registers. Used for the per-SM L1
 * (fully associative LRU, Table II) and the unified L2 (16-way LRU).
 */

#ifndef TTA_MEM_CACHE_HH
#define TTA_MEM_CACHE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/request.hh"
#include "sim/stats.hh"

namespace tta::mem {

class Cache
{
  public:
    enum class Result
    {
        Hit,        //!< line resident
        MissNew,    //!< miss; new MSHR allocated, forward downstream
        MissMerged, //!< miss; merged into an existing MSHR, do not forward
        NoMshr,     //!< miss but MSHRs exhausted; retry later
    };

    /**
     * @param name        stat prefix (e.g. "sm0.l1d").
     * @param size_bytes  total capacity.
     * @param assoc       ways per set; == size/line for fully associative.
     * @param line_size   line size in bytes.
     * @param mshrs       max outstanding distinct line misses.
     */
    Cache(const std::string &name, uint32_t size_bytes, uint32_t assoc,
          uint32_t line_size, uint32_t mshrs, sim::StatRegistry &stats);

    /** Look up a line; allocate/merge an MSHR on miss. */
    Result access(Addr line_addr, bool is_write);

    /** Install a line returned from downstream and free its MSHR. */
    void fill(Addr line_addr);

    /** True if the line currently has an outstanding MSHR. */
    bool missPending(Addr line_addr) const;

    /** Invalidate all resident lines (between kernels in tests). */
    void flush();

    uint32_t lineSize() const { return lineSize_; }
    uint64_t hits() const { return hits_->value(); }
    /** All misses, read + write (compatibility view). */
    uint64_t misses() const { return misses_->value(); }
    /** Read misses: allocate an MSHR and fill the line. */
    uint64_t readMisses() const { return readMisses_->value(); }
    /** Write-through misses: forwarded downstream, never allocated, so
     *  they say nothing about residency of the read working set. */
    uint64_t writeMisses() const { return writeMisses_->value(); }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        uint64_t lastUse = 0;
    };

    uint32_t setIndex(Addr line_addr) const;

    uint32_t assoc_;
    uint32_t lineSize_;
    uint32_t numSets_;
    uint32_t mshrCapacity_;
    uint64_t useClock_ = 0;

    /** ways-per-set tag store, sets_ concatenated. */
    std::vector<Line> lines_;
    /** outstanding line-miss registers: line addr -> merged count. */
    std::unordered_map<Addr, uint32_t> mshrs_;

    sim::Counter *hits_;
    sim::Counter *misses_;
    sim::Counter *readMisses_;
    sim::Counter *writeMisses_;
    sim::Counter *mshrMerges_;
    sim::Counter *mshrStalls_;
};

} // namespace tta::mem

#endif // TTA_MEM_CACHE_HH
