/**
 * @file
 * Tag-array cache model with MSHRs.
 *
 * Timing-only: data always lives in GlobalMemory; the cache tracks which
 * lines are resident to decide hit/miss and merges outstanding misses to
 * the same line in Miss Status Holding Registers. Used for the per-SM L1
 * (fully associative LRU, Table II) and the unified L2 (16-way LRU).
 */

#ifndef TTA_MEM_CACHE_HH
#define TTA_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "mem/request.hh"
#include "sim/stats.hh"

namespace tta::mem {

/**
 * Open-addressing line-address map with a fixed, construction-time
 * capacity (the caller knows its maximum occupancy: resident lines are
 * bounded by the tag store, MSHRs by their register count). Linear
 * probing at <= 50% load with backward-shift deletion; every cache
 * lookup in the simulator funnels through one of these, and the
 * std::unordered_map it replaces was a top-three profile entry.
 */
class AddrMap
{
  public:
    static constexpr uint32_t kNone = ~uint32_t{0};

    explicit AddrMap(size_t max_entries)
    {
        size_t cap = 16;
        while (cap < max_entries * 2)
            cap <<= 1;
        mask_ = cap - 1;
        slots_.assign(cap, Slot{});
    }

    /** Value for `key`, or kNone when absent. */
    uint32_t
    lookup(Addr key) const
    {
        size_t i = probe(key);
        return slots_[i].used ? slots_[i].val : kNone;
    }

    /** Pointer to the value for `key`, nullptr when absent. */
    uint32_t *
    find(Addr key)
    {
        size_t i = probe(key);
        return slots_[i].used ? &slots_[i].val : nullptr;
    }

    /** Insert `key` (must be absent). */
    void
    insert(Addr key, uint32_t val)
    {
        size_t i = probe(key);
        slots_[i] = {key, val, true};
        ++size_;
    }

    /** Remove `key` if present, backward-shifting displaced entries. */
    void
    erase(Addr key)
    {
        size_t hole = probe(key);
        if (!slots_[hole].used)
            return;
        slots_[hole].used = false;
        --size_;
        for (size_t i = (hole + 1) & mask_; slots_[i].used;
             i = (i + 1) & mask_) {
            size_t home = hash(slots_[i].key) & mask_;
            // Movable iff the hole lies on i's probe path [home, i).
            if (((i - home) & mask_) >= ((i - hole) & mask_)) {
                slots_[hole] = slots_[i];
                slots_[i].used = false;
                hole = i;
            }
        }
    }

    size_t size() const { return size_; }

    void
    clear()
    {
        for (Slot &slot : slots_)
            slot.used = false;
        size_ = 0;
    }

  private:
    struct Slot
    {
        Addr key = 0;
        uint32_t val = 0;
        bool used = false;
    };

    static size_t
    hash(Addr key)
    {
        uint64_t x = key;
        x *= 0xff51afd7ed558ccdull;
        x ^= x >> 33;
        return static_cast<size_t>(x);
    }

    size_t
    probe(Addr key) const
    {
        size_t i = hash(key) & mask_;
        while (slots_[i].used && slots_[i].key != key)
            i = (i + 1) & mask_;
        return i;
    }

    std::vector<Slot> slots_;
    size_t mask_ = 0;
    size_t size_ = 0;
};

class Cache
{
  public:
    enum class Result
    {
        Hit,        //!< line resident
        MissNew,    //!< miss; new MSHR allocated, forward downstream
        MissMerged, //!< miss; merged into an existing MSHR, do not forward
        NoMshr,     //!< miss but MSHRs exhausted; retry later
    };

    /**
     * @param name        stat prefix (e.g. "sm0.l1d").
     * @param size_bytes  total capacity.
     * @param assoc       ways per set; == size/line for fully associative.
     * @param line_size   line size in bytes.
     * @param mshrs       max outstanding distinct line misses.
     */
    Cache(const std::string &name, uint32_t size_bytes, uint32_t assoc,
          uint32_t line_size, uint32_t mshrs, sim::StatRegistry &stats);

    /** Look up a line; allocate/merge an MSHR on miss. */
    Result access(Addr line_addr, bool is_write);

    /** Install a line returned from downstream and free its MSHR. */
    void fill(Addr line_addr);

    /** True if the line currently has an outstanding MSHR. */
    bool missPending(Addr line_addr) const;

    /** MSHR registers not currently holding an outstanding miss. The
     *  epoch-batched kernel sizes its windows so in-window accesses can
     *  never exhaust them (see MemSystem::epochCycleBound). */
    uint32_t
    freeMshrs() const
    {
        uint32_t used = static_cast<uint32_t>(mshrs_.size());
        return used >= mshrCapacity_ ? 0 : mshrCapacity_ - used;
    }

    /** Invalidate all resident lines (between kernels in tests). */
    void flush();

    uint32_t lineSize() const { return lineSize_; }
    uint64_t hits() const { return hits_->value(); }
    /** All misses, read + write (compatibility view). */
    uint64_t misses() const { return misses_->value(); }
    /** Read misses: allocate an MSHR and fill the line. */
    uint64_t readMisses() const { return readMisses_->value(); }
    /** Write-through misses: forwarded downstream, never allocated, so
     *  they say nothing about residency of the read working set. */
    uint64_t writeMisses() const { return writeMisses_->value(); }

  private:
    static constexpr uint32_t kNil = ~uint32_t{0};

    /**
     * Tag store entry, threaded on a per-set recency list (valid lines)
     * or the per-set free stack (invalid ways). Recency is an intrusive
     * doubly-linked list rather than timestamps so the LRU victim is
     * O(1): the fully-associative L1 (thousands of ways) made the old
     * scan-for-oldest the hottest function in the whole simulator.
     */
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        uint32_t prev = kNil;
        uint32_t next = kNil;
    };

    uint32_t setIndex(Addr line_addr) const;
    void unlink(uint32_t set, uint32_t idx);
    void pushMru(uint32_t set, uint32_t idx);
    /** Move an already-valid line to the MRU end of its set. */
    void touch(uint32_t set, uint32_t idx);

    uint32_t assoc_;
    uint32_t lineSize_;
    uint32_t numSets_;
    uint32_t mshrCapacity_;

    /** ways-per-set tag store, sets_ concatenated. */
    std::vector<Line> lines_;
    std::vector<uint32_t> mru_;      //!< per-set recency list head
    std::vector<uint32_t> lru_;      //!< per-set recency list tail
    std::vector<uint32_t> freeHead_; //!< per-set stack of invalid ways
    /** resident lines: line addr -> index into lines_. */
    AddrMap where_;
    /** outstanding line-miss registers: line addr -> merged count. */
    AddrMap mshrs_;

    sim::Counter *hits_;
    sim::Counter *misses_;
    sim::Counter *readMisses_;
    sim::Counter *writeMisses_;
    sim::Counter *mshrMerges_;
    sim::Counter *mshrStalls_;
};

} // namespace tta::mem

#endif // TTA_MEM_CACHE_HH
