/**
 * @file
 * Warp-level memory-access coalescer.
 *
 * Groups the per-lane addresses of a warp memory instruction into
 * line-granularity transactions, exactly like the GPU's LD/ST unit: lanes
 * touching the same cache line share one transaction. The number of
 * transactions a divergent access generates (up to 32) is the memory
 * divergence the paper's Fig 1 highlights.
 */

#ifndef TTA_MEM_COALESCER_HH
#define TTA_MEM_COALESCER_HH

#include <cstdint>
#include <vector>

#include "mem/request.hh"

namespace tta::mem {

/** One coalesced line transaction and the lanes it serves. */
struct CoalescedAccess
{
    Addr lineAddr;
    uint32_t laneMask;
};

/**
 * Coalesce per-lane accesses into line transactions.
 *
 * @param addrs      per-lane byte addresses (size = warp size; panics
 *                   beyond 32 lanes, the laneMask width).
 * @param active     bitmask of lanes that execute the access.
 * @param access_size bytes accessed per lane.
 * @param line_size  cache-line size in bytes (panics unless a power of
 *                   two — the line-mask arithmetic requires it).
 * @param out        cleared, then filled with one entry per distinct
 *                   line touched, in first-lane order. Out-param so hot
 *                   callers (one call per issued warp memory
 *                   instruction) can reuse a buffer.
 */
void coalesce(const std::vector<Addr> &addrs, uint32_t active,
              uint32_t access_size, uint32_t line_size,
              std::vector<CoalescedAccess> &out);

/** Convenience overload returning a fresh vector. */
std::vector<CoalescedAccess>
coalesce(const std::vector<Addr> &addrs, uint32_t active,
         uint32_t access_size, uint32_t line_size);

} // namespace tta::mem

#endif // TTA_MEM_COALESCER_HH
