/**
 * @file
 * Functional simulated global memory.
 *
 * A flat byte-addressable space shared by the SIMT cores and the
 * accelerators. Trees, query buffers and result buffers are serialized
 * into it by the workloads; the timing models only move addresses around,
 * while functional values are read from / written to this store.
 */

#ifndef TTA_MEM_GLOBAL_MEMORY_HH
#define TTA_MEM_GLOBAL_MEMORY_HH

#include <cstring>
#include <vector>

#include "mem/request.hh"
#include "sim/logging.hh"

namespace tta::mem {

class GlobalMemory
{
  public:
    /** @param capacity total bytes of simulated DRAM. 256MB covers the
     *  largest evaluated workloads (a 4M-key B-Tree is ~70MB); enlarge
     *  per-instance when needed. */
    explicit GlobalMemory(size_t capacity = 256ull << 20)
        : data_(capacity, 0)
    {
        // Address 0 is reserved so that "0" can mean "null pointer" in
        // serialized tree nodes.
        allocTop_ = 64;
    }

    /**
     * Bump-allocate a region.
     * @param bytes size of the region.
     * @param align alignment (power of two); defaults to a cache line so
     *        that tree nodes never straddle lines, matching how the
     *        paper's 64B nodes are laid out.
     */
    Addr
    alloc(size_t bytes, size_t align = 64)
    {
        panic_if((align & (align - 1)) != 0, "alignment not a power of 2");
        Addr base = (allocTop_ + align - 1) & ~(align - 1);
        panic_if(base + bytes > data_.size(),
                 "simulated memory exhausted (%zu bytes requested)", bytes);
        allocTop_ = base + bytes;
        return base;
    }

    /** Bytes allocated so far (high-water mark). */
    Addr allocTop() const { return allocTop_; }

    template <typename T>
    T
    read(Addr addr) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        boundsCheck(addr, sizeof(T));
        T value;
        std::memcpy(&value, data_.data() + addr, sizeof(T));
        return value;
    }

    template <typename T>
    void
    write(Addr addr, const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        boundsCheck(addr, sizeof(T));
        std::memcpy(data_.data() + addr, &value, sizeof(T));
    }

    void
    readBytes(Addr addr, void *dst, size_t n) const
    {
        boundsCheck(addr, n);
        std::memcpy(dst, data_.data() + addr, n);
    }

    void
    writeBytes(Addr addr, const void *src, size_t n)
    {
        boundsCheck(addr, n);
        std::memcpy(data_.data() + addr, src, n);
    }

    size_t capacity() const { return data_.size(); }

  private:
    void
    boundsCheck(Addr addr, size_t n) const
    {
        panic_if(addr + n > data_.size(),
                 "simulated memory access out of bounds: addr=0x%llx "
                 "size=%zu capacity=%zu",
                 static_cast<unsigned long long>(addr), n, data_.size());
    }

    std::vector<uint8_t> data_;
    Addr allocTop_;
};

} // namespace tta::mem

#endif // TTA_MEM_GLOBAL_MEMORY_HH
