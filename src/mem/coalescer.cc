#include "mem/coalescer.hh"

namespace tta::mem {

std::vector<CoalescedAccess>
coalesce(const std::vector<Addr> &addrs, uint32_t active,
         uint32_t access_size, uint32_t line_size)
{
    std::vector<CoalescedAccess> out;
    const Addr line_mask = ~static_cast<Addr>(line_size - 1);
    for (uint32_t lane = 0; lane < addrs.size(); ++lane) {
        if (!(active & (1u << lane)))
            continue;
        // An access may straddle a line boundary; emit one transaction per
        // line touched (rare for aligned tree nodes, but handled).
        Addr first = addrs[lane] & line_mask;
        Addr last = (addrs[lane] + access_size - 1) & line_mask;
        for (Addr line = first; line <= last; line += line_size) {
            bool merged = false;
            for (auto &acc : out) {
                if (acc.lineAddr == line) {
                    acc.laneMask |= 1u << lane;
                    merged = true;
                    break;
                }
            }
            if (!merged)
                out.push_back({line, 1u << lane});
        }
    }
    return out;
}

} // namespace tta::mem
