#include "mem/coalescer.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tta::mem {

std::vector<CoalescedAccess>
coalesce(const std::vector<Addr> &addrs, uint32_t active,
         uint32_t access_size, uint32_t line_size)
{
    panic_if(line_size == 0 || (line_size & (line_size - 1)) != 0,
             "coalesce: line size %u is not a power of two", line_size);
    panic_if(addrs.size() > 32,
             "coalesce: %zu lanes exceed the 32-lane warp limit",
             addrs.size());

    std::vector<CoalescedAccess> out;
    if (!active)
        return out;
    // This runs once per issued warp memory instruction; a fully
    // divergent access emits one transaction per lane, so reserve the
    // worst common case up front and keep lookups out of the O(n) scan
    // with a flat map (line addr -> out index) sorted by line address.
    out.reserve(addrs.size());
    std::vector<std::pair<Addr, uint32_t>> index;
    index.reserve(addrs.size());

    const Addr line_mask = ~static_cast<Addr>(line_size - 1);
    for (uint32_t lane = 0; lane < addrs.size(); ++lane) {
        if (!(active & (1u << lane)))
            continue;
        // An access may straddle a line boundary; emit one transaction per
        // line touched (rare for aligned tree nodes, but handled).
        Addr first = addrs[lane] & line_mask;
        Addr last = (addrs[lane] + access_size - 1) & line_mask;
        for (Addr line = first; line <= last; line += line_size) {
            auto it = std::lower_bound(
                index.begin(), index.end(), line,
                [](const std::pair<Addr, uint32_t> &p, Addr l) {
                    return p.first < l;
                });
            if (it != index.end() && it->first == line) {
                out[it->second].laneMask |= 1u << lane;
            } else {
                index.insert(it,
                             {line, static_cast<uint32_t>(out.size())});
                out.push_back({line, 1u << lane});
            }
        }
    }
    return out;
}

} // namespace tta::mem
