#include "mem/coalescer.hh"

#include <algorithm>
#include <array>

#include "sim/logging.hh"

namespace tta::mem {

void
coalesce(const std::vector<Addr> &addrs, uint32_t active,
         uint32_t access_size, uint32_t line_size,
         std::vector<CoalescedAccess> &out)
{
    panic_if(line_size == 0 || (line_size & (line_size - 1)) != 0,
             "coalesce: line size %u is not a power of two", line_size);
    panic_if(addrs.size() > 32,
             "coalesce: %zu lanes exceed the 32-lane warp limit",
             addrs.size());

    out.clear();
    if (!active)
        return;
    // This runs once per issued warp memory instruction; keep lookups
    // out of the O(n) scan with a flat map (line addr -> out index)
    // sorted by line address. Each lane touches at most two lines (an
    // access may straddle one boundary), so the map fits on the stack.
    std::array<std::pair<Addr, uint32_t>, 64> index;
    size_t indexSize = 0;

    const Addr line_mask = ~static_cast<Addr>(line_size - 1);
    for (uint32_t lane = 0; lane < addrs.size(); ++lane) {
        if (!(active & (1u << lane)))
            continue;
        // An access may straddle a line boundary; emit one transaction per
        // line touched (rare for aligned tree nodes, but handled).
        Addr first = addrs[lane] & line_mask;
        Addr last = (addrs[lane] + access_size - 1) & line_mask;
        for (Addr line = first; line <= last; line += line_size) {
            auto *begin = index.data();
            auto *end = begin + indexSize;
            auto *it = std::lower_bound(
                begin, end, line,
                [](const std::pair<Addr, uint32_t> &p, Addr l) {
                    return p.first < l;
                });
            if (it != end && it->first == line) {
                out[it->second].laneMask |= 1u << lane;
            } else {
                std::move_backward(it, end, end + 1);
                *it = {line, static_cast<uint32_t>(out.size())};
                ++indexSize;
                out.push_back({line, 1u << lane});
            }
        }
    }
}

std::vector<CoalescedAccess>
coalesce(const std::vector<Addr> &addrs, uint32_t active,
         uint32_t access_size, uint32_t line_size)
{
    std::vector<CoalescedAccess> out;
    out.reserve(addrs.size());
    coalesce(addrs, active, access_size, line_size, out);
    return out;
}

} // namespace tta::mem
