#include "mem/memsys.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace tta::mem {

MemSystem::MemSystem(const sim::Config &cfg, sim::StatRegistry &stats)
    : sim::TickedComponent("memsys"), cfg_(cfg)
{
    l1In_.resize(cfg_.numSms);
    staged_.resize(cfg_.numSms);
    stagedCount_.assign(cfg_.numSms, 0);
    for (auto &slot : staged_)
        slot.reserve(256);
    projReady_.resize(cfg_.numSms);
    for (auto &proj : projReady_)
        proj.reserve(2 * kL1QueueDepth);
    projHead_.assign(cfg_.numSms, 0);
    projPopT_.assign(cfg_.numSms, 0);
    stagedCursor_.assign(cfg_.numSms, 0);
    responses_.resize(cfg_.numSms);
    rtaResponses_.resize(cfg_.numSms);
    l1Pending_.resize(cfg_.numSms);
    coreWaker_.resize(cfg_.numSms, nullptr);
    rtaWaker_.resize(cfg_.numSms, nullptr);
    for (uint32_t sm = 0; sm < cfg_.numSms; ++sm) {
        std::string name = "sm" + std::to_string(sm) + ".l1d";
        uint32_t lines = cfg_.l1SizeBytes / cfg_.lineSizeBytes;
        // Table II: fully associative LRU L1.
        l1_.push_back(std::make_unique<Cache>(name, cfg_.l1SizeBytes, lines,
                                              cfg_.lineSizeBytes,
                                              cfg_.l1MshrEntries, stats));
    }
    l2_ = std::make_unique<Cache>("l2", cfg_.l2SizeBytes, cfg_.l2Assoc,
                                  cfg_.lineSizeBytes, cfg_.l2MshrEntries,
                                  stats);

    channelFree_.assign(cfg_.dramChannels, 0);
    transferCyclesPerLine_ = static_cast<double>(cfg_.lineSizeBytes) /
        (cfg_.dramBytesPerMemCycle * cfg_.memClockRatio());

    reads_ = &stats.counter("memsys.reads");
    writes_ = &stats.counter("memsys.writes");
    dramReads_ = &stats.counter("dram.reads");
    dramWrites_ = &stats.counter("dram.writes");
    dramBytesRead_ = &stats.counter("dram.bytes_read");
    dramBytesWritten_ = &stats.counter("dram.bytes_written");
    dramBusyCycles_ = &stats.scalar("dram.busy_cycles");
    l1QueueDepth_ = &stats.histogram("memsys.l1_queue_depth", 4.0, 32);

    l1Trace_.resize(cfg_.numSms, nullptr);
    dramTrace_.resize(cfg_.dramChannels, nullptr);
    if (auto *tracer = stats.tracer()) {
        for (uint32_t sm = 0; sm < cfg_.numSms; ++sm) {
            l1Trace_[sm] = tracer->stream(
                "memsys.sm" + std::to_string(sm) + ".l1", sim::TraceMem);
        }
        l2Trace_ = tracer->stream("memsys.l2", sim::TraceMem);
        for (uint32_t ch = 0; ch < cfg_.dramChannels; ++ch) {
            dramTrace_[ch] = tracer->stream(
                "dram.ch" + std::to_string(ch), sim::TraceMem);
        }
    }
}

bool
MemSystem::canAccept(uint32_t sm_id) const
{
    if (windowActive_) {
        // Parallel phase of an epoch window: project the input-queue
        // depth the barrier replay will reconstruct at the caller's
        // current tick cycle. Pops settle through cycle c - 1 for
        // callers that tick before the memory system (cores: our tick
        // at c drains after theirs) and through c for callers that tick
        // after it (accelerators).
        const sim::Cycle c = sim::Simulator::currentTickCycle();
        const sim::Cycle settled =
            sim::Simulator::currentIndex() < schedIndex() ? c : c + 1;
        advancePops(sm_id, settled);
        return projReady_[sm_id].size() - projHead_[sm_id] < kL1QueueDepth;
    }
    return l1In_[sm_id].size() + stagedCount_[sm_id] < kL1QueueDepth;
}

void
MemSystem::advancePops(uint32_t sm, sim::Cycle bound) const
{
    // The projection may pop on every cycle unconditionally: whenever
    // the real queue is non-empty the memory system is provably awake
    // (the first staged entry's same-cycle wake plus l1In_ keeping
    // nextEventCycle at cycle + 1), and popping from an empty
    // projection is a no-op. In-window accesses can never hit an MSHR
    // structural stall (see epochCycleBound), so tickL1's only other
    // early exit — the FIFO head's ready gate — is modelled exactly.
    const auto &ready = projReady_[sm];
    size_t &head = projHead_[sm];
    sim::Cycle &pop_t = projPopT_[sm];
    while (pop_t < bound) {
        uint32_t budget = kL1AccessesPerCycle;
        while (budget && head < ready.size() && ready[head] <= pop_t) {
            ++head;
            --budget;
        }
        ++pop_t;
    }
}

sim::Cycle
MemSystem::nextAcceptCycle(uint32_t sm_id) const
{
    panic_if(!windowActive_, "nextAcceptCycle outside an epoch window");
    // Simulate on copies: the shared pop cursor must only settle cycles
    // whose appends are complete, and this call peeks into the future.
    // Entries staged after this call only delay acceptance, and the
    // retry tick re-projects, so converging on the true cycle is safe.
    const auto &ready = projReady_[sm_id];
    size_t head = projHead_[sm_id];
    sim::Cycle pop_t = projPopT_[sm_id];
    const sim::Cycle c = sim::Simulator::currentTickCycle();
    for (sim::Cycle t = c + 1;; ++t) {
        // A core retrying at t has pops settled through t - 1.
        while (pop_t < t) {
            uint32_t budget = kL1AccessesPerCycle;
            while (budget && head < ready.size() && ready[head] <= pop_t) {
                ++head;
                --budget;
            }
            ++pop_t;
        }
        if (ready.size() - head < kL1QueueDepth)
            return t;
    }
}

void
MemSystem::sendRequest(const MemRequest &req)
{
    panic_if(req.smId >= cfg_.numSms, "bad SM id %u", req.smId);
    // A call from a per-SM shard (threaded kernel, parallel segment in
    // progress) may not touch shared counters or queues: stage it in
    // the caller's slot and replay the whole call at the barrier. The
    // slot is shard-private, so staging needs no locks.
    int shard = sim::Simulator::currentShard();
    if (shard >= 0) {
        panic_if(static_cast<uint32_t>(shard) != req.smId,
                 "request for SM %u sent from shard %d", req.smId, shard);
        const sim::Cycle c = sim::Simulator::currentTickCycle();
        staged_[shard].push_back({sim::Simulator::currentIndex(), req, c});
        bool perfect = cfg_.perfectMemory ||
            (cfg_.perfectNodeFetch &&
             req.source == RequestSource::RtaNode);
        if (!perfect) {
            ++stagedCount_[req.smId];
            if (windowActive_) {
                // The replay will push this entry with ready = c for
                // cores (our catch-up reaches c - 1 before the push,
                // then we tick at c) and ready = c + 1 for accelerators
                // (replayed after our tick at c already ran).
                projReady_[req.smId].push_back(
                    sim::Simulator::currentIndex() < schedIndex() ? c
                                                                  : c + 1);
            }
        }
        return;
    }
    sendRequestNow(req);
}

void
MemSystem::drainStaged(sim::Cycle now)
{
    (void)now;
    for (uint32_t sm = 0; sm < cfg_.numSms; ++sm) {
        if (staged_[sm].empty())
            continue;
        for (const StagedRequest &entry : staged_[sm]) {
            // Replay with the original caller's tick context so wake
            // ordering (self-wake, perfect-path response wakes) resolves
            // exactly as the serial kernels would have resolved it.
            sim::Simulator::ReplayGuard guard(entry.callerIdx);
            sendRequestNow(entry.req);
        }
        staged_[sm].clear();
        stagedCount_[sm] = 0;
    }
}

sim::Cycle
MemSystem::epochCycleBound(sim::Cycle cycle) const
{
    (void)cycle;
    // Perfect paths answer a staged request with a same-cycle response
    // wake, which window staging cannot legally deliver backwards in
    // time; keep those limit-study runs on per-cycle barriers.
    if (cfg_.perfectMemory || cfg_.perfectNodeFetch)
        return 1;
    // A window of K cycles drains at most K * kL1AccessesPerCycle L1
    // accesses per SM; keep K small enough that they can never exhaust
    // the free MSHRs, so canAccept()'s projection (which assumes no
    // structural stall) stays exact. Fills during the window only free
    // registers, so the entry head-room is a lower bound.
    uint32_t min_free = ~uint32_t{0};
    for (const auto &l1 : l1_)
        min_free = std::min(min_free, l1->freeMshrs());
    return std::max<sim::Cycle>(1, min_free / kL1AccessesPerCycle);
}

void
MemSystem::beginEpochWindow(sim::Cycle begin, sim::Cycle end)
{
    (void)end;
    for (uint32_t sm = 0; sm < cfg_.numSms; ++sm) {
        // A non-empty input queue makes us due next cycle, which clamps
        // the window to a single cycle — a multi-cycle window therefore
        // always opens with every projection starting from empty.
        panic_if(!l1In_[sm].empty(),
                 "epoch window opened with a non-empty L1 input queue "
                 "(sm %u)", sm);
        projReady_[sm].clear();
        projHead_[sm] = 0;
        projPopT_[sm] = begin;
        stagedCursor_[sm] = 0;
    }
    windowActive_ = true;
    windowBegin_ = begin;
}

void
MemSystem::replayStagedFrom(sim::Cycle cycle, uint32_t caller_index)
{
    // Each SM slot is filled cycle-by-cycle, core before accelerator
    // (the shard runs its components in registration order), so the
    // entries for this (cycle, caller) pair sit contiguously at the
    // slot's replay cursor.
    for (uint32_t sm = 0; sm < cfg_.numSms; ++sm) {
        auto &slot = staged_[sm];
        size_t &cur = stagedCursor_[sm];
        while (cur < slot.size() && slot[cur].issueCycle == cycle &&
               slot[cur].callerIdx == caller_index) {
            sim::Simulator::ReplayGuard guard(caller_index);
            sendRequestNow(slot[cur].req);
            ++cur;
        }
    }
}

void
MemSystem::endEpochWindow()
{
    for (uint32_t sm = 0; sm < cfg_.numSms; ++sm) {
        // Every staged request is issued by a busy caller, so its issue
        // cycle precedes the window's quiescence point and the replay
        // must have consumed it.
        panic_if(stagedCursor_[sm] != staged_[sm].size(),
                 "epoch window closed with %zu unreplayed request(s) "
                 "for SM %u",
                 staged_[sm].size() - stagedCursor_[sm], sm);
        staged_[sm].clear();
        stagedCount_[sm] = 0;
        stagedCursor_[sm] = 0;
    }
    windowActive_ = false;
}

void
MemSystem::sendRequestNow(const MemRequest &req)
{
    if (req.isWrite)
        ++*writes_;
    else
        ++*reads_;

    bool perfect = cfg_.perfectMemory ||
        (cfg_.perfectNodeFetch && req.source == RequestSource::RtaNode);
    if (perfect) {
        // Delivered on the next tick via the zero-latency path: model
        // as an immediate response enqueued directly.
        if (!req.isWrite)
            pushResponse({req.addr, req.source, req.smId, req.tag});
        return;
    }

    // Wake ourselves before the push: catch-up replays the queue-depth
    // samples the skipped cycles would have taken of the old depth.
    wakeNow();
    ++inflight_;
    l1In_[req.smId].push_back({ticks_ + 1, req});
}

void
MemSystem::pushResponse(const MemResponse &resp)
{
    bool for_rta = resp.source == RequestSource::RtaNode;
    sim::TickedComponent *waiter =
        for_rta ? rtaWaker_[resp.smId] : coreWaker_[resp.smId];
    if (waiter)
        waiter->wakeNow();
    (for_rta ? rtaResponses_ : responses_)[resp.smId].push_back(resp);
}

void
MemSystem::tick(sim::Cycle cycle)
{
    catchUp(cycle);
    lastAccounted_ = cycle + 1;
    ticks_ = cycle;
    l1QueueDepth_->sample(static_cast<double>(l1In_[0].size()));
    // Producer-to-consumer order within the cycle: fills first so lines
    // installed by older requests are visible, then new accesses.
    tickFills(cycle);
    tickDram(cycle);
    tickL2(cycle);
    for (uint32_t sm = 0; sm < cfg_.numSms; ++sm)
        tickL1(cycle, sm);
}

void
MemSystem::catchUp(sim::Cycle now)
{
    if (now <= lastAccounted_)
        return;
    uint64_t n = now - lastAccounted_;
    lastAccounted_ = now;
    // Each skipped cycle, a polling tick would have sampled the
    // (unchanged — wakes settle this before any push) input-queue depth
    // and advanced the tick count that normalizes DRAM utilization.
    l1QueueDepth_->sampleN(static_cast<double>(l1In_[0].size()), n);
    ticks_ = now - 1;
}

sim::Cycle
MemSystem::nextEventCycle(sim::Cycle cycle) const
{
    sim::Cycle next = sim::kAsleep;
    for (const auto &in : l1In_) {
        if (!in.empty()) {
            next = cycle + 1; // retrying or draining the front end
            break;
        }
    }
    auto consider = [&next](sim::Cycle ready) {
        next = std::min(next, ready);
    };
    if (!toL2_.empty())
        consider(toL2_.top().ready);
    if (!toDram_.empty())
        consider(toDram_.top().ready);
    if (!dramDone_.empty())
        consider(dramDone_.top().ready);
    if (!l1Fills_.empty())
        consider(l1Fills_.top().ready);
    if (!delayedResponses_.empty())
        consider(delayedResponses_.top().ready);
    if (next == sim::kAsleep)
        return next; // idle: a sendRequest() wake re-arms us
    return std::max(next, cycle + 1);
}

void
MemSystem::tickL1(sim::Cycle cycle, uint32_t sm)
{
    auto &in = l1In_[sm];
    const bool was_full = in.size() >= kL1QueueDepth;
    for (uint32_t n = 0; n < kL1AccessesPerCycle && !in.empty(); ++n) {
        if (in.front().ready > cycle)
            break;
        const MemRequest req = in.front().req;
        Cache::Result res = l1_[sm]->access(req.addr, req.isWrite);
        if (res == Cache::Result::NoMshr) {
            if (l1Trace_[sm])
                l1Trace_[sm]->instant(cycle, "mshr_stall");
            break; // structural stall; retry next cycle
        }
        in.pop_front();
        if (l1Trace_[sm]) {
            l1Trace_[sm]->instant(cycle, res == Cache::Result::Hit
                                             ? "hit" : "miss");
        }

        sim::Cycle done = cycle + cfg_.l1LatencyCycles;
        switch (res) {
          case Cache::Result::Hit:
            if (req.isWrite) {
                // Write-through: still propagates downstream.
                toL2_.push({done + kIcntLatency, req});
            } else {
                delayedResponses_.push(
                    {done, {req.addr, req.source, req.smId, req.tag}});
            }
            break;
          case Cache::Result::MissNew:
            if (!req.isWrite)
                l1Pending_[sm][req.addr].push_back(req);
            toL2_.push({done + kIcntLatency, req});
            break;
          case Cache::Result::MissMerged:
            l1Pending_[sm][req.addr].push_back(req);
            break;
          case Cache::Result::NoMshr:
            break; // unreachable
        }
    }
    // Back-pressure cleared: a core that went to sleep on a refused
    // sendRequest (canAccept() false) has no other wake edge for this
    // resource. We tick after the cores, so the wake resolves to the
    // next cycle — the first cycle a polling core would see the space.
    // Advisory (wakeHint): the core may not have been waiting at all,
    // and inside an epoch window a refused core self-schedules its own
    // retry at nextAcceptCycle(), so a hint resolving into the window's
    // already-run past is droppable rather than a contract violation.
    if (was_full && in.size() < kL1QueueDepth && coreWaker_[sm])
        coreWaker_[sm]->wakeHint(cycle);
}

void
MemSystem::tickL2(sim::Cycle cycle)
{
    for (uint32_t n = 0; n < kL2AccessesPerCycle && !toL2_.empty(); ++n) {
        if (toL2_.top().ready > cycle)
            break;
        const MemRequest req = toL2_.top().req;
        toL2_.pop();
        Cache::Result res = l2_->access(req.addr, req.isWrite);
        if (res == Cache::Result::NoMshr) {
            if (l2Trace_)
                l2Trace_->instant(cycle, "mshr_stall");
            // Retry next cycle.
            toL2_.push({cycle + 1, req});
            continue;
        }
        if (l2Trace_) {
            l2Trace_->instant(cycle, res == Cache::Result::Hit
                                         ? "hit" : "miss");
        }
        sim::Cycle done = cycle + cfg_.l2LatencyCycles;
        if (req.isWrite) {
            // Write-through to DRAM regardless of L2 hit/miss.
            toDram_.push({done, req});
            continue;
        }
        switch (res) {
          case Cache::Result::Hit:
            l1Fills_.push({done, req.addr, req.smId});
            break;
          case Cache::Result::MissNew:
            l2Pending_[req.addr].push_back(req.smId);
            toDram_.push({done, req});
            break;
          case Cache::Result::MissMerged:
            l2Pending_[req.addr].push_back(req.smId);
            break;
          case Cache::Result::NoMshr:
            break; // unreachable
        }
    }
}

void
MemSystem::tickDram(sim::Cycle cycle)
{
    while (!toDram_.empty() && toDram_.top().ready <= cycle) {
        const MemRequest req = toDram_.top().req;
        toDram_.pop();

        uint32_t chan = static_cast<uint32_t>(
            (req.addr / cfg_.lineSizeBytes) % cfg_.dramChannels);
        sim::Cycle start = std::max<sim::Cycle>(cycle, channelFree_[chan]);
        auto xfer =
            static_cast<sim::Cycle>(std::ceil(transferCyclesPerLine_));
        channelFree_[chan] = start + xfer;
        *dramBusyCycles_ += static_cast<double>(xfer);
        if (dramTrace_[chan]) {
            dramTrace_[chan]->complete(start, xfer,
                                       req.isWrite ? "write" : "read");
        }

        if (req.isWrite) {
            ++*dramWrites_;
            *dramBytesWritten_ += req.size ? req.size : cfg_.lineSizeBytes;
            --inflight_; // writes complete at the DRAM pins
            continue;
        }
        ++*dramReads_;
        *dramBytesRead_ += cfg_.lineSizeBytes;
        sim::Cycle done = start + cfg_.dramServiceLatency + xfer;
        dramDone_.push({done, req.addr, req.smId});
    }
}

void
MemSystem::tickFills(sim::Cycle cycle)
{
    // L1-hit responses mature after the L1 access latency.
    while (!delayedResponses_.empty() &&
           delayedResponses_.top().ready <= cycle) {
        const MemResponse resp = delayedResponses_.top().resp;
        delayedResponses_.pop();
        pushResponse(resp);
        --inflight_;
    }

    // DRAM -> L2 fills: wake every SM waiting on the line.
    while (!dramDone_.empty() && dramDone_.top().ready <= cycle) {
        Addr line = dramDone_.top().lineAddr;
        dramDone_.pop();
        l2_->fill(line);
        auto it = l2Pending_.find(line);
        if (it == l2Pending_.end())
            continue;
        for (uint32_t sm : it->second)
            l1Fills_.push({cycle + kIcntLatency, line, sm});
        l2Pending_.erase(it);
    }

    // L2 -> L1 fills: install line and answer all merged requests.
    while (!l1Fills_.empty() && l1Fills_.top().ready <= cycle) {
        TimedFill fill = l1Fills_.top();
        l1Fills_.pop();
        completeAtL1(cycle, fill.smId, fill.lineAddr);
    }
}

void
MemSystem::completeAtL1(sim::Cycle cycle, uint32_t sm, Addr line_addr)
{
    if (l1Trace_[sm])
        l1Trace_[sm]->instant(cycle, "fill");
    l1_[sm]->fill(line_addr);
    auto it = l1Pending_[sm].find(line_addr);
    if (it == l1Pending_[sm].end())
        return;
    for (const MemRequest &req : it->second) {
        pushResponse({req.addr, req.source, req.smId, req.tag});
        --inflight_;
    }
    l1Pending_[sm].erase(it);
}

bool
MemSystem::busy() const
{
    return inflight_ != 0;
}

double
MemSystem::dramUtilization() const
{
    if (ticks_ == 0)
        return 0.0;
    double total = static_cast<double>(ticks_) * cfg_.dramChannels;
    return std::min(1.0, dramBusyCycles_->value() / total);
}

void
MemSystem::flushCaches()
{
    for (auto &l1 : l1_)
        l1->flush();
    l2_->flush();
}

} // namespace tta::mem
