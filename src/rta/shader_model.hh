/**
 * @file
 * Intersection-shader cost model.
 *
 * On hardware the RTA suspends a ray and returns control to the SM when a
 * leaf needs a programmable intersection shader (ray-sphere on the
 * baseline RTA / TTA, the N-Body force leaf on TTA). The round trip is
 * expensive: the warp must be re-formed, the shader's instructions issue
 * on the general-purpose pipeline, and the result is written back to the
 * RTA. This model charges a fixed round-trip latency plus a serialized
 * per-call service interval on the SM side, and accounts the shader's
 * dynamic instructions into the core counters (they appear in the Fig 19
 * energy and Fig 20 instruction breakdowns, which is exactly why *RTNN
 * and *WKND_PT win by eliminating them).
 */

#ifndef TTA_RTA_SHADER_MODEL_HH
#define TTA_RTA_SHADER_MODEL_HH

#include <algorithm>

#include "sim/stats.hh"
#include "sim/ticked.hh"

namespace tta::rta {

class ShaderModel
{
  public:
    /** Dynamic instructions one shader call costs on the SM. */
    static constexpr uint32_t kInstsPerCall = 28;
    /** Intersection shaders: the traversal blocks on the result (it
     *  feeds tmax pruning), paying the full drain / warp re-formation /
     *  launch / writeback round trip. */
    static constexpr uint32_t kRoundTripLatency = 110;
    static constexpr uint32_t kServiceInterval = 8;
    /** Deferrable bulk leaf work (e.g. the N-Body force terms on TTA):
     *  results only accumulate, so calls batch into deferred warps with
     *  the round trip amortized away. */
    static constexpr uint32_t kBulkLatency = 24;
    static constexpr uint32_t kBulkInterval = 3;

    explicit ShaderModel(sim::StatRegistry &stats)
    {
        calls_ = &stats.counter("shader.calls");
        coreAlu_ = &stats.counter("core.insts_alu");
        coreMem_ = &stats.counter("core.insts_mem");
        coreCtrl_ = &stats.counter("core.insts_ctrl");
        laneInsts_ = &stats.counter("core.lane_insts");
    }

    /**
     * Execute `count` shader calls for one ray starting at `now`.
     * @param bulk deferrable accumulation work (amortized round trip).
     * @return cycle at which the ray may resume in the RTA.
     */
    sim::Cycle
    execute(sim::Cycle now, uint32_t count, bool bulk = false)
    {
        if (count == 0)
            return now;
        uint32_t interval = bulk ? kBulkInterval : kServiceInterval;
        uint32_t latency = bulk ? kBulkLatency : kRoundTripLatency;
        sim::Cycle start = std::max(now, nextFree_);
        nextFree_ = start + static_cast<sim::Cycle>(count) * interval;
        *calls_ += count;
        // Instruction mix of a typical intersection shader: mostly ALU
        // with a few loads and the call/return control flow. A call is
        // one ray's worth of work; shader warps pack 32 calls, so the
        // warp-level counters (the Fig 20 unit) accrue 1/32 per call
        // (with fractional carry), while per-lane counters are exact.
        laneCarry_ += static_cast<uint64_t>(count) * kInstsPerCall;
        uint64_t warp_insts = laneCarry_ / 32;
        laneCarry_ %= 32;
        uint64_t mem = warp_insts * 4 / kInstsPerCall;
        uint64_t ctrl = warp_insts * 2 / kInstsPerCall;
        *coreMem_ += mem;
        *coreCtrl_ += ctrl;
        *coreAlu_ += warp_insts - mem - ctrl;
        *laneInsts_ += static_cast<uint64_t>(count) * kInstsPerCall;
        return nextFree_ + latency;
    }

  private:
    sim::Cycle nextFree_ = 0;
    uint64_t laneCarry_ = 0;
    sim::Counter *calls_;
    sim::Counter *coreAlu_;
    sim::Counter *coreMem_;
    sim::Counter *coreCtrl_;
    sim::Counter *laneInsts_;
};

} // namespace tta::rta

#endif // TTA_RTA_SHADER_MODEL_HH
