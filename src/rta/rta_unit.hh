/**
 * @file
 * The per-SM traversal accelerator (Fig 4a), covering four hardware
 * levels selected by Config::accelMode:
 *
 *  - BaselineRta: fixed-function Ray-Box / Ray-Triangle / Transform
 *    pipelines. Query-Key and Point-to-Point operations are unsupported;
 *    ray-sphere leaves bounce to intersection shaders on the SM.
 *  - Tta: the Ray-Box unit additionally executes Query-Key comparisons
 *    and the Ray-Triangle unit executes Point-to-Point distance tests
 *    (Fig 8). Operations needing SQRT still bounce to shaders.
 *  - TtaPlus: every node test executes as a uop program on the modular
 *    OP units through the crosspoint interconnect (Fig 10).
 *
 * Structure per the paper: a warp buffer with Config::warpBufferWarps
 * warp slots tracks per-ray traversal state machines; a hardware memory
 * scheduler coalesces node requests and issues one memory request per
 * cycle; the operation arbiter decodes returned nodes and forwards them
 * to the intersection units; completed rays write back and the warp
 * resumes on the SM once all its rays finish.
 */

#ifndef TTA_RTA_RTA_UNIT_HH
#define TTA_RTA_RTA_UNIT_HH

#include <deque>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "gpu/accel.hh"
#include "gpu/core.hh"
#include "mem/memsys.hh"
#include "rta/pipeline.hh"
#include "rta/ray_state.hh"
#include "rta/shader_model.hh"
#include "rta/traversal_spec.hh"
#include "sim/config.hh"
#include "sim/ticked.hh"
#include "ttaplus/engine.hh"

namespace tta::rta {

class RtaUnit : public sim::TickedComponent, public gpu::AccelDevice
{
  public:
    RtaUnit(const sim::Config &cfg, uint32_t sm_id, mem::MemSystem &memsys,
            sim::StatRegistry &stats);
    ~RtaUnit() override;

    /** Select the traversal application (must outlive the kernel). */
    void setSpec(TraversalSpec *spec) { spec_ = spec; }

    // gpu::AccelDevice
    bool launchWarp(sim::Cycle cycle, gpu::SimtCore *core,
                    uint32_t warp_slot, uint32_t active_mask,
                    const std::vector<uint32_t> &lane_operands) override;

    void tick(sim::Cycle cycle) override;
    bool busy() const override;
    /** Computed by tick(): next arbiter/fetch cycle, next intersection
     *  completion, or kAsleep (idle / all rays blocked on node fetches,
     *  which wake us via the memory system's response path). */
    sim::Cycle nextEventCycle(sim::Cycle) const override
    {
        return nextEvent_;
    }
    void catchUp(sim::Cycle now) override;

  private:
    enum class Phase : uint8_t
    {
        Idle,      //!< no traversal
        Ready,     //!< needs the arbiter to pop / finish
        WaitFetch, //!< node lines in flight
        WaitTest,  //!< intersection units busy on this node
        WaitShader,//!< bounced to an SM intersection shader
    };

    struct RaySlot
    {
        RayState state;
        Phase phase = Phase::Idle;
        NodeRef currentRef = 0;
        std::vector<uint64_t> linesToIssue;
        uint32_t pendingFetches = 0;
        sim::Cycle fetchStart = 0; //!< cycle WaitFetch began (tracing)
    };

    struct WarpSlot
    {
        bool valid = false;
        gpu::SimtCore *core = nullptr;
        uint32_t coreSlot = 0;
        uint32_t remaining = 0;
        uint64_t launchOrder = 0;
        std::vector<RaySlot> rays;
    };

    struct Completion
    {
        sim::Cycle ready;
        uint16_t warp;
        uint16_t ray;
        uint8_t pipe;   //!< 0 none, 1 box, 2 tri, 3 xform
        uint16_t count; //!< tests retiring from the pipe
        bool operator>(const Completion &o) const
        {
            return ready > o.ready;
        }
    };

    /** The arbiter advances a Ready ray: finish or start the next node. */
    void stepRay(sim::Cycle cycle, uint32_t warp, uint32_t ray);
    /** Dispatch a fetched node to the right unit/engine/shader. */
    void dispatchTest(sim::Cycle cycle, uint32_t warp, uint32_t ray);
    void issueFetches(sim::Cycle cycle);
    void drainResponses(sim::Cycle cycle);
    void drainCompletions(sim::Cycle cycle);
    void finishRay(sim::Cycle cycle, uint32_t warp, uint32_t ray);

    const sim::Config cfg_;
    uint32_t smId_;
    mem::MemSystem *memsys_;
    TraversalSpec *spec_ = nullptr;

    std::vector<WarpSlot> warps_;
    uint64_t launchCounter_ = 0;
    uint32_t validWarps_ = 0;

    sim::Cycle nextEvent_ = 0;     //!< nextEventCycle() result
    sim::Cycle lastAccounted_ = 0; //!< occupancy sampling settled here

    /** Rays whose state machine needs the arbiter (Phase::Ready). */
    std::deque<std::pair<uint16_t, uint16_t>> readyQueue_;
    /** Rays whose fetches all returned (dispatch pending). */
    std::deque<std::pair<uint16_t, uint16_t>> dispatchQueue_;
    /** Rays with unissued fetch lines, FIFO for the memory scheduler. */
    std::deque<std::pair<uint16_t, uint16_t>> fetchQueue_;

    /** line addr -> rays waiting on it (RTA-level request coalescing). */
    std::unordered_map<uint64_t, std::vector<std::pair<uint16_t, uint16_t>>>
        inflightLines_;

    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>>
        completions_;

    // Timing resources.
    std::unique_ptr<IntersectionPipeline> boxPipe_;
    std::unique_ptr<IntersectionPipeline> triPipe_;
    std::unique_ptr<IntersectionPipeline> xformPipe_;
    std::unique_ptr<ttaplus::TtaPlusEngine> engine_;
    std::unique_ptr<ShaderModel> shader_;


    // Event tracing (all nullptr when the rta category is off).
    sim::TraceStream *unitStream_ = nullptr; //!< queue-depth counters
    std::vector<sim::TraceStream *> warpStreams_; //!< per warp-buffer slot
    uint32_t lastReadyDepth_ = 0;
    uint32_t lastFetchDepth_ = 0;

    // Statistics (shared, aggregate across SMs).
    sim::Counter *nodesVisited_;
    sim::Counter *raysCompleted_;
    sim::Counter *warpBufReads_;
    sim::Counter *warpBufWrites_;
    sim::Counter *opCounters_[8]; //!< per OpKind dynamic op counts
    sim::Histogram *warpOccupancy_;
    sim::Counter *prefetches_;
    sim::Counter *nodeBytesFetched_; //!< demand node fetch traffic
};

} // namespace tta::rta

#endif // TTA_RTA_RTA_UNIT_HH
