/**
 * @file
 * Per-ray traversal state held in the RTA warp buffer.
 *
 * One struct serves every workload: the fields form a superset of the
 * paper's programmer-defined ray layouts (query key for B-Trees, query
 * point for N-Body / radius search, the ray itself for ray tracing, and
 * the accumulators each application's ConfigTerminate watches). The warp
 * buffer energy model counts entry accesses; this struct is the
 * functional payload behind those entries.
 */

#ifndef TTA_RTA_RAY_STATE_HH
#define TTA_RTA_RAY_STATE_HH

#include <cstdint>
#include <vector>

#include "geom/ray.hh"
#include "geom/vec.hh"

namespace tta::rta {

/** Opaque traversal-stack entry (a spec-defined node reference). */
using NodeRef = uint64_t;

struct RayState
{
    uint32_t queryId = 0;     //!< lane operand at launch
    bool active = false;      //!< participating lane
    bool done = true;

    std::vector<NodeRef> stack;

    // --- Index search payload ------------------------------------------
    float query = 0.0f;
    bool found = false;

    // --- Spatial payloads -------------------------------------------------
    geom::Vec3 point;         //!< query point (N-Body body / radius query)
    geom::Vec3 accum;         //!< accumulated acceleration
    uint32_t hitCount = 0;    //!< neighbors found / any-hit counter

    // --- Ray tracing payload ----------------------------------------------
    geom::Ray ray;            //!< current-space ray
    geom::Ray worldRay;       //!< saved world-space ray (two-level BVH)
    bool inBlas = false;
    uint32_t meshId = 0;      //!< BLAS currently being traversed
    float closestT = 0.0f;
    uint32_t hitPrim = UINT32_MAX;
    float hitU = 0.0f;
    float hitV = 0.0f;
    bool anyHitMode = false;  //!< shadow rays: stop at first hit

    // --- Statistics ---------------------------------------------------------
    uint32_t nodesVisited = 0;
};

} // namespace tta::rta

#endif // TTA_RTA_RAY_STATE_HH
