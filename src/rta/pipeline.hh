/**
 * @file
 * Fixed-function intersection pipeline model.
 *
 * Models one kind of intersection unit (Ray-Box or Ray-Triangle) with
 * `sets` parallel copies, each fully pipelined (initiation interval 1)
 * with a fixed latency (13 / 37 cycles, Fig 4b). Tracks in-flight
 * occupancy for the Fig 15 utilization plot (average and peak concurrent
 * tests queued/executing per unit).
 */

#ifndef TTA_RTA_PIPELINE_HH
#define TTA_RTA_PIPELINE_HH

#include <algorithm>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/ticked.hh"
#include "sim/trace.hh"

namespace tta::rta {

class IntersectionPipeline
{
  public:
    IntersectionPipeline(const std::string &name, uint32_t sets,
                         uint32_t latency, sim::StatRegistry &stats)
        : latency_(std::max(1u, latency)), setFree_(std::max(1u, sets), 0)
    {
        dispatched_ = &stats.counter(name + ".ops");
        busyCycles_ = &stats.counter(name + ".busy_cycles");
        occupancy_ = &stats.histogram(name + ".occupancy", 1.0, 256);
    }

    /** Attach a trace stream (nullptr = off); occupancy changes emit
     *  counter events onto it. Stats share one name across SMs, so the
     *  owning RtaUnit passes a per-instance stream here. */
    void setTrace(sim::TraceStream *trace) { trace_ = trace; }

    /**
     * Dispatch `count` back-to-back tests at `now`.
     * @return completion cycle of the last test.
     */
    sim::Cycle
    dispatch(sim::Cycle now, uint32_t count = 1)
    {
        // The tests are independent: each takes the next free issue slot
        // (initiation interval 1 per set); completion is the latest
        // issue + pipeline latency.
        sim::Cycle done = now;
        for (uint32_t i = 0; i < count; ++i) {
            auto best = std::min_element(setFree_.begin(), setFree_.end());
            sim::Cycle issue = std::max(now, *best);
            *best = issue + 1;
            done = std::max(done, issue + latency_);
            ++*dispatched_;
            *busyCycles_ += latency_;
        }
        inflight_ += count;
        peak_ = std::max(peak_, inflight_);
        if (trace_ && count)
            trace_->counter(now, "inflight", inflight_);
        return done;
    }

    /** A previously dispatched test completed (`now` is only used for
     *  the occupancy trace; pass 0 when not tracing). */
    void
    complete(uint32_t count = 1, sim::Cycle now = 0)
    {
        inflight_ = count > inflight_ ? 0 : inflight_ - count;
        if (trace_ && count)
            trace_->counter(now, "inflight", inflight_);
    }

    /** Sample the current occupancy (called once per cycle). */
    void sampleOccupancy() { occupancy_->sample(inflight_); }

    /** Bulk-record `n` cycles of unchanged occupancy — the event-driven
     *  kernel's catch-up for cycles the owning unit slept through. */
    void sampleOccupancyN(uint64_t n) { occupancy_->sampleN(inflight_, n); }

    uint32_t inflight() const { return inflight_; }
    uint32_t peak() const { return peak_; }
    uint32_t latency() const { return latency_; }

  private:
    uint32_t latency_;
    std::vector<sim::Cycle> setFree_;
    uint32_t inflight_ = 0;
    uint32_t peak_ = 0;

    sim::Counter *dispatched_;
    sim::Counter *busyCycles_;
    sim::Histogram *occupancy_;
    sim::TraceStream *trace_ = nullptr;
};

} // namespace tta::rta

#endif // TTA_RTA_PIPELINE_HH
