#include "rta/rta_unit.hh"

#include <bit>
#include <cmath>

#include "sim/logging.hh"

namespace tta::rta {

namespace {

/** Built-in single-uop program for two-level BVH ray transforms. */
const ttaplus::Program &
xformProgram()
{
    static const ttaplus::Program prog = ttaplus::programs::rayTransform();
    return prog;
}

} // namespace

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::RayBox: return "raybox";
      case OpKind::RayTriangle: return "raytri";
      case OpKind::QueryKey: return "querykey";
      case OpKind::PointDist: return "pointdist";
      case OpKind::RaySphere: return "raysphere";
      case OpKind::ForceLeaf: return "forceleaf";
      case OpKind::Transform: return "transform";
      case OpKind::None: return "none";
    }
    return "?";
}

RtaUnit::RtaUnit(const sim::Config &cfg, uint32_t sm_id,
                 mem::MemSystem &memsys, sim::StatRegistry &stats)
    : sim::TickedComponent("rta" + std::to_string(sm_id)),
      cfg_(cfg), smId_(sm_id), memsys_(&memsys)
{
    // Node-fetch responses (and prefetch completions) wake this unit.
    memsys.setRtaWaker(smId_, this);
    warps_.resize(cfg_.warpBufferWarps);
    for (auto &warp : warps_)
        warp.rays.resize(cfg_.warpSize);

    auto scaled = [&](uint32_t base) {
        return std::max<uint32_t>(
            1, static_cast<uint32_t>(
                   std::lround(base * cfg_.intersectionLatencyScale)));
    };
    uint32_t box_latency = cfg_.ttaIsolatedMinMax ? 3u
                                                  : scaled(cfg_.rayBoxLatency);
    boxPipe_ = std::make_unique<IntersectionPipeline>(
        "rta.box", cfg_.intersectionSets, box_latency, stats);
    triPipe_ = std::make_unique<IntersectionPipeline>(
        "rta.tri", cfg_.intersectionSets, scaled(cfg_.rayTriLatency),
        stats);
    xformPipe_ = std::make_unique<IntersectionPipeline>(
        "rta.xform", cfg_.intersectionSets, 4, stats);
    if (cfg_.accelMode == sim::AccelMode::TtaPlus)
        engine_ = std::make_unique<ttaplus::TtaPlusEngine>(cfg_, stats,
                                                           name());
    shader_ = std::make_unique<ShaderModel>(stats);

    // Stat names are shared across SMs, but trace streams must be
    // per-instance; hand each pipeline a stream named after this unit.
    if (auto *tracer = stats.tracer()) {
        if (tracer->wants(sim::TraceRta)) {
            unitStream_ = tracer->stream(name(), sim::TraceRta);
            warpStreams_.resize(cfg_.warpBufferWarps, nullptr);
            for (uint32_t w = 0; w < cfg_.warpBufferWarps; ++w) {
                warpStreams_[w] = tracer->stream(
                    name() + ".w" + std::to_string(w), sim::TraceRta);
            }
        }
        boxPipe_->setTrace(tracer->stream(name() + ".box",
                                          sim::TracePipe));
        triPipe_->setTrace(tracer->stream(name() + ".tri",
                                          sim::TracePipe));
        xformPipe_->setTrace(tracer->stream(name() + ".xform",
                                            sim::TracePipe));
    }

    nodesVisited_ = &stats.counter("rta.nodes_visited");
    raysCompleted_ = &stats.counter("rta.rays_completed");
    warpBufReads_ = &stats.counter("rta.warp_buffer_reads");
    warpBufWrites_ = &stats.counter("rta.warp_buffer_writes");
    warpOccupancy_ = &stats.histogram("rta.warp_occupancy", 1.0, 8);
    prefetches_ = &stats.counter("rta.prefetches");
    nodeBytesFetched_ = &stats.counter("rta.node_bytes_fetched");
    for (int k = 0; k < 8; ++k) {
        opCounters_[k] = &stats.counter(
            std::string("rta.ops.") +
            opKindName(static_cast<OpKind>(k)));
    }
}

RtaUnit::~RtaUnit() = default;

bool
RtaUnit::launchWarp(sim::Cycle cycle, gpu::SimtCore *core,
                    uint32_t warp_slot, uint32_t active_mask,
                    const std::vector<uint32_t> &lane_operands)
{
    panic_if(!spec_, "RtaUnit::launchWarp with no TraversalSpec configured");
    panic_if(active_mask == 0, "traversal launch with empty mask");
    for (auto &warp : warps_) {
        if (warp.valid)
            continue;
        // Wake before mutating: settles skipped-cycle occupancy samples
        // against the pre-launch state; the launching core ticks before
        // this unit, so the wake resolves to this same cycle and the
        // arbiter sees the new rays when the unit ticks later on.
        wake(cycle);
        warp.valid = true;
        warp.core = core;
        warp.coreSlot = warp_slot;
        warp.remaining = std::popcount(active_mask);
        warp.launchOrder = launchCounter_++;
        uint16_t warp_idx = static_cast<uint16_t>(&warp - warps_.data());
        for (uint32_t lane = 0; lane < cfg_.warpSize; ++lane) {
            RaySlot &ray = warp.rays[lane];
            ray = RaySlot{};
            if (!(active_mask & (1u << lane)))
                continue;
            ray.state = RayState{};
            ray.state.active = true;
            ray.state.done = false;
            spec_->initRay(ray.state, lane_operands[lane]);
            ray.phase = Phase::Ready;
            readyQueue_.emplace_back(warp_idx,
                                     static_cast<uint16_t>(lane));
            // Ray setup writes the ray layout into the warp buffer.
            *warpBufWrites_ += 1;
        }
        ++validWarps_;
        if (unitStream_)
            warpStreams_[warp_idx]->begin(cycle, "traversal");
        return true;
    }
    return false; // warp buffer full: the SM retries (back-pressure)
}

void
RtaUnit::finishRay(sim::Cycle cycle, uint32_t warp_idx, uint32_t ray_idx)
{
    WarpSlot &warp = warps_[warp_idx];
    RaySlot &ray = warp.rays[ray_idx];
    spec_->finishRay(ray.state);
    ray.state.done = true;
    ray.phase = Phase::Idle;
    *warpBufWrites_ += 1;
    ++*raysCompleted_;
    panic_if(warp.remaining == 0, "ray finish accounting error");
    if (--warp.remaining == 0) {
        // Result writeback for the warp (two line writes: 32 rays x 8B).
        for (int i = 0; i < 2; ++i) {
            mem::MemRequest req;
            req.addr = 0; // result region modelled, address immaterial
            req.size = cfg_.lineSizeBytes;
            req.isWrite = true;
            req.source = mem::RequestSource::RtaWriteback;
            req.smId = smId_;
            memsys_->sendRequest(req);
        }
        warp.valid = false;
        --validWarps_;
        if (unitStream_)
            warpStreams_[warp_idx]->end(cycle); // closes "traversal"
        warp.core->accelDone(warp.coreSlot, cycle);
    }
}

void
RtaUnit::stepRay(sim::Cycle cycle, uint32_t warp_idx, uint32_t ray_idx)
{
    WarpSlot &warp = warps_[warp_idx];
    RaySlot &ray = warp.rays[ray_idx];
    if (ray.state.stack.empty()) {
        finishRay(cycle, warp_idx, ray_idx);
        return;
    }
    ray.currentRef = ray.state.stack.back();
    ray.state.stack.pop_back();
    ray.linesToIssue.clear();
    spec_->fetchLines(ray.state, ray.currentRef, ray.linesToIssue);
    ray.pendingFetches = static_cast<uint32_t>(ray.linesToIssue.size());
    if (ray.pendingFetches == 0) {
        dispatchTest(cycle, warp_idx, ray_idx);
        return;
    }
    ray.phase = Phase::WaitFetch;
    ray.fetchStart = cycle;
    fetchQueue_.emplace_back(static_cast<uint16_t>(warp_idx),
                             static_cast<uint16_t>(ray_idx));
}

void
RtaUnit::dispatchTest(sim::Cycle cycle, uint32_t warp_idx, uint32_t ray_idx)
{
    WarpSlot &warp = warps_[warp_idx];
    RaySlot &ray = warp.rays[ray_idx];

    // Operation arbiter: decode + read the ray entry from the warp buffer.
    *warpBufReads_ += 1;
    ++*nodesVisited_;
    ++ray.state.nodesVisited;

    size_t stack_before = ray.state.stack.size();
    NodeOutcome outcome = spec_->processNode(ray.state, ray.currentRef);
    *opCounters_[static_cast<int>(outcome.op)] += outcome.opCount;
    // Intermediate values / stack updates write back to the warp buffer.
    *warpBufWrites_ += 1;

    // Optional one-level child prefetcher: warm the caches with the
    // lines of everything the test just pushed. Prefetch responses carry
    // no waiters; they only install lines.
    if (cfg_.rtaChildPrefetch &&
        ray.state.stack.size() > stack_before) {
        std::vector<uint64_t> lines;
        for (size_t i = stack_before; i < ray.state.stack.size(); ++i)
            spec_->fetchLines(ray.state, ray.state.stack[i], lines);
        uint32_t issued = 0;
        for (uint64_t line : lines) {
            if (issued >= 4 || !memsys_->canAccept(smId_))
                break;
            if (inflightLines_.count(line))
                continue; // a demand fetch is already in flight
            mem::MemRequest req;
            req.addr = line;
            req.size = cfg_.lineSizeBytes;
            req.source = mem::RequestSource::RtaNode;
            req.smId = smId_;
            req.tag = line;
            memsys_->sendRequest(req);
            ++*prefetches_;
            ++issued;
        }
    }

    const sim::AccelMode mode = cfg_.accelMode;
    sim::Cycle done = cycle + 1; // pure stack manipulation: 1 cycle
    uint8_t pipe_tag = 0;
    Phase wait_phase = Phase::WaitTest;

    auto native_ff = [&](IntersectionPipeline &pipe,
                         uint32_t latency_override = 0) {
        done = pipe.dispatch(cycle, outcome.opCount);
        if (latency_override) {
            // Subset datapath (e.g. Point-to-Point inside the Ray-Tri
            // unit): same structural sets, shorter latency.
            sim::Cycle shortened =
                done - pipe.latency() + latency_override;
            done = shortened > cycle ? shortened : cycle + 1;
        }
        pipe_tag = &pipe == boxPipe_.get() ? 1
                   : &pipe == triPipe_.get() ? 2 : 3;
    };
    auto via_shader = [&](uint32_t calls, bool bulk = false) {
        done = shader_->execute(cycle, std::max(1u, calls), bulk);
        wait_phase = Phase::WaitShader;
    };
    auto via_engine = [&]() {
        const ttaplus::Program &prog =
            outcome.op == OpKind::Transform
                ? xformProgram()
                : (outcome.isLeaf ? spec_->leafProgram()
                                  : spec_->innerProgram());
        if (outcome.opCount > 0) {
            done = engine_->executeMany(cycle, prog, outcome.isLeaf,
                                        outcome.opCount);
        }
    };

    if (outcome.op != OpKind::None) {
        if (outcome.useShader) {
            // The application supplied an SM intersection shader (the
            // unstarred RTNN / WKND_PT configurations).
            via_shader(outcome.opCount);
        } else if (mode == sim::AccelMode::TtaPlus) {
            via_engine();
        } else {
            switch (outcome.op) {
              case OpKind::RayBox:
                native_ff(*boxPipe_);
                break;
              case OpKind::RayTriangle:
                native_ff(*triPipe_);
                break;
              case OpKind::Transform:
                native_ff(*xformPipe_);
                break;
              case OpKind::QueryKey:
                fatal_if(mode == sim::AccelMode::BaselineRta,
                         "Query-Key comparison is not supported by the "
                         "baseline RTA; use TTA or TTA+");
                native_ff(*boxPipe_); // modified Ray-Box path (Fig 8-1)
                break;
              case OpKind::PointDist:
                fatal_if(mode == sim::AccelMode::BaselineRta,
                         "Point-to-Point distance is not supported by the "
                         "baseline RTA; use TTA or TTA+");
                // Subset of the Ray-Triangle pipeline (Fig 8-2): sub,
                // dot, multiply, compare stages only.
                native_ff(*triPipe_, 13);
                break;
              case OpKind::RaySphere:
                // Needs SQRT: intersection shader on the SM.
                via_shader(outcome.opCount);
                break;
              case OpKind::ForceLeaf:
                // Needs SQRT, but only accumulates: deferred bulk work
                // on the SM (no per-visit pipeline round trip).
                via_shader(outcome.opCount, true);
                break;
              case OpKind::None:
                break;
            }
        }
    }

    // Auxiliary force computations (N-Body approximated inner nodes):
    // native leaf-program executions on TTA+, shader calls otherwise.
    if (outcome.auxForceOps > 0) {
        sim::Cycle aux;
        if (mode == sim::AccelMode::TtaPlus) {
            aux = engine_->executeMany(cycle, spec_->leafProgram(), true,
                                       outcome.auxForceOps);
        } else {
            // Force terms only accumulate: deferred bulk work.
            aux = shader_->execute(cycle, outcome.auxForceOps, true);
            wait_phase = Phase::WaitShader;
        }
        done = std::max(done, aux);
    }

    completions_.push({done, static_cast<uint16_t>(warp_idx),
                       static_cast<uint16_t>(ray_idx), pipe_tag,
                       static_cast<uint16_t>(outcome.opCount)});
    ray.phase = wait_phase;
    if (unitStream_ && done > cycle) {
        warpStreams_[warp_idx]->complete(
            cycle, done - cycle,
            wait_phase == Phase::WaitShader ? "shader" : "test");
    }
}

void
RtaUnit::issueFetches(sim::Cycle cycle)
{
    (void)cycle;
    // The hardware memory scheduler issues cfg_.rtaFetchWidth node
    // requests per cycle (one in the Table II baseline; wide SoA nodes
    // span several lines, which motivates a wider fetch port — see the
    // node-width sensitivity sweep), coalescing rays waiting on the
    // same line (FIFO across rays). A line merged into an in-flight
    // request still consumes its issue slot.
    for (uint32_t n = 0; n < cfg_.rtaFetchWidth; ++n) {
        if (fetchQueue_.empty() || !memsys_->canAccept(smId_))
            return;
        auto [w, r] = fetchQueue_.front();
        RaySlot &ray = warps_[w].rays[r];
        uint64_t line = ray.linesToIssue.back();
        ray.linesToIssue.pop_back();
        if (ray.linesToIssue.empty())
            fetchQueue_.pop_front();

        auto it = inflightLines_.find(line);
        if (it != inflightLines_.end()) {
            it->second.emplace_back(w, r);
            if (cfg_.rtaCoalescing)
                continue; // merged with the in-flight request
            // Ablation: no coalescing — issue a duplicate request. The
            // first response wakes every waiter; the duplicate costs
            // bandwidth.
        } else {
            inflightLines_[line].emplace_back(w, r);
        }
        mem::MemRequest req;
        req.addr = line;
        req.size = cfg_.lineSizeBytes;
        req.isWrite = false;
        req.source = mem::RequestSource::RtaNode;
        req.smId = smId_;
        req.tag = line;
        *nodeBytesFetched_ += req.size;
        memsys_->sendRequest(req);
    }
}

void
RtaUnit::drainResponses(sim::Cycle cycle)
{
    // The queue is RTA-only (RtaNode): core load responses are
    // delivered on the memory system's core responses() queue instead.
    auto &queue = memsys_->rtaResponses(smId_);
    for (auto it = queue.begin(); it != queue.end();) {
        auto waiters = inflightLines_.find(it->tag);
        if (waiters != inflightLines_.end()) {
            for (auto [w, r] : waiters->second) {
                RaySlot &ray = warps_[w].rays[r];
                if (ray.phase == Phase::WaitFetch &&
                    ray.pendingFetches > 0 &&
                    --ray.pendingFetches == 0 &&
                    ray.linesToIssue.empty()) {
                    dispatchQueue_.emplace_back(w, r);
                    if (unitStream_ && cycle > ray.fetchStart) {
                        warpStreams_[w]->complete(
                            ray.fetchStart, cycle - ray.fetchStart,
                            "fetch");
                    }
                }
            }
            inflightLines_.erase(waiters);
        }
        it = queue.erase(it);
    }
}

void
RtaUnit::drainCompletions(sim::Cycle cycle)
{
    while (!completions_.empty() && completions_.top().ready <= cycle) {
        Completion c = completions_.top();
        completions_.pop();
        switch (c.pipe) {
          case 1: boxPipe_->complete(c.count, cycle); break;
          case 2: triPipe_->complete(c.count, cycle); break;
          case 3: xformPipe_->complete(c.count, cycle); break;
          default: break;
        }
        RaySlot &ray = warps_[c.warp].rays[c.ray];
        ray.phase = Phase::Ready;
        readyQueue_.emplace_back(c.warp, c.ray);
    }
}

void
RtaUnit::tick(sim::Cycle cycle)
{
    catchUp(cycle);
    lastAccounted_ = cycle + 1;
    if (validWarps_ == 0) {
        nextEvent_ = sim::kAsleep;
        return; // nothing in flight; skip all bookkeeping
    }
    drainCompletions(cycle);
    drainResponses(cycle);

    // Operation arbiter: dispatch rays whose node data arrived.
    for (uint32_t n = 0;
         n < cfg_.rtaArbiterWidth && !dispatchQueue_.empty(); ++n) {
        auto [w, r] = dispatchQueue_.front();
        dispatchQueue_.pop_front();
        dispatchTest(cycle, w, r);
    }

    // Traversal state machines: pop the next node / retire rays.
    for (uint32_t n = 0;
         n < cfg_.rtaArbiterWidth && !readyQueue_.empty(); ++n) {
        auto [w, r] = readyQueue_.front();
        readyQueue_.pop_front();
        stepRay(cycle, w, r);
    }

    issueFetches(cycle);

    boxPipe_->sampleOccupancy();
    triPipe_->sampleOccupancy();
    warpOccupancy_->sample(validWarps_);

    if (unitStream_) {
        // Queue depths, emitted on change only (counter-event tracks).
        auto ready = static_cast<uint32_t>(readyQueue_.size());
        auto fetch = static_cast<uint32_t>(fetchQueue_.size());
        if (ready != lastReadyDepth_) {
            lastReadyDepth_ = ready;
            unitStream_->counter(cycle, "ready_queue", ready);
        }
        if (fetch != lastFetchDepth_) {
            lastFetchDepth_ = fetch;
            unitStream_->counter(cycle, "fetch_queue", fetch);
        }
    }

    // Next externally visible work: the arbiter/fetch scheduler runs
    // again next cycle while any queue holds rays; otherwise the next
    // test/shader completion (WaitTest and WaitShader both retire via
    // completions_). With every ray parked in WaitFetch the memory
    // system's response path (pushResponse) wakes us.
    if (validWarps_ == 0) {
        nextEvent_ = sim::kAsleep;
    } else if (!dispatchQueue_.empty() || !readyQueue_.empty() ||
               !fetchQueue_.empty()) {
        nextEvent_ = cycle + 1;
    } else if (!completions_.empty()) {
        nextEvent_ = completions_.top().ready;
    } else {
        nextEvent_ = sim::kAsleep;
    }
}

void
RtaUnit::catchUp(sim::Cycle now)
{
    if (now <= lastAccounted_)
        return;
    uint64_t n = now - lastAccounted_;
    lastAccounted_ = now;
    if (validWarps_ == 0)
        return; // the polling tick samples nothing when idle
    boxPipe_->sampleOccupancyN(n);
    triPipe_->sampleOccupancyN(n);
    warpOccupancy_->sampleN(validWarps_, n);
}

bool
RtaUnit::busy() const
{
    return validWarps_ != 0;
}

} // namespace tta::rta
