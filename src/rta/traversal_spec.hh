/**
 * @file
 * TraversalSpec: the functional half of an accelerator-resident tree
 * traversal.
 *
 * The paper's programming model (Listing 1) configures node/ray layouts
 * and intersection-test programs; in this model a TraversalSpec carries
 * exactly that information plus the functional node processing the
 * configured programs compute. The RtaUnit supplies all timing: fetch
 * scheduling, intersection-unit occupancy, TTA+ uop walks, and the
 * intersection-shader round trip for operations the selected hardware
 * level cannot execute.
 */

#ifndef TTA_RTA_TRAVERSAL_SPEC_HH
#define TTA_RTA_TRAVERSAL_SPEC_HH

#include <cstdint>
#include <vector>

#include "mem/global_memory.hh"
#include "rta/ray_state.hh"
#include "ttaplus/program.hh"

namespace tta::rta {

/** The computational operation a node visit performed. */
enum class OpKind : uint8_t
{
    RayBox,      //!< fixed-function Ray-Box (inner)
    RayTriangle, //!< fixed-function Ray-Triangle (leaf)
    QueryKey,    //!< TTA Query-Key comparison
    PointDist,   //!< TTA Point-to-Point distance
    RaySphere,   //!< programmable: shader on RTA/TTA, uops on TTA+
    ForceLeaf,   //!< N-Body leaf force: shader on TTA, uops on TTA+
    Transform,   //!< two-level BVH ray transform
    None,        //!< pure stack manipulation, no computation
};

const char *opKindName(OpKind kind);

/** Outcome of functionally processing one node. */
struct NodeOutcome
{
    OpKind op = OpKind::None;
    bool isLeaf = false;
    /** Pipelined invocations of the unit (e.g. one per leaf primitive). */
    uint32_t opCount = 1;
    /**
     * Additional force computations triggered by this visit (N-Body:
     * an approximated inner node still contributes one force term).
     * Executed on the leaf program natively on TTA+, and as intersection
     * shaders on the SM otherwise.
     */
    uint32_t auxForceOps = 0;
    /**
     * The application chose an SM-side intersection shader for this test
     * (the unstarred RTNN / WKND_PT configurations): route to the shader
     * model even on hardware that could execute the op natively.
     */
    bool useShader = false;
};

class TraversalSpec
{
  public:
    virtual ~TraversalSpec() = default;

    /**
     * Prepare a ray at `traverseTree` launch: decode the lane operand,
     * fill the payload, and push the root reference.
     */
    virtual void initRay(RayState &ray, uint32_t lane_operand) = 0;

    /**
     * Memory lines a node visit must fetch before its test can run
     * (the node itself, leaf records, primitive data).
     */
    virtual void fetchLines(const RayState &ray, NodeRef ref,
                            std::vector<uint64_t> &lines) const = 0;

    /**
     * Functionally process a node: run the intersection test, push child
     * references / record hits into `ray`, and report what was computed.
     */
    virtual NodeOutcome processNode(RayState &ray, NodeRef ref) = 0;

    /** Ray completed (stack empty or early-out): write results back. */
    virtual void finishRay(RayState &ray) = 0;

    /** TTA+ uop program for inner-node tests (ConfigI). */
    virtual const ttaplus::Program &innerProgram() const = 0;
    /** TTA+ uop program for leaf tests (ConfigL). */
    virtual const ttaplus::Program &leafProgram() const = 0;
};

} // namespace tta::rta

#endif // TTA_RTA_TRAVERSAL_SPEC_HH
