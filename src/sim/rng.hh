/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All workload generators in this repository draw from Xoshiro256** so that
 * every experiment is bit-reproducible across platforms and standard-library
 * versions (std::mt19937 distributions are not portable across libstdc++
 * releases).
 */

#ifndef TTA_SIM_RNG_HH
#define TTA_SIM_RNG_HH

#include <cstdint>

namespace tta::sim {

/** Xoshiro256** generator with SplitMix64 seeding. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void
    reseed(uint64_t seed)
    {
        // SplitMix64 to spread a small seed over the 256-bit state.
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ull;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    nextBounded(uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free reduction is fine here;
        // the slight modulo bias of a 64->64 reduction is negligible for
        // workload synthesis.
        return next() % bound;
    }

    /** Uniform float in [0, 1). */
    float
    nextFloat()
    {
        return static_cast<float>(next() >> 40) * 0x1.0p-24f;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform float in [lo, hi). */
    float
    uniform(float lo, float hi)
    {
        return lo + (hi - lo) * nextFloat();
    }

    /** Approximately standard-normal float (sum of uniforms, CLT). */
    float
    gaussian()
    {
        float acc = 0.0f;
        for (int i = 0; i < 12; ++i)
            acc += nextFloat();
        return acc - 6.0f;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace tta::sim

#endif // TTA_SIM_RNG_HH
