#include "sim/stats.hh"

#include <iomanip>
#include <sstream>

namespace tta::sim {

void
StatRegistry::reset()
{
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : scalars_)
        kv.second.reset();
    for (auto &kv : histograms_)
        kv.second.reset();
}

void
StatRegistry::absorb(const StatRegistry &other)
{
    for (const auto &kv : other.counters_)
        counters_[kv.first] += kv.second.value();
    for (const auto &kv : other.scalars_)
        scalars_[kv.first] += kv.second.value();
    for (const auto &kv : other.histograms_) {
        histogram(kv.first, kv.second.bucketWidth(),
                  kv.second.buckets().size())
            .merge(kv.second);
    }
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &kv : counters_)
        os << kv.first << " " << kv.second.value() << "\n";
    for (const auto &kv : scalars_)
        os << kv.first << " " << kv.second.value() << "\n";
    for (const auto &kv : histograms_) {
        os << kv.first << ".count " << kv.second.count() << "\n";
        os << kv.first << ".mean " << kv.second.mean() << "\n";
        os << kv.first << ".max " << kv.second.maxValue() << "\n";
        os << kv.first << ".overflow " << kv.second.overflow() << "\n";
    }
}

std::string
StatRegistry::dumpString() const
{
    std::ostringstream os;
    dump(os);
    return os.str();
}

void
StatRegistry::dumpCsv(std::ostream &os) const
{
    os << "stat,value\n";
    for (const auto &kv : counters_)
        os << kv.first << "," << kv.second.value() << "\n";
    for (const auto &kv : scalars_)
        os << kv.first << "," << kv.second.value() << "\n";
    for (const auto &kv : histograms_) {
        os << kv.first << ".count," << kv.second.count() << "\n";
        os << kv.first << ".mean," << kv.second.mean() << "\n";
        os << kv.first << ".max," << kv.second.maxValue() << "\n";
        os << kv.first << ".overflow," << kv.second.overflow() << "\n";
    }
}

} // namespace tta::sim
