/**
 * @file
 * Error-reporting and status-message helpers, in the spirit of gem5's
 * base/logging.hh.
 *
 * panic()  - an internal simulator invariant was violated (a bug in this
 *            library); aborts so the failure is loud in tests.
 * fatal()  - the *user* asked for something impossible (bad configuration,
 *            malformed program); throws FatalError so callers and tests can
 *            observe it without killing the process.
 * warn()/inform() - non-fatal status messages on stderr.
 */

#ifndef TTA_SIM_LOGGING_HH
#define TTA_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace tta::sim {

/** Exception thrown by fatal(): a user-caused, recoverable error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace detail {

std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

} // namespace tta::sim

/** Abort with a message: simulator-internal invariant violation. */
#define panic(...)                                                          \
    ::tta::sim::detail::panicImpl(                                          \
        __FILE__, __LINE__, ::tta::sim::detail::formatMessage(__VA_ARGS__))

/** Throw FatalError: the user supplied an impossible configuration. */
#define fatal(...)                                                          \
    ::tta::sim::detail::fatalImpl(                                          \
        ::tta::sim::detail::formatMessage(__VA_ARGS__))

/** panic() if the given condition is false. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            panic(__VA_ARGS__);                                             \
        }                                                                   \
    } while (0)

/** fatal() if the given condition is true. */
#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            fatal(__VA_ARGS__);                                             \
        }                                                                   \
    } while (0)

#define warn(...)                                                           \
    ::tta::sim::detail::warnImpl(                                           \
        ::tta::sim::detail::formatMessage(__VA_ARGS__))

#define inform(...)                                                         \
    ::tta::sim::detail::informImpl(                                         \
        ::tta::sim::detail::formatMessage(__VA_ARGS__))

#endif // TTA_SIM_LOGGING_HH
