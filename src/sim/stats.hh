/**
 * @file
 * Lightweight statistics framework.
 *
 * Components register named statistics with a StatRegistry; benches dump
 * them as text or CSV. Three concrete kinds cover everything this
 * repository measures:
 *
 *  - Counter:   monotonically increasing 64-bit event count.
 *  - Scalar:    arbitrary double (set or accumulated).
 *  - Histogram: fixed-bucket distribution with mean / max tracking, used
 *               for occupancy and latency distributions.
 *
 * Statistics are intentionally pull-based and allocation-free on the hot
 * path: incrementing a Counter is a single add.
 */

#ifndef TTA_SIM_STATS_HH
#define TTA_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace tta::sim {

class Tracer;

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void operator+=(uint64_t n) { value_ += n; }
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/** An arbitrary floating-point statistic. */
class Scalar
{
  public:
    void set(double v) { value_ = v; }
    void operator+=(double v) { value_ += v; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/**
 * A simple distribution: tracks count, sum, min, max and a fixed set of
 * linear buckets over [0, bucketWidth * nBuckets).
 */
class Histogram
{
  public:
    Histogram() : Histogram(1.0, 32) {}

    Histogram(double bucket_width, size_t n_buckets)
        : bucketWidth_(bucket_width), buckets_(n_buckets, 0)
    {}

    /** Record one sample. Samples beyond the bucketed range still land in
     *  the last bucket (so bucket sums match count()), but are tracked in
     *  an overflow count so a clipped tail is visible in the dump. */
    void sample(double v) { sampleN(v, 1); }

    /**
     * Record `n` identical samples in one shot — the event-driven
     * kernel's bulk catch-up for per-cycle occupancy sampling over a
     * skipped quiescent stretch. Bit-identical to calling sample(v) n
     * times for the integer-valued samples this repo records (v * n is
     * exact, and repeated summation of an integer double is too).
     */
    void
    sampleN(double v, uint64_t n)
    {
        if (n == 0)
            return;
        bool was_empty = count_ == 0;
        count_ += n;
        sum_ += v * n;
        min_ = was_empty ? v : std::min(min_, v);
        max_ = was_empty ? v : std::max(max_, v);
        size_t idx = v <= 0.0 ? 0
            : static_cast<size_t>(v / bucketWidth_);
        if (idx >= buckets_.size()) {
            idx = buckets_.size() - 1;
            overflow_ += n;
        }
        buckets_[idx] += n;
    }

    /**
     * Fold another histogram (same bucket layout) into this one. Count,
     * overflow, sum and buckets add; min/max combine. Exact for the
     * integer-valued samples this repo records, so absorbing a shard's
     * shadow histogram reproduces the serial sample stream bit for bit.
     */
    void
    merge(const Histogram &o)
    {
        if (o.count_ == 0)
            return;
        bool was_empty = count_ == 0;
        count_ += o.count_;
        overflow_ += o.overflow_;
        sum_ += o.sum_;
        min_ = was_empty ? o.min_ : std::min(min_, o.min_);
        max_ = was_empty ? o.max_ : std::max(max_, o.max_);
        for (size_t i = 0; i < buckets_.size() && i < o.buckets_.size();
             ++i)
            buckets_[i] += o.buckets_[i];
    }

    double bucketWidth() const { return bucketWidth_; }
    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double minValue() const { return count_ ? min_ : 0.0; }
    double maxValue() const { return count_ ? max_ : 0.0; }
    /** Samples that fell past the last bucket (clamped into it). */
    uint64_t overflow() const { return overflow_; }
    const std::vector<uint64_t> &buckets() const { return buckets_; }

    void
    reset()
    {
        count_ = 0;
        overflow_ = 0;
        sum_ = min_ = max_ = 0.0;
        std::fill(buckets_.begin(), buckets_.end(), 0);
    }

  private:
    double bucketWidth_;
    uint64_t count_ = 0;
    uint64_t overflow_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::vector<uint64_t> buckets_;
};

/**
 * Registry of named statistics.
 *
 * Names are hierarchical, dot-separated (e.g. "sm0.l1d.misses"). The
 * registry owns the stat objects; components hold raw pointers, which stay
 * valid for the registry's lifetime (std::map nodes are stable).
 */
class StatRegistry
{
  public:
    /** Create (or fetch) a counter under the given name. */
    Counter &counter(const std::string &name) { return counters_[name]; }

    /** Create (or fetch) a scalar under the given name. */
    Scalar &scalar(const std::string &name) { return scalars_[name]; }

    /** Create (or fetch) a histogram under the given name. */
    Histogram &
    histogram(const std::string &name, double bucket_width = 1.0,
              size_t n_buckets = 32)
    {
        auto it = histograms_.find(name);
        if (it == histograms_.end()) {
            it = histograms_.emplace(name,
                                     Histogram(bucket_width, n_buckets))
                     .first;
        }
        return it->second;
    }

    /** Look up a counter's value; 0 if absent. */
    uint64_t
    counterValue(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second.value();
    }

    /** Look up a scalar's value; 0 if absent. */
    double
    scalarValue(const std::string &name) const
    {
        auto it = scalars_.find(name);
        return it == scalars_.end() ? 0.0 : it->second.value();
    }

    /** Look up a histogram; nullptr if absent. */
    const Histogram *
    findHistogram(const std::string &name) const
    {
        auto it = histograms_.find(name);
        return it == histograms_.end() ? nullptr : &it->second;
    }

    /** Reset every registered statistic to zero. */
    void reset();

    /**
     * Fold every statistic of `other` into this registry (creating
     * missing entries with the source's histogram layout). The threaded
     * kernel gives each per-SM shard a shadow registry so workers never
     * contend on stat objects, then absorbs the shadows in SM-id order
     * at the end of the run. All absorbed per-SM stats are counters and
     * integer-valued histograms, so the merged totals are bit-identical
     * to the serial kernels' single-registry values.
     */
    void absorb(const StatRegistry &other);

    /** Dump all stats, one "name value" line each, sorted by name. */
    void dump(std::ostream &os) const;

    /** Dump all stats as CSV rows "name,value". */
    void dumpCsv(std::ostream &os) const;

    /**
     * dump() into a string. The canonical equality oracle for the
     * kernel-equivalence tests: two runs are bit-identical iff their
     * dumpString()s compare equal (every counter, scalar and histogram
     * participates, in sorted order).
     */
    std::string dumpString() const;

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Scalar> &scalars() const
    {
        return scalars_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

    /**
     * The event tracer for the run this registry belongs to, or nullptr
     * (the default: tracing off). Components fetch their TraceStreams
     * from here at construction, alongside registering their stats —
     * the registry is already the one per-run object every component
     * receives, so it doubles as the trace attachment point. The
     * registry does not own the tracer.
     */
    Tracer *tracer() const { return tracer_; }
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Scalar> scalars_;
    std::map<std::string, Histogram> histograms_;
    Tracer *tracer_ = nullptr;
};

} // namespace tta::sim

#endif // TTA_SIM_STATS_HH
