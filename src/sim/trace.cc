#include "sim/trace.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"
#include "sim/ticked.hh"

namespace tta::sim {

namespace {

/** Minimal JSON string escaping (names are ASCII identifiers). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
emitComma(std::ostream &os, bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
}

} // namespace

const char *
traceCategoryName(TraceCategory cat)
{
    switch (cat) {
      case TraceWarp:
        return "warp";
      case TraceRta:
        return "rta";
      case TracePipe:
        return "pipe";
      case TraceMem:
        return "mem";
      case TraceOp:
        return "op";
      case TraceSched:
        return "sched";
      default:
        return "?";
    }
}

void
TraceStream::checkShard()
{
    int shard = Simulator::currentShard();
    if (shard < 0)
        return; // coordinator / serial kernels: no ownership to enforce
    int expected = kUnbound;
    if (ownerShard_.compare_exchange_strong(expected, shard,
                                            std::memory_order_relaxed))
        return; // first sharded push binds the stream
    if (expected == shard)
        return;
    panic("trace stream '%s' shared across shards %d and %d; give each "
          "shard its own stream (streams are single-writer under the "
          "threaded kernel)",
          name_.c_str(), expected, shard);
}

std::vector<TraceEvent>
TraceStream::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(size_);
    // Oldest event sits at head_ once the ring has wrapped.
    size_t start = size_ < ring_.size() ? 0 : head_;
    for (size_t i = 0; i < size_; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

Tracer::Tracer(uint32_t category_mask, size_t ring_capacity)
    : mask_(category_mask & TraceAllCategories),
      ringCapacity_(ring_capacity ? ring_capacity : 1)
{}

TraceStream *
Tracer::stream(const std::string &name, TraceCategory cat)
{
    if (!wants(cat))
        return nullptr;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = streams_.find(name);
    if (it == streams_.end()) {
        auto s = std::unique_ptr<TraceStream>(
            new TraceStream(name, nextTid_++, cat, ringCapacity_));
        it = streams_.emplace(name, std::move(s)).first;
    }
    return it->second.get();
}

uint64_t
Tracer::droppedEvents() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t total = 0;
    for (const auto &kv : streams_)
        total += kv.second->dropped();
    return total;
}

void
Tracer::writeEvents(std::ostream &os, uint32_t pid,
                    const std::string &process_name, bool &first) const
{
    emitComma(os, first);
    os << "{\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\""
       << jsonEscape(process_name) << "\"}}";

    // Streams export in name order (streams_ is an ordered map) with
    // tids renumbered sequentially, so the document does not depend on
    // creation order — under the threaded kernel, lazily-created streams
    // (per-warp spans) can be created by any worker in any interleaving.
    std::lock_guard<std::mutex> lock(mutex_);
    uint32_t tid = 0;
    for (const auto &kv : streams_) {
        const TraceStream *s = kv.second.get();
        ++tid;
        emitComma(os, first);
        os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << jsonEscape(s->name()) << "\"}}";

        auto events = s->snapshot();
        // Components may emit out of strict cycle order (e.g. a span whose
        // end was computed at dispatch); per-thread timestamps must be
        // non-decreasing for chrome://tracing, so sort. stable_sort keeps
        // emission order for same-cycle events, preserving B-before-E.
        std::stable_sort(events.begin(), events.end(),
                         [](const TraceEvent &a, const TraceEvent &b) {
                             return a.ts < b.ts;
                         });

        const char *cat = traceCategoryName(s->category());
        // Ring-buffer drops can orphan one half of a B/E pair: skip E
        // events that close nothing and close dangling B spans at the end
        // so the exported stream is always well-formed.
        uint64_t depth = 0;
        Cycle last_ts = 0;
        std::vector<const char *> open;
        for (const auto &ev : events) {
            last_ts = std::max(last_ts, ev.ts + ev.dur);
            switch (ev.phase) {
              case 'B':
                ++depth;
                open.push_back(ev.name);
                emitComma(os, first);
                os << "{\"ph\":\"B\",\"pid\":" << pid
                   << ",\"tid\":" << tid << ",\"ts\":" << ev.ts
                   << ",\"name\":\"" << jsonEscape(ev.name)
                   << "\",\"cat\":\"" << cat << "\"}";
                break;
              case 'E':
                if (depth == 0)
                    break; // orphan close (its B was dropped)
                --depth;
                open.pop_back();
                emitComma(os, first);
                os << "{\"ph\":\"E\",\"pid\":" << pid
                   << ",\"tid\":" << tid << ",\"ts\":" << ev.ts << "}";
                break;
              case 'X':
                emitComma(os, first);
                os << "{\"ph\":\"X\",\"pid\":" << pid
                   << ",\"tid\":" << tid << ",\"ts\":" << ev.ts
                   << ",\"dur\":" << ev.dur << ",\"name\":\""
                   << jsonEscape(ev.name) << "\",\"cat\":\"" << cat
                   << "\"}";
                break;
              case 'i':
                emitComma(os, first);
                os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid
                   << ",\"tid\":" << tid << ",\"ts\":" << ev.ts
                   << ",\"name\":\"" << jsonEscape(ev.name)
                   << "\",\"cat\":\"" << cat << "\"}";
                break;
              case 'C':
                emitComma(os, first);
                os << "{\"ph\":\"C\",\"pid\":" << pid
                   << ",\"tid\":" << tid << ",\"ts\":" << ev.ts
                   << ",\"name\":\"" << jsonEscape(ev.name)
                   << "\",\"cat\":\"" << cat << "\",\"args\":{\"value\":"
                   << ev.value << "}}";
                break;
              default:
                break;
            }
        }
        while (depth--) {
            emitComma(os, first);
            os << "{\"ph\":\"E\",\"pid\":" << pid << ",\"tid\":" << tid
               << ",\"ts\":" << last_ts << "}";
            open.pop_back();
        }
    }
}

void
Tracer::writeJson(std::ostream &os, const std::string &process_name) const
{
    os << "{\"traceEvents\":[\n";
    bool first = true;
    writeEvents(os, /*pid=*/1, process_name, first);
    os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

uint32_t
Tracer::parseMask(const std::string &spec)
{
    if (spec.empty())
        return TraceAllCategories;
    // Plain numbers (decimal or 0x...) pass through.
    if (spec.find_first_not_of("0123456789xXabcdefABCDEF") ==
        std::string::npos &&
        (std::isdigit(static_cast<unsigned char>(spec[0])) != 0)) {
        return static_cast<uint32_t>(std::strtoul(spec.c_str(), nullptr, 0)) &
               TraceAllCategories;
    }
    uint32_t mask = 0;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string tok = spec.substr(pos, comma - pos);
        if (tok == "all") {
            mask |= TraceAllCategories;
        } else if (tok == "warp") {
            mask |= TraceWarp;
        } else if (tok == "rta") {
            mask |= TraceRta;
        } else if (tok == "pipe") {
            mask |= TracePipe;
        } else if (tok == "mem") {
            mask |= TraceMem;
        } else if (tok == "op") {
            mask |= TraceOp;
        } else if (tok == "sched") {
            mask |= TraceSched;
        } else if (!tok.empty()) {
            fatal("unknown trace category '%s' (expected "
                  "warp|rta|pipe|mem|op|sched|all)", tok.c_str());
        }
        pos = comma + 1;
    }
    return mask;
}

std::string
Tracer::maskToString(uint32_t mask)
{
    mask &= TraceAllCategories;
    if (mask == TraceAllCategories)
        return "all";
    std::string out;
    for (uint32_t bit = 1; bit <= TraceSched; bit <<= 1) {
        if (!(mask & bit))
            continue;
        if (!out.empty())
            out += ',';
        out += traceCategoryName(static_cast<TraceCategory>(bit));
    }
    return out.empty() ? "none" : out;
}

} // namespace tta::sim
