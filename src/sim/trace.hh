/**
 * @file
 * Cycle-level event tracing with Chrome trace-event export.
 *
 * Aggregate statistics (sim/stats.hh) say *how much* happened; a trace
 * says *when*. Components emit duration / instant / counter events into
 * per-component TraceStreams owned by a per-run Tracer; the buffered
 * events export as Chrome trace-event JSON that loads directly in
 * chrome://tracing or https://ui.perfetto.dev (timestamps are simulated
 * core-clock cycles, displayed by those tools as microseconds).
 *
 * Design constraints, in order:
 *
 *  1. Zero cost when disabled. Components keep a raw `TraceStream *`
 *     that is nullptr unless the run traces that category, so the hot
 *     path is one branch-on-null. Defining TTA_TRACE_COMPILED_MASK=0
 *     compiles tracing out entirely (stream() constant-folds to
 *     nullptr).
 *  2. Allocation-light when enabled. Events are fixed-size PODs in a
 *     per-stream ring buffer sized at stream creation; event names must
 *     be string literals (the stream stores the pointer). A full ring
 *     overwrites its oldest events and counts the drops; export keeps
 *     the newest window and repairs any B/E pairs the drops split.
 *  3. One Tracer per run. Under `--jobs N` every job gets its own Tracer
 *     and file, so jobs never share trace state. Within a run, the
 *     threaded simulation kernel may tick components on several worker
 *     threads: stream creation is mutex-protected (streams are created
 *     lazily mid-run), each stream stays single-writer because a stream
 *     belongs to exactly one component and a component to exactly one
 *     shard — a stream records the first shard that pushes to it and
 *     panics if a different shard pushes later — and export renumbers
 *     tids in stream-name order, so the exported document is identical
 *     regardless of which thread created which stream first.
 *
 * Wiring: a run attaches its Tracer to the run's StatRegistry
 * (StatRegistry::setTracer) before constructing the machine model;
 * components pick their streams up from the registry they already
 * receive. sim::ExperimentRunner does the attach automatically for
 * jobs that carry a tracer (Job::tracer).
 *
 * Epoch-batched windows (sim/ticked.hh): component-emitted events carry
 * the cycle the component actually ticked at, so TraceWarp/TraceRta/
 * TracePipe/TraceMem/TraceOp streams are unaffected by batching. The
 * scheduler's own TraceSched occupancy samples are the one exception —
 * mid-window samples could go backwards across a trimmed overshoot, so
 * the simulator suppresses them inside a window and emits one settled
 * sample per component at each epoch barrier. TraceSched under the
 * threaded kernel is therefore epoch-granular; run with --sim-epoch=1
 * for per-cycle scheduler samples.
 */

#ifndef TTA_SIM_TRACE_HH
#define TTA_SIM_TRACE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace tta::sim {

using Cycle = uint64_t;

/** Event categories, one bit each (the `cat` field of every event). */
enum TraceCategory : uint32_t
{
    TraceWarp = 1u << 0, //!< SIMT-core warp lifetime spans
    TraceRta = 1u << 1,  //!< RTA phase transitions (fetch/test/shader)
    TracePipe = 1u << 2, //!< intersection-pipeline occupancy counters
    TraceMem = 1u << 3,  //!< cache access / MSHR stall / fill, DRAM bus
    TraceOp = 1u << 4,   //!< TTA+ OP-unit reservation spans
    TraceSched = 1u << 5, //!< scheduler sleep/wake occupancy counters
    TraceAllCategories = (1u << 6) - 1,
};

/**
 * Compile-time category mask: categories outside it cost nothing, not
 * even the branch (stream() returns a compile-time nullptr). The
 * default compiles everything in; runtime masks select per run.
 */
#ifndef TTA_TRACE_COMPILED_MASK
#define TTA_TRACE_COMPILED_MASK ::tta::sim::TraceAllCategories
#endif

/** Short name ("warp", "mem", ...) of a single category bit. */
const char *traceCategoryName(TraceCategory cat);

/** One buffered event. `name` must outlive the Tracer (string literal). */
struct TraceEvent
{
    Cycle ts = 0;
    Cycle dur = 0;          //!< 'X' events only
    double value = 0.0;     //!< 'C' events only
    const char *name = "";
    char phase = 'i';       //!< 'B','E','X','i','C'
};

/**
 * An ordered event sink for one component (one Chrome-trace `tid`).
 * Obtained from Tracer::stream(); never constructed directly.
 */
class TraceStream
{
  public:
    /** Open a duration span ('B'). Pair with end(). */
    void begin(Cycle ts, const char *name) { push({ts, 0, 0.0, name, 'B'}); }
    /** Close the innermost open span ('E'). */
    void end(Cycle ts) { push({ts, 0, 0.0, "", 'E'}); }
    /** A span whose duration is already known ('X'). */
    void
    complete(Cycle ts, Cycle dur, const char *name)
    {
        push({ts, dur, 0.0, name, 'X'});
    }
    /** A point event ('i'). */
    void instant(Cycle ts, const char *name)
    {
        push({ts, 0, 0.0, name, 'i'});
    }
    /** A sampled value ('C'); emit on change, not per cycle. */
    void
    counter(Cycle ts, const char *name, double value)
    {
        push({ts, 0, value, name, 'C'});
    }

    const std::string &name() const { return name_; }
    uint32_t tid() const { return tid_; }
    TraceCategory category() const { return cat_; }
    uint64_t dropped() const { return dropped_; }
    size_t size() const { return size_; }

    /** Events oldest-to-newest (export order, before ts sorting). */
    std::vector<TraceEvent> snapshot() const;

  private:
    friend class Tracer;

    TraceStream(std::string name, uint32_t tid, TraceCategory cat,
                size_t capacity)
        : name_(std::move(name)), tid_(tid), cat_(cat), ring_(capacity)
    {}

    void
    push(const TraceEvent &ev)
    {
        checkShard();
        ring_[head_] = ev;
        head_ = (head_ + 1) % ring_.size();
        if (size_ < ring_.size())
            ++size_;
        else
            ++dropped_;
    }

    /** Enforce the one-shard-per-stream rule under the threaded kernel:
     *  binds the stream to the first shard that pushes, panics if a
     *  different shard pushes later. Coordinator pushes (serial kernels,
     *  serial segments, barrier replay, dispatch) are always allowed. */
    void checkShard();

    std::string name_;
    uint32_t tid_;
    TraceCategory cat_;
    std::vector<TraceEvent> ring_;
    size_t head_ = 0;
    size_t size_ = 0;
    uint64_t dropped_ = 0;
    std::atomic<int> ownerShard_{kUnbound};
    static constexpr int kUnbound = -2; //!< no shard has pushed yet
};

/**
 * Per-run trace container: hands out streams and exports the whole run
 * as one Chrome trace-event JSON document.
 */
class Tracer
{
  public:
    /**
     * @param category_mask OR of TraceCategory bits to record.
     * @param ring_capacity events buffered per stream before the oldest
     *        are overwritten (drops are counted and reported).
     */
    explicit Tracer(uint32_t category_mask = TraceAllCategories,
                    size_t ring_capacity = 1 << 14);

    /** Does this run record `cat`? Constant-false if compiled out. */
    bool
    wants(TraceCategory cat) const
    {
        return (mask_ & TTA_TRACE_COMPILED_MASK & cat) != 0;
    }

    /**
     * The stream for component `name` under `cat`; nullptr when the
     * category is disabled (callers keep the pointer and branch on it).
     * Streams are deduplicated by name; the category of the first
     * request wins.
     */
    TraceStream *stream(const std::string &name, TraceCategory cat);

    uint32_t mask() const { return mask_; }
    size_t numStreams() const { return streams_.size(); }
    /** Total events dropped to ring overwrites across all streams. */
    uint64_t droppedEvents() const;

    /**
     * Export one complete `{"traceEvents": [...]}` document for this
     * run (process name defaults to "sim").
     */
    void writeJson(std::ostream &os,
                   const std::string &process_name = "sim") const;

    /**
     * Append this run's events (plus process/thread metadata) to an
     * already-open trace-event array, as Chrome-trace process `pid`.
     * `first` tracks comma placement across calls and runs.
     */
    void writeEvents(std::ostream &os, uint32_t pid,
                     const std::string &process_name, bool &first) const;

    /**
     * Parse a category mask spec: comma-separated names ("warp,mem"),
     * "all", or a plain number. @throws FatalError on unknown names.
     */
    static uint32_t parseMask(const std::string &spec);
    /** Render a mask as the comma-separated form parseMask accepts. */
    static std::string maskToString(uint32_t mask);

  private:
    uint32_t mask_;
    size_t ringCapacity_;
    /** Guards streams_: the threaded kernel creates streams lazily from
     *  worker threads (e.g. per-warp streams on first dispatch). */
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<TraceStream>> streams_;
    uint32_t nextTid_ = 1;
};

} // namespace tta::sim

#endif // TTA_SIM_TRACE_HH
