/**
 * @file
 * Cycle-driven simulation framework.
 *
 * Every timing model in the repository is a TickedComponent; a Simulator
 * owns an ordered list of components and advances them one core-clock cycle
 * at a time. Ordering within a cycle is the registration order, which the
 * GPU top-level arranges producer-before-consumer so a request issued in
 * cycle N is visible to the next stage in cycle N+1 at the earliest
 * (single-cycle queues between stages enforce this).
 */

#ifndef TTA_SIM_TICKED_HH
#define TTA_SIM_TICKED_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace tta::sim {

using Cycle = uint64_t;

/** Interface for anything that does work each core-clock cycle. */
class TickedComponent
{
  public:
    explicit TickedComponent(std::string name) : name_(std::move(name)) {}
    virtual ~TickedComponent() = default;

    TickedComponent(const TickedComponent &) = delete;
    TickedComponent &operator=(const TickedComponent &) = delete;

    /** Advance one core-clock cycle. */
    virtual void tick(Cycle cycle) = 0;

    /**
     * @retval true if this component still has in-flight work.
     * The simulator runs until every component is quiescent.
     */
    virtual bool busy() const = 0;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

/**
 * The top-level run loop.
 *
 * Does not own components (they are owned by the machine model that wires
 * them together); it only sequences their tick() calls and tracks the
 * global cycle count.
 */
class Simulator
{
  public:
    explicit Simulator(StatRegistry &stats) : stats_(&stats) {}

    /** Register a component; tick order is registration order. */
    void add(TickedComponent *comp) { components_.push_back(comp); }

    /** Advance exactly one cycle. */
    void
    step()
    {
        for (auto *comp : components_)
            comp->tick(cycle_);
        ++cycle_;
    }

    /**
     * Run until all components are quiescent or the max_cycles watchdog
     * expires. Expiry means the model deadlocked (some component will
     * stay busy() forever); rather than hang, panic() with the list of
     * still-busy components so the culprit is named in the abort
     * message. Config::watchdogCycles is the conventional source of the
     * limit for full-machine runs.
     * @return the number of cycles executed by this call.
     */
    Cycle runToQuiescence(Cycle max_cycles = 2'000'000'000ull);

    /** Comma-separated names of every component with in-flight work. */
    std::string busyComponentNames() const;

    Cycle cycle() const { return cycle_; }
    StatRegistry &stats() { return *stats_; }

    /** True if any registered component reports in-flight work. */
    bool
    anyBusy() const
    {
        for (const auto *comp : components_) {
            if (comp->busy())
                return true;
        }
        return false;
    }

  private:
    StatRegistry *stats_;
    std::vector<TickedComponent *> components_;
    Cycle cycle_ = 0;
};

} // namespace tta::sim

#endif // TTA_SIM_TICKED_HH
