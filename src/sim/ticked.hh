/**
 * @file
 * Event-driven simulation framework.
 *
 * Every timing model in the repository is a TickedComponent; a Simulator
 * owns an ordered list of components and advances them one core-clock cycle
 * at a time. Ordering within a cycle is the registration order, which the
 * GPU top-level arranges producer-before-consumer so a request issued in
 * cycle N is visible to the next stage in cycle N+1 at the earliest
 * (single-cycle queues between stages enforce this).
 *
 * The kernel comes in three flavours, selected per Simulator:
 *
 *  - Polling (the original kernel, kept as the reference implementation):
 *    every component ticks every cycle, whether or not it has work.
 *
 *  - EventDriven (the default): components report, after each tick, the
 *    next cycle at which they can possibly do externally-visible work
 *    (kAsleep for "only an external event wakes me"). The simulator keeps
 *    a per-component due-cycle table and jumps the clock straight to the
 *    next due cycle, skipping quiescent stretches entirely. Traversal
 *    workloads are memory-latency-bound by design, so most cycles most
 *    components are waiting on DRAM — the skip is where the wall-clock
 *    speedup comes from.
 *
 *  - Threaded: the event-driven kernel, with the per-cycle component scan
 *    sharded across a persistent worker pool. Components registered with
 *    a shard id (per-SM islands: core + accelerator) run concurrently
 *    within a cycle; components registered as kSharedShard (the memory
 *    system) run serially on the coordinator between the parallel
 *    segments, exactly where registration order places them. Cross-shard
 *    messages are staged per shard and drained at a cycle barrier in
 *    fixed SM-id/sequence order, so results are bit-identical to the
 *    serial kernels at any thread count (see DESIGN.md "Threaded
 *    simulation kernel").
 *
 * Event-driven correctness contract (see DESIGN.md "Event-driven
 * simulation kernel" for the full argument):
 *
 *  1. A component's tick(c) must behave identically whether or not the
 *     scheduler delivered the no-op ticks a polling kernel would have
 *     delivered in (lastTick, c). State-dependent work satisfies this
 *     automatically; per-cycle accounting (occupancy sampling, stall
 *     attribution) must be replayed in bulk via catchUp().
 *  2. nextEventCycle(c), called right after tick(c), must be conservative:
 *     returning X promises nothing externally visible (stat updates
 *     included) can happen strictly before X without an external wake.
 *  3. Producers wake consumers *before* mutating shared state, at the
 *     cycle the mutation happens (`wake(cycle)`): the scheduler resolves
 *     same-cycle visibility by registration order — a consumer that ticks
 *     later in the cycle than the in-progress producer sees the update
 *     this cycle, an earlier-ordered consumer next cycle — exactly the
 *     visibility the polling kernel's in-order full scan provides. The
 *     wake settles the consumer's bulk accounting (catchUp) against the
 *     still-unmutated state, so skipped-cycle stats match polling's
 *     per-cycle observations bit for bit.
 *
 * Additional contract under the threaded kernel:
 *
 *  4. A component may touch, during its tick, only state owned by its own
 *     shard, read-only state that no other shard writes this cycle, and
 *     per-shard slots of shared components that are only consumed in a
 *     serial segment (e.g. an SM's private response queue).
 *  5. Messages to components in *other* shards must go through either
 *     the generic staged-wake path (wake() stages automatically when the
 *     target lives in another shard) or a component-level staging buffer
 *     replayed from drainStaged() (see mem::MemSystem). Both are drained
 *     at the barrier after the parallel segment, ordered by the caller's
 *     registration index, which equals SM id order for the machine model.
 *
 * Additional contract under epoch batching (K > 1; see DESIGN.md
 * "Epoch-batched barriers"):
 *
 *  6. A tick delivered to a component with no in-flight work (busy()
 *     false and nothing staged for it) must be externally side-effect
 *     free — no stat updates, no messages — and must not self-schedule
 *     beyond the next cycle. The epoch window may process such no-op
 *     ticks past the quiescence point the serial kernels stop at; the
 *     trim step re-inserts their consumed tick requests so a later
 *     launch replays them exactly as the serial kernels would.
 *  7. Shared-shard components must bound, via epochCycleBound(), how many
 *     cycles their externally visible behavior (acceptance decisions,
 *     response timing) can be projected from the window-entry state.
 *     The window length never exceeds that bound, the model's static
 *     epoch limit (Gpu: min(L1, L2) latency), or the distance to any
 *     shared component's next due tick — so shared components never miss
 *     a tick and per-shard projections (mem::MemSystem::canAccept) stay
 *     exact.
 */

#ifndef TTA_SIM_TICKED_HH
#define TTA_SIM_TICKED_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/stats.hh"

namespace tta::sim {

using Cycle = uint64_t;

/**
 * Sentinel for "no self-scheduled wakeup": the component does nothing
 * until an external event (a wake() from a producer) arrives.
 */
inline constexpr Cycle kAsleep = ~Cycle{0};

/** Shard id for components that run serially on the coordinator. */
inline constexpr int kSharedShard = -1;

class Simulator;

/** Interface for anything that does work each core-clock cycle. */
class TickedComponent
{
  public:
    explicit TickedComponent(std::string name) : name_(std::move(name)) {}
    virtual ~TickedComponent() = default;

    TickedComponent(const TickedComponent &) = delete;
    TickedComponent &operator=(const TickedComponent &) = delete;

    /** Advance one core-clock cycle. */
    virtual void tick(Cycle cycle) = 0;

    /**
     * @retval true if this component still has in-flight work.
     * The simulator runs until every component is quiescent.
     */
    virtual bool busy() const = 0;

    /**
     * Earliest future cycle at which this component can possibly do
     * externally-visible work without an external wake; kAsleep for
     * "wake me only on an event". Called by the event-driven kernel
     * immediately after tick(cycle); results <= cycle are treated as
     * cycle + 1 (retry next cycle). The default — tick again next
     * cycle, forever — makes legacy components polling-faithful under
     * either kernel.
     */
    virtual Cycle nextEventCycle(Cycle cycle) const { return cycle + 1; }

    /**
     * Replay per-cycle accounting (occupancy samples, stall attribution)
     * for the quiescent cycles [lastTick + 1, now) that the event-driven
     * kernel skipped. Must be idempotent for a given `now` and must be
     * based on current (pre-wake-mutation) state. Components whose tick
     * does no unconditional per-cycle accounting keep the no-op default.
     */
    virtual void catchUp(Cycle now) { (void)now; }

    /**
     * Threaded kernel only: replay messages that per-SM shards staged
     * into this component during the parallel segment that just
     * finished. Called on shared-shard components, in registration
     * order, at the barrier after each parallel segment; the override
     * must replay its buffers in caller (SM id) order and wrap each
     * replayed message in a Simulator::ReplayGuard so wake ordering
     * resolves as if the original caller were still mid-tick. The no-op
     * default suits components that receive no cross-shard messages.
     */
    virtual void drainStaged(Cycle now) { (void)now; }

    /**
     * Epoch-batched kernel only (shared-shard components): upper bound,
     * evaluated at window entry, on how many cycles this component's
     * externally visible behavior can be projected without ticking it.
     * The window length K never exceeds the minimum over all shared
     * components. The conservative default — one cycle while busy,
     * unbounded while idle — disables batching for any shared component
     * with in-flight work unless it overrides this with a real bound
     * (mem::MemSystem bounds by free MSHR headroom).
     */
    virtual Cycle
    epochCycleBound(Cycle cycle) const
    {
        (void)cycle;
        return busy() ? 1 : kAsleep;
    }

    /**
     * Epoch-batched kernel only: the window [begin, end) is starting.
     * Shared-shard components snapshot whatever per-shard projection
     * state their in-window acceptance decisions need (and reset their
     * issue-cycle-tagged staging buffers). No-op default.
     */
    virtual void beginEpochWindow(Cycle begin, Cycle end)
    {
        (void)begin;
        (void)end;
    }

    /** Epoch-batched kernel only: the window finished replaying. */
    virtual void endEpochWindow() {}

    /**
     * Epoch-batched kernel only: replay, at window-replay cycle `cycle`,
     * the messages caller `caller_index` staged into this component with
     * issue cycle `cycle` during the window's parallel run. Called on
     * shared-shard components for every (cycle, caller) pair in
     * ascending (cycle, caller-registration-index) order, interleaved
     * with the generic staged wakes of the same pair. No-op default.
     */
    virtual void replayStagedFrom(Cycle cycle, uint32_t caller_index)
    {
        (void)cycle;
        (void)caller_index;
    }

    /**
     * Ask the owning simulator to tick this component at `at` (resolved
     * against same-cycle ordering; see Simulator::wake). No-op when the
     * component is not registered or the kernel is polling.
     */
    void wake(Cycle at);
    /** wake() at the simulator's current cycle. */
    void wakeNow();
    /**
     * Advisory wake: like wake(), but carries no information a sleeping
     * target strictly needs — any consumer genuinely waiting on the
     * signalled condition must also self-schedule its own retry tick
     * (e.g. a core refused by MemSystem::canAccept inside an epoch
     * window retries at nextAcceptCycle()). During epoch-window replay
     * a hint that resolves to a window cycle where the target never
     * ticked is therefore dropped (the tick it would have caused is a
     * stat-neutral no-op) instead of being treated as a rule-7
     * violation. Use for broadcast "resource freed" edges that may
     * target components which were never waiting.
     */
    void wakeHint(Cycle at);

    const std::string &name() const { return name_; }

  protected:
    /** Registration index of this component (tick order); 0 before
     *  Simulator::add(). Shared components compare it against
     *  Simulator::currentIndex() to tell earlier-ticking callers (cores)
     *  from later-ticking ones (accelerators) when projecting in-window
     *  behavior. */
    uint32_t schedIndex() const { return schedIndex_; }

  private:
    friend class Simulator;

    std::string name_;
    Simulator *sched_ = nullptr; //!< set by Simulator::add()
    uint32_t schedIndex_ = 0;    //!< registration order == tick order
};

/**
 * Process-wide scheduler telemetry, aggregated across every Simulator
 * that finishes a run (finishAccounting). Golden-stat snapshots pin the
 * exact StatRegistry contents, so scheduler effectiveness is reported
 * out-of-band here instead of as registry stats; bench_speed and the CI
 * perf-smoke job read it through the workload API without needing the
 * Gpu object. Counters are atomic: `--jobs N` sweeps aggregate across
 * worker threads.
 */
struct SchedulerTelemetry
{
    /** Cycles actually processed (every component scan counts one). */
    static uint64_t cyclesTicked();
    /** Cycles skipped by the event-driven kernel (0 under polling). */
    static uint64_t cyclesSkipped();
    /** skipped / (ticked + skipped), 0 when nothing ran. */
    static double skippedFraction();
    static void reset();
};

class TraceStream;
class Tracer;

/**
 * The top-level run loop.
 *
 * Does not own components (they are owned by the machine model that wires
 * them together); it only sequences their tick() calls and tracks the
 * global cycle count.
 */
class Simulator
{
  public:
    enum class Kernel
    {
        EventDriven, //!< sleep/wake scheduling, idle-cycle skipping
        Polling,     //!< tick everything every cycle (reference kernel)
        Threaded,    //!< event-driven, per-SM shards behind a cycle barrier
    };

    explicit Simulator(StatRegistry &stats);
    ~Simulator();

    /**
     * Register a component; tick order is registration order. `shard`
     * assigns the component to a per-SM island (>= 0) the threaded
     * kernel may run concurrently with other islands, or kSharedShard
     * for components that must run serially on the coordinator. Shard
     * ids are ignored by the serial kernels.
     */
    void add(TickedComponent *comp, int shard = kSharedShard);

    /**
     * Kernel used when a Simulator does not choose explicitly:
     * EventDriven, unless TTA_SIM_KERNEL=polling|threaded is set in the
     * environment or a test/bench overrides it programmatically.
     * (An env var rather than a Config field keeps configDigest — and
     * with it golden stats and run JSON — identical across kernels.)
     */
    static Kernel defaultKernel();
    static void setDefaultKernel(Kernel kernel);
    /** Back to the environment-derived default. */
    static void resetDefaultKernel();

    /**
     * Worker threads the threaded kernel uses when a Simulator does not
     * choose explicitly: the TTA_SIM_THREADS environment variable, a
     * programmatic override (`--sim-threads` on the benches), or 0 for
     * "auto" (hardware concurrency). The effective count is additionally
     * clamped to the number of shards at first run. Kept out of Config
     * (like the kernel choice) so configDigest — and with it golden
     * stats and run JSON — is identical across thread counts.
     */
    static unsigned defaultSimThreads();
    static void setDefaultSimThreads(unsigned threads);
    /** Back to the environment-derived default. */
    static void resetDefaultSimThreads();

    /**
     * Epoch size the threaded kernel uses when a Simulator does not
     * choose explicitly: the TTA_SIM_EPOCH environment variable, a
     * programmatic override (`--sim-epoch` on the benches), or 0 for
     * "auto" (the machine model's setEpochLimit(), i.e. min(L1, L2)
     * latency for the GPU). 1 disables batching (per-cycle barriers).
     * Kept out of Config (like kernel and thread count) so configDigest
     * — and with it golden stats and run JSON — is identical across
     * epoch sizes.
     */
    static unsigned defaultSimEpoch();
    static void setDefaultSimEpoch(unsigned epoch);
    /** Back to the environment-derived default. */
    static void resetDefaultSimEpoch();

    /**
     * std::thread::hardware_concurrency() with the standard-permitted
     * 0 return mapped to 1, and an injectable test hook. Every probe in
     * the simulator and runner goes through here so the zero-cores
     * fallback (and the oversubscription spin guard) is testable.
     */
    static unsigned hardwareConcurrency();
    /** Test hook: force hardwareConcurrency()'s raw probe value
     *  (0 exercises the fallback); nullptr restores the real probe. */
    static void setHardwareConcurrencyHookForTest(unsigned (*probe)());

    /**
     * Iterations a threaded-kernel participant spins before blocking on
     * the barrier condvar: the TTA_SIM_SPIN environment variable, else
     * 20000 on multi-core hosts and 0 on single-core ones. Per-run the
     * effective budget is additionally forced to 0 when the pool is
     * oversubscribed (threads > hardware cores) — spinning then only
     * steals the cycles the other workers need.
     */
    static unsigned defaultSpinBudget();
    /** Spin budget this simulator's barriers actually use (valid once
     *  the threaded kernel has finalized; 0 before). */
    unsigned effectiveSpinBudget() const { return spinBudget_; }

    void setKernel(Kernel kernel) { kernel_ = kernel; }
    Kernel kernel() const { return kernel_; }

    /** Requested worker threads (0 = auto); effective only before the
     *  first threaded cycle runs. */
    void setSimThreads(unsigned threads) { threadsRequested_ = threads; }
    /** Worker threads in use (1 until the threaded kernel finalizes). */
    unsigned simThreads() const { return threadsUsed_; }

    /** Requested epoch size for this simulator (0 = auto: the model's
     *  setEpochLimit(); 1 = per-cycle barriers). */
    void setSimEpoch(unsigned epoch) { epochRequested_ = epoch; }
    unsigned simEpoch() const { return epochRequested_; }

    /**
     * Machine-model opt-in ceiling for epoch batching. The default (1)
     * keeps per-cycle barriers: only a model that has audited its
     * components against contract rules 6-7 may raise it. The GPU model
     * sets min(l1LatencyCycles, l2LatencyCycles): any in-window request
     * is only reacted to (pops aside) at least one full L1 latency
     * later, i.e. after the window ends, which is what keeps the
     * per-shard acceptance projections exact.
     */
    void setEpochLimit(Cycle limit) { epochLimit_ = limit ? limit : 1; }
    Cycle epochLimit() const { return epochLimit_; }

    /**
     * True while the machine model's run loop still has undispatched
     * work it hands out between simulator advances. Warp dispatch is
     * dynamically load-balanced (free-slot scans), so its timing must
     * not shift: epoch windows are suppressed (K = 1) while pending.
     */
    void setDispatchPending(bool pending) { dispatchPending_ = pending; }

    /**
     * Cycle the calling thread's in-progress tick (or staged-message
     * replay) is executing at; only meaningful while a tick or replay is
     * in progress (like currentIndex). Inside an epoch window the global
     * clock parks at the window start while shards run ahead, so in-tick
     * code must use this, never cycle(), for "now".
     */
    static Cycle currentTickCycle();
    /**
     * End (exclusive) of the epoch window the calling thread is running
     * or replaying under; 0 when outside a window (K = 1 paths). Lets
     * components choose window-only behavior (e.g. a core re-arming its
     * own retry tick on back-pressure instead of relying on the memory
     * system's wake).
     */
    static Cycle currentEpochEnd();

    /**
     * Shard of the component the *current thread* is ticking: >= 0 while
     * a worker (or the coordinator inlining a parallel segment) runs a
     * sharded component, -1 otherwise (serial kernels, serial segments,
     * between cycles, replay). Components use this to decide whether to
     * stage cross-shard messages (see mem::MemSystem::sendRequest).
     */
    static int currentShard();
    /** Registration index of the component the current thread is
     *  ticking; only meaningful while a tick or replay is in progress. */
    static uint32_t currentIndex();

    /**
     * RAII guard for replaying a staged cross-shard message at the
     * barrier: makes wake ordering (and nested sendRequest calls)
     * resolve as if component `caller_index` were still mid-tick on the
     * coordinator, exactly as the serial kernels would have resolved the
     * original call.
     */
    class ReplayGuard
    {
      public:
        explicit ReplayGuard(uint32_t caller_index);
        ~ReplayGuard();
        ReplayGuard(const ReplayGuard &) = delete;
        ReplayGuard &operator=(const ReplayGuard &) = delete;

      private:
        int savedShard_;
        bool savedInTick_;
        uint32_t savedIndex_;
    };

    /**
     * Watchdog limit used by runToQuiescence() when the caller passes 0;
     * defaults to Config::watchdogCycles so every entry point shares one
     * source of truth. Machine models forward their config's value here.
     */
    void setWatchdog(Cycle cycles) { watchdog_ = cycles; }
    Cycle watchdog() const { return watchdog_; }

    /**
     * Process the current cycle: tick every due component (every
     * component, under polling) in registration order, then advance the
     * clock by one.
     */
    void step();

    /**
     * Advance to and process the next cycle with scheduled work, without
     * moving the clock past `horizon` (so the watchdog still observes
     * deadlocks at the cycle it would under polling).
     * @retval false if nothing is scheduled (event-driven) / nothing is
     *         busy (polling) — the caller's run loop is done.
     */
    bool advance(Cycle horizon);

    /**
     * Run until all components are quiescent or the watchdog expires
     * (max_cycles = 0 means "use setWatchdog()'s limit", which defaults
     * to Config::watchdogCycles). Expiry means the model deadlocked
     * (some component will stay busy() forever); rather than hang,
     * panic() with the list of still-busy components so the culprit is
     * named in the abort message.
     * @return the number of cycles executed by this call.
     */
    Cycle runToQuiescence(Cycle max_cycles = 0);

    /**
     * Settle all bulk accounting at the current cycle and flush
     * scheduler telemetry. Run loops call this once after the last
     * cycle; without it, stats for a trailing skipped stretch would be
     * missing.
     */
    void finishAccounting();

    /** Comma-separated names of every component with in-flight work. */
    std::string busyComponentNames() const;

    Cycle cycle() const { return cycle_; }
    StatRegistry &stats() { return *stats_; }

    /** True if any registered component reports in-flight work. */
    bool
    anyBusy() const
    {
        for (const auto *comp : components_) {
            if (comp->busy())
                return true;
        }
        return false;
    }

    /**
     * Schedule comp to tick at cycle `at` (clamped to the present). A
     * same-cycle wake of a component that already ticked this cycle —
     * by registration order, relative to the component being ticked
     * right now — lands on the next cycle instead, preserving polling's
     * producer-before-consumer visibility. Settles the target's bulk
     * accounting (catchUp) before the caller mutates shared state.
     * No-op under the polling kernel (everything ticks anyway).
     *
     * Threaded kernel: a wake whose target lives in a different shard
     * than the calling thread's is staged and replayed at the barrier
     * after the parallel segment, in caller registration order. A
     * staged wake that resolves to the current cycle but targets a
     * segment that already ran is a model bug (it could never be
     * delivered the way the serial kernels would) and panics.
     */
    void wake(TickedComponent *comp, Cycle at, bool hint = false);

    /** Components currently scheduled for a future tick. */
    uint32_t awakeComponents() const;
    /** Cycles processed by this simulator (both kernels). */
    uint64_t cyclesTicked() const { return cyclesTicked_; }
    /** Cycles the event-driven kernel skipped without processing. */
    uint64_t cyclesSkipped() const { return cyclesSkipped_; }
    /** skipped / (ticked + skipped) for this simulator. */
    double
    skippedFraction() const
    {
        uint64_t total = cyclesTicked_ + cyclesSkipped_;
        return total ? static_cast<double>(cyclesSkipped_) / total : 0.0;
    }

  private:
    /** A maximal run of same-kind components in registration order. */
    struct Segment
    {
        uint32_t begin;
        uint32_t end;
        bool parallel; //!< all members have shard >= 0
    };

    /** A cross-shard wake captured mid-segment, replayed at the barrier.
     *  issueCycle tags the cycle the caller was ticking when it staged
     *  the wake: the epoch replay delivers wakes in (issueCycle,
     *  callerIndex, staging sequence) order; at K = 1 every entry's
     *  issueCycle equals the current cycle and the order reduces to the
     *  per-cycle kernel's (callerIndex, sequence). */
    struct StagedWake
    {
        uint32_t callerIndex;
        uint32_t targetIndex;
        Cycle at;
        Cycle issueCycle;
        bool hint; //!< advisory (wakeHint): droppable during replay
    };

    void scheduleAt(uint32_t index, Cycle at);
    /** Earliest due cycle across all components; kAsleep if nothing is
     *  scheduled. A linear scan: the component count is tiny (cores +
     *  memory system + accelerators), so scanning nextDue_ beats any
     *  priority queue and never holds stale entries. */
    Cycle nextDueCycle() const;
    /** Emit the per-component awake/asleep trace counter on change. */
    void syncSchedTrace(uint32_t index);
    void flushTelemetry();

    /** Consume component `index`'s request for cycle `c` and tick it,
     *  with the thread-local tick context set to `shard` / `c`. */
    void runDue(uint32_t index, int shard, Cycle c);
    /** One processed cycle under the threaded kernel (K = 1 path). */
    void stepThreaded();
    /** Run one parallel segment (inline or across the pool) and drain. */
    void runParallelSegment(uint32_t seg);
    /** Tick worker `worker`'s due components within segment `seg`. */
    void runWorkerSlice(uint32_t seg, uint32_t worker);
    /** Replay staged wakes + component staging buffers after `seg`. */
    void drainSegment(uint32_t seg);
    /** Derive segments/shard maps and size the pool; idempotent. */
    void finalizeShards();
    void workerLoop(uint32_t worker);
    void stopWorkers();
    /** Release the pool and run `fn` as worker 0; returns after every
     *  worker finished its slice. `fn` is dispatched by generation: the
     *  current window/segment mode is read from epochActive_. */
    void runPooled();

    // Epoch-batched window machinery (K > 1; see DESIGN.md).
    /** Effective window length at the current cycle, honoring the
     *  requested size, the model limit, shared-component due cycles and
     *  epochCycleBound()s, pending dispatch, and `horizon`. */
    Cycle epochWindowLength(Cycle horizon) const;
    /** Run the window [cycle_, cycle_ + k): shards ahead in parallel,
     *  then serial replay, then quiescence trim. */
    void runEpochWindow(Cycle k);
    /** Worker `worker`'s shards, all window cycles, in cycle-major
     *  component order. */
    void runWindowSlice(uint32_t worker);
    /** Serial part of the window: shared-component ticks interleaved
     *  with staged wakes / component staging buffers in (cycle, caller)
     *  order. Returns the cycle the clock settles at: one past the
     *  first globally idle cycle (where the serial run loops stop), or
     *  `end`. */
    Cycle replayWindow(Cycle begin, Cycle end);
    /** Trim the window at global quiescence: re-insert tick requests
     *  the overshoot cycles [settle, end) consumed, so a later launch
     *  replays them like the serial kernels would, and account
     *  processed/skipped cycles for [begin, settle). */
    void trimWindow(Cycle begin, Cycle settle, Cycle end);
    /** Greedy LPT reassignment of shards to workers by measured cost. */
    void rebalanceShards();

    StatRegistry *stats_;
    std::vector<TickedComponent *> components_;
    Cycle cycle_ = 0;
    Kernel kernel_;
    Cycle watchdog_;

    // Event-driven state. Every wake / self-schedule is a firm tick
    // request in pending_ (sorted, unique, usually 1-2 entries); a tick
    // at cycle c consumes exactly the request at c, so no wake can be
    // lost to an earlier tick that returns kAsleep. nextDue_ caches
    // pending_[i].front() (kAsleep when empty) for the per-cycle scan
    // and for nextDueCycle()'s min reduction.
    std::vector<Cycle> nextDue_;
    std::vector<std::vector<Cycle>> pending_;

    // Threaded-kernel state. Built by finalizeShards() on the first
    // processed cycle; immutable while workers run. Workers only write
    // state owned by their shards (per-index entries of nextDue_ /
    // pending_ / traceAwake_ and their own stagedWakes_ slot), so the
    // only synchronization is the segment barrier itself.
    std::vector<int> shardOf_;       //!< per component; -1 = shared
    std::vector<uint32_t> segOf_;    //!< per component; segment ordinal
    std::vector<Segment> segments_;
    std::vector<std::vector<StagedWake>> stagedWakes_; //!< per shard
    std::vector<StagedWake> mergedWakes_; //!< drain/replay scratch
    uint32_t numShards_ = 0;
    unsigned threadsRequested_;      //!< 0 = auto (hardware concurrency)
    unsigned threadsUsed_ = 1;
    bool finalized_ = false;
    int drainSeg_ = -1; //!< segment being drained; -1 outside drains
    unsigned spinBudget_ = 0; //!< effective barrier spin (finalizeShards)

    // Epoch-batched window state (valid while a window runs/replays).
    unsigned epochRequested_;   //!< 0 = auto (model limit); 1 = off
    Cycle epochLimit_ = 1;      //!< model opt-in ceiling (setEpochLimit)
    bool dispatchPending_ = false;
    Cycle winBegin_ = 0;
    Cycle winEnd_ = 0;          //!< 0 = no window active
    /** Per component: bit (c - winBegin_) set if it ticked at window
     *  cycle c. Written only by the owning worker during the parallel
     *  run (shard comps) or the coordinator during replay (shared
     *  comps); read by the replay's early-wake filter and the trim. */
    std::vector<uint64_t> tickedBits_;
    /** Per shard / per shared component: bit c set if any member was
     *  busy() after its cycle-c tick slot — the trim's quiescence scan. */
    std::vector<uint64_t> shardBusyBits_;
    uint64_t serialBusyBits_ = 0;
    /** Per shard: components in registration order (the slice loop). */
    std::vector<std::vector<uint32_t>> shardComps_;
    /** Shared components' registration indices, in order. */
    std::vector<uint32_t> sharedComps_;

    // Measured-cost rebalancing: runDue accumulates an approximate tick
    // cost per shard; finishAccounting() reassigns shards to workers by
    // greedy LPT on the observed costs, so a later run (kernel fusion /
    // multi-launch benches) spreads hot shards across the pool. Purely a
    // performance decision: results never depend on the assignment.
    std::vector<uint32_t> shardWorker_;  //!< shard -> worker
    std::vector<uint64_t> shardCost_;    //!< ticks run per shard

    // Worker pool (threadsUsed_ - 1 threads; the coordinator is worker
    // 0). Release/join are generation-counted: the coordinator bumps
    // goGen_ under poolMutex_ (so condvar waits cannot miss it), workers
    // run their slice of curSeg_ and count into doneCount_. A short
    // spin precedes each condvar wait on multi-core hosts.
    std::vector<std::thread> workers_;
    std::atomic<uint64_t> goGen_{0};
    std::atomic<uint32_t> doneCount_{0};
    std::atomic<uint32_t> curSeg_{0};
    bool stopPool_ = false; //!< written under poolMutex_
    std::mutex poolMutex_;
    std::condition_variable poolCv_; //!< coordinator -> workers
    std::condition_variable doneCv_; //!< last worker -> coordinator
    //! First exception thrown on a worker's slice this release (written
    //! under poolMutex_); the coordinator rethrows it after the join so
    //! fatal()s inside worker ticks propagate exactly like the serial
    //! kernels' instead of terminating the process.
    std::exception_ptr poolError_;

    uint64_t cyclesTicked_ = 0;
    uint64_t cyclesSkipped_ = 0;
    uint64_t flushedTicked_ = 0;
    uint64_t flushedSkipped_ = 0;

    // Perfetto-visible sleep/wake occupancy (TraceSched category).
    Tracer *tracer_ = nullptr;
    std::vector<TraceStream *> schedTrace_;
    std::vector<uint8_t> traceAwake_;
};

} // namespace tta::sim

#endif // TTA_SIM_TICKED_HH
