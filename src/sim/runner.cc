#include "sim/runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>
#include <type_traits>

#include "sim/ticked.hh"

namespace tta::sim {

namespace {

/** FNV-1a over the bytes of a trivially copyable value. */
template <typename T>
void
fnvMix(uint64_t &h, const T &v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    unsigned char bytes[sizeof(T)];
    __builtin_memcpy(bytes, &v, sizeof(T));
    for (unsigned char b : bytes) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Shortest round-trippable decimal form: deterministic for a given
 *  binary, and what makes serial/parallel records byte-comparable. */
std::string
jsonNumber(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

std::string
configDigest(const Config &cfg)
{
    uint64_t h = 0xcbf29ce484222325ull; // FNV offset basis
    fnvMix(h, cfg.numSms);
    fnvMix(h, cfg.maxWarpsPerSm);
    fnvMix(h, cfg.warpSize);
    fnvMix(h, cfg.numRegsPerSm);
    fnvMix(h, cfg.l1SizeBytes);
    fnvMix(h, cfg.l1LatencyCycles);
    fnvMix(h, cfg.l2SizeBytes);
    fnvMix(h, cfg.l2Assoc);
    fnvMix(h, cfg.l2LatencyCycles);
    fnvMix(h, cfg.lineSizeBytes);
    fnvMix(h, cfg.l1MshrEntries);
    fnvMix(h, cfg.l2MshrEntries);
    fnvMix(h, cfg.coreClockMhz);
    fnvMix(h, cfg.memClockMhz);
    fnvMix(h, cfg.dramChannels);
    fnvMix(h, cfg.dramBanksPerChannel);
    fnvMix(h, cfg.dramServiceLatency);
    fnvMix(h, cfg.dramBytesPerMemCycle);
    fnvMix(h, cfg.ttaUnitsPerSm);
    fnvMix(h, cfg.warpBufferWarps);
    fnvMix(h, cfg.intersectionSets);
    fnvMix(h, cfg.rayBoxLatency);
    fnvMix(h, cfg.rayTriLatency);
    fnvMix(h, cfg.intersectionLatencyScale);
    fnvMix(h, cfg.ttaIsolatedMinMax);
    fnvMix(h, cfg.rtaCoalescing);
    fnvMix(h, cfg.rtaArbiterWidth);
    fnvMix(h, cfg.rtaChildPrefetch);
    fnvMix(h, cfg.icntHopLatency);
    fnvMix(h, cfg.icntPorts);
    fnvMix(h, cfg.opUnitCopies);
    fnvMix(h, cfg.rcpUnitCopies);
    fnvMix(h, cfg.perfectNodeFetch);
    fnvMix(h, cfg.perfectMemory);
    fnvMix(h, cfg.accelMode);
    fnvMix(h, cfg.watchdogCycles);
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

void
RunRecord::writeJson(std::ostream &os, bool include_timing) const
{
    os << "{\"name\":\"" << jsonEscape(name) << "\""
       << ",\"config\":\"" << configDigest << "\""
       << ",\"seed\":" << seed << ",\"cycles\":" << cycles;
    if (failed())
        os << ",\"error\":\"" << jsonEscape(error) << "\"";

    os << ",\"values\":{";
    bool first = true;
    for (const auto &[k, v] : values) {
        os << (first ? "" : ",") << "\"" << jsonEscape(k)
           << "\":" << jsonNumber(v);
        first = false;
    }
    os << "},\"counters\":{";
    first = true;
    for (const auto &[k, c] : stats.counters()) {
        os << (first ? "" : ",") << "\"" << jsonEscape(k)
           << "\":" << c.value();
        first = false;
    }
    os << "},\"scalars\":{";
    first = true;
    for (const auto &[k, s] : stats.scalars()) {
        os << (first ? "" : ",") << "\"" << jsonEscape(k)
           << "\":" << jsonNumber(s.value());
        first = false;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[k, hist] : stats.histograms()) {
        os << (first ? "" : ",") << "\"" << jsonEscape(k) << "\":{"
           << "\"count\":" << hist.count()
           << ",\"mean\":" << jsonNumber(hist.mean())
           << ",\"max\":" << jsonNumber(hist.maxValue())
           << ",\"overflow\":" << hist.overflow() << "}";
        first = false;
    }
    os << "}";
    if (include_timing)
        os << ",\"wall_ms\":" << jsonNumber(wallSeconds * 1e3);
    os << "}";
}

std::string
RunRecord::toJson(bool include_timing) const
{
    std::ostringstream os;
    writeJson(os, include_timing);
    return os.str();
}

ExperimentRunner::ExperimentRunner(unsigned threads) : threads_(threads)
{
    // Simulator::hardwareConcurrency() folds the standard's "0 = not
    // computable" escape hatch to one core (and honours the test hook).
    if (threads_ == 0)
        threads_ = Simulator::hardwareConcurrency();
}

unsigned
ExperimentRunner::budgetWorkers(unsigned requested, unsigned sim_threads,
                                unsigned hardware)
{
    if (hardware == 0)
        hardware = 1;
    if (sim_threads == 0)
        sim_threads = hardware; // the threaded kernel's "auto"
    return std::max(1u, std::min(requested, hardware / sim_threads));
}

std::vector<RunRecord>
ExperimentRunner::run(const std::vector<Job> &jobs) const
{
    std::vector<RunRecord> records(jobs.size());
    std::atomic<size_t> next{0};

    auto worker = [&] {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            const Job &job = jobs[i];
            RunRecord &rec = records[i];
            rec.name = job.name;
            rec.configDigest = sim::configDigest(job.config);
            rec.seed = job.seed;
            rec.stats.setTracer(job.tracer.get());
            auto t0 = std::chrono::steady_clock::now();
            try {
                if (job.fn)
                    job.fn(job.config, rec.stats, rec);
                else
                    rec.error = "job has no body";
            } catch (const std::exception &e) {
                rec.error = e.what();
            } catch (...) {
                rec.error = "unknown exception";
            }
            rec.stats.setTracer(nullptr);
            rec.wallSeconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
        }
    };

    unsigned n = static_cast<unsigned>(
        std::min<size_t>(threads_, jobs.size() ? jobs.size() : 1));
    // Each job under the threaded simulation kernel spins up its own
    // worker pool: cap jobs-in-flight so jobs × sim-threads stays within
    // the host's hardware concurrency instead of thrashing it.
    if (Simulator::defaultKernel() == Simulator::Kernel::Threaded) {
        unsigned hw = Simulator::hardwareConcurrency();
        unsigned budgeted =
            budgetWorkers(n, Simulator::defaultSimThreads(), hw);
        if (budgeted < n) {
            std::fprintf(stderr,
                         "runner: clamping --jobs from %u to %u so jobs "
                         "x sim-threads fits %u host threads\n",
                         n, budgeted, hw);
            n = budgeted;
        }
    }
    if (n <= 1) {
        worker();
        return records;
    }
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();
    return records;
}

} // namespace tta::sim
