/**
 * @file
 * Simulator configuration.
 *
 * Defaults follow Table II of the paper (the Vulkan-Sim configuration used
 * in the evaluation). Benches mutate individual fields for sensitivity
 * studies (Fig 14) and limit studies (Fig 17).
 */

#ifndef TTA_SIM_CONFIG_HH
#define TTA_SIM_CONFIG_HH

#include <cstdint>
#include <ostream>
#include <string>

namespace tta::sim {

/** Which accelerator (if any) executes tree traversals. */
enum class AccelMode
{
    BaselineGpu, //!< traversal in software on the SIMT cores
    BaselineRta, //!< fixed-function RTA (ray tracing only)
    Tta,         //!< TTA: modified fixed-function units
    TtaPlus,     //!< TTA+: modular programmable OP units
};

const char *accelModeName(AccelMode mode);

/** GPU + accelerator configuration (Table II defaults). */
struct Config
{
    // --- SIMT core organization -----------------------------------------
    uint32_t numSms = 8;            //!< # Streaming Multiprocessors
    uint32_t maxWarpsPerSm = 32;    //!< resident warp contexts per SM
    uint32_t warpSize = 32;         //!< threads per warp
    uint32_t numRegsPerSm = 32768;  //!< register file capacity

    // --- Memory hierarchy ------------------------------------------------
    uint32_t l1SizeBytes = 64 * 1024;    //!< L1D, fully assoc LRU
    uint32_t l1LatencyCycles = 20;
    uint32_t l2SizeBytes = 3 * 1024 * 1024; //!< unified L2
    uint32_t l2Assoc = 16;
    uint32_t l2LatencyCycles = 160;
    uint32_t lineSizeBytes = 128;        //!< cache line / DRAM burst
    uint32_t l1MshrEntries = 64;
    uint32_t l2MshrEntries = 256;

    // --- Clocks (MHz); compute : icnt : L2 : memory = 1365:1365:1365:3500
    double coreClockMhz = 1365.0;
    double memClockMhz = 3500.0;

    // --- DRAM model --------------------------------------------------------
    uint32_t dramChannels = 4;
    uint32_t dramBanksPerChannel = 8;
    uint32_t dramServiceLatency = 100;  //!< core cycles, bank access time
    /** Bytes transferable per memory-clock cycle per channel. */
    uint32_t dramBytesPerMemCycle = 16;

    // --- RTA / TTA -------------------------------------------------------
    uint32_t ttaUnitsPerSm = 1;       //!< accelerators per SM
    uint32_t warpBufferWarps = 4;     //!< warp buffer size (Fig 14 sweep)
    uint32_t intersectionSets = 4;    //!< parallel intersection unit sets
    uint32_t rayBoxLatency = 13;      //!< fixed-function Ray-Box latency
    uint32_t rayTriLatency = 37;      //!< fixed-function Ray-Tri latency
    /** Extra multiplier on fixed-function intersection latency (Fig 14
     *  evaluates 10x). */
    double intersectionLatencyScale = 1.0;
    /** TTA isolated min/max configuration: 3-cycle query-key test. */
    bool ttaIsolatedMinMax = false;
    /** Merge node requests across rays in the RTA memory scheduler
     *  (Section II-C advantage 3). Off = ablation. */
    bool rtaCoalescing = true;
    /** Node decodes / dispatches the operation arbiter handles per
     *  cycle. */
    uint32_t rtaArbiterWidth = 4;
    /** Prefetch the lines of children pushed by a node test (a one-level
     *  treelet prefetcher, cf. the paper's Fig 17 "Perf. RT" limit and
     *  its citation of Chou et al. [16]). Extension; off by default. */
    bool rtaChildPrefetch = false;
    /** Node-fetch requests the RTA may issue per cycle (Fig 14-style
     *  fetch-bandwidth axis for the wide-node study; 1 = paper model). */
    uint32_t rtaFetchWidth = 1;

    // --- Tree node layout (wide SoA study axis) ---------------------------
    /** BVH children per inner node: 2 = binary 64B layout, 4/8 = wide
     *  struct-of-arrays layout (WideBvhNodeLayout). */
    uint32_t bvhNodeWidth = 2;
    /** Wide nodes use the compressed (quantized-plane) encoding; only
     *  meaningful when bvhNodeWidth > 2. */
    bool bvhQuantized = false;
    /** R-Tree workload serializes the SoA fanout-8 node layout. */
    bool rtreeSoa = false;

    // --- TTA+ --------------------------------------------------------------
    uint32_t icntHopLatency = 1;      //!< crossbar transfer latency
    uint32_t icntPorts = 16;          //!< 16x16 crosspoint switch
    /** Instances of each OP unit type. Table II provisions four
     *  intersection-unit *sets*; Table IV reports the area of one set. */
    uint32_t opUnitCopies = 4;
    uint32_t rcpUnitCopies = 12;      //!< 3 RCPs per set (Table IV) x 4

    // --- Limit-study knobs (Fig 17) ---------------------------------------
    bool perfectNodeFetch = false;    //!< "Perf. RT": zero-latency nodes
    bool perfectMemory = false;       //!< "Perf. Mem": all memory 0-latency

    // --- Which accelerator to use ------------------------------------------
    AccelMode accelMode = AccelMode::BaselineGpu;

    // --- Robustness --------------------------------------------------------
    /** Deadlock watchdog: a full-machine run that has not quiesced after
     *  this many cycles panics with the list of still-busy components
     *  instead of hanging forever. Large enough that no legitimate
     *  workload in this repository comes near it. */
    uint64_t watchdogCycles = 4'000'000'000ull;

    /** Ratio of memory clock to core clock (DRAM bandwidth accounting). */
    double memClockRatio() const { return memClockMhz / coreClockMhz; }

    /** Peak DRAM bytes per *core* cycle across all channels. */
    double
    dramPeakBytesPerCoreCycle() const
    {
        return static_cast<double>(dramBytesPerMemCycle) * dramChannels *
               memClockRatio();
    }

    /** Pretty-print the configuration (Table II style). */
    void print(std::ostream &os) const;
};

} // namespace tta::sim

#endif // TTA_SIM_CONFIG_HH
