#include "sim/ticked.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string_view>

#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace tta::sim {

namespace {

/** Programmatic default-kernel override; -1 = use the environment. */
std::atomic<int> forced_kernel{-1};

// Process-wide telemetry pools (see SchedulerTelemetry in ticked.hh).
std::atomic<uint64_t> g_cycles_ticked{0};
std::atomic<uint64_t> g_cycles_skipped{0};

} // namespace

uint64_t
SchedulerTelemetry::cyclesTicked()
{
    return g_cycles_ticked.load(std::memory_order_relaxed);
}

uint64_t
SchedulerTelemetry::cyclesSkipped()
{
    return g_cycles_skipped.load(std::memory_order_relaxed);
}

double
SchedulerTelemetry::skippedFraction()
{
    uint64_t skipped = cyclesSkipped();
    uint64_t total = cyclesTicked() + skipped;
    return total ? static_cast<double>(skipped) / total : 0.0;
}

void
SchedulerTelemetry::reset()
{
    g_cycles_ticked.store(0, std::memory_order_relaxed);
    g_cycles_skipped.store(0, std::memory_order_relaxed);
}

void
TickedComponent::wake(Cycle at)
{
    if (sched_)
        sched_->wake(this, at);
}

void
TickedComponent::wakeNow()
{
    if (sched_)
        sched_->wake(this, sched_->cycle());
}

Simulator::Kernel
Simulator::defaultKernel()
{
    int forced = forced_kernel.load(std::memory_order_relaxed);
    if (forced >= 0)
        return static_cast<Kernel>(forced);
    static const Kernel env_kernel = [] {
        const char *env = std::getenv("TTA_SIM_KERNEL");
        if (!env || !*env)
            return Kernel::EventDriven;
        std::string_view spec(env);
        if (spec == "polling")
            return Kernel::Polling;
        if (spec == "event")
            return Kernel::EventDriven;
        fatal("TTA_SIM_KERNEL must be 'event' or 'polling', got '%s'", env);
    }();
    return env_kernel;
}

void
Simulator::setDefaultKernel(Kernel kernel)
{
    forced_kernel.store(static_cast<int>(kernel), std::memory_order_relaxed);
}

void
Simulator::resetDefaultKernel()
{
    forced_kernel.store(-1, std::memory_order_relaxed);
}

Simulator::Simulator(StatRegistry &stats)
    : stats_(&stats), kernel_(defaultKernel()),
      watchdog_(Config{}.watchdogCycles), tracer_(stats.tracer())
{}

void
Simulator::add(TickedComponent *comp)
{
    comp->sched_ = this;
    comp->schedIndex_ = static_cast<uint32_t>(components_.size());
    components_.push_back(comp);
    nextDue_.push_back(kAsleep);
    pending_.emplace_back();
    traceAwake_.push_back(0);
    schedTrace_.push_back(
        tracer_ ? tracer_->stream("sched." + comp->name(), TraceSched)
                : nullptr);
    if (kernel_ != Kernel::Polling)
        scheduleAt(comp->schedIndex_, cycle_);
}

void
Simulator::syncSchedTrace(uint32_t index)
{
    TraceStream *ts = schedTrace_[index];
    if (!ts)
        return;
    uint8_t awake = nextDue_[index] != kAsleep ? 1 : 0;
    if (awake == traceAwake_[index])
        return;
    traceAwake_[index] = awake;
    ts->counter(cycle_, "awake", awake);
}

void
Simulator::scheduleAt(uint32_t index, Cycle at)
{
    // Every wake / self-schedule is a firm tick request; a tick at cycle
    // c consumes exactly the request at c, so a request can never be
    // lost to an earlier tick that returns kAsleep (it fires later as a
    // harmless no-op if the work turned out to be done already).
    auto &reqs = pending_[index];
    auto it = std::lower_bound(reqs.begin(), reqs.end(), at);
    if (it != reqs.end() && *it == at)
        return; // already requested for that cycle
    reqs.insert(it, at);
    if (nextDue_[index] == kAsleep)
        ++awake_;
    if (at < nextDue_[index])
        nextDue_[index] = at; // cached reqs.front()
    syncSchedTrace(index);
}

void
Simulator::wake(TickedComponent *comp, Cycle at)
{
    panic_if(comp->sched_ != this, "wake() for unregistered component %s",
             comp->name().c_str());
    if (kernel_ == Kernel::Polling)
        return; // everything ticks every cycle anyway
    uint32_t index = comp->schedIndex_;
    if (at < cycle_)
        at = cycle_;
    // Same-cycle wakes resolve by registration order against the
    // component being ticked right now: targets at or before the scan
    // position already ran this cycle and see the producer's update next
    // cycle, later targets still this cycle — matching the polling
    // kernel's in-order scan.
    if (at == cycle_ && inCycle_ && index <= scanPos_)
        ++at;
    // Settle skipped-cycle accounting against pre-mutation state (the
    // producer calls wake() before touching shared state). Wakes further
    // out than the next cycle (not used by the machine models) must not
    // account ahead of cycles the target may still tick through.
    if (at <= cycle_ + 1)
        comp->catchUp(at);
    scheduleAt(index, at);
}

void
Simulator::step()
{
    if (kernel_ == Kernel::Polling) {
        for (auto *comp : components_)
            comp->tick(cycle_);
        ++cycle_;
        ++cyclesTicked_;
        return;
    }
    inCycle_ = true;
    for (scanPos_ = 0; scanPos_ < components_.size(); ++scanPos_) {
        uint32_t index = static_cast<uint32_t>(scanPos_);
        if (nextDue_[index] != cycle_)
            continue;
        auto &reqs = pending_[index];
        reqs.erase(reqs.begin()); // consume exactly this cycle's request
        nextDue_[index] = reqs.empty() ? kAsleep : reqs.front();
        if (nextDue_[index] == kAsleep)
            --awake_;
        TickedComponent *comp = components_[index];
        comp->tick(cycle_);
        Cycle next = comp->nextEventCycle(cycle_);
        if (next != kAsleep)
            scheduleAt(index, next <= cycle_ ? cycle_ + 1 : next);
        syncSchedTrace(index);
    }
    inCycle_ = false;
    ++cycle_;
    ++cyclesTicked_;
}

Cycle
Simulator::nextDueCycle() const
{
    Cycle best = kAsleep;
    for (Cycle due : nextDue_)
        best = std::min(best, due);
    return best;
}

bool
Simulator::advance(Cycle horizon)
{
    if (kernel_ == Kernel::Polling) {
        if (!anyBusy())
            return false;
        step();
        return true;
    }
    Cycle due = nextDueCycle();
    if (due == kAsleep)
        return false;
    if (due > horizon) {
        // Nothing to do before the watchdog's horizon: hand the clock to
        // the caller's expiry check without processing anything.
        cyclesSkipped_ += horizon + 1 - cycle_;
        cycle_ = horizon + 1;
        return true;
    }
    cyclesSkipped_ += due - cycle_;
    cycle_ = due;
    step();
    return true;
}

Cycle
Simulator::runToQuiescence(Cycle max_cycles)
{
    if (max_cycles == 0)
        max_cycles = watchdog_;
    Cycle start = cycle_;
    while (anyBusy()) {
        if (!advance(start + max_cycles - 1)) {
            panic("simulation stalled: component(s) busy with no "
                  "scheduled wakeup; still-busy components: [%s]",
                  busyComponentNames().c_str());
        }
        if (cycle_ - start >= max_cycles) {
            panic("simulation did not quiesce within %llu cycles; "
                  "still-busy components: [%s]",
                  static_cast<unsigned long long>(max_cycles),
                  busyComponentNames().c_str());
        }
    }
    finishAccounting();
    return cycle_ - start;
}

void
Simulator::finishAccounting()
{
    for (auto *comp : components_)
        comp->catchUp(cycle_);
    flushTelemetry();
}

void
Simulator::flushTelemetry()
{
    g_cycles_ticked.fetch_add(cyclesTicked_ - flushedTicked_,
                              std::memory_order_relaxed);
    g_cycles_skipped.fetch_add(cyclesSkipped_ - flushedSkipped_,
                               std::memory_order_relaxed);
    flushedTicked_ = cyclesTicked_;
    flushedSkipped_ = cyclesSkipped_;
}

std::string
Simulator::busyComponentNames() const
{
    std::string names;
    for (const auto *comp : components_) {
        if (!comp->busy())
            continue;
        if (!names.empty())
            names += ", ";
        names += comp->name();
    }
    return names;
}

} // namespace tta::sim
