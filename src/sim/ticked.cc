#include "sim/ticked.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string_view>

#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace tta::sim {

namespace {

/** Programmatic default-kernel override; -1 = use the environment. */
std::atomic<int> forced_kernel{-1};
/** Programmatic default-thread-count override; -1 = use the environment. */
std::atomic<int> forced_threads{-1};

// Process-wide telemetry pools (see SchedulerTelemetry in ticked.hh).
std::atomic<uint64_t> g_cycles_ticked{0};
std::atomic<uint64_t> g_cycles_skipped{0};

// Thread-local tick context. Replaces the old inCycle_/scanPos_ members:
// the wake-ordering rule needs to know which component the *calling
// thread* is ticking, and under the threaded kernel several components
// tick concurrently. The serial kernels use the same context (with
// shard = -1), so the ordering rule is one piece of code for all three.
thread_local int tl_shard = -1;        //!< shard being ticked; -1 = none
thread_local bool tl_in_tick = false;  //!< inside a component's tick
thread_local uint32_t tl_index = 0;    //!< index of the ticking component

/** Brief spin before a condvar wait; pointless on a single-core host. */
unsigned
spinBudget()
{
    static const unsigned budget =
        std::thread::hardware_concurrency() > 1 ? 20000 : 0;
    return budget;
}

} // namespace

uint64_t
SchedulerTelemetry::cyclesTicked()
{
    return g_cycles_ticked.load(std::memory_order_relaxed);
}

uint64_t
SchedulerTelemetry::cyclesSkipped()
{
    return g_cycles_skipped.load(std::memory_order_relaxed);
}

double
SchedulerTelemetry::skippedFraction()
{
    uint64_t skipped = cyclesSkipped();
    uint64_t total = cyclesTicked() + skipped;
    return total ? static_cast<double>(skipped) / total : 0.0;
}

void
SchedulerTelemetry::reset()
{
    g_cycles_ticked.store(0, std::memory_order_relaxed);
    g_cycles_skipped.store(0, std::memory_order_relaxed);
}

void
TickedComponent::wake(Cycle at)
{
    if (sched_)
        sched_->wake(this, at);
}

void
TickedComponent::wakeNow()
{
    if (sched_)
        sched_->wake(this, sched_->cycle());
}

Simulator::Kernel
Simulator::defaultKernel()
{
    int forced = forced_kernel.load(std::memory_order_relaxed);
    if (forced >= 0)
        return static_cast<Kernel>(forced);
    static const Kernel env_kernel = [] {
        const char *env = std::getenv("TTA_SIM_KERNEL");
        if (!env || !*env)
            return Kernel::EventDriven;
        std::string_view spec(env);
        if (spec == "polling")
            return Kernel::Polling;
        if (spec == "event")
            return Kernel::EventDriven;
        if (spec == "threaded")
            return Kernel::Threaded;
        fatal("TTA_SIM_KERNEL must be 'event', 'polling' or 'threaded', "
              "got '%s'", env);
    }();
    return env_kernel;
}

void
Simulator::setDefaultKernel(Kernel kernel)
{
    forced_kernel.store(static_cast<int>(kernel), std::memory_order_relaxed);
}

void
Simulator::resetDefaultKernel()
{
    forced_kernel.store(-1, std::memory_order_relaxed);
}

unsigned
Simulator::defaultSimThreads()
{
    int forced = forced_threads.load(std::memory_order_relaxed);
    if (forced >= 0)
        return static_cast<unsigned>(forced);
    static const unsigned env_threads = [] {
        const char *env = std::getenv("TTA_SIM_THREADS");
        if (!env || !*env)
            return 0u; // auto
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end == env || *end)
            fatal("TTA_SIM_THREADS must be a number, got '%s'", env);
        return static_cast<unsigned>(v);
    }();
    return env_threads;
}

void
Simulator::setDefaultSimThreads(unsigned threads)
{
    forced_threads.store(static_cast<int>(threads),
                         std::memory_order_relaxed);
}

void
Simulator::resetDefaultSimThreads()
{
    forced_threads.store(-1, std::memory_order_relaxed);
}

int
Simulator::currentShard()
{
    return tl_shard;
}

uint32_t
Simulator::currentIndex()
{
    return tl_index;
}

Simulator::ReplayGuard::ReplayGuard(uint32_t caller_index)
    : savedShard_(tl_shard), savedInTick_(tl_in_tick), savedIndex_(tl_index)
{
    // Replay runs on the coordinator: shard -1 so nested sendRequest
    // calls execute directly instead of re-staging.
    tl_shard = -1;
    tl_in_tick = true;
    tl_index = caller_index;
}

Simulator::ReplayGuard::~ReplayGuard()
{
    tl_shard = savedShard_;
    tl_in_tick = savedInTick_;
    tl_index = savedIndex_;
}

Simulator::Simulator(StatRegistry &stats)
    : stats_(&stats), kernel_(defaultKernel()),
      watchdog_(Config{}.watchdogCycles),
      threadsRequested_(defaultSimThreads()), tracer_(stats.tracer())
{}

Simulator::~Simulator()
{
    stopWorkers();
}

void
Simulator::add(TickedComponent *comp, int shard)
{
    panic_if(shard < kSharedShard, "bad shard id %d for component %s",
             shard, comp->name().c_str());
    comp->sched_ = this;
    comp->schedIndex_ = static_cast<uint32_t>(components_.size());
    components_.push_back(comp);
    shardOf_.push_back(shard);
    nextDue_.push_back(kAsleep);
    pending_.emplace_back();
    traceAwake_.push_back(0);
    schedTrace_.push_back(
        tracer_ ? tracer_->stream("sched." + comp->name(), TraceSched)
                : nullptr);
    finalized_ = false; // segments must be re-derived
    if (kernel_ != Kernel::Polling)
        scheduleAt(comp->schedIndex_, cycle_);
}

void
Simulator::finalizeShards()
{
    if (finalized_)
        return;
    segments_.clear();
    segOf_.assign(components_.size(), 0);
    numShards_ = 0;
    for (size_t i = 0; i < components_.size(); ++i) {
        bool parallel = shardOf_[i] >= 0;
        if (parallel)
            numShards_ = std::max(numShards_,
                                  static_cast<uint32_t>(shardOf_[i]) + 1);
        if (segments_.empty() || segments_.back().parallel != parallel) {
            segments_.push_back({static_cast<uint32_t>(i),
                                 static_cast<uint32_t>(i) + 1, parallel});
        } else {
            segments_.back().end = static_cast<uint32_t>(i) + 1;
        }
        segOf_[i] = static_cast<uint32_t>(segments_.size()) - 1;
    }
    stagedWakes_.resize(numShards_);
    finalized_ = true;

    if (kernel_ != Kernel::Threaded || numShards_ == 0)
        return;
    // Size the pool once (later add()s re-derive segments but keep the
    // pool): requested threads, auto = hardware concurrency, clamped to
    // the shard count — extra threads would only ever idle.
    if (workers_.empty() && threadsUsed_ == 1) {
        unsigned want = threadsRequested_;
        if (want == 0) {
            want = std::thread::hardware_concurrency();
            if (want == 0)
                want = 1;
        }
        threadsUsed_ = std::max(1u, std::min(want, numShards_));
        for (unsigned w = 1; w < threadsUsed_; ++w)
            workers_.emplace_back([this, w] { workerLoop(w); });
    }
}

void
Simulator::stopWorkers()
{
    if (workers_.empty())
        return;
    {
        std::lock_guard<std::mutex> lock(poolMutex_);
        stopPool_ = true;
        goGen_.fetch_add(1, std::memory_order_release);
    }
    poolCv_.notify_all();
    for (auto &th : workers_)
        th.join();
    workers_.clear();
}

void
Simulator::workerLoop(uint32_t worker)
{
    uint64_t seen = 0;
    for (;;) {
        // Wait for the next release (goGen_ advance). Spin briefly on
        // multi-core hosts, then block on the condvar.
        uint64_t gen = goGen_.load(std::memory_order_acquire);
        for (unsigned spin = spinBudget(); gen == seen && spin; --spin)
            gen = goGen_.load(std::memory_order_acquire);
        if (gen == seen) {
            std::unique_lock<std::mutex> lock(poolMutex_);
            poolCv_.wait(lock, [&] {
                return goGen_.load(std::memory_order_relaxed) != seen ||
                       stopPool_;
            });
            if (stopPool_)
                return;
            gen = goGen_.load(std::memory_order_relaxed);
        }
        seen = gen;
        {
            std::lock_guard<std::mutex> lock(poolMutex_);
            if (stopPool_)
                return;
        }
        runWorkerSlice(curSeg_.load(std::memory_order_relaxed), worker);
        if (doneCount_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            threadsUsed_ - 1) {
            std::lock_guard<std::mutex> lock(poolMutex_);
            doneCv_.notify_one();
        }
    }
}

void
Simulator::runWorkerSlice(uint32_t seg, uint32_t worker)
{
    const Segment &s = segments_[seg];
    for (uint32_t i = s.begin; i < s.end; ++i) {
        // Ownership check first: nextDue_[i] may only be examined by the
        // worker that owns i's shard, since the owner writes it mid-tick
        // (request consume, re-arm) while other workers run.
        uint32_t shard = static_cast<uint32_t>(shardOf_[i]);
        if (shard % threadsUsed_ != worker)
            continue;
        if (nextDue_[i] != cycle_)
            continue;
        runDue(i, shardOf_[i]);
    }
}

void
Simulator::syncSchedTrace(uint32_t index)
{
    TraceStream *ts = schedTrace_[index];
    if (!ts)
        return;
    uint8_t awake = nextDue_[index] != kAsleep ? 1 : 0;
    if (awake == traceAwake_[index])
        return;
    traceAwake_[index] = awake;
    ts->counter(cycle_, "awake", awake);
}

void
Simulator::scheduleAt(uint32_t index, Cycle at)
{
    // Every wake / self-schedule is a firm tick request; a tick at cycle
    // c consumes exactly the request at c, so a request can never be
    // lost to an earlier tick that returns kAsleep (it fires later as a
    // harmless no-op if the work turned out to be done already).
    auto &reqs = pending_[index];
    auto it = std::lower_bound(reqs.begin(), reqs.end(), at);
    if (it != reqs.end() && *it == at)
        return; // already requested for that cycle
    reqs.insert(it, at);
    if (at < nextDue_[index])
        nextDue_[index] = at; // cached reqs.front()
    syncSchedTrace(index);
}

void
Simulator::wake(TickedComponent *comp, Cycle at)
{
    panic_if(comp->sched_ != this, "wake() for unregistered component %s",
             comp->name().c_str());
    if (kernel_ == Kernel::Polling)
        return; // everything ticks every cycle anyway
    uint32_t index = comp->schedIndex_;
    // Threaded kernel: a wake crossing shards is staged by the calling
    // worker and replayed at the barrier after the segment, in caller
    // registration order, so delivery order never depends on thread
    // interleaving. Same-shard (and coordinator-issued) wakes take the
    // serial path below unchanged.
    if (tl_shard >= 0 && kernel_ == Kernel::Threaded &&
        shardOf_[index] != tl_shard) {
        stagedWakes_[tl_shard].push_back({tl_index, index, at});
        return;
    }
    if (at < cycle_)
        at = cycle_;
    // Same-cycle wakes resolve by registration order against the
    // component being ticked right now: targets at or before the scan
    // position already ran this cycle and see the producer's update next
    // cycle, later targets still this cycle — matching the polling
    // kernel's in-order scan.
    if (at == cycle_ && tl_in_tick && index <= tl_index)
        ++at;
    // A replayed cross-shard wake that lands on the current cycle can
    // only be honored if its target runs in a *later* segment (the
    // memory system after the core segment, the accelerators after the
    // memory system). A same-cycle target in an already-finished segment
    // could never be delivered the way the serial scan would — that is a
    // machine-model ordering bug, not a scheduling decision.
    if (at == cycle_ && drainSeg_ >= 0 &&
        segOf_[index] <= static_cast<uint32_t>(drainSeg_)) {
        panic("staged same-cycle wake of %s (segment %u) cannot be "
              "delivered after segment %d already ran; cross-shard "
              "producers must target later-ordered consumers",
              comp->name().c_str(), segOf_[index], drainSeg_);
    }
    // Settle skipped-cycle accounting against pre-mutation state (the
    // producer calls wake() before touching shared state). Wakes further
    // out than the next cycle (not used by the machine models) must not
    // account ahead of cycles the target may still tick through.
    if (at <= cycle_ + 1)
        comp->catchUp(at);
    scheduleAt(index, at);
}

void
Simulator::runDue(uint32_t index, int shard)
{
    auto &reqs = pending_[index];
    reqs.erase(reqs.begin()); // consume exactly this cycle's request
    nextDue_[index] = reqs.empty() ? kAsleep : reqs.front();
    TickedComponent *comp = components_[index];
    tl_shard = shard;
    tl_in_tick = true;
    tl_index = index;
    comp->tick(cycle_);
    Cycle next = comp->nextEventCycle(cycle_);
    if (next != kAsleep)
        scheduleAt(index, next <= cycle_ ? cycle_ + 1 : next);
    syncSchedTrace(index);
    tl_in_tick = false;
    tl_shard = -1;
}

void
Simulator::drainSegment(uint32_t seg)
{
    drainSeg_ = static_cast<int>(seg);
    // Generic staged wakes first, merged across shards in caller
    // registration order (stable within a shard, and shards never share
    // a caller, so a stable sort reproduces the serial call order).
    size_t total = 0;
    for (const auto &v : stagedWakes_)
        total += v.size();
    if (total) {
        std::vector<StagedWake> merged;
        merged.reserve(total);
        for (auto &v : stagedWakes_) {
            merged.insert(merged.end(), v.begin(), v.end());
            v.clear();
        }
        std::stable_sort(merged.begin(), merged.end(),
                         [](const StagedWake &a, const StagedWake &b) {
                             return a.callerIndex < b.callerIndex;
                         });
        for (const StagedWake &w : merged) {
            ReplayGuard guard(w.callerIndex);
            wake(components_[w.targetIndex], w.at);
        }
    }
    // Then component-level staging buffers (e.g. the memory system's
    // request queues), in registration order.
    for (uint32_t i = 0; i < components_.size(); ++i) {
        if (shardOf_[i] == kSharedShard)
            components_[i]->drainStaged(cycle_);
    }
    drainSeg_ = -1;
}

void
Simulator::runParallelSegment(uint32_t seg)
{
    const Segment &s = segments_[seg];
    uint32_t due = 0;
    for (uint32_t i = s.begin; i < s.end; ++i)
        due += nextDue_[i] == cycle_ ? 1 : 0;
    if (due == 0)
        return; // nothing ticked, so nothing can have been staged
    if (threadsUsed_ == 1 || due == 1) {
        // Not worth a barrier round-trip; the coordinator inlines the
        // due components with the tick context still set to their
        // shards, so staging behaves identically to the pooled path.
        for (uint32_t i = s.begin; i < s.end; ++i) {
            if (nextDue_[i] == cycle_)
                runDue(i, shardOf_[i]);
        }
    } else {
        curSeg_.store(seg, std::memory_order_relaxed);
        doneCount_.store(0, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(poolMutex_);
            goGen_.fetch_add(1, std::memory_order_release);
        }
        poolCv_.notify_all();
        runWorkerSlice(seg, 0);
        uint32_t target = threadsUsed_ - 1;
        uint32_t done = doneCount_.load(std::memory_order_acquire);
        for (unsigned spin = spinBudget(); done != target && spin; --spin)
            done = doneCount_.load(std::memory_order_acquire);
        if (done != target) {
            std::unique_lock<std::mutex> lock(poolMutex_);
            doneCv_.wait(lock, [&] {
                return doneCount_.load(std::memory_order_acquire) ==
                       target;
            });
        }
    }
    drainSegment(seg);
}

void
Simulator::stepThreaded()
{
    for (uint32_t seg = 0; seg < segments_.size(); ++seg) {
        const Segment &s = segments_[seg];
        if (s.parallel) {
            runParallelSegment(seg);
            continue;
        }
        for (uint32_t i = s.begin; i < s.end; ++i) {
            if (nextDue_[i] == cycle_)
                runDue(i, kSharedShard);
        }
    }
}

void
Simulator::step()
{
    if (kernel_ == Kernel::Polling) {
        for (auto *comp : components_)
            comp->tick(cycle_);
        ++cycle_;
        ++cyclesTicked_;
        return;
    }
    finalizeShards();
    if (kernel_ == Kernel::Threaded) {
        stepThreaded();
    } else {
        for (uint32_t i = 0; i < components_.size(); ++i) {
            if (nextDue_[i] == cycle_)
                runDue(i, kSharedShard);
        }
    }
    ++cycle_;
    ++cyclesTicked_;
}

Cycle
Simulator::nextDueCycle() const
{
    Cycle best = kAsleep;
    for (Cycle due : nextDue_)
        best = std::min(best, due);
    return best;
}

uint32_t
Simulator::awakeComponents() const
{
    uint32_t n = 0;
    for (Cycle due : nextDue_)
        n += due != kAsleep ? 1 : 0;
    return n;
}

bool
Simulator::advance(Cycle horizon)
{
    if (kernel_ == Kernel::Polling) {
        if (!anyBusy())
            return false;
        step();
        return true;
    }
    Cycle due = nextDueCycle();
    if (due == kAsleep)
        return false;
    if (due > horizon) {
        // Nothing to do before the watchdog's horizon: hand the clock to
        // the caller's expiry check without processing anything.
        cyclesSkipped_ += horizon + 1 - cycle_;
        cycle_ = horizon + 1;
        return true;
    }
    cyclesSkipped_ += due - cycle_;
    cycle_ = due;
    step();
    return true;
}

Cycle
Simulator::runToQuiescence(Cycle max_cycles)
{
    if (max_cycles == 0)
        max_cycles = watchdog_;
    Cycle start = cycle_;
    while (anyBusy()) {
        if (!advance(start + max_cycles - 1)) {
            panic("simulation stalled: component(s) busy with no "
                  "scheduled wakeup; still-busy components: [%s]",
                  busyComponentNames().c_str());
        }
        if (cycle_ - start >= max_cycles) {
            panic("simulation did not quiesce within %llu cycles; "
                  "still-busy components: [%s]",
                  static_cast<unsigned long long>(max_cycles),
                  busyComponentNames().c_str());
        }
    }
    finishAccounting();
    return cycle_ - start;
}

void
Simulator::finishAccounting()
{
    for (auto *comp : components_)
        comp->catchUp(cycle_);
    flushTelemetry();
}

void
Simulator::flushTelemetry()
{
    g_cycles_ticked.fetch_add(cyclesTicked_ - flushedTicked_,
                              std::memory_order_relaxed);
    g_cycles_skipped.fetch_add(cyclesSkipped_ - flushedSkipped_,
                               std::memory_order_relaxed);
    flushedTicked_ = cyclesTicked_;
    flushedSkipped_ = cyclesSkipped_;
}

std::string
Simulator::busyComponentNames() const
{
    std::string names;
    for (const auto *comp : components_) {
        if (!comp->busy())
            continue;
        if (!names.empty())
            names += ", ";
        names += comp->name();
    }
    return names;
}

} // namespace tta::sim
