#include "sim/ticked.hh"

#include "sim/logging.hh"

namespace tta::sim {

Cycle
Simulator::runToQuiescence(Cycle max_cycles)
{
    Cycle start = cycle_;
    while (anyBusy()) {
        step();
        if (cycle_ - start >= max_cycles) {
            panic("simulation did not quiesce within %llu cycles; "
                  "still-busy components: [%s]",
                  static_cast<unsigned long long>(max_cycles),
                  busyComponentNames().c_str());
        }
    }
    return cycle_ - start;
}

std::string
Simulator::busyComponentNames() const
{
    std::string names;
    for (const auto *comp : components_) {
        if (!comp->busy())
            continue;
        if (!names.empty())
            names += ", ";
        names += comp->name();
    }
    return names;
}

} // namespace tta::sim
