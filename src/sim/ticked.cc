#include "sim/ticked.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string_view>

#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace tta::sim {

namespace {

/** Programmatic default-kernel override; -1 = use the environment. */
std::atomic<int> forced_kernel{-1};
/** Programmatic default-thread-count override; -1 = use the environment. */
std::atomic<int> forced_threads{-1};
/** Programmatic default-epoch override; -1 = use the environment. */
std::atomic<int> forced_epoch{-1};
/** Test hook replacing the raw hardware_concurrency() probe. */
std::atomic<unsigned (*)()> hw_probe_hook{nullptr};

// Process-wide telemetry pools (see SchedulerTelemetry in ticked.hh).
std::atomic<uint64_t> g_cycles_ticked{0};
std::atomic<uint64_t> g_cycles_skipped{0};

// Thread-local tick context. Replaces the old inCycle_/scanPos_ members:
// the wake-ordering rule needs to know which component the *calling
// thread* is ticking, and under the threaded kernel several components
// tick concurrently. The serial kernels use the same context (with
// shard = -1), so the ordering rule is one piece of code for all three.
// tl_cycle carries the cycle the in-progress tick executes at: inside an
// epoch window shards run ahead of the parked global clock, so "now" for
// wake resolution is the tick's cycle, never Simulator::cycle().
thread_local int tl_shard = -1;        //!< shard being ticked; -1 = none
thread_local bool tl_in_tick = false;  //!< inside a component's tick
thread_local uint32_t tl_index = 0;    //!< index of the ticking component
thread_local Cycle tl_cycle = 0;       //!< cycle of the in-progress tick
thread_local Cycle tl_epoch_end = 0;   //!< window end; 0 = no window

/** curSeg_ sentinel: the pool release is an epoch-window slice, not a
 *  single parallel segment. */
constexpr uint32_t kWindowSeg = ~uint32_t{0};

/** Hard ceiling on the epoch size: the window bookkeeping (per-cycle
 *  tick and busy bits) packs into one uint64_t per component/shard. */
constexpr Cycle kMaxEpoch = 64;

} // namespace

uint64_t
SchedulerTelemetry::cyclesTicked()
{
    return g_cycles_ticked.load(std::memory_order_relaxed);
}

uint64_t
SchedulerTelemetry::cyclesSkipped()
{
    return g_cycles_skipped.load(std::memory_order_relaxed);
}

double
SchedulerTelemetry::skippedFraction()
{
    uint64_t skipped = cyclesSkipped();
    uint64_t total = cyclesTicked() + skipped;
    return total ? static_cast<double>(skipped) / total : 0.0;
}

void
SchedulerTelemetry::reset()
{
    g_cycles_ticked.store(0, std::memory_order_relaxed);
    g_cycles_skipped.store(0, std::memory_order_relaxed);
}

void
TickedComponent::wake(Cycle at)
{
    if (sched_)
        sched_->wake(this, at);
}

void
TickedComponent::wakeNow()
{
    // Cycle 0 clamps to the caller's effective "now" inside wake():
    // the in-progress tick's cycle mid-tick (which may be ahead of the
    // parked global clock inside an epoch window), the global clock
    // otherwise.
    if (sched_)
        sched_->wake(this, 0);
}

void
TickedComponent::wakeHint(Cycle at)
{
    if (sched_)
        sched_->wake(this, at, /*hint=*/true);
}

Simulator::Kernel
Simulator::defaultKernel()
{
    int forced = forced_kernel.load(std::memory_order_relaxed);
    if (forced >= 0)
        return static_cast<Kernel>(forced);
    static const Kernel env_kernel = [] {
        const char *env = std::getenv("TTA_SIM_KERNEL");
        if (!env || !*env)
            return Kernel::EventDriven;
        std::string_view spec(env);
        if (spec == "polling")
            return Kernel::Polling;
        if (spec == "event")
            return Kernel::EventDriven;
        if (spec == "threaded")
            return Kernel::Threaded;
        fatal("TTA_SIM_KERNEL must be 'event', 'polling' or 'threaded', "
              "got '%s'", env);
    }();
    return env_kernel;
}

void
Simulator::setDefaultKernel(Kernel kernel)
{
    forced_kernel.store(static_cast<int>(kernel), std::memory_order_relaxed);
}

void
Simulator::resetDefaultKernel()
{
    forced_kernel.store(-1, std::memory_order_relaxed);
}

unsigned
Simulator::defaultSimThreads()
{
    int forced = forced_threads.load(std::memory_order_relaxed);
    if (forced >= 0)
        return static_cast<unsigned>(forced);
    static const unsigned env_threads = [] {
        const char *env = std::getenv("TTA_SIM_THREADS");
        if (!env || !*env)
            return 0u; // auto
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end == env || *end)
            fatal("TTA_SIM_THREADS must be a number, got '%s'", env);
        return static_cast<unsigned>(v);
    }();
    return env_threads;
}

void
Simulator::setDefaultSimThreads(unsigned threads)
{
    forced_threads.store(static_cast<int>(threads),
                         std::memory_order_relaxed);
}

void
Simulator::resetDefaultSimThreads()
{
    forced_threads.store(-1, std::memory_order_relaxed);
}

unsigned
Simulator::defaultSimEpoch()
{
    int forced = forced_epoch.load(std::memory_order_relaxed);
    if (forced >= 0)
        return static_cast<unsigned>(forced);
    static const unsigned env_epoch = [] {
        const char *env = std::getenv("TTA_SIM_EPOCH");
        if (!env || !*env)
            return 0u; // auto: the machine model's epoch limit
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end == env || *end)
            fatal("TTA_SIM_EPOCH must be a number, got '%s'", env);
        return static_cast<unsigned>(v);
    }();
    return env_epoch;
}

void
Simulator::setDefaultSimEpoch(unsigned epoch)
{
    forced_epoch.store(static_cast<int>(epoch), std::memory_order_relaxed);
}

void
Simulator::resetDefaultSimEpoch()
{
    forced_epoch.store(-1, std::memory_order_relaxed);
}

unsigned
Simulator::hardwareConcurrency()
{
    unsigned (*hook)() = hw_probe_hook.load(std::memory_order_relaxed);
    unsigned v = hook ? hook() : std::thread::hardware_concurrency();
    // The standard permits a 0 return ("not computable"); treating that
    // as one core keeps every consumer (pool sizing, jobs clamps, spin
    // decisions) out of the degenerate zero-thread regime.
    return v ? v : 1;
}

void
Simulator::setHardwareConcurrencyHookForTest(unsigned (*probe)())
{
    hw_probe_hook.store(probe, std::memory_order_relaxed);
}

unsigned
Simulator::defaultSpinBudget()
{
    // The env override is parsed once; the hardware fallback is probed
    // per call so the test hook can steer it.
    static const long env_spin = [&]() -> long {
        const char *env = std::getenv("TTA_SIM_SPIN");
        if (!env || !*env)
            return -1;
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end == env || *end)
            fatal("TTA_SIM_SPIN must be a number, got '%s'", env);
        return static_cast<long>(v);
    }();
    if (env_spin >= 0)
        return static_cast<unsigned>(env_spin);
    // Spinning is pointless on a single-core host: the spinner occupies
    // the very core the other participant needs.
    return hardwareConcurrency() > 1 ? 20000 : 0;
}

int
Simulator::currentShard()
{
    return tl_shard;
}

uint32_t
Simulator::currentIndex()
{
    return tl_index;
}

Cycle
Simulator::currentTickCycle()
{
    return tl_cycle;
}

Cycle
Simulator::currentEpochEnd()
{
    return tl_epoch_end;
}

Simulator::ReplayGuard::ReplayGuard(uint32_t caller_index)
    : savedShard_(tl_shard), savedInTick_(tl_in_tick), savedIndex_(tl_index)
{
    // Replay runs on the coordinator: shard -1 so nested sendRequest
    // calls execute directly instead of re-staging.
    tl_shard = -1;
    tl_in_tick = true;
    tl_index = caller_index;
}

Simulator::ReplayGuard::~ReplayGuard()
{
    tl_shard = savedShard_;
    tl_in_tick = savedInTick_;
    tl_index = savedIndex_;
}

Simulator::Simulator(StatRegistry &stats)
    : stats_(&stats), kernel_(defaultKernel()),
      watchdog_(Config{}.watchdogCycles),
      threadsRequested_(defaultSimThreads()),
      epochRequested_(defaultSimEpoch()), tracer_(stats.tracer())
{}

Simulator::~Simulator()
{
    stopWorkers();
}

void
Simulator::add(TickedComponent *comp, int shard)
{
    panic_if(shard < kSharedShard, "bad shard id %d for component %s",
             shard, comp->name().c_str());
    comp->sched_ = this;
    comp->schedIndex_ = static_cast<uint32_t>(components_.size());
    components_.push_back(comp);
    shardOf_.push_back(shard);
    nextDue_.push_back(kAsleep);
    pending_.emplace_back();
    traceAwake_.push_back(0);
    schedTrace_.push_back(
        tracer_ ? tracer_->stream("sched." + comp->name(), TraceSched)
                : nullptr);
    finalized_ = false; // segments must be re-derived
    if (kernel_ != Kernel::Polling)
        scheduleAt(comp->schedIndex_, cycle_);
}

void
Simulator::finalizeShards()
{
    if (finalized_)
        return;
    segments_.clear();
    segOf_.assign(components_.size(), 0);
    numShards_ = 0;
    for (size_t i = 0; i < components_.size(); ++i) {
        bool parallel = shardOf_[i] >= 0;
        if (parallel)
            numShards_ = std::max(numShards_,
                                  static_cast<uint32_t>(shardOf_[i]) + 1);
        if (segments_.empty() || segments_.back().parallel != parallel) {
            segments_.push_back({static_cast<uint32_t>(i),
                                 static_cast<uint32_t>(i) + 1, parallel});
        } else {
            segments_.back().end = static_cast<uint32_t>(i) + 1;
        }
        segOf_[i] = static_cast<uint32_t>(segments_.size()) - 1;
    }
    stagedWakes_.resize(numShards_);
    // Per-shard component lists for the epoch-window slice loops, and
    // the shared-component list for the window replay.
    shardComps_.assign(numShards_, {});
    sharedComps_.clear();
    for (uint32_t i = 0; i < components_.size(); ++i) {
        if (shardOf_[i] >= 0)
            shardComps_[static_cast<uint32_t>(shardOf_[i])].push_back(i);
        else
            sharedComps_.push_back(i);
    }
    tickedBits_.assign(components_.size(), 0);
    shardBusyBits_.assign(numShards_, 0);
    if (shardCost_.size() != numShards_)
        shardCost_.assign(numShards_, 0);
    finalized_ = true;

    if (kernel_ != Kernel::Threaded || numShards_ == 0)
        return;
    // Size the pool once (later add()s re-derive segments but keep the
    // pool): requested threads, auto = hardware concurrency, clamped to
    // the shard count — extra threads would only ever idle.
    if (workers_.empty() && threadsUsed_ == 1) {
        unsigned want = threadsRequested_;
        if (want == 0)
            want = hardwareConcurrency();
        threadsUsed_ = std::max(1u, std::min(want, numShards_));
        // Oversubscribed pools (more participants than hardware cores)
        // must not spin at the barriers: a spinner burns exactly the
        // core a not-yet-finished worker is waiting for.
        spinBudget_ = threadsUsed_ > hardwareConcurrency()
                          ? 0
                          : defaultSpinBudget();
        // Steady-state allocation-free staging: each shard stages at
        // most a handful of wakes per cycle, so a generous reserve makes
        // the push_back paths never allocate inside the parallel phase.
        for (auto &v : stagedWakes_)
            v.reserve(1024);
        mergedWakes_.reserve(1024 * numShards_);
        for (unsigned w = 1; w < threadsUsed_; ++w)
            workers_.emplace_back([this, w] { workerLoop(w); });
    }
    // Default shard-to-worker map (round-robin); preserved across
    // re-finalization unless the shard count changed, so measured-cost
    // rebalancing survives later add()s that keep the same shards.
    if (shardWorker_.size() != numShards_) {
        shardWorker_.resize(numShards_);
        for (uint32_t s = 0; s < numShards_; ++s)
            shardWorker_[s] = s % threadsUsed_;
    }
}

void
Simulator::stopWorkers()
{
    if (workers_.empty())
        return;
    {
        std::lock_guard<std::mutex> lock(poolMutex_);
        stopPool_ = true;
        goGen_.fetch_add(1, std::memory_order_release);
    }
    poolCv_.notify_all();
    for (auto &th : workers_)
        th.join();
    workers_.clear();
}

void
Simulator::workerLoop(uint32_t worker)
{
    uint64_t seen = 0;
    for (;;) {
        // Wait for the next release (goGen_ advance). Spin briefly on
        // multi-core hosts, then block on the condvar.
        uint64_t gen = goGen_.load(std::memory_order_acquire);
        for (unsigned spin = spinBudget_; gen == seen && spin; --spin)
            gen = goGen_.load(std::memory_order_acquire);
        if (gen == seen) {
            std::unique_lock<std::mutex> lock(poolMutex_);
            poolCv_.wait(lock, [&] {
                return goGen_.load(std::memory_order_relaxed) != seen ||
                       stopPool_;
            });
            if (stopPool_)
                return;
            gen = goGen_.load(std::memory_order_relaxed);
        }
        seen = gen;
        {
            std::lock_guard<std::mutex> lock(poolMutex_);
            if (stopPool_)
                return;
        }
        uint32_t seg = curSeg_.load(std::memory_order_relaxed);
        try {
            if (seg == kWindowSeg)
                runWindowSlice(worker);
            else
                runWorkerSlice(seg, worker);
        } catch (...) {
            // A model fatal() mid-tick: park it for the coordinator to
            // rethrow after the join, matching the serial kernels (an
            // exception escaping a std::thread would terminate).
            std::lock_guard<std::mutex> lock(poolMutex_);
            if (!poolError_)
                poolError_ = std::current_exception();
        }
        if (doneCount_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            threadsUsed_ - 1) {
            std::lock_guard<std::mutex> lock(poolMutex_);
            doneCv_.notify_one();
        }
    }
}

void
Simulator::runWorkerSlice(uint32_t seg, uint32_t worker)
{
    const Segment &s = segments_[seg];
    for (uint32_t i = s.begin; i < s.end; ++i) {
        // Ownership check first: nextDue_[i] may only be examined by the
        // worker that owns i's shard, since the owner writes it mid-tick
        // (request consume, re-arm) while other workers run.
        uint32_t shard = static_cast<uint32_t>(shardOf_[i]);
        if (shardWorker_[shard] != worker)
            continue;
        if (nextDue_[i] != cycle_)
            continue;
        runDue(i, shardOf_[i], cycle_);
    }
}

void
Simulator::syncSchedTrace(uint32_t index)
{
    TraceStream *ts = schedTrace_[index];
    if (!ts)
        return;
    // Inside an epoch window the sched-occupancy counter goes quiet:
    // shards run ahead of the global clock and the trim may roll it
    // back, so per-event emission would break per-stream timestamp
    // monotonicity. The window resyncs every component once it settles
    // (TraceSched is documented as epoch-coarsened in DESIGN.md; model
    // trace categories are unaffected — components emit those at their
    // tick's own cycle).
    if (winEnd_)
        return;
    uint8_t awake = nextDue_[index] != kAsleep ? 1 : 0;
    if (awake == traceAwake_[index])
        return;
    traceAwake_[index] = awake;
    ts->counter(cycle_, "awake", awake);
}

void
Simulator::scheduleAt(uint32_t index, Cycle at)
{
    // Every wake / self-schedule is a firm tick request; a tick at cycle
    // c consumes exactly the request at c, so a request can never be
    // lost to an earlier tick that returns kAsleep (it fires later as a
    // harmless no-op if the work turned out to be done already).
    auto &reqs = pending_[index];
    auto it = std::lower_bound(reqs.begin(), reqs.end(), at);
    if (it != reqs.end() && *it == at)
        return; // already requested for that cycle
    reqs.insert(it, at);
    if (at < nextDue_[index])
        nextDue_[index] = at; // cached reqs.front()
    syncSchedTrace(index);
}

void
Simulator::wake(TickedComponent *comp, Cycle at, bool hint)
{
    panic_if(comp->sched_ != this, "wake() for unregistered component %s",
             comp->name().c_str());
    if (kernel_ == Kernel::Polling)
        return; // everything ticks every cycle anyway
    uint32_t index = comp->schedIndex_;
    // "Now" for clamping and same-cycle resolution: the in-progress
    // tick's cycle (which runs ahead of the parked global clock inside
    // an epoch window), or the global clock outside any tick.
    const Cycle now = tl_in_tick ? tl_cycle : cycle_;
    // Threaded kernel: a wake crossing shards is staged by the calling
    // worker and replayed at the barrier after the segment (after the
    // window's parallel phase, under epoch batching), tagged with its
    // issue cycle and replayed in (issue cycle, caller registration)
    // order, so delivery order never depends on thread interleaving.
    // Same-shard (and coordinator-issued) wakes take the serial path
    // below unchanged.
    if (tl_shard >= 0 && kernel_ == Kernel::Threaded &&
        shardOf_[index] != tl_shard) {
        stagedWakes_[tl_shard].push_back({tl_index, index, at, now, hint});
        return;
    }
    if (at < now)
        at = now;
    // Same-cycle wakes resolve by registration order against the
    // component being ticked right now: targets at or before the scan
    // position already ran this cycle and see the producer's update next
    // cycle, later targets still this cycle — matching the polling
    // kernel's in-order scan.
    if (at == now && tl_in_tick && index <= tl_index)
        ++at;
    // Epoch-window replay: a wake that resolves inside the window and
    // targets a sharded component meets a parallel phase that already
    // ran. If the target in fact ticked at `at` (it had its own tick
    // request there), the wake would have dedup-merged with that request
    // — delivering it now is a no-op, so drop it. An advisory wake
    // (wakeHint) is droppable either way: its contract is that a target
    // genuinely waiting on the signalled condition self-schedules its
    // own retry, so a hint landing on a never-ticked cycle would only
    // have caused a stat-neutral no-op tick. Any other wake whose target
    // did NOT tick at `at` would have ticked it there under the serial
    // kernels and we cannot: that is a model-contract violation (rule 7
    // audit miss), not a scheduling decision.
    if (winEnd_ && at < winEnd_ && shardOf_[index] >= 0 &&
        !(tl_shard >= 0)) {
        if (hint ||
            (tickedBits_[index] & (uint64_t{1} << (at - winBegin_))))
            return;
        panic("cross-epoch wake of %s at cycle %llu arrives earlier than "
              "its staging epoch allows (window [%llu, %llu), target "
              "never ticked at that cycle)",
              comp->name().c_str(), static_cast<unsigned long long>(at),
              static_cast<unsigned long long>(winBegin_),
              static_cast<unsigned long long>(winEnd_));
    }
    // A replayed cross-shard wake that lands on the current cycle can
    // only be honored if its target runs in a *later* segment (the
    // memory system after the core segment, the accelerators after the
    // memory system). A same-cycle target in an already-finished segment
    // could never be delivered the way the serial scan would — that is a
    // machine-model ordering bug, not a scheduling decision.
    if (at == now && drainSeg_ >= 0 &&
        segOf_[index] <= static_cast<uint32_t>(drainSeg_)) {
        panic("staged same-cycle wake of %s (segment %u) cannot be "
              "delivered after segment %d already ran; cross-shard "
              "producers must target later-ordered consumers",
              comp->name().c_str(), segOf_[index], drainSeg_);
    }
    // Settle skipped-cycle accounting against pre-mutation state (the
    // producer calls wake() before touching shared state). Wakes further
    // out than the next cycle (not used by the machine models) must not
    // account ahead of cycles the target may still tick through.
    if (at <= now + 1)
        comp->catchUp(at);
    scheduleAt(index, at);
}

void
Simulator::runDue(uint32_t index, int shard, Cycle c)
{
    auto &reqs = pending_[index];
    reqs.erase(reqs.begin()); // consume exactly this cycle's request
    nextDue_[index] = reqs.empty() ? kAsleep : reqs.front();
    TickedComponent *comp = components_[index];
    tl_shard = shard;
    tl_in_tick = true;
    tl_index = index;
    tl_cycle = c;
    comp->tick(c);
    Cycle next = comp->nextEventCycle(c);
    if (next != kAsleep)
        scheduleAt(index, next <= c ? c + 1 : next);
    syncSchedTrace(index);
    tl_in_tick = false;
    tl_shard = -1;
    // Measured cost feeding the between-runs shard rebalancer; each
    // shard's counter is only ever touched by its owning worker.
    if (shard >= 0)
        ++shardCost_[static_cast<uint32_t>(shard)];
}

void
Simulator::drainSegment(uint32_t seg)
{
    drainSeg_ = static_cast<int>(seg);
    tl_cycle = cycle_;
    // Generic staged wakes first, merged across shards in caller
    // registration order (stable within a shard, and shards never share
    // a caller, so a stable sort reproduces the serial call order). The
    // merge scratch is a member so the steady state never allocates.
    size_t total = 0;
    for (const auto &v : stagedWakes_)
        total += v.size();
    if (total) {
        mergedWakes_.clear();
        for (auto &v : stagedWakes_) {
            mergedWakes_.insert(mergedWakes_.end(), v.begin(), v.end());
            v.clear();
        }
        std::stable_sort(mergedWakes_.begin(), mergedWakes_.end(),
                         [](const StagedWake &a, const StagedWake &b) {
                             return a.callerIndex < b.callerIndex;
                         });
        for (const StagedWake &w : mergedWakes_) {
            ReplayGuard guard(w.callerIndex);
            wake(components_[w.targetIndex], w.at, w.hint);
        }
    }
    // Then component-level staging buffers (e.g. the memory system's
    // request queues), in registration order.
    for (uint32_t i : sharedComps_)
        components_[i]->drainStaged(cycle_);
    drainSeg_ = -1;
}

void
Simulator::runParallelSegment(uint32_t seg)
{
    const Segment &s = segments_[seg];
    uint32_t due = 0;
    for (uint32_t i = s.begin; i < s.end; ++i)
        due += nextDue_[i] == cycle_ ? 1 : 0;
    if (due == 0)
        return; // nothing ticked, so nothing can have been staged
    if (threadsUsed_ == 1 || due == 1) {
        // Not worth a barrier round-trip; the coordinator inlines the
        // due components with the tick context still set to their
        // shards, so staging behaves identically to the pooled path.
        for (uint32_t i = s.begin; i < s.end; ++i) {
            if (nextDue_[i] == cycle_)
                runDue(i, shardOf_[i], cycle_);
        }
    } else {
        curSeg_.store(seg, std::memory_order_relaxed);
        runPooled();
    }
    drainSegment(seg);
}

void
Simulator::runPooled()
{
    // Release the pool at the current curSeg_ (a segment ordinal, or
    // kWindowSeg for an epoch-window slice), run worker 0's share on
    // the coordinator, then join.
    doneCount_.store(0, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(poolMutex_);
        goGen_.fetch_add(1, std::memory_order_release);
    }
    poolCv_.notify_all();
    uint32_t seg = curSeg_.load(std::memory_order_relaxed);
    // The coordinator's own slice may throw too; always join the pool
    // first so no worker is left running against torn state.
    std::exception_ptr err;
    try {
        if (seg == kWindowSeg)
            runWindowSlice(0);
        else
            runWorkerSlice(seg, 0);
    } catch (...) {
        err = std::current_exception();
    }
    uint32_t target = threadsUsed_ - 1;
    uint32_t done = doneCount_.load(std::memory_order_acquire);
    for (unsigned spin = spinBudget_; done != target && spin; --spin)
        done = doneCount_.load(std::memory_order_acquire);
    if (done != target) {
        std::unique_lock<std::mutex> lock(poolMutex_);
        doneCv_.wait(lock, [&] {
            return doneCount_.load(std::memory_order_acquire) == target;
        });
    }
    {
        std::lock_guard<std::mutex> lock(poolMutex_);
        if (!err && poolError_)
            err = poolError_;
        poolError_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

void
Simulator::stepThreaded()
{
    for (uint32_t seg = 0; seg < segments_.size(); ++seg) {
        const Segment &s = segments_[seg];
        if (s.parallel) {
            runParallelSegment(seg);
            continue;
        }
        for (uint32_t i = s.begin; i < s.end; ++i) {
            if (nextDue_[i] == cycle_)
                runDue(i, kSharedShard, cycle_);
        }
    }
}

void
Simulator::step()
{
    if (kernel_ == Kernel::Polling) {
        tl_cycle = cycle_;
        for (auto *comp : components_)
            comp->tick(cycle_);
        ++cycle_;
        ++cyclesTicked_;
        return;
    }
    finalizeShards();
    if (kernel_ == Kernel::Threaded) {
        stepThreaded();
    } else {
        for (uint32_t i = 0; i < components_.size(); ++i) {
            if (nextDue_[i] == cycle_)
                runDue(i, kSharedShard, cycle_);
        }
    }
    ++cycle_;
    ++cyclesTicked_;
}

Cycle
Simulator::epochWindowLength(Cycle horizon) const
{
    // Epoch batching is an opt-in: the machine model raises the limit
    // (setEpochLimit) only after auditing its components against
    // contract rules 6-7, and an explicit --sim-epoch/TTA_SIM_EPOCH of 1
    // turns it back off.
    if (epochLimit_ <= 1 || numShards_ == 0)
        return 1;
    // Warp dispatch between advances is dynamically load-balanced; its
    // timing must not move, so windows stay off while it is pending.
    if (dispatchPending_)
        return 1;
    unsigned req = epochRequested_;
    Cycle k = req == 0 ? epochLimit_
                       : std::min<Cycle>(req, epochLimit_);
    if (k <= 1)
        return 1;
    k = std::min(k, kMaxEpoch);
    // The watchdog must observe the clock at the same cycle it would
    // under per-cycle stepping.
    k = std::min(k, horizon + 1 - cycle_);
    // The window must close before any pre-scheduled shared-component
    // tick: such a tick can deliver same-cycle wakes to later-ordered
    // sharded components (e.g. a matured response waking an
    // accelerator), which the already-run parallel phase could not have
    // seen. Inside the window shared components then tick only when a
    // staged request wakes them, and everything those ticks produce
    // matures past the window end (the model's epoch limit guarantees
    // it). Each shared component can also impose its own projection
    // bound (e.g. MSHR headroom) for the whole window.
    for (uint32_t i : sharedComps_) {
        if (nextDue_[i] != kAsleep)
            k = std::min(k, nextDue_[i] - cycle_);
        Cycle bound = components_[i]->epochCycleBound(cycle_);
        if (bound != kAsleep)
            k = std::min(k, bound);
    }
    return k < 1 ? 1 : k;
}

void
Simulator::runWindowSlice(uint32_t worker)
{
    const Cycle begin = winBegin_;
    const Cycle end = winEnd_;
    tl_epoch_end = end;
    for (uint32_t shard = 0; shard < numShards_; ++shard) {
        if (shardWorker_[shard] != worker)
            continue;
        const auto &comps = shardComps_[shard];
        uint64_t busy_bits = 0;
        for (Cycle c = begin; c < end; ++c) {
            for (uint32_t i : comps) {
                if (nextDue_[i] != c)
                    continue;
                runDue(i, static_cast<int>(shard), c);
                tickedBits_[i] |= uint64_t{1} << (c - begin);
            }
            // Quiescence bit for the trim: the shard's state after its
            // cycle-c slot. Sharded components only change busy() in
            // their own ticks, so unticked members report their value as
            // of their last tick <= c — exactly what the serial scan
            // would observe after cycle c.
            for (uint32_t i : comps) {
                if (components_[i]->busy()) {
                    busy_bits |= uint64_t{1} << (c - begin);
                    break;
                }
            }
        }
        shardBusyBits_[shard] = busy_bits;
    }
    tl_epoch_end = 0;
}

Cycle
Simulator::replayWindow(Cycle begin, Cycle end)
{
    // Per-shard cursors into the staged-wake buffers: each buffer is
    // already sorted by (issue cycle, caller index, staging sequence) —
    // a shard runs its window cycles in order and its components in
    // registration order within a cycle — so the (cycle, caller) scan
    // below consumes every buffer front-to-back.
    std::vector<size_t> cursor(stagedWakes_.size(), 0);
    Cycle settled = end;
    tl_epoch_end = end;
    for (Cycle c = begin; c < end; ++c) {
        tl_cycle = c;
        // One serial pass over the components in registration order:
        // sharded positions deliver their staged messages (the wakes and
        // component-buffer entries the component issued mid-tick at this
        // cycle), shared positions tick if due — reproducing the serial
        // kernels' in-order scan of cycle c exactly.
        for (uint32_t i = 0; i < components_.size(); ++i) {
            if (shardOf_[i] >= 0) {
                auto &staged = stagedWakes_[shardOf_[i]];
                size_t &cur = cursor[shardOf_[i]];
                while (cur < staged.size() &&
                       staged[cur].issueCycle == c &&
                       staged[cur].callerIndex == i) {
                    const StagedWake &w = staged[cur++];
                    ReplayGuard guard(w.callerIndex);
                    wake(components_[w.targetIndex], w.at, w.hint);
                }
                for (uint32_t s : sharedComps_)
                    components_[s]->replayStagedFrom(c, i);
            } else if (nextDue_[i] == c) {
                runDue(i, kSharedShard, c);
                tickedBits_[i] |= uint64_t{1} << (c - begin);
            }
        }
        // Global quiescence check after cycle c: stop the replay at the
        // cycle the serial kernels' run loops would have stopped
        // stepping at. Later window cycles were no-op overshoot on the
        // shards (contract rule 6); trimWindow() heals their consumed
        // tick requests.
        bool any_busy = false;
        for (uint32_t i : sharedComps_) {
            if (components_[i]->busy()) {
                any_busy = true;
                break;
            }
        }
        uint64_t bit = uint64_t{1} << (c - begin);
        if (!any_busy) {
            for (uint64_t bits : shardBusyBits_) {
                if (bits & bit) {
                    any_busy = true;
                    break;
                }
            }
        }
        if (!any_busy) {
            settled = c + 1;
            break;
        }
        serialBusyBits_ |= bit;
    }
    tl_epoch_end = 0;
    // Anything still staged past the stop cycle would mean a sharded
    // component did externally visible work after global quiescence —
    // a contract-rule-6 violation.
    for (uint32_t s = 0; s < stagedWakes_.size(); ++s) {
        panic_if(cursor[s] != stagedWakes_[s].size(),
                 "staged wakes survive the epoch window (shard %u): a "
                 "component staged messages after global quiescence",
                 s);
        stagedWakes_[s].clear();
    }
    return settled;
}

void
Simulator::trimWindow(Cycle begin, Cycle settle, Cycle end)
{
    // The serial kernels' run loops re-check quiescence after every
    // processed cycle, so they never step past the first all-idle
    // cycle; the window's parallel phase cannot know it and ran the
    // shards through to `end`. Roll back to the settle point and
    // re-insert the tick requests the overshoot ticks consumed: those
    // ticks were no-ops here (rule 6), but with work dispatched by a
    // later launch the serial kernels WILL run them for real — after
    // healing, so will we.
    if (settle < end) {
        for (uint32_t i = 0; i < components_.size(); ++i) {
            uint64_t bits = tickedBits_[i];
            if (!bits)
                continue;
            for (Cycle c = settle; c < end; ++c) {
                if (bits & (uint64_t{1} << (c - begin)))
                    scheduleAt(i, c);
            }
        }
    }
    // Telemetry: the serial kernels process exactly the cycles where
    // some component is due (every processed cycle ticks someone), and
    // skip the rest.
    uint64_t processed = 0;
    for (Cycle c = begin; c < settle; ++c) {
        uint64_t bit = uint64_t{1} << (c - begin);
        for (uint32_t i = 0; i < components_.size(); ++i) {
            if (tickedBits_[i] & bit) {
                ++processed;
                break;
            }
        }
    }
    cyclesTicked_ += processed;
    cyclesSkipped_ += (settle - begin) - processed;
}

void
Simulator::runEpochWindow(Cycle k)
{
    const Cycle begin = cycle_;
    const Cycle end = begin + k;
    winBegin_ = begin;
    winEnd_ = end;
    serialBusyBits_ = 0;
    std::fill(tickedBits_.begin(), tickedBits_.end(), 0);
    std::fill(shardBusyBits_.begin(), shardBusyBits_.end(), 0);
    for (uint32_t i : sharedComps_)
        components_[i]->beginEpochWindow(begin, end);
    // Parallel phase: every shard runs the whole window against the
    // window-entry snapshot of shared state; cross-shard effects are
    // staged with their issue cycle.
    if (threadsUsed_ > 1) {
        curSeg_.store(kWindowSeg, std::memory_order_relaxed);
        runPooled();
    } else {
        runWindowSlice(0);
    }
    // Serial phase: shared components tick and staged messages replay
    // in (cycle, caller) order; stops at global quiescence.
    Cycle settle = replayWindow(begin, end);
    trimWindow(begin, settle, end);
    for (uint32_t i : sharedComps_)
        components_[i]->endEpochWindow();
    winBegin_ = winEnd_ = 0;
    cycle_ = settle;
    // TraceSched went quiet during the window (timestamps inside it
    // would not be monotonic across the trim); emit one settled sample
    // per component now.
    for (uint32_t i = 0; i < components_.size(); ++i)
        syncSchedTrace(i);
}

void
Simulator::rebalanceShards()
{
    if (kernel_ != Kernel::Threaded || threadsUsed_ <= 1 ||
        shardCost_.size() != numShards_)
        return;
    // Greedy LPT on the measured per-shard tick counts: heaviest shard
    // first onto the least-loaded worker (ties: lowest worker id), so a
    // later run on this simulator — kernel fusion and the benches
    // launch several — spreads hot shards across the pool. Purely a
    // performance decision: results never depend on the assignment.
    std::vector<uint32_t> order(numShards_);
    for (uint32_t s = 0; s < numShards_; ++s)
        order[s] = s;
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                         return shardCost_[a] > shardCost_[b];
                     });
    std::vector<uint64_t> load(threadsUsed_, 0);
    for (uint32_t s : order) {
        uint32_t best = 0;
        for (uint32_t w = 1; w < threadsUsed_; ++w) {
            if (load[w] < load[best])
                best = w;
        }
        shardWorker_[s] = best;
        load[best] += shardCost_[s];
    }
}

Cycle
Simulator::nextDueCycle() const
{
    Cycle best = kAsleep;
    for (Cycle due : nextDue_)
        best = std::min(best, due);
    return best;
}

uint32_t
Simulator::awakeComponents() const
{
    uint32_t n = 0;
    for (Cycle due : nextDue_)
        n += due != kAsleep ? 1 : 0;
    return n;
}

bool
Simulator::advance(Cycle horizon)
{
    if (kernel_ == Kernel::Polling) {
        if (!anyBusy())
            return false;
        step();
        return true;
    }
    Cycle due = nextDueCycle();
    if (due == kAsleep)
        return false;
    if (due > horizon) {
        // Nothing to do before the watchdog's horizon: hand the clock to
        // the caller's expiry check without processing anything.
        cyclesSkipped_ += horizon + 1 - cycle_;
        cycle_ = horizon + 1;
        return true;
    }
    cyclesSkipped_ += due - cycle_;
    cycle_ = due;
    // Epoch batching hooks in here rather than in step(): the window
    // length respects the caller's watchdog horizon, and direct step()
    // callers (unit tests driving the clock by hand) keep strict
    // per-cycle semantics.
    if (kernel_ == Kernel::Threaded) {
        finalizeShards();
        Cycle k = epochWindowLength(horizon);
        if (k > 1) {
            runEpochWindow(k);
            return true;
        }
    }
    step();
    return true;
}

Cycle
Simulator::runToQuiescence(Cycle max_cycles)
{
    if (max_cycles == 0)
        max_cycles = watchdog_;
    Cycle start = cycle_;
    while (anyBusy()) {
        if (!advance(start + max_cycles - 1)) {
            panic("simulation stalled: component(s) busy with no "
                  "scheduled wakeup; still-busy components: [%s]",
                  busyComponentNames().c_str());
        }
        if (cycle_ - start >= max_cycles) {
            panic("simulation did not quiesce within %llu cycles; "
                  "still-busy components: [%s]",
                  static_cast<unsigned long long>(max_cycles),
                  busyComponentNames().c_str());
        }
    }
    finishAccounting();
    return cycle_ - start;
}

void
Simulator::finishAccounting()
{
    for (auto *comp : components_)
        comp->catchUp(cycle_);
    flushTelemetry();
    // Between runs is the one safe (and useful) point to rebalance: the
    // pool is parked, and the cost counters now cover a full run.
    rebalanceShards();
}

void
Simulator::flushTelemetry()
{
    g_cycles_ticked.fetch_add(cyclesTicked_ - flushedTicked_,
                              std::memory_order_relaxed);
    g_cycles_skipped.fetch_add(cyclesSkipped_ - flushedSkipped_,
                               std::memory_order_relaxed);
    flushedTicked_ = cyclesTicked_;
    flushedSkipped_ = cyclesSkipped_;
}

std::string
Simulator::busyComponentNames() const
{
    std::string names;
    for (const auto *comp : components_) {
        if (!comp->busy())
            continue;
        if (!names.empty())
            names += ", ";
        names += comp->name();
    }
    return names;
}

} // namespace tta::sim
