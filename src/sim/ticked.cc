#include "sim/ticked.hh"

#include "sim/logging.hh"

namespace tta::sim {

Cycle
Simulator::runToQuiescence(Cycle max_cycles)
{
    Cycle start = cycle_;
    while (anyBusy()) {
        step();
        if (cycle_ - start >= max_cycles) {
            panic("simulation did not quiesce within %llu cycles",
                  static_cast<unsigned long long>(max_cycles));
        }
    }
    return cycle_ - start;
}

} // namespace tta::sim
