#include "sim/config.hh"

namespace tta::sim {

const char *
accelModeName(AccelMode mode)
{
    switch (mode) {
      case AccelMode::BaselineGpu: return "BaselineGPU";
      case AccelMode::BaselineRta: return "BaselineRTA";
      case AccelMode::Tta: return "TTA";
      case AccelMode::TtaPlus: return "TTA+";
    }
    return "unknown";
}

void
Config::print(std::ostream &os) const
{
    os << "# Configuration (Table II)\n"
       << "#   SMs: " << numSms
       << "  max warps/SM: " << maxWarpsPerSm
       << "  warp size: " << warpSize << "\n"
       << "#   L1D: " << l1SizeBytes / 1024 << "KB fully-assoc LRU, "
       << l1LatencyCycles << " cycles\n"
       << "#   L2: " << l2SizeBytes / (1024 * 1024) << "MB "
       << l2Assoc << "-way LRU, " << l2LatencyCycles << " cycles\n"
       << "#   clocks core:mem = " << coreClockMhz << ":" << memClockMhz
       << " MHz\n"
       << "#   TTA units/SM: " << ttaUnitsPerSm
       << "  warp buffer: " << warpBufferWarps << " warps"
       << "  intersection sets: " << intersectionSets << "\n"
       << "#   node layout: width " << bvhNodeWidth
       << (bvhQuantized ? " quantized" : "")
       << (rtreeSoa ? ", rtree SoA" : "")
       << "  fetch width: " << rtaFetchWidth << "\n"
       << "#   accel mode: " << accelModeName(accelMode) << "\n";
}

} // namespace tta::sim
