/**
 * @file
 * Multi-threaded experiment runner.
 *
 * Every figure reproduction in bench/ is a sweep of independent
 * (Config, workload) simulations; the simulator itself threads no global
 * mutable state (each run owns its Config copy and StatRegistry), so the
 * sweep is embarrassingly parallel. ExperimentRunner shards a job list
 * across a std::thread pool:
 *
 *  - each Job gets a *private* StatRegistry and carries its own RNG seed,
 *    so a run is bit-identical whether it executes serially or on any
 *    worker thread of any pool size;
 *  - results come back in submission order regardless of completion
 *    order;
 *  - an exception escaping a job is captured in its RunRecord (the pool
 *    never wedges and the remaining jobs still run).
 *
 * Each finished run is summarized as a machine-readable JSON record
 * (name, config digest, seed, cycles, per-component counters/scalars/
 * histograms, wall-clock) so figures can be regenerated from structured
 * output instead of scraped text; see RunRecord::writeJson for the
 * schema.
 */

#ifndef TTA_SIM_RUNNER_HH
#define TTA_SIM_RUNNER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace tta::sim {

/** Stable FNV-1a digest over every Config field, as 16 hex digits.
 *  Two configs digest equal iff every field compares equal. */
std::string configDigest(const Config &cfg);

/** The outcome of one experiment run. */
struct RunRecord
{
    std::string name;         //!< job label, unique within a sweep
    std::string configDigest; //!< digest of the job's Config
    uint64_t seed = 0;        //!< the job's RNG seed
    uint64_t cycles = 0;      //!< simulated cycles (job-reported)
    double wallSeconds = 0.0; //!< host wall-clock of the job body
    std::string error;        //!< exception text if the job threw
    StatRegistry stats;       //!< the job's private registry
    /** Extra derived metrics the job wants in the JSON record. */
    std::map<std::string, double> values;

    bool failed() const { return !error.empty(); }

    /**
     * Emit the run as a single-line JSON object:
     *
     *   {"name": ..., "config": <digest>, "seed": N, "cycles": N,
     *    "values": {...}, "counters": {...}, "scalars": {...},
     *    "histograms": {name: {"count","mean","max","overflow"}},
     *    "error": ... (only if failed),
     *    "wall_ms": X (only when include_timing)}
     *
     * Everything except wall_ms is deterministic: records from a serial
     * and a parallel sweep compare byte-identical with
     * include_timing = false.
     */
    void writeJson(std::ostream &os, bool include_timing = true) const;
    std::string toJson(bool include_timing = true) const;
};

/** One schedulable experiment. */
struct Job
{
    std::string name;
    Config config;
    uint64_t seed = 0;
    /**
     * The experiment body. Receives the job's Config, its private
     * StatRegistry (also reachable as record.stats) and the RunRecord to
     * fill in (cycles, extra values). Must not touch state shared with
     * other jobs.
     */
    std::function<void(const Config &, StatRegistry &, RunRecord &)> fn;
    /**
     * Optional per-job event tracer. When set, the runner attaches it
     * to the job's private StatRegistry for the duration of the job
     * body (and detaches afterwards, so records never hold a dangling
     * pointer). One tracer per job keeps tracing safe under any pool
     * size; the submitter owns the tracers and exports them after
     * run() returns.
     */
    std::shared_ptr<Tracer> tracer;
};

class ExperimentRunner
{
  public:
    /** @param threads worker threads; 0 = hardware concurrency. */
    explicit ExperimentRunner(unsigned threads = 0);

    unsigned threads() const { return threads_; }

    /**
     * Host-thread budget: the worker count to actually use when each
     * job internally runs `sim_threads` simulation threads (the
     * threaded kernel), so requested × sim_threads never oversubscribes
     * `hardware` host threads. Never returns 0; requested is honored
     * whenever the product fits. Pure — exposed for testing.
     */
    static unsigned budgetWorkers(unsigned requested,
                                  unsigned sim_threads,
                                  unsigned hardware);

    /**
     * Execute all jobs and return their records in submission order.
     * Jobs that throw report through RunRecord::error; the pool always
     * drains the whole list. When the default simulation kernel is
     * threaded, the worker count is clamped (with a stderr warning) so
     * jobs × per-job simulation threads stays within hardware
     * concurrency; see EXPERIMENTS.md "--jobs × --sim-threads".
     */
    std::vector<RunRecord> run(const std::vector<Job> &jobs) const;

  private:
    unsigned threads_;
};

} // namespace tta::sim

#endif // TTA_SIM_RUNNER_HH
