/**
 * @file
 * Functional model of the TTA Query-Key comparison unit (Fig 8-1, Fig 9).
 *
 * The unit is the baseline Ray-Box min/max datapath with the plane
 * distances replaced by node keys and the query value, plus six added
 * equality comparators: three detect an exact key match, three produce
 * the child offset as a one-hot-encoded value of {0,1,2} per triple.
 * One invocation compares the query against nine keys and resolves up to
 * nine children.
 *
 * Keys must be ascending (B-Tree nodes are sorted); unused slots are
 * padded with +infinity by the tree serializer, which also guarantees a
 * query greater than every real key resolves to the rightmost child.
 */

#ifndef TTA_TTA_QUERY_KEY_UNIT_HH
#define TTA_TTA_QUERY_KEY_UNIT_HH

#include <cstdint>

namespace tta::tta {

struct QueryKeyOutput
{
    bool found = false;       //!< query exactly matched a key
    uint32_t matchIndex = 0;  //!< index of the matching key when found
    uint32_t childIndex = 0;  //!< child to descend when not found
};

/**
 * Execute the 9-wide Query-Key comparison.
 * @param query the search key (the "ray" payload).
 * @param keys  nine ascending key values (padded with +inf).
 */
QueryKeyOutput queryKeyUnit(float query, const float keys[9]);

} // namespace tta::tta

#endif // TTA_TTA_QUERY_KEY_UNIT_HH
