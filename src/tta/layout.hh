/**
 * @file
 * Programmer-visible data layouts (the DecodeR / DecodeI / DecodeL calls
 * of Listing 1).
 *
 * A layout is an ordered list of field byte-sizes; the node decoder in the
 * operation arbiter uses it to slice returned memory into operands, and
 * the repurposed warp buffer stores ray/node entries with this layout.
 * Ray and node entries are limited to 16 x 32-bit registers (64 bytes),
 * matching Fig 7.
 */

#ifndef TTA_TTA_LAYOUT_HH
#define TTA_TTA_LAYOUT_HH

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace tta::tta {

class DataLayout
{
  public:
    static constexpr uint32_t kMaxBytes = 64; //!< 16 x 32-bit registers

    DataLayout() = default;

    DataLayout(std::string name, std::initializer_list<uint32_t> sizes)
        : DataLayout(std::move(name),
                     std::vector<uint32_t>(sizes.begin(), sizes.end()))
    {}

    DataLayout(std::string name, std::vector<uint32_t> sizes)
        : name_(std::move(name)), fieldSizes_(std::move(sizes))
    {
        uint32_t off = 0;
        for (uint32_t s : fieldSizes_) {
            fatal_if(s == 0 || s % 4 != 0,
                     "layout '%s': field sizes must be non-zero multiples "
                     "of 4 bytes", name_.c_str());
            fieldOffsets_.push_back(off);
            off += s;
        }
        fatal_if(off > kMaxBytes,
                 "layout '%s' is %u bytes; the warp buffer entry holds at "
                 "most %u", name_.c_str(), off, kMaxBytes);
        totalBytes_ = off;
    }

    const std::string &name() const { return name_; }
    uint32_t numFields() const
    {
        return static_cast<uint32_t>(fieldSizes_.size());
    }
    uint32_t fieldSize(uint32_t i) const { return fieldSizes_.at(i); }
    uint32_t fieldOffset(uint32_t i) const { return fieldOffsets_.at(i); }
    uint32_t totalBytes() const { return totalBytes_; }
    /** 32-bit registers consumed in the warp buffer. */
    uint32_t numRegisters() const { return (totalBytes_ + 3) / 4; }

  private:
    std::string name_;
    std::vector<uint32_t> fieldSizes_;
    std::vector<uint32_t> fieldOffsets_;
    uint32_t totalBytes_ = 0;
};

/**
 * Termination criteria (ConfigTerminate in Listing 1): which entry field
 * is checked, and at which program point. The traversal state machine
 * also always terminates on an empty traversal stack.
 */
struct TerminationConfig
{
    enum class Watch
    {
        StackEmptyOnly, //!< default While-While termination
        RayField,       //!< check a ray-layout field (e.g. ray.tmin)
        LeafField,      //!< check a leaf-node field
    };

    Watch watch = Watch::StackEmptyOnly;
    uint32_t byteOffset = 0; //!< offset of the watched field
    uint32_t programPc = 0;  //!< uop PC at which the check fires
};

} // namespace tta::tta

#endif // TTA_TTA_LAYOUT_HH
