#include "tta/query_key_unit.hh"

#include <cmath>

namespace tta::tta {

namespace {

/**
 * One key-triple through the modified min/max datapath.
 *
 * minmax = MIN(k1, MAX(x, k0)) clamps the query into [k0, k1]:
 *   x <  k0          -> minmax == k0
 *   k0 <= x <= k1    -> minmax == x
 *   x >  k1          -> minmax == k1
 * maxmin = MAX(k1, MIN(x, k2)) clamps into [k1, k2] symmetrically.
 * Comparators on the two results recover the region of x among
 * {k0, k1, k2}; the added equality comparators detect exact matches and
 * emit the child offset within the triple (0, 1 or 2).
 *
 * @retval local_child 0..2 when x falls before k0/k1/k2; 3 when x is
 *         greater than the whole triple (carry into the next triple).
 */
struct TripleResult
{
    bool match;
    uint32_t matchOffset;
    uint32_t localChild; //!< 0..3
};

TripleResult
tripleCompare(float x, float k0, float k1, float k2)
{
    TripleResult r{false, 0, 3};

    // The min/max sequences of Fig 9.
    float minmax = std::fmin(k1, std::fmax(x, k0));
    float maxmin = std::fmax(k1, std::fmin(x, k2));

    // Equality comparators (Fig 9-3): exact key match.
    if (x == k0) {
        r.match = true;
        r.matchOffset = 0;
        return r;
    }
    if (x == k1) {
        r.match = true;
        r.matchOffset = 1;
        return r;
    }
    if (x == k2) {
        r.match = true;
        r.matchOffset = 2;
        return r;
    }

    // Region comparators (Fig 9-4): the child offset one-hot.
    if (minmax == k0) {
        r.localChild = 0; // x < k0
    } else if (minmax == x) {
        r.localChild = 1; // k0 < x < k1
    } else if (maxmin == x) {
        r.localChild = 2; // k1 < x < k2
    } else {
        r.localChild = 3; // x > k2: carry into the next triple
    }
    return r;
}

} // namespace

QueryKeyOutput
queryKeyUnit(float query, const float keys[9])
{
    QueryKeyOutput out;
    // The three triples operate in parallel in hardware; the last stage
    // selects the first triple whose region resolved.
    for (int t = 0; t < 3; ++t) {
        TripleResult r = tripleCompare(query, keys[3 * t + 0],
                                       keys[3 * t + 1], keys[3 * t + 2]);
        if (r.match) {
            out.found = true;
            out.matchIndex = 3 * t + r.matchOffset;
            return out;
        }
        if (r.localChild < 3) {
            out.childIndex = 3 * t + r.localChild;
            return out;
        }
    }
    // Greater than all nine keys: rightmost child (the tree serializer's
    // +inf padding makes this unreachable for real nodes).
    out.childIndex = 9;
    return out;
}

} // namespace tta::tta
