/**
 * @file
 * Figure 15: TTA intersection-unit utilization — the average and peak
 * number of concurrent tests queued/executing in the (modified) Ray-Box
 * and Ray-Triangle units per application.
 *
 * Paper expectation: node processing is bursty — peaks well above the
 * average, but even the peaks sit far below the available pipeline
 * stages while the TTA waits on memory; RTNN repurposes the previously
 * idle Ray-Triangle units for distance tests. (*WKND_PT is not
 * supported by TTA.)
 */

#include "bench_common.hh"

using namespace bench;

namespace {

void
printRow(const char *app, const sim::StatRegistry &stats)
{
    const auto *box = stats.findHistogram("rta.box.occupancy");
    const auto *tri = stats.findHistogram("rta.tri.occupancy");
    std::printf("%-12s box(avg %6.2f, peak %4.0f)   tri(avg %6.2f, "
                "peak %4.0f)\n",
                app, box ? box->mean() : 0.0,
                box ? box->maxValue() : 0.0, tri ? tri->mean() : 0.0,
                tri ? tri->maxValue() : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Figure 15",
                "TTA intersection unit utilization (avg/peak concurrent "
                "tests)", args);

    for (auto kind : {trees::BTreeKind::BTree,
                      trees::BTreeKind::BPlusTree}) {
        BTreeWorkload wl(kind, args.keys, args.queries, args.seed);
        sim::StatRegistry stats;
        wl.runAccelerated(modeConfig(sim::AccelMode::Tta), stats);
        printRow(trees::bTreeKindName(kind), stats);
    }
    for (int dims : {2, 3}) {
        NBodyWorkload wl(dims, args.bodies, args.seed);
        sim::StatRegistry stats;
        wl.runAccelerated(modeConfig(sim::AccelMode::Tta), stats);
        printRow(dims == 2 ? "NBODY-2D" : "NBODY-3D", stats);
    }
    {
        RtnnWorkload wl(args.points, args.queries / 4, 1.0f, args.seed);
        sim::StatRegistry stats;
        wl.runAccelerated(modeConfig(sim::AccelMode::Tta), stats, true);
        printRow("*RTNN", stats);
    }

    std::printf("\nPaper shape check: bursty usage (peak >> average); "
                "*RTNN keeps the Ray-Triangle (distance) units busy that "
                "plain BVH traversal leaves idle. (*WKND_PT omitted: "
                "unsupported by TTA, as in the paper.)\n");
    return 0;
}
