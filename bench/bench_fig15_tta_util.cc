/**
 * @file
 * Figure 15: TTA intersection-unit utilization — the average and peak
 * number of concurrent tests queued/executing in the (modified) Ray-Box
 * and Ray-Triangle units per application.
 *
 * Paper expectation: node processing is bursty — peaks well above the
 * average, but even the peaks sit far below the available pipeline
 * stages while the TTA waits on memory; RTNN repurposes the previously
 * idle Ray-Triangle units for distance tests. (*WKND_PT is not
 * supported by TTA.)
 */

#include "bench_common.hh"

using namespace bench;

namespace {

void
printRow(const char *app, const sim::StatRegistry &stats)
{
    const auto *box = stats.findHistogram("rta.box.occupancy");
    const auto *tri = stats.findHistogram("rta.tri.occupancy");
    std::printf("%-12s box(avg %6.2f, peak %4.0f)   tri(avg %6.2f, "
                "peak %4.0f)\n",
                app, box ? box->mean() : 0.0,
                box ? box->maxValue() : 0.0, tri ? tri->mean() : 0.0,
                tri ? tri->maxValue() : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Figure 15",
                "TTA intersection unit utilization (avg/peak concurrent "
                "tests)", args);

    Sweep sweep(args);
    const sim::Config tta_cfg = modeConfig(sim::AccelMode::Tta);
    struct Row
    {
        std::string app;
        size_t idx;
    };
    std::vector<Row> rows;

    for (auto kind : {trees::BTreeKind::BTree,
                      trees::BTreeKind::BPlusTree}) {
        rows.push_back(
            {trees::bTreeKindName(kind),
             sweep.add(std::string("btree/") + trees::bTreeKindName(kind),
                       tta_cfg,
                       [kind, &args](const sim::Config &cfg,
                                     sim::StatRegistry &stats) {
                           BTreeWorkload wl(kind, args.keys, args.queries,
                                            args.seed);
                           return wl.runAccelerated(cfg, stats);
                       })});
    }
    for (int dims : {2, 3}) {
        rows.push_back(
            {dims == 2 ? "NBODY-2D" : "NBODY-3D",
             sweep.add(std::string("nbody/") + std::to_string(dims) + "d",
                       tta_cfg,
                       [dims, &args](const sim::Config &cfg,
                                     sim::StatRegistry &stats) {
                           NBodyWorkload wl(dims, args.bodies, args.seed);
                           return wl.runAccelerated(cfg, stats);
                       })});
    }
    rows.push_back(
        {"*RTNN", sweep.add("rtnn", tta_cfg,
                            [&args](const sim::Config &cfg,
                                    sim::StatRegistry &stats) {
                                RtnnWorkload wl(args.points,
                                                args.queries / 4, 1.0f,
                                                args.seed);
                                return wl.runAccelerated(cfg, stats,
                                                         true);
                            })});

    sweep.run();

    for (const Row &row : rows)
        printRow(row.app.c_str(), sweep.record(row.idx).stats);

    std::printf("\nPaper shape check: bursty usage (peak >> average); "
                "*RTNN keeps the Ray-Triangle (distance) units busy that "
                "plain BVH traversal leaves idle. (*WKND_PT omitted: "
                "unsupported by TTA, as in the paper.)\n");
    return 0;
}
