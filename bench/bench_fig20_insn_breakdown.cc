/**
 * @file
 * Figure 20: breakdown of the total dynamically executed instructions
 * for baseline, TTA and TTA+.
 *
 * Paper expectation: a single traverseTree instruction replaces the
 * entire software traversal loop, eliminating ~91% of dynamic
 * instructions on average; the accelerator instructions themselves are
 * only ~2% of the total.
 */

#include "bench_common.hh"

using namespace bench;

namespace {

void
printRow(const char *label, const RunMetrics &m, uint64_t base_total)
{
    uint64_t total = m.totalInsts();
    std::printf("  %-6s total %10llu (%5.1f%% of base)  alu %9llu  "
                "sfu %7llu  mem %9llu  ctrl %9llu  accel %6llu "
                "(%4.1f%% of total)\n",
                label, static_cast<unsigned long long>(total),
                100.0 * total / base_total,
                static_cast<unsigned long long>(m.instsAlu),
                static_cast<unsigned long long>(m.instsSfu),
                static_cast<unsigned long long>(m.instsMem),
                static_cast<unsigned long long>(m.instsCtrl),
                static_cast<unsigned long long>(m.instsAccel),
                total ? 100.0 * m.instsAccel / total : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Figure 20", "Dynamic instruction breakdown", args);

    Sweep sweep(args);
    constexpr size_t kNone = static_cast<size_t>(-1);
    struct Row
    {
        std::string app;
        size_t base, tta, ttap = kNone;
        bool reduce_with_ttap = false; //!< which run feeds the average
    };
    std::vector<Row> rows;

    for (auto kind : {trees::BTreeKind::BTree, trees::BTreeKind::BStarTree,
                      trees::BTreeKind::BPlusTree}) {
        auto runBase = [kind, &args](const sim::Config &cfg,
                                     sim::StatRegistry &stats) {
            BTreeWorkload wl(kind, args.keys, args.queries, args.seed);
            return wl.runBaseline(cfg, stats);
        };
        auto runAccel = [kind, &args](const sim::Config &cfg,
                                      sim::StatRegistry &stats) {
            BTreeWorkload wl(kind, args.keys, args.queries, args.seed);
            return wl.runAccelerated(cfg, stats);
        };
        std::string tag = std::string("btree/") +
                          trees::bTreeKindName(kind);
        Row row;
        row.app = trees::bTreeKindName(kind);
        row.base = sweep.add(tag + "/base",
                             modeConfig(sim::AccelMode::BaselineGpu),
                             runBase);
        row.tta = sweep.add(tag + "/tta", modeConfig(sim::AccelMode::Tta),
                            runAccel);
        row.ttap = sweep.add(tag + "/ttaplus",
                             modeConfig(sim::AccelMode::TtaPlus),
                             runAccel);
        rows.push_back(row);
    }

    for (int dims : {2, 3}) {
        auto runBase = [dims, &args](const sim::Config &cfg,
                                     sim::StatRegistry &stats) {
            NBodyWorkload wl(dims, args.bodies, args.seed);
            return wl.runBaseline(cfg, stats);
        };
        auto runAccel = [dims, &args](const sim::Config &cfg,
                                      sim::StatRegistry &stats) {
            NBodyWorkload wl(dims, args.bodies, args.seed);
            return wl.runAccelerated(cfg, stats);
        };
        std::string tag = std::string("nbody/") + std::to_string(dims) +
                          "d";
        Row row;
        row.app = dims == 2 ? "NBODY-2D" : "NBODY-3D";
        row.base = sweep.add(tag + "/base",
                             modeConfig(sim::AccelMode::BaselineGpu),
                             runBase);
        row.tta = sweep.add(tag + "/tta", modeConfig(sim::AccelMode::Tta),
                            runAccel);
        row.ttap = sweep.add(tag + "/ttaplus",
                             modeConfig(sim::AccelMode::TtaPlus),
                             runAccel);
        row.reduce_with_ttap = true;
        rows.push_back(row);
    }

    {
        Row row;
        row.app = "RTNN";
        row.base = sweep.add("rtnn/base",
                             modeConfig(sim::AccelMode::BaselineGpu),
                             [&args](const sim::Config &cfg,
                                     sim::StatRegistry &stats) {
                                 RtnnWorkload wl(args.points,
                                                 args.queries / 4, 1.0f,
                                                 args.seed);
                                 return wl.runBaseline(cfg, stats);
                             });
        row.tta = sweep.add("rtnn/star-tta",
                            modeConfig(sim::AccelMode::Tta),
                            [&args](const sim::Config &cfg,
                                    sim::StatRegistry &stats) {
                                RtnnWorkload wl(args.points,
                                                args.queries / 4, 1.0f,
                                                args.seed);
                                return wl.runAccelerated(cfg, stats,
                                                         true);
                            });
        rows.push_back(row);
    }

    sweep.run();

    std::vector<double> reductions;
    for (const Row &row : rows) {
        const RunMetrics &base = sweep[row.base];
        const RunMetrics &tta = sweep[row.tta];
        std::printf("%s:\n", row.app.c_str());
        printRow("BASE", base, base.totalInsts());
        printRow(row.ttap == kNone ? "*TTA" : "TTA", tta,
                 base.totalInsts());
        if (row.ttap != kNone)
            printRow("TTA+", sweep[row.ttap], base.totalInsts());
        const RunMetrics &reducer =
            row.reduce_with_ttap ? sweep[row.ttap] : tta;
        reductions.push_back(
            1.0 - static_cast<double>(reducer.totalInsts()) /
                      base.totalInsts());
    }

    double avg = 0;
    for (double r : reductions)
        avg += r;
    avg /= reductions.size();
    std::printf("\naverage dynamic-instruction reduction: %.1f%% "
                "(paper: ~91%%; traverseTree instructions ~2%% of "
                "total)\n", 100.0 * avg);
    return 0;
}
