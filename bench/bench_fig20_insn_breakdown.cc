/**
 * @file
 * Figure 20: breakdown of the total dynamically executed instructions
 * for baseline, TTA and TTA+.
 *
 * Paper expectation: a single traverseTree instruction replaces the
 * entire software traversal loop, eliminating ~91% of dynamic
 * instructions on average; the accelerator instructions themselves are
 * only ~2% of the total.
 */

#include "bench_common.hh"

using namespace bench;

namespace {

void
printRow(const char *label, const RunMetrics &m, uint64_t base_total)
{
    uint64_t total = m.totalInsts();
    std::printf("  %-6s total %10llu (%5.1f%% of base)  alu %9llu  "
                "sfu %7llu  mem %9llu  ctrl %9llu  accel %6llu "
                "(%4.1f%% of total)\n",
                label, static_cast<unsigned long long>(total),
                100.0 * total / base_total,
                static_cast<unsigned long long>(m.instsAlu),
                static_cast<unsigned long long>(m.instsSfu),
                static_cast<unsigned long long>(m.instsMem),
                static_cast<unsigned long long>(m.instsCtrl),
                static_cast<unsigned long long>(m.instsAccel),
                total ? 100.0 * m.instsAccel / total : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Figure 20", "Dynamic instruction breakdown", args);

    std::vector<double> reductions;

    for (auto kind : {trees::BTreeKind::BTree, trees::BTreeKind::BStarTree,
                      trees::BTreeKind::BPlusTree}) {
        BTreeWorkload wl(kind, args.keys, args.queries, args.seed);
        sim::StatRegistry s0, s1, s2;
        RunMetrics base =
            wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu), s0);
        RunMetrics tta =
            wl.runAccelerated(modeConfig(sim::AccelMode::Tta), s1);
        RunMetrics ttap =
            wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus), s2);
        std::printf("%s:\n", trees::bTreeKindName(kind));
        printRow("BASE", base, base.totalInsts());
        printRow("TTA", tta, base.totalInsts());
        printRow("TTA+", ttap, base.totalInsts());
        reductions.push_back(
            1.0 - static_cast<double>(tta.totalInsts()) /
                      base.totalInsts());
    }

    for (int dims : {2, 3}) {
        NBodyWorkload wl(dims, args.bodies, args.seed);
        sim::StatRegistry s0, s1, s2;
        RunMetrics base =
            wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu), s0);
        RunMetrics tta =
            wl.runAccelerated(modeConfig(sim::AccelMode::Tta), s1);
        RunMetrics ttap =
            wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus), s2);
        std::printf("%s:\n", dims == 2 ? "NBODY-2D" : "NBODY-3D");
        printRow("BASE", base, base.totalInsts());
        printRow("TTA", tta, base.totalInsts());
        printRow("TTA+", ttap, base.totalInsts());
        reductions.push_back(
            1.0 - static_cast<double>(ttap.totalInsts()) /
                      base.totalInsts());
    }

    {
        RtnnWorkload wl(args.points, args.queries / 4, 1.0f, args.seed);
        sim::StatRegistry s0, s1;
        RunMetrics base =
            wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu), s0);
        RunMetrics star =
            wl.runAccelerated(modeConfig(sim::AccelMode::Tta), s1, true);
        std::printf("RTNN:\n");
        printRow("BASE", base, base.totalInsts());
        printRow("*TTA", star, base.totalInsts());
        reductions.push_back(
            1.0 - static_cast<double>(star.totalInsts()) /
                      base.totalInsts());
    }

    double avg = 0;
    for (double r : reductions)
        avg += r;
    avg /= reductions.size();
    std::printf("\naverage dynamic-instruction reduction: %.1f%% "
                "(paper: ~91%%; traverseTree instructions ~2%% of "
                "total)\n", 100.0 * avg);
    return 0;
}
