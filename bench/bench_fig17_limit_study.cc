/**
 * @file
 * Figure 17: limit study of TTA+ with architectural improvements on
 * WKND_PT and *WKND_PT.
 *
 * Paper expectation: zero-latency node fetches ("Perf. RT", e.g. a
 * perfect prefetcher) and zero-latency memory ("Perf. Mem") compound
 * with the *WKND_PT software optimization — the gains are orthogonal.
 */

#include "bench_common.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Figure 17", "Limit study on WKND_PT (TTA+)", args);

    RayTracingWorkload wl(SceneKind::WkndPt, args.res, args.res,
                          args.seed);

    struct Variant
    {
        const char *name;
        bool offload;
        bool perfect_rt;
        bool perfect_mem;
    };
    const Variant variants[] = {
        {"WKND_PT", false, false, false},
        {"WKND_PT  + Perf.RT", false, true, false},
        {"WKND_PT  + Perf.Mem", false, false, true},
        {"*WKND_PT", true, false, false},
        {"*WKND_PT + Perf.RT", true, true, false},
        {"*WKND_PT + Perf.Mem", true, false, true},
    };

    double base_cycles = 0.0;
    for (const Variant &v : variants) {
        sim::Config cfg = modeConfig(sim::AccelMode::TtaPlus);
        cfg.perfectNodeFetch = v.perfect_rt;
        cfg.perfectMemory = v.perfect_mem;
        sim::StatRegistry stats;
        RtOptions opt;
        opt.offloadSpheres = v.offload;
        RunMetrics m = wl.runAccelerated(cfg, stats, opt);
        if (base_cycles == 0.0)
            base_cycles = static_cast<double>(m.cycles);
        std::printf("%-22s %12llu cycles   %6.2fx vs naive TTA+\n",
                    v.name, static_cast<unsigned long long>(m.cycles),
                    base_cycles / m.cycles);
    }

    std::printf("\nPaper shape check: Perf.RT < Perf.Mem in benefit, and "
                "both compound with the *WKND_PT intersection-shader "
                "offload (the software and architectural improvements "
                "are orthogonal).\n");
    return 0;
}
