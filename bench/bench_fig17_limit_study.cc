/**
 * @file
 * Figure 17: limit study of TTA+ with architectural improvements on
 * WKND_PT and *WKND_PT.
 *
 * Paper expectation: zero-latency node fetches ("Perf. RT", e.g. a
 * perfect prefetcher) and zero-latency memory ("Perf. Mem") compound
 * with the *WKND_PT software optimization — the gains are orthogonal.
 */

#include "bench_common.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Figure 17", "Limit study on WKND_PT (TTA+)", args);

    struct Variant
    {
        const char *name;
        bool offload;
        bool perfect_rt;
        bool perfect_mem;
    };
    const Variant variants[] = {
        {"WKND_PT", false, false, false},
        {"WKND_PT  + Perf.RT", false, true, false},
        {"WKND_PT  + Perf.Mem", false, false, true},
        {"*WKND_PT", true, false, false},
        {"*WKND_PT + Perf.RT", true, true, false},
        {"*WKND_PT + Perf.Mem", true, false, true},
    };

    Sweep sweep(args);
    std::vector<size_t> idx;
    for (const Variant &v : variants) {
        sim::Config cfg = modeConfig(sim::AccelMode::TtaPlus);
        cfg.perfectNodeFetch = v.perfect_rt;
        cfg.perfectMemory = v.perfect_mem;
        idx.push_back(sweep.add(
            std::string("wknd_pt/") + v.name, cfg,
            [offload = v.offload, &args](const sim::Config &c,
                                         sim::StatRegistry &stats) {
                RayTracingWorkload wl(SceneKind::WkndPt, args.res,
                                      args.res, args.seed);
                RtOptions opt;
                opt.offloadSpheres = offload;
                return wl.runAccelerated(c, stats, opt);
            }));
    }

    sweep.run();

    double base_cycles = static_cast<double>(sweep[idx[0]].cycles);
    for (size_t i = 0; i < idx.size(); ++i) {
        const RunMetrics &m = sweep[idx[i]];
        std::printf("%-22s %12llu cycles   %6.2fx vs naive TTA+\n",
                    variants[i].name,
                    static_cast<unsigned long long>(m.cycles),
                    base_cycles / m.cycles);
    }

    std::printf("\nPaper shape check: Perf.RT < Perf.Mem in benefit, and "
                "both compound with the *WKND_PT intersection-shader "
                "offload (the software and architectural improvements "
                "are orthogonal).\n");
    return 0;
}
