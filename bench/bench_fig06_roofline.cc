/**
 * @file
 * Figure 6: GPU roofline model for tree traversal applications.
 *
 * Prints each baseline application's arithmetic intensity (FLOP per DRAM
 * byte) and achieved FP throughput, against the machine's compute and
 * bandwidth roofs. Paper expectation: every tree traversal application
 * sits far below both roofs at low arithmetic intensity —
 * memory-latency-bound, not bandwidth- or compute-bound.
 */

#include "bench_common.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Figure 6", "Roofline for the SIMT-core baselines", args);

    Sweep sweep(args);
    const sim::Config base_cfg = modeConfig(sim::AccelMode::BaselineGpu);
    struct Row
    {
        std::string app;
        size_t idx;
    };
    std::vector<Row> rows;

    for (auto kind : {trees::BTreeKind::BTree, trees::BTreeKind::BStarTree,
                      trees::BTreeKind::BPlusTree}) {
        rows.push_back(
            {trees::bTreeKindName(kind),
             sweep.add(std::string("btree/") + trees::bTreeKindName(kind),
                       base_cfg,
                       [kind, &args](const sim::Config &cfg,
                                     sim::StatRegistry &stats) {
                           BTreeWorkload wl(kind, args.keys, args.queries,
                                            args.seed);
                           return wl.runBaseline(cfg, stats);
                       })});
    }
    for (int dims : {2, 3}) {
        rows.push_back(
            {dims == 2 ? "NBODY-2D" : "NBODY-3D",
             sweep.add(std::string("nbody/") + std::to_string(dims) + "d",
                       base_cfg,
                       [dims, &args](const sim::Config &cfg,
                                     sim::StatRegistry &stats) {
                           NBodyWorkload wl(dims, args.bodies, args.seed);
                           return wl.runBaseline(cfg, stats);
                       })});
    }
    rows.push_back(
        {"RTNN", sweep.add("rtnn", base_cfg,
                           [&args](const sim::Config &cfg,
                                   sim::StatRegistry &stats) {
                               RtnnWorkload wl(args.points,
                                               args.queries / 4, 1.0f,
                                               args.seed);
                               return wl.runBaseline(cfg, stats);
                           })});
    rows.push_back(
        {"RAYTRACE",
         sweep.add("raytrace", base_cfg,
                   [&args](const sim::Config &cfg,
                           sim::StatRegistry &stats) {
                       RayTracingWorkload wl(SceneKind::SponzaAo,
                                             args.res, args.res,
                                             args.seed);
                       return wl.runBaselineCores(cfg, stats);
                   })});

    sweep.run();

    sim::Config cfg;
    // Peak FP throughput: one FP32 op per lane per SM per cycle.
    double peak_gflops = cfg.numSms * cfg.warpSize * cfg.coreClockMhz / 1e3;
    double peak_bw = cfg.dramPeakBytesPerCoreCycle() * cfg.coreClockMhz *
                     1e6 / 1e9; // GB/s
    std::printf("machine roofs: %.0f GFLOP/s compute, %.1f GB/s DRAM "
                "(ridge at %.2f FLOP/B)\n\n",
                peak_gflops, peak_bw, peak_gflops / peak_bw);
    std::printf("%-12s %12s %14s %16s %10s\n", "app", "FLOP/byte",
                "GFLOP/s", "% of mem roof", "bound");

    for (const Row &row : rows) {
        const RunMetrics &m = sweep[row.idx];
        double secs = m.cycles / (cfg.coreClockMhz * 1e6);
        double gflops = secs > 0 ? m.flops / secs / 1e9 : 0.0;
        double ai = m.arithmeticIntensity();
        double roof = std::min(peak_gflops, ai * peak_bw);
        std::printf("%-12s %12.3f %14.2f %15.1f%% %10s\n",
                    row.app.c_str(), ai, gflops,
                    roof > 0 ? 100.0 * gflops / roof : 0.0,
                    ai < peak_gflops / peak_bw ? "memory" : "compute");
    }

    std::printf("\nPaper shape check: all applications sit in the "
                "memory-bound region, well under the bandwidth roof "
                "(latency-bound, Fig 6).\n");
    return 0;
}
