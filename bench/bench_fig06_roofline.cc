/**
 * @file
 * Figure 6: GPU roofline model for tree traversal applications.
 *
 * Prints each baseline application's arithmetic intensity (FLOP per DRAM
 * byte) and achieved FP throughput, against the machine's compute and
 * bandwidth roofs. Paper expectation: every tree traversal application
 * sits far below both roofs at low arithmetic intensity —
 * memory-latency-bound, not bandwidth- or compute-bound.
 */

#include "bench_common.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Figure 6", "Roofline for the SIMT-core baselines", args);

    sim::Config cfg;
    // Peak FP throughput: one FP32 op per lane per SM per cycle.
    double peak_gflops = cfg.numSms * cfg.warpSize * cfg.coreClockMhz / 1e3;
    double peak_bw = cfg.dramPeakBytesPerCoreCycle() * cfg.coreClockMhz *
                     1e6 / 1e9; // GB/s
    std::printf("machine roofs: %.0f GFLOP/s compute, %.1f GB/s DRAM "
                "(ridge at %.2f FLOP/B)\n\n",
                peak_gflops, peak_bw, peak_gflops / peak_bw);
    std::printf("%-12s %12s %14s %16s %10s\n", "app", "FLOP/byte",
                "GFLOP/s", "% of mem roof", "bound");

    auto row = [&](const char *name, const RunMetrics &m) {
        double secs = m.cycles / (cfg.coreClockMhz * 1e6);
        double gflops = secs > 0 ? m.flops / secs / 1e9 : 0.0;
        double ai = m.arithmeticIntensity();
        double roof = std::min(peak_gflops, ai * peak_bw);
        std::printf("%-12s %12.3f %14.2f %15.1f%% %10s\n", name, ai,
                    gflops, roof > 0 ? 100.0 * gflops / roof : 0.0,
                    ai < peak_gflops / peak_bw ? "memory" : "compute");
    };

    for (auto kind : {trees::BTreeKind::BTree, trees::BTreeKind::BStarTree,
                      trees::BTreeKind::BPlusTree}) {
        BTreeWorkload wl(kind, args.keys, args.queries, args.seed);
        sim::StatRegistry stats;
        row(trees::bTreeKindName(kind),
            wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu),
                           stats));
    }
    for (int dims : {2, 3}) {
        NBodyWorkload wl(dims, args.bodies, args.seed);
        sim::StatRegistry stats;
        row(dims == 2 ? "NBODY-2D" : "NBODY-3D",
            wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu),
                           stats));
    }
    {
        RtnnWorkload wl(args.points, args.queries / 4, 1.0f, args.seed);
        sim::StatRegistry stats;
        row("RTNN", wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu),
                                   stats));
    }
    {
        RayTracingWorkload wl(SceneKind::SponzaAo, args.res, args.res,
                              args.seed);
        sim::StatRegistry stats;
        row("RAYTRACE",
            wl.runBaselineCores(modeConfig(sim::AccelMode::BaselineGpu),
                                stats));
    }

    std::printf("\nPaper shape check: all applications sit in the "
                "memory-bound region, well under the bandwidth roof "
                "(latency-bound, Fig 6).\n");
    return 0;
}
