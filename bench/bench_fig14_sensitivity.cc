/**
 * @file
 * Figure 14: TTA configuration sensitivity for B-Tree queries.
 *
 * Sweeps (a) the warp buffer size — the paper sees speedup saturate at
 * eight warps as extra queries start interfering in the memory system —
 * and (b) the intersection latency: a 3-cycle isolated min/max unit vs
 * the full-pipeline latency vs a 10x latency, which costs little because
 * memory access latency dominates (the paper still gets 2.25x / 2.45x
 * speedups at 10x).
 *
 * Extended beyond the paper with (c) a node-width x fetch-bandwidth
 * sweep on RTNN: the wide SoA BVH layouts (4/8-wide, optionally
 * quantized) trade more bytes per node fetch — visible directly in the
 * rta.node_bytes_fetched counter — for fewer node visits, and the
 * Config::rtaFetchWidth knob models the wider RTA fetch port those
 * multi-line nodes want. Use --json to capture cycles and
 * node_bytes_fetched per configuration.
 */

#include "bench_common.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Figure 14", "TTA config sensitivity (B-Tree variants)",
                args);

    const uint32_t kWarps[] = {1, 2, 4, 8, 16};
    struct LatCfg
    {
        const char *name;
        bool isolated;
        double scale;
    };
    const LatCfg kLats[] = {{"minmax-3cy", true, 1.0},
                            {"full-13cy", false, 1.0},
                            {"10x-130cy", false, 10.0}};

    Sweep sweep(args);
    struct Row
    {
        trees::BTreeKind kind;
        size_t base;
        std::vector<size_t> warp, lat;
    };
    std::vector<Row> rows;

    for (auto kind : {trees::BTreeKind::BTree, trees::BTreeKind::BStarTree,
                      trees::BTreeKind::BPlusTree}) {
        auto runBase = [kind, &args](const sim::Config &cfg,
                                     sim::StatRegistry &stats) {
            BTreeWorkload wl(kind, args.keys, args.queries, args.seed);
            return wl.runBaseline(cfg, stats);
        };
        auto runAccel = [kind, &args](const sim::Config &cfg,
                                      sim::StatRegistry &stats) {
            BTreeWorkload wl(kind, args.keys, args.queries, args.seed);
            return wl.runAccelerated(cfg, stats);
        };
        std::string tag = std::string("btree/") +
                          trees::bTreeKindName(kind);

        Row row;
        row.kind = kind;
        row.base = sweep.add(tag + "/base",
                             modeConfig(sim::AccelMode::BaselineGpu),
                             runBase);
        for (uint32_t warps : kWarps) {
            sim::Config cfg = modeConfig(sim::AccelMode::Tta);
            cfg.warpBufferWarps = warps;
            row.warp.push_back(sweep.add(
                tag + "/warps" + std::to_string(warps), cfg, runAccel));
        }
        for (const LatCfg &lc : kLats) {
            sim::Config cfg = modeConfig(sim::AccelMode::Tta);
            cfg.ttaIsolatedMinMax = lc.isolated;
            cfg.intersectionLatencyScale = lc.scale;
            row.lat.push_back(
                sweep.add(tag + "/" + lc.name, cfg, runAccel));
        }
        rows.push_back(row);
    }

    // (c) node-width x fetch-bandwidth sweep (RTNN, starred leaf
    // offload on TTA). The w2/fetch1 cell is the binary-layout default.
    struct WidthCfg
    {
        const char *name;
        uint32_t width;
        bool quantized;
    };
    const WidthCfg kWidths[] = {{"w2", 2, false},
                                {"w4", 4, false},
                                {"w8", 8, false},
                                {"w4q", 4, true},
                                {"w8q", 8, true}};
    const uint32_t kFetch[] = {1, 2, 4};
    auto runRtnn = [&args](const sim::Config &cfg,
                           sim::StatRegistry &stats) {
        RtnnWorkload wl(args.points / 4, args.queries / 16, 1.0f,
                        args.seed);
        return wl.runAccelerated(cfg, stats, true);
    };
    std::vector<std::vector<size_t>> width_runs;
    for (const WidthCfg &wc : kWidths) {
        width_runs.emplace_back();
        for (uint32_t fetch : kFetch) {
            sim::Config cfg = modeConfig(sim::AccelMode::Tta);
            cfg.bvhNodeWidth = wc.width;
            cfg.bvhQuantized = wc.quantized;
            cfg.rtaFetchWidth = fetch;
            width_runs.back().push_back(sweep.add(
                std::string("rtnn/width/") + wc.name + "/fetch" +
                    std::to_string(fetch),
                cfg, runRtnn));
        }
    }

    sweep.run();

    for (const Row &row : rows) {
        const RunMetrics &base = sweep[row.base];
        std::printf("%s (baseline %llu cycles)\n",
                    trees::bTreeKindName(row.kind),
                    static_cast<unsigned long long>(base.cycles));

        std::printf("  warp buffer sweep:   ");
        for (size_t i = 0; i < row.warp.size(); ++i)
            std::printf("%2uw:%5.2fx  ", kWarps[i],
                        speedup(base, sweep[row.warp[i]]));
        std::printf("\n  intersection sweep:  ");
        for (size_t i = 0; i < row.lat.size(); ++i)
            std::printf("%s:%5.2fx  ", kLats[i].name,
                        speedup(base, sweep[row.lat[i]]));
        std::printf("\n");
    }

    std::printf("\nNode-width x fetch-bandwidth sweep (RTNN, TTA, "
                "starred leaf offload):\n");
    std::printf("  %-5s %14s %12s", "width", "node_bytes", "bytes/visit");
    for (uint32_t fetch : kFetch)
        std::printf("  fetch%u_cycles", fetch);
    std::printf("  vs_w2\n");
    const RunMetrics &w2f1 = sweep[width_runs[0][0]];
    for (size_t wi = 0; wi < std::size(kWidths); ++wi) {
        // Byte traffic comes from the fetch1 run; the fetch-width knob
        // changes when lines issue, not (materially) how many.
        const RunMetrics &m0 = sweep[width_runs[wi][0]];
        std::printf("  %-5s %14llu %12.1f", kWidths[wi].name,
                    static_cast<unsigned long long>(m0.nodeBytesFetched),
                    m0.nodesVisited
                        ? static_cast<double>(m0.nodeBytesFetched) /
                              m0.nodesVisited
                        : 0.0);
        double best = 0.0;
        for (size_t fi = 0; fi < std::size(kFetch); ++fi) {
            const RunMetrics &m = sweep[width_runs[wi][fi]];
            std::printf("  %13llu",
                        static_cast<unsigned long long>(m.cycles));
            best = std::max(best,
                            static_cast<double>(w2f1.cycles) / m.cycles);
        }
        std::printf("  %4.2fx\n", best);
    }

    std::printf("\nPaper shape check: speedup grows with warp-buffer "
                "size and saturates around 8 warps; intersection latency "
                "has a small effect (even 10x latency keeps >2x speedup) "
                "because memory latency dominates. Wide SoA nodes fetch "
                "more bytes per visit (scaling with the node stride) but "
                "visit fewer nodes; extra fetch bandwidth mostly helps "
                "the multi-line 8-wide layouts.\n");
    return 0;
}
