/**
 * @file
 * Figure 14: TTA configuration sensitivity for B-Tree queries.
 *
 * Sweeps (a) the warp buffer size — the paper sees speedup saturate at
 * eight warps as extra queries start interfering in the memory system —
 * and (b) the intersection latency: a 3-cycle isolated min/max unit vs
 * the full-pipeline latency vs a 10x latency, which costs little because
 * memory access latency dominates (the paper still gets 2.25x / 2.45x
 * speedups at 10x).
 */

#include "bench_common.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Figure 14", "TTA config sensitivity (B-Tree variants)",
                args);

    const uint32_t kWarps[] = {1, 2, 4, 8, 16};
    struct LatCfg
    {
        const char *name;
        bool isolated;
        double scale;
    };
    const LatCfg kLats[] = {{"minmax-3cy", true, 1.0},
                            {"full-13cy", false, 1.0},
                            {"10x-130cy", false, 10.0}};

    Sweep sweep(args);
    struct Row
    {
        trees::BTreeKind kind;
        size_t base;
        std::vector<size_t> warp, lat;
    };
    std::vector<Row> rows;

    for (auto kind : {trees::BTreeKind::BTree, trees::BTreeKind::BStarTree,
                      trees::BTreeKind::BPlusTree}) {
        auto runBase = [kind, &args](const sim::Config &cfg,
                                     sim::StatRegistry &stats) {
            BTreeWorkload wl(kind, args.keys, args.queries, args.seed);
            return wl.runBaseline(cfg, stats);
        };
        auto runAccel = [kind, &args](const sim::Config &cfg,
                                      sim::StatRegistry &stats) {
            BTreeWorkload wl(kind, args.keys, args.queries, args.seed);
            return wl.runAccelerated(cfg, stats);
        };
        std::string tag = std::string("btree/") +
                          trees::bTreeKindName(kind);

        Row row;
        row.kind = kind;
        row.base = sweep.add(tag + "/base",
                             modeConfig(sim::AccelMode::BaselineGpu),
                             runBase);
        for (uint32_t warps : kWarps) {
            sim::Config cfg = modeConfig(sim::AccelMode::Tta);
            cfg.warpBufferWarps = warps;
            row.warp.push_back(sweep.add(
                tag + "/warps" + std::to_string(warps), cfg, runAccel));
        }
        for (const LatCfg &lc : kLats) {
            sim::Config cfg = modeConfig(sim::AccelMode::Tta);
            cfg.ttaIsolatedMinMax = lc.isolated;
            cfg.intersectionLatencyScale = lc.scale;
            row.lat.push_back(
                sweep.add(tag + "/" + lc.name, cfg, runAccel));
        }
        rows.push_back(row);
    }

    sweep.run();

    for (const Row &row : rows) {
        const RunMetrics &base = sweep[row.base];
        std::printf("%s (baseline %llu cycles)\n",
                    trees::bTreeKindName(row.kind),
                    static_cast<unsigned long long>(base.cycles));

        std::printf("  warp buffer sweep:   ");
        for (size_t i = 0; i < row.warp.size(); ++i)
            std::printf("%2uw:%5.2fx  ", kWarps[i],
                        speedup(base, sweep[row.warp[i]]));
        std::printf("\n  intersection sweep:  ");
        for (size_t i = 0; i < row.lat.size(); ++i)
            std::printf("%s:%5.2fx  ", kLats[i].name,
                        speedup(base, sweep[row.lat[i]]));
        std::printf("\n");
    }

    std::printf("\nPaper shape check: speedup grows with warp-buffer "
                "size and saturates around 8 warps; intersection latency "
                "has a small effect (even 10x latency keeps >2x speedup) "
                "because memory latency dominates.\n");
    return 0;
}
