/**
 * @file
 * Figure 14: TTA configuration sensitivity for B-Tree queries.
 *
 * Sweeps (a) the warp buffer size — the paper sees speedup saturate at
 * eight warps as extra queries start interfering in the memory system —
 * and (b) the intersection latency: a 3-cycle isolated min/max unit vs
 * the full-pipeline latency vs a 10x latency, which costs little because
 * memory access latency dominates (the paper still gets 2.25x / 2.45x
 * speedups at 10x).
 */

#include "bench_common.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Figure 14", "TTA config sensitivity (B-Tree variants)",
                args);

    for (auto kind : {trees::BTreeKind::BTree, trees::BTreeKind::BStarTree,
                      trees::BTreeKind::BPlusTree}) {
        BTreeWorkload wl(kind, args.keys, args.queries, args.seed);
        sim::StatRegistry s0;
        RunMetrics base =
            wl.runBaseline(modeConfig(sim::AccelMode::BaselineGpu), s0);
        std::printf("%s (baseline %llu cycles)\n",
                    trees::bTreeKindName(kind),
                    static_cast<unsigned long long>(base.cycles));

        std::printf("  warp buffer sweep:   ");
        for (uint32_t warps : {1u, 2u, 4u, 8u, 16u}) {
            sim::Config cfg = modeConfig(sim::AccelMode::Tta);
            cfg.warpBufferWarps = warps;
            sim::StatRegistry stats;
            RunMetrics m = wl.runAccelerated(cfg, stats);
            std::printf("%2uw:%5.2fx  ", warps, speedup(base, m));
        }
        std::printf("\n  intersection sweep:  ");
        struct LatCfg
        {
            const char *name;
            bool isolated;
            double scale;
        };
        for (const LatCfg &lc : {LatCfg{"minmax-3cy", true, 1.0},
                                 LatCfg{"full-13cy", false, 1.0},
                                 LatCfg{"10x-130cy", false, 10.0}}) {
            sim::Config cfg = modeConfig(sim::AccelMode::Tta);
            cfg.ttaIsolatedMinMax = lc.isolated;
            cfg.intersectionLatencyScale = lc.scale;
            sim::StatRegistry stats;
            RunMetrics m = wl.runAccelerated(cfg, stats);
            std::printf("%s:%5.2fx  ", lc.name, speedup(base, m));
        }
        std::printf("\n");
    }

    std::printf("\nPaper shape check: speedup grows with warp-buffer "
                "size and saturates around 8 warps; intersection latency "
                "has a small effect (even 10x latency keeps >2x speedup) "
                "because memory latency dominates.\n");
    return 0;
}
