/**
 * @file
 * Ablation study for the design choices DESIGN.md calls out (beyond the
 * paper's own sensitivity analysis in Fig 14):
 *
 *  - OP-unit set count for TTA+ (the paper's future-work direction from
 *    Fig 15: "strategically reducing the number of parallel operation
 *    units").
 *  - Crosspoint hop latency (the ICNT overhead of Fig 18).
 *  - RTA node-request coalescing across rays (Section II-C advantage 3).
 *  - Operation arbiter width.
 */

#include "bench_common.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Ablation", "TTA/TTA+ microarchitecture knobs", args);

    // --- OP-unit sets (TTA+; B-Tree + RTNN) ------------------------------
    std::printf("TTA+ OP-unit sets (Table II default: 4):\n");
    for (uint32_t sets : {1u, 2u, 4u, 8u}) {
        sim::Config cfg = modeConfig(sim::AccelMode::TtaPlus);
        cfg.opUnitCopies = sets;
        cfg.rcpUnitCopies = 3 * sets;
        BTreeWorkload btree(trees::BTreeKind::BTree, args.keys,
                            args.queries, args.seed);
        sim::StatRegistry s0;
        RunMetrics bt = btree.runAccelerated(cfg, s0);
        RtnnWorkload rtnn(args.points, args.queries / 4, 1.0f, args.seed);
        sim::StatRegistry s1;
        RunMetrics rn = rtnn.runAccelerated(cfg, s1, true);
        std::printf("  %u set%s: B-Tree %8llu cyc   *RTNN %8llu cyc\n",
                    sets, sets == 1 ? " " : "s",
                    static_cast<unsigned long long>(bt.cycles),
                    static_cast<unsigned long long>(rn.cycles));
    }

    // --- Interconnect hop latency -----------------------------------------
    std::printf("\nTTA+ crosspoint hop latency (default 1 cycle):\n");
    for (uint32_t hop : {1u, 2u, 4u, 8u}) {
        sim::Config cfg = modeConfig(sim::AccelMode::TtaPlus);
        cfg.icntHopLatency = hop;
        RtnnWorkload rtnn(args.points, args.queries / 4, 1.0f, args.seed);
        sim::StatRegistry stats;
        RunMetrics m = rtnn.runAccelerated(cfg, stats, true);
        std::printf("  hop=%ucy: *RTNN %8llu cyc   (inner test "
                    "%5.1f cyc avg)\n",
                    hop, static_cast<unsigned long long>(m.cycles),
                    stats.findHistogram("ttaplus.inner_latency")->mean());
    }

    // --- RTA node-request coalescing -----------------------------------------
    std::printf("\nRTA memory-scheduler coalescing "
                "(Section II-C advantage 3):\n");
    for (bool coalesce : {true, false}) {
        sim::Config cfg = modeConfig(sim::AccelMode::Tta);
        cfg.rtaCoalescing = coalesce;
        BTreeWorkload btree(trees::BTreeKind::BTree, args.keys,
                            args.queries, args.seed);
        sim::StatRegistry stats;
        RunMetrics m = btree.runAccelerated(cfg, stats);
        std::printf("  %-8s B-Tree %8llu cyc, %8llu memory reads, "
                    "DRAM util %4.1f%%\n",
                    coalesce ? "on: " : "off:",
                    static_cast<unsigned long long>(m.cycles),
                    static_cast<unsigned long long>(
                        stats.counterValue("memsys.reads")),
                    100.0 * m.dramUtilization);
    }

    // --- Arbiter width -----------------------------------------------------
    std::printf("\nOperation arbiter width (default 4/cycle):\n");
    for (uint32_t width : {1u, 2u, 4u, 8u}) {
        sim::Config cfg = modeConfig(sim::AccelMode::Tta);
        cfg.rtaArbiterWidth = width;
        BTreeWorkload btree(trees::BTreeKind::BTree, args.keys,
                            args.queries, args.seed);
        sim::StatRegistry stats;
        RunMetrics m = btree.runAccelerated(cfg, stats);
        std::printf("  width=%u: B-Tree %8llu cyc\n", width,
                    static_cast<unsigned long long>(m.cycles));
    }

    std::printf("\nTakeaways: one OP-unit set throttles uop-heavy "
                "workloads (the paper's Fig 15/18 future-work tradeoff); "
                "coalescing removes about a third of the memory requests "
                "(its latency benefit is hidden by the warp buffer at "
                "this working-set size); arbiter width saturates early "
                "because the 1-request/cycle scheduler dominates.\n");
    return 0;
}
