/**
 * @file
 * Ablation study for the design choices DESIGN.md calls out (beyond the
 * paper's own sensitivity analysis in Fig 14):
 *
 *  - OP-unit set count for TTA+ (the paper's future-work direction from
 *    Fig 15: "strategically reducing the number of parallel operation
 *    units").
 *  - Crosspoint hop latency (the ICNT overhead of Fig 18).
 *  - RTA node-request coalescing across rays (Section II-C advantage 3).
 *  - Operation arbiter width.
 */

#include "bench_common.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Ablation", "TTA/TTA+ microarchitecture knobs", args);

    Sweep sweep(args);
    auto runBTree = [&args](const sim::Config &cfg,
                            sim::StatRegistry &stats) {
        BTreeWorkload wl(trees::BTreeKind::BTree, args.keys, args.queries,
                         args.seed);
        return wl.runAccelerated(cfg, stats);
    };
    auto runRtnn = [&args](const sim::Config &cfg,
                           sim::StatRegistry &stats) {
        RtnnWorkload wl(args.points, args.queries / 4, 1.0f, args.seed);
        return wl.runAccelerated(cfg, stats, true);
    };

    // --- OP-unit sets (TTA+; B-Tree + RTNN) ------------------------------
    const uint32_t kSets[] = {1, 2, 4, 8};
    std::vector<std::pair<size_t, size_t>> set_runs;
    for (uint32_t sets : kSets) {
        sim::Config cfg = modeConfig(sim::AccelMode::TtaPlus);
        cfg.opUnitCopies = sets;
        cfg.rcpUnitCopies = 3 * sets;
        std::string tag = "sets" + std::to_string(sets);
        set_runs.emplace_back(sweep.add(tag + "/btree", cfg, runBTree),
                              sweep.add(tag + "/rtnn", cfg, runRtnn));
    }

    // --- Interconnect hop latency -----------------------------------------
    const uint32_t kHops[] = {1, 2, 4, 8};
    std::vector<size_t> hop_runs;
    for (uint32_t hop : kHops) {
        sim::Config cfg = modeConfig(sim::AccelMode::TtaPlus);
        cfg.icntHopLatency = hop;
        hop_runs.push_back(
            sweep.add("hop" + std::to_string(hop) + "/rtnn", cfg,
                      runRtnn));
    }

    // --- RTA node-request coalescing ---------------------------------------
    const bool kCoalesce[] = {true, false};
    std::vector<size_t> coalesce_runs;
    for (bool coalesce : kCoalesce) {
        sim::Config cfg = modeConfig(sim::AccelMode::Tta);
        cfg.rtaCoalescing = coalesce;
        coalesce_runs.push_back(
            sweep.add(std::string("coalesce-") +
                          (coalesce ? "on" : "off") + "/btree",
                      cfg, runBTree));
    }

    // --- Arbiter width -----------------------------------------------------
    const uint32_t kWidths[] = {1, 2, 4, 8};
    std::vector<size_t> width_runs;
    for (uint32_t width : kWidths) {
        sim::Config cfg = modeConfig(sim::AccelMode::Tta);
        cfg.rtaArbiterWidth = width;
        width_runs.push_back(
            sweep.add("arbiter" + std::to_string(width) + "/btree", cfg,
                      runBTree));
    }

    sweep.run();

    std::printf("TTA+ OP-unit sets (Table II default: 4):\n");
    for (size_t i = 0; i < set_runs.size(); ++i)
        std::printf("  %u set%s: B-Tree %8llu cyc   *RTNN %8llu cyc\n",
                    kSets[i], kSets[i] == 1 ? " " : "s",
                    static_cast<unsigned long long>(
                        sweep[set_runs[i].first].cycles),
                    static_cast<unsigned long long>(
                        sweep[set_runs[i].second].cycles));

    std::printf("\nTTA+ crosspoint hop latency (default 1 cycle):\n");
    for (size_t i = 0; i < hop_runs.size(); ++i)
        std::printf("  hop=%ucy: *RTNN %8llu cyc   (inner test "
                    "%5.1f cyc avg)\n",
                    kHops[i],
                    static_cast<unsigned long long>(
                        sweep[hop_runs[i]].cycles),
                    sweep.record(hop_runs[i])
                        .stats.findHistogram("ttaplus.inner_latency")
                        ->mean());

    std::printf("\nRTA memory-scheduler coalescing "
                "(Section II-C advantage 3):\n");
    for (size_t i = 0; i < coalesce_runs.size(); ++i) {
        const RunMetrics &m = sweep[coalesce_runs[i]];
        std::printf("  %-8s B-Tree %8llu cyc, %8llu memory reads, "
                    "DRAM util %4.1f%%\n",
                    kCoalesce[i] ? "on: " : "off:",
                    static_cast<unsigned long long>(m.cycles),
                    static_cast<unsigned long long>(
                        sweep.record(coalesce_runs[i])
                            .stats.counterValue("memsys.reads")),
                    100.0 * m.dramUtilization);
    }

    std::printf("\nOperation arbiter width (default 4/cycle):\n");
    for (size_t i = 0; i < width_runs.size(); ++i)
        std::printf("  width=%u: B-Tree %8llu cyc\n", kWidths[i],
                    static_cast<unsigned long long>(
                        sweep[width_runs[i]].cycles));

    std::printf("\nTakeaways: one OP-unit set throttles uop-heavy "
                "workloads (the paper's Fig 15/18 future-work tradeoff); "
                "coalescing removes about a third of the memory requests "
                "(its latency benefit is hidden by the warp buffer at "
                "this working-set size); arbiter width saturates early "
                "because the 1-request/cycle scheduler dominates.\n");
    return 0;
}
