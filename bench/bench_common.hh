/**
 * @file
 * Shared plumbing for the figure/table reproduction benches: flag
 * parsing, run helpers for every workload x hardware level, and table
 * printing. Each bench binary regenerates one of the paper's figures or
 * tables (see DESIGN.md's experiment index) and accepts size overrides
 * so paper-scale runs are possible:
 *
 *   --keys=N --queries=N --bodies=N --points=N --res=N --seed=N
 */

#ifndef TTA_BENCH_COMMON_HH
#define TTA_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "workloads/btree_workload.hh"
#include "workloads/nbody_workload.hh"
#include "workloads/raytracing_workload.hh"
#include "workloads/rtnn_workload.hh"

namespace bench {

using namespace tta;
using namespace ::tta::workloads;

struct Args
{
    size_t keys = 100000;
    size_t queries = 16384;
    size_t bodies = 4096;
    size_t points = 32768;
    uint32_t res = 48;
    uint64_t seed = 7;

    static Args
    parse(int argc, char **argv)
    {
        Args args;
        for (int i = 1; i < argc; ++i) {
            auto grab = [&](const char *name, auto &field) {
                std::string prefix = std::string("--") + name + "=";
                if (std::strncmp(argv[i], prefix.c_str(),
                                 prefix.size()) == 0) {
                    field = std::strtoull(argv[i] + prefix.size(),
                                          nullptr, 10);
                    return true;
                }
                return false;
            };
            bool ok = grab("keys", args.keys) ||
                      grab("queries", args.queries) ||
                      grab("bodies", args.bodies) ||
                      grab("points", args.points) ||
                      grab("res", args.res) || grab("seed", args.seed);
            if (!ok)
                std::fprintf(stderr, "ignoring unknown flag %s\n",
                             argv[i]);
        }
        return args;
    }
};

inline sim::Config
modeConfig(sim::AccelMode mode)
{
    sim::Config cfg;
    cfg.accelMode = mode;
    return cfg;
}

/** One measured run. */
struct Run
{
    std::string label;
    RunMetrics metrics;
};

inline double
speedup(const RunMetrics &base, const RunMetrics &accel)
{
    return static_cast<double>(base.cycles) / accel.cycles;
}

inline double
geomean(const std::vector<double> &xs)
{
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return xs.empty() ? 0.0 : std::exp(acc / xs.size());
}

inline void
printHeader(const char *figure, const char *what, const Args &args)
{
    std::printf("==========================================================="
                "=====================\n");
    std::printf("%s: %s\n", figure, what);
    std::printf("  workload sizes: keys=%zu queries=%zu bodies=%zu "
                "points=%zu res=%ux%u seed=%llu\n",
                args.keys, args.queries, args.bodies, args.points,
                args.res, args.res,
                static_cast<unsigned long long>(args.seed));
    std::printf("  (paper scale via --keys/--queries/... overrides; "
                "shapes hold at these defaults)\n");
    std::printf("-----------------------------------------------------------"
                "---------------------\n");
}

} // namespace bench

#endif // TTA_BENCH_COMMON_HH
