/**
 * @file
 * Shared plumbing for the figure/table reproduction benches: flag
 * parsing, the parallel sweep harness over sim::ExperimentRunner, and
 * table printing. Each bench binary regenerates one of the paper's
 * figures or tables (see DESIGN.md's experiment index) and accepts size
 * overrides so paper-scale runs are possible:
 *
 *   --keys=N --queries=N --bodies=N --points=N --res=N --seed=N
 *
 * plus runner controls:
 *
 *   --jobs=N        worker threads (default: hardware concurrency)
 *   --sim-threads=N simulation threads per run under the threaded
 *                   kernel (TTA_SIM_KERNEL=threaded); 0 = auto. The
 *                   runner clamps --jobs so jobs x sim-threads never
 *                   oversubscribes the host (see EXPERIMENTS.md).
 *   --json=FILE     append one JSON record per run ("-" = stdout)
 *   --json-timing=0 omit wall_ms from the records, making them
 *                   byte-identical across --jobs settings
 *   --trace FILE[:mask]  write a Chrome trace-event JSON of every run
 *                   (also accepted as --trace=FILE[:mask]). The optional
 *                   mask selects categories (warp,rta,pipe,mem,op or
 *                   "all"). Each job records into its own sim::Tracer
 *                   (safe under --jobs N); all runs merge into FILE as
 *                   separate trace processes, and multi-job sweeps
 *                   additionally write FILE-derived per-job files.
 *                   Tracing also prints a stall-cause attribution table.
 *
 * Benches queue every simulation as a Sweep job, run the whole sweep
 * through the thread pool, then print their tables from the collected
 * results — output is identical to the old serial drivers.
 */

#ifndef TTA_BENCH_COMMON_HH
#define TTA_BENCH_COMMON_HH

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/runner.hh"
#include "sim/ticked.hh"
#include "sim/trace.hh"
#include "workloads/btree_workload.hh"
#include "workloads/nbody_workload.hh"
#include "workloads/raytracing_workload.hh"
#include "workloads/rtnn_workload.hh"

namespace bench {

using namespace tta;
using namespace ::tta::workloads;

struct Args
{
    size_t keys = 100000;
    size_t queries = 16384;
    size_t bodies = 4096;
    size_t points = 32768;
    uint32_t res = 48;
    uint64_t seed = 7;
    uint64_t jobs = 0;       //!< runner threads; 0 = hardware concurrency
    uint64_t simThreads = 0; //!< threaded-kernel threads per run; 0 = auto
    uint64_t jsonTiming = 1; //!< include wall_ms in JSON records
    uint64_t rebuildDevice = 0; //!< escape hatch: bypass WorkloadCache
    std::string json;        //!< JSON record sink; empty = off, "-" = stdout
    std::string trace;       //!< Chrome-trace sink; empty = tracing off
    uint32_t traceMask = sim::TraceAllCategories;

    /** Split "FILE[:mask]" into the trace path + category mask. The
     *  suffix counts as a mask only if Tracer::parseMask accepts it, so
     *  plain paths containing ':' still work. */
    void
    setTraceSpec(const std::string &spec)
    {
        trace = spec;
        traceMask = sim::TraceAllCategories;
        size_t colon = spec.rfind(':');
        if (colon == std::string::npos || colon + 1 >= spec.size())
            return;
        try {
            traceMask = sim::Tracer::parseMask(spec.substr(colon + 1));
            trace = spec.substr(0, colon);
        } catch (const sim::FatalError &) {
            // Not a mask: the whole spec is the filename.
        }
    }

    static Args
    parse(int argc, char **argv)
    {
        Args args;
        for (int i = 1; i < argc; ++i) {
            // --trace takes either "--trace=SPEC" or "--trace SPEC".
            if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
                args.setTraceSpec(argv[++i]);
                continue;
            }
            if (std::strcmp(argv[i], "--rebuild-device") == 0) {
                args.rebuildDevice = 1;
                continue;
            }
            auto grab = [&](const char *name, auto &field) {
                std::string prefix = std::string("--") + name + "=";
                if (std::strncmp(argv[i], prefix.c_str(),
                                 prefix.size()) == 0) {
                    field = std::strtoull(argv[i] + prefix.size(),
                                          nullptr, 10);
                    return true;
                }
                return false;
            };
            auto grabStr = [&](const char *name, std::string &field) {
                std::string prefix = std::string("--") + name + "=";
                if (std::strncmp(argv[i], prefix.c_str(),
                                 prefix.size()) == 0) {
                    field = argv[i] + prefix.size();
                    return true;
                }
                return false;
            };
            std::string trace_spec;
            bool ok = grab("keys", args.keys) ||
                      grab("queries", args.queries) ||
                      grab("bodies", args.bodies) ||
                      grab("points", args.points) ||
                      grab("res", args.res) || grab("seed", args.seed) ||
                      grab("jobs", args.jobs) ||
                      grab("sim-threads", args.simThreads) ||
                      grab("json-timing", args.jsonTiming) ||
                      grab("rebuild-device", args.rebuildDevice) ||
                      grabStr("json", args.json);
            if (!ok && grabStr("trace", trace_spec)) {
                args.setTraceSpec(trace_spec);
                ok = true;
            }
            if (!ok)
                std::fprintf(stderr, "ignoring unknown flag %s\n",
                             argv[i]);
        }
        args.applyDefaults();
        return args;
    }

    /** Apply process-wide side effects of the parsed flags. One place
     *  covers all benches: the threaded kernel reads the process
     *  default when each run's Simulator is built. Called by parse();
     *  FlagSet-based benches call it after FlagSet::parse(). */
    void
    applyDefaults() const
    {
        if (simThreads != 0) {
            sim::Simulator::setDefaultSimThreads(
                static_cast<unsigned>(simThreads));
        }
    }
};

/**
 * Registration-based CLI parser for the strict benches (bench_service,
 * bench_speed): every accepted flag is registered once with its help
 * line, `--help` is generated from the registrations (so it can never
 * drift from the accepted flags again), and unknown flags exit 64 —
 * the usage exit code shared by both binaries.
 *
 * Value flags accept both `--name=V` and `--name V`. The older benches
 * keep the permissive Args::parse (warn on unknown) unchanged.
 */
class FlagSet
{
  public:
    static constexpr int kExitUsage = 64;

    FlagSet(std::string prog, std::string blurb)
        : prog_(std::move(prog)), blurb_(std::move(blurb))
    {
    }

    /** Integer flag: --name=N (or --name N). */
    template <class T>
    void
    number(const char *name, T &field, const char *help)
    {
        add(name, Arity::Required, help, [&field](const std::string &v) {
            field = static_cast<T>(std::strtoull(v.c_str(), nullptr, 10));
        });
    }

    /** Floating-point flag. */
    void
    real(const char *name, double &field, const char *help)
    {
        add(name, Arity::Required, help, [&field](const std::string &v) {
            field = std::strtod(v.c_str(), nullptr);
        });
    }

    /** String flag. */
    void
    str(const char *name, std::string &field, const char *help)
    {
        add(name, Arity::Required, help,
            [&field](const std::string &v) { field = v; });
    }

    /** Valueless flag: presence sets @p field true. */
    void
    flag(const char *name, bool &field, const char *help)
    {
        add(name, Arity::None, help,
            [&field](const std::string &) { field = true; });
    }

    /** Valueless-or-valued flag: bare sets 1, --name=N sets N. */
    void
    toggle(const char *name, uint64_t &field, const char *help)
    {
        add(name, Arity::Optional, help, [&field](const std::string &v) {
            field = v.empty()
                        ? 1
                        : std::strtoull(v.c_str(), nullptr, 10);
        });
    }

    /** Comma-separated unsigned list; bad or empty lists exit 64. */
    void
    list(const char *name, std::vector<unsigned> &field, const char *help)
    {
        std::string flag_name = std::string("--") + name;
        add(name, Arity::Required, help,
            [&field, flag_name](const std::string &spec) {
                field.clear();
                const char *p = spec.c_str();
                while (*p) {
                    char *end = nullptr;
                    unsigned long v = std::strtoul(p, &end, 10);
                    if (end == p) {
                        std::fprintf(stderr, "bad %s list '%s'\n",
                                     flag_name.c_str(), spec.c_str());
                        std::exit(kExitUsage);
                    }
                    field.push_back(static_cast<unsigned>(v));
                    p = *end == ',' ? end + 1 : end;
                }
                if (field.empty()) {
                    std::fprintf(stderr, "empty %s list\n",
                                 flag_name.c_str());
                    std::exit(kExitUsage);
                }
            });
    }

    /** Arbitrary handler; @p takes_value decides --name vs --name=V. */
    void
    custom(const char *name, bool takes_value, const char *help,
           std::function<void(const std::string &)> fn)
    {
        add(name, takes_value ? Arity::Required : Arity::None, help,
            std::move(fn));
    }

    void
    printHelp() const
    {
        std::printf("usage: %s [flags]\n", prog_.c_str());
        if (!blurb_.empty())
            std::printf("%s\n", blurb_.c_str());
        std::printf("flags:\n");
        for (const auto &o : opts_) {
            std::string left = "--" + o.name;
            if (o.arity == Arity::Required)
                left += "=V";
            else if (o.arity == Arity::Optional)
                left += "[=V]";
            std::printf("  %-26s %s\n", left.c_str(), o.help.c_str());
        }
        std::printf("  %-26s %s\n", "--help", "print this and exit 0");
    }

    /** Parse argv; handles --help (exit 0), unknowns exit 64. */
    void
    parse(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            std::string a = argv[i];
            if (a == "--help" || a == "-h") {
                printHelp();
                std::exit(0);
            }
            const Opt *opt = nullptr;
            std::string value;
            bool have_value = false;
            if (a.rfind("--", 0) == 0) {
                size_t eq = a.find('=');
                std::string name = a.substr(2, eq == std::string::npos
                                                   ? std::string::npos
                                                   : eq - 2);
                opt = find(name);
                if (opt && eq != std::string::npos) {
                    value = a.substr(eq + 1);
                    have_value = true;
                }
            }
            if (!opt) {
                std::fprintf(stderr,
                             "unknown flag %s (--help lists flags)\n",
                             a.c_str());
                std::exit(kExitUsage);
            }
            if (opt->arity == Arity::Required && !have_value) {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "--%s needs a value\n",
                                 opt->name.c_str());
                    std::exit(kExitUsage);
                }
                value = argv[++i];
            } else if (opt->arity == Arity::None && have_value) {
                std::fprintf(stderr, "--%s takes no value\n",
                             opt->name.c_str());
                std::exit(kExitUsage);
            }
            opt->fn(value);
        }
    }

  private:
    enum class Arity
    {
        None,
        Required,
        Optional
    };

    struct Opt
    {
        std::string name;
        Arity arity;
        std::string help;
        std::function<void(const std::string &)> fn;
    };

    void
    add(const char *name, Arity arity, const char *help,
        std::function<void(const std::string &)> fn)
    {
        opts_.push_back({name, arity, help, std::move(fn)});
    }

    const Opt *
    find(const std::string &name) const
    {
        for (const auto &o : opts_)
            if (o.name == name)
                return &o;
        return nullptr;
    }

    std::string prog_;
    std::string blurb_;
    std::vector<Opt> opts_;
};

/**
 * Register the shared workload/runner flags (the ones Args::parse
 * accepts) on a FlagSet, so strict benches keep one source of truth
 * for the common surface. Call args.applyDefaults() after parse().
 */
inline void
registerCommonFlags(FlagSet &fs, Args &args)
{
    fs.number("keys", args.keys, "B-Tree key count");
    fs.number("queries", args.queries, "queries / arrivals per run");
    fs.number("bodies", args.bodies, "n-body population");
    fs.number("points", args.points, "point-cloud size");
    fs.number("res", args.res, "framebuffer resolution (NxN)");
    fs.number("seed", args.seed, "workload RNG seed");
    fs.number("jobs", args.jobs,
              "runner threads (0 = hardware concurrency)");
    fs.number("sim-threads", args.simThreads,
              "threaded-kernel threads per run (0 = auto)");
    fs.str("json", args.json,
           "append one JSON record per run ('-' = stdout)");
    fs.number("json-timing", args.jsonTiming,
              "0 omits wall_ms for byte-identical records");
    fs.toggle("rebuild-device", args.rebuildDevice,
              "bypass the WorkloadCache");
    fs.custom("trace", true, "Chrome-trace output FILE[:mask]",
              [&args](const std::string &v) { args.setTraceSpec(v); });
}

inline sim::Config
modeConfig(sim::AccelMode mode)
{
    sim::Config cfg;
    cfg.accelMode = mode;
    return cfg;
}

inline double
speedup(const RunMetrics &base, const RunMetrics &accel)
{
    return static_cast<double>(base.cycles) / accel.cycles;
}

inline double
geomean(const std::vector<double> &xs)
{
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return xs.empty() ? 0.0 : std::exp(acc / xs.size());
}

/**
 * Host-side workload build cache for sweeps that run the *same*
 * workload under several device configs (e.g. fig12 builds one B-Tree
 * per (kind, keys) three times and one RTNN index six times).
 *
 * get() builds the workload once per key and hands every run a fresh
 * deep copy of the cached prototype. Each run still constructs its own
 * device and stat registry — only the host-side build (tree
 * construction, reference query evaluation) is shared — so results are
 * bit-identical to rebuilding from scratch; tests/test_regression.cc
 * proves it and `--rebuild-device` bypasses the cache entirely.
 *
 * Thread-safe: concurrent pool jobs asking for the same key build it
 * once (the others block until the prototype is ready); distinct keys
 * build concurrently.
 */
class WorkloadCache
{
  public:
    /** @param enabled false (--rebuild-device) = always build fresh. */
    explicit WorkloadCache(bool enabled) : enabled_(enabled) {}

    template <class W, class Build>
    W
    get(const std::string &key, Build &&build)
    {
        if (!enabled_) {
            lookups_.fetch_add(1, std::memory_order_relaxed);
            return build();
        }
        auto entry = lookup<W>(key);
        std::call_once(entry->once,
                       [&] { entry->proto =
                                 std::make_shared<const W>(build()); });
        return W(*entry->proto); // fresh deep copy per run
    }

    /**
     * Like get(), but shares the immutable prototype itself instead of
     * deep-copying it — for read-only host state safely referenced by
     * many consumers at once (e.g. service tenant data shared across
     * tenants and devices). @p build must return the
     * shared_ptr<const W> to cache, so types whose internals
     * self-reference (and so must never move) are built in place.
     */
    template <class W, class Build>
    std::shared_ptr<const W>
    getShared(const std::string &key, Build &&build)
    {
        if (!enabled_) {
            lookups_.fetch_add(1, std::memory_order_relaxed);
            return build();
        }
        auto entry = lookup<W>(key);
        std::call_once(entry->once, [&] { entry->proto = build(); });
        return entry->proto;
    }

    /** Lookups that found an already-cached prototype / total. */
    uint64_t hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }
    uint64_t lookups() const
    {
        return lookups_.load(std::memory_order_relaxed);
    }

  private:
    template <class W>
    struct Entry
    {
        std::once_flag once;
        std::shared_ptr<const W> proto;
    };

    template <class W>
    std::shared_ptr<Entry<W>>
    lookup(const std::string &key)
    {
        lookups_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu_);
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            auto entry = std::make_shared<Entry<W>>();
            cache_[key] = entry;
            return entry;
        }
        hits_.fetch_add(1, std::memory_order_relaxed);
        return std::static_pointer_cast<Entry<W>>(it->second);
    }

    bool enabled_;
    std::mutex mu_;
    std::map<std::string, std::shared_ptr<void>> cache_;
    std::atomic<uint64_t> lookups_{0};
    std::atomic<uint64_t> hits_{0};
};

/**
 * A queued-up experiment sweep.
 *
 * add() enqueues one simulation (the callback builds its own workload so
 * concurrent jobs share nothing); run() executes every job across the
 * --jobs thread pool, records per-run JSON if requested, and aborts the
 * bench if any job failed. Results keep submission order: metrics(i) /
 * record(i) correspond to the i-th add().
 */
class Sweep
{
  public:
    using RunFn =
        std::function<RunMetrics(const sim::Config &, sim::StatRegistry &)>;

    explicit Sweep(const Args &args) : args_(args) {}

    /** Queue one run; returns its index into metrics()/record(). */
    size_t
    add(std::string name, const sim::Config &cfg, RunFn fn)
    {
        size_t idx = jobs_.size();
        sim::Job job;
        job.name = std::move(name);
        job.config = cfg;
        job.seed = args_.seed;
        if (!args_.trace.empty())
            job.tracer = std::make_shared<sim::Tracer>(args_.traceMask);
        job.fn = [this, idx, fn = std::move(fn)](
                     const sim::Config &config, sim::StatRegistry &stats,
                     sim::RunRecord &rec) {
            RunMetrics m = fn(config, stats);
            metrics_[idx] = m;
            rec.cycles = m.cycles;
            rec.values["simt_efficiency"] = m.simtEfficiency;
            rec.values["dram_utilization"] = m.dramUtilization;
            rec.values["insts_total"] =
                static_cast<double>(m.totalInsts());
            rec.values["flops"] = static_cast<double>(m.flops);
            rec.values["dram_bytes"] = static_cast<double>(m.dramBytes);
            rec.values["nodes_visited"] =
                static_cast<double>(m.nodesVisited);
            rec.values["node_bytes_fetched"] =
                static_cast<double>(m.nodeBytesFetched);
            rec.values["energy_total"] = m.energy.total();
        };
        jobs_.push_back(std::move(job));
        return idx;
    }

    /** Execute all queued jobs; call once, before reading results. */
    void
    run()
    {
        metrics_.assign(jobs_.size(), RunMetrics{});
        sim::ExperimentRunner runner(
            static_cast<unsigned>(args_.jobs));
        records_ = runner.run(jobs_);
        emitJson();
        emitTraces();
        for (const auto &rec : records_) {
            if (rec.failed()) {
                std::fprintf(stderr, "run '%s' failed: %s\n",
                             rec.name.c_str(), rec.error.c_str());
                std::exit(1);
            }
        }
        if (!args_.trace.empty())
            printStallReport();
    }

    const RunMetrics &metrics(size_t i) const { return metrics_[i]; }
    const RunMetrics &operator[](size_t i) const { return metrics_[i]; }
    const sim::RunRecord &record(size_t i) const { return records_[i]; }
    size_t size() const { return jobs_.size(); }

  private:
    void
    emitJson()
    {
        if (args_.json.empty())
            return;
        std::ofstream file;
        std::ostream *os = nullptr;
        if (args_.json == "-") {
            os = &std::cout;
        } else {
            file.open(args_.json, std::ios::app);
            if (!file) {
                std::fprintf(stderr, "cannot open %s for JSON records\n",
                             args_.json.c_str());
                std::exit(1);
            }
            os = &file;
        }
        for (const auto &rec : records_) {
            rec.writeJson(*os, args_.jsonTiming != 0);
            *os << "\n";
        }
    }

    /**
     * Export event traces (no-op unless --trace was given). All runs
     * merge into the requested file as separate Chrome-trace processes;
     * multi-job sweeps additionally write one file per job next to it.
     * Runs single-threaded after the pool joins, so any --jobs setting
     * is safe.
     */
    void
    emitTraces()
    {
        if (args_.trace.empty())
            return;
        std::ofstream merged(args_.trace);
        if (!merged) {
            std::fprintf(stderr, "cannot open %s for trace output\n",
                         args_.trace.c_str());
            std::exit(1);
        }
        merged << "{\"traceEvents\":[\n";
        bool first = true;
        uint64_t dropped = 0;
        for (size_t i = 0; i < jobs_.size(); ++i) {
            if (!jobs_[i].tracer)
                continue;
            jobs_[i].tracer->writeEvents(merged,
                                         static_cast<uint32_t>(i + 1),
                                         jobs_[i].name, first);
            dropped += jobs_[i].tracer->droppedEvents();
        }
        merged << "\n],\"displayTimeUnit\":\"ns\"}\n";

        if (jobs_.size() > 1) {
            for (size_t i = 0; i < jobs_.size(); ++i) {
                if (!jobs_[i].tracer)
                    continue;
                std::ofstream per(perJobTracePath(jobs_[i].name));
                if (per)
                    jobs_[i].tracer->writeJson(per, jobs_[i].name);
            }
        }
        std::fprintf(stderr,
                     "trace: wrote %s (categories: %s)%s\n",
                     args_.trace.c_str(),
                     sim::Tracer::maskToString(args_.traceMask).c_str(),
                     dropped ? " [ring overflow: oldest events dropped]"
                             : "");
    }

    /** "<stem>.<sanitized job name><ext>" next to the merged file. */
    std::string
    perJobTracePath(const std::string &job_name) const
    {
        std::string safe;
        for (char c : job_name) {
            safe += (std::isalnum(static_cast<unsigned char>(c)) ||
                     c == '-' || c == '_')
                        ? c : '_';
        }
        size_t dot = args_.trace.rfind('.');
        size_t slash = args_.trace.rfind('/');
        if (dot == std::string::npos ||
            (slash != std::string::npos && dot < slash)) {
            return args_.trace + "." + safe + ".json";
        }
        return args_.trace.substr(0, dot) + "." + safe +
               args_.trace.substr(dot);
    }

    /**
     * Per-run stall-cause attribution derived from the core counters
     * (see SimtCore::classifyStall). "accel" is the paper's
     * "intersection busy" (the SM parked while traversal runs on the
     * accelerator). Reconvergence never stalls issue in this model —
     * divergence costs show up as SIMT efficiency instead.
     */
    void
    printStallReport() const
    {
        std::printf("-----------------------------------------------------"
                    "---------------------------\n");
        std::printf("Stall-cause attribution (cycles; %% of all stall "
                    "cycles):\n");
        std::printf("  %-28s %12s %8s %8s %8s %8s\n", "run", "stall_cyc",
                    "issue", "mem", "accel", "exec");
        for (const auto &rec : records_) {
            auto total = rec.stats.counterValue("core.stall_cycles");
            auto pct = [&](const char *name) {
                return total == 0
                           ? 0.0
                           : 100.0 * rec.stats.counterValue(name) / total;
            };
            std::printf("  %-28s %12llu %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
                        rec.name.c_str(),
                        static_cast<unsigned long long>(total),
                        pct("core.stall_issue"), pct("core.stall_mem"),
                        pct("core.stall_accel"), pct("core.stall_exec"));
        }
    }

    Args args_;
    std::vector<sim::Job> jobs_;
    std::vector<RunMetrics> metrics_;
    std::vector<sim::RunRecord> records_;
};

inline void
printHeader(const char *figure, const char *what, const Args &args)
{
    std::printf("==========================================================="
                "=====================\n");
    std::printf("%s: %s\n", figure, what);
    std::printf("  workload sizes: keys=%zu queries=%zu bodies=%zu "
                "points=%zu res=%ux%u seed=%llu\n",
                args.keys, args.queries, args.bodies, args.points,
                args.res, args.res,
                static_cast<unsigned long long>(args.seed));
    std::printf("  (paper scale via --keys/--queries/... overrides; "
                "shapes hold at these defaults)\n");
    std::printf("-----------------------------------------------------------"
                "---------------------\n");
}

} // namespace bench

#endif // TTA_BENCH_COMMON_HH
