/**
 * @file
 * Shared plumbing for the figure/table reproduction benches: flag
 * parsing, the parallel sweep harness over sim::ExperimentRunner, and
 * table printing. Each bench binary regenerates one of the paper's
 * figures or tables (see DESIGN.md's experiment index) and accepts size
 * overrides so paper-scale runs are possible:
 *
 *   --keys=N --queries=N --bodies=N --points=N --res=N --seed=N
 *
 * plus runner controls:
 *
 *   --jobs=N        worker threads (default: hardware concurrency)
 *   --json=FILE     append one JSON record per run ("-" = stdout)
 *   --json-timing=0 omit wall_ms from the records, making them
 *                   byte-identical across --jobs settings
 *
 * Benches queue every simulation as a Sweep job, run the whole sweep
 * through the thread pool, then print their tables from the collected
 * results — output is identical to the old serial drivers.
 */

#ifndef TTA_BENCH_COMMON_HH
#define TTA_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/config.hh"
#include "sim/runner.hh"
#include "workloads/btree_workload.hh"
#include "workloads/nbody_workload.hh"
#include "workloads/raytracing_workload.hh"
#include "workloads/rtnn_workload.hh"

namespace bench {

using namespace tta;
using namespace ::tta::workloads;

struct Args
{
    size_t keys = 100000;
    size_t queries = 16384;
    size_t bodies = 4096;
    size_t points = 32768;
    uint32_t res = 48;
    uint64_t seed = 7;
    uint64_t jobs = 0;       //!< runner threads; 0 = hardware concurrency
    uint64_t jsonTiming = 1; //!< include wall_ms in JSON records
    std::string json;        //!< JSON record sink; empty = off, "-" = stdout

    static Args
    parse(int argc, char **argv)
    {
        Args args;
        for (int i = 1; i < argc; ++i) {
            auto grab = [&](const char *name, auto &field) {
                std::string prefix = std::string("--") + name + "=";
                if (std::strncmp(argv[i], prefix.c_str(),
                                 prefix.size()) == 0) {
                    field = std::strtoull(argv[i] + prefix.size(),
                                          nullptr, 10);
                    return true;
                }
                return false;
            };
            auto grabStr = [&](const char *name, std::string &field) {
                std::string prefix = std::string("--") + name + "=";
                if (std::strncmp(argv[i], prefix.c_str(),
                                 prefix.size()) == 0) {
                    field = argv[i] + prefix.size();
                    return true;
                }
                return false;
            };
            bool ok = grab("keys", args.keys) ||
                      grab("queries", args.queries) ||
                      grab("bodies", args.bodies) ||
                      grab("points", args.points) ||
                      grab("res", args.res) || grab("seed", args.seed) ||
                      grab("jobs", args.jobs) ||
                      grab("json-timing", args.jsonTiming) ||
                      grabStr("json", args.json);
            if (!ok)
                std::fprintf(stderr, "ignoring unknown flag %s\n",
                             argv[i]);
        }
        return args;
    }
};

inline sim::Config
modeConfig(sim::AccelMode mode)
{
    sim::Config cfg;
    cfg.accelMode = mode;
    return cfg;
}

inline double
speedup(const RunMetrics &base, const RunMetrics &accel)
{
    return static_cast<double>(base.cycles) / accel.cycles;
}

inline double
geomean(const std::vector<double> &xs)
{
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return xs.empty() ? 0.0 : std::exp(acc / xs.size());
}

/**
 * A queued-up experiment sweep.
 *
 * add() enqueues one simulation (the callback builds its own workload so
 * concurrent jobs share nothing); run() executes every job across the
 * --jobs thread pool, records per-run JSON if requested, and aborts the
 * bench if any job failed. Results keep submission order: metrics(i) /
 * record(i) correspond to the i-th add().
 */
class Sweep
{
  public:
    using RunFn =
        std::function<RunMetrics(const sim::Config &, sim::StatRegistry &)>;

    explicit Sweep(const Args &args) : args_(args) {}

    /** Queue one run; returns its index into metrics()/record(). */
    size_t
    add(std::string name, const sim::Config &cfg, RunFn fn)
    {
        size_t idx = jobs_.size();
        sim::Job job;
        job.name = std::move(name);
        job.config = cfg;
        job.seed = args_.seed;
        job.fn = [this, idx, fn = std::move(fn)](
                     const sim::Config &config, sim::StatRegistry &stats,
                     sim::RunRecord &rec) {
            RunMetrics m = fn(config, stats);
            metrics_[idx] = m;
            rec.cycles = m.cycles;
            rec.values["simt_efficiency"] = m.simtEfficiency;
            rec.values["dram_utilization"] = m.dramUtilization;
            rec.values["insts_total"] =
                static_cast<double>(m.totalInsts());
            rec.values["flops"] = static_cast<double>(m.flops);
            rec.values["dram_bytes"] = static_cast<double>(m.dramBytes);
            rec.values["nodes_visited"] =
                static_cast<double>(m.nodesVisited);
            rec.values["energy_total"] = m.energy.total();
        };
        jobs_.push_back(std::move(job));
        return idx;
    }

    /** Execute all queued jobs; call once, before reading results. */
    void
    run()
    {
        metrics_.assign(jobs_.size(), RunMetrics{});
        sim::ExperimentRunner runner(
            static_cast<unsigned>(args_.jobs));
        records_ = runner.run(jobs_);
        emitJson();
        for (const auto &rec : records_) {
            if (rec.failed()) {
                std::fprintf(stderr, "run '%s' failed: %s\n",
                             rec.name.c_str(), rec.error.c_str());
                std::exit(1);
            }
        }
    }

    const RunMetrics &metrics(size_t i) const { return metrics_[i]; }
    const RunMetrics &operator[](size_t i) const { return metrics_[i]; }
    const sim::RunRecord &record(size_t i) const { return records_[i]; }
    size_t size() const { return jobs_.size(); }

  private:
    void
    emitJson()
    {
        if (args_.json.empty())
            return;
        std::ofstream file;
        std::ostream *os = nullptr;
        if (args_.json == "-") {
            os = &std::cout;
        } else {
            file.open(args_.json, std::ios::app);
            if (!file) {
                std::fprintf(stderr, "cannot open %s for JSON records\n",
                             args_.json.c_str());
                std::exit(1);
            }
            os = &file;
        }
        for (const auto &rec : records_) {
            rec.writeJson(*os, args_.jsonTiming != 0);
            *os << "\n";
        }
    }

    Args args_;
    std::vector<sim::Job> jobs_;
    std::vector<RunMetrics> metrics_;
    std::vector<sim::RunRecord> records_;
};

inline void
printHeader(const char *figure, const char *what, const Args &args)
{
    std::printf("==========================================================="
                "=====================\n");
    std::printf("%s: %s\n", figure, what);
    std::printf("  workload sizes: keys=%zu queries=%zu bodies=%zu "
                "points=%zu res=%ux%u seed=%llu\n",
                args.keys, args.queries, args.bodies, args.points,
                args.res, args.res,
                static_cast<unsigned long long>(args.seed));
    std::printf("  (paper scale via --keys/--queries/... overrides; "
                "shapes hold at these defaults)\n");
    std::printf("-----------------------------------------------------------"
                "---------------------\n");
}

} // namespace bench

#endif // TTA_BENCH_COMMON_HH
