/**
 * @file
 * Micro-benchmarks (google-benchmark) for the hot building blocks:
 * functional intersection tests, the query-key unit, the coalescer,
 * cache accesses, the TTA+ engine walk, and the SIMT interpreter. These
 * guard the *simulator's* own performance — the figure benches run
 * millions of these operations.
 */

#include <benchmark/benchmark.h>

#include "geom/intersect.hh"
#include "mem/cache.hh"
#include "mem/coalescer.hh"
#include "sim/rng.hh"
#include "sim/runner.hh"
#include "tta/query_key_unit.hh"
#include "ttaplus/engine.hh"

using namespace tta;

static void
BM_RayBox(benchmark::State &state)
{
    geom::Aabb box({0, 0, 0}, {1, 1, 1});
    geom::Ray ray;
    ray.origin = {-2, 0.4f, 0.6f};
    ray.dir = geom::normalize({1.0f, 0.05f, -0.02f});
    for (auto _ : state)
        benchmark::DoNotOptimize(geom::rayBox(ray, box));
}
BENCHMARK(BM_RayBox);

static void
BM_RayTriangle(benchmark::State &state)
{
    geom::Vec3 v0(0, 0, 0), v1(1, 0, 0), v2(0, 1, 0);
    geom::Ray ray;
    ray.origin = {0.3f, 0.3f, 1};
    ray.dir = {0, 0, -1};
    for (auto _ : state)
        benchmark::DoNotOptimize(geom::rayTriangle(ray, v0, v1, v2));
}
BENCHMARK(BM_RayTriangle);

static void
BM_QueryKeyUnit(benchmark::State &state)
{
    float keys[9] = {2, 4, 6, 8, 10, 12, 14, 16, 18};
    float query = 9.0f;
    for (auto _ : state) {
        benchmark::DoNotOptimize(::tta::tta::queryKeyUnit(query, keys));
        query += 2.0f;
        if (query > 20.0f)
            query = 1.0f;
    }
}
BENCHMARK(BM_QueryKeyUnit);

static void
BM_Coalescer(benchmark::State &state)
{
    std::vector<mem::Addr> addrs(32);
    sim::Rng rng(1);
    for (auto &a : addrs)
        a = 0x10000 + rng.nextBounded(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            mem::coalesce(addrs, 0xffffffffu, 4, 128));
}
BENCHMARK(BM_Coalescer)->Arg(128)->Arg(4096)->Arg(1 << 20);

static void
BM_CacheAccess(benchmark::State &state)
{
    sim::StatRegistry stats;
    mem::Cache cache("c", 64 * 1024, 512, 128, 64, stats);
    sim::Rng rng(2);
    for (auto _ : state) {
        mem::Addr line = (rng.nextBounded(1024)) * 128;
        auto r = cache.access(line, false);
        if (r == mem::Cache::Result::MissNew ||
            r == mem::Cache::Result::NoMshr)
            cache.fill(line);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_CacheAccess);

static void
BM_TtaPlusEngineWalk(benchmark::State &state)
{
    sim::Config cfg;
    sim::StatRegistry stats;
    ttaplus::TtaPlusEngine engine(cfg, stats);
    auto prog = ttaplus::programs::rayBoxInner();
    sim::Cycle now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.execute(now, prog, false));
        now += 4;
    }
}
BENCHMARK(BM_TtaPlusEngineWalk);

/** Dispatch overhead of the parallel experiment runner: jobs-per-second
 *  for trivial job bodies at 1..N worker threads. The figure benches put
 *  whole simulations behind this, so overhead must stay negligible. */
static void
BM_ExperimentRunner(benchmark::State &state)
{
    const size_t n_jobs = 64;
    std::vector<sim::Job> jobs(n_jobs);
    for (size_t i = 0; i < n_jobs; ++i) {
        jobs[i].name = "job" + std::to_string(i);
        jobs[i].fn = [](const sim::Config &, sim::StatRegistry &stats,
                        sim::RunRecord &rec) {
            ++stats.counter("noop");
            rec.cycles = 1;
        };
    }
    sim::ExperimentRunner runner(
        static_cast<unsigned>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(runner.run(jobs));
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * n_jobs));
}
BENCHMARK(BM_ExperimentRunner)->Arg(1)->Arg(2)->Arg(4);

BENCHMARK_MAIN();
