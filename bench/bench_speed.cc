/**
 * @file
 * Simulator-speed harness across kernels (BENCH_*.json).
 *
 * Runs a representative workload mix under the polling reference
 * kernel, the event-driven kernel, and the threaded kernel at each
 * requested thread count, timing each run and reading the scheduler
 * telemetry (processed vs skipped cycles). Every kernel and thread
 * count must agree on every simulated cycle count (the bench aborts
 * otherwise: this doubles as a cross-kernel equivalence check), so the
 * wall-clock ratios are pure simulator-speed measurements, not model
 * changes.
 *
 *   --keys/--queries/--bodies/--points/--seed   workload sizes
 *   --bench=SUBSTR              only run benches whose name contains
 *                               SUBSTR (e.g. --bench=rtnn/tta)
 *   --sim-threads=LIST          comma-separated thread counts for the
 *                               threaded kernel (default "0" = auto);
 *                               e.g. --sim-threads=1,2,4,8
 *   --sim-epoch=LIST            comma-separated epoch sizes for the
 *                               threaded kernel (default "0" = auto:
 *                               the machine model's limit); every
 *                               (threads, epoch) pair is timed
 *   --json=FILE                 write the report as JSON ("-" = stdout)
 *   --check-skip-fraction=PCT   fail unless the event kernel skipped
 *                               at least PCT% of cycles (CI perf smoke)
 *   --check-threaded-speedup=X  fail unless the best threaded
 *                               configuration reaches X times the event
 *                               kernel's wall clock (CI perf smoke)
 *
 * Exit codes are distinct per failure class so CI can tell a
 * correctness break from a performance regression:
 *   2  cross-kernel cycle mismatch (correctness: the offending bench,
 *      kernel pair, thread count and epoch size are printed)
 *   3  --check-threaded-speedup unmet (performance gate)
 *   4  --check-skip-fraction unmet (performance gate)
 *   64 usage error (bad flag or list syntax)
 *   1  I/O error (e.g. unwritable --json path)
 *
 * scripts/record_bench.sh wraps this binary into the committed
 * BENCH_4.json / BENCH_5.json / BENCH_6.json.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"
#include "workloads/btree_workload.hh"
#include "workloads/nbody_workload.hh"
#include "workloads/rtnn_workload.hh"

using namespace tta;
using namespace ::tta::workloads;

namespace {

// Distinct exit codes; see the file comment.
constexpr int kExitCycleMismatch = 2;
constexpr int kExitSpeedupGate = 3;
constexpr int kExitSkipGate = 4;
constexpr int kExitUsage = 64;

struct SpeedArgs
{
    size_t keys = 20000;
    size_t queries = 4096;
    size_t bodies = 2048;
    size_t points = 8192;
    uint64_t seed = 7;
    std::string json;
    std::string benchFilter; // substring match; empty = all
    std::vector<unsigned> simThreads = {0}; // threaded-kernel sweep
    std::vector<unsigned> simEpochs = {0};  // epoch-size sweep
    double checkSkipFraction = -1.0;    // percent; <0 = no check
    double checkThreadedSpeedup = -1.0; // ratio; <0 = no check
};

std::vector<unsigned>
parseList(const char *flag, const char *spec)
{
    std::vector<unsigned> out;
    const char *p = spec;
    while (*p) {
        char *end = nullptr;
        unsigned long v = std::strtoul(p, &end, 10);
        if (end == p) {
            std::fprintf(stderr, "bad %s list '%s'\n", flag, spec);
            std::exit(kExitUsage);
        }
        out.push_back(static_cast<unsigned>(v));
        p = *end == ',' ? end + 1 : end;
    }
    if (out.empty()) {
        std::fprintf(stderr, "empty %s list\n", flag);
        std::exit(kExitUsage);
    }
    return out;
}

SpeedArgs
parseArgs(int argc, char **argv)
{
    SpeedArgs args;
    for (int i = 1; i < argc; ++i) {
        auto grab = [&](const char *name, auto &field) {
            std::string prefix = std::string("--") + name + "=";
            if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) != 0)
                return false;
            field = std::strtoull(argv[i] + prefix.size(), nullptr, 10);
            return true;
        };
        std::string prefix;
        bool ok = grab("keys", args.keys) ||
                  grab("queries", args.queries) ||
                  grab("bodies", args.bodies) ||
                  grab("points", args.points) || grab("seed", args.seed);
        if (!ok && std::strncmp(argv[i], "--json=", 7) == 0) {
            args.json = argv[i] + 7;
            ok = true;
        }
        if (!ok && std::strncmp(argv[i], "--bench=", 8) == 0) {
            args.benchFilter = argv[i] + 8;
            ok = true;
        }
        if (!ok && std::strncmp(argv[i], "--sim-threads=", 14) == 0) {
            args.simThreads = parseList("--sim-threads", argv[i] + 14);
            ok = true;
        }
        if (!ok && std::strncmp(argv[i], "--sim-epoch=", 12) == 0) {
            args.simEpochs = parseList("--sim-epoch", argv[i] + 12);
            ok = true;
        }
        if (!ok &&
            std::strncmp(argv[i], "--check-skip-fraction=", 22) == 0) {
            args.checkSkipFraction = std::strtod(argv[i] + 22, nullptr);
            ok = true;
        }
        if (!ok &&
            std::strncmp(argv[i], "--check-threaded-speedup=", 25) == 0) {
            args.checkThreadedSpeedup =
                std::strtod(argv[i] + 25, nullptr);
            ok = true;
        }
        if (!ok) {
            std::fprintf(stderr, "unknown flag %s\n", argv[i]);
            std::exit(kExitUsage);
        }
    }
    return args;
}

struct Bench
{
    std::string name;
    sim::AccelMode mode;
    std::function<RunMetrics(const sim::Config &, sim::StatRegistry &)> fn;
};

struct RunResult
{
    std::string bench;
    const char *kernel;
    unsigned simThreads = 0; //!< threaded kernel only; 0 elsewhere
    unsigned simEpoch = 0;   //!< threaded kernel only; 0 = auto
    uint64_t cycles = 0;
    double wallSeconds = 0.0;
    double cyclesPerSec = 0.0;
    double skippedFraction = 0.0;
};

RunResult
timeOne(const Bench &bench, sim::Simulator::Kernel kernel,
        unsigned sim_threads = 0, unsigned sim_epoch = 0)
{
    sim::Simulator::setDefaultKernel(kernel);
    if (kernel == sim::Simulator::Kernel::Threaded) {
        sim::Simulator::setDefaultSimThreads(sim_threads);
        sim::Simulator::setDefaultSimEpoch(sim_epoch);
    }
    sim::SchedulerTelemetry::reset();
    sim::Config cfg;
    cfg.accelMode = bench.mode;
    sim::StatRegistry stats;
    auto start = std::chrono::steady_clock::now();
    RunMetrics m = bench.fn(cfg, stats);
    auto stop = std::chrono::steady_clock::now();
    sim::Simulator::resetDefaultKernel();
    sim::Simulator::resetDefaultSimThreads();
    sim::Simulator::resetDefaultSimEpoch();

    RunResult r;
    r.bench = bench.name;
    switch (kernel) {
      case sim::Simulator::Kernel::Polling:
        r.kernel = "polling";
        break;
      case sim::Simulator::Kernel::EventDriven:
        r.kernel = "event";
        break;
      case sim::Simulator::Kernel::Threaded:
        r.kernel = "threaded";
        break;
    }
    r.simThreads =
        kernel == sim::Simulator::Kernel::Threaded ? sim_threads : 0;
    r.simEpoch =
        kernel == sim::Simulator::Kernel::Threaded ? sim_epoch : 0;
    r.cycles = m.cycles;
    r.wallSeconds = std::chrono::duration<double>(stop - start).count();
    uint64_t processed = sim::SchedulerTelemetry::cyclesTicked();
    uint64_t skipped = sim::SchedulerTelemetry::cyclesSkipped();
    r.cyclesPerSec = r.wallSeconds > 0.0
                         ? (processed + skipped) / r.wallSeconds
                         : 0.0;
    r.skippedFraction = sim::SchedulerTelemetry::skippedFraction();
    return r;
}

void
writeJson(std::ostream &os, const std::vector<RunResult> &runs,
          double speedup, double threaded_speedup, double event_skipped)
{
    os << "{\n  \"bench\": \"bench_speed\",\n  \"runs\": [\n";
    for (size_t i = 0; i < runs.size(); ++i) {
        const RunResult &r = runs[i];
        char buf[320];
        std::snprintf(buf, sizeof(buf),
                      "    {\"bench\": \"%s\", \"kernel\": \"%s\", "
                      "\"sim_threads\": %u, \"sim_epoch\": %u, "
                      "\"cycles\": %llu, \"wall_s\": %.4f, "
                      "\"cycles_per_sec\": %.0f, "
                      "\"skipped_cycle_fraction\": %.4f}",
                      r.bench.c_str(), r.kernel, r.simThreads, r.simEpoch,
                      static_cast<unsigned long long>(r.cycles),
                      r.wallSeconds, r.cyclesPerSec, r.skippedFraction);
        os << buf << (i + 1 < runs.size() ? ",\n" : "\n");
    }
    char buf[240];
    std::snprintf(buf, sizeof(buf),
                  "  ],\n  \"summary\": {\"wall_clock_speedup\": %.2f, "
                  "\"threaded_vs_event_speedup\": %.2f, "
                  "\"event_skipped_cycle_fraction\": %.4f}\n}\n",
                  speedup, threaded_speedup, event_skipped);
    os << buf;
}

} // namespace

int
main(int argc, char **argv)
{
    SpeedArgs args = parseArgs(argc, argv);

    std::vector<Bench> benches;
    benches.push_back(
        {"btree/base", sim::AccelMode::BaselineGpu,
         [&](const sim::Config &cfg, sim::StatRegistry &stats) {
             BTreeWorkload wl(trees::BTreeKind::BTree, args.keys,
                              args.queries, args.seed);
             return wl.runBaseline(cfg, stats);
         }});
    benches.push_back(
        {"btree/tta", sim::AccelMode::Tta,
         [&](const sim::Config &cfg, sim::StatRegistry &stats) {
             BTreeWorkload wl(trees::BTreeKind::BTree, args.keys,
                              args.queries, args.seed);
             return wl.runAccelerated(cfg, stats);
         }});
    benches.push_back(
        {"nbody/ttaplus", sim::AccelMode::TtaPlus,
         [&](const sim::Config &cfg, sim::StatRegistry &stats) {
             NBodyWorkload wl(2, args.bodies, args.seed);
             return wl.runAccelerated(cfg, stats, false);
         }});
    benches.push_back(
        {"nbody3d/fused", sim::AccelMode::TtaPlus,
         [&](const sim::Config &cfg, sim::StatRegistry &stats) {
             NBodyWorkload wl(3, args.bodies, args.seed);
             return wl.runAccelerated(cfg, stats, true);
         }});
    benches.push_back(
        {"rtnn/base", sim::AccelMode::BaselineGpu,
         [&](const sim::Config &cfg, sim::StatRegistry &stats) {
             RtnnWorkload wl(args.points, args.queries / 4, 1.0f,
                             args.seed);
             return wl.runBaseline(cfg, stats);
         }});
    benches.push_back(
        {"rtnn/tta", sim::AccelMode::Tta,
         [&](const sim::Config &cfg, sim::StatRegistry &stats) {
             RtnnWorkload wl(args.points, args.queries / 4, 1.0f,
                             args.seed);
             return wl.runAccelerated(cfg, stats, false);
         }});

    std::vector<RunResult> runs;
    double wall_polling = 0.0, wall_event = 0.0;
    // Per-(thread count, epoch size) threaded wall clock, flattened
    // threads-major like the sweep loop below.
    const size_t n_pairs = args.simThreads.size() * args.simEpochs.size();
    std::vector<double> wall_threaded(n_pairs, 0.0);
    uint64_t skipped_total = 0, cycle_total = 0;
    bool mismatch = false;
    std::printf("%-16s %10s %12s %10s %14s %9s\n", "bench", "kernel",
                "cycles", "wall_s", "cycles/sec", "skipped");
    auto report = [&](const RunResult &r) {
        char kernel[32];
        if (r.kernel == std::string("threaded")) {
            std::snprintf(kernel, sizeof(kernel), "thr/%u/k%u",
                          r.simThreads, r.simEpoch);
        } else {
            std::snprintf(kernel, sizeof(kernel), "%s", r.kernel);
        }
        std::printf("%-16s %10s %12llu %10.3f %14.0f %8.1f%%\n",
                    r.bench.c_str(), kernel,
                    static_cast<unsigned long long>(r.cycles),
                    r.wallSeconds, r.cyclesPerSec,
                    100.0 * r.skippedFraction);
        runs.push_back(r);
    };
    auto checkCycles = [&](const RunResult &ref, const RunResult &r) {
        if (ref.cycles == r.cycles)
            return;
        std::fprintf(stderr,
                     "FAIL: %s simulated %llu cycles under %s but %llu "
                     "under %s (sim_threads=%u, sim_epoch=%u)\n",
                     r.bench.c_str(),
                     static_cast<unsigned long long>(ref.cycles),
                     ref.kernel,
                     static_cast<unsigned long long>(r.cycles), r.kernel,
                     r.simThreads, r.simEpoch);
        mismatch = true;
    };
    for (const Bench &bench : benches) {
        if (!args.benchFilter.empty() &&
            bench.name.find(args.benchFilter) == std::string::npos)
            continue;
        RunResult polling =
            timeOne(bench, sim::Simulator::Kernel::Polling);
        RunResult event =
            timeOne(bench, sim::Simulator::Kernel::EventDriven);
        report(polling);
        report(event);
        checkCycles(polling, event);
        for (size_t ti = 0; ti < args.simThreads.size(); ++ti) {
            for (size_t ei = 0; ei < args.simEpochs.size(); ++ei) {
                RunResult threaded = timeOne(
                    bench, sim::Simulator::Kernel::Threaded,
                    args.simThreads[ti], args.simEpochs[ei]);
                report(threaded);
                checkCycles(event, threaded);
                wall_threaded[ti * args.simEpochs.size() + ei] +=
                    threaded.wallSeconds;
            }
        }
        wall_polling += polling.wallSeconds;
        wall_event += event.wallSeconds;
        // Aggregate skip fraction across the event runs, cycle-weighted.
        uint64_t total = event.cycles;
        cycle_total += total;
        skipped_total +=
            static_cast<uint64_t>(event.skippedFraction * total);
    }
    if (mismatch)
        return kExitCycleMismatch;

    double speedup = wall_event > 0.0 ? wall_polling / wall_event : 0.0;
    double best_threaded = 0.0;
    for (size_t ti = 0; ti < args.simThreads.size(); ++ti) {
        for (size_t ei = 0; ei < args.simEpochs.size(); ++ei) {
            double w = wall_threaded[ti * args.simEpochs.size() + ei];
            double s = w > 0.0 ? wall_event / w : 0.0;
            std::printf("threaded speedup vs event (sim-threads=%u, "
                        "sim-epoch=%u): %.2fx\n",
                        args.simThreads[ti], args.simEpochs[ei], s);
            best_threaded = std::max(best_threaded, s);
        }
    }
    double event_skipped =
        cycle_total ? static_cast<double>(skipped_total) / cycle_total
                    : 0.0;
    std::printf("wall-clock speedup (polling / event): %.2fx; "
                "event kernel skipped %.1f%% of cycles\n",
                speedup, 100.0 * event_skipped);

    if (!args.json.empty()) {
        if (args.json == "-") {
            writeJson(std::cout, runs, speedup, best_threaded,
                      event_skipped);
        } else {
            std::ofstream os(args.json);
            if (!os) {
                std::fprintf(stderr, "cannot open %s\n",
                             args.json.c_str());
                return 1;
            }
            writeJson(os, runs, speedup, best_threaded, event_skipped);
        }
    }

    if (args.checkSkipFraction >= 0.0 &&
        100.0 * event_skipped < args.checkSkipFraction) {
        std::fprintf(stderr,
                     "FAIL: event kernel skipped only %.1f%% of cycles "
                     "(required >= %.1f%%)\n",
                     100.0 * event_skipped, args.checkSkipFraction);
        return kExitSkipGate;
    }
    if (args.checkThreadedSpeedup >= 0.0 &&
        best_threaded < args.checkThreadedSpeedup) {
        std::fprintf(stderr,
                     "FAIL: best threaded speedup vs event is %.2fx "
                     "(required >= %.2fx; swept sim-threads x sim-epoch "
                     "pairs are listed above)\n",
                     best_threaded, args.checkThreadedSpeedup);
        return kExitSpeedupGate;
    }
    return 0;
}
