/**
 * @file
 * Simulator-speed harness across kernels (BENCH_*.json).
 *
 * Runs a representative workload mix under the polling reference
 * kernel, the event-driven kernel, and the threaded kernel at each
 * requested thread count, timing each run and reading the scheduler
 * telemetry (processed vs skipped cycles). Every kernel and thread
 * count must agree on every simulated cycle count (the bench aborts
 * otherwise: this doubles as a cross-kernel equivalence check), so the
 * wall-clock ratios are pure simulator-speed measurements, not model
 * changes.
 *
 *   --keys/--queries/--bodies/--points/--seed   workload sizes
 *   --bench=SUBSTR              only run benches whose name contains
 *                               SUBSTR (e.g. --bench=rtnn/tta)
 *   --sim-threads=LIST          comma-separated thread counts for the
 *                               threaded kernel (default "0" = auto);
 *                               e.g. --sim-threads=1,2,4,8
 *   --sim-epoch=LIST            comma-separated epoch sizes for the
 *                               threaded kernel (default "0" = auto:
 *                               the machine model's limit); every
 *                               (threads, epoch) pair is timed
 *   --json=FILE                 write the report as JSON ("-" = stdout)
 *   --check-skip-fraction=PCT   fail unless the event kernel skipped
 *                               at least PCT% of cycles (CI perf smoke)
 *   --check-threaded-speedup=X  fail unless the best threaded
 *                               configuration reaches X times the event
 *                               kernel's wall clock (CI perf smoke)
 *   --check-wide-speedup=X      fail unless every gated wide/* config
 *                               (raytrace, rtnn) reaches X times the
 *                               scalar tree's wall clock. Auto-skipped
 *                               (with a note) when geom/simd.hh fell
 *                               back to the scalar backend — there is
 *                               nothing to gate without vector units.
 *
 * Besides the simulator-kernel matrix, a host-side functional section
 * (bench names wide/raytrace, wide/rtnn, wide/rtree) times the scalar
 * binary trees against the wide SoA layouts driven by the batched SIMD
 * kernels, verifying identical query results before reporting speedups.
 *
 * Exit codes are distinct per failure class so CI can tell a
 * correctness break from a performance regression:
 *   2  cross-kernel cycle mismatch or wide-vs-scalar result divergence
 *      (correctness: the offending bench and configuration are printed)
 *   3  --check-threaded-speedup unmet (performance gate)
 *   4  --check-skip-fraction unmet (performance gate)
 *   5  --check-wide-speedup unmet (performance gate)
 *   64 usage error (bad flag or list syntax)
 *   1  I/O error (e.g. unwritable --json path)
 *
 * scripts/record_bench.sh wraps this binary into the committed
 * BENCH_4.json / BENCH_5.json / BENCH_6.json / BENCH_7.json.
 */

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"

#include "geom/intersect.hh"
#include "sim/config.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"
#include "trees/bvh.hh"
#include "trees/rtree.hh"
#include "workloads/btree_workload.hh"
#include "workloads/nbody_workload.hh"
#include "workloads/rtnn_workload.hh"

using namespace tta;
using namespace ::tta::workloads;

namespace {

// Distinct exit codes; see the file comment.
constexpr int kExitCycleMismatch = 2;
constexpr int kExitSpeedupGate = 3;
constexpr int kExitSkipGate = 4;
constexpr int kExitWideGate = 5;
// Usage errors exit 64 via bench::FlagSet::kExitUsage.

struct SpeedArgs
{
    size_t keys = 20000;
    size_t queries = 4096;
    size_t bodies = 2048;
    size_t points = 8192;
    uint64_t seed = 7;
    std::string json;
    std::string benchFilter; // substring match; empty = all
    std::vector<unsigned> simThreads = {0}; // threaded-kernel sweep
    std::vector<unsigned> simEpochs = {0};  // epoch-size sweep
    double checkSkipFraction = -1.0;    // percent; <0 = no check
    double checkThreadedSpeedup = -1.0; // ratio; <0 = no check
    double checkWideSpeedup = -1.0;     // ratio; <0 = no check
};

SpeedArgs
parseArgs(int argc, char **argv)
{
    SpeedArgs args;
    bench::FlagSet fs(argv[0],
                      "simulator-speed harness across kernels "
                      "(BENCH_4/5/6/7); see bench/bench_speed.cc");
    fs.number("keys", args.keys, "B-Tree key count");
    fs.number("queries", args.queries, "queries per workload");
    fs.number("bodies", args.bodies, "n-body population");
    fs.number("points", args.points, "point-cloud size");
    fs.number("seed", args.seed, "workload RNG seed");
    fs.str("json", args.json, "write the report as JSON ('-' = stdout)");
    fs.str("bench", args.benchFilter,
           "only run benches whose name contains SUBSTR");
    fs.list("sim-threads", args.simThreads,
            "comma-separated threaded-kernel thread counts (0 = auto)");
    fs.list("sim-epoch", args.simEpochs,
            "comma-separated epoch sizes (0 = auto)");
    fs.real("check-skip-fraction", args.checkSkipFraction,
            "fail (exit 4) unless the event kernel skipped >= PCT%");
    fs.real("check-threaded-speedup", args.checkThreadedSpeedup,
            "fail (exit 3) unless best threaded >= X times event");
    fs.real("check-wide-speedup", args.checkWideSpeedup,
            "fail (exit 5) unless gated wide configs reach X times "
            "scalar (auto-skip on the scalar SIMD backend)");
    fs.parse(argc, argv);
    return args;
}

struct Bench
{
    std::string name;
    sim::AccelMode mode;
    std::function<RunMetrics(const sim::Config &, sim::StatRegistry &)> fn;
};

struct RunResult
{
    std::string bench;
    const char *kernel;
    unsigned simThreads = 0; //!< threaded kernel only; 0 elsewhere
    unsigned simEpoch = 0;   //!< threaded kernel only; 0 = auto
    uint64_t cycles = 0;
    double wallSeconds = 0.0;
    double cyclesPerSec = 0.0;
    double skippedFraction = 0.0;
};

RunResult
timeOne(const Bench &bench, sim::Simulator::Kernel kernel,
        unsigned sim_threads = 0, unsigned sim_epoch = 0)
{
    sim::Simulator::setDefaultKernel(kernel);
    if (kernel == sim::Simulator::Kernel::Threaded) {
        sim::Simulator::setDefaultSimThreads(sim_threads);
        sim::Simulator::setDefaultSimEpoch(sim_epoch);
    }
    sim::SchedulerTelemetry::reset();
    sim::Config cfg;
    cfg.accelMode = bench.mode;
    sim::StatRegistry stats;
    auto start = std::chrono::steady_clock::now();
    RunMetrics m = bench.fn(cfg, stats);
    auto stop = std::chrono::steady_clock::now();
    sim::Simulator::resetDefaultKernel();
    sim::Simulator::resetDefaultSimThreads();
    sim::Simulator::resetDefaultSimEpoch();

    RunResult r;
    r.bench = bench.name;
    switch (kernel) {
      case sim::Simulator::Kernel::Polling:
        r.kernel = "polling";
        break;
      case sim::Simulator::Kernel::EventDriven:
        r.kernel = "event";
        break;
      case sim::Simulator::Kernel::Threaded:
        r.kernel = "threaded";
        break;
    }
    r.simThreads =
        kernel == sim::Simulator::Kernel::Threaded ? sim_threads : 0;
    r.simEpoch =
        kernel == sim::Simulator::Kernel::Threaded ? sim_epoch : 0;
    r.cycles = m.cycles;
    r.wallSeconds = std::chrono::duration<double>(stop - start).count();
    uint64_t processed = sim::SchedulerTelemetry::cyclesTicked();
    uint64_t skipped = sim::SchedulerTelemetry::cyclesSkipped();
    r.cyclesPerSec = r.wallSeconds > 0.0
                         ? (processed + skipped) / r.wallSeconds
                         : 0.0;
    r.skippedFraction = sim::SchedulerTelemetry::skippedFraction();
    return r;
}

// --- Wide SoA functional section -------------------------------------------
//
// Host-side wall-clock comparison of the scalar binary trees against the
// wide SoA layouts whose hot loops run on the batched kernels from
// geom/intersect.cc. Results are checksummed and must be identical
// across layouts (the layouts are exact; quantization is not used here),
// so the measured ratio is pure functional-path speed.

struct WideResult
{
    std::string name;   //!< wide/raytrace, wide/rtnn, wide/rtree
    bool gated = false; //!< participates in --check-wide-speedup
    double scalarWall = 0.0;
    double wall4 = 0.0; //!< 4-wide (rtree: SoA fanout-8) wall clock
    double wall8 = 0.0; //!< 8-wide wall clock; 0 when not applicable
    double bestSpeedup = 0.0;
    bool identical = true;
};

double
timeWall(const std::function<void()> &fn)
{
    auto start = std::chrono::steady_clock::now();
    fn();
    auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

WideResult
wideRaytrace(const SpeedArgs &args)
{
    struct Tri
    {
        geom::Vec3 v0, v1, v2;
    };
    sim::Rng rng(args.seed * 77 + 1);
    size_t n_tris = std::max<size_t>(1024, args.points / 4);
    std::vector<Tri> tris(n_tris);
    std::vector<geom::Aabb> boxes(n_tris);
    for (size_t i = 0; i < n_tris; ++i) {
        geom::Vec3 base{rng.uniform(-40, 40), rng.uniform(-40, 40),
                        rng.uniform(-40, 40)};
        auto jitter = [&]() {
            return geom::Vec3{rng.uniform(-1.5f, 1.5f),
                              rng.uniform(-1.5f, 1.5f),
                              rng.uniform(-1.5f, 1.5f)};
        };
        tris[i] = {base, base + jitter(), base + jitter()};
        boxes[i].extend(tris[i].v0);
        boxes[i].extend(tris[i].v1);
        boxes[i].extend(tris[i].v2);
    }
    trees::Bvh bvh;
    bvh.build(boxes, 2);
    trees::WideBvh w4, w8;
    w4.build(bvh, 4);
    w8.build(bvh, 8);

    size_t n_rays = std::max<size_t>(4096, args.queries * 4);
    std::vector<geom::Ray> rays(n_rays);
    for (auto &ray : rays) {
        ray.origin = {rng.uniform(-50, 50), rng.uniform(-50, 50),
                      rng.uniform(-50, 50)};
        geom::Vec3 target{rng.uniform(-40, 40), rng.uniform(-40, 40),
                          rng.uniform(-40, 40)};
        ray.dir = normalize(target - ray.origin);
    }

    auto closestSum = [&](auto &&tree) {
        uint64_t sum = 0;
        for (const geom::Ray &ray : rays) {
            geom::Ray r = ray;
            uint32_t best_prim = UINT32_MAX;
            float best_t = 0.0f;
            tree.traverse(r, [&](uint32_t id) {
                auto h = geom::rayTriangle(r, tris[id].v0, tris[id].v1,
                                           tris[id].v2);
                if (h && h->t < r.tmax) {
                    best_prim = id;
                    best_t = h->t;
                    r.tmax = h->t;
                }
            });
            if (best_prim != UINT32_MAX)
                sum += best_prim + std::bit_cast<uint32_t>(best_t);
        }
        return sum;
    };

    WideResult res;
    res.name = "wide/raytrace";
    res.gated = true;
    uint64_t sum_bin = 0, sum4 = 0, sum8 = 0;
    res.scalarWall = timeWall([&] { sum_bin = closestSum(bvh); });
    res.wall4 = timeWall([&] { sum4 = closestSum(w4); });
    res.wall8 = timeWall([&] { sum8 = closestSum(w8); });
    res.identical = sum4 == sum_bin && sum8 == sum_bin;
    return res;
}

WideResult
wideRtnn(const SpeedArgs &args)
{
    sim::Rng rng(args.seed * 101 + 3);
    size_t n_pts = std::max<size_t>(4096, args.points);
    const float radius = 1.0f;
    std::vector<geom::Vec3> pts(n_pts);
    std::vector<geom::Aabb> boxes(n_pts);
    for (size_t i = 0; i < n_pts; ++i) {
        pts[i] = {rng.uniform(-30, 30), rng.uniform(-30, 30),
                  rng.uniform(-30, 30)};
        boxes[i].extend(pts[i]);
    }
    trees::Bvh bvh;
    bvh.build(boxes, 2);
    trees::WideBvh w4, w8;
    w4.build(bvh, 4);
    w8.build(bvh, 8);

    size_t n_queries = std::max<size_t>(8192, args.queries * 4);
    std::vector<geom::Vec3> queries(n_queries);
    for (auto &q : queries) {
        q = {rng.uniform(-30, 30), rng.uniform(-30, 30),
             rng.uniform(-30, 30)};
    }

    auto countSum = [&](auto &&tree) {
        uint64_t sum = 0;
        for (const geom::Vec3 &q : queries) {
            uint32_t count = 0;
            tree.pointQuery(q, radius, [&](uint32_t id) {
                if (geom::pointWithinRadius(q, pts[id], radius))
                    ++count;
            });
            sum += count;
        }
        return sum;
    };

    WideResult res;
    res.name = "wide/rtnn";
    res.gated = true;
    uint64_t sum_bin = 0, sum4 = 0, sum8 = 0;
    res.scalarWall = timeWall([&] { sum_bin = countSum(bvh); });
    res.wall4 = timeWall([&] { sum4 = countSum(w4); });
    res.wall8 = timeWall([&] { sum8 = countSum(w8); });
    res.identical = sum4 == sum_bin && sum8 == sum_bin;
    return res;
}

WideResult
wideRtree(const SpeedArgs &args)
{
    sim::Rng rng(args.seed * 131 + 7);
    size_t n_objects = std::max<size_t>(4096, args.keys / 2);
    std::vector<trees::Rect2D> objects(n_objects);
    for (auto &obj : objects) {
        float x = rng.uniform(0.0f, 198.0f);
        float y = rng.uniform(0.0f, 198.0f);
        obj = {x, y, x + rng.uniform(0.2f, 2.0f),
               y + rng.uniform(0.2f, 2.0f)};
    }
    // The same fanout-8 tree walks both ways, so the ratio isolates the
    // batched node test from tree-shape effects.
    trees::RTree tree(objects, 8);

    size_t n_queries = std::max<size_t>(8192, args.queries * 4);
    std::vector<trees::Rect2D> queries(n_queries);
    for (auto &q : queries) {
        float x = rng.uniform(5.0f, 195.0f);
        float y = rng.uniform(5.0f, 195.0f);
        q = {x - 2.0f, y - 2.0f, x + 2.0f, y + 2.0f};
    }

    WideResult res;
    res.name = "wide/rtree";
    res.gated = false; // 2D-only datapath; reported, not gated
    uint64_t sum_scalar = 0, sum_soa = 0;
    res.scalarWall = timeWall([&] {
        for (const auto &q : queries)
            sum_scalar += tree.countOverlaps(q);
    });
    res.wall4 = timeWall([&] {
        for (const auto &q : queries)
            sum_soa += tree.countOverlapsSoa(q);
    });
    res.identical = sum_soa == sum_scalar;
    return res;
}

void
writeJson(std::ostream &os, const std::vector<RunResult> &runs,
          const std::vector<WideResult> &wide, double speedup,
          double threaded_speedup, double event_skipped,
          double wide_speedup)
{
    os << "{\n  \"bench\": \"bench_speed\",\n  \"simd_backend\": \""
       << geom::simdBackendName() << "\",\n  \"runs\": [\n";
    for (size_t i = 0; i < runs.size(); ++i) {
        const RunResult &r = runs[i];
        char buf[320];
        std::snprintf(buf, sizeof(buf),
                      "    {\"bench\": \"%s\", \"kernel\": \"%s\", "
                      "\"sim_threads\": %u, \"sim_epoch\": %u, "
                      "\"cycles\": %llu, \"wall_s\": %.4f, "
                      "\"cycles_per_sec\": %.0f, "
                      "\"skipped_cycle_fraction\": %.4f}",
                      r.bench.c_str(), r.kernel, r.simThreads, r.simEpoch,
                      static_cast<unsigned long long>(r.cycles),
                      r.wallSeconds, r.cyclesPerSec, r.skippedFraction);
        os << buf << (i + 1 < runs.size() ? ",\n" : "\n");
    }
    os << "  ],\n  \"wide\": [\n";
    for (size_t i = 0; i < wide.size(); ++i) {
        const WideResult &w = wide[i];
        char buf[320];
        std::snprintf(buf, sizeof(buf),
                      "    {\"bench\": \"%s\", \"gated\": %s, "
                      "\"scalar_wall_s\": %.4f, \"wide4_wall_s\": %.4f, "
                      "\"wide8_wall_s\": %.4f, \"speedup\": %.2f, "
                      "\"identical_results\": %s}",
                      w.name.c_str(), w.gated ? "true" : "false",
                      w.scalarWall, w.wall4, w.wall8, w.bestSpeedup,
                      w.identical ? "true" : "false");
        os << buf << (i + 1 < wide.size() ? ",\n" : "\n");
    }
    char buf[280];
    std::snprintf(buf, sizeof(buf),
                  "  ],\n  \"summary\": {\"wall_clock_speedup\": %.2f, "
                  "\"threaded_vs_event_speedup\": %.2f, "
                  "\"event_skipped_cycle_fraction\": %.4f, "
                  "\"wide_vs_scalar_speedup\": %.2f}\n}\n",
                  speedup, threaded_speedup, event_skipped, wide_speedup);
    os << buf;
}

} // namespace

int
main(int argc, char **argv)
{
    SpeedArgs args = parseArgs(argc, argv);

    std::vector<Bench> benches;
    benches.push_back(
        {"btree/base", sim::AccelMode::BaselineGpu,
         [&](const sim::Config &cfg, sim::StatRegistry &stats) {
             BTreeWorkload wl(trees::BTreeKind::BTree, args.keys,
                              args.queries, args.seed);
             return wl.runBaseline(cfg, stats);
         }});
    benches.push_back(
        {"btree/tta", sim::AccelMode::Tta,
         [&](const sim::Config &cfg, sim::StatRegistry &stats) {
             BTreeWorkload wl(trees::BTreeKind::BTree, args.keys,
                              args.queries, args.seed);
             return wl.runAccelerated(cfg, stats);
         }});
    benches.push_back(
        {"nbody/ttaplus", sim::AccelMode::TtaPlus,
         [&](const sim::Config &cfg, sim::StatRegistry &stats) {
             NBodyWorkload wl(2, args.bodies, args.seed);
             return wl.runAccelerated(cfg, stats, false);
         }});
    benches.push_back(
        {"nbody3d/fused", sim::AccelMode::TtaPlus,
         [&](const sim::Config &cfg, sim::StatRegistry &stats) {
             NBodyWorkload wl(3, args.bodies, args.seed);
             return wl.runAccelerated(cfg, stats, true);
         }});
    benches.push_back(
        {"rtnn/base", sim::AccelMode::BaselineGpu,
         [&](const sim::Config &cfg, sim::StatRegistry &stats) {
             RtnnWorkload wl(args.points, args.queries / 4, 1.0f,
                             args.seed);
             return wl.runBaseline(cfg, stats);
         }});
    benches.push_back(
        {"rtnn/tta", sim::AccelMode::Tta,
         [&](const sim::Config &cfg, sim::StatRegistry &stats) {
             RtnnWorkload wl(args.points, args.queries / 4, 1.0f,
                             args.seed);
             return wl.runAccelerated(cfg, stats, false);
         }});

    std::vector<RunResult> runs;
    double wall_polling = 0.0, wall_event = 0.0;
    // Per-(thread count, epoch size) threaded wall clock, flattened
    // threads-major like the sweep loop below.
    const size_t n_pairs = args.simThreads.size() * args.simEpochs.size();
    std::vector<double> wall_threaded(n_pairs, 0.0);
    uint64_t skipped_total = 0, cycle_total = 0;
    bool mismatch = false;
    std::printf("%-16s %10s %12s %10s %14s %9s\n", "bench", "kernel",
                "cycles", "wall_s", "cycles/sec", "skipped");
    auto report = [&](const RunResult &r) {
        char kernel[32];
        if (r.kernel == std::string("threaded")) {
            std::snprintf(kernel, sizeof(kernel), "thr/%u/k%u",
                          r.simThreads, r.simEpoch);
        } else {
            std::snprintf(kernel, sizeof(kernel), "%s", r.kernel);
        }
        std::printf("%-16s %10s %12llu %10.3f %14.0f %8.1f%%\n",
                    r.bench.c_str(), kernel,
                    static_cast<unsigned long long>(r.cycles),
                    r.wallSeconds, r.cyclesPerSec,
                    100.0 * r.skippedFraction);
        runs.push_back(r);
    };
    auto checkCycles = [&](const RunResult &ref, const RunResult &r) {
        if (ref.cycles == r.cycles)
            return;
        std::fprintf(stderr,
                     "FAIL: %s simulated %llu cycles under %s but %llu "
                     "under %s (sim_threads=%u, sim_epoch=%u)\n",
                     r.bench.c_str(),
                     static_cast<unsigned long long>(ref.cycles),
                     ref.kernel,
                     static_cast<unsigned long long>(r.cycles), r.kernel,
                     r.simThreads, r.simEpoch);
        mismatch = true;
    };
    for (const Bench &bench : benches) {
        if (!args.benchFilter.empty() &&
            bench.name.find(args.benchFilter) == std::string::npos)
            continue;
        RunResult polling =
            timeOne(bench, sim::Simulator::Kernel::Polling);
        RunResult event =
            timeOne(bench, sim::Simulator::Kernel::EventDriven);
        report(polling);
        report(event);
        checkCycles(polling, event);
        for (size_t ti = 0; ti < args.simThreads.size(); ++ti) {
            for (size_t ei = 0; ei < args.simEpochs.size(); ++ei) {
                RunResult threaded = timeOne(
                    bench, sim::Simulator::Kernel::Threaded,
                    args.simThreads[ti], args.simEpochs[ei]);
                report(threaded);
                checkCycles(event, threaded);
                wall_threaded[ti * args.simEpochs.size() + ei] +=
                    threaded.wallSeconds;
            }
        }
        wall_polling += polling.wallSeconds;
        wall_event += event.wallSeconds;
        // Aggregate skip fraction across the event runs, cycle-weighted.
        uint64_t total = event.cycles;
        cycle_total += total;
        skipped_total +=
            static_cast<uint64_t>(event.skippedFraction * total);
    }
    if (mismatch)
        return kExitCycleMismatch;

    // Host-side wide-vs-scalar functional section.
    std::vector<WideResult> wide;
    {
        const std::pair<const char *, WideResult (*)(const SpeedArgs &)>
            wide_benches[] = {{"wide/raytrace", wideRaytrace},
                              {"wide/rtnn", wideRtnn},
                              {"wide/rtree", wideRtree}};
        for (const auto &[name, fn] : wide_benches) {
            if (!args.benchFilter.empty() &&
                std::string(name).find(args.benchFilter) ==
                    std::string::npos)
                continue;
            WideResult w = fn(args);
            double best = std::min(
                w.wall4, w.wall8 > 0.0 ? w.wall8 : w.wall4);
            w.bestSpeedup = best > 0.0 ? w.scalarWall / best : 0.0;
            wide.push_back(w);
        }
    }
    if (!wide.empty()) {
        std::printf("wide SoA functional section (simd backend: %s)\n",
                    geom::simdBackendName());
        std::printf("%-16s %12s %12s %12s %9s %10s\n", "bench",
                    "scalar_s", "wide4_s", "wide8_s", "speedup",
                    "identical");
        for (const WideResult &w : wide) {
            std::printf("%-16s %12.3f %12.3f %12.3f %8.2fx %10s\n",
                        w.name.c_str(), w.scalarWall, w.wall4, w.wall8,
                        w.bestSpeedup, w.identical ? "yes" : "NO");
            if (!w.identical) {
                std::fprintf(stderr,
                             "FAIL: %s wide layout diverged from the "
                             "scalar tree's results\n",
                             w.name.c_str());
                return kExitCycleMismatch;
            }
        }
    }

    double speedup = wall_event > 0.0 ? wall_polling / wall_event : 0.0;
    double best_threaded = 0.0;
    for (size_t ti = 0; ti < args.simThreads.size(); ++ti) {
        for (size_t ei = 0; ei < args.simEpochs.size(); ++ei) {
            double w = wall_threaded[ti * args.simEpochs.size() + ei];
            double s = w > 0.0 ? wall_event / w : 0.0;
            std::printf("threaded speedup vs event (sim-threads=%u, "
                        "sim-epoch=%u): %.2fx\n",
                        args.simThreads[ti], args.simEpochs[ei], s);
            best_threaded = std::max(best_threaded, s);
        }
    }
    double event_skipped =
        cycle_total ? static_cast<double>(skipped_total) / cycle_total
                    : 0.0;
    std::printf("wall-clock speedup (polling / event): %.2fx; "
                "event kernel skipped %.1f%% of cycles\n",
                speedup, 100.0 * event_skipped);

    // Worst gated wide speedup: every gated config must clear the gate,
    // so the summary records the weakest one.
    double wide_speedup = 0.0;
    bool have_gated = false;
    for (const WideResult &w : wide) {
        if (!w.gated)
            continue;
        wide_speedup = have_gated ? std::min(wide_speedup, w.bestSpeedup)
                                  : w.bestSpeedup;
        have_gated = true;
    }

    if (!args.json.empty()) {
        if (args.json == "-") {
            writeJson(std::cout, runs, wide, speedup, best_threaded,
                      event_skipped, wide_speedup);
        } else {
            std::ofstream os(args.json);
            if (!os) {
                std::fprintf(stderr, "cannot open %s\n",
                             args.json.c_str());
                return 1;
            }
            writeJson(os, runs, wide, speedup, best_threaded,
                      event_skipped, wide_speedup);
        }
    }

    if (args.checkSkipFraction >= 0.0 &&
        100.0 * event_skipped < args.checkSkipFraction) {
        std::fprintf(stderr,
                     "FAIL: event kernel skipped only %.1f%% of cycles "
                     "(required >= %.1f%%)\n",
                     100.0 * event_skipped, args.checkSkipFraction);
        return kExitSkipGate;
    }
    if (args.checkThreadedSpeedup >= 0.0 &&
        best_threaded < args.checkThreadedSpeedup) {
        std::fprintf(stderr,
                     "FAIL: best threaded speedup vs event is %.2fx "
                     "(required >= %.2fx; swept sim-threads x sim-epoch "
                     "pairs are listed above)\n",
                     best_threaded, args.checkThreadedSpeedup);
        return kExitSpeedupGate;
    }
    if (args.checkWideSpeedup >= 0.0) {
        if (std::strcmp(geom::simdBackendName(), "scalar") == 0) {
            std::printf("--check-wide-speedup skipped: the scalar SIMD "
                        "fallback is in use (nothing to gate)\n");
        } else if (have_gated && wide_speedup < args.checkWideSpeedup) {
            std::fprintf(stderr,
                         "FAIL: worst gated wide-vs-scalar speedup is "
                         "%.2fx (required >= %.2fx)\n",
                         wide_speedup, args.checkWideSpeedup);
            return kExitWideGate;
        }
    }
    return 0;
}
