/**
 * @file
 * Figure 16: performance of the LumiBench-like ray-tracing suite on
 * TTA+ relative to the baseline RTA.
 *
 * Paper expectation: unmodified workloads lose ~8% on average to TTA+'s
 * programmability overheads; the optimizations programmability enables
 * claw it back — *WKND_PT (ray-sphere tests in the OP units instead of
 * intersection shaders) improves 22% over its naive TTA+ run, and
 * *SHIP_SH (SATO traversal order) recovers the SHIP_SH loss.
 */

#include "bench_common.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Figure 16", "Ray tracing on TTA+ relative to the "
                "baseline RTA", args);
    std::printf("%-12s %12s %12s %10s\n", "scene", "RTA(cyc)",
                "TTA+(cyc)", "relative");

    std::vector<double> rels;
    for (SceneKind kind :
         {SceneKind::CornellPt, SceneKind::SponzaAo, SceneKind::ShipSh,
          SceneKind::TeapotRf, SceneKind::WkndPt, SceneKind::MaskAm}) {
        RayTracingWorkload wl(kind, args.res, args.res, args.seed);
        sim::StatRegistry s0, s1;
        RunMetrics rta = wl.runAccelerated(
            modeConfig(sim::AccelMode::BaselineRta), s0);
        RunMetrics ttap =
            wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus), s1);
        double rel = static_cast<double>(rta.cycles) / ttap.cycles;
        rels.push_back(rel);
        std::printf("%-12s %12llu %12llu %9.3fx\n", sceneName(kind),
                    static_cast<unsigned long long>(rta.cycles),
                    static_cast<unsigned long long>(ttap.cycles), rel);

        if (kind == SceneKind::WkndPt) {
            sim::StatRegistry s2;
            RtOptions opt;
            opt.offloadSpheres = true;
            RunMetrics starred =
                wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus), s2,
                                  opt);
            std::printf("%-12s %12s %12llu %9.3fx  (%+.1f%% vs naive "
                        "TTA+; paper: +22%%)\n",
                        "*WKND_PT", "-",
                        static_cast<unsigned long long>(starred.cycles),
                        static_cast<double>(rta.cycles) / starred.cycles,
                        100.0 * (static_cast<double>(ttap.cycles) /
                                     starred.cycles -
                                 1.0));
        }
        if (kind == SceneKind::ShipSh) {
            sim::StatRegistry s2;
            RtOptions opt;
            opt.sato = true;
            RunMetrics starred =
                wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus), s2,
                                  opt);
            std::printf("%-12s %12s %12llu %9.3fx  (SATO; %+.1f%% vs "
                        "naive TTA+)\n",
                        "*SHIP_SH", "-",
                        static_cast<unsigned long long>(starred.cycles),
                        static_cast<double>(rta.cycles) / starred.cycles,
                        100.0 * (static_cast<double>(ttap.cycles) /
                                     starred.cycles -
                                 1.0));
        }
    }
    std::printf("%-12s %12s %12s %9.3fx  (paper: ~0.92x average)\n",
                "geomean", "-", "-", geomean(rels));
    std::printf("\nPaper shape check: TTA+ is moderately slower on "
                "unmodified ray tracing; programmability-enabled "
                "optimizations (*) recover performance. Our smaller "
                "procedural scenes are less memory-bound than LumiBench, "
                "so more of the OP-unit latency is exposed (see "
                "EXPERIMENTS.md).\n");
    return 0;
}
