/**
 * @file
 * Figure 16: performance of the LumiBench-like ray-tracing suite on
 * TTA+ relative to the baseline RTA.
 *
 * Paper expectation: unmodified workloads lose ~8% on average to TTA+'s
 * programmability overheads; the optimizations programmability enables
 * claw it back — *WKND_PT (ray-sphere tests in the OP units instead of
 * intersection shaders) improves 22% over its naive TTA+ run, and
 * *SHIP_SH (SATO traversal order) recovers the SHIP_SH loss.
 */

#include "bench_common.hh"

using namespace bench;

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Figure 16", "Ray tracing on TTA+ relative to the "
                "baseline RTA", args);

    Sweep sweep(args);
    constexpr size_t kNone = static_cast<size_t>(-1);
    struct Row
    {
        SceneKind kind;
        size_t rta, ttap, starred = kNone;
    };
    std::vector<Row> rows;

    for (SceneKind kind :
         {SceneKind::CornellPt, SceneKind::SponzaAo, SceneKind::ShipSh,
          SceneKind::TeapotRf, SceneKind::WkndPt, SceneKind::MaskAm}) {
        auto run = [kind, &args](RtOptions opt) {
            return [kind, opt, &args](const sim::Config &cfg,
                                      sim::StatRegistry &stats) {
                RayTracingWorkload wl(kind, args.res, args.res,
                                      args.seed);
                return wl.runAccelerated(cfg, stats, opt);
            };
        };
        std::string tag = std::string("rt/") + sceneName(kind);

        Row row;
        row.kind = kind;
        row.rta = sweep.add(tag + "/rta",
                            modeConfig(sim::AccelMode::BaselineRta),
                            run(RtOptions{}));
        row.ttap = sweep.add(tag + "/ttaplus",
                             modeConfig(sim::AccelMode::TtaPlus),
                             run(RtOptions{}));
        if (kind == SceneKind::WkndPt) {
            RtOptions opt;
            opt.offloadSpheres = true;
            row.starred = sweep.add(tag + "/ttaplus-offload",
                                    modeConfig(sim::AccelMode::TtaPlus),
                                    run(opt));
        }
        if (kind == SceneKind::ShipSh) {
            RtOptions opt;
            opt.sato = true;
            row.starred = sweep.add(tag + "/ttaplus-sato",
                                    modeConfig(sim::AccelMode::TtaPlus),
                                    run(opt));
        }
        rows.push_back(row);
    }

    sweep.run();

    std::printf("%-12s %12s %12s %10s\n", "scene", "RTA(cyc)",
                "TTA+(cyc)", "relative");
    std::vector<double> rels;
    for (const Row &row : rows) {
        const RunMetrics &rta = sweep[row.rta];
        const RunMetrics &ttap = sweep[row.ttap];
        double rel = static_cast<double>(rta.cycles) / ttap.cycles;
        rels.push_back(rel);
        std::printf("%-12s %12llu %12llu %9.3fx\n", sceneName(row.kind),
                    static_cast<unsigned long long>(rta.cycles),
                    static_cast<unsigned long long>(ttap.cycles), rel);

        if (row.kind == SceneKind::WkndPt) {
            const RunMetrics &starred = sweep[row.starred];
            std::printf("%-12s %12s %12llu %9.3fx  (%+.1f%% vs naive "
                        "TTA+; paper: +22%%)\n",
                        "*WKND_PT", "-",
                        static_cast<unsigned long long>(starred.cycles),
                        static_cast<double>(rta.cycles) / starred.cycles,
                        100.0 * (static_cast<double>(ttap.cycles) /
                                     starred.cycles -
                                 1.0));
        }
        if (row.kind == SceneKind::ShipSh) {
            const RunMetrics &starred = sweep[row.starred];
            std::printf("%-12s %12s %12llu %9.3fx  (SATO; %+.1f%% vs "
                        "naive TTA+)\n",
                        "*SHIP_SH", "-",
                        static_cast<unsigned long long>(starred.cycles),
                        static_cast<double>(rta.cycles) / starred.cycles,
                        100.0 * (static_cast<double>(ttap.cycles) /
                                     starred.cycles -
                                 1.0));
        }
    }
    std::printf("%-12s %12s %12s %9.3fx  (paper: ~0.92x average)\n",
                "geomean", "-", "-", geomean(rels));
    std::printf("\nPaper shape check: TTA+ is moderately slower on "
                "unmodified ray tracing; programmability-enabled "
                "optimizations (*) recover performance. Our smaller "
                "procedural scenes are less memory-bound than LumiBench, "
                "so more of the OP-unit latency is exposed (see "
                "EXPERIMENTS.md).\n");
    return 0;
}
