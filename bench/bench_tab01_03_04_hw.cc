/**
 * @file
 * Tables I, III and IV: the hardware inventory.
 *
 *  - Table I: OP unit types and latencies (configuration constants).
 *  - Table III: uop counts per intersection test, derived from the
 *    actual ConfigI/ConfigL programs each workload installs (not
 *    hard-coded numbers).
 *  - Table IV: baseline RTA vs TTA+ synthesis areas and the TTA Ray-Box
 *    modification cost.
 *
 * There is no simulation to sweep here, but the table derivation still
 * runs as a single ExperimentRunner job so `--json=` emits the uop
 * counts as a machine-readable record like every other bench.
 */

#include <iostream>

#include "bench_common.hh"
#include "power/area.hh"
#include "ttaplus/program.hh"

using namespace bench;
using namespace ::tta::ttaplus;

namespace {

struct ProgramRow
{
    const char *bench_name;
    const char *test_name;
    Program prog;
};

void
printProgramRow(const ProgramRow &row)
{
    auto counts = row.prog.unitCounts();
    std::printf("%-24s %-28s %5zu ", row.bench_name, row.test_name,
                row.prog.size());
    const OpUnit cols[] = {OpUnit::Vec3AddSub, OpUnit::Multiplier,
                           OpUnit::Sqrt,       OpUnit::Rcp,
                           OpUnit::MinMax,     OpUnit::Cross,
                           OpUnit::Dot,        OpUnit::Vec3Cmp,
                           OpUnit::Logical,    OpUnit::RXform};
    for (OpUnit unit : cols) {
        uint32_t n = counts[static_cast<size_t>(unit)];
        if (unit == OpUnit::MinMax)
            n += counts[static_cast<size_t>(OpUnit::MaxMin)];
        std::printf("%5u", n);
    }
    std::printf("\n");
}

std::vector<ProgramRow>
tableRows()
{
    return {
        {"B-Tree/B*Tree/B+Tree", "Inner (Query-Key)",
         programs::queryKeyInner()},
        {"", "Leaf (Query-Key)", programs::queryKeyLeaf()},
        {"N-Body 2D/3D", "Inner (Point-to-Point)",
         programs::pointDistInner()},
        {"", "Leaf (Force computation)", programs::nbodyForceLeaf()},
        {"*RTNN", "Inner (Ray-Box)", programs::rayBoxInner()},
        {"", "Leaf (Point-to-Point)", programs::rtnnPointDistLeaf()},
        {"*WKND_PT", "Inner (Ray-Box)", programs::rayBoxInner()},
        {"", "Leaf (Ray-Sphere)", programs::raySphereLeaf()},
        {"LumiBench", "Inner (Ray-Box)", programs::rayBoxInner()},
        {"", "Leaf (Ray-Tri)", programs::rayTriangleLeaf()},
        {"two-level BVH", "Transition (R-XFORM)",
         programs::rayTransform()},
    };
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);

    Sweep sweep(args);
    // One derivation job: the uop totals land in the JSON record.
    sweep.add("tables/uop-counts", sim::Config{},
              [](const sim::Config &, sim::StatRegistry &stats) {
                  for (const ProgramRow &row : tableRows()) {
                      if (row.bench_name[0] == '\0')
                          continue;
                      stats.counter(std::string("uops.") +
                                    row.bench_name) += row.prog.size();
                  }
                  return RunMetrics{};
              });
    sweep.run();

    std::printf("Table I: Operation units in TTA+\n");
    std::printf("%-14s %10s\n", "unit", "latency");
    for (uint32_t u = 0; u < kNumOpUnits; ++u) {
        auto unit = static_cast<OpUnit>(u);
        std::printf("%-14s %8u cy\n", opUnitName(unit),
                    opUnitLatency(unit));
    }

    std::printf("\nTable III: TTA+ intersection test statistics "
                "(derived from the installed programs)\n");
    std::printf("%-24s %-28s %5s %5s %5s %5s %5s %5s %5s %5s %5s %5s "
                "%5s\n",
                "benchmark", "intersection test", "uops", "SUB", "MUL",
                "SQRT", "RCP", "MM", "CROSS", "DOT", "CMP", "OR", "XFRM");
    for (const ProgramRow &row : tableRows())
        printProgramRow(row);
    std::printf("(paper totals: 12/3, 3/5, 19/5, 19/18, 19/17 — matched "
                "by construction and asserted in tests)\n");

    std::printf("\n");
    power::AreaModel::printTable(std::cout);
    std::printf("\nTTA overhead summary (Section V-C1): Ray-Box area "
                "+%.1f%% (0.2708 -> 0.2756 mm^2), power 259.4 -> 261.1 "
                "mW (+0.7%%); <1%% of total operation-unit area.\n",
                power::AreaModel::ttaRayBoxDeltaPercent());
    return 0;
}
