/**
 * @file
 * Tables I, III and IV: the hardware inventory.
 *
 *  - Table I: OP unit types and latencies (configuration constants).
 *  - Table III: uop counts per intersection test, derived from the
 *    actual ConfigI/ConfigL programs each workload installs (not
 *    hard-coded numbers).
 *  - Table IV: baseline RTA vs TTA+ synthesis areas and the TTA Ray-Box
 *    modification cost.
 */

#include <cstdio>
#include <iostream>

#include "power/area.hh"
#include "ttaplus/program.hh"

using namespace tta;
using namespace tta::ttaplus;

namespace {

void
printProgramRow(const char *bench_name, const char *test_name,
                const Program &prog)
{
    auto counts = prog.unitCounts();
    std::printf("%-24s %-28s %5zu ", bench_name, test_name, prog.size());
    const OpUnit cols[] = {OpUnit::Vec3AddSub, OpUnit::Multiplier,
                           OpUnit::Sqrt,       OpUnit::Rcp,
                           OpUnit::MinMax,     OpUnit::Cross,
                           OpUnit::Dot,        OpUnit::Vec3Cmp,
                           OpUnit::Logical,    OpUnit::RXform};
    for (OpUnit unit : cols) {
        uint32_t n = counts[static_cast<size_t>(unit)];
        if (unit == OpUnit::MinMax)
            n += counts[static_cast<size_t>(OpUnit::MaxMin)];
        std::printf("%5u", n);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("Table I: Operation units in TTA+\n");
    std::printf("%-14s %10s\n", "unit", "latency");
    for (uint32_t u = 0; u < kNumOpUnits; ++u) {
        auto unit = static_cast<OpUnit>(u);
        std::printf("%-14s %8u cy\n", opUnitName(unit),
                    opUnitLatency(unit));
    }

    std::printf("\nTable III: TTA+ intersection test statistics "
                "(derived from the installed programs)\n");
    std::printf("%-24s %-28s %5s %5s %5s %5s %5s %5s %5s %5s %5s %5s "
                "%5s\n",
                "benchmark", "intersection test", "uops", "SUB", "MUL",
                "SQRT", "RCP", "MM", "CROSS", "DOT", "CMP", "OR", "XFRM");
    printProgramRow("B-Tree/B*Tree/B+Tree", "Inner (Query-Key)",
                    programs::queryKeyInner());
    printProgramRow("", "Leaf (Query-Key)", programs::queryKeyLeaf());
    printProgramRow("N-Body 2D/3D", "Inner (Point-to-Point)",
                    programs::pointDistInner());
    printProgramRow("", "Leaf (Force computation)",
                    programs::nbodyForceLeaf());
    printProgramRow("*RTNN", "Inner (Ray-Box)", programs::rayBoxInner());
    printProgramRow("", "Leaf (Point-to-Point)",
                    programs::rtnnPointDistLeaf());
    printProgramRow("*WKND_PT", "Inner (Ray-Box)",
                    programs::rayBoxInner());
    printProgramRow("", "Leaf (Ray-Sphere)", programs::raySphereLeaf());
    printProgramRow("LumiBench", "Inner (Ray-Box)",
                    programs::rayBoxInner());
    printProgramRow("", "Leaf (Ray-Tri)", programs::rayTriangleLeaf());
    printProgramRow("two-level BVH", "Transition (R-XFORM)",
                    programs::rayTransform());
    std::printf("(paper totals: 12/3, 3/5, 19/5, 19/18, 19/17 — matched "
                "by construction and asserted in tests)\n");

    std::printf("\n");
    power::AreaModel::printTable(std::cout);
    std::printf("\nTTA overhead summary (Section V-C1): Ray-Box area "
                "+%.1f%% (0.2708 -> 0.2756 mm^2), power 259.4 -> 261.1 "
                "mW (+0.7%%); <1%% of total operation-unit area.\n",
                power::AreaModel::ttaRayBoxDeltaPercent());
    return 0;
}
