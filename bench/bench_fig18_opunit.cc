/**
 * @file
 * Figure 18: TTA+ OP unit utilization (top) and average intersection
 * latency including interconnect overheads (bottom).
 *
 * Paper expectation: utilization patterns are workload-dependent with no
 * single dominant bottleneck; serialized uops + interconnect hops grow
 * the Ray-Box latency by ~10x over the 13-cycle fixed-function unit,
 * yet end-to-end cost stays moderate because traversal is
 * memory-dominated.
 */

#include "bench_common.hh"

#include "ttaplus/uop.hh"

using namespace bench;

namespace {

void
printUtilization(const char *app, const sim::StatRegistry &stats,
                 sim::Cycle cycles)
{
    std::printf("%-10s", app);
    sim::Config cfg;
    for (uint32_t u = 0; u < ttaplus::kNumOpUnits; ++u) {
        auto unit = static_cast<ttaplus::OpUnit>(u);
        if (unit == ttaplus::OpUnit::Push)
            continue;
        uint64_t busy = stats.counterValue(
            std::string("ttaplus.busy.") + ttaplus::opUnitName(unit));
        // busy counts latency-cycles per uop; a pipelined (II=1) unit at
        // full issue is 100% utilized, so normalize by issue slots:
        // uops / (cycles x engines x copies).
        double uops =
            static_cast<double>(busy) / ttaplus::opUnitLatency(unit);
        uint32_t copies = unit == ttaplus::OpUnit::Rcp
            ? cfg.rcpUnitCopies : cfg.opUnitCopies;
        double capacity =
            static_cast<double>(cycles) * cfg.numSms * copies;
        std::printf(" %s:%4.1f%%", ttaplus::opUnitName(unit),
                    capacity > 0 ? 100.0 * uops / capacity : 0.0);
    }
    std::printf("\n");
}

void
printLatency(const char *app, const sim::StatRegistry &stats)
{
    const auto *inner = stats.findHistogram("ttaplus.inner_latency");
    const auto *leaf = stats.findHistogram("ttaplus.leaf_latency");
    std::printf("%-10s inner %7.1f cycles (n=%llu)   leaf %7.1f cycles "
                "(n=%llu)\n",
                app, inner ? inner->mean() : 0.0,
                static_cast<unsigned long long>(inner ? inner->count()
                                                      : 0),
                leaf ? leaf->mean() : 0.0,
                static_cast<unsigned long long>(leaf ? leaf->count()
                                                     : 0));
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Figure 18",
                "TTA+ OP unit utilization (top) / avg intersection "
                "latency (bottom)", args);

    Sweep sweep(args);
    const sim::Config ttap_cfg = modeConfig(sim::AccelMode::TtaPlus);
    struct Row
    {
        std::string app;
        size_t idx;
    };
    std::vector<Row> rows;

    rows.push_back(
        {"B-Tree", sweep.add("btree", ttap_cfg,
                             [&args](const sim::Config &cfg,
                                     sim::StatRegistry &stats) {
                                 BTreeWorkload wl(trees::BTreeKind::BTree,
                                                  args.keys, args.queries,
                                                  args.seed);
                                 return wl.runAccelerated(cfg, stats);
                             })});
    rows.push_back(
        {"NBODY-3D", sweep.add("nbody3d", ttap_cfg,
                               [&args](const sim::Config &cfg,
                                       sim::StatRegistry &stats) {
                                   NBodyWorkload wl(3, args.bodies,
                                                    args.seed);
                                   return wl.runAccelerated(cfg, stats);
                               })});
    rows.push_back(
        {"*RTNN", sweep.add("rtnn", ttap_cfg,
                            [&args](const sim::Config &cfg,
                                    sim::StatRegistry &stats) {
                                RtnnWorkload wl(args.points,
                                                args.queries / 4, 1.0f,
                                                args.seed);
                                return wl.runAccelerated(cfg, stats,
                                                         true);
                            })});
    rows.push_back(
        {"*WKND_PT", sweep.add("wknd_pt", ttap_cfg,
                               [&args](const sim::Config &cfg,
                                       sim::StatRegistry &stats) {
                                   RayTracingWorkload wl(
                                       SceneKind::WkndPt, args.res,
                                       args.res, args.seed);
                                   RtOptions opt;
                                   opt.offloadSpheres = true;
                                   return wl.runAccelerated(cfg, stats,
                                                            opt);
                               })});

    sweep.run();

    for (const Row &row : rows)
        printUtilization(row.app.c_str(), sweep.record(row.idx).stats,
                         sweep[row.idx].cycles);

    std::printf("\nAverage intersection latency on TTA+ (fixed-function "
                "reference: Ray-Box 13, Ray-Tri 37 cycles):\n");
    for (const Row &row : rows)
        printLatency(row.app.c_str(), sweep.record(row.idx).stats);

    std::printf("\nPaper shape check: utilization is workload-dependent "
                "with no dominant bottleneck; serialized uops + ICNT "
                "hops inflate per-test latency by up to ~10x for the "
                "Ray-Box program.\n");
    return 0;
}
