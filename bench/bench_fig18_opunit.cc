/**
 * @file
 * Figure 18: TTA+ OP unit utilization (top) and average intersection
 * latency including interconnect overheads (bottom).
 *
 * Paper expectation: utilization patterns are workload-dependent with no
 * single dominant bottleneck; serialized uops + interconnect hops grow
 * the Ray-Box latency by ~10x over the 13-cycle fixed-function unit,
 * yet end-to-end cost stays moderate because traversal is
 * memory-dominated.
 */

#include "bench_common.hh"

#include "ttaplus/uop.hh"

using namespace bench;

namespace {

void
printUtilization(const char *app, const sim::StatRegistry &stats,
                 sim::Cycle cycles)
{
    std::printf("%-10s", app);
    sim::Config cfg;
    for (uint32_t u = 0; u < ttaplus::kNumOpUnits; ++u) {
        auto unit = static_cast<ttaplus::OpUnit>(u);
        if (unit == ttaplus::OpUnit::Push)
            continue;
        uint64_t busy = stats.counterValue(
            std::string("ttaplus.busy.") + ttaplus::opUnitName(unit));
        // busy counts latency-cycles per uop; a pipelined (II=1) unit at
        // full issue is 100% utilized, so normalize by issue slots:
        // uops / (cycles x engines x copies).
        double uops =
            static_cast<double>(busy) / ttaplus::opUnitLatency(unit);
        uint32_t copies = unit == ttaplus::OpUnit::Rcp
            ? cfg.rcpUnitCopies : cfg.opUnitCopies;
        double capacity =
            static_cast<double>(cycles) * cfg.numSms * copies;
        std::printf(" %s:%4.1f%%", ttaplus::opUnitName(unit),
                    capacity > 0 ? 100.0 * uops / capacity : 0.0);
    }
    std::printf("\n");
}

void
printLatency(const char *app, const sim::StatRegistry &stats)
{
    const auto *inner = stats.findHistogram("ttaplus.inner_latency");
    const auto *leaf = stats.findHistogram("ttaplus.leaf_latency");
    std::printf("%-10s inner %7.1f cycles (n=%llu)   leaf %7.1f cycles "
                "(n=%llu)\n",
                app, inner ? inner->mean() : 0.0,
                static_cast<unsigned long long>(inner ? inner->count()
                                                      : 0),
                leaf ? leaf->mean() : 0.0,
                static_cast<unsigned long long>(leaf ? leaf->count()
                                                     : 0));
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = Args::parse(argc, argv);
    printHeader("Figure 18",
                "TTA+ OP unit utilization (top) / avg intersection "
                "latency (bottom)", args);

    std::vector<std::pair<std::string, sim::StatRegistry>> runs;

    {
        BTreeWorkload wl(trees::BTreeKind::BTree, args.keys, args.queries,
                         args.seed);
        runs.emplace_back("B-Tree", sim::StatRegistry{});
        sim::Cycle cycles =
            wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus),
                              runs.back().second)
                .cycles;
        printUtilization("B-Tree", runs.back().second, cycles);
    }
    {
        NBodyWorkload wl(3, args.bodies, args.seed);
        runs.emplace_back("NBODY-3D", sim::StatRegistry{});
        sim::Cycle cycles =
            wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus),
                              runs.back().second)
                .cycles;
        printUtilization("NBODY-3D", runs.back().second, cycles);
    }
    {
        RtnnWorkload wl(args.points, args.queries / 4, 1.0f, args.seed);
        runs.emplace_back("*RTNN", sim::StatRegistry{});
        sim::Cycle cycles =
            wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus),
                              runs.back().second, true)
                .cycles;
        printUtilization("*RTNN", runs.back().second, cycles);
    }
    {
        RayTracingWorkload wl(SceneKind::WkndPt, args.res, args.res,
                              args.seed);
        runs.emplace_back("*WKND_PT", sim::StatRegistry{});
        RtOptions opt;
        opt.offloadSpheres = true;
        sim::Cycle cycles =
            wl.runAccelerated(modeConfig(sim::AccelMode::TtaPlus),
                              runs.back().second, opt)
                .cycles;
        printUtilization("*WKND_PT", runs.back().second, cycles);
    }

    std::printf("\nAverage intersection latency on TTA+ (fixed-function "
                "reference: Ray-Box 13, Ray-Tri 37 cycles):\n");
    for (auto &[name, stats] : runs)
        printLatency(name.c_str(), stats);

    std::printf("\nPaper shape check: utilization is workload-dependent "
                "with no dominant bottleneck; serialized uops + ICNT "
                "hops inflate per-test latency by up to ~10x for the "
                "Ray-Box program.\n");
    return 0;
}
